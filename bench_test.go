// Package repro's root benchmarks regenerate the paper's tables and
// figures as testing.B targets (one per experiment; see DESIGN.md E1-E17
// for the index) plus micro-benchmarks of the substrates. Absolute
// numbers differ from the paper (synthetic lakes, from-scratch ML), but
// the comparative shapes hold; EXPERIMENTS.md records both.
package repro

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/datagen"
	"repro/internal/exp"
	"repro/internal/fst"
	"repro/internal/ml"
	"repro/internal/skyline"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/modis"
)

// benchOpts keeps benchmark iterations affordable: smaller budget than
// the full modisbench runs, same algorithmic paths. Valuation fans out
// across all CPUs (WithParallelism(0)) — the pool commits results in
// deterministic child order, so the measured searches produce the same
// skylines as sequential runs while using the whole machine. Later
// options win, so sweeps append their overrides.
func benchOpts(extra ...modis.Option) []modis.Option {
	return append([]modis.Option{
		modis.WithBudget(100),
		modis.WithEpsilon(0.1),
		modis.WithMaxLevel(5),
		modis.WithSeed(1),
		modis.WithParallelism(benchParallelism()),
	}, extra...)
}

// benchParallelism is the valuation-pool width the discovery
// benchmarks run with: all CPUs by default, overridable through
// MODIS_BENCH_PARALLEL so benchmarks/sweep.sh can record a
// WithParallelism(0)-vs-(1) split on multi-core hosts (results are
// byte-identical either way; only wall time moves).
func benchParallelism() int {
	if s := os.Getenv("MODIS_BENCH_PARALLEL"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 0 {
			return n
		}
	}
	return 0
}

func runAlgo(b *testing.B, w *datagen.Workload, algo string, extra ...modis.Option) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := modis.NewEngine(w.NewConfig(true)).Run(context.Background(), algo, benchOpts(extra...)...)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Skyline) == 0 {
			b.Fatal("empty skyline")
		}
	}
}

// --- E1/E2: Table 4 (T2 house, T4 mental) ---

func BenchmarkTable4T2(b *testing.B) {
	w := datagen.T2House(datagen.TaskConfig{Rows: 140})
	b.ResetTimer()
	runAlgo(b, w, "bi")
}

func BenchmarkTable4T4(b *testing.B) {
	w := datagen.T4Mental(datagen.TaskConfig{Rows: 140})
	b.ResetTimer()
	runAlgo(b, w, "bi")
}

// BenchmarkAppend is the streaming-economics benchmark on the Table 4
// T2 workload: "incremental" measures Engine.Append of a small batch
// plus the follow-up run against a warm engine, "cold" measures the
// alternative — rebuilding encoder, space, and memo over the
// concatenated table and running from scratch. The search is the
// exhaustive level-2 sweep with every valuation exact, so the state
// set is fixed and the memo's retained valuations are the measured
// saving; a budget-bound search would spend whatever the memo saves
// on exploring further instead. Batch rows sit on literal value
// points (appendBatch), the case streaming exists for: states
// clearing one of those literals provably keep their selection, so
// their valuations survive the append, while the cold side starts
// from an empty memo by construction.
func BenchmarkAppend(b *testing.B) {
	const appendRows = 8
	opts := benchOpts(modis.WithBudget(1<<20), modis.WithMaxLevel(2))

	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w := datagen.T2House(datagen.TaskConfig{Rows: 140})
			eng := modis.NewEngine(w.NewConfig(false))
			if _, err := eng.Run(context.Background(), "exact", opts...); err != nil {
				b.Fatal(err)
			}
			batch := appendBatch(w, appendRows)
			b.StartTimer()
			res, err := eng.Append(batch)
			if err != nil {
				b.Fatal(err)
			}
			if res.Retained == 0 {
				b.Fatal("append retained nothing — the benchmark measures memo reuse")
			}
			rep, err := eng.Run(context.Background(), "exact", opts...)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Skyline) == 0 {
				b.Fatal("empty skyline")
			}
		}
	})

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w := datagen.T2House(datagen.TaskConfig{Rows: 140})
			batch := appendBatch(w, appendRows)
			b.StartTimer()
			u2, err := table.Concat("D_U", w.Lake.Universal, batch)
			if err != nil {
				b.Fatal(err)
			}
			enc := ml.NewTableEncoderSkip(u2, w.Lake.Target, "id")
			cfg := w.NewConfig(false)
			cfg.Space = w.Space.Rebuild(u2)
			cfg.Space.SetColumnSource(enc)
			cfg.Model = w.Model.(*datagen.TableModel).WithEncoder(enc)
			rep, err := modis.NewEngine(cfg).Run(context.Background(), "exact", opts...)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Skyline) == 0 {
				b.Fatal("empty skyline")
			}
		}
	})
}

// appendBatch synthesizes n identical rows sitting on each attribute's
// first literal value point (literals match by exact value equality, so
// any state clearing one of those literals removes every batch row and
// keeps its memoized valuation). Non-literal cells copy universal row 0,
// staying inside the encoder's frozen string domains.
func appendBatch(w *datagen.Workload, n int) []table.Row {
	u := w.Lake.Universal
	proto := append(table.Row(nil), u.Rows[0]...)
	seen := map[string]bool{}
	for _, e := range w.Space.Entries {
		if e.Kind == fst.EntryLiteral && !seen[e.Attr] {
			seen[e.Attr] = true
			proto[u.Schema.Index(e.Attr)] = e.Literal.Value
		}
	}
	batch := make([]table.Row, n)
	for i := range batch {
		batch[i] = append(table.Row(nil), proto...)
	}
	return batch
}

// --- E3: Table 5 (T5 link regression) ---

func BenchmarkTable5T5(b *testing.B) {
	w := datagen.T5Link(datagen.T5Config{Users: 30, Items: 30})
	b.ResetTimer()
	runAlgo(b, w, "bi")
}

// --- E4/E5: Table 6 (T1 movie, T3 avocado) ---

func BenchmarkTable6T1(b *testing.B) {
	w := datagen.T1Movie(datagen.TaskConfig{Rows: 140})
	b.ResetTimer()
	runAlgo(b, w, "bi")
}

func BenchmarkTable6T3(b *testing.B) {
	w := datagen.T3Avocado(datagen.TaskConfig{Rows: 140})
	b.ResetTimer()
	runAlgo(b, w, "bi")
}

// --- E7/E10: Figure 8(a)/10(a) — epsilon sweeps ---

func BenchmarkFig8Epsilon(b *testing.B) {
	for _, eps := range []float64{0.5, 0.3, 0.1} {
		b.Run(label("eps", eps), func(b *testing.B) {
			w := datagen.T1Movie(datagen.TaskConfig{Rows: 140})
			b.ResetTimer()
			runAlgo(b, w, "bi", modis.WithEpsilon(eps))
		})
	}
}

// --- E8/E11: Figure 8(b)/10(b) — maxl sweeps ---

func BenchmarkFig10MaxL(b *testing.B) {
	for _, maxl := range []int{2, 4, 6} {
		b.Run(labelInt("maxl", maxl), func(b *testing.B) {
			w := datagen.T1Movie(datagen.TaskConfig{Rows: 140})
			b.ResetTimer()
			runAlgo(b, w, "apx", modis.WithMaxLevel(maxl))
		})
	}
}

// --- E9: Figure 9 — DivMODis alpha ---

func BenchmarkFig9Alpha(b *testing.B) {
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		b.Run(label("alpha", alpha), func(b *testing.B) {
			w := datagen.T1Movie(datagen.TaskConfig{Rows: 140})
			b.ResetTimer()
			runAlgo(b, w, "div", modis.WithAlpha(alpha), modis.WithK(4))
		})
	}
}

// --- E12: Figure 10(c,d) — scalability over |A| and |adom| ---

func BenchmarkFig10ScalAttrs(b *testing.B) {
	for _, info := range []int{4, 8} {
		b.Run(labelInt("info", info), func(b *testing.B) {
			w := datagen.T1Movie(datagen.TaskConfig{Rows: 140, InfoAttrs: info})
			b.ResetTimer()
			runAlgo(b, w, "bi")
		})
	}
}

func BenchmarkFig10ScalAdom(b *testing.B) {
	for _, k := range []int{3, 6} {
		b.Run(labelInt("adom", k), func(b *testing.B) {
			w := datagen.T1Movie(datagen.TaskConfig{Rows: 140, AdomK: k})
			b.ResetTimer()
			runAlgo(b, w, "bi")
		})
	}
}

// --- E13/E14/E15: Figures 13-15 — T5 efficiency / scalability ---

func BenchmarkFig13T5(b *testing.B) {
	w := datagen.T5Link(datagen.T5Config{Users: 30, Items: 30})
	b.ResetTimer()
	runAlgo(b, w, "apx")
}

func BenchmarkFig14T5Scal(b *testing.B) {
	for _, n := range []int{24, 40} {
		b.Run(labelInt("nodes", n), func(b *testing.B) {
			w := datagen.T5Link(datagen.T5Config{Users: n, Items: n})
			b.ResetTimer()
			runAlgo(b, w, "bi")
		})
	}
}

// --- Ablations called out in DESIGN.md ---

// BenchmarkAblationPruning compares BiMODis with and without
// correlation-based pruning (design choice 1).
func BenchmarkAblationPruning(b *testing.B) {
	for _, algo := range []string{"bi", "nobi"} {
		name := "prune"
		if algo == "nobi" {
			name = "noprune"
		}
		b.Run(name, func(b *testing.B) {
			w := datagen.T2House(datagen.TaskConfig{Rows: 140})
			b.ResetTimer()
			runAlgo(b, w, algo)
		})
	}
}

// BenchmarkAblationSurrogate compares surrogate-backed discovery with
// exact-only valuation (design choice 4).
func BenchmarkAblationSurrogate(b *testing.B) {
	for _, sur := range []bool{true, false} {
		name := "surrogate"
		if !sur {
			name = "exact"
		}
		b.Run(name, func(b *testing.B) {
			w := datagen.T1Movie(datagen.TaskConfig{Rows: 140})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := modis.NewEngine(w.NewConfig(sur)).Run(context.Background(), "apx", benchOpts()...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkOuterJoin(b *testing.B) {
	w := datagen.T1Movie(datagen.TaskConfig{Rows: 400})
	ts := w.Lake.Tables
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Universal(ts...)
	}
}

func BenchmarkMaterialize(b *testing.B) {
	w := datagen.T1Movie(datagen.TaskConfig{Rows: 400})
	bits := w.Space.FullBitmap()
	for i := 0; i < bits.Len(); i += 3 {
		bits.Clear(i)
	}
	// Warm the space's one-time literal row index so iterations measure
	// the steady-state incremental path a search actually runs.
	w.Space.Materialize(bits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Space.Materialize(bits)
	}
}

func BenchmarkKMeans1D(b *testing.B) {
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = float64(i%97) / 7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.KMeans1D(xs, 8, 50)
	}
}

func BenchmarkGBMFit(b *testing.B) {
	w := datagen.T1Movie(datagen.TaskConfig{Rows: 300})
	ds := ml.FromTable(w.Lake.Universal, w.Lake.Target)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := &ml.GBMRegressor{Config: ml.GBMConfig{NumTrees: 30, MaxDepth: 3, Seed: 1}}
		g.Fit(ds.X, ds.Y)
	}
}

func BenchmarkSkylineFilter(b *testing.B) {
	vs := make([]skyline.Vector, 500)
	for i := range vs {
		vs[i] = skyline.Vector{
			float64(i%13) / 13, float64(i%7) / 7, float64(i%31) / 31,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyline.Skyline(vs)
	}
}

func BenchmarkKungSkyline(b *testing.B) {
	vs := make([]skyline.Vector, 500)
	for i := range vs {
		vs[i] = skyline.Vector{
			float64(i%13) / 13, float64(i%7) / 7, float64(i%31) / 31,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skyline.KungSkyline(vs)
	}
}

func BenchmarkEstimatorValuate(b *testing.B) {
	w := datagen.T1Movie(datagen.TaskConfig{Rows: 200})
	cfg := w.NewConfig(true)
	bits := w.Space.FullBitmap()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb := bits.Clone()
		nb.Clear(i % nb.Len())
		if _, err := cfg.Valuate(nb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitmapKey exercises the memoization path of the search inner
// loop — flip an entry, compute the state key, probe a visited map — and
// must run allocation-free per lookup.
func BenchmarkBitmapKey(b *testing.B) {
	const n = 512
	bits := fst.NewBitmap(n)
	for i := 0; i < n; i += 2 {
		bits.Set(i)
	}
	visited := make(map[fst.StateKey]bool, 2*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bits.Flip(i % n)
		visited[bits.Key()] = true
	}
	if len(visited) == 0 {
		b.Fatal("no keys recorded")
	}
}

// BenchmarkOpGen measures child spawning from a wide state: the State
// headers come from one slab and each child's packed words are a single
// word-wise copy.
func BenchmarkOpGen(b *testing.B) {
	bits := fst.NewBitmap(512)
	for i := 0; i < 512; i += 2 {
		bits.Set(i)
	}
	s := &fst.State{Bits: bits}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if kids := fst.OpGen(s, fst.Forward); len(kids) != 256 {
			b.Fatal("wrong fan-out")
		}
	}
}

// Keep exp's report machinery hot so the harness compiles against it.
var _ = exp.RImp

func label(k string, v float64) string { return fmt.Sprintf("%s=%.1f", k, v) }

func labelInt(k string, v int) string { return fmt.Sprintf("%s=%d", k, v) }
