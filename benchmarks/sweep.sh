#!/usr/bin/env sh
# Benchmark sweep harness: runs the paper-experiment benchmark suite
# (BenchmarkTable*/BenchmarkFig*) with -benchmem and consolidates the
# results into a TSV and a JSON file, so every PR leaves a comparable
# perf record next to the previous ones (BENCH_<n>.json).
#
# Each benchmark is recorded twice — once with the valuation pool at
# WithParallelism(0) (all CPUs) and once at WithParallelism(1)
# (sequential) — via the MODIS_BENCH_PARALLEL override, and the JSON
# carries GOMAXPROCS, so multi-core scaling of the exact-inference pool
# is measurable from the record alone. On a 1-CPU host the two columns
# coincide (the pool cannot fan out).
#
# Usage:
#   sh benchmarks/sweep.sh [out-prefix] [benchtime] [pattern]
#
#   out-prefix  basename for the outputs (default: benchmarks/sweep)
#               writes <out-prefix>.txt, <out-prefix>.tsv, <out-prefix>.json
#   benchtime   passed to -benchtime (default: 3x — fixed iteration
#               counts stabilize comparisons across machines)
#   pattern     -bench regexp (default: 'BenchmarkTable|BenchmarkFig')

set -eu

SCRIPT_DIR="$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)"
cd "$SCRIPT_DIR/.."

OUT_PREFIX="${1:-benchmarks/sweep}"
BENCHTIME="${2:-3x}"
PATTERN="${3:-BenchmarkTable|BenchmarkFig}"

RAW="$OUT_PREFIX.txt"
TSV="$OUT_PREFIX.tsv"
JSON="$OUT_PREFIX.json"

mkdir -p "$(dirname "$OUT_PREFIX")"

GOMAXPROCS_VAL="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}"

: >"$RAW"
for PAR in 0 1; do
  echo "# sweep: -bench '$PATTERN' -benchtime $BENCHTIME MODIS_BENCH_PARALLEL=$PAR GOMAXPROCS=$GOMAXPROCS_VAL" >&2
  echo "# parallelism=$PAR" >>"$RAW"
  MODIS_BENCH_PARALLEL=$PAR go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count 1 . | tee -a "$RAW"
done

# Consolidated TSV: one row per (benchmark, parallelism).
awk 'BEGIN {
       OFS = "\t"
       par = ""
       print "benchmark", "parallelism", "iters", "ns_per_op", "bytes_per_op", "allocs_per_op"
     }
     /^# parallelism=/ { sub(/^# parallelism=/, ""); par = $0 }
     /^Benchmark/ {
       ns = ""; bytes = ""; allocs = ""
       for (i = 3; i < NF; i++) {
         if ($(i+1) == "ns/op") ns = $i
         if ($(i+1) == "B/op") bytes = $i
         if ($(i+1) == "allocs/op") allocs = $i
       }
       print $1, par, $2, ns, bytes, allocs
     }' "$RAW" >"$TSV"

# Same rows as JSON for structured diffing across PRs.
awk -v gomaxprocs="$GOMAXPROCS_VAL" \
    'BEGIN { print "{"
             printf "  \"gomaxprocs\": %s,\n", gomaxprocs
             printf "  \"benchmarks\": ["
             first = 1; par = "" }
     /^# parallelism=/ { sub(/^# parallelism=/, ""); par = $0 }
     /^Benchmark/ {
       ns = ""; bytes = ""; allocs = ""
       for (i = 3; i < NF; i++) {
         if ($(i+1) == "ns/op") ns = $i
         if ($(i+1) == "B/op") bytes = $i
         if ($(i+1) == "allocs/op") allocs = $i
       }
       if (!first) printf ","
       first = 0
       printf "\n    {\"name\": \"%s\", \"parallelism\": %s, \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", $1, par, $2, ns, bytes, allocs
     }
     END { print "\n  ]"; print "}" }' "$RAW" >"$JSON"

echo "wrote $RAW, $TSV, $JSON" >&2
