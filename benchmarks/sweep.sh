#!/usr/bin/env sh
# Benchmark sweep harness: runs the paper-experiment benchmark suite
# (BenchmarkTable*/BenchmarkFig*) with -benchmem and consolidates the
# results into a TSV and a JSON file, so every PR leaves a comparable
# perf record next to the previous ones (BENCH_<n>.json).
#
# Each benchmark is recorded twice — pool ON at WithParallelism(0)
# (exact inferences fan out on the process-global worker pool,
# workpool.Global, across all CPUs) and pool OFF at WithParallelism(1)
# (inline on the run goroutine) — via the MODIS_BENCH_PARALLEL
# override, and the JSON carries GOMAXPROCS, so multi-core scaling of
# the shared inference pool is measurable from the record alone. On a
# 1-CPU host the two columns coincide (parallelism 0 resolves to one
# worker, which takes the inline path).
#
# Usage:
#   sh benchmarks/sweep.sh [out-prefix] [benchtime] [pattern]
#
#   out-prefix  basename for the outputs (default: benchmarks/sweep)
#               writes <out-prefix>.txt, <out-prefix>.tsv, <out-prefix>.json
#   benchtime   passed to -benchtime (default: 3x — fixed iteration
#               counts stabilize comparisons across machines)
#   pattern     -bench regexp (default: 'BenchmarkTable|BenchmarkFig|BenchmarkAppend'
#               — the paper tables/figures plus the streaming
#               append-vs-cold-rebuild economics row)
#
# When MODIS_LOAD_CAPTURE names a cmd/modisload JSON capture, it is
# embedded into the output JSON under "load", so one file records both
# the in-process discovery sweep and the serving-path load measurement
# (throughput, latency quantiles, merge and memo-hit rates).

set -eu

SCRIPT_DIR="$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)"
cd "$SCRIPT_DIR/.."

OUT_PREFIX="${1:-benchmarks/sweep}"
BENCHTIME="${2:-3x}"
PATTERN="${3:-BenchmarkTable|BenchmarkFig|BenchmarkAppend}"

RAW="$OUT_PREFIX.txt"
TSV="$OUT_PREFIX.tsv"
JSON="$OUT_PREFIX.json"

mkdir -p "$(dirname "$OUT_PREFIX")"

GOMAXPROCS_VAL="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}"

: >"$RAW"
for PAR in 0 1; do
  echo "# sweep: -bench '$PATTERN' -benchtime $BENCHTIME MODIS_BENCH_PARALLEL=$PAR GOMAXPROCS=$GOMAXPROCS_VAL" >&2
  echo "# parallelism=$PAR" >>"$RAW"
  MODIS_BENCH_PARALLEL=$PAR go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count 1 . | tee -a "$RAW"
done

# Consolidated TSV: one row per (benchmark, parallelism).
awk 'BEGIN {
       OFS = "\t"
       par = ""
       print "benchmark", "parallelism", "iters", "ns_per_op", "bytes_per_op", "allocs_per_op"
     }
     /^# parallelism=/ { sub(/^# parallelism=/, ""); par = $0 }
     /^Benchmark/ {
       ns = ""; bytes = ""; allocs = ""
       for (i = 3; i < NF; i++) {
         if ($(i+1) == "ns/op") ns = $i
         if ($(i+1) == "B/op") bytes = $i
         if ($(i+1) == "allocs/op") allocs = $i
       }
       print $1, par, $2, ns, bytes, allocs
     }' "$RAW" >"$TSV"

# Same rows as JSON for structured diffing across PRs.
awk -v gomaxprocs="$GOMAXPROCS_VAL" \
    'BEGIN { print "{"
             printf "  \"gomaxprocs\": %s,\n", gomaxprocs
             printf "  \"benchmarks\": ["
             first = 1; par = "" }
     /^# parallelism=/ { sub(/^# parallelism=/, ""); par = $0 }
     /^Benchmark/ {
       ns = ""; bytes = ""; allocs = ""
       for (i = 3; i < NF; i++) {
         if ($(i+1) == "ns/op") ns = $i
         if ($(i+1) == "B/op") bytes = $i
         if ($(i+1) == "allocs/op") allocs = $i
       }
       if (!first) printf ","
       first = 0
       printf "\n    {\"name\": \"%s\", \"parallelism\": %s, \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", $1, par, $2, ns, bytes, allocs
     }
     END { print "\n  ]"; print "}" }' "$RAW" >"$JSON"

# Optional: splice a modisload capture into the record, keeping the
# serving-path measurement next to the discovery sweep it accompanies.
if [ -n "${MODIS_LOAD_CAPTURE:-}" ] && [ -f "$MODIS_LOAD_CAPTURE" ]; then
  TMP="$JSON.tmp"
  {
    sed '$d' "$JSON" # drop the closing brace
    printf '  ,"load":\n'
    sed 's/^/  /' "$MODIS_LOAD_CAPTURE"
    printf '}\n'
  } >"$TMP"
  mv "$TMP" "$JSON"
  echo "embedded load capture $MODIS_LOAD_CAPTURE" >&2
fi

echo "wrote $RAW, $TSV, $JSON" >&2
