#!/usr/bin/env sh
# Benchmark sweep harness: runs the paper-experiment benchmark suite
# (BenchmarkTable*/BenchmarkFig*) with -benchmem and consolidates the
# results into a TSV and a JSON file, so every PR leaves a comparable
# perf record next to the previous ones (BENCH_<n>.json).
#
# Usage:
#   sh benchmarks/sweep.sh [out-prefix] [benchtime] [pattern]
#
#   out-prefix  basename for the outputs (default: benchmarks/sweep)
#               writes <out-prefix>.txt, <out-prefix>.tsv, <out-prefix>.json
#   benchtime   passed to -benchtime (default: 3x — fixed iteration
#               counts stabilize comparisons across machines)
#   pattern     -bench regexp (default: 'BenchmarkTable|BenchmarkFig')

set -eu

SCRIPT_DIR="$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)"
cd "$SCRIPT_DIR/.."

OUT_PREFIX="${1:-benchmarks/sweep}"
BENCHTIME="${2:-3x}"
PATTERN="${3:-BenchmarkTable|BenchmarkFig}"

RAW="$OUT_PREFIX.txt"
TSV="$OUT_PREFIX.tsv"
JSON="$OUT_PREFIX.json"

mkdir -p "$(dirname "$OUT_PREFIX")"

echo "# sweep: -bench '$PATTERN' -benchtime $BENCHTIME" >&2
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count 1 . | tee "$RAW"

# Consolidated TSV: one row per benchmark.
awk 'BEGIN {
       OFS = "\t"
       print "benchmark", "iters", "ns_per_op", "bytes_per_op", "allocs_per_op"
     }
     /^Benchmark/ {
       ns = ""; bytes = ""; allocs = ""
       for (i = 3; i < NF; i++) {
         if ($(i+1) == "ns/op") ns = $i
         if ($(i+1) == "B/op") bytes = $i
         if ($(i+1) == "allocs/op") allocs = $i
       }
       print $1, $2, ns, bytes, allocs
     }' "$RAW" >"$TSV"

# Same rows as JSON for structured diffing across PRs.
awk 'BEGIN { print "{"; printf "  \"benchmarks\": [" ; first = 1 }
     /^Benchmark/ {
       ns = ""; bytes = ""; allocs = ""
       for (i = 3; i < NF; i++) {
         if ($(i+1) == "ns/op") ns = $i
         if ($(i+1) == "B/op") bytes = $i
         if ($(i+1) == "allocs/op") allocs = $i
       }
       if (!first) printf ","
       first = 0
       printf "\n    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", $1, $2, ns, bytes, allocs
     }
     END { print "\n  ]"; print "}" }' "$RAW" >"$JSON"

echo "wrote $RAW, $TSV, $JSON" >&2
