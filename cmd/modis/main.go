// Command modis runs skyline dataset discovery over CSV source tables:
// given a target column, a model family and a set of performance
// measures, it generates an ε-skyline set of datasets and writes them
// out as CSV files. Searches run through the public engine
// (repro/modis): algorithms are picked by registry key, runs honor
// -timeout via context, and -json emits the machine-readable Report.
//
// With -remote the same CLI drives a modisd daemon instead of running
// in-process: the flags become a job submission against one of the
// daemon's named workloads, progress streams back over SSE, and the
// report is fetched when the job completes (skyline CSVs are not
// materialized remotely — the daemon owns the data; use -json for the
// full report).
//
// Usage:
//
//	modis -tables water.csv,basin.csv -target ci_index -model gbm \
//	      -algo bi -eps 0.1 -maxl 6 -n 300 -out ./skyline
//	modis -tables water.csv -target ci_index -json -timeout 30s
//	modis -remote localhost:8080 -workload t3 -algo bi -n 300 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/table"
	"repro/modis"
	"repro/modis/serve"
)

func main() {
	var (
		tablesFlag = flag.String("tables", "", "comma-separated CSV files (required)")
		target     = flag.String("target", "", "target column name (required)")
		model      = flag.String("model", "gbm", "model family: gbm|forest|histgbm|linear|logistic")
		algo       = flag.String("algo", "bi", "algorithm: "+strings.Join(modis.Algorithms(), "|")+" (legacy names like bimodis also accepted)")
		eps        = flag.Float64("eps", 0.1, "epsilon of the ε-skyline")
		maxl       = flag.Int("maxl", 6, "maximum operator path length")
		n          = flag.Int("n", 300, "valuation budget N")
		k          = flag.Int("k", 5, "diversified set size (div)")
		alpha      = flag.Float64("alpha", 0.5, "diversification balance (div)")
		adomK      = flag.Int("adomk", 8, "max cluster literals per attribute")
		parallel   = flag.Int("parallel", 0, "valuation workers per run: model inferences of independent candidate datasets run concurrently (0 = all CPUs, 1 = sequential; results are identical either way)")
		outDir     = flag.String("out", "skyline_out", "output directory for skyline CSVs")
		surrogate  = flag.Bool("surrogate", true, "use the MO-GBM performance estimator")
		describe   = flag.Bool("describe", false, "print per-column profiles of the universal table")
		timeout    = flag.Duration("timeout", 0, "search deadline (0 = none); expiry aborts with context.DeadlineExceeded")
		jsonOut    = flag.Bool("json", false, "print the run Report as JSON on stdout (status goes to stderr)")
		progress   = flag.Bool("progress", false, "stream per-level search progress to stderr")
		remote     = flag.String("remote", "", "modisd address; run the job on the daemon instead of in-process")
		remoteWl   = flag.String("workload", "", "daemon workload name to run against (-remote mode)")
	)
	flag.Parse()

	if *remote != "" {
		runRemote(*remote, *remoteWl, *algo, *n, *eps, *maxl, *k, *alpha, *parallel, *timeout, *jsonOut, *progress)
		return
	}

	if *tablesFlag == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "modis: -tables and -target are required")
		flag.Usage()
		os.Exit(2)
	}

	// Human-readable chatter goes to stdout normally, but to stderr
	// under -json so stdout stays one parseable document.
	info := os.Stdout
	if *jsonOut {
		info = os.Stderr
	}

	var tables []*table.Table
	for _, path := range strings.Split(*tablesFlag, ",") {
		path = strings.TrimSpace(path)
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		t, err := table.ReadCSV(name, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
		fmt.Fprintf(info, "loaded %s\n", t)
	}

	w, err := datagen.NewCustomWorkload(datagen.CustomConfig{
		Tables:    tables,
		Target:    *target,
		ModelKind: *model,
		AdomK:     *adomK,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(info, "universal table: %d rows, %d cols; search space: %d entries\n",
		w.Lake.Universal.NumRows(), w.Lake.Universal.NumCols(), w.Space.Size())
	if *describe {
		if err := w.Lake.Universal.WriteDescription(info); err != nil {
			fatal(err)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []modis.Option{
		modis.WithBudget(*n),
		modis.WithEpsilon(*eps),
		modis.WithMaxLevel(*maxl),
		modis.WithK(*k),
		modis.WithAlpha(*alpha),
		modis.WithSeed(1),
		modis.WithParallelism(*parallel),
	}
	if *progress {
		opts = append(opts, modis.WithProgress(func(ev modis.Event) {
			fmt.Fprintf(os.Stderr, "progress: level=%d frontier=%d valuated=%d skyline=%d done=%v\n",
				ev.Level, ev.Frontier, ev.Valuated, ev.SkylineSize, ev.Done)
		}))
	}

	rep, err := modis.NewEngine(w.NewConfig(*surrogate)).Run(ctx, *algo, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(info, "valuated %d states (%d exact model calls) in %v; skyline size %d\n",
		rep.Valuated, rep.ExactCalls, rep.Wall.Round(1e6), len(rep.Skyline))

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for i, c := range rep.Skyline {
		d := w.Space.Materialize(c.Bits)
		path := filepath.Join(*outDir, fmt.Sprintf("skyline_%02d.csv", i+1))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := d.WriteCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(info, "  %s: perf=%v size=(%d,%d)\n", path, c.Perf, d.NumRows(), d.NumCols())
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	}
}

// runRemote submits the run to a modisd daemon and reports back: the
// same algorithm and tuning flags, a named daemon-side workload
// instead of local CSVs.
func runRemote(addr, workload, algo string, n int, eps float64, maxl, k int, alpha float64, parallel int, timeout time.Duration, jsonOut, progress bool) {
	if workload == "" {
		fmt.Fprintln(os.Stderr, "modis: -remote needs -workload (try GET /v1/workloads on the daemon)")
		os.Exit(2)
	}
	ctx := context.Background()
	cl := serve.NewClient(addr)
	info := os.Stdout
	if jsonOut {
		info = os.Stderr
	}

	seed := int64(1)
	req := serve.SubmitRequest{
		Workload:  workload,
		Algorithm: algo,
		Options: &serve.JobOptions{
			Budget:      &n,
			Epsilon:     &eps,
			MaxLevel:    &maxl,
			K:           &k,
			Alpha:       &alpha,
			Seed:        &seed,
			Parallelism: &parallel,
		},
		TimeoutMS: timeout.Milliseconds(),
	}
	st, err := cl.Submit(ctx, req)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(info, "submitted %s (%s on %s)\n", st.JobID, st.Algorithm, workload)

	if progress {
		if _, err := cl.Events(ctx, st.JobID, func(ev modis.Event) {
			fmt.Fprintf(os.Stderr, "progress: level=%d frontier=%d valuated=%d skyline=%d done=%v\n",
				ev.Level, ev.Frontier, ev.Valuated, ev.SkylineSize, ev.Done)
		}); err != nil {
			fatal(err)
		}
	}
	final, err := cl.Wait(ctx, st.JobID, 100*time.Millisecond)
	if err != nil {
		fatal(err)
	}
	switch final.Status {
	case serve.StatusDone:
	default:
		fatal(fmt.Errorf("job %s ended %s: %s", st.JobID, final.Status, final.Error))
	}
	rep := final.Report
	fmt.Fprintf(info, "valuated %d states (%d exact model calls) in %v (queued %v, batched=%v); skyline size %d\n",
		rep.Valuated, rep.ExactCalls, rep.Wall.Round(1e6), rep.Queued.Round(1e6), rep.Batched, len(rep.Skyline))
	for i, c := range rep.Skyline {
		fmt.Fprintf(info, "  candidate %02d: perf=%v entries=%d\n", i+1, c.Perf, c.Ones)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	msg := err.Error()
	// Engine and option errors already carry the package prefix.
	if !strings.HasPrefix(msg, "modis:") {
		msg = "modis: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
