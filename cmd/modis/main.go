// Command modis runs skyline dataset discovery over CSV source tables:
// given a target column, a model family and a set of performance
// measures, it generates an ε-skyline set of datasets and writes them
// out as CSV files. Searches run through the public engine
// (repro/modis): algorithms are picked by registry key, runs honor
// -timeout via context, and -json emits the machine-readable Report.
//
// Usage:
//
//	modis -tables water.csv,basin.csv -target ci_index -model gbm \
//	      -algo bi -eps 0.1 -maxl 6 -n 300 -out ./skyline
//	modis -tables water.csv -target ci_index -json -timeout 30s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datagen"
	"repro/internal/table"
	"repro/modis"
)

func main() {
	var (
		tablesFlag = flag.String("tables", "", "comma-separated CSV files (required)")
		target     = flag.String("target", "", "target column name (required)")
		model      = flag.String("model", "gbm", "model family: gbm|forest|histgbm|linear|logistic")
		algo       = flag.String("algo", "bi", "algorithm: "+strings.Join(modis.Algorithms(), "|")+" (legacy names like bimodis also accepted)")
		eps        = flag.Float64("eps", 0.1, "epsilon of the ε-skyline")
		maxl       = flag.Int("maxl", 6, "maximum operator path length")
		n          = flag.Int("n", 300, "valuation budget N")
		k          = flag.Int("k", 5, "diversified set size (div)")
		alpha      = flag.Float64("alpha", 0.5, "diversification balance (div)")
		adomK      = flag.Int("adomk", 8, "max cluster literals per attribute")
		parallel   = flag.Int("parallel", 0, "valuation workers per run: model inferences of independent candidate datasets run concurrently (0 = all CPUs, 1 = sequential; results are identical either way)")
		outDir     = flag.String("out", "skyline_out", "output directory for skyline CSVs")
		surrogate  = flag.Bool("surrogate", true, "use the MO-GBM performance estimator")
		describe   = flag.Bool("describe", false, "print per-column profiles of the universal table")
		timeout    = flag.Duration("timeout", 0, "search deadline (0 = none); expiry aborts with context.DeadlineExceeded")
		jsonOut    = flag.Bool("json", false, "print the run Report as JSON on stdout (status goes to stderr)")
		progress   = flag.Bool("progress", false, "stream per-level search progress to stderr")
	)
	flag.Parse()

	if *tablesFlag == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "modis: -tables and -target are required")
		flag.Usage()
		os.Exit(2)
	}

	// Human-readable chatter goes to stdout normally, but to stderr
	// under -json so stdout stays one parseable document.
	info := os.Stdout
	if *jsonOut {
		info = os.Stderr
	}

	var tables []*table.Table
	for _, path := range strings.Split(*tablesFlag, ",") {
		path = strings.TrimSpace(path)
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		t, err := table.ReadCSV(name, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
		fmt.Fprintf(info, "loaded %s\n", t)
	}

	w, err := datagen.NewCustomWorkload(datagen.CustomConfig{
		Tables:    tables,
		Target:    *target,
		ModelKind: *model,
		AdomK:     *adomK,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(info, "universal table: %d rows, %d cols; search space: %d entries\n",
		w.Lake.Universal.NumRows(), w.Lake.Universal.NumCols(), w.Space.Size())
	if *describe {
		if err := w.Lake.Universal.WriteDescription(info); err != nil {
			fatal(err)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []modis.Option{
		modis.WithBudget(*n),
		modis.WithEpsilon(*eps),
		modis.WithMaxLevel(*maxl),
		modis.WithK(*k),
		modis.WithAlpha(*alpha),
		modis.WithSeed(1),
		modis.WithParallelism(*parallel),
	}
	if *progress {
		opts = append(opts, modis.WithProgress(func(ev modis.Event) {
			fmt.Fprintf(os.Stderr, "progress: level=%d frontier=%d valuated=%d skyline=%d done=%v\n",
				ev.Level, ev.Frontier, ev.Valuated, ev.SkylineSize, ev.Done)
		}))
	}

	rep, err := modis.NewEngine(w.NewConfig(*surrogate)).Run(ctx, *algo, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(info, "valuated %d states (%d exact model calls) in %v; skyline size %d\n",
		rep.Valuated, rep.ExactCalls, rep.Wall.Round(1e6), len(rep.Skyline))

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for i, c := range rep.Skyline {
		d := w.Space.Materialize(c.Bits)
		path := filepath.Join(*outDir, fmt.Sprintf("skyline_%02d.csv", i+1))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := d.WriteCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(info, "  %s: perf=%v size=(%d,%d)\n", path, c.Perf, d.NumRows(), d.NumCols())
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	msg := err.Error()
	// Engine and option errors already carry the package prefix.
	if !strings.HasPrefix(msg, "modis:") {
		msg = "modis: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
