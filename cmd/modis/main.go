// Command modis runs skyline dataset discovery over CSV source tables:
// given a target column, a model family and a set of performance
// measures, it generates an ε-skyline set of datasets and writes them
// out as CSV files.
//
// Usage:
//
//	modis -tables water.csv,basin.csv -target ci_index -model gbm \
//	      -algo bimodis -eps 0.1 -maxl 6 -n 300 -out ./skyline
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/table"
)

func main() {
	var (
		tablesFlag = flag.String("tables", "", "comma-separated CSV files (required)")
		target     = flag.String("target", "", "target column name (required)")
		model      = flag.String("model", "gbm", "model family: gbm|forest|histgbm|linear|logistic")
		algo       = flag.String("algo", "bimodis", "algorithm: apx|bimodis|nobimodis|divmodis")
		eps        = flag.Float64("eps", 0.1, "epsilon of the ε-skyline")
		maxl       = flag.Int("maxl", 6, "maximum operator path length")
		n          = flag.Int("n", 300, "valuation budget N")
		k          = flag.Int("k", 5, "diversified set size (divmodis)")
		alpha      = flag.Float64("alpha", 0.5, "diversification balance (divmodis)")
		adomK      = flag.Int("adomk", 8, "max cluster literals per attribute")
		outDir     = flag.String("out", "skyline_out", "output directory for skyline CSVs")
		surrogate  = flag.Bool("surrogate", true, "use the MO-GBM performance estimator")
		describe   = flag.Bool("describe", false, "print per-column profiles of the universal table")
	)
	flag.Parse()

	if *tablesFlag == "" || *target == "" {
		fmt.Fprintln(os.Stderr, "modis: -tables and -target are required")
		flag.Usage()
		os.Exit(2)
	}

	var tables []*table.Table
	for _, path := range strings.Split(*tablesFlag, ",") {
		path = strings.TrimSpace(path)
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		t, err := table.ReadCSV(name, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		tables = append(tables, t)
		fmt.Printf("loaded %s\n", t)
	}

	w, err := datagen.NewCustomWorkload(datagen.CustomConfig{
		Tables:    tables,
		Target:    *target,
		ModelKind: *model,
		AdomK:     *adomK,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("universal table: %d rows, %d cols; search space: %d entries\n",
		w.Lake.Universal.NumRows(), w.Lake.Universal.NumCols(), w.Space.Size())
	if *describe {
		if err := w.Lake.Universal.WriteDescription(os.Stdout); err != nil {
			fatal(err)
		}
	}

	cfg := w.NewConfig(*surrogate)
	opts := core.Options{N: *n, Eps: *eps, MaxLevel: *maxl, K: *k, Alpha: *alpha, Seed: 1}

	var run func() (*core.Result, error)
	switch *algo {
	case "apx":
		run = func() (*core.Result, error) { return core.ApxMODis(cfg, opts) }
	case "bimodis":
		run = func() (*core.Result, error) { return core.BiMODis(cfg, opts) }
	case "nobimodis":
		run = func() (*core.Result, error) { return core.NOBiMODis(cfg, opts) }
	case "divmodis":
		run = func() (*core.Result, error) { return core.DivMODis(cfg, opts) }
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	res, err := run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("valuated %d states (%d exact model calls) in %v; skyline size %d\n",
		res.Stats.Valuated, res.Stats.ExactCalls, res.Stats.Elapsed.Round(1e6), len(res.Skyline))

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for i, c := range res.Skyline {
		d := w.Space.Materialize(c.Bits)
		path := filepath.Join(*outDir, fmt.Sprintf("skyline_%02d.csv", i+1))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := d.WriteCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
		fmt.Printf("  %s: perf=%v size=(%d,%d)\n", path, c.Perf, d.NumRows(), d.NumCols())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "modis:", err)
	os.Exit(1)
}
