// Command modisbench regenerates every table and figure of the MODis
// paper's evaluation over the synthetic data lakes (see DESIGN.md for
// the per-experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	modisbench -exp all
//	modisbench -exp table4_t2,fig8_eps -timeout 10m
//	modisbench -list
//
// Every experiment runs its searches through the public modis engine
// (repro/modis) and honors the -timeout deadline via context.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

type experiment struct {
	id   string
	desc string
	run  func(ctx context.Context) ([]*exp.Report, error)
}

func single(f func(ctx context.Context) (*exp.Report, error)) func(ctx context.Context) ([]*exp.Report, error) {
	return func(ctx context.Context) ([]*exp.Report, error) {
		r, err := f(ctx)
		if err != nil {
			return nil, err
		}
		return []*exp.Report{r}, nil
	}
}

func experiments() []experiment {
	return []experiment{
		{"table4_t2", "Table 4: methods comparison on T2 (house)", single(exp.Table4T2)},
		{"table4_t4", "Table 4: methods comparison on T4 (mental)", single(exp.Table4T4)},
		{"table5_t5", "Table 5: MODis methods on T5 (link regression)", single(exp.Table5T5)},
		{"table6_t1", "Table 6: methods comparison on T1 (movie)", single(exp.Table6T1)},
		{"table6_t3", "Table 6: methods comparison on T3 (avocado)", single(exp.Table6T3)},
		{"fig7", "Figure 7: effectiveness radar on T1, T3", exp.Fig7},
		{"fig8_eps", "Figure 8(a,c): quality vs epsilon", exp.Fig8Epsilon},
		{"fig8_maxl", "Figure 8(b,d): quality vs maxl", exp.Fig8MaxL},
		{"fig9", "Figure 9: DivMODis vs alpha", single(exp.Fig9Alpha)},
		{"fig10_eff", "Figure 10(a,b)+13(d): efficiency vs eps/maxl", exp.Fig10Efficiency},
		{"fig10_scal", "Figure 10(c,d): scalability vs |A|, |adom|", exp.Fig10Scalability},
		{"fig13", "Figure 13(a,b): T5 efficiency", exp.Fig13T5},
		{"fig14", "Figure 14: T5 scalability", exp.Fig14T5},
		{"fig15", "Figure 15: T5 sensitivity", exp.Fig15T5},
		{"case1", "Case study 1: find data with models", single(exp.Case1)},
		{"case2", "Case study 2: test data generation under bounds", single(exp.Case2)},
	}
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	timeout := flag.Duration("timeout", 0, "overall deadline for the selected experiments (0 = none)")
	parallel := flag.Int("parallel", 1, "valuation workers per discovery run (0 = all CPUs, 1 = sequential); results are identical at any setting")
	flag.Parse()
	exp.DefaultParallelism = *parallel

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	all := experiments()
	if *list {
		for _, e := range all {
			fmt.Printf("%-12s %s\n", e.id, e.desc)
		}
		return
	}

	want := map[string]bool{}
	runAll := *expFlag == "all"
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(id)] = true
	}

	ran := 0
	for _, e := range all {
		if !runAll && !want[e.id] {
			continue
		}
		reports, err := e.run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modisbench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		for _, r := range reports {
			fmt.Println(r.String())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "modisbench: no experiment matched %q (use -list)\n", *expFlag)
		os.Exit(2)
	}
}
