// Command modischaos is the scripted chaos harness of the serving
// fleet: it launches real modisd daemons as subprocesses, fronts each
// with a TCP fault proxy (repro/internal/chaos), routes through the
// same consistent-hash proxy modisproxy runs, and drives keyed
// submissions through the faults a real deployment sees — dropped
// connections, slow paths, mid-stream resets, partitions, and
// SIGKILLed nodes that warm-restart from their state directory.
//
// After every scenario it checks the resilience contract: no accepted
// job lost, no job duplicated (at most one completed run per
// idempotency key, fleet-wide), and every skyline byte-identical to
// the fault-free reference. The kill scenario additionally proves the
// proxy→persistence path: a job finished before the SIGKILL is still
// listed — report included — through the proxy after the warm restart,
// and a fresh submission of the same workload replays the recovered
// memo instead of re-running exact inference (zero exact calls).
//
// Usage:
//
//	go build -o /tmp/modisd ./cmd/modisd
//	go build -o /tmp/modischaos ./cmd/modischaos
//	/tmp/modischaos -modisd /tmp/modisd
//
// Exit status 0 means every invariant held; 1 lists the violations.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/modis/proxy"
	"repro/modis/serve"
)

type node struct {
	addr     string // real daemon address (stable across restarts)
	stateDir string
	cmd      *exec.Cmd
	cp       *chaos.Proxy
}

type harness struct {
	modisd  string
	rows    int
	workdir string
	nodes   []*node
	front   *http.Server
	frontLn net.Listener
	proxy   *proxy.Proxy
	cl      *serve.Client

	ref        map[string]string // workload -> fault-free skyline bytes
	accepted   []chaos.Accepted
	violations []string
}

func main() {
	var (
		modisd = flag.String("modisd", "modisd", "path to the modisd binary to chaos-test")
		rows   = flag.Int("rows", 80, "row scale of the built-in workloads")
		keep   = flag.Bool("keep", false, "keep the scratch directory (state dirs, logs) after the run")
	)
	flag.Parse()

	h := &harness{modisd: *modisd, rows: *rows, ref: map[string]string{}}
	var err error
	h.workdir, err = os.MkdirTemp("", "modischaos-*")
	if err != nil {
		fatal(err)
	}
	if !*keep {
		defer os.RemoveAll(h.workdir)
	} else {
		defer fmt.Fprintf(os.Stderr, "modischaos: scratch kept at %s\n", h.workdir)
	}
	defer h.teardown()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	if err := h.setup(ctx); err != nil {
		fatal(err)
	}
	scenarios := []struct {
		name string
		run  func(context.Context) error
	}{
		{"baseline", h.scenarioBaseline},
		{"drop", h.scenarioDrop},
		{"slow", h.scenarioSlow},
		{"reset", h.scenarioReset},
		{"kill", h.scenarioKill},
	}
	for _, sc := range scenarios {
		fmt.Fprintf(os.Stderr, "== scenario %s\n", sc.name)
		if err := sc.run(ctx); err != nil {
			h.violations = append(h.violations, fmt.Sprintf("scenario %s: %v", sc.name, err))
			break
		}
	}

	// The global contract, checked through the proxy against everything
	// every scenario accepted.
	h.violations = append(h.violations, chaos.CheckInvariants(ctx, h.cl, h.accepted, h.ref)...)
	if len(h.violations) > 0 {
		for _, v := range h.violations {
			fmt.Fprintf(os.Stderr, "VIOLATION: %s\n", v)
		}
		h.teardown()
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "modischaos: %d accepted jobs, all invariants held: OK\n", len(h.accepted))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "modischaos: %v\n", err)
	os.Exit(1)
}

// setup starts two daemons, wraps each in a fault proxy, and fronts
// the pair with the routing proxy.
func (h *harness) setup(ctx context.Context) error {
	for i := 0; i < 2; i++ {
		port, err := freePort()
		if err != nil {
			return err
		}
		n := &node{
			addr:     fmt.Sprintf("127.0.0.1:%d", port),
			stateDir: filepath.Join(h.workdir, fmt.Sprintf("state%d", i)),
		}
		if err := h.startDaemon(n); err != nil {
			return err
		}
		if n.cp, err = chaos.NewProxy("127.0.0.1:0", n.addr, chaos.Faults{}); err != nil {
			return err
		}
		h.nodes = append(h.nodes, n)
	}
	for _, n := range h.nodes {
		if err := waitHealthy(ctx, n.addr); err != nil {
			return err
		}
	}

	var addrs []string
	for _, n := range h.nodes {
		addrs = append(addrs, n.cp.Addr())
	}
	h.proxy = proxy.New(proxy.Options{
		Nodes:          addrs,
		HealthInterval: -1, // swept explicitly, so scenarios control when the view changes
		Breaker:        proxy.BreakerOptions{Cooldown: 200 * time.Millisecond},
	})
	h.proxy.CheckNow(ctx)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	h.frontLn = ln
	h.front = &http.Server{Handler: h.proxy}
	go h.front.Serve(ln)

	h.cl = serve.NewClient(ln.Addr().String()).WithRetry(serve.RetryPolicy{
		MaxAttempts: 8, BaseBackoff: 25 * time.Millisecond, MaxBackoff: 400 * time.Millisecond,
	})
	return nil
}

func (h *harness) teardown() {
	if h.front != nil {
		h.front.Close()
		h.front = nil
	}
	if h.proxy != nil {
		h.proxy.Close()
		h.proxy = nil
	}
	for _, n := range h.nodes {
		if n.cp != nil {
			n.cp.Close()
		}
		if n.cmd != nil && n.cmd.Process != nil {
			n.cmd.Process.Kill()
			n.cmd.Wait()
		}
	}
	h.nodes = nil
}

func (h *harness) startDaemon(n *node) error {
	cmd := exec.Command(h.modisd,
		"-addr", n.addr, "-advertise", n.addr,
		"-tasks", "t1,t3", "-rows", fmt.Sprint(h.rows),
		"-state-dir", n.stateDir, "-commit-interval", "20ms",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", h.modisd, err)
	}
	n.cmd = cmd
	return nil
}

// sigkill kills the daemon the way a crash does — no drain, no final
// flush — and reaps it.
func (n *node) sigkill() error {
	if err := n.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		return err
	}
	n.cmd.Wait()
	n.cmd = nil
	return nil
}

func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port, nil
}

func waitHealthy(ctx context.Context, addr string) error {
	url := "http://" + addr + "/healthz"
	for {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("node %s never became healthy: %w", addr, ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func submitReq(workload string) serve.SubmitRequest {
	eps, lvl, seed := 0.15, 2, int64(2)
	return serve.SubmitRequest{
		Workload:  workload,
		Algorithm: "bi",
		Options:   &serve.JobOptions{Epsilon: &eps, MaxLevel: &lvl, Seed: &seed},
		TimeoutMS: 120_000,
	}
}

// submitAndWait drives one keyed submission to completion through the
// fleet and records it for the invariant sweep.
func (h *harness) submitAndWait(ctx context.Context, workload string) (*serve.JobStatus, error) {
	req := submitReq(workload)
	req.IdempotencyKey = serve.NewIdempotencyKey()
	st, err := h.cl.Submit(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("submit %s: %w", workload, err)
	}
	h.accepted = append(h.accepted, chaos.Accepted{Key: req.IdempotencyKey, JobID: st.JobID, Config: workload})
	final, err := h.cl.Wait(ctx, st.JobID, 50*time.Millisecond)
	if err != nil {
		return nil, fmt.Errorf("waiting for %s (%s): %w", st.JobID, workload, err)
	}
	if final.Status != serve.StatusDone {
		return nil, fmt.Errorf("job %s (%s) ended %s: %s", st.JobID, workload, final.Status, final.Error)
	}
	return final, nil
}

func (h *harness) setFaults(f chaos.Faults) {
	for _, n := range h.nodes {
		n.cp.SetFaults(f)
	}
}

// scenarioBaseline records the fault-free reference skylines the other
// scenarios are held to.
func (h *harness) scenarioBaseline(ctx context.Context) error {
	for _, wl := range []string{"t1", "t3"} {
		final, err := h.submitAndWait(ctx, wl)
		if err != nil {
			return err
		}
		sky, err := chaos.SkylineJSON(final)
		if err != nil {
			return err
		}
		h.ref[wl] = sky
	}
	return nil
}

// scenarioDrop: every third connection to either node dies before a
// byte flows; retries under the idempotency key absorb it.
func (h *harness) scenarioDrop(ctx context.Context) error {
	h.setFaults(chaos.Faults{DropEvery: 3})
	defer h.setFaults(chaos.Faults{})
	for i := 0; i < 4; i++ {
		if _, err := h.submitAndWait(ctx, []string{"t1", "t3"}[i%2]); err != nil {
			return err
		}
	}
	return nil
}

// scenarioSlow: both paths gain latency; nothing fails, everything is
// merely late — results must be unchanged.
func (h *harness) scenarioSlow(ctx context.Context) error {
	h.setFaults(chaos.Faults{Latency: 10 * time.Millisecond})
	defer h.setFaults(chaos.Faults{})
	for _, wl := range []string{"t1", "t3"} {
		if _, err := h.submitAndWait(ctx, wl); err != nil {
			return err
		}
	}
	return nil
}

// scenarioReset: responses from node 0 are cut by an RST after 256
// bytes — acceptances may be lost after the node processed them, the
// exact ambiguity the idempotency key resolves. The submission is
// retried under one key with the fault on, then the fault lifts and
// the same key must resolve to exactly one completed job.
func (h *harness) scenarioReset(ctx context.Context) error {
	h.nodes[0].cp.SetFaults(chaos.Faults{ResetAfterBytes: 256})
	key := serve.NewIdempotencyKey()
	req := submitReq("t1")
	req.IdempotencyKey = key
	shortCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	st, err := h.cl.Submit(shortCtx, req)
	cancel()
	h.nodes[0].cp.SetFaults(chaos.Faults{})
	if err != nil {
		// Every response was cut before the acceptance arrived; with the
		// fault lifted the same key resolves the ambiguity.
		if st, err = h.cl.Submit(ctx, req); err != nil {
			return fmt.Errorf("keyed submit after resets lifted: %w", err)
		}
	}
	h.accepted = append(h.accepted, chaos.Accepted{Key: key, JobID: st.JobID, Config: "t1"})
	if final, err := h.cl.Wait(ctx, st.JobID, 50*time.Millisecond); err != nil {
		return err
	} else if final.Status != serve.StatusDone {
		return fmt.Errorf("job %s ended %s: %s", st.JobID, final.Status, final.Error)
	}
	return nil
}

// scenarioKill is the proxy→persistence end-to-end: finish a job, find
// its owner, SIGKILL the owner mid-fleet, warm-restart it from its
// state directory, and require (1) the finished job is still listed —
// report included — through the proxy, and (2) a fresh submission of
// the same workload warm-starts from the recovered memo: done, with
// zero exact-inference calls.
func (h *harness) scenarioKill(ctx context.Context) error {
	final, err := h.submitAndWait(ctx, "t3")
	if err != nil {
		return err
	}
	owner, err := h.ownerOf(ctx, final.JobID)
	if err != nil {
		return err
	}
	// Persistence is write-behind (-commit-interval 20ms): give the
	// committer a few intervals so the ledger and memo tails are durable
	// before the crash — a SIGKILL inside the commit window legitimately
	// loses the uncommitted tail, which is not what this scenario tests.
	time.Sleep(500 * time.Millisecond)
	fmt.Fprintf(os.Stderr, "   SIGKILL owner %s of job %s\n", owner.addr, final.JobID)
	if err := owner.sigkill(); err != nil {
		return err
	}
	h.proxy.CheckNow(ctx) // the fleet sees the dead node

	if err := h.startDaemon(owner); err != nil {
		return err
	}
	if err := waitHealthy(ctx, owner.addr); err != nil {
		return err
	}
	h.proxy.CheckNow(ctx) // and the warm restart

	// (1) The pre-kill job survived the crash: listed through the proxy,
	// done, report intact, skyline still the reference one.
	recovered, err := h.cl.Status(ctx, final.JobID)
	if err != nil {
		return fmt.Errorf("job %s lost across warm restart: %w", final.JobID, err)
	}
	if recovered.Status != serve.StatusDone || recovered.Report == nil {
		return fmt.Errorf("job %s recovered as %s (report present: %v), want done with report",
			final.JobID, recovered.Status, recovered.Report != nil)
	}
	sky, err := chaos.SkylineJSON(recovered)
	if err != nil {
		return err
	}
	if sky != h.ref["t3"] {
		return fmt.Errorf("job %s skyline changed across warm restart", final.JobID)
	}

	// (2) The memo warm-started too: resubmitting the workload finds
	// every needed valuation on disk and runs zero exact inferences.
	resub, err := h.submitAndWait(ctx, "t3")
	if err != nil {
		return err
	}
	if resub.Report.ExactCalls != 0 {
		return fmt.Errorf("resubmit after warm restart ran %d exact inferences, want 0 (memo not recovered)",
			resub.Report.ExactCalls)
	}
	return nil
}

// ownerOf finds which daemon ran a job by asking the nodes directly
// (around the fault proxies).
func (h *harness) ownerOf(ctx context.Context, jobID string) (*node, error) {
	for _, n := range h.nodes {
		if _, err := serve.NewClient(n.addr).Status(ctx, jobID); err == nil {
			return n, nil
		}
	}
	return nil, fmt.Errorf("no node owns job %s", jobID)
}
