// Command modisd is the MODis serving daemon: it loads a catalog of
// discovery workloads and serves the asynchronous job API over HTTP —
// submit with POST /v1/jobs, observe with GET /v1/jobs/{id} and the
// /events SSE stream, cancel with DELETE — or over JSONL on
// stdin/stdout for scripting (-jsonl). Concurrent jobs over one
// workload share an engine (memoized valuations) and align their
// frontier valuation windows into batched exact-inference passes; see
// docs/serving.md for the protocol and curl examples.
//
// Workloads come from two sources, combinable:
//
//	modisd -tasks t3,t1 -rows 140             # built-in paper tasks
//	modisd -tables water.csv -target ci_index # CSV-backed custom workload
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, drains the ones
// in flight (bounded by -drain), and exits.
//
// Usage:
//
//	modisd -addr :8080 -tasks t3 -rows 140
//	modisd -jsonl -tables water.csv -target ci_index -model gbm
//	modis -remote localhost:8080 -workload t3 -algo bi   # CLI against it
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/datagen"
	"repro/internal/fst"
	"repro/internal/table"
	"repro/modis/serve"
)

// taskBuilders are the built-in paper workloads servable by name.
var taskBuilders = map[string]func(rows int) *datagen.Workload{
	"t1": func(rows int) *datagen.Workload { return datagen.T1Movie(datagen.TaskConfig{Rows: rows}) },
	"t2": func(rows int) *datagen.Workload { return datagen.T2House(datagen.TaskConfig{Rows: rows}) },
	"t3": func(rows int) *datagen.Workload { return datagen.T3Avocado(datagen.TaskConfig{Rows: rows}) },
	"t4": func(rows int) *datagen.Workload { return datagen.T4Mental(datagen.TaskConfig{Rows: rows}) },
	"t5": func(rows int) *datagen.Workload {
		return datagen.T5Link(datagen.T5Config{Users: rows / 4, Items: rows / 8})
	},
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		jsonl     = flag.Bool("jsonl", false, "serve the JSONL protocol on stdin/stdout instead of HTTP")
		tasks     = flag.String("tasks", "", "comma-separated built-in workloads to serve: t1,t2,t3,t4,t5")
		rows      = flag.Int("rows", 0, "row scale of built-in tasks (0 = task defaults)")
		tablesArg = flag.String("tables", "", "comma-separated CSV files of a custom workload")
		target    = flag.String("target", "", "target column of the custom workload")
		model     = flag.String("model", "gbm", "model family of the custom workload: gbm|forest|histgbm|linear|logistic")
		adomK     = flag.Int("adomk", 8, "max cluster literals per attribute (custom workload)")
		workload  = flag.String("workload", "custom", "catalog name of the custom workload")
		surrogate = flag.Bool("surrogate", true, "use the MO-GBM performance estimator")
		parallel  = flag.Int("parallel", 0, "workers per batched exact-inference pass (0 = all CPUs)")
		align     = flag.Duration("align", 0, "frontier alignment window (0 = default 2ms)")
		maxJobs   = flag.Int("max-concurrent", 0, "max searches executing at once; excess jobs queue (0 = unbounded)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")

		stateDir  = flag.String("state-dir", "", "directory for crash-safe state (memoized valuations + job ledger); empty = in-memory only")
		commitInt = flag.Duration("commit-interval", 100*time.Millisecond, "max latency before pending state records are committed to disk")
		commitThr = flag.Int("commit-threshold", 64, "pending state records that force an immediate commit")
		ledgerWin = flag.Int("ledger-window", 128, "finished jobs kept fully in memory; older ones are served from the on-disk ledger")
	)
	flag.Parse()

	workloads, err := buildCatalog(*tasks, *rows, *tablesArg, *target, *model, *adomK, *workload, *surrogate)
	if err != nil {
		fatal(err)
	}
	if len(workloads) == 0 {
		fatal(errors.New("no workloads: give -tasks and/or -tables/-target"))
	}

	// Crash-safe state: recover the memo of every workload (a restarted
	// daemon warm-starts from its persisted valuations) and the job
	// ledger. Persistence failures are never fatal — a store that can't
	// open leaves that workload in-memory and shows up in /healthz.
	var persist *serve.Persistence
	if *stateDir != "" {
		var err error
		persist, err = serve.OpenPersistence(serve.PersistOptions{
			Dir:             *stateDir,
			CommitInterval:  *commitInt,
			CommitThreshold: *commitThr,
		})
		if err != nil {
			fatal(err)
		}
		for name, cfg := range workloads {
			if cfg.Tests == nil {
				cfg.Tests = fst.NewTestSet()
			}
			if err := persist.AttachMemo(name, cfg.Tests); err != nil {
				fmt.Fprintf(os.Stderr, "modisd: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "modisd: workload %s warm-starts with %d memoized valuations\n", name, cfg.Tests.Len())
			}
		}
	}

	sched := serve.NewScheduler(serve.SchedulerOptions{
		AlignWindow:   *align,
		Parallelism:   *parallel,
		MaxConcurrent: *maxJobs,
		Persist:       persist,
		LedgerWindow:  *ledgerWin,
	})
	srv := serve.NewServer(sched, workloads)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *jsonl {
		// Scripting mode: requests on stdin, responses on stdout; EOF or
		// a signal ends the session, after in-flight jobs drained.
		if err := srv.ServeJSONL(ctx, os.Stdin, os.Stdout); err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
		drainAndClose(sched, srv, persist, *drain)
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()
	names := make([]string, 0, len(workloads))
	for n := range workloads {
		names = append(names, n)
	}
	fmt.Fprintf(os.Stderr, "modisd: serving %s on %s\n", strings.Join(names, ", "), ln.Addr())

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "modisd: shutting down, draining in-flight jobs")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting, then wait for running jobs; a missed deadline
	// cancels the stragglers so the process still exits cleanly.
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "modisd: http shutdown: %v\n", err)
	}
	if err := sched.Drain(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "modisd: %v; cancelling\n", err)
		sched.CancelAll()
	}
	srv.Close()
	if persist != nil {
		// Final flush: everything memoized or finished so far becomes
		// durable before the process exits.
		persist.Close()
	}
	fmt.Fprintln(os.Stderr, "modisd: bye")
}

func drainAndClose(sched *serve.Scheduler, srv *serve.Server, persist *serve.Persistence, budget time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if err := sched.Drain(ctx); err != nil {
		sched.CancelAll()
	}
	srv.Close()
	if persist != nil {
		persist.Close()
	}
}

// buildCatalog assembles the named workload configurations.
func buildCatalog(tasks string, rows int, tablesArg, target, model string, adomK int, customName string, surrogate bool) (map[string]*fst.Config, error) {
	out := map[string]*fst.Config{}
	if tasks != "" {
		for _, name := range strings.Split(tasks, ",") {
			name = strings.ToLower(strings.TrimSpace(name))
			if name == "" {
				continue
			}
			build, ok := taskBuilders[name]
			if !ok {
				return nil, fmt.Errorf("unknown task %q (known: t1, t2, t3, t4, t5)", name)
			}
			out[name] = build(rows).NewConfig(surrogate)
		}
	}
	if tablesArg == "" && target == "" {
		return out, nil
	}
	if tablesArg == "" || target == "" {
		return nil, errors.New("custom workloads need both -tables and -target")
	}
	var tables []*table.Table
	for _, path := range strings.Split(tablesArg, ",") {
		path = strings.TrimSpace(path)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		t, err := table.ReadCSV(name, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	w, err := datagen.NewCustomWorkload(datagen.CustomConfig{
		Tables:    tables,
		Target:    target,
		ModelKind: model,
		AdomK:     adomK,
	})
	if err != nil {
		return nil, err
	}
	if _, taken := out[customName]; taken {
		return nil, fmt.Errorf("workload name %q already taken by a built-in task", customName)
	}
	out[customName] = w.NewConfig(surrogate)
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "modisd: %v\n", err)
	os.Exit(1)
}
