// Command modisd is the MODis serving daemon: it loads a catalog of
// discovery workloads and serves the asynchronous job API over HTTP —
// submit with POST /v1/jobs, observe with GET /v1/jobs/{id} and the
// /events SSE stream, cancel with DELETE — or over JSONL on
// stdin/stdout for scripting (-jsonl). Concurrent jobs over one
// workload share an engine (memoized valuations) and align their
// frontier valuation windows into batched exact-inference passes; see
// docs/serving.md for the protocol and curl examples.
//
// Every workload is registered under its canonical descriptor
// (repro/modis/workload): the descriptor's content hash is the shard
// identity the engine pool, the state directory (state-dir/<hash>/…),
// and the modisproxy routing ring all key by, so two daemons that
// build the same workload agree on who owns it without coordinating.
//
// Workloads come from two sources, combinable:
//
//	modisd -tasks t3,t1 -rows 140             # built-in paper tasks
//	modisd -tables water.csv -target ci_index # CSV-backed custom workload
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, drains the ones
// in flight (bounded by -drain), and exits.
//
// Usage:
//
//	modisd -addr :8080 -tasks t3 -rows 140
//	modisd -jsonl -tables water.csv -target ci_index -model gbm
//	modis -remote localhost:8080 -workload t3 -algo bi   # CLI against it
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/table"
	"repro/modis/serve"
	"repro/modis/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		advertise = flag.String("advertise", "", "address peers reach this node on (reported in /healthz; default: -addr)")
		jsonl     = flag.Bool("jsonl", false, "serve the JSONL protocol on stdin/stdout instead of HTTP")
		tasks     = flag.String("tasks", "", "comma-separated built-in workloads to serve: t1,t2,t3,t4,t5")
		rows      = flag.Int("rows", 0, "row scale of built-in tasks (0 = task defaults)")
		tablesArg = flag.String("tables", "", "comma-separated CSV files of a custom workload")
		target    = flag.String("target", "", "target column of the custom workload")
		model     = flag.String("model", "gbm", "model family of the custom workload: gbm|forest|histgbm|linear|logistic")
		adomK     = flag.Int("adomk", 8, "max cluster literals per attribute (custom workload)")
		custom    = flag.String("workload", "custom", "catalog name of the custom workload")
		surrogate = flag.Bool("surrogate", true, "use the MO-GBM performance estimator")
		workers   = flag.Int("workers", 0, "fixed worker count of the daemon-global inference pool (0 = all CPUs)")
		parallel  = flag.Int("parallel", 0, "max pool workers one workload shard may occupy at once (0 = whole pool)")
		align     = flag.Duration("align", 0, "frontier alignment window (0 = default 2ms)")
		maxJobs   = flag.Int("max-concurrent", 0, "max searches executing at once; excess jobs queue (0 = unbounded)")
		maxQueue  = flag.Int("max-queue", 0, "admission-queue depth past which submits shed with 503 + Retry-After (0 = unbounded; needs -max-concurrent)")
		maxQWait  = flag.Duration("max-queue-wait", 0, "max time a queued job waits for an execution slot before it is shed (0 = forever)")
		drain     = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
		appDrain  = flag.Duration("append-drain", 0, "max time a row append waits for a shard's in-flight runs to finish before rejecting with 503 (0 = 30s default; negative = no bound)")

		stateDir  = flag.String("state-dir", "", "directory for crash-safe state, one <hash>/ subdirectory per workload shard; empty = in-memory only")
		commitInt = flag.Duration("commit-interval", 100*time.Millisecond, "max latency before pending state records are committed to disk")
		commitThr = flag.Int("commit-threshold", 64, "pending state records that force an immediate commit")
		ledgerWin = flag.Int("ledger-window", 128, "finished jobs kept fully in memory; older ones are served from the on-disk ledger")
	)
	flag.Parse()

	built, err := buildCatalog(*tasks, *rows, *tablesArg, *target, *model, *adomK, *custom, *surrogate)
	if err != nil {
		fatal(err)
	}
	if len(built) == 0 {
		fatal(errors.New("no workloads: give -tasks and/or -tables/-target"))
	}

	// Crash-safe state: each registered shard recovers its memo (a
	// restarted daemon warm-starts from its persisted valuations) and
	// its job ledger from state-dir/<hash>/. Persistence failures are
	// never fatal — a store that can't open leaves that shard in-memory
	// and shows up in /healthz.
	var persist *serve.Persistence
	if *stateDir != "" {
		persist, err = serve.OpenPersistence(serve.PersistOptions{
			Dir:             *stateDir,
			CommitInterval:  *commitInt,
			CommitThreshold: *commitThr,
		})
		if err != nil {
			fatal(err)
		}
	}

	sched := serve.NewScheduler(serve.SchedulerOptions{
		AlignWindow:     *align,
		Workers:         *workers,
		Parallelism:     *parallel,
		MaxConcurrent:   *maxJobs,
		MaxQueue:        *maxQueue,
		MaxQueueWait:    *maxQWait,
		AppendDrainWait: *appDrain,
		Persist:         persist,
		LedgerWindow:    *ledgerWin,
	})
	for _, b := range built {
		if err := sched.Register(b.Desc, b.Cfg); err != nil {
			fatal(err)
		}
		if persist != nil {
			fmt.Fprintf(os.Stderr, "modisd: workload %s (shard %s) warm-starts with %d memoized valuations\n",
				b.Desc.Name, b.Desc.Short(), b.Cfg.Tests.Len())
		}
	}
	adv := *advertise
	if adv == "" {
		adv = *addr
	}
	srv := serve.NewServer(sched, serve.ServerOptions{Advertise: adv})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *jsonl {
		// Scripting mode: requests on stdin, responses on stdout; EOF or
		// a signal ends the session, after in-flight jobs drained.
		if err := srv.ServeJSONL(ctx, os.Stdin, os.Stdout); err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
		drainAndClose(sched, srv, persist, *drain)
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()
	var names []string
	for _, b := range built {
		names = append(names, fmt.Sprintf("%s[%s]", b.Desc.Name, b.Desc.Short()))
	}
	fmt.Fprintf(os.Stderr, "modisd: serving %s on %s\n", strings.Join(names, ", "), ln.Addr())

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "modisd: shutting down, draining in-flight jobs")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting, then wait for running jobs; a missed deadline
	// cancels the stragglers so the process still exits cleanly.
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "modisd: http shutdown: %v\n", err)
	}
	if err := sched.Drain(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "modisd: %v; cancelling\n", err)
		sched.CancelAll()
	}
	srv.Close()
	sched.Close()
	if persist != nil {
		// Final flush: everything memoized or finished so far becomes
		// durable before the process exits.
		persist.Close()
	}
	fmt.Fprintln(os.Stderr, "modisd: bye")
}

func drainAndClose(sched *serve.Scheduler, srv *serve.Server, persist *serve.Persistence, budget time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if err := sched.Drain(ctx); err != nil {
		sched.CancelAll()
	}
	srv.Close()
	sched.Close()
	if persist != nil {
		persist.Close()
	}
}

// buildCatalog assembles the workloads to register, each with its
// canonical descriptor.
func buildCatalog(tasks string, rows int, tablesArg, target, model string, adomK int, customName string, surrogate bool) ([]*workload.Built, error) {
	var out []*workload.Built
	seen := map[string]bool{}
	if tasks != "" {
		for _, name := range strings.Split(tasks, ",") {
			name = strings.ToLower(strings.TrimSpace(name))
			if name == "" {
				continue
			}
			b, err := workload.BuildTask(name, rows, surrogate)
			if err != nil {
				return nil, err
			}
			out = append(out, b)
			seen[b.Desc.Name] = true
		}
	}
	if tablesArg == "" && target == "" {
		return out, nil
	}
	if tablesArg == "" || target == "" {
		return nil, errors.New("custom workloads need both -tables and -target")
	}
	var tables []*table.Table
	for _, path := range strings.Split(tablesArg, ",") {
		path = strings.TrimSpace(path)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		t, err := table.ReadCSV(name, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	if seen[customName] {
		return nil, fmt.Errorf("workload name %q already taken by a built-in task", customName)
	}
	b, err := workload.FromTables(tables, workload.CustomOptions{
		Name:      customName,
		Target:    target,
		Model:     model,
		AdomK:     adomK,
		Surrogate: surrogate,
	})
	if err != nil {
		return nil, err
	}
	return append(out, b), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "modisd: %v\n", err)
	os.Exit(1)
}
