// Command modisload is the load generator of the serving layer: it
// drives one modisd node (or a modisproxy fleet front) with N
// concurrent closed-loop clients cycling through M workloads, then
// reports what the node actually did — request latency percentiles
// and throughput from the clients' own measurements, batch-merge rate
// and memo hit rate from the node's /metrics deltas over the run. The
// capture lands as JSON (machine-readable, benchmarks/BENCH_*.json
// embeds it) and optionally as a per-request TSV for plotting.
//
// Usage:
//
//	modisd -addr :8080 -tasks t1,t3 &
//	modisload -addr localhost:8080 -clients 8 -duration 30s -out capture.json
//
// The CI load-smoke job runs it with -assert-merges -assert-memo-hits:
// a run whose /metrics deltas show no merged passes or no memo hits
// exits nonzero, so the batching and memoization the daemon advertises
// are continuously proven under real concurrent load.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/modis/serve"
	"repro/modis/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8080", "node or proxy base address")
		workloads = flag.String("workloads", "", "comma-separated workload names to drive (default: the node's whole catalog)")
		algos     = flag.String("algos", "bi", "comma-separated algorithms to cycle through")
		clients   = flag.Int("clients", 4, "concurrent closed-loop clients")
		duration  = flag.Duration("duration", 30*time.Second, "how long to keep submitting")
		budget    = flag.Int("budget", 0, "per-job valuation budget (0 = none)")
		maxLevel  = flag.Int("max-level", 3, "per-job search depth bound (0 = none)")
		seed      = flag.Int64("seed", 1, "per-job seed")
		poll      = flag.Duration("poll", 25*time.Millisecond, "job status poll interval")
		out       = flag.String("out", "", "JSON capture path (default stdout)")
		tsv       = flag.String("tsv", "", "optional per-request TSV path")
		assertMrg = flag.Bool("assert-merges", false, "exit nonzero unless the run merged at least one batch pass")
		assertHit = flag.Bool("assert-memo-hits", false, "exit nonzero unless the run produced memo hits")
		appEvery  = flag.Int("append-every", 0, "append a synthesized row batch to a job's workload after every N completed jobs (0 = no appends)")
		appBatch  = flag.Int("append-batch", 2, "rows per synthesized append batch")
	)
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	cli := serve.NewClient(base)
	ctx := context.Background()

	// The catalog is always fetched: it names the workloads when
	// -workloads is empty, and its descriptors drive row synthesis when
	// -append-every mixes appends into the traffic.
	infos, err := cli.Workloads(ctx)
	if err != nil {
		fatal(fmt.Errorf("listing workloads of %s: %w", base, err))
	}
	descs := map[string]*workload.Descriptor{}
	for _, info := range infos {
		descs[info.Name] = info.Descriptor
	}
	names := splitList(*workloads)
	if len(names) == 0 {
		for _, info := range infos {
			names = append(names, info.Name)
		}
		sort.Strings(names)
	}
	if len(names) == 0 {
		fatal(fmt.Errorf("node %s serves no workloads", base))
	}
	algoList := splitList(*algos)
	if len(algoList) == 0 {
		algoList = []string{"bi"}
	}

	before, err := scrapeMetrics(base)
	if err != nil {
		fatal(fmt.Errorf("scraping %s/metrics before the run: %w", base, err))
	}

	var tsvW *bufio.Writer
	if *tsv != "" {
		f, err := os.Create(*tsv)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tsvW = bufio.NewWriter(f)
		defer tsvW.Flush()
		fmt.Fprintln(tsvW, "elapsed_ms\tclient\tworkload\talgorithm\tstatus\tlatency_ms")
	}

	// The drive loop: closed-loop clients round-robin the workload ×
	// algorithm grid off one shared counter, so two clients are always
	// exercising the same shard concurrently when clients > workloads —
	// the overlap batching and memoization need to show up.
	var (
		next    atomic.Int64
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup

		// Streaming mix: every *appEvery-th completed job triggers one
		// append of synthesized rows to the workload that job ran on.
		// The first successful append also snapshots /metrics, so the
		// capture can report the memo hit rate of post-append traffic
		// alone — the number that shows precise invalidation working.
		done     atomic.Int64
		synth    rowSynth
		appStats appendStats
		postOnce sync.Once
		postMu   sync.Mutex
		postBase map[string]float64
	)
	start := time.Now()
	deadline := start.Add(*duration)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				i := next.Add(1) - 1
				wl := names[int(i)%len(names)]
				algo := algoList[(int(i)/len(names))%len(algoList)]
				opts := &serve.JobOptions{Seed: seed}
				if *budget > 0 {
					opts.Budget = budget
				}
				if *maxLevel > 0 {
					opts.MaxLevel = maxLevel
				}
				t0 := time.Now()
				sm := sample{client: client, workload: wl, algorithm: algo}
				st, err := cli.Submit(ctx, serve.SubmitRequest{Workload: wl, Algorithm: algo, Options: opts})
				if err == nil {
					st, err = cli.Wait(ctx, st.JobID, *poll)
				}
				sm.latency = time.Since(t0)
				sm.elapsed = t0.Sub(start)
				switch {
				case err != nil:
					sm.status = "error"
				default:
					sm.status = st.Status
				}
				mu.Lock()
				samples = append(samples, sm)
				mu.Unlock()
				if err != nil {
					// Overload shedding answers fast; don't spin on it.
					time.Sleep(50 * time.Millisecond)
				}
				if *appEvery > 0 && sm.status == serve.StatusDone {
					if n := done.Add(1); n%int64(*appEvery) == 0 {
						req, ok := synth.batch(descs[wl], *appBatch)
						if !ok {
							continue
						}
						appStats.attempts.Add(1)
						resp, err := cli.AppendRows(ctx, wl, req)
						if err != nil {
							appStats.errors.Add(1)
							continue
						}
						appStats.rows.Add(int64(resp.Rows))
						appStats.invalidated.Add(int64(resp.MemoInvalidated))
						appStats.retained.Add(int64(resp.MemoRetained))
						postOnce.Do(func() {
							if snap, err := scrapeMetrics(base); err == nil {
								postMu.Lock()
								postBase = snap
								postMu.Unlock()
							}
						})
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrapeMetrics(base)
	if err != nil {
		fatal(fmt.Errorf("scraping %s/metrics after the run: %w", base, err))
	}

	if tsvW != nil {
		for _, sm := range samples {
			fmt.Fprintf(tsvW, "%d\t%d\t%s\t%s\t%s\t%.3f\n",
				sm.elapsed.Milliseconds(), sm.client, sm.workload, sm.algorithm, sm.status,
				float64(sm.latency.Microseconds())/1000)
		}
	}

	capt := buildCapture(base, names, algoList, *clients, *duration, elapsed, samples, before, after)
	if *appEvery > 0 {
		postMu.Lock()
		capt.Append = appendCapture(*appEvery, &appStats, postBase, after)
		postMu.Unlock()
	}
	blob, err := json.MarshalIndent(capt, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}

	if *assertMrg && capt.Node.BatchMergedPasses <= 0 {
		fatal(fmt.Errorf("assertion failed: no batch passes merged during the run (passes=%v)", capt.Node.BatchPasses))
	}
	if *assertHit && capt.Node.MemoHits <= 0 {
		fatal(fmt.Errorf("assertion failed: no memo hits during the run (misses=%v)", capt.Node.MemoMisses))
	}
	if capt.Totals.Requests == 0 {
		fatal(fmt.Errorf("no request completed within %s", *duration))
	}
}

// sample is one request's client-side record.
type sample struct {
	client    int
	workload  string
	algorithm string
	status    string
	elapsed   time.Duration // submit time since run start
	latency   time.Duration // submit to terminal
}

// Capture is the JSON shape of one load run.
type Capture struct {
	Target    string            `json:"target"`
	Workloads []string          `json:"workloads"`
	Algos     []string          `json:"algorithms"`
	Clients   int               `json:"clients"`
	DurationS float64           `json:"duration_s"`
	Totals    Totals            `json:"totals"`
	Workload  map[string]Totals `json:"per_workload"`
	Node      NodeDeltas        `json:"node"`
	Append    *AppendCapture    `json:"append,omitempty"`
}

// Totals are the client-side aggregates of a request population.
type Totals struct {
	Requests      int       `json:"requests"`
	Errors        int       `json:"errors"`
	ThroughputRPS float64   `json:"throughput_rps"`
	Latency       LatencyMS `json:"latency_ms"`
}

// LatencyMS are latency aggregates in milliseconds.
type LatencyMS struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// NodeDeltas are the /metrics counter movements over the run — what
// the node did on this load's behalf.
type NodeDeltas struct {
	PoolWorkers       float64 `json:"pool_workers"`
	BatchPasses       float64 `json:"batch_passes"`
	BatchMergedPasses float64 `json:"batch_merged_passes"`
	MergeRate         float64 `json:"merge_rate"`
	MemoHits          float64 `json:"memo_hits"`
	MemoMisses        float64 `json:"memo_misses"`
	MemoHitRate       float64 `json:"memo_hit_rate"`
	ExactCalls        float64 `json:"exact_calls"`
	Valuations        float64 `json:"valuations"`
	Appends           float64 `json:"appends"`
	RowsAppended      float64 `json:"rows_appended"`
	MemoInvalidated   float64 `json:"memo_invalidated"`
}

// rowSynth synthesizes append batches from a workload descriptor: each
// numeric attribute gets a fresh value off a shared sequence, while
// string attributes and the target stay null — appended rows may not
// extend a frozen string domain, and a null target is exactly what a
// not-yet-labelled streamed row looks like.
type rowSynth struct {
	seq atomic.Int64
}

func (rs *rowSynth) batch(d *workload.Descriptor, n int) (serve.AppendRowsRequest, bool) {
	if d == nil || n <= 0 {
		return serve.AppendRowsRequest{}, false
	}
	var req serve.AppendRowsRequest
	for i := 0; i < n; i++ {
		k := rs.seq.Add(1)
		obj := map[string]any{}
		for _, attr := range d.Attributes {
			name, kind, ok := strings.Cut(attr, ":")
			if !ok {
				continue
			}
			switch kind {
			case "float":
				obj[name] = float64(k%97) + 0.25
			case "int":
				obj[name] = k % 23
			}
		}
		if len(obj) == 0 {
			return serve.AppendRowsRequest{}, false
		}
		blob, err := json.Marshal(obj)
		if err != nil {
			return serve.AppendRowsRequest{}, false
		}
		req.Rows = append(req.Rows, json.RawMessage(blob))
	}
	return req, true
}

// appendStats are the client-side append counters, shared across the
// drive goroutines.
type appendStats struct {
	attempts    atomic.Int64
	errors      atomic.Int64
	rows        atomic.Int64
	invalidated atomic.Int64
	retained    atomic.Int64
}

// AppendCapture is the streaming slice of the capture: what the
// clients appended, and how the memo fared on traffic that ran after
// the first append landed.
type AppendCapture struct {
	Every           int   `json:"every"`
	Attempts        int64 `json:"attempts"`
	Errors          int64 `json:"errors"`
	RowsAppended    int64 `json:"rows_appended"`
	MemoInvalidated int64 `json:"memo_invalidated"`
	MemoRetained    int64 `json:"memo_retained"`
	// Post-append memo movement: /metrics deltas from the first
	// successful append to the end of the run. A healthy hit rate here
	// means invalidation was precise — appends did not flush valuations
	// the new rows could not have changed.
	PostMemoHits    float64 `json:"post_append_memo_hits"`
	PostMemoMisses  float64 `json:"post_append_memo_misses"`
	PostMemoHitRate float64 `json:"post_append_memo_hit_rate"`
}

func appendCapture(every int, st *appendStats, postBase, after map[string]float64) *AppendCapture {
	ac := &AppendCapture{
		Every:           every,
		Attempts:        st.attempts.Load(),
		Errors:          st.errors.Load(),
		RowsAppended:    st.rows.Load(),
		MemoInvalidated: st.invalidated.Load(),
		MemoRetained:    st.retained.Load(),
	}
	if postBase != nil {
		delta := func(name string) float64 {
			d := after[name] - postBase[name]
			if d < 0 || math.IsNaN(d) {
				return 0
			}
			return d
		}
		ac.PostMemoHits = delta("modis_memo_hits_total")
		ac.PostMemoMisses = delta("modis_memo_misses_total")
		if probes := ac.PostMemoHits + ac.PostMemoMisses; probes > 0 {
			ac.PostMemoHitRate = ac.PostMemoHits / probes
		}
	}
	return ac
}

func buildCapture(target string, names, algoList []string, clients int, want, got time.Duration, samples []sample, before, after map[string]float64) Capture {
	capt := Capture{
		Target:    target,
		Workloads: names,
		Algos:     algoList,
		Clients:   clients,
		DurationS: got.Seconds(),
		Workload:  map[string]Totals{},
	}
	capt.Totals = totalsOf(samples, got)
	byWL := map[string][]sample{}
	for _, sm := range samples {
		byWL[sm.workload] = append(byWL[sm.workload], sm)
	}
	for wl, sms := range byWL {
		capt.Workload[wl] = totalsOf(sms, got)
	}
	delta := func(name string) float64 {
		d := after[name] - before[name]
		if d < 0 || math.IsNaN(d) {
			return 0
		}
		return d
	}
	nd := NodeDeltas{
		PoolWorkers:       after["modis_pool_workers"],
		BatchPasses:       delta("modis_batch_passes_total"),
		BatchMergedPasses: delta("modis_batch_merged_passes_total"),
		MemoHits:          delta("modis_memo_hits_total"),
		MemoMisses:        delta("modis_memo_misses_total"),
		ExactCalls:        delta("modis_exact_calls_total"),
		Valuations:        delta("modis_valuations_total"),
		Appends:           delta("modis_appends_total"),
		RowsAppended:      delta("modis_rows_appended_total"),
		MemoInvalidated:   delta("modis_memo_invalidated_total"),
	}
	if nd.BatchPasses > 0 {
		nd.MergeRate = nd.BatchMergedPasses / nd.BatchPasses
	}
	if probes := nd.MemoHits + nd.MemoMisses; probes > 0 {
		nd.MemoHitRate = nd.MemoHits / probes
	}
	capt.Node = nd
	return capt
}

func totalsOf(samples []sample, elapsed time.Duration) Totals {
	t := Totals{Requests: len(samples)}
	if len(samples) == 0 {
		return t
	}
	lats := make([]float64, 0, len(samples))
	sum, max := 0.0, 0.0
	for _, sm := range samples {
		if sm.status == "error" || sm.status == serve.StatusFailed {
			t.Errors++
		}
		ms := float64(sm.latency.Microseconds()) / 1000
		lats = append(lats, ms)
		sum += ms
		if ms > max {
			max = ms
		}
	}
	sort.Float64s(lats)
	q := func(p float64) float64 {
		rank := int(math.Ceil(p * float64(len(lats))))
		if rank < 1 {
			rank = 1
		}
		return lats[rank-1]
	}
	t.Latency = LatencyMS{P50: q(0.5), P90: q(0.9), P99: q(0.99), Mean: sum / float64(len(lats)), Max: max}
	if secs := elapsed.Seconds(); secs > 0 {
		t.ThroughputRPS = float64(len(samples)) / secs
	}
	return t
}

// scrapeMetrics fetches /metrics and sums every family's samples into
// one number per metric name — enough to read counters and single
// gauges; quantile samples (NaN when empty) are skipped.
func scrapeMetrics(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	sums := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil || math.IsNaN(v) {
			continue
		}
		sums[name] += v
	}
	return sums, sc.Err()
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "modisload: %v\n", err)
	os.Exit(1)
}
