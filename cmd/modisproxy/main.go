// Command modisproxy is the multi-node front door of the MODis serving
// stack: a thin HTTP proxy that consistent-hashes workload descriptor
// hashes across a fleet of modisd nodes, so every workload's jobs —
// and with them its memoized valuations and persisted
// state-dir/<hash>/ directory — concentrate on one owning node without
// any coordination. It forwards POST /v1/jobs to the shard owner,
// follows job reads and SSE event streams to the node that ran the
// job, merges the fleet's workload and algorithm catalogs, and applies
// per-tenant admission control (token-bucket submission rate plus
// per-tenant and global concurrent-job caps; rejections are 429 with
// Retry-After).
//
// Nodes are health-checked on -health-interval; new submissions route
// away from dead nodes to the next ring candidate. Routing is
// deterministic in the -nodes list (order-insensitive), so restarting
// the proxy — or running several proxies with the same fleet — keeps
// every shard on the same owner.
//
// Usage:
//
//	modisproxy -addr :9090 -nodes host1:8080,host2:8080 \
//	    -rate 5 -burst 10 -max-tenant-jobs 4
//	modis -remote localhost:9090 -workload t3 -algo bi   # CLI through it
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/modis/proxy"
)

func main() {
	var (
		addr       = flag.String("addr", ":9090", "HTTP listen address")
		nodes      = flag.String("nodes", "", "comma-separated modisd node addresses forming the routing ring")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per fleet member (0 = default 64)")
		loadFactor = flag.Float64("load-factor", 0, "bounded-load ceiling multiplier (0 = default 1.25)")
		healthInt  = flag.Duration("health-interval", 2*time.Second, "node health/catalog sweep period")
		probeTO    = flag.Duration("probe-timeout", 0, "per-node health probe timeout within a sweep (0 = default 1s)")
		brFails    = flag.Int("breaker-failures", 0, "consecutive node failures that open its circuit breaker (0 = default 1)")
		brCooldown = flag.Duration("breaker-cooldown", 0, "open-circuit cooldown before a half-open probe (0 = default 2s)")
		retries    = flag.Int("submit-retries", 0, "same-node submit retries on transport failure before failing over (0 = default 1)")
		rate       = flag.Float64("rate", 0, "per-tenant sustained submissions/second (0 = unlimited)")
		burst      = flag.Float64("burst", 0, "per-tenant submission burst depth (0 = default max(rate, 1))")
		tenantJobs = flag.Int("max-tenant-jobs", 0, "per-tenant concurrent-job cap (0 = unlimited)")
		globalJobs = flag.Int("max-global-jobs", 0, "fleet-wide concurrent-job cap through this proxy (0 = unlimited)")
	)
	flag.Parse()

	var fleet []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			fleet = append(fleet, n)
		}
	}
	if len(fleet) == 0 {
		fatal(errors.New("no fleet: give -nodes host1:8080,host2:8080"))
	}

	p := proxy.New(proxy.Options{
		Nodes:          fleet,
		VNodes:         *vnodes,
		LoadFactor:     *loadFactor,
		HealthInterval: *healthInt,
		ProbeTimeout:   *probeTO,
		SubmitRetries:  *retries,
		Breaker: proxy.BreakerOptions{
			FailureThreshold: *brFails,
			Cooldown:         *brCooldown,
		},
		Admission: proxy.AdmissionOptions{
			Rate:          *rate,
			Burst:         *burst,
			MaxTenantJobs: *tenantJobs,
			MaxGlobalJobs: *globalJobs,
		},
	})
	defer p.Close()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: p}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()
	fmt.Fprintf(os.Stderr, "modisproxy: routing %d nodes on %s\n", len(fleet), ln.Addr())

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "modisproxy: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "modisproxy: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "modisproxy: bye")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "modisproxy: %v\n", err)
	os.Exit(1)
}
