package repro

import (
	"context"
	"testing"

	"repro/internal/datagen"
	"repro/internal/fst"
	"repro/modis"
)

// evalOnlyModel strips the RowsModel fast path off a workload model by
// interface embedding: only fst.Model's methods are promoted, so
// evaluateExact takes the reference Materialize+Evaluate route.
type evalOnlyModel struct{ fst.Model }

// The columnar valuation fast path must be invisible in results: every
// algorithm, on every task shape, with the surrogate on or off, has to
// produce bit-identical skylines whether states are valuated from
// bitmap row views or from materialized child tables. This is the
// paper's fixed-model guarantee carried through the optimization.

var parityAlgos = []string{"apx", "bi", "nobi", "div", "exact"}

func parityOpts() []modis.Option {
	return []modis.Option{
		modis.WithBudget(60),
		modis.WithEpsilon(0.1),
		modis.WithMaxLevel(4),
		modis.WithSeed(1),
		modis.WithK(4),
	}
}

func runParity(t *testing.T, w *datagen.Workload, algo string, surrogate bool) {
	t.Helper()
	ctx := context.Background()

	cfgRows := w.NewConfig(surrogate)
	fast, err := modis.NewEngine(cfgRows).Run(ctx, algo, parityOpts()...)
	if err != nil {
		t.Fatal(err)
	}

	cfgLegacy := w.NewConfig(surrogate)
	cfgLegacy.Model = evalOnlyModel{w.Model}
	ref, err := modis.NewEngine(cfgLegacy).Run(ctx, algo, parityOpts()...)
	if err != nil {
		t.Fatal(err)
	}

	assertSameSkyline(t, fast, ref)
	if fast.Valuated != ref.Valuated || fast.ExactCalls != ref.ExactCalls {
		t.Fatalf("trajectory diverged: valuated %d/%d, exact %d/%d",
			fast.Valuated, ref.Valuated, fast.ExactCalls, ref.ExactCalls)
	}
}

func assertSameSkyline(t *testing.T, a, b *modis.Report) {
	t.Helper()
	if len(a.Skyline) != len(b.Skyline) {
		t.Fatalf("skyline size %d vs %d", len(a.Skyline), len(b.Skyline))
	}
	for i := range a.Skyline {
		ca, cb := a.Skyline[i], b.Skyline[i]
		if len(ca.Bitmap) != len(cb.Bitmap) {
			t.Fatalf("candidate %d: bitmap width differs", i)
		}
		for w := range ca.Bitmap {
			if ca.Bitmap[w] != cb.Bitmap[w] {
				t.Fatalf("candidate %d: state bitmaps differ", i)
			}
		}
		if len(ca.Perf) != len(cb.Perf) {
			t.Fatalf("candidate %d: vector length differs", i)
		}
		for j := range ca.Perf {
			if ca.Perf[j] != cb.Perf[j] {
				t.Fatalf("candidate %d measure %d: %v != %v (not bit-identical)",
					i, j, ca.Perf[j], cb.Perf[j])
			}
		}
	}
}

func TestColumnarParityAllAlgorithms(t *testing.T) {
	tasks := []struct {
		name string
		mk   func() *datagen.Workload
	}{
		{"T1", func() *datagen.Workload { return datagen.T1Movie(datagen.TaskConfig{Rows: 110}) }},
		{"T3", func() *datagen.Workload { return datagen.T3Avocado(datagen.TaskConfig{Rows: 110}) }},
		{"T5", func() *datagen.Workload { return datagen.T5Link(datagen.T5Config{Users: 20, Items: 20}) }},
	}
	for _, task := range tasks {
		for _, algo := range parityAlgos {
			t.Run(task.name+"/"+algo, func(t *testing.T) {
				runParity(t, task.mk(), algo, false)
			})
		}
	}
}

func TestColumnarParityWithSurrogate(t *testing.T) {
	for _, algo := range parityAlgos {
		t.Run("T1/"+algo, func(t *testing.T) {
			runParity(t, datagen.T1Movie(datagen.TaskConfig{Rows: 110}), algo, true)
		})
	}
	t.Run("T3/bi", func(t *testing.T) {
		runParity(t, datagen.T3Avocado(datagen.TaskConfig{Rows: 110}), "bi", true)
	})
}

// TestColumnarParityWithUDFs: registering a UDF disables row views, so
// both engines must take the reference path — and still agree. This
// pins the fallback: a space transform the columnar path cannot express
// silently reverts to materialization rather than corrupting results.
func TestColumnarParityWithUDFs(t *testing.T) {
	for _, algo := range []string{"apx", "bi"} {
		t.Run(algo, func(t *testing.T) {
			w := datagen.T1Movie(datagen.TaskConfig{Rows: 110})
			w.Space.RegisterUDF(fst.ImputeMeansUDF(w.Lake.Target))
			if _, ok := w.Space.RowsFor(w.Space.FullBitmap()); ok {
				t.Fatal("UDF space must not offer row views")
			}
			runParity(t, w, algo, false)
		})
	}
}
