// Benchmark-data generation: the paper's second case study (Exp-4).
// MODis is configured to generate test datasets for model benchmarking
// under explicit performance criteria — "accuracy > 0.85 and training
// cost < half the full-table budget" — by posing the criteria as measure
// upper bounds. Procedure UPareto's early skip then rejects every state
// outside the requested envelope.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/skyline"
	"repro/modis"
)

func main() {
	w := datagen.T4Mental(datagen.TaskConfig{Rows: 260, Seed: 88})

	// The benchmarking request, translated to normalized bounds:
	// p_Acc = 1 - accuracy must stay within (0, 0.15]  (accuracy > 0.85),
	// p_Train must stay within (0, 0.5]               (cost < 50% budget).
	w.Measures[0].Bounds = skyline.Bounds{Lower: 1e-3, Upper: 0.15}
	w.Measures[5].Bounds = skyline.Bounds{Lower: 1e-3, Upper: 0.5}

	res, err := modis.NewEngine(w.NewConfig(true)).Run(context.Background(), "bi",
		modis.WithBudget(300), modis.WithEpsilon(0.1), modis.WithMaxLevel(6))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("request: accuracy > 0.85 and training cost < 0.5x budget\n")
	fmt.Printf("valuated %d states in %v\n\n", res.Valuated, res.Wall.Round(1e6))

	count := 0
	for _, c := range res.Skyline {
		if c.Perf[0] > 0.15 || c.Perf[5] > 0.5 {
			continue
		}
		count++
		d := w.Space.Materialize(c.Bits)
		fmt.Printf("candidate %d: <pAcc=%.3f, pTrain=%.3f> size=(%d,%d)\n",
			count, c.Perf[0], c.Perf[5], d.NumRows(), d.NumCols())
		if count >= 3 {
			break
		}
	}
	if count == 0 {
		fmt.Println("no dataset meets the criteria — relax the bounds or widen the budget N")
		return
	}
	fmt.Printf("\ngenerated %d benchmark dataset(s) meeting the criteria\n", count)
}
