// HABs: the paper's motivating Example 1. A research team forecasting
// the chlorophyll-a index (CI-index) of harmful algal blooms has water,
// basin, nitrogen and phosphorus tables, a random-forest-style model,
// and a skyline query: "generate a dataset for which the model has RMSE
// below a bound, R² above a bound, and trains within a cost budget."
//
// This example builds the four-source lake, poses the bounds as measure
// ranges, and lets BiMODis answer the query.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/fst"
	"repro/internal/ml"
	"repro/internal/skyline"
	"repro/internal/table"
	"repro/modis"
)

func main() {
	lake := buildHABsLake(240, 7)
	fmt.Printf("sources: ")
	for i, t := range lake.Tables {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(t.Name)
	}
	fmt.Printf("\nuniversal: %d rows x %d cols\n\n", lake.Universal.NumRows(), lake.Universal.NumCols())

	w := ciIndexWorkload(lake)
	// The skyline query's bounds: normalized RMSE within (0, 0.6],
	// inverted R² within (0, 0.35] (i.e. R² >= 0.65), training cost
	// within (0, 0.5] of the universal-table budget — Example 2's ranges.
	w.Measures[0].Bounds = skyline.Bounds{Lower: 1e-3, Upper: 0.6}
	w.Measures[1].Bounds = skyline.Bounds{Lower: 1e-3, Upper: 0.35}
	w.Measures[2].Bounds = skyline.Bounds{Lower: 1e-3, Upper: 0.5}

	cfg := w.NewConfig(true)
	res, err := modis.NewEngine(cfg).Run(context.Background(), "bi",
		modis.WithBudget(250), modis.WithEpsilon(0.1), modis.WithMaxLevel(6))
	if err != nil {
		log.Fatal(err)
	}

	orig, _ := cfg.Valuate(w.Space.FullBitmap())
	fmt.Printf("original <RMSE, 1-R2, Ttrain> = %v\n", orig)
	fmt.Printf("skyline answers within bounds (%d states valuated):\n", res.Valuated)
	found := 0
	for _, c := range res.Skyline {
		if !cfg.WithinBounds(c.Perf) {
			continue
		}
		found++
		d := w.Space.Materialize(c.Bits)
		fmt.Printf("  D%d: %v  size=(%d,%d)\n", found, c.Perf, d.NumRows(), d.NumCols())
	}
	if found == 0 {
		fmt.Println("  (no dataset satisfies all bounds — relax the query)")
	}
}

// buildHABsLake plants a CI-index signal across water/basin/nitrogen/
// phosphorus tables keyed by a shared station id, with a cluster of
// sensor-glitch rows (the 2013 flood season) whose CI labels are noise.
func buildHABsLake(rows int, seed int64) *datagen.Lake {
	rng := rand.New(rand.NewSource(seed))
	nGlitch := rows / 4
	total := rows + nGlitch

	level := func() float64 { return float64(rng.Intn(3)) / 2 }

	temp := make([]float64, total)
	flow := make([]float64, total)
	nitro := make([]float64, total)
	phos := make([]float64, total)
	ci := make([]float64, total)
	for i := 0; i < total; i++ {
		if i < rows {
			temp[i], flow[i], nitro[i], phos[i] = level(), level(), level(), level()
			ci[i] = 1.2*temp[i] + 0.8*flow[i] + 1.5*nitro[i] + 1.1*phos[i] + 0.05*rng.NormFloat64()
		} else {
			// Glitch rows: shifted sensor values, random CI.
			temp[i], flow[i] = 2+rng.Float64(), 2+rng.Float64()
			nitro[i], phos[i] = level(), level()
			ci[i] = 5 * rng.Float64()
		}
	}

	water := table.New("water", table.Schema{
		{Name: "station", Kind: table.KindInt},
		{Name: "temp", Kind: table.KindFloat},
		{Name: "flow", Kind: table.KindFloat},
		{Name: "ci_index", Kind: table.KindFloat},
	})
	basin := table.New("basin", table.Schema{
		{Name: "station", Kind: table.KindInt},
		{Name: "land_use", Kind: table.KindString},
	})
	nitrogen := table.New("nitrogen", table.Schema{
		{Name: "station", Kind: table.KindInt},
		{Name: "nitrate", Kind: table.KindFloat},
	})
	phosphorus := table.New("phosphorus", table.Schema{
		{Name: "station", Kind: table.KindInt},
		{Name: "phosphate", Kind: table.KindFloat},
	})
	uses := []string{"farm", "urban", "forest"}
	for i := 0; i < total; i++ {
		id := table.Int(int64(i))
		water.MustAppend(table.Row{id, table.Float(temp[i]), table.Float(flow[i]), table.Float(ci[i])})
		basin.MustAppend(table.Row{id, table.Str(uses[rng.Intn(len(uses))])})
		nitrogen.MustAppend(table.Row{id, table.Float(nitro[i])})
		phosphorus.MustAppend(table.Row{id, table.Float(phos[i])})
	}

	u := table.Universal(water, basin, nitrogen, phosphorus)
	for _, c := range u.Schema {
		if c.Name == "ci_index" || c.Name == "station" || c.Kind == table.KindString {
			continue
		}
		u = table.Compress(u, c.Name, 4)
	}
	return &datagen.Lake{
		Config:    datagen.LakeConfig{Name: "habs", AdomK: 4, Seed: seed},
		Tables:    []*table.Table{water, basin, nitrogen, phosphorus},
		Universal: u,
		Target:    "ci_index",
	}
}

// ciIndexWorkload wires a boosted-tree CI-index regressor with the
// paper's P = {RMSE, 1-R², Ttrain} measures.
func ciIndexWorkload(lake *datagen.Lake) *datagen.Workload {
	space := fst.NewSpace(lake.Universal, lake.Target, fst.SpaceConfig{
		MaxLiteralsPerAttr: 4,
		SkipLiteralAttrs:   []string{"station"},
		ProtectedAttrs:     []string{"station"},
	})
	maxCost := float64(lake.Universal.NumRows() * lake.Universal.NumCols())
	model := &datagen.TableModel{
		ModelName: "RF-ci",
		Eval: func(d *table.Table) ([]float64, error) {
			ds := ml.FromTable(d.DropColumn("station"), lake.Target)
			if ds.NumRows() < 40 || ds.NumFeatures() == 0 {
				return []float64{1, 0, maxCost}, nil
			}
			train, test := ds.Split(0.3, 42)
			m := &ml.ForestRegressor{Config: ml.ForestConfig{NumTrees: 12, MaxDepth: 7, Seed: 1}}
			m.Fit(train.X, train.Y)
			pred := make([]float64, len(test.Y))
			for i, x := range test.X {
				pred[i] = m.Predict(x)
			}
			spread := maxOf(test.Y) - minOf(test.Y)
			if spread == 0 {
				spread = 1
			}
			rmse := ml.RMSE(test.Y, pred) / spread
			r2 := ml.R2(test.Y, pred)
			cost := float64(train.NumRows() * train.NumFeatures())
			return []float64{rmse, r2, cost}, nil
		},
	}
	measures := []fst.Measure{
		{Name: "RMSE", Normalize: fst.Identity(1e-3)},
		{Name: "1-R2", Normalize: fst.Inverted(1e-3)},
		{Name: "Ttrain", Normalize: fst.Scaled(maxCost, 1e-3)},
	}
	return &datagen.Workload{Name: "habs", Lake: lake, Space: space, Model: model, Measures: measures}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
