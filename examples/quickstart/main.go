// Quickstart: the minimal end-to-end MODis run. It builds a tiny data
// lake, configures a gradient-boosting task with two measures (accuracy
// and training cost), and generates an ε-skyline set of datasets with
// the bi-directional search through the public modis engine.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/modis"
)

func main() {
	// 1. A workload bundles source tables, the universal table, the FST
	//    search space, a fixed deterministic model, and the user-defined
	//    performance measures P (all normalized to minimize).
	w := datagen.T1Movie(datagen.TaskConfig{Rows: 200})
	fmt.Printf("data lake: %d tables; universal table %d rows x %d cols\n",
		len(w.Lake.Tables), w.Lake.Universal.NumRows(), w.Lake.Universal.NumCols())
	fmt.Printf("measures: ")
	for i, m := range w.Measures {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(m.Name)
	}
	fmt.Println()

	// 2. NewConfig(true) wires the MO-GBM surrogate estimator, so most
	//    states are valuated without re-training the model. One engine
	//    per configuration; runs honor context cancellation and stream
	//    per-level progress.
	cfg := w.NewConfig(true)
	eng := modis.NewEngine(cfg)

	// 3. Generate the ε-skyline set: datasets over which the model's
	//    expected performance is Pareto-optimal within factor (1+ε).
	res, err := eng.Run(context.Background(), "bi",
		modis.WithBudget(200),
		modis.WithEpsilon(0.1),
		modis.WithMaxLevel(5),
		modis.WithProgress(func(ev modis.Event) {
			if !ev.Done {
				fmt.Printf("  level %d: frontier=%d valuated=%d skyline=%d\n",
					ev.Level, ev.Frontier, ev.Valuated, ev.SkylineSize)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nvaluated %d states (%d exact model calls) in %v\n",
		res.Valuated, res.ExactCalls, res.Wall.Round(1e6))
	fmt.Printf("ε-skyline set (%d datasets):\n", len(res.Skyline))
	for i, c := range res.Skyline {
		d := w.Space.Materialize(c.Bits)
		fmt.Printf("  D%d: perf=%v size=(%d,%d)\n", i+1, c.Perf, d.NumRows(), d.NumCols())
	}

	// 4. Pick the dataset with the best accuracy measure (index 0) and
	//    compare against the original universal table.
	orig, err := cfg.Valuate(w.Space.FullBitmap())
	if err != nil {
		log.Fatal(err)
	}
	best := res.Best(0)
	fmt.Printf("\noriginal:  %v\n", orig)
	fmt.Printf("best:      %v\n", best.Perf)
	fmt.Printf("rImp(acc): %.2fx, rImp(train): %.2fx\n",
		orig[0]/best.Perf[0], orig[1]/best.Perf[1])
}
