// Recommend: task T5 — skyline data discovery for graph data. The
// source is a bipartite user–item interaction graph represented as an
// edge table; Augment and Reduct become edge insertions and deletions
// (Section 6). A LightGCN-style link scorer is evaluated on ranking
// measures P5 = {P@5, P@10, R@5, R@10, NDCG@5, NDCG@10}, and DivMODis
// generates a diversified skyline of interaction subgraphs.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/modis"
)

func main() {
	w := datagen.T5Link(datagen.T5Config{
		Users:        40,
		Items:        40,
		Communities:  4,
		EdgesPerUser: 8,
		NoiseFrac:    0.5,
	})
	fmt.Printf("interaction graph: %d edges (%d columns per edge)\n",
		w.Lake.Universal.NumRows(), w.Lake.Universal.NumCols())

	cfg := w.NewConfig(true)
	orig, err := cfg.Valuate(w.Space.FullBitmap())
	if err != nil {
		log.Fatal(err)
	}

	res, err := modis.NewEngine(cfg).Run(context.Background(), "div",
		modis.WithBudget(200),
		modis.WithEpsilon(0.1),
		modis.WithMaxLevel(5),
		modis.WithK(4),
		modis.WithAlpha(0.5),
		modis.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("valuated %d states in %v; diversified skyline size %d\n\n",
		res.Valuated, res.Wall.Round(1e6), len(res.Skyline))

	names := make([]string, len(w.Measures))
	for i, m := range w.Measures {
		names[i] = m.Name
	}
	fmt.Printf("%-10s %v\n", "graph", names)
	fmt.Printf("%-10s %v\n", "original", orig)
	for i, c := range res.Skyline {
		d := w.Space.Materialize(c.Bits)
		fmt.Printf("%-10s %v  (%d edges)\n", fmt.Sprintf("D%d", i+1), c.Perf, d.NumRows())
	}

	best := res.Best(0) // best precision@5 (normalized, smaller better)
	fmt.Printf("\nbest P@5 subgraph improves the scorer %.2fx on P@5 and %.2fx on NDCG@10\n",
		orig[0]/best.Perf[0], orig[5]/best.Perf[5])
}
