// Example serve: the asynchronous job API end to end, in process.
// Two discovery jobs run concurrently over one workload through a
// serve.Scheduler — sharing the workload engine's memoized valuations
// and aligning their frontier windows into batched exact-inference
// passes — while the main goroutine streams one job's progress events
// as they happen. The same Submit/Events/Result flow is what modisd
// serves over HTTP; see docs/serving.md.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/modis"
	"repro/modis/serve"
	"repro/modis/workload"
)

func main() {
	// One workload, identified by its canonical descriptor: T3 (avocado
	// price regression), surrogate off so every valuation is exact and
	// the inference sharing below is easy to read.
	built, err := workload.BuildTask("t3", 140, false)
	if err != nil {
		log.Fatal(err)
	}

	sched := serve.NewScheduler(serve.SchedulerOptions{
		AlignWindow: 10 * time.Millisecond,
	})
	if err := sched.Register(built.Desc, built.Cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %s as shard %s\n", built.Desc.Name, built.Desc.Short())
	ctx := context.Background()
	opts := []modis.Option{modis.WithEpsilon(0.1), modis.WithMaxLevel(2)}

	// Submit returns immediately; the jobs run concurrently on the
	// workload's shared engine.
	biJob, err := sched.Submit(ctx, "t3", "bi", opts...)
	if err != nil {
		log.Fatal(err)
	}
	apxJob, err := sched.Submit(ctx, "t3", "apx", opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (bi) and %s (apx)\n", biJob.ID(), apxJob.ID())

	// Stream one job's progress while both run. Events replay from the
	// start, so subscribing after Submit loses nothing.
	for ev := range biJob.Events() {
		fmt.Printf("  bi: level=%d frontier=%d valuated=%d skyline=%d done=%v\n",
			ev.Level, ev.Frontier, ev.Valuated, ev.SkylineSize, ev.Done)
	}

	biRep, err := biJob.Result()
	if err != nil {
		log.Fatal(err)
	}
	apxRep, err := apxJob.Result()
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range []*modis.Report{biRep, apxRep} {
		fmt.Printf("%s: %d skyline members, %d valuated, %d exact calls, wall %v, batched=%v\n",
			rep.Algorithm, len(rep.Skyline), rep.Valuated, rep.ExactCalls,
			rep.Wall.Round(time.Millisecond), rep.Batched)
	}
	// The two searches traverse overlapping states; the shared engine
	// valuates each state once, so the exact calls summed stay well
	// below two isolated runs.
	fmt.Printf("exact calls total: %d (shared memo + single-flight + aligned passes)\n",
		biRep.ExactCalls+apxRep.ExactCalls)
}
