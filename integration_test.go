package repro

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fst"
	"repro/internal/skyline"
)

// The integration tests assert the paper's comparative shapes end to end
// on small workloads: MODis improves the input model on the selected
// measure, outputs valid ε-skylines, and the algorithm variants behave
// as documented relative to each other.

func smallOpts() core.Options {
	return core.Options{N: 120, Eps: 0.1, MaxLevel: 5, Seed: 1}
}

func bestActual(t *testing.T, w *datagen.Workload, res *core.Result, idx int) skyline.Vector {
	t.Helper()
	var best skyline.Vector
	for _, c := range res.Skyline {
		out := w.Space.Materialize(c.Bits)
		perf, err := baselines.EvalTable(w, out)
		if err != nil {
			t.Fatal(err)
		}
		if best == nil || perf[idx] < best[idx] {
			best = perf
		}
	}
	return best
}

func TestMODisImprovesEveryTask(t *testing.T) {
	type task struct {
		name string
		w    *datagen.Workload
	}
	tasks := []task{
		{"T1", datagen.T1Movie(datagen.TaskConfig{Rows: 140})},
		{"T2", datagen.T2House(datagen.TaskConfig{Rows: 140})},
		{"T3", datagen.T3Avocado(datagen.TaskConfig{Rows: 140})},
		{"T4", datagen.T4Mental(datagen.TaskConfig{Rows: 140})},
	}
	for _, tk := range tasks {
		t.Run(tk.name, func(t *testing.T) {
			orig, err := baselines.EvalTable(tk.w, tk.w.Lake.Universal)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tk.w.NewConfig(true)
			res, err := core.BiMODis(cfg, smallOpts())
			if err != nil {
				t.Fatal(err)
			}
			best := bestActual(t, tk.w, res, 0)
			if best == nil {
				t.Fatal("empty skyline")
			}
			if best[0] >= orig[0] {
				t.Errorf("%s: discovered dataset %.4f did not improve the original %.4f on the primary measure",
					tk.name, best[0], orig[0])
			}
		})
	}
}

func TestMODisBeatsFeatureSelectionOnQuality(t *testing.T) {
	w := datagen.T2House(datagen.TaskConfig{Rows: 160})
	sk, err := baselines.SkSFM(w)
	if err != nil {
		t.Fatal(err)
	}
	cfg := w.NewConfig(true)
	res, err := core.BiMODis(cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	best := bestActual(t, w, res, 0)
	// Feature selection cannot remove the corrupted rows, MODis can: the
	// discovered dataset must be at least as good on F1.
	if best[0] > sk.Perf[0] {
		t.Errorf("MODis pF1 %.4f worse than SkSFM %.4f", best[0], sk.Perf[0])
	}
}

func TestGraphTaskEndToEnd(t *testing.T) {
	w := datagen.T5Link(datagen.T5Config{Users: 24, Items: 24})
	orig, err := baselines.EvalTable(w, w.Lake.Universal)
	if err != nil {
		t.Fatal(err)
	}
	cfg := w.NewConfig(true)
	res, err := core.ApxMODis(cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	best := bestActual(t, w, res, 0)
	if best == nil {
		t.Fatal("empty skyline")
	}
	if best[0] > orig[0] {
		t.Errorf("graph discovery worsened P@5: %.4f vs %.4f", best[0], orig[0])
	}
}

func TestSurrogateReducesExactCalls(t *testing.T) {
	w := datagen.T1Movie(datagen.TaskConfig{Rows: 140})
	withSur := w.NewConfig(true)
	if _, err := core.ApxMODis(withSur, smallOpts()); err != nil {
		t.Fatal(err)
	}
	exact := w.NewConfig(false)
	if _, err := core.ApxMODis(exact, smallOpts()); err != nil {
		t.Fatal(err)
	}
	if withSur.ExactCalls() >= exact.ExactCalls() {
		t.Errorf("surrogate exact calls %d should be below exact-only %d",
			withSur.ExactCalls(), exact.ExactCalls())
	}
}

func TestEpsSkylinePropertyEndToEnd(t *testing.T) {
	w := datagen.T3Avocado(datagen.TaskConfig{Rows: 140})
	cfg := w.NewConfig(false) // exact valuations: the property is over T
	opts := smallOpts()
	res, err := core.ApxMODis(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	var all []skyline.Vector
	for _, tst := range cfg.Tests.All() {
		all = append(all, tst.Perf)
	}
	// The search-grid members jointly eps-cover the valuated states; the
	// output set additionally satisfies the bounds. With default bounds
	// (upper = 1) both coincide.
	if !skyline.IsEpsSkylineOf(res.Vectors(), all, opts.Eps) {
		t.Error("output is not an ε-skyline of the valuated states")
	}
}

func TestDivMODisDiversityExceedsBiMODis(t *testing.T) {
	mk := func() (*datagen.Workload, *fst.Config) {
		w := datagen.T1Movie(datagen.TaskConfig{Rows: 140})
		return w, w.NewConfig(true)
	}
	opts := smallOpts()
	opts.K = 3
	opts.Alpha = 0.9 // strongly favor content diversity

	_, cfgBi := mk()
	resBi, err := core.BiMODis(cfgBi, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, cfgDiv := mk()
	resDiv, err := core.DivMODis(cfgDiv, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Average pairwise distance of the diversified set should not trail
	// the plain bi-directional skyline's.
	avg := func(cs []*core.Candidate) float64 {
		if len(cs) < 2 {
			return 0
		}
		return core.Div(cs, opts.Alpha, 1) * 2 / float64(len(cs)*(len(cs)-1))
	}
	if len(resDiv.Skyline) >= 2 && len(resBi.Skyline) >= 2 {
		if avg(resDiv.Skyline) < avg(resBi.Skyline)*0.8 {
			t.Errorf("DivMODis avg pairwise distance %.4f fell far below BiMODis %.4f",
				avg(resDiv.Skyline), avg(resBi.Skyline))
		}
	}
}

func TestBoundedDiscoveryRespectsBounds(t *testing.T) {
	w := datagen.T4Mental(datagen.TaskConfig{Rows: 160})
	w.Measures[0].Bounds = skyline.Bounds{Lower: 1e-3, Upper: 0.3}
	cfg := w.NewConfig(true)
	res, err := core.BiMODis(cfg, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Skyline {
		if c.Perf[0] > 0.3 {
			t.Errorf("skyline member violates the pAcc bound: %v", c.Perf)
		}
	}
}
