package repro

import (
	"context"
	"testing"

	"repro/internal/baselines"
	"repro/internal/datagen"
	"repro/internal/skyline"
	"repro/modis"
)

// The integration tests assert the paper's comparative shapes end to end
// on small workloads: MODis improves the input model on the selected
// measure, outputs valid ε-skylines, and the algorithm variants behave
// as documented relative to each other. All discovery runs go through
// the public modis engine — internal/core is not imported here.

func smallOpts() []modis.Option {
	return []modis.Option{
		modis.WithBudget(120),
		modis.WithEpsilon(0.1),
		modis.WithMaxLevel(5),
		modis.WithSeed(1),
	}
}

func run(t *testing.T, w *datagen.Workload, algo string, opts ...modis.Option) *modis.Report {
	t.Helper()
	rep, err := modis.NewEngine(w.NewConfig(true)).Run(context.Background(), algo,
		append(smallOpts(), opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func bestActual(t *testing.T, w *datagen.Workload, rep *modis.Report, idx int) skyline.Vector {
	t.Helper()
	var best skyline.Vector
	for _, c := range rep.Skyline {
		out := w.Space.Materialize(c.Bits)
		perf, err := baselines.EvalTable(w, out)
		if err != nil {
			t.Fatal(err)
		}
		if best == nil || perf[idx] < best[idx] {
			best = perf
		}
	}
	return best
}

func TestMODisImprovesEveryTask(t *testing.T) {
	type task struct {
		name string
		w    *datagen.Workload
	}
	tasks := []task{
		{"T1", datagen.T1Movie(datagen.TaskConfig{Rows: 140})},
		{"T2", datagen.T2House(datagen.TaskConfig{Rows: 140})},
		{"T3", datagen.T3Avocado(datagen.TaskConfig{Rows: 140})},
		{"T4", datagen.T4Mental(datagen.TaskConfig{Rows: 140})},
	}
	for _, tk := range tasks {
		t.Run(tk.name, func(t *testing.T) {
			orig, err := baselines.EvalTable(tk.w, tk.w.Lake.Universal)
			if err != nil {
				t.Fatal(err)
			}
			rep := run(t, tk.w, "bi")
			best := bestActual(t, tk.w, rep, 0)
			if best == nil {
				t.Fatal("empty skyline")
			}
			if best[0] >= orig[0] {
				t.Errorf("%s: discovered dataset %.4f did not improve the original %.4f on the primary measure",
					tk.name, best[0], orig[0])
			}
		})
	}
}

func TestMODisBeatsFeatureSelectionOnQuality(t *testing.T) {
	w := datagen.T2House(datagen.TaskConfig{Rows: 160})
	sk, err := baselines.SkSFM(w)
	if err != nil {
		t.Fatal(err)
	}
	rep := run(t, w, "bi")
	best := bestActual(t, w, rep, 0)
	// Feature selection cannot remove the corrupted rows, MODis can: the
	// discovered dataset must be at least as good on F1.
	if best[0] > sk.Perf[0] {
		t.Errorf("MODis pF1 %.4f worse than SkSFM %.4f", best[0], sk.Perf[0])
	}
}

func TestGraphTaskEndToEnd(t *testing.T) {
	w := datagen.T5Link(datagen.T5Config{Users: 24, Items: 24})
	orig, err := baselines.EvalTable(w, w.Lake.Universal)
	if err != nil {
		t.Fatal(err)
	}
	rep := run(t, w, "apx")
	best := bestActual(t, w, rep, 0)
	if best == nil {
		t.Fatal("empty skyline")
	}
	if best[0] > orig[0] {
		t.Errorf("graph discovery worsened P@5: %.4f vs %.4f", best[0], orig[0])
	}
}

func TestSurrogateReducesExactCalls(t *testing.T) {
	w := datagen.T1Movie(datagen.TaskConfig{Rows: 140})
	ctx := context.Background()
	withSur, err := modis.NewEngine(w.NewConfig(true)).Run(ctx, "apx", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := modis.NewEngine(w.NewConfig(false)).Run(ctx, "apx", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if withSur.ExactCalls >= exact.ExactCalls {
		t.Errorf("surrogate exact calls %d should be below exact-only %d",
			withSur.ExactCalls, exact.ExactCalls)
	}
}

func TestEpsSkylinePropertyEndToEnd(t *testing.T) {
	w := datagen.T3Avocado(datagen.TaskConfig{Rows: 140})
	cfg := w.NewConfig(false) // exact valuations: the property is over T
	eng := modis.NewEngine(cfg)
	rep, err := eng.Run(context.Background(), "apx", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	var all []skyline.Vector
	for _, tst := range cfg.Tests.All() {
		all = append(all, tst.Perf)
	}
	out := make([]skyline.Vector, 0, len(rep.Skyline))
	for _, v := range rep.Vectors() {
		out = append(out, skyline.Vector(v))
	}
	// The search-grid members jointly eps-cover the valuated states; the
	// output set additionally satisfies the bounds. With default bounds
	// (upper = 1) both coincide.
	if !skyline.IsEpsSkylineOf(out, all, rep.Options.Epsilon) {
		t.Error("output is not an ε-skyline of the valuated states")
	}
}

func TestDivMODisDiversityExceedsBiMODis(t *testing.T) {
	mk := func() *datagen.Workload {
		return datagen.T1Movie(datagen.TaskConfig{Rows: 140})
	}
	// Strongly favor content diversity.
	extra := []modis.Option{modis.WithK(3), modis.WithAlpha(0.9)}

	resBi := run(t, mk(), "bi", extra...)
	resDiv := run(t, mk(), "div", extra...)
	// Average pairwise distance of the diversified set should not trail
	// the plain bi-directional skyline's.
	avg := func(cs []*modis.Candidate) float64 {
		if len(cs) < 2 {
			return 0
		}
		return modis.Diversity(cs, 0.9, 1) * 2 / float64(len(cs)*(len(cs)-1))
	}
	if len(resDiv.Skyline) >= 2 && len(resBi.Skyline) >= 2 {
		if avg(resDiv.Skyline) < avg(resBi.Skyline)*0.8 {
			t.Errorf("DivMODis avg pairwise distance %.4f fell far below BiMODis %.4f",
				avg(resDiv.Skyline), avg(resBi.Skyline))
		}
	}
}

func TestBoundedDiscoveryRespectsBounds(t *testing.T) {
	w := datagen.T4Mental(datagen.TaskConfig{Rows: 160})
	w.Measures[0].Bounds = skyline.Bounds{Lower: 1e-3, Upper: 0.3}
	rep := run(t, w, "bi")
	for _, c := range rep.Skyline {
		if c.Perf[0] > 0.3 {
			t.Errorf("skyline member violates the pAcc bound: %v", c.Perf)
		}
	}
}

// TestCancelledRunLeavesEngineReusable asserts the serving-relevant
// contract end to end: a cancelled run returns context.Canceled and the
// same engine still answers the next (uncancelled) run.
func TestCancelledRunLeavesEngineReusable(t *testing.T) {
	w := datagen.T1Movie(datagen.TaskConfig{Rows: 140})
	eng := modis.NewEngine(w.NewConfig(true))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, "bi", smallOpts()...); err != context.Canceled {
		t.Fatalf("cancelled run err = %v, want context.Canceled", err)
	}
	rep, err := eng.Run(context.Background(), "bi", smallOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skyline) == 0 {
		t.Fatal("engine unusable after a cancelled run")
	}
}
