package baselines

import (
	"testing"

	"repro/internal/datagen"
)

func smallWorkload() *datagen.Workload {
	return datagen.T2House(datagen.TaskConfig{Rows: 120, Seed: 21})
}

func TestEvalTableVectorShape(t *testing.T) {
	w := smallWorkload()
	v, err := EvalTable(w, w.Lake.Universal)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != len(w.Measures) {
		t.Fatalf("vector len = %d, want %d", len(v), len(w.Measures))
	}
	for _, x := range v {
		if x <= 0 || x > 1 {
			t.Errorf("measure %v outside (0,1]", x)
		}
	}
}

func TestMETAMImprovesUtility(t *testing.T) {
	w := smallWorkload()
	base := baseTable(w)
	basePerf, err := EvalTable(w, base)
	if err != nil {
		t.Fatal(err)
	}
	out, err := METAM(w, 1) // optimize accuracy measure
	if err != nil {
		t.Fatal(err)
	}
	if out.Perf[1] > basePerf[1] {
		t.Errorf("METAM utility worsened: %v vs base %v", out.Perf[1], basePerf[1])
	}
	if out.Method != "METAM" {
		t.Error("method label")
	}
}

func TestMETAMMO(t *testing.T) {
	w := smallWorkload()
	out, err := METAMMO(w)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table == nil || len(out.Perf) != len(w.Measures) {
		t.Fatal("malformed METAM-MO output")
	}
}

func TestStarmieJoinsSimilarTables(t *testing.T) {
	w := smallWorkload()
	out, err := Starmie(w, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Union search should augment beyond the base table's schema.
	if out.Table.NumCols() <= baseTable(w).NumCols() {
		t.Errorf("Starmie cols = %d, want > base %d", out.Table.NumCols(), baseTable(w).NumCols())
	}
}

func TestSkSFMSelectsSubset(t *testing.T) {
	w := smallWorkload()
	out, err := SkSFM(w)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumCols() >= w.Lake.Universal.NumCols() {
		t.Errorf("SkSFM cols = %d, want < universal %d", out.Table.NumCols(), w.Lake.Universal.NumCols())
	}
	if !out.Table.Schema.Has(w.Lake.Target) {
		t.Error("SkSFM must keep the target")
	}
}

func TestH2OSelectsSubset(t *testing.T) {
	w := smallWorkload()
	out, err := H2O(w)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumCols() >= w.Lake.Universal.NumCols() {
		t.Errorf("H2O cols = %d, want < universal", out.Table.NumCols())
	}
	if !out.Table.Schema.Has(w.Lake.Target) {
		t.Error("H2O must keep the target")
	}
}

func TestHydraGANShape(t *testing.T) {
	w := smallWorkload()
	out, err := HydraGAN(w, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Table.NumRows() != 80 {
		t.Errorf("HydraGAN rows = %d, want 80", out.Table.NumRows())
	}
	if out.Table.NumCols() != w.Lake.Universal.NumCols() {
		t.Error("HydraGAN must follow the universal schema")
	}
}

func TestSelectAboveMean(t *testing.T) {
	got := selectAboveMean([]string{"a", "b", "c"}, []float64{0.1, 0.9, 0.2})
	if len(got) != 1 || got[0] != "b" {
		t.Errorf("selectAboveMean = %v", got)
	}
	// Never empty when inputs exist.
	got = selectAboveMean([]string{"a"}, []float64{0})
	if len(got) != 1 {
		t.Error("selection must not be empty")
	}
}

func TestTokenize(t *testing.T) {
	toks := tokenize("info0_score-v2")
	want := []string{"info", "score", "v"}
	if len(toks) != len(want) {
		t.Fatalf("tokenize = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("tokenize = %v, want %v", toks, want)
		}
	}
}

func TestColumnProfileSimilarity(t *testing.T) {
	w := smallWorkload()
	u := w.Lake.Universal
	p1 := profileColumn(u, u.Schema[2])
	p2 := profileColumn(u, u.Schema[2])
	if s := p1.similarity(p2); s < 0.99 {
		t.Errorf("self-similarity = %v, want ~1", s)
	}
}
