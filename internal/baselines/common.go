// Package baselines re-implements the comparison methods of the MODis
// experimental study at the algorithmic level: METAM and METAM-MO
// (goal-oriented join discovery), a Starmie-style union search, SkSFM
// (scikit-learn SelectFromModel) and an H2O-style linear filter, plus a
// HydraGAN-style synthetic row generator. Each produces a single output
// table, evaluated with the same task model as MODis for fair comparison.
package baselines

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/skyline"
	"repro/internal/table"
)

// EvalTable runs the workload's model over a candidate table and returns
// the normalized (minimize-space) performance vector.
func EvalTable(w *datagen.Workload, d *table.Table) (skyline.Vector, error) {
	raw, err := w.Model.Evaluate(d)
	if err != nil {
		return nil, fmt.Errorf("baselines: evaluate: %w", err)
	}
	if len(raw) != len(w.Measures) {
		return nil, fmt.Errorf("baselines: got %d metrics, want %d", len(raw), len(w.Measures))
	}
	v := make(skyline.Vector, len(raw))
	for i, m := range w.Measures {
		v[i] = m.Normalize(raw[i])
	}
	return v, nil
}

// baseTable returns the lake table containing the target attribute (the
// initial dataset D_M the augmentation baselines start from).
func baseTable(w *datagen.Workload) *table.Table {
	for _, t := range w.Lake.Tables {
		if t.Schema.Has(w.Lake.Target) {
			return t
		}
	}
	return w.Lake.Tables[0]
}

// candidateTables returns the lake tables other than base.
func candidateTables(w *datagen.Workload, base *table.Table) []*table.Table {
	var out []*table.Table
	for _, t := range w.Lake.Tables {
		if t != base {
			out = append(out, t)
		}
	}
	return out
}

// Output is a baseline's result: the discovered table and its vector.
type Output struct {
	Method string
	Table  *table.Table
	Perf   skyline.Vector
}
