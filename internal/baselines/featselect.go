package baselines

import (
	"math/rand"
	"sort"

	"repro/internal/datagen"
	"repro/internal/ml"
	"repro/internal/stats"
	"repro/internal/table"
)

// SkSFM mirrors scikit-learn's SelectFromModel: fit a tree-ensemble
// estimator on the universal table, compute impurity importances, and
// keep the features scoring at least the mean importance (the library's
// default threshold), projecting the universal table accordingly.
func SkSFM(w *datagen.Workload) (*Output, error) {
	u := w.Lake.Universal
	ds := ml.FromTable(u, w.Lake.Target)
	keep := []string{w.Lake.Target}
	if ds.NumRows() > 0 && ds.NumFeatures() > 0 {
		g := &ml.GBMRegressor{Config: ml.GBMConfig{NumTrees: 25, MaxDepth: 3, Seed: 3}}
		g.Fit(ds.X, ds.Y)
		imp := g.Importances(ds.NumFeatures())
		keep = append(keep, selectAboveMean(ds.Features, imp)...)
	}
	out := u.Project(dedup(keep)...)
	out.Name = "SkSFM"
	perf, err := EvalTable(w, out)
	if err != nil {
		return nil, err
	}
	return &Output{Method: "SkSFM", Table: out, Perf: perf}, nil
}

// H2O mirrors the H2O AutoML feature-selection module: fit a linear
// model over standardized features and keep the features whose absolute
// coefficient is at least the mean magnitude.
func H2O(w *datagen.Workload) (*Output, error) {
	u := w.Lake.Universal
	ds := ml.FromTable(u, w.Lake.Target)
	keep := []string{w.Lake.Target}
	if ds.NumRows() > 0 && ds.NumFeatures() > 0 {
		lr := &ml.LogisticRegression{Iterations: 120}
		// For regression targets, binarize around the median so the
		// linear filter still ranks features.
		y := binarizeMedian(ds.Y)
		lr.Fit(ds.X, y)
		keep = append(keep, selectAboveMean(ds.Features, lr.AbsWeights())...)
	}
	out := u.Project(dedup(keep)...)
	out.Name = "H2O"
	perf, err := EvalTable(w, out)
	if err != nil {
		return nil, err
	}
	return &Output{Method: "H2O", Table: out, Perf: perf}, nil
}

// HydraGAN mimics the generative augmentation comparator [DeSmet & Cook
// 2024]: it synthesizes rows by sampling each column's marginal
// distribution (Gaussian for numerics, empirical frequencies for
// categoricals) under a fixed schema. Synthetic rows lack the verified
// cross-feature structure of discovered data, the limitation the paper
// reports.
func HydraGAN(w *datagen.Workload, numRows int, seed int64) (*Output, error) {
	u := w.Lake.Universal
	if numRows <= 0 {
		numRows = u.NumRows()
	}
	rng := rand.New(rand.NewSource(seed))
	out := table.New("HydraGAN", u.Schema)
	for r := 0; r < numRows; r++ {
		row := make(table.Row, len(u.Schema))
		for c, col := range u.Schema {
			vals := u.Column(col.Name)
			if len(vals) == 0 {
				continue
			}
			if col.Kind == table.KindString {
				row[c] = vals[rng.Intn(len(vals))]
				continue
			}
			var xs []float64
			for _, v := range vals {
				if !v.IsNull() {
					xs = append(xs, v.AsFloat())
				}
			}
			if len(xs) == 0 {
				continue
			}
			mu := stats.Mean(xs)
			sd := stats.StdDev(xs)
			x := mu + sd*rng.NormFloat64()
			if col.Kind == table.KindInt {
				row[c] = table.Int(int64(x))
			} else {
				row[c] = table.Float(x)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	perf, err := EvalTable(w, out)
	if err != nil {
		return nil, err
	}
	return &Output{Method: "HydraGAN", Table: out, Perf: perf}, nil
}

func selectAboveMean(names []string, scores []float64) []string {
	if len(scores) == 0 {
		return nil
	}
	m := stats.Mean(scores)
	var keep []string
	for i, s := range scores {
		if s >= m && i < len(names) {
			keep = append(keep, names[i])
		}
	}
	if len(keep) == 0 && len(names) > 0 {
		keep = append(keep, names[0])
	}
	return keep
}

func binarizeMedian(y []float64) []float64 {
	sorted := append([]float64(nil), y...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	out := make([]float64, len(y))
	for i, v := range y {
		if v > med {
			out[i] = 1
		}
	}
	return out
}

func dedup(names []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
