package baselines

import (
	"repro/internal/datagen"
	"repro/internal/table"
)

// METAM is the goal-oriented data discovery baseline [Galhotra et al.,
// ICDE 2023]: starting from the base table it greedily performs
// consecutive joins with candidate tables, keeping a join only when it
// improves a single utility — here the normalized measure at index
// utilityIdx (smaller is better). It stops when no candidate improves.
func METAM(w *datagen.Workload, utilityIdx int) (*Output, error) {
	return metamImpl(w, func(v []float64) float64 { return v[utilityIdx] }, "METAM")
}

// METAMMO is the METAM-MO extension of the paper: the utility is the
// unweighted linear sum of all normalized measures, turning the
// multi-objective need into a single objective.
func METAMMO(w *datagen.Workload) (*Output, error) {
	return metamImpl(w, func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}, "METAM-MO")
}

func metamImpl(w *datagen.Workload, utility func([]float64) float64, name string) (*Output, error) {
	cur := baseTable(w).Clone()
	perf, err := EvalTable(w, cur)
	if err != nil {
		return nil, err
	}
	curU := utility(perf)
	remaining := candidateTables(w, baseTable(w))

	for {
		bestIdx := -1
		var bestTable *table.Table
		var bestPerf []float64
		bestU := curU
		for i, cand := range remaining {
			joined := table.EquiJoin(cur, cand)
			if joined.NumRows() == 0 {
				joined = table.OuterJoin(cur, cand)
			}
			v, err := EvalTable(w, joined)
			if err != nil {
				return nil, err
			}
			if u := utility(v); u < bestU {
				bestU, bestIdx, bestTable, bestPerf = u, i, joined, v
			}
		}
		if bestIdx < 0 {
			break
		}
		cur, curU, perf = bestTable, bestU, bestPerf
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return &Output{Method: name, Table: cur, Perf: perf}, nil
}
