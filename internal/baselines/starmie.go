package baselines

import (
	"math"
	"strings"

	"repro/internal/datagen"
	"repro/internal/stats"
	"repro/internal/table"
)

// columnProfile is a lightweight contextualized column sketch standing
// in for Starmie's learned column representations: name tokens plus
// value-distribution statistics.
type columnProfile struct {
	nameTokens map[string]bool
	kind       table.Kind
	mean, std  float64
	distinct   int
}

func profileColumn(t *table.Table, col table.Column) columnProfile {
	p := columnProfile{nameTokens: map[string]bool{}, kind: col.Kind}
	for _, tok := range tokenize(col.Name) {
		p.nameTokens[tok] = true
	}
	var xs []float64
	for _, v := range t.Column(col.Name) {
		if !v.IsNull() && col.Kind != table.KindString {
			xs = append(xs, v.AsFloat())
		}
	}
	if len(xs) > 0 {
		p.mean = stats.Mean(xs)
		p.std = stats.StdDev(xs)
	}
	p.distinct = len(t.ActiveDomain(col.Name))
	return p
}

func tokenize(name string) []string {
	name = strings.ToLower(name)
	var toks []string
	cur := strings.Builder{}
	for _, r := range name {
		if r == '_' || r == '-' || (r >= '0' && r <= '9') {
			if cur.Len() > 0 {
				toks = append(toks, cur.String())
				cur.Reset()
			}
			continue
		}
		cur.WriteRune(r)
	}
	if cur.Len() > 0 {
		toks = append(toks, cur.String())
	}
	return toks
}

// similarity scores two column profiles in [0, 1]: Jaccard of name
// tokens blended with distribution closeness when kinds agree.
func (p columnProfile) similarity(o columnProfile) float64 {
	inter, union := 0, 0
	for t := range p.nameTokens {
		union++
		if o.nameTokens[t] {
			inter++
		}
	}
	for t := range o.nameTokens {
		if !p.nameTokens[t] {
			union++
		}
	}
	jac := 0.0
	if union > 0 {
		jac = float64(inter) / float64(union)
	}
	if p.kind != o.kind {
		return 0.5 * jac
	}
	distSim := 1.0
	if p.std > 0 || o.std > 0 {
		distSim = 1 / (1 + math.Abs(p.mean-o.mean) + math.Abs(p.std-o.std))
	}
	return 0.5*jac + 0.5*distSim
}

// Starmie performs table-union/joinability search in the style of
// Starmie [Fan et al., VLDB 2023]: candidate tables are ranked by the
// best average column-profile similarity against the base table, and
// every candidate above the threshold is joined in, without model
// feedback (the discovery is semantics-driven, not utility-driven).
func Starmie(w *datagen.Workload, threshold float64) (*Output, error) {
	if threshold <= 0 {
		threshold = 0.25
	}
	base := baseTable(w)
	baseProfiles := make([]columnProfile, 0, len(base.Schema))
	for _, c := range base.Schema {
		baseProfiles = append(baseProfiles, profileColumn(base, c))
	}

	cur := base.Clone()
	for _, cand := range candidateTables(w, base) {
		var best float64
		var n int
		for _, c := range cand.Schema {
			cp := profileColumn(cand, c)
			colBest := 0.0
			for _, bp := range baseProfiles {
				if s := bp.similarity(cp); s > colBest {
					colBest = s
				}
			}
			best += colBest
			n++
		}
		if n == 0 {
			continue
		}
		if best/float64(n) >= threshold {
			joined := table.EquiJoin(cur, cand)
			if joined.NumRows() == 0 {
				// Non-overlapping keys: fall back to a union-preserving
				// outer join so earlier augmentations survive.
				joined = table.OuterJoin(cur, cand)
			}
			cur = joined
		}
	}
	perf, err := EvalTable(w, cur)
	if err != nil {
		return nil, err
	}
	return &Output{Method: "Starmie", Table: cur, Perf: perf}, nil
}
