// Package chaos is the fault-injection harness of the serving fleet:
// a TCP fault proxy that sits between the routing proxy and a modisd
// node and injects the failures real networks produce — added latency,
// dropped connections, mid-stream resets, partial responses — plus an
// invariant checker asserting what resilience must preserve: no
// accepted job lost, no job duplicated, every skyline byte-identical
// to a fault-free run.
//
// Faults are deterministic by construction (connection counters, not
// randomness), so a failing chaos run replays exactly. Scripted
// SIGKILL scenarios against real daemons live in cmd/modischaos, which
// drives this package.
package chaos

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is one fault configuration of a Proxy. The zero value is a
// transparent pipe. Faults may be swapped mid-run with SetFaults; each
// accepted connection snapshots the configuration once.
type Faults struct {
	// Latency delays every read the proxy relays, in both directions —
	// a slow node (or a slow network path) rather than a dead one.
	Latency time.Duration
	// DropEvery closes every Nth accepted connection immediately,
	// before a byte flows (0 = never). The dialer sees a connection
	// that dies without a response — the classic "was my request
	// processed?" ambiguity idempotency keys exist for.
	DropEvery int
	// ResetAfterBytes resets the connection (RST, not FIN) once this
	// many response bytes have been relayed toward the client (0 =
	// never) — a partial response followed by a hard failure.
	ResetAfterBytes int64
	// Blackhole refuses all connections while set: accepted and
	// immediately closed, a partitioned node.
	Blackhole bool
}

// Proxy is a TCP fault proxy in front of one target address.
type Proxy struct {
	ln     net.Listener
	target string

	mu     sync.Mutex
	faults Faults
	live   map[net.Conn]struct{} // open relayed connections, torn down on Close

	conns  atomic.Int64 // accepted connections, drives DropEvery
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewProxy listens on addr ("127.0.0.1:0" for an ephemeral port) and
// relays every connection to target through the configured faults.
func NewProxy(addr, target string, faults Faults) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, faults: faults, live: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr is the proxy's listen address — what the routing proxy should
// be pointed at instead of the node.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetFaults swaps the fault configuration. In-flight connections keep
// the configuration they started with.
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// Conns reports how many connections the proxy has accepted.
func (p *Proxy) Conns() int64 { return p.conns.Load() }

// Close stops accepting, tears down every relayed connection (idle
// keep-alive pipes included — callers must not wait out a client's
// IdleConnTimeout), and waits for the relay goroutines.
func (p *Proxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.ln.Close()
	p.mu.Lock()
	for c := range p.live {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// track registers a connection for teardown on Close; it returns false
// (and closes the connection) when the proxy is already closing.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		c.Close()
		return false
	}
	p.live[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.live, c)
	p.mu.Unlock()
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := p.conns.Add(1)
		p.mu.Lock()
		f := p.faults
		p.mu.Unlock()
		if f.Blackhole || (f.DropEvery > 0 && n%int64(f.DropEvery) == 0) {
			conn.Close()
			continue
		}
		p.wg.Add(1)
		go p.relay(conn, f)
	}
}

// relay pipes one client connection to the target under the faults it
// snapshotted at accept time.
func (p *Proxy) relay(client net.Conn, f Faults) {
	defer p.wg.Done()
	if !p.track(client) {
		return
	}
	defer p.untrack(client)
	defer client.Close()
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	if !p.track(upstream) {
		return
	}
	defer p.untrack(upstream)
	defer upstream.Close()

	var done sync.WaitGroup
	done.Add(2)
	// Request direction: client → node.
	go func() {
		defer done.Done()
		pipe(upstream, client, f.Latency, 0, nil)
		// Half-close so the node sees request EOF without killing the
		// response direction.
		if tc, ok := upstream.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	// Response direction: node → client, where resets cut in.
	go func() {
		defer done.Done()
		reset := func() {
			// SO_LINGER 0 turns Close into RST: the client observes a
			// connection reset mid-response, not a clean EOF it could
			// mistake for a complete reply.
			if tc, ok := client.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			client.Close()
			upstream.Close()
		}
		pipe(client, upstream, f.Latency, f.ResetAfterBytes, reset)
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	done.Wait()
}

// pipe copies src→dst, delaying each read by latency, and fires onCap
// (then stops) once limit bytes have been written (limit 0 =
// unlimited).
func pipe(dst io.Writer, src io.Reader, latency time.Duration, limit int64, onCap func()) {
	buf := make([]byte, 16*1024)
	var written int64
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if latency > 0 {
				time.Sleep(latency)
			}
			chunk := buf[:n]
			if limit > 0 && written+int64(n) >= limit {
				chunk = buf[:limit-written]
				if len(chunk) > 0 {
					dst.Write(chunk)
				}
				if onCap != nil {
					onCap()
				}
				return
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			written += int64(n)
		}
		if rerr != nil {
			return
		}
	}
}
