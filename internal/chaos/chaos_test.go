package chaos_test

// Fault-injected fleet tests: real serve.Server nodes behind real TCP
// listeners, a chaos.Proxy in front of each injecting drops, latency,
// and partitions, the routing proxy over the chaos addresses, and the
// retrying serve.Client as the caller. The invariant checker closes
// the loop: nothing lost, nothing duplicated, skylines byte-identical
// to a fault-free run.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fst"
	"repro/internal/table"
	"repro/modis/proxy"
	"repro/modis/serve"
	"repro/modis/workload"
)

// shapeModel mirrors the serve/proxy test model: measures derived from
// the dataset shape, a pure function of the state, byte-identical
// across nodes and runs.
type shapeModel struct {
	space *fst.Space
	sleep time.Duration
}

func (m *shapeModel) Name() string { return "shape" }

func (m *shapeModel) Evaluate(d *table.Table) ([]float64, error) {
	if m.sleep > 0 {
		time.Sleep(m.sleep)
	}
	rows, cols := float64(d.NumRows()), float64(d.NumCols())
	uRows := float64(m.space.Universal.NumRows())
	uCols := float64(m.space.Universal.NumCols())
	return []float64{
		0.1 + 0.9*(rows/uRows)*(cols/uCols),
		0.1 + 0.9*(1-rows/uRows),
	}, nil
}

func newShapeConfig(tb testing.TB, variant int, sleep time.Duration) *fst.Config {
	tb.Helper()
	u := table.New("D_U", table.Schema{
		{Name: "a", Kind: table.KindFloat},
		{Name: "b", Kind: table.KindFloat},
		{Name: "target", Kind: table.KindInt},
	})
	for i := 0; i < 24+variant; i++ {
		u.MustAppend(table.Row{
			table.Float(float64(i % 3)),
			table.Float(float64(i % 4)),
			table.Int(int64(i % 2)),
		})
	}
	sp := fst.NewSpace(u, "target", fst.SpaceConfig{MaxLiteralsPerAttr: 4})
	return &fst.Config{
		Space: sp,
		Model: &shapeModel{space: sp, sleep: sleep},
		Measures: []fst.Measure{
			{Name: "p0", Normalize: fst.Identity(1e-3)},
			{Name: "p1", Normalize: fst.Identity(1e-3)},
		},
	}
}

func submitReq(name string) serve.SubmitRequest {
	eps, lvl, k, seed := 0.15, 3, 3, int64(2)
	return serve.SubmitRequest{
		Workload:  name,
		Algorithm: "bi",
		Options:   &serve.JobOptions{Epsilon: &eps, MaxLevel: &lvl, K: &k, Seed: &seed},
		TimeoutMS: 30_000,
	}
}

// startNode launches one serve node registering wl0 and wl1, returning
// its real TCP host:port.
func startNode(tb testing.TB, sleep time.Duration) string {
	tb.Helper()
	sched := serve.NewScheduler(serve.SchedulerOptions{})
	for v := 0; v < 2; v++ {
		cfg := newShapeConfig(tb, v, sleep)
		desc, err := workload.Describe(fmt.Sprintf("wl%d", v), cfg)
		if err != nil {
			tb.Fatal(err)
		}
		if err := sched.Register(desc, cfg); err != nil {
			tb.Fatal(err)
		}
	}
	hs := httptest.NewServer(serve.NewServer(sched, serve.ServerOptions{}))
	tb.Cleanup(hs.Close)
	return hs.Listener.Addr().String()
}

// reference runs each workload fault-free on a fresh node and records
// the canonical skyline bytes per config label.
func reference(tb testing.TB) map[string]string {
	tb.Helper()
	addr := startNode(tb, 0)
	cl := serve.NewClient(addr)
	ctx := context.Background()
	ref := map[string]string{}
	for v := 0; v < 2; v++ {
		name := fmt.Sprintf("wl%d", v)
		st, err := cl.Submit(ctx, submitReq(name))
		if err != nil {
			tb.Fatal(err)
		}
		final, err := cl.Wait(ctx, st.JobID, 5*time.Millisecond)
		if err != nil {
			tb.Fatal(err)
		}
		sky, err := chaos.SkylineJSON(final)
		if err != nil {
			tb.Fatal(err)
		}
		ref[name] = sky
	}
	return ref
}

// chaosFleet builds two nodes, each behind a chaos proxy, and a
// routing proxy over the chaos addresses with fast breakers. Returns
// the chaos proxies (index-aligned with the nodes) and a retrying
// client speaking to the routing proxy.
func chaosFleet(tb testing.TB, sleep time.Duration, faults [2]chaos.Faults) ([2]*chaos.Proxy, *proxy.Proxy, *serve.Client) {
	tb.Helper()
	var cps [2]*chaos.Proxy
	var addrs []string
	for i := 0; i < 2; i++ {
		target := startNode(tb, sleep)
		cp, err := chaos.NewProxy("127.0.0.1:0", target, faults[i])
		if err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(cp.Close)
		cps[i] = cp
		addrs = append(addrs, cp.Addr())
	}
	p := proxy.New(proxy.Options{
		Nodes:          addrs,
		HealthInterval: -1,
		Breaker:        proxy.BreakerOptions{Cooldown: 50 * time.Millisecond},
	})
	tb.Cleanup(p.Close)
	p.CheckNow(context.Background())
	front := httptest.NewServer(p)
	tb.Cleanup(front.Close)
	cl := serve.NewClient(front.URL).WithRetry(serve.RetryPolicy{
		MaxAttempts: 6, BaseBackoff: 20 * time.Millisecond, MaxBackoff: 200 * time.Millisecond,
	})
	return cps, p, cl
}

// TestFaultProxyTransparent: a zero-fault chaos proxy relays HTTP
// untouched.
func TestFaultProxyTransparent(t *testing.T) {
	target := startNode(t, 0)
	cp, err := chaos.NewProxy("127.0.0.1:0", target, chaos.Faults{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Close)
	cl := serve.NewClient(cp.Addr())
	ctx := context.Background()
	st, err := cl.Submit(ctx, submitReq("wl0"))
	if err != nil {
		t.Fatalf("submit through transparent fault proxy: %v", err)
	}
	final, err := cl.Wait(ctx, st.JobID, 5*time.Millisecond)
	if err != nil || final.Status != serve.StatusDone {
		t.Fatalf("job through transparent fault proxy: %v (status %v)", err, final)
	}
	if cp.Conns() == 0 {
		t.Error("fault proxy saw no connections")
	}
}

// TestChaosDropsAndSlowNode: one node drops every third connection,
// the other is slow; keyed submissions with a retrying client all
// complete, nothing is lost or duplicated, and every skyline matches
// the fault-free reference byte for byte.
func TestChaosDropsAndSlowNode(t *testing.T) {
	ref := reference(t)
	cps, _, cl := chaosFleet(t, 0, [2]chaos.Faults{
		{DropEvery: 3},
		{Latency: 2 * time.Millisecond},
	})
	_ = cps
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var accepted []chaos.Accepted
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("wl%d", i%2)
		req := submitReq(name)
		req.IdempotencyKey = serve.NewIdempotencyKey()
		st, err := cl.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit %d under drops: %v", i, err)
		}
		accepted = append(accepted, chaos.Accepted{Key: req.IdempotencyKey, JobID: st.JobID, Config: name})
	}
	for _, a := range accepted {
		if _, err := cl.Wait(ctx, a.JobID, 5*time.Millisecond); err != nil {
			t.Fatalf("waiting for %s: %v", a.JobID, err)
		}
	}
	if v := chaos.CheckInvariants(ctx, cl, accepted, ref); len(v) > 0 {
		for _, msg := range v {
			t.Error(msg)
		}
	}

	// A same-key retry — the failover case the key exists for — replays
	// the original job instead of running a second search.
	req := submitReq(accepted[0].Config)
	req.IdempotencyKey = accepted[0].Key
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatalf("same-key resubmit: %v", err)
	}
	if st.JobID != accepted[0].JobID {
		t.Errorf("same-key resubmit returned job %s, want original %s", st.JobID, accepted[0].JobID)
	}
}

// TestChaosPartition: a blackholed node trips its breaker and the
// fleet keeps serving through the survivor; lifting the partition and
// sweeping heals the view.
func TestChaosPartition(t *testing.T) {
	ref := reference(t)
	cps, p, cl := chaosFleet(t, 0, [2]chaos.Faults{{}, {}})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cps[0].SetFaults(chaos.Faults{Blackhole: true})
	p.CheckNow(ctx)

	var accepted []chaos.Accepted
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("wl%d", i%2)
		req := submitReq(name)
		req.IdempotencyKey = serve.NewIdempotencyKey()
		st, err := cl.Submit(ctx, req)
		if err != nil {
			t.Fatalf("submit %d under partition: %v", i, err)
		}
		accepted = append(accepted, chaos.Accepted{Key: req.IdempotencyKey, JobID: st.JobID, Config: name})
	}
	for _, a := range accepted {
		if _, err := cl.Wait(ctx, a.JobID, 5*time.Millisecond); err != nil {
			t.Fatalf("waiting for %s: %v", a.JobID, err)
		}
	}
	if v := chaos.CheckInvariants(ctx, cl, accepted, ref); len(v) > 0 {
		for _, msg := range v {
			t.Error(msg)
		}
	}

	cps[0].SetFaults(chaos.Faults{})
	p.CheckNow(ctx)
	// The healed node serves again: another submission round succeeds.
	req := submitReq("wl0")
	req.IdempotencyKey = serve.NewIdempotencyKey()
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit after partition healed: %v", err)
	}
	if _, err := cl.Wait(ctx, st.JobID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

// TestChaosResetMidStream: the response direction resets after a few
// bytes; a retrying client still completes its submission (the key
// makes the ambiguous first attempt safe) with the reference skyline.
func TestChaosResetMidStream(t *testing.T) {
	ref := reference(t)
	target := startNode(t, 0)
	cp, err := chaos.NewProxy("127.0.0.1:0", target, chaos.Faults{ResetAfterBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Close)
	cl := serve.NewClient(cp.Addr()).WithRetry(serve.RetryPolicy{
		MaxAttempts: 8, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	req := submitReq("wl0")
	req.IdempotencyKey = serve.NewIdempotencyKey()
	st, submitErr := cl.Submit(ctx, req)
	// Every response is cut at 64 bytes, so the submit may never see an
	// acceptance; lift the fault — the retried key must resolve to ONE
	// job either way.
	cp.SetFaults(chaos.Faults{})
	if submitErr != nil {
		st, submitErr = cl.Submit(ctx, req)
	}
	if submitErr != nil {
		t.Fatalf("submit after reset fault lifted: %v", submitErr)
	}
	final, err := cl.Wait(ctx, st.JobID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != serve.StatusDone {
		t.Fatalf("job ended %s: %s", final.Status, final.Error)
	}
	sky, err := chaos.SkylineJSON(final)
	if err != nil {
		t.Fatal(err)
	}
	if sky != ref["wl0"] {
		t.Errorf("skyline after mid-stream resets diverged from fault-free run")
	}
	// One done job for the key across the node: no duplicate run.
	accepted := []chaos.Accepted{{Key: req.IdempotencyKey, JobID: st.JobID, Config: "wl0"}}
	if v := chaos.CheckInvariants(ctx, cl, accepted, ref); len(v) > 0 {
		for _, msg := range v {
			t.Error(msg)
		}
	}
}
