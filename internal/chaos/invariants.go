package chaos

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/modis/serve"
)

// Accepted is one submission the fleet accepted during a chaos run:
// the idempotency key it traveled under, the job id the acceptance
// named, and the label of the request configuration (which reference
// skyline it must reproduce).
type Accepted struct {
	Key    string
	JobID  string
	Config string
}

// SkylineJSON canonicalizes a job's skyline for byte comparison.
// Determinism is the engine's contract — same workload, algorithm,
// options, and seed produce the identical skyline regardless of
// parallelism, batching, restarts, or injected faults — so the
// marshaled bytes must match exactly, not approximately.
func SkylineJSON(st *serve.JobStatus) (string, error) {
	if st == nil || st.Report == nil {
		return "", fmt.Errorf("chaos: job %s carries no report", st.JobID)
	}
	blob, err := json.Marshal(st.Report.Skyline)
	if err != nil {
		return "", err
	}
	return string(blob), nil
}

// CheckInvariants verifies the chaos contract against the fleet as
// seen through cl (normally the routing proxy):
//
//  1. No accepted job lost — every accepted id resolves and is done.
//  2. Skylines byte-identical to the fault-free reference for the same
//     configuration.
//  3. No job duplicated — submissions that shared an idempotency key
//     resolved to one job id, and fleet-wide at most one *done* job
//     exists per key (a failed duplicate from a failover race loses no
//     work and changes no answer; a second completed run would).
//
// The caller waits for the accepted jobs to finish first. Returns one
// human-readable violation per broken invariant; empty means the run
// held.
func CheckInvariants(ctx context.Context, cl *serve.Client, accepted []Accepted, reference map[string]string) []string {
	var violations []string
	byKey := map[string]string{}
	for _, a := range accepted {
		st, err := cl.Status(ctx, a.JobID)
		if err != nil {
			violations = append(violations, fmt.Sprintf("accepted job %s (key %.8s) lost: %v", a.JobID, a.Key, err))
			continue
		}
		if st.Status != serve.StatusDone {
			violations = append(violations, fmt.Sprintf("accepted job %s (key %.8s) is %q, want done (error: %s)", a.JobID, a.Key, st.Status, st.Error))
			continue
		}
		sky, err := SkylineJSON(st)
		if err != nil {
			violations = append(violations, fmt.Sprintf("job %s: %v", a.JobID, err))
			continue
		}
		want, ok := reference[a.Config]
		if !ok {
			violations = append(violations, fmt.Sprintf("job %s: no fault-free reference for config %q", a.JobID, a.Config))
			continue
		}
		if sky != want {
			violations = append(violations, fmt.Sprintf("job %s (config %q): skyline diverged from fault-free run\n  got:  %s\n  want: %s", a.JobID, a.Config, sky, want))
		}
		if prev, dup := byKey[a.Key]; dup && prev != a.JobID {
			violations = append(violations, fmt.Sprintf("key %.8s resolved to two jobs: %s and %s", a.Key, prev, a.JobID))
		}
		byKey[a.Key] = a.JobID
	}

	// Fleet-wide duplicate scan: walk the whole ledger and count done
	// jobs per key. Keys the run submitted must own exactly one done
	// job across the fleet.
	doneByKey := map[string][]string{}
	cursor := ""
	for {
		page, err := cl.List(ctx, cursor, 0)
		if err != nil {
			violations = append(violations, fmt.Sprintf("listing fleet jobs: %v", err))
			break
		}
		for _, st := range page.Jobs {
			if st.IdemKey != "" && st.Status == serve.StatusDone {
				doneByKey[st.IdemKey] = append(doneByKey[st.IdemKey], st.JobID)
			}
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	for key := range byKey {
		if ids := doneByKey[key]; len(ids) > 1 {
			violations = append(violations, fmt.Sprintf("key %.8s has %d completed jobs across the fleet (%v), want exactly 1", key, len(ids), ids))
		}
	}
	return violations
}
