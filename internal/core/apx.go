package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fst"
)

// ApxMODis is Algorithm 1: the (N, ε)-approximation that reduces from
// the universal dataset. Starting at s_U it spawns one-flip Reduct
// children level by level, valuates each through the configuration's
// estimator-backed Valuate, and maintains the ε-skyline set with
// procedure UPareto until N states are valuated or the space (bounded by
// MaxLevel) is exhausted. The context is checked at frontier-pop
// and child-valuation granularity: cancellation or deadline expiry
// aborts the search and returns ctx.Err() with no partial result.
func ApxMODis(ctx context.Context, cfg *fst.Config, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: ApxMODis: %w", err)
	}
	start := time.Now()
	g := newGrid(cfg, opts.Eps, opts.decisiveIdx(len(cfg.Measures)))
	var rg *fst.RunningGraph
	if opts.RecordGraph {
		rg = fst.NewRunningGraph()
	}

	su := &fst.State{Bits: cfg.Space.FullBitmap(), Level: 0, Via: -1}
	perf, err := cfg.Valuate(su.Bits)
	if err != nil {
		return nil, err
	}
	su.Perf = perf
	g.upareto(su.Bits, perf)
	if rg != nil {
		rg.AddNode(su)
	}

	queue := newFrontier(su)
	visited := map[fst.StateKey]bool{su.Key(): true}
	maxLevel := 0

	for queue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.N > 0 && cfg.Valuations() >= opts.N {
			break
		}
		s := queue.pop()
		if opts.MaxLevel > 0 && s.Level >= opts.MaxLevel {
			continue
		}
		for _, child := range fst.OpGen(s, fst.Forward) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if opts.N > 0 && cfg.Valuations() >= opts.N {
				break
			}
			k := child.Key()
			if visited[k] {
				continue
			}
			visited[k] = true
			cp, err := cfg.Valuate(child.Bits)
			if err != nil {
				return nil, err
			}
			child.Perf = cp
			if child.Level > maxLevel {
				maxLevel = child.Level
				opts.emit("apx", maxLevel, queue.Len(), cfg.Valuations(), g.size(), false)
			}
			if rg != nil {
				rg.AddEdge(s, rg.AddNode(child), child.Via, fst.Forward)
			}
			// Early pruning (Section 5.2, "Advantage"): under a budget,
			// only states that enter the ε-skyline set keep spawning
			// reductions — extending "shortest paths" first so deep
			// levels stay reachable within N. Unbudgeted runs stay
			// exhaustive, matching Algorithm 1 exactly.
			if g.upareto(child.Bits, cp) || opts.N == 0 {
				queue.push(child)
			}
		}
	}

	opts.emit("apx", maxLevel, queue.Len(), cfg.Valuations(), g.size(), true)
	return &Result{
		Skyline: g.finalize(),
		Stats: RunStats{
			Valuated:   cfg.Valuations(),
			ExactCalls: cfg.ExactCalls(),
			Levels:     maxLevel,
			Elapsed:    time.Since(start),
		},
		Graph: rg,
	}, nil
}
