package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fst"
)

// ApxMODis is Algorithm 1: the (N, ε)-approximation that reduces from
// the universal dataset. Starting at s_U it spawns one-flip Reduct
// children level by level, valuates each level's independent children
// as one batch through the run's Valuator — memo hits free, exact model
// inferences fanned across the worker pool, results committed in child
// order so any parallelism degree reproduces the sequential run — and
// maintains the ε-skyline set with procedure UPareto until N states are
// valuated or the space (bounded by MaxLevel) is exhausted. The context
// is checked at frontier-pop and batch granularity (workers observe it
// per job): cancellation or deadline expiry drains the pool and returns
// ctx.Err() with no partial result.
func ApxMODis(ctx context.Context, cfg *fst.Config, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: ApxMODis: %w", err)
	}
	start := time.Now()
	val := newValuator(cfg, opts)
	g := newGrid(cfg, opts.Eps, opts.decisiveIdx(len(cfg.Measures)))
	var rg *fst.RunningGraph
	if opts.RecordGraph {
		rg = fst.NewRunningGraph()
	}

	su := &fst.State{Bits: cfg.Space.FullBitmap(), Level: 0, Via: -1}
	perf, err := val.Valuate(ctx, su.Bits)
	if err != nil {
		return nil, err
	}
	su.Perf = perf
	g.upareto(su.Bits, perf)
	if rg != nil {
		rg.AddNode(su)
	}

	queue := newFrontier(su)
	visited := map[fst.StateKey]bool{su.Key(): true}
	maxLevel := 0
	var batch []*fst.State

	for queue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.N > 0 && val.Stats.Valuations() >= opts.N {
			break
		}
		s := queue.pop()
		if opts.MaxLevel > 0 && s.Level >= opts.MaxLevel {
			continue
		}
		batch = batch[:0]
		for _, child := range fst.OpGen(s, fst.Forward) {
			k := child.Key()
			if visited[k] {
				continue
			}
			visited[k] = true
			batch = append(batch, child)
		}
		n, err := val.ValuateStates(ctx, batch, opts.N)
		if err != nil {
			return nil, err
		}
		for _, child := range batch[:n] {
			if child.Level > maxLevel {
				maxLevel = child.Level
				opts.emit("apx", maxLevel, queue.Len(), val.Stats.Valuations(), g.size(), false)
			}
			if rg != nil {
				rg.AddEdge(s, rg.AddNode(child), child.Via, fst.Forward)
			}
			// Early pruning (Section 5.2, "Advantage"): under a budget,
			// only states that enter the ε-skyline set keep spawning
			// reductions — extending "shortest paths" first so deep
			// levels stay reachable within N. Unbudgeted runs stay
			// exhaustive, matching Algorithm 1 exactly.
			if g.upareto(child.Bits, child.Perf) || opts.N == 0 {
				queue.push(child)
			}
		}
	}

	opts.emit("apx", maxLevel, queue.Len(), val.Stats.Valuations(), g.size(), true)
	return &Result{
		Skyline: g.finalize(),
		Stats: RunStats{
			Valuated:   val.Stats.Valuations(),
			ExactCalls: val.Stats.ExactCalls(),
			Levels:     maxLevel,
			Elapsed:    time.Since(start),
		},
		Graph: rg,
	}, nil
}
