package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/fst"
	"repro/internal/skyline"
	"repro/internal/stats"
)

// corrGraph is G_C: nodes are measures, edges connect strongly
// (Spearman ≥ θ) correlated pairs, rebuilt as the test set T grows.
type corrGraph struct {
	strong [][]bool
	hasAny bool
}

func buildCorrGraph(cols [][]float64, theta float64) *corrGraph {
	n := len(cols)
	g := &corrGraph{strong: make([][]bool, n)}
	for i := range g.strong {
		g.strong[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if len(cols[i]) < 3 {
				continue
			}
			if math.Abs(stats.Spearman(cols[i], cols[j])) >= theta {
				g.strong[i][j], g.strong[j][i] = true, true
				g.hasAny = true
			}
		}
	}
	return g
}

// paramRange derives the parameterized range [p̂_l, p̂_u] of an
// unvaluated state from the historical tests whose dataset size
// (bitmap weight) brackets the state's — the inference of Example 6,
// using |D| as the conditioning variable of the correlation analysis.
func paramRange(tests []*fst.Test, ones, numMeasures int) (lo, hi skyline.Vector, ok bool) {
	for window := 2; window <= 16; window *= 2 {
		lo = make(skyline.Vector, numMeasures)
		hi = make(skyline.Vector, numMeasures)
		for i := range lo {
			lo[i] = math.Inf(1)
			hi[i] = math.Inf(-1)
		}
		found := 0
		for _, t := range tests {
			w := 0
			for _, f := range t.Features {
				if f > 0.5 {
					w++
				}
			}
			if w < ones-window || w > ones+window {
				continue
			}
			found++
			for i := 0; i < numMeasures && i < len(t.Perf); i++ {
				if t.Perf[i] < lo[i] {
					lo[i] = t.Perf[i]
				}
				if t.Perf[i] > hi[i] {
					hi[i] = t.Perf[i]
				}
			}
		}
		if found >= 2 {
			return lo, hi, true
		}
	}
	return nil, nil, false
}

// canPrune applies the operational form of Lemma 4: if a skyline member
// already ε-dominates the child's optimistic bound vector p̂_l, the child
// (and, under the monotonicity condition on its path, its descendants)
// cannot enter any ε-skyline over the valuated states, so its valuation
// is skipped.
func canPrune(members []*Candidate, lo skyline.Vector, eps float64) bool {
	for _, m := range members {
		dominated := true
		for i := range lo {
			if i >= len(m.Perf) || m.Perf[i] > (1+eps)*lo[i] {
				dominated = false
				break
			}
		}
		if dominated {
			return true
		}
	}
	return false
}

// BiMODis is Algorithm 2: bi-directional skyline set generation. A
// forward frontier reduces from the universal state s_U while a backward
// frontier augments from the back state s_b (procedure BackSt); both
// update the shared ε-skyline set via UPareto. Correlation-based pruning
// (unless disabled) skips valuating states whose parameterized range is
// already ε-dominated. The context is checked at frontier-pop
// and child-valuation granularity: cancellation or deadline expiry
// aborts the search and returns ctx.Err() with no partial result.
func BiMODis(ctx context.Context, cfg *fst.Config, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: BiMODis: %w", err)
	}
	algo := "bi"
	if opts.DisablePrune {
		algo = "nobi"
	}
	start := time.Now()
	nm := len(cfg.Measures)
	g := newGrid(cfg, opts.Eps, opts.decisiveIdx(nm))
	pruned := 0

	su := &fst.State{Bits: cfg.Space.FullBitmap(), Level: 0}
	sb := &fst.State{Bits: fst.BackSt(cfg.Space), Level: 0}

	for _, s := range []*fst.State{su, sb} {
		perf, err := cfg.Valuate(s.Bits)
		if err != nil {
			return nil, err
		}
		s.Perf = perf
		g.upareto(s.Bits, perf)
	}

	qf := newFrontier(su)
	qb := newFrontier(sb)
	visitedF := map[fst.StateKey]bool{su.Key(): true}
	visitedB := map[fst.StateKey]bool{sb.Key(): true}
	maxLevel := 0

	budget := func() bool { return opts.N > 0 && cfg.Valuations() >= opts.N }

	expand := func(s *fst.State, dir fst.Direction, visited, other map[fst.StateKey]bool) ([]*fst.State, bool, error) {
		var next []*fst.State
		met := false
		var gc *corrGraph
		if !opts.DisablePrune {
			gc = buildCorrGraph(cfg.Tests.Columns(nm), opts.Theta)
		}
		for _, child := range fst.OpGen(s, dir) {
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
			if budget() {
				break
			}
			k := child.Key()
			if other[k] {
				met = true
			}
			if visited[k] {
				continue
			}
			visited[k] = true

			if gc != nil && gc.hasAny {
				if lo, _, ok := paramRange(cfg.Tests.All(), child.Bits.Ones(), nm); ok {
					if canPrune(g.members(), lo, opts.Eps) {
						pruned++
						continue
					}
				}
			}

			perf, err := cfg.Valuate(child.Bits)
			if err != nil {
				return nil, false, err
			}
			child.Perf = perf
			if child.Level > maxLevel {
				maxLevel = child.Level
				opts.emit(algo, maxLevel, qf.Len()+qb.Len(), cfg.Valuations(), g.size(), false)
			}
			// Skyline-guided expansion under a budget; exhaustive when
			// unbudgeted (see ApxMODis).
			if g.upareto(child.Bits, perf) || opts.N == 0 {
				next = append(next, child)
			}
		}
		return next, met, nil
	}

	// The search terminates when both frontiers are exhausted, the
	// budget is spent, or the frontiers meet (a full path s_U → s_b is
	// formed), per Section 5.3.
	for (qf.Len() > 0 || qb.Len() > 0) && !budget() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var met bool
		if qf.Len() > 0 {
			sf := qf.pop()
			if opts.MaxLevel == 0 || sf.Level < opts.MaxLevel {
				nf, m, err := expand(sf, fst.Forward, visitedF, visitedB)
				if err != nil {
					return nil, err
				}
				met = met || m
				for _, s := range nf {
					qf.push(s)
				}
			}
		}
		if qb.Len() > 0 {
			sback := qb.pop()
			if opts.MaxLevel == 0 || sback.Level < opts.MaxLevel {
				nb, m, err := expand(sback, fst.Backward, visitedB, visitedF)
				if err != nil {
					return nil, err
				}
				met = met || m
				for _, s := range nb {
					qb.push(s)
				}
			}
		}
		if met {
			break
		}
	}

	opts.emit(algo, maxLevel, qf.Len()+qb.Len(), cfg.Valuations(), g.size(), true)
	return &Result{
		Skyline: g.finalize(),
		Stats: RunStats{
			Valuated:   cfg.Valuations(),
			ExactCalls: cfg.ExactCalls(),
			Levels:     maxLevel,
			Pruned:     pruned,
			Elapsed:    time.Since(start),
		},
	}, nil
}

// NOBiMODis is BiMODis without correlation-based pruning, the ablation
// used throughout the paper's experiments.
func NOBiMODis(ctx context.Context, cfg *fst.Config, opts Options) (*Result, error) {
	opts.DisablePrune = true
	return BiMODis(ctx, cfg, opts)
}
