package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/fst"
	"repro/internal/skyline"
	"repro/internal/stats"
)

// corrGraph is G_C: nodes are measures, edges connect strongly
// (Spearman ≥ θ) correlated pairs, rebuilt as the test set T grows.
type corrGraph struct {
	strong [][]bool
	hasAny bool
}

func buildCorrGraph(cols [][]float64, theta float64) *corrGraph {
	n := len(cols)
	g := &corrGraph{strong: make([][]bool, n)}
	for i := range g.strong {
		g.strong[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if len(cols[i]) < 3 {
				continue
			}
			if math.Abs(stats.Spearman(cols[i], cols[j])) >= theta {
				g.strong[i][j], g.strong[j][i] = true, true
				g.hasAny = true
			}
		}
	}
	return g
}

// appendWeights extends the per-test bitmap-weight cache to cover a
// refreshed history. The test order is append-only within a run, so
// previously computed weights stay valid and only the new tail pays
// the feature scan — the weight derivation runs once per test instead
// of once per pruning candidate.
func appendWeights(weights []int, tests []*fst.Test) []int {
	for _, t := range tests[len(weights):] {
		w := 0
		for _, f := range t.Features {
			if f > 0.5 {
				w++
			}
		}
		weights = append(weights, w)
	}
	return weights
}

// paramRange derives the parameterized range [p̂_l, p̂_u] of an
// unvaluated state from the historical tests whose dataset size
// (bitmap weight, precomputed in weights) brackets the state's — the
// inference of Example 6, using |D| as the conditioning variable of
// the correlation analysis.
func paramRange(tests []*fst.Test, weights []int, ones, numMeasures int) (lo, hi skyline.Vector, ok bool) {
	for window := 2; window <= 16; window *= 2 {
		lo = make(skyline.Vector, numMeasures)
		hi = make(skyline.Vector, numMeasures)
		for i := range lo {
			lo[i] = math.Inf(1)
			hi[i] = math.Inf(-1)
		}
		found := 0
		for ti, t := range tests {
			if w := weights[ti]; w < ones-window || w > ones+window {
				continue
			}
			found++
			for i := 0; i < numMeasures && i < len(t.Perf); i++ {
				if t.Perf[i] < lo[i] {
					lo[i] = t.Perf[i]
				}
				if t.Perf[i] > hi[i] {
					hi[i] = t.Perf[i]
				}
			}
		}
		if found >= 2 {
			return lo, hi, true
		}
	}
	return nil, nil, false
}

// canPrune applies the operational form of Lemma 4: if a skyline member
// already ε-dominates the child's optimistic bound vector p̂_l, the child
// (and, under the monotonicity condition on its path, its descendants)
// cannot enter any ε-skyline over the valuated states, so its valuation
// is skipped.
func canPrune(members []*Candidate, lo skyline.Vector, eps float64) bool {
	for _, m := range members {
		dominated := true
		for i := range lo {
			if i >= len(m.Perf) || m.Perf[i] > (1+eps)*lo[i] {
				dominated = false
				break
			}
		}
		if dominated {
			return true
		}
	}
	return false
}

// BiMODis is Algorithm 2: bi-directional skyline set generation. A
// forward frontier reduces from the universal state s_U while a backward
// frontier augments from the back state s_b (procedure BackSt); both
// update the shared ε-skyline set via UPareto. Correlation-based pruning
// (unless disabled) skips valuating states whose parameterized range —
// derived from the test set at expansion start — is already ε-dominated.
// Each expansion's surviving children valuate as one batch through the
// run's Valuator: exact inferences fan across the worker pool and
// results commit in child order, so any parallelism degree reproduces
// the sequential skyline. The context is checked at frontier-pop and
// batch granularity: cancellation or deadline expiry drains the pool
// and returns ctx.Err() with no partial result.
func BiMODis(ctx context.Context, cfg *fst.Config, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: BiMODis: %w", err)
	}
	algo := "bi"
	if opts.DisablePrune {
		algo = "nobi"
	}
	start := time.Now()
	nm := len(cfg.Measures)
	val := newValuator(cfg, opts)
	g := newGrid(cfg, opts.Eps, opts.decisiveIdx(nm))
	pruned := 0

	su := &fst.State{Bits: cfg.Space.FullBitmap(), Level: 0}
	sb := &fst.State{Bits: fst.BackSt(cfg.Space), Level: 0}

	for _, s := range []*fst.State{su, sb} {
		perf, err := val.Valuate(ctx, s.Bits)
		if err != nil {
			return nil, err
		}
		s.Perf = perf
		g.upareto(s.Bits, perf)
	}

	qf := newFrontier(su)
	qb := newFrontier(sb)
	visitedF := map[fst.StateKey]bool{su.Key(): true}
	visitedB := map[fst.StateKey]bool{sb.Key(): true}
	maxLevel := 0
	var batch []*fst.State

	budget := func() bool { return opts.N > 0 && val.Stats.Valuations() >= opts.N }

	expand := func(s *fst.State, dir fst.Direction, visited, other map[fst.StateKey]bool) ([]*fst.State, bool, error) {
		met := false
		var gc *corrGraph
		if !opts.DisablePrune {
			gc = buildCorrGraph(cfg.Tests.Columns(nm), opts.Theta)
		}
		children := fst.OpGen(s, dir)
		var next []*fst.State
		var history []*fst.Test
		var weights []int
		// Children valuate in progressive windows (1, 2, 4, ... up to
		// fst.MaxWindow): the prune inputs (skyline members, valuated
		// history) refresh between windows, so one window's results prune
		// the next with near-sequential freshness — the cascade where a
		// freshly valuated sibling prunes the rest of the expansion still
		// fires — while wide expansions saturate the worker pool. The
		// schedule is a constant, so results do not depend on the
		// parallelism degree.
		idx := 0
		size := 1
		for idx < len(children) && !budget() {
			var members []*Candidate
			if gc != nil && gc.hasAny {
				history = cfg.Tests.AppendAll(history)
				weights = appendWeights(weights, history)
				members = g.members()
			}
			batch = batch[:0]
			for idx < len(children) && len(batch) < size {
				child := children[idx]
				idx++
				k := child.Key()
				if other[k] {
					met = true
				}
				if visited[k] {
					continue
				}
				visited[k] = true

				if gc != nil && gc.hasAny {
					if lo, _, ok := paramRange(history, weights, child.Bits.Ones(), nm); ok {
						if canPrune(members, lo, opts.Eps) {
							pruned++
							continue
						}
					}
				}
				batch = append(batch, child)
			}
			n, err := val.ValuateWindow(ctx, batch, opts.N)
			if err != nil {
				return nil, false, err
			}
			for _, child := range batch[:n] {
				if child.Level > maxLevel {
					maxLevel = child.Level
					opts.emit(algo, maxLevel, qf.Len()+qb.Len(), val.Stats.Valuations(), g.size(), false)
				}
				// Skyline-guided expansion under a budget; exhaustive when
				// unbudgeted (see ApxMODis).
				if g.upareto(child.Bits, child.Perf) || opts.N == 0 {
					next = append(next, child)
				}
			}
			if n < len(batch) { // budget exhausted mid-window
				break
			}
			size = fst.GrowWindow(size)
		}
		return next, met, nil
	}

	// The search terminates when both frontiers are exhausted, the
	// budget is spent, or the frontiers meet (a full path s_U → s_b is
	// formed), per Section 5.3.
	for (qf.Len() > 0 || qb.Len() > 0) && !budget() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var met bool
		if qf.Len() > 0 {
			sf := qf.pop()
			if opts.MaxLevel == 0 || sf.Level < opts.MaxLevel {
				nf, m, err := expand(sf, fst.Forward, visitedF, visitedB)
				if err != nil {
					return nil, err
				}
				met = met || m
				for _, s := range nf {
					qf.push(s)
				}
			}
		}
		if qb.Len() > 0 {
			sback := qb.pop()
			if opts.MaxLevel == 0 || sback.Level < opts.MaxLevel {
				nb, m, err := expand(sback, fst.Backward, visitedB, visitedF)
				if err != nil {
					return nil, err
				}
				met = met || m
				for _, s := range nb {
					qb.push(s)
				}
			}
		}
		if met {
			break
		}
	}

	opts.emit(algo, maxLevel, qf.Len()+qb.Len(), val.Stats.Valuations(), g.size(), true)
	return &Result{
		Skyline: g.finalize(),
		Stats: RunStats{
			Valuated:   val.Stats.Valuations(),
			ExactCalls: val.Stats.ExactCalls(),
			Levels:     maxLevel,
			Pruned:     pruned,
			Elapsed:    time.Since(start),
		},
	}, nil
}

// NOBiMODis is BiMODis without correlation-based pruning, the ablation
// used throughout the paper's experiments.
func NOBiMODis(ctx context.Context, cfg *fst.Config, opts Options) (*Result, error) {
	opts.DisablePrune = true
	return BiMODis(ctx, cfg, opts)
}
