package core

import (
	"context"
	"testing"

	"repro/internal/fst"
	"repro/internal/skyline"
	"repro/internal/table"
)

// additiveModel is a synthetic model whose measures are additive over
// the cleared bitmap entries: measure j of a state equals base_j minus
// the sum of per-entry gains, floored. Monotone and cheap, it lets the
// algorithm tests assert exact quality properties.
type additiveModel struct {
	space *fst.Space
	// gain[i][j] is the reduction of measure j when entry i clears.
	gain [][]float64
	base []float64
}

func (m *additiveModel) Name() string { return "additive" }

func (m *additiveModel) Evaluate(d *table.Table) ([]float64, error) {
	// Recover which entries are cleared by comparing with the universal
	// table: the model only depends on the dataset's surviving rows and
	// schema, so derive the measure from the table shape directly.
	rows := float64(d.NumRows())
	cols := float64(d.NumCols())
	uRows := float64(m.space.Universal.NumRows())
	uCols := float64(m.space.Universal.NumCols())
	out := make([]float64, len(m.base))
	// Two opposing measures: one improves as the table shrinks (cost),
	// one degrades (completeness), creating a genuine trade-off.
	out[0] = 0.1 + 0.9*(rows/uRows)*(cols/uCols) // cost-like
	out[1] = 0.1 + 0.9*(1-rows/uRows)            // loss-like
	for j := 2; j < len(out); j++ {
		out[j] = m.base[j]
	}
	return out, nil
}

func newTestConfig(t *testing.T, nMeasures int) *fst.Config {
	t.Helper()
	u := table.New("D_U", table.Schema{
		{Name: "a", Kind: table.KindFloat},
		{Name: "b", Kind: table.KindFloat},
		{Name: "target", Kind: table.KindInt},
	})
	for i := 0; i < 24; i++ {
		u.MustAppend(table.Row{
			table.Float(float64(i % 3)),
			table.Float(float64(i % 4)),
			table.Int(int64(i % 2)),
		})
	}
	sp := fst.NewSpace(u, "target", fst.SpaceConfig{MaxLiteralsPerAttr: 4})
	m := &additiveModel{space: sp, base: make([]float64, nMeasures)}
	for j := range m.base {
		m.base[j] = 0.5
	}
	measures := make([]fst.Measure, nMeasures)
	for j := range measures {
		measures[j] = fst.Measure{Name: "p" + string(rune('0'+j)), Normalize: fst.Identity(1e-3)}
	}
	return &fst.Config{Space: sp, Model: m, Measures: measures}
}

func TestApxMODisProducesEpsSkyline(t *testing.T) {
	cfg := newTestConfig(t, 2)
	res, err := ApxMODis(context.Background(), cfg, Options{N: 80, Eps: 0.2, MaxLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) == 0 {
		t.Fatal("empty skyline")
	}
	// ε-skyline property (Section 5.1): every valuated state is
	// ε-dominated by some skyline member.
	var all []skyline.Vector
	for _, tst := range cfg.Tests.All() {
		all = append(all, tst.Perf)
	}
	if !skyline.IsEpsSkylineOf(res.Vectors(), all, 0.2) {
		t.Error("output is not an ε-skyline of the valuated states")
	}
	// Members mutually non-dominated.
	vs := res.Vectors()
	for i := range vs {
		for j := range vs {
			if i != j && vs[i].Dominates(vs[j]) {
				t.Error("skyline members must be mutually non-dominated")
			}
		}
	}
}

func TestApxMODisRespectsBudget(t *testing.T) {
	cfg := newTestConfig(t, 2)
	res, err := ApxMODis(context.Background(), cfg, Options{N: 10, Eps: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Valuated > 10 {
		t.Errorf("valuated %d states, budget was 10", res.Stats.Valuated)
	}
}

func TestApxMODisRespectsMaxLevel(t *testing.T) {
	cfg := newTestConfig(t, 2)
	res, err := ApxMODis(context.Background(), cfg, Options{N: 10000, Eps: 0.2, MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Levels > 2 {
		t.Errorf("reached level %d, max was 2", res.Stats.Levels)
	}
}

func TestApxMODisFindsTradeoff(t *testing.T) {
	cfg := newTestConfig(t, 2)
	res, err := ApxMODis(context.Background(), cfg, Options{N: 200, Eps: 0.1, MaxLevel: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The cost measure (index 0) improves by reduction; the skyline's
	// best cost must beat the universal state's.
	orig, _ := cfg.Valuate(cfg.Space.FullBitmap())
	best := res.Best(0)
	if best == nil || best.Perf[0] >= orig[0] {
		t.Errorf("reduction should improve the cost measure: best %v orig %v", best.Perf, orig)
	}
}

func TestBiMODisProducesEpsSkyline(t *testing.T) {
	cfg := newTestConfig(t, 2)
	res, err := BiMODis(context.Background(), cfg, Options{N: 120, Eps: 0.2, MaxLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) == 0 {
		t.Fatal("empty skyline")
	}
	var all []skyline.Vector
	for _, tst := range cfg.Tests.All() {
		all = append(all, tst.Perf)
	}
	// Pruned states were never valuated, so the ε-skyline property is
	// asserted over the valuated set, as in Lemma 4's statement.
	if !skyline.IsEpsSkylineOf(res.Vectors(), all, 0.2) {
		t.Error("BiMODis output is not an ε-skyline of valuated states")
	}
}

func TestNOBiMODisNeverPrunes(t *testing.T) {
	cfg := newTestConfig(t, 2)
	res, err := NOBiMODis(context.Background(), cfg, Options{N: 100, Eps: 0.2, MaxLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pruned != 0 {
		t.Errorf("NOBiMODis pruned %d states, want 0", res.Stats.Pruned)
	}
}

func TestBiMODisBackwardReachesSmallStates(t *testing.T) {
	cfg := newTestConfig(t, 2)
	res, err := BiMODis(context.Background(), cfg, Options{N: 150, Eps: 0.15, MaxLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The backward frontier starts from a reduced table, so the skyline
	// should contain at least one candidate below the full bitmap even
	// when the frontiers meet early (this space is only 9 entries wide).
	full := cfg.Space.Size()
	foundReduced := false
	for _, c := range res.Skyline {
		if c.Bits.Ones() < full {
			foundReduced = true
		}
	}
	if !foundReduced {
		t.Error("bi-directional search found no reduced candidates")
	}
}

func TestDivMODisRespectsK(t *testing.T) {
	cfg := newTestConfig(t, 2)
	res, err := DivMODis(context.Background(), cfg, Options{N: 150, Eps: 0.05, MaxLevel: 4, K: 3, Alpha: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) > 3+1 {
		// finalize may keep at most the restricted set; allow the grid to
		// have re-admitted at most one newcomer after the last restrict.
		t.Errorf("diversified skyline size = %d, want <= k(+1)", len(res.Skyline))
	}
}

func TestDivScoreMonotoneInSetSize(t *testing.T) {
	a := &Candidate{Bits: fst.BitmapOf(true, false), Perf: skyline.Vector{0.1, 0.9}}
	b := &Candidate{Bits: fst.BitmapOf(false, true), Perf: skyline.Vector{0.9, 0.1}}
	c := &Candidate{Bits: fst.BitmapOf(true, true), Perf: skyline.Vector{0.5, 0.5}}
	d2 := Div([]*Candidate{a, b}, 0.5, 1)
	d3 := Div([]*Candidate{a, b, c}, 0.5, 1)
	if d3 <= d2 {
		t.Errorf("Div must grow with the set: %v vs %v", d2, d3)
	}
}

func TestDisSymmetricAndZeroOnSelf(t *testing.T) {
	a := &Candidate{Bits: fst.BitmapOf(true, false), Perf: skyline.Vector{0.1, 0.9}}
	b := &Candidate{Bits: fst.BitmapOf(false, true), Perf: skyline.Vector{0.9, 0.1}}
	if Dis(a, b, 0.5, 1) != Dis(b, a, 0.5, 1) {
		t.Error("Dis must be symmetric")
	}
	if Dis(a, a, 0.5, 1) > 1e-12 {
		t.Error("Dis(a,a) must be 0")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Eps != 0.1 || o.Theta != 0.8 || o.K != 5 || o.Alpha != 0.5 {
		t.Errorf("defaults = %+v", o)
	}
	if o.decisiveIdx(3) != 2 {
		t.Error("default decisive measure should be the last")
	}
	o.Decisive = 1
	if o.decisiveIdx(3) != 1 {
		t.Error("explicit decisive index ignored")
	}
}

func TestOptionsSentinels(t *testing.T) {
	o := Options{Decisive: DecisiveFirst, Alpha: AlphaZero}.withDefaults()
	if o.decisiveIdx(3) != 0 {
		t.Error("DecisiveFirst should select measure 0")
	}
	if o.Alpha != 0 {
		t.Errorf("AlphaZero should yield α = 0, got %v", o.Alpha)
	}
	// Out-of-range explicit indexes fall back to the last measure.
	if (Options{Decisive: 7}.withDefaults()).decisiveIdx(3) != 2 {
		t.Error("out-of-range decisive should fall back to the last measure")
	}
	// AlphaZero changes DivMODis' distance weighting: with α = 0 the
	// content term vanishes entirely.
	a := &Candidate{Bits: fst.BitmapOf(true, false), Perf: skyline.Vector{0.3, 0.3}}
	b := &Candidate{Bits: fst.BitmapOf(false, true), Perf: skyline.Vector{0.3, 0.3}}
	if Dis(a, b, 0, 1) != 0 {
		t.Error("α = 0 must ignore content distance")
	}
}

func TestResultBest(t *testing.T) {
	r := &Result{Skyline: []*Candidate{
		{Perf: skyline.Vector{0.5, 0.2}},
		{Perf: skyline.Vector{0.3, 0.8}},
	}}
	if r.Best(0).Perf[0] != 0.3 {
		t.Error("Best(0) wrong")
	}
	if r.Best(1).Perf[1] != 0.2 {
		t.Error("Best(1) wrong")
	}
	empty := &Result{}
	if empty.Best(0) != nil {
		t.Error("empty result Best should be nil")
	}
}

func TestGridUParetoReplacement(t *testing.T) {
	cfg := newTestConfig(t, 2)
	cfg.Validate()
	g := newGrid(cfg, 0.3, 1)
	b1 := cfg.Space.FullBitmap()
	// Same grid cell, second wins on decisive measure (index 1).
	if !g.upareto(b1, skyline.Vector{0.5, 0.9}) {
		t.Fatal("first candidate should enter")
	}
	if !g.upareto(b1, skyline.Vector{0.5, 0.4}) {
		t.Fatal("better decisive should replace")
	}
	if g.upareto(b1, skyline.Vector{0.5, 0.8}) {
		t.Fatal("worse decisive must not replace")
	}
	ms := g.members()
	if len(ms) != 1 || ms[0].Perf[1] != 0.4 {
		t.Errorf("grid members = %v", ms)
	}
}

func TestGridBoundsEarlySkip(t *testing.T) {
	cfg := newTestConfig(t, 2)
	cfg.Measures[0].Bounds = skyline.Bounds{Lower: 0.01, Upper: 0.3}
	cfg.Validate()
	g := newGrid(cfg, 0.2, 1)
	// The candidate violates measure 0's upper bound: it may still guide
	// expansion (search grid) but must not enter the output skyline.
	g.upareto(cfg.Space.FullBitmap(), skyline.Vector{0.5, 0.5})
	if len(g.members()) != 0 {
		t.Error("bound-violating candidate leaked into the output skyline")
	}
}

func TestCanPrune(t *testing.T) {
	members := []*Candidate{{Perf: skyline.Vector{0.2, 0.2}}}
	if !canPrune(members, skyline.Vector{0.5, 0.5}, 0.1) {
		t.Error("optimistic bound clearly dominated should prune")
	}
	if canPrune(members, skyline.Vector{0.1, 0.1}, 0.1) {
		t.Error("promising bound must not prune")
	}
}
