package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/fst"
	"repro/internal/stats"
)

// Dis quantifies the difference of two candidates: a convex combination
// of content distance (cosine over bitmaps) and performance distance
// (normalized euclidean over vectors), per Section 5.4.
//
//	dis(Di, Dj) = α·(1-cos(Li, Lj))/2 + (1-α)·euc(Pi, Pj)/eucm
func Dis(a, b *Candidate, alpha, eucMax float64) float64 {
	content := (1 - bitsCosine(a.Bits, b.Bits)) / 2
	perf := stats.Euclidean(a.Perf, b.Perf)
	if eucMax > 0 {
		perf /= eucMax
	}
	return alpha*content + (1-alpha)*perf
}

// bitsCosine is the cosine similarity of two bitmaps viewed as 0/1
// vectors — |a ∧ b| / sqrt(|a|·|b|) by popcount, with the same
// degenerate-input conventions as stats.Cosine but no float
// materialization.
func bitsCosine(a, b fst.Bitmap) float64 {
	if a.Len() != b.Len() || a.Len() == 0 {
		return 0
	}
	na, nb := a.Ones(), b.Ones()
	if na == 0 || nb == 0 {
		return 0
	}
	return float64(a.AndOnes(b)) / math.Sqrt(float64(na)*float64(nb))
}

// Div is the diversification score of Equation (2): the sum of pairwise
// distances over the candidate set.
func Div(set []*Candidate, alpha, eucMax float64) float64 {
	var s float64
	for i := 0; i < len(set)-1; i++ {
		for j := i + 1; j < len(set); j++ {
			s += Dis(set[i], set[j], alpha, eucMax)
		}
	}
	return s
}

// maxEuc returns the maximum pairwise euclidean distance of the recorded
// performance vectors, the normalizer euc_m of dis.
func maxEuc(ts *fst.TestSet) float64 {
	all := ts.All()
	best := 0.0
	for i := 0; i < len(all)-1; i++ {
		for j := i + 1; j < len(all); j++ {
			if d := stats.Euclidean(all[i].Perf, all[j].Perf); d > best {
				best = d
			}
		}
	}
	return best
}

// diversifyStep is Algorithm 3: the level-wise greedy
// selection-and-replace that keeps at most k candidates maximizing Div.
func diversifyStep(set []*Candidate, k int, alpha, eucMax float64, rng *rand.Rand) []*Candidate {
	if len(set) <= k {
		return set
	}
	perm := rng.Perm(len(set))
	chosen := make([]*Candidate, k)
	inChosen := map[*Candidate]bool{}
	for i := 0; i < k; i++ {
		chosen[i] = set[perm[i]]
		inChosen[chosen[i]] = true
	}
	score := Div(chosen, alpha, eucMax)
	for i := range chosen {
		for _, cand := range set {
			if inChosen[cand] {
				continue
			}
			old := chosen[i]
			chosen[i] = cand
			if ns := Div(chosen, alpha, eucMax); ns > score {
				score = ns
				delete(inChosen, old)
				inChosen[cand] = true
			} else {
				chosen[i] = old
			}
		}
	}
	return chosen
}

// DivMODis extends the bi-directional generation with the level-wise
// diversification of Section 5.4: after each frontier expansion the
// ε-skyline set is restricted to a k-subset maximizing the submodular
// diversification score Div, achieving a 1/4-approximation (Lemma 5).
// Children valuate batch-wise through the run's Valuator (exact
// inferences on the worker pool, deterministic child-order commit), so
// any parallelism degree reproduces the sequential skyline. The context
// is checked at frontier-pop and batch granularity: cancellation or
// deadline expiry drains the pool and returns ctx.Err() with no partial
// result.
func DivMODis(ctx context.Context, cfg *fst.Config, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: DivMODis: %w", err)
	}
	start := time.Now()
	nm := len(cfg.Measures)
	val := newValuator(cfg, opts)
	g := newGrid(cfg, opts.Eps, opts.decisiveIdx(nm))
	rng := rand.New(rand.NewSource(opts.Seed + 1))

	su := &fst.State{Bits: cfg.Space.FullBitmap(), Level: 0}
	sb := &fst.State{Bits: fst.BackSt(cfg.Space), Level: 0}
	for _, s := range []*fst.State{su, sb} {
		perf, err := val.Valuate(ctx, s.Bits)
		if err != nil {
			return nil, err
		}
		s.Perf = perf
		g.upareto(s.Bits, perf)
	}

	qf := newFrontier(su)
	qb := newFrontier(sb)
	visitedF := map[fst.StateKey]bool{su.Key(): true}
	visitedB := map[fst.StateKey]bool{sb.Key(): true}
	maxLevel := 0
	var batch []*fst.State
	budget := func() bool { return opts.N > 0 && val.Stats.Valuations() >= opts.N }

	expand := func(s *fst.State, dir fst.Direction, visited map[fst.StateKey]bool) ([]*fst.State, error) {
		batch = batch[:0]
		for _, child := range fst.OpGen(s, dir) {
			k := child.Key()
			if visited[k] {
				continue
			}
			visited[k] = true
			batch = append(batch, child)
		}
		n, err := val.ValuateStates(ctx, batch, opts.N)
		if err != nil {
			return nil, err
		}
		var next []*fst.State
		for _, child := range batch[:n] {
			if child.Level > maxLevel {
				maxLevel = child.Level
				opts.emit("div", maxLevel, qf.Len()+qb.Len(), val.Stats.Valuations(), g.size(), false)
			}
			// Skyline-guided expansion, as in ApxMODis/BiMODis.
			if g.upareto(child.Bits, child.Perf) || opts.N == 0 {
				next = append(next, child)
			}
		}
		return next, nil
	}

	for (qf.Len() > 0 || qb.Len() > 0) && !budget() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if qf.Len() > 0 {
			sf := qf.pop()
			if opts.MaxLevel == 0 || sf.Level < opts.MaxLevel {
				nf, err := expand(sf, fst.Forward, visitedF)
				if err != nil {
					return nil, err
				}
				for _, s := range nf {
					qf.push(s)
				}
			}
		}
		if qb.Len() > 0 {
			sback := qb.pop()
			if opts.MaxLevel == 0 || sback.Level < opts.MaxLevel {
				nb, err := expand(sback, fst.Backward, visitedB)
				if err != nil {
					return nil, err
				}
				for _, s := range nb {
					qb.push(s)
				}
			}
		}
		// Level-wise diversification: carry at most k candidates forward.
		if members := g.members(); len(members) > opts.K {
			em := maxEuc(cfg.Tests)
			g.restrict(diversifyStep(members, opts.K, opts.Alpha, em, rng))
		}
	}

	opts.emit("div", maxLevel, qf.Len()+qb.Len(), val.Stats.Valuations(), g.size(), true)
	return &Result{
		Skyline: g.finalize(),
		Stats: RunStats{
			Valuated:   val.Stats.Valuations(),
			ExactCalls: val.Stats.ExactCalls(),
			Levels:     maxLevel,
			Elapsed:    time.Since(start),
		},
	}, nil
}
