package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fst"
	"repro/internal/skyline"
)

// ExactMODis is the exact algorithm behind the fixed-parameter
// tractability of Theorem 1: it exhausts the runnings of the generator
// (every reachable state up to MaxLevel, or at most N valuations),
// valuates each level's children as one batch through the run's
// Valuator (exact inferences on the worker pool, committed in child
// order so any parallelism reproduces the sequential result), and
// computes the exact skyline with Kung's algorithm. Exponential in the
// space size — use only on small spaces, e.g. to validate the (N, ε)-
// approximations in tests and ablations. The context is checked at
// frontier-pop and batch granularity: cancellation or deadline expiry
// drains the pool and returns ctx.Err() with no partial result.
func ExactMODis(ctx context.Context, cfg *fst.Config, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: ExactMODis: %w", err)
	}
	start := time.Now()
	val := newValuator(cfg, opts)

	su := &fst.State{Bits: cfg.Space.FullBitmap(), Level: 0}
	perf, err := val.Valuate(ctx, su.Bits)
	if err != nil {
		return nil, err
	}
	su.Perf = perf

	var all []*Candidate
	withinBounds := func(v skyline.Vector) bool { return cfg.WithinBounds(v) }
	if withinBounds(perf) {
		all = append(all, &Candidate{Bits: su.Bits.Clone(), Perf: perf.Clone()})
	}

	queue := []*fst.State{su}
	visited := map[fst.StateKey]bool{su.Key(): true}
	maxLevel := 0
	var batch []*fst.State
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if opts.N > 0 && val.Stats.Valuations() >= opts.N {
			break
		}
		s := queue[0]
		queue = queue[1:]
		if opts.MaxLevel > 0 && s.Level >= opts.MaxLevel {
			continue
		}
		batch = batch[:0]
		for _, child := range fst.OpGen(s, fst.Forward) {
			k := child.Key()
			if visited[k] {
				continue
			}
			visited[k] = true
			batch = append(batch, child)
		}
		n, err := val.ValuateStates(ctx, batch, opts.N)
		if err != nil {
			return nil, err
		}
		for _, child := range batch[:n] {
			if child.Level > maxLevel {
				maxLevel = child.Level
				if opts.Progress != nil {
					opts.emit("exact", maxLevel, len(queue), val.Stats.Valuations(), incumbentSkyline(all), false)
				}
			}
			if withinBounds(child.Perf) {
				all = append(all, &Candidate{Bits: child.Bits.Clone(), Perf: child.Perf.Clone()})
			}
			queue = append(queue, child)
		}
	}

	// Exact Pareto filter via Kung's algorithm (Theorem 1's
	// multi-objective optimizer step).
	vs := make([]skyline.Vector, len(all))
	for i, c := range all {
		vs[i] = c.Perf
	}
	keep := skyline.KungSkyline(vs)
	out := make([]*Candidate, 0, len(keep))
	for _, i := range keep {
		out = append(out, all[i])
	}

	opts.emit("exact", maxLevel, 0, val.Stats.Valuations(), len(out), true)
	return &Result{
		Skyline: out,
		Stats: RunStats{
			Valuated:   val.Stats.Valuations(),
			ExactCalls: val.Stats.ExactCalls(),
			Levels:     maxLevel,
			Elapsed:    time.Since(start),
		},
	}, nil
}

// incumbentSkyline is the current exact-skyline cardinality of the
// accumulated candidates — computed only when a progress hook wants it,
// at level-advance granularity, so exhaustive runs stay cheap.
func incumbentSkyline(all []*Candidate) int {
	vs := make([]skyline.Vector, len(all))
	for i, c := range all {
		vs[i] = c.Perf
	}
	return len(skyline.Skyline(vs))
}
