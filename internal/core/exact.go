package core

import (
	"fmt"
	"time"

	"repro/internal/fst"
	"repro/internal/skyline"
)

// ExactMODis is the exact algorithm behind the fixed-parameter
// tractability of Theorem 1: it exhausts the runnings of the generator
// (every reachable state up to MaxLevel, or at most N valuations),
// valuates each dataset, and computes the exact skyline with Kung's
// algorithm. Exponential in the space size — use only on small spaces,
// e.g. to validate the (N, ε)-approximations in tests and ablations.
func ExactMODis(cfg *fst.Config, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: ExactMODis: %w", err)
	}
	start := time.Now()

	su := &fst.State{Bits: cfg.Space.FullBitmap(), Level: 0}
	perf, err := cfg.Valuate(su.Bits)
	if err != nil {
		return nil, err
	}
	su.Perf = perf

	var all []*Candidate
	withinBounds := func(v skyline.Vector) bool { return cfg.WithinBounds(v) }
	if withinBounds(perf) {
		all = append(all, &Candidate{Bits: su.Bits.Clone(), Perf: perf.Clone()})
	}

	queue := []*fst.State{su}
	visited := map[fst.StateKey]bool{su.Key(): true}
	maxLevel := 0
	for len(queue) > 0 {
		if opts.N > 0 && cfg.Valuations() >= opts.N {
			break
		}
		s := queue[0]
		queue = queue[1:]
		if opts.MaxLevel > 0 && s.Level >= opts.MaxLevel {
			continue
		}
		for _, child := range fst.OpGen(s, fst.Forward) {
			if opts.N > 0 && cfg.Valuations() >= opts.N {
				break
			}
			k := child.Key()
			if visited[k] {
				continue
			}
			visited[k] = true
			cp, err := cfg.Valuate(child.Bits)
			if err != nil {
				return nil, err
			}
			child.Perf = cp
			if child.Level > maxLevel {
				maxLevel = child.Level
			}
			if withinBounds(cp) {
				all = append(all, &Candidate{Bits: child.Bits.Clone(), Perf: cp.Clone()})
			}
			queue = append(queue, child)
		}
	}

	// Exact Pareto filter via Kung's algorithm (Theorem 1's
	// multi-objective optimizer step).
	vs := make([]skyline.Vector, len(all))
	for i, c := range all {
		vs[i] = c.Perf
	}
	keep := skyline.KungSkyline(vs)
	out := make([]*Candidate, 0, len(keep))
	for _, i := range keep {
		out = append(out, all[i])
	}

	return &Result{
		Skyline: out,
		Stats: RunStats{
			Valuated:   cfg.Valuations(),
			ExactCalls: cfg.ExactCalls(),
			Levels:     maxLevel,
			Elapsed:    time.Since(start),
		},
	}, nil
}
