package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/mosp"
	"repro/internal/skyline"
)

func TestExactMODisComputesTrueSkyline(t *testing.T) {
	cfg := newTestConfig(t, 2)
	res, err := ExactMODis(context.Background(), cfg, Options{Eps: 0.1, MaxLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) == 0 {
		t.Fatal("empty exact skyline")
	}
	// Every valuated state is (exactly) dominated-or-equal by some member.
	for _, tst := range cfg.Tests.All() {
		covered := false
		for _, c := range res.Skyline {
			if c.Perf.Dominates(tst.Perf) || vecEqual(c.Perf, tst.Perf) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("state %v not covered by the exact skyline", tst.Perf)
		}
	}
}

// The headline guarantee of Lemma 2: every exact-skyline vector is
// ε-dominated by some member of ApxMODis' output on the same space.
func TestApxCoversExactWithinEps(t *testing.T) {
	eps := 0.2
	exactCfg := newTestConfig(t, 2)
	exact, err := ExactMODis(context.Background(), exactCfg, Options{Eps: eps, MaxLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	apxCfg := newTestConfig(t, 2)
	apx, err := ApxMODis(context.Background(), apxCfg, Options{Eps: eps, MaxLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exact.Skyline {
		covered := false
		for _, a := range apx.Skyline {
			if a.Perf.EpsDominates(e.Perf, eps) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("exact skyline member %v not ε-covered by ApxMODis", e.Perf)
		}
	}
}

// ApxMODis must valuate no more states than the exhaustive algorithm on
// the same bounded space (the point of the approximation).
func TestApxValuatesNoMoreThanExact(t *testing.T) {
	exactCfg := newTestConfig(t, 2)
	exact, err := ExactMODis(context.Background(), exactCfg, Options{Eps: 0.2, MaxLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	apxCfg := newTestConfig(t, 2)
	apx, err := ApxMODis(context.Background(), apxCfg, Options{Eps: 0.2, MaxLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if apx.Stats.Valuated > exact.Stats.Valuated {
		t.Errorf("ApxMODis valuated %d > exact %d", apx.Stats.Valuated, exact.Stats.Valuated)
	}
}

// BuildMOSP: path costs telescope, so every label cost at a node equals
// that node's performance delta from the start state — validating the
// Lemma 2 correspondence executable-y.
func TestMOSPBridgeTelescopes(t *testing.T) {
	cfg := newTestConfig(t, 2)
	res, err := ApxMODis(context.Background(), cfg, Options{Eps: 0.2, MaxLevel: 3, RecordGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph == nil {
		t.Fatal("running graph not recorded")
	}
	startKey := cfg.Space.FullBitmap().Key()
	g, start, ids, err := BuildMOSP(res.Graph, cfg.Tests, startKey)
	if err != nil {
		t.Fatal(err)
	}
	startPerf, _ := cfg.Tests.Get(startKey)

	labels := mosp.Exact(g, start)
	// Every reached node's label cost must equal node.P - start.P.
	for key, id := range ids {
		tst, ok := cfg.Tests.Get(key)
		if !ok {
			continue
		}
		for _, l := range labels[id] {
			for i := range l.Cost {
				want := tst.Perf[i] - startPerf.Perf[i]
				if math.Abs(l.Cost[i]-want) > 1e-9 {
					t.Fatalf("label cost %v != telescoped delta %v", l.Cost[i], want)
				}
			}
		}
	}
}

func vecEqual(a, b skyline.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
