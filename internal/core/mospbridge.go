package core

import (
	"fmt"

	"repro/internal/fst"
	"repro/internal/mosp"
	"repro/internal/skyline"
)

// BuildMOSP realizes the Lemma 2 reduction: the recorded running graph
// G_T becomes an edge-weighted graph G_w where each transition (s, s')
// carries the cost vector s'.P − s.P. A path's cumulative cost from the
// start state then telescopes to s_end.P − s_start.P, so the ε-skyline
// of path costs coincides with the ε-skyline of the reached datasets —
// the equivalence the paper's approximability proof rests on.
//
// It returns the MOSP instance, the node id of the start state, and the
// mapping from state keys to node ids.
func BuildMOSP(rg *fst.RunningGraph, tests *fst.TestSet, startKey fst.StateKey) (*mosp.Graph, int, map[fst.StateKey]int, error) {
	if rg == nil {
		return nil, 0, nil, fmt.Errorf("core: BuildMOSP: nil running graph")
	}
	ids := make(map[fst.StateKey]int, rg.NumNodes())
	// Deterministic node numbering: start first, then discovery order of
	// edges.
	assign := func(key fst.StateKey) int {
		if id, ok := ids[key]; ok {
			return id
		}
		id := len(ids)
		ids[key] = id
		return id
	}
	assign(startKey)
	for _, e := range rg.Edges {
		assign(e.From)
		assign(e.To)
	}

	perfOf := func(key fst.StateKey) (skyline.Vector, error) {
		if t, ok := tests.Get(key); ok {
			return t.Perf, nil
		}
		return nil, fmt.Errorf("core: BuildMOSP: state %#x has no valuated test", uint64(key))
	}

	g := mosp.NewGraph(len(ids))
	for _, e := range rg.Edges {
		fromP, err := perfOf(e.From)
		if err != nil {
			return nil, 0, nil, err
		}
		toP, err := perfOf(e.To)
		if err != nil {
			return nil, 0, nil, err
		}
		cost := make(skyline.Vector, len(toP))
		for i := range cost {
			cost[i] = toP[i] - fromP[i]
		}
		g.AddEdge(ids[e.From], ids[e.To], cost)
	}
	return g, ids[startKey], ids, nil
}
