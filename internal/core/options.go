// Package core implements the MODis skyline data generation algorithms:
// ApxMODis (Algorithm 1, reduce-from-universal), BiMODis (Algorithm 2,
// bi-directional search with correlation-based pruning), NOBiMODis
// (BiMODis without pruning), and DivMODis (Algorithm 3, level-wise
// diversification).
package core

import (
	"time"

	"repro/internal/fst"
	"repro/internal/skyline"
)

// Sentinel option values. The zero value of an Options field means
// "unset, use the default", so intents that collide with the zero value
// need explicit sentinels.
const (
	// DecisiveFirst selects measure index 0 as the decisive measure p_d.
	// Decisive's zero value defaults to the last measure, so index 0 is
	// requested through this sentinel.
	DecisiveFirst = -2
	// AlphaZero requests α = 0 in dis(·,·) — pure performance diversity,
	// no content term. Alpha's zero value defaults to 0.5, so α = 0 is
	// requested through this sentinel.
	AlphaZero = -1.0
)

// Options are the shared tuning knobs of the MODis algorithms.
type Options struct {
	// N is the valuation budget (the paper's N). 0 means unbounded.
	N int
	// Eps is the ε of ε-dominance; must be > 0. Default 0.1.
	Eps float64
	// MaxLevel is the maximum path length maxl. 0 means the full space.
	MaxLevel int
	// Decisive is the index of the decisive measure p_d. The zero value
	// (and any out-of-range index) selects the last measure, the paper's
	// default; use DecisiveFirst to select measure 0.
	Decisive int
	// Theta is the Spearman threshold θ of the correlation graph G_C
	// (BiMODis). Default 0.8.
	Theta float64
	// DisablePrune turns correlation-based pruning off (NOBiMODis).
	DisablePrune bool
	// K is the diversified skyline size (DivMODis). Default 5.
	K int
	// Alpha balances content diversity (bitmap cosine) against
	// performance diversity (vector euclidean) in dis(·,·). Default 0.5;
	// use AlphaZero for pure performance diversity.
	Alpha float64
	// Seed drives the diversification initialization.
	Seed int64
	// Parallelism is the valuation worker count: exact model inferences
	// of independent frontier children fan out across this many
	// goroutines. Values <= 1 run sequentially. Any degree produces the
	// same skylines and reports — batches are planned and committed in
	// deterministic child order — but the model must support concurrent
	// Evaluate calls when parallelism > 1.
	Parallelism int
	// ExactRunner, when non-nil, executes each valuation window's exact
	// model inferences in place of the run's built-in worker pool — the
	// batch-aware valuation entry point the serving layer uses to align
	// the frontier windows of concurrent runs over one configuration
	// (modis/serve). Results are unchanged by construction: planning and
	// commits stay on the run goroutine in child order, whoever executes
	// the inferences.
	ExactRunner fst.ExactRunner
	// RecordGraph captures the running graph G_T (nodes and transition
	// edges) in the result, for analysis and the MOSP reduction.
	RecordGraph bool
	// Progress, when non-nil, receives streaming snapshots of the running
	// search: one event whenever the search reaches a deeper level and a
	// final event (Done=true) when the run terminates. The callback runs
	// synchronously on the search goroutine — keep it cheap.
	Progress func(ProgressEvent)
}

// ProgressEvent is a streaming snapshot of a running search, delivered
// through Options.Progress.
type ProgressEvent struct {
	// Algorithm is the emitting algorithm ("apx", "bi", "nobi", "div",
	// "exact").
	Algorithm string
	// Level is the deepest operator-path length reached so far.
	Level int
	// Frontier is the number of states currently queued across all
	// frontiers.
	Frontier int
	// Valuated is the number of valuations used so far.
	Valuated int
	// SkylineSize is the size of the incumbent ε-skyline set.
	SkylineSize int
	// Done marks the final event of a run.
	Done bool
}

// emit delivers a progress snapshot if a hook is installed.
func (o *Options) emit(algo string, level, frontier, valuated, skyline int, done bool) {
	if o.Progress == nil {
		return
	}
	o.Progress(ProgressEvent{
		Algorithm:   algo,
		Level:       level,
		Frontier:    frontier,
		Valuated:    valuated,
		SkylineSize: skyline,
		Done:        done,
	})
}

func (o Options) withDefaults() Options {
	if o.Eps <= 0 {
		o.Eps = 0.1
	}
	if o.Theta <= 0 {
		o.Theta = 0.8
	}
	if o.K <= 0 {
		o.K = 5
	}
	if o.Alpha == AlphaZero {
		o.Alpha = 0
	} else if o.Alpha <= 0 {
		o.Alpha = 0.5
	}
	return o
}

// newValuator builds a run's Valuator from the resolved options: the
// worker-pool degree, plus the batch-aware exact runner when a serving
// scheduler provides one. Every algorithm constructs its valuator here
// so the alignment hook cannot be missed by a single search loop.
func newValuator(cfg *fst.Config, opts Options) *fst.Valuator {
	v := cfg.NewValuator(opts.Parallelism)
	if opts.ExactRunner != nil {
		v.SetExactRunner(opts.ExactRunner)
	}
	return v
}

func (o Options) decisiveIdx(numMeasures int) int {
	if o.Decisive == DecisiveFirst {
		return 0
	}
	// Zero means unset: default to the last measure, as do out-of-range
	// indexes.
	if o.Decisive > 0 && o.Decisive < numMeasures {
		return o.Decisive
	}
	return numMeasures - 1
}

// Candidate is one member of the output skyline set D_F: a state bitmap
// and its valuated performance vector.
type Candidate struct {
	Bits fst.Bitmap
	Perf skyline.Vector
}

// Clone deep-copies the candidate.
func (c *Candidate) Clone() *Candidate {
	return &Candidate{Bits: c.Bits.Clone(), Perf: c.Perf.Clone()}
}

// RunStats summarizes a discovery run for efficiency experiments.
type RunStats struct {
	Valuated   int
	ExactCalls int
	Levels     int
	Pruned     int
	Elapsed    time.Duration
}

// Result is the output of a MODis run: the ε-skyline set and run stats.
type Result struct {
	Skyline []*Candidate
	Stats   RunStats
	// Graph is the recorded running graph G_T (nil unless
	// Options.RecordGraph was set).
	Graph *fst.RunningGraph
}

// Best returns the candidate minimizing the given measure index, or nil
// for an empty skyline.
func (r *Result) Best(measure int) *Candidate {
	var best *Candidate
	for _, c := range r.Skyline {
		if measure >= len(c.Perf) {
			continue
		}
		if best == nil || c.Perf[measure] < best.Perf[measure] {
			best = c
		}
	}
	return best
}

// Vectors extracts the performance vectors of the skyline set.
func (r *Result) Vectors() []skyline.Vector {
	out := make([]skyline.Vector, len(r.Skyline))
	for i, c := range r.Skyline {
		out[i] = c.Perf
	}
	return out
}
