package core

import (
	"context"
	"testing"

	"repro/internal/estimator"
	"repro/internal/fst"
)

// algorithmsUnderTest enumerates every search entry point with its
// registry key for table-driven determinism checks.
func algorithmsUnderTest() []struct {
	name string
	run  func(context.Context, *fst.Config, Options) (*Result, error)
} {
	return []struct {
		name string
		run  func(context.Context, *fst.Config, Options) (*Result, error)
	}{
		{"apx", ApxMODis},
		{"bi", BiMODis},
		{"nobi", NOBiMODis},
		{"div", DivMODis},
		{"exact", ExactMODis},
	}
}

// withSurrogate attaches a deterministic MO-GBM estimator with a short
// warmup, exercising the surrogate planning path of the batch valuator.
func withSurrogate(cfg *fst.Config) *fst.Config {
	cfg.Est = estimator.NewMOGBM()
	cfg.WarmupExact = cfg.Space.Size() + 1
	cfg.ExactEvery = 4
	return cfg
}

func sameSkyline(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Stats.Valuated != b.Stats.Valuated || a.Stats.ExactCalls != b.Stats.ExactCalls ||
		a.Stats.Levels != b.Stats.Levels || a.Stats.Pruned != b.Stats.Pruned {
		t.Errorf("%s: stats diverge: %+v vs %+v", label, a.Stats, b.Stats)
	}
	if len(a.Skyline) != len(b.Skyline) {
		t.Fatalf("%s: skyline sizes diverge: %d vs %d", label, len(a.Skyline), len(b.Skyline))
	}
	for i := range a.Skyline {
		ca, cb := a.Skyline[i], b.Skyline[i]
		if ca.Bits.Key() != cb.Bits.Key() {
			t.Fatalf("%s: skyline member %d bitmap diverges", label, i)
		}
		if !vecEqual(ca.Perf, cb.Perf) {
			t.Fatalf("%s: skyline member %d perf diverges: %v vs %v", label, i, ca.Perf, cb.Perf)
		}
	}
}

// TestParallelMatchesSequential is the determinism contract of the
// valuation worker pool: for every algorithm, a parallel run produces
// the identical skyline, member order, and stats as the sequential run
// — with and without a stateful surrogate estimator in the loop.
func TestParallelMatchesSequential(t *testing.T) {
	for _, surrogate := range []bool{false, true} {
		for _, algo := range algorithmsUnderTest() {
			label := algo.name
			if surrogate {
				label += "+surrogate"
			}
			t.Run(label, func(t *testing.T) {
				mk := func() *fst.Config {
					cfg := newTestConfig(t, 2)
					if surrogate {
						withSurrogate(cfg)
					}
					return cfg
				}
				opts := Options{N: 120, Eps: 0.15, MaxLevel: 4, Seed: 3, K: 3}
				seqOpts, parOpts := opts, opts
				seqOpts.Parallelism = 1
				parOpts.Parallelism = 4
				seq, err := algo.run(context.Background(), mk(), seqOpts)
				if err != nil {
					t.Fatal(err)
				}
				par, err := algo.run(context.Background(), mk(), parOpts)
				if err != nil {
					t.Fatal(err)
				}
				sameSkyline(t, label, seq, par)
			})
		}
	}
}

// TestParallelDeterministicAcrossRepeats guards against scheduling
// nondeterminism leaking through the pool: two parallel runs of the
// same search coincide exactly.
func TestParallelDeterministicAcrossRepeats(t *testing.T) {
	for _, algo := range algorithmsUnderTest() {
		t.Run(algo.name, func(t *testing.T) {
			opts := Options{N: 100, Eps: 0.2, MaxLevel: 3, Seed: 5, Parallelism: 4}
			a, err := algo.run(context.Background(), withSurrogate(newTestConfig(t, 2)), opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := algo.run(context.Background(), withSurrogate(newTestConfig(t, 2)), opts)
			if err != nil {
				t.Fatal(err)
			}
			sameSkyline(t, algo.name, a, b)
		})
	}
}
