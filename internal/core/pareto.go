package core

import (
	"container/heap"
	"sort"

	"repro/internal/fst"
	"repro/internal/skyline"
)

// frontier is the search queue of the budgeted algorithms: a min-heap
// on mean performance, so the "extend shortest paths first"
// prioritization of Section 5.2 pops in O(log n) instead of the former
// O(n) linear scan. States are valuated before they are pushed, so the
// ordering score is stable while queued.
type frontier []*fst.State

func (f frontier) Len() int           { return len(f) }
func (f frontier) Less(i, j int) bool { return meanPerf(f[i]) < meanPerf(f[j]) }
func (f frontier) Swap(i, j int)      { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x any)        { *f = append(*f, x.(*fst.State)) }
func (f *frontier) Pop() any {
	old := *f
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*f = old[:n-1]
	return s
}

// newFrontier heapifies the seed states.
func newFrontier(states ...*fst.State) *frontier {
	f := frontier(states)
	heap.Init(&f)
	return &f
}

func (f *frontier) push(s *fst.State) { heap.Push(f, s) }

// pop removes and returns the state with the smallest mean performance.
func (f *frontier) pop() *fst.State { return heap.Pop(f).(*fst.State) }

func meanPerf(s *fst.State) float64 {
	if len(s.Perf) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Perf {
		sum += v
	}
	return sum / float64(len(s.Perf))
}

// grid maintains the ε-skyline set of procedure UPareto: a discretized
// (|P|-1)-ary position space (Equation 1) holding at most one candidate
// per cell, replaced when a newcomer wins on the decisive measure.
// Cells are keyed by the integer-packed position (PackedPosKey) and the
// position scratch slice is reused across insertions, so an insert
// allocates only when a candidate actually enters.
//
// Two cell maps are kept. cells is the output skyline D_F, subject to
// the early skip on bound violation (Algorithm 1 line 23). search is the
// same structure without the bound filter: it guides which states keep
// expanding, so tight user bounds do not strangle exploration before any
// satisfying state is reachable (the paper enqueues all children;
// search-grid gating is the budget-conscious middle ground).
type grid struct {
	cells    map[uint64]*Candidate
	search   map[uint64]*Candidate
	bounds   []skyline.Bounds
	eps      float64
	decisive int
	pos      []int
}

func newGrid(cfg *fst.Config, eps float64, decisive int) *grid {
	return &grid{
		cells:    map[uint64]*Candidate{},
		search:   map[uint64]*Candidate{},
		bounds:   cfg.Bounds(),
		eps:      eps,
		decisive: decisive,
	}
}

// posKey computes the packed cell key of a vector via the shared
// scratch buffer.
func (g *grid) posKey(perf skyline.Vector) uint64 {
	g.pos = skyline.GridPosInto(g.pos, perf, g.bounds, g.eps)
	return skyline.PackedPosKey(g.pos)
}

// insert merges the candidate into one cell map by decisive-measure
// comparison, reporting whether it entered.
func (g *grid) insert(cells map[uint64]*Candidate, bits fst.Bitmap, perf skyline.Vector) bool {
	key := g.posKey(perf)
	cur, ok := cells[key]
	if !ok || perf[g.decisive] < cur.Perf[g.decisive] {
		cells[key] = &Candidate{Bits: bits.Clone(), Perf: perf.Clone()}
		return true
	}
	return false
}

// upareto implements procedure UPareto (Algorithm 1, lines 20-30) for a
// freshly valuated state: early-skip on bound violation for the output
// set, merge into the grid cell by decisive-measure comparison. It
// reports whether the candidate improved the search grid (the expansion
// signal).
func (g *grid) upareto(bits fst.Bitmap, perf skyline.Vector) bool {
	entered := g.insert(g.search, bits, perf)
	within := true
	for i, b := range g.bounds {
		if i < len(perf) && perf[i] > b.Upper {
			within = false
			break
		}
	}
	if within {
		g.insert(g.cells, bits, perf)
	}
	return entered
}

// size is the current output-skyline cardinality (progress reporting).
func (g *grid) size() int { return len(g.cells) }

// members returns the current skyline candidates ordered by grid cell
// key. The deterministic order matters: diversification samples from
// it, pruning scans it, and the final skyline inherits it, so runs are
// reproducible (and parallel valuation matches sequential byte for
// byte) instead of leaking map iteration order.
func (g *grid) members() []*Candidate {
	keys := make([]uint64, 0, len(g.cells))
	for k := range g.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]*Candidate, 0, len(keys))
	for _, k := range keys {
		out = append(out, g.cells[k])
	}
	return out
}

// restrict replaces the grid contents — output and search alike — with
// the given subset: the diversification step carries its k-set to the
// next level, so future states compete against the diversified set.
func (g *grid) restrict(keep []*Candidate) {
	g.cells = map[uint64]*Candidate{}
	g.search = map[uint64]*Candidate{}
	for _, c := range keep {
		key := g.posKey(c.Perf)
		g.cells[key] = c
		g.search[key] = c
	}
}

// finalize removes exactly dominated members: if A ≺ B both sit in the
// set, dropping the dominated one preserves the ε-skyline property (the
// dominator ε-dominates everything the dominated member covered).
func (g *grid) finalize() []*Candidate {
	ms := g.members()
	vs := make([]skyline.Vector, len(ms))
	for i, c := range ms {
		vs[i] = c.Perf
	}
	keep := skyline.Skyline(vs)
	out := make([]*Candidate, 0, len(keep))
	for _, i := range keep {
		out = append(out, ms[i])
	}
	return out
}
