package core

import (
	"repro/internal/fst"
	"repro/internal/skyline"
)

// popBest removes and returns the queue state with the smallest mean
// performance — the "extend shortest paths first" prioritization of
// Section 5.2 that keeps deep levels reachable under the valuation
// budget N.
func popBest(queue []*fst.State) (*fst.State, []*fst.State) {
	best := 0
	bestScore := meanPerf(queue[0])
	for i := 1; i < len(queue); i++ {
		if s := meanPerf(queue[i]); s < bestScore {
			best, bestScore = i, s
		}
	}
	s := queue[best]
	queue[best] = queue[len(queue)-1]
	return s, queue[:len(queue)-1]
}

func meanPerf(s *fst.State) float64 {
	if len(s.Perf) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Perf {
		sum += v
	}
	return sum / float64(len(s.Perf))
}

// grid maintains the ε-skyline set of procedure UPareto: a discretized
// (|P|-1)-ary position space (Equation 1) holding at most one candidate
// per cell, replaced when a newcomer wins on the decisive measure.
//
// Two cell maps are kept. cells is the output skyline D_F, subject to
// the early skip on bound violation (Algorithm 1 line 23). search is the
// same structure without the bound filter: it guides which states keep
// expanding, so tight user bounds do not strangle exploration before any
// satisfying state is reachable (the paper enqueues all children;
// search-grid gating is the budget-conscious middle ground).
type grid struct {
	cells    map[string]*Candidate
	search   map[string]*Candidate
	bounds   []skyline.Bounds
	eps      float64
	decisive int
}

func newGrid(cfg *fst.Config, eps float64, decisive int) *grid {
	return &grid{
		cells:    map[string]*Candidate{},
		search:   map[string]*Candidate{},
		bounds:   cfg.Bounds(),
		eps:      eps,
		decisive: decisive,
	}
}

// insert merges the candidate into one cell map by decisive-measure
// comparison, reporting whether it entered.
func (g *grid) insert(cells map[string]*Candidate, bits fst.Bitmap, perf skyline.Vector) bool {
	key := skyline.PosKey(skyline.GridPos(perf, g.bounds, g.eps))
	cur, ok := cells[key]
	if !ok || perf[g.decisive] < cur.Perf[g.decisive] {
		cells[key] = &Candidate{Bits: bits.Clone(), Perf: perf.Clone()}
		return true
	}
	return false
}

// upareto implements procedure UPareto (Algorithm 1, lines 20-30) for a
// freshly valuated state: early-skip on bound violation for the output
// set, merge into the grid cell by decisive-measure comparison. It
// reports whether the candidate improved the search grid (the expansion
// signal).
func (g *grid) upareto(bits fst.Bitmap, perf skyline.Vector) bool {
	entered := g.insert(g.search, bits, perf)
	within := true
	for i, b := range g.bounds {
		if i < len(perf) && perf[i] > b.Upper {
			within = false
			break
		}
	}
	if within {
		g.insert(g.cells, bits, perf)
	}
	return entered
}

// members returns the current skyline candidates in no particular order.
func (g *grid) members() []*Candidate {
	out := make([]*Candidate, 0, len(g.cells))
	for _, c := range g.cells {
		out = append(out, c)
	}
	return out
}

// restrict replaces the grid contents — output and search alike — with
// the given subset: the diversification step carries its k-set to the
// next level, so future states compete against the diversified set.
func (g *grid) restrict(keep []*Candidate) {
	g.cells = map[string]*Candidate{}
	g.search = map[string]*Candidate{}
	for _, c := range keep {
		key := skyline.PosKey(skyline.GridPos(c.Perf, g.bounds, g.eps))
		g.cells[key] = c
		g.search[key] = c
	}
}

// finalize removes exactly dominated members: if A ≺ B both sit in the
// set, dropping the dominated one preserves the ε-skyline property (the
// dominator ε-dominates everything the dominated member covered).
func (g *grid) finalize() []*Candidate {
	ms := g.members()
	vs := make([]skyline.Vector, len(ms))
	for i, c := range ms {
		vs[i] = c.Perf
	}
	keep := skyline.Skyline(vs)
	out := make([]*Candidate, 0, len(keep))
	for _, i := range keep {
		out = append(out, ms[i])
	}
	return out
}
