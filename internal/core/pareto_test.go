package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fst"
	"repro/internal/skyline"
)

// Property: after feeding any stream of vectors to the grid, the search
// members jointly ε-dominate every vector seen — the invariant behind
// Lemma 2's correctness induction.
func TestGridCoverageInvariant(t *testing.T) {
	cfg := newTestConfig(t, 3)
	cfg.Validate()
	f := func(seed int64) bool {
		g := newGrid(cfg, 0.25, 2)
		rng := rand.New(rand.NewSource(seed))
		bits := cfg.Space.FullBitmap()
		var seen []skyline.Vector
		for i := 0; i < 40; i++ {
			v := skyline.Vector{
				0.05 + 0.95*rng.Float64(),
				0.05 + 0.95*rng.Float64(),
				0.05 + 0.95*rng.Float64(),
			}
			seen = append(seen, v)
			g.upareto(bits, v)
		}
		members := make([]skyline.Vector, 0, len(g.search))
		for _, c := range g.search {
			members = append(members, c.Perf)
		}
		return skyline.IsEpsSkylineOf(members, seen, 0.25)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: finalize never returns mutually dominating members, for any
// vector stream.
func TestGridFinalizeNonDominated(t *testing.T) {
	cfg := newTestConfig(t, 2)
	cfg.Validate()
	f := func(seed int64) bool {
		g := newGrid(cfg, 0.15, 1)
		rng := rand.New(rand.NewSource(seed))
		bits := cfg.Space.FullBitmap()
		for i := 0; i < 30; i++ {
			g.upareto(bits, skyline.Vector{
				0.05 + 0.95*rng.Float64(),
				0.05 + 0.95*rng.Float64(),
			})
		}
		out := g.finalize()
		for i := range out {
			for j := range out {
				if i != j && out[i].Perf.Dominates(out[j].Perf) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: grid cell count is bounded by the ε-grid volume (the space
// cost bound of Section 5.2's analysis).
func TestGridSizeBounded(t *testing.T) {
	cfg := newTestConfig(t, 2)
	cfg.Validate()
	g := newGrid(cfg, 0.5, 1)
	bits := cfg.Space.FullBitmap()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		g.upareto(bits, skyline.Vector{
			0.001 + 0.999*rng.Float64(),
			0.001 + 0.999*rng.Float64(),
		})
	}
	// One non-decisive dimension, eps=0.5, lower bound 1e-3: at most
	// floor(log_1.5(1000)) + 1 = 18 cells.
	if len(g.search) > 18 {
		t.Errorf("grid cells = %d, exceeds the ε-grid bound 18", len(g.search))
	}
}

func TestFrontierPopOrder(t *testing.T) {
	a := &fst.State{Perf: skyline.Vector{0.9, 0.9}}
	b := &fst.State{Perf: skyline.Vector{0.1, 0.1}}
	c := &fst.State{Perf: skyline.Vector{0.5, 0.5}}
	q := newFrontier(a, b, c)
	if got := q.pop(); got != b {
		t.Fatal("pop should pick the smallest mean")
	}
	if q.Len() != 2 {
		t.Fatal("frontier size wrong after pop")
	}
	if got := q.pop(); got != c {
		t.Fatal("second pop should pick the next smallest")
	}
}

// popBestScan is the pre-heap reference implementation: an O(n) linear
// scan for the queue state with the smallest mean performance.
func popBestScan(queue []*fst.State) (*fst.State, []*fst.State) {
	best := 0
	bestScore := meanPerf(queue[0])
	for i := 1; i < len(queue); i++ {
		if s := meanPerf(queue[i]); s < bestScore {
			best, bestScore = i, s
		}
	}
	s := queue[best]
	queue[best] = queue[len(queue)-1]
	return s, queue[:len(queue)-1]
}

// Property: under interleaved pushes and pops, the heap frontier yields
// exactly the same mean-performance sequence as the old linear scan.
func TestFrontierMatchesLinearScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := newFrontier()
		var ref []*fst.State
		for step := 0; step < 120; step++ {
			if rng.Intn(3) > 0 || len(ref) == 0 {
				s := &fst.State{Perf: skyline.Vector{rng.Float64(), rng.Float64()}}
				q.push(s)
				ref = append(ref, s)
				continue
			}
			var want *fst.State
			want, ref = popBestScan(ref)
			if got := q.pop(); meanPerf(got) != meanPerf(want) {
				return false
			}
		}
		for len(ref) > 0 {
			var want *fst.State
			want, ref = popBestScan(ref)
			if got := q.pop(); meanPerf(got) != meanPerf(want) {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
