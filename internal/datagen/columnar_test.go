package datagen

import (
	"math/rand"
	"testing"

	"repro/internal/fst"
	"repro/internal/table"
)

// sampleBitmaps clears deterministic pseudo-random entry subsets, plus
// the full state and a heavily-reduced state.
func sampleBitmaps(sp *fst.Space, n int, seed int64) []fst.Bitmap {
	rng := rand.New(rand.NewSource(seed))
	var out []fst.Bitmap
	out = append(out, sp.FullBitmap())
	for t := 0; t < n; t++ {
		bits := sp.FullBitmap()
		p := 0.15 + 0.5*rng.Float64()
		for i := 0; i < bits.Len(); i++ {
			if rng.Float64() < p {
				bits.Clear(i)
			}
		}
		out = append(out, bits)
	}
	return out
}

// TestRowsPathMatchesEvaluate asserts, for every workload family, that
// the zero-materialization rows path returns bit-identical raw metric
// vectors to the reference Materialize+Evaluate path on a spread of
// states.
func TestRowsPathMatchesEvaluate(t *testing.T) {
	workloads := []*Workload{
		T1Movie(TaskConfig{Rows: 90}),
		T2House(TaskConfig{Rows: 90}),
		T3Avocado(TaskConfig{Rows: 90}),
		T4Mental(TaskConfig{Rows: 90}),
		T5Link(T5Config{Users: 20, Items: 20}),
	}
	if custom := customWorkload(t); custom != nil {
		workloads = append(workloads, custom)
	}
	for _, w := range workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			rm, ok := w.Model.(fst.RowsModel)
			if !ok {
				t.Fatal("workload model must implement fst.RowsModel")
			}
			for si, bits := range sampleBitmaps(w.Space, 6, 17) {
				view, vok := w.Space.RowsFor(bits)
				if !vok {
					t.Fatal("UDF-free workload space must support RowsFor")
				}
				fast, handled, err := rm.EvaluateRows(view)
				if err != nil {
					t.Fatal(err)
				}
				if !handled {
					t.Fatalf("state %d: rows path declined", si)
				}
				ref, err := w.Model.Evaluate(w.Space.Materialize(bits))
				if err != nil {
					t.Fatal(err)
				}
				if len(fast) != len(ref) {
					t.Fatalf("state %d: metric count %d vs %d", si, len(fast), len(ref))
				}
				for i := range ref {
					if fast[i] != ref[i] {
						t.Fatalf("state %d metric %d: rows path %v != reference %v", si, i, fast[i], ref[i])
					}
				}
			}
		})
	}
}

// customWorkload assembles a custom workload over hand-built tables
// with string columns and nulls — the CSV ingestion shape.
func customWorkload(t *testing.T) *Workload {
	t.Helper()
	u := table.New("sales", table.Schema{
		{Name: "region", Kind: table.KindString},
		{Name: "units", Kind: table.KindInt},
		{Name: "price", Kind: table.KindFloat},
		{Name: "rating", Kind: table.KindFloat},
	})
	regions := []string{"north", "south", "east", "west"}
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 160; i++ {
		price := table.Value(table.Float(5 + 10*rng.Float64()))
		if i%13 == 0 {
			price = table.Null
		}
		u.MustAppend(table.Row{
			table.Str(regions[i%4]),
			table.Int(int64(rng.Intn(50))),
			price,
			table.Float(float64(i%4) + rng.Float64()),
		})
	}
	w, err := NewCustomWorkload(CustomConfig{
		Tables:    []*table.Table{u},
		Target:    "rating",
		ModelKind: "gbm",
		AdomK:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}
