package datagen

import (
	"fmt"
	"math"

	"repro/internal/fst"
	"repro/internal/ml"
	"repro/internal/skyline"
	"repro/internal/table"
)

// CustomConfig describes a user-supplied discovery task over arbitrary
// tables (the cmd/modis CLI path).
type CustomConfig struct {
	// Tables are the source datasets D.
	Tables []*table.Table
	// Target is the attribute the model predicts.
	Target string
	// ModelKind selects the learner: "forest", "gbm", "histgbm",
	// "linear", "logistic". Classification kinds require an integer or
	// string target.
	ModelKind string
	// Classes is the number of classes for classification kinds; 0
	// derives it from the target's active domain.
	Classes int
	// AdomK bounds the per-attribute literal count (default 8, max 30).
	AdomK int
	// Protected lists attributes that must survive every operator.
	Protected []string
}

// NewCustomWorkload assembles a workload from user tables: it joins them
// into a compressed universal table, derives the FST space, and wires a
// model with the standard {error, training-cost} measure pair.
func NewCustomWorkload(cfg CustomConfig) (*Workload, error) {
	if len(cfg.Tables) == 0 {
		return nil, fmt.Errorf("datagen: custom workload needs at least one table")
	}
	if cfg.AdomK <= 0 {
		cfg.AdomK = 8
	}
	if cfg.AdomK > 30 {
		cfg.AdomK = 30
	}
	u := table.Universal(cfg.Tables...)
	if !u.Schema.Has(cfg.Target) {
		return nil, fmt.Errorf("datagen: target %q not found in any table", cfg.Target)
	}
	for _, c := range u.Schema {
		if c.Name == cfg.Target || c.Kind == table.KindString {
			continue
		}
		u = table.Compress(u, c.Name, cfg.AdomK)
	}

	classification := false
	switch cfg.ModelKind {
	case "forest", "histgbm", "logistic":
		classification = true
	case "gbm", "linear", "":
	default:
		return nil, fmt.Errorf("datagen: unknown model kind %q", cfg.ModelKind)
	}
	classes := cfg.Classes
	if classification && classes <= 0 {
		classes = len(u.ActiveDomain(cfg.Target))
		if classes < 2 {
			return nil, fmt.Errorf("datagen: target %q has fewer than 2 classes", cfg.Target)
		}
	}

	// The encoder's frozen matrix doubles as the space's column source:
	// literal clustering and literal row bitmaps both derive from the
	// already-decoded floats.
	enc := ml.NewTableEncoder(u, cfg.Target)
	space := fst.NewSpace(u, cfg.Target, fst.SpaceConfig{
		MaxLiteralsPerAttr: cfg.AdomK,
		ProtectedAttrs:     cfg.Protected,
		Columns:            enc,
	})
	maxCost := trainCost(u.NumRows(), u.NumCols(), 1)

	kind := cfg.ModelKind
	eval := func(ds ml.Data) ([]float64, error) {
		if ds.NumRows() < minEvalRows || ds.NumFeatures() == 0 {
			return []float64{0, maxCost}, nil
		}
		train, test := ds.SplitData(0.3, 42)
		var predict func([]float64) float64
		switch kindOrDefault(kind) {
		case "forest":
			m := &ml.ForestClassifier{Config: ml.ForestConfig{NumTrees: 15, MaxDepth: 7, Seed: 1}, NumClass: classes}
			m.FitData(train)
			predict = m.Predict
		case "histgbm":
			m := &ml.HistGBMClassifier{Config: ml.HistGBMConfig{GBM: ml.GBMConfig{NumTrees: 30, MaxDepth: 3, Seed: 1}}}
			m.FitData(train)
			predict = m.Predict
		case "logistic":
			m := &ml.LogisticRegression{}
			m.FitData(train)
			predict = m.Predict
		case "linear":
			m := &ml.LinearRegression{}
			m.FitData(train)
			predict = m.Predict
		default: // gbm
			m := &ml.GBMRegressor{Config: ml.GBMConfig{NumTrees: 40, MaxDepth: 3, Seed: 1}}
			m.FitData(train)
			predict = m.Predict
		}
		pred, testY := predictAll(predict, test)
		var quality float64
		if classification {
			quality = ml.Accuracy(testY, pred)
		} else {
			quality = math.Max(0, ml.R2(testY, pred))
		}
		cost := trainCost(train.NumRows(), train.NumFeatures(), 1)
		return []float64{quality, cost}, nil
	}
	model := &TableModel{
		ModelName: "custom-" + kindOrDefault(kind),
		Eval:      func(d *table.Table) ([]float64, error) { return eval(enc.Encode(d)) },
		EvalRows:  rowsEval(enc, eval),
		Body:      eval,
	}

	qualityName := "pAcc"
	if !classification {
		qualityName = "pR2"
	}
	measures := []fst.Measure{
		{Name: qualityName, Bounds: skyline.DefaultBounds(), Normalize: fst.Inverted(measureFloor)},
		{Name: "pTrain", Bounds: skyline.DefaultBounds(), Normalize: fst.Scaled(maxCost, measureFloor)},
	}
	lake := &Lake{
		Config:    LakeConfig{Name: "custom", AdomK: cfg.AdomK},
		Tables:    cfg.Tables,
		Universal: u,
		Target:    cfg.Target,
	}
	return &Workload{Name: "custom", Lake: lake, Space: space, Model: model, Measures: measures}, nil
}

func kindOrDefault(k string) string {
	if k == "" {
		return "gbm"
	}
	return k
}
