package datagen

import (
	"testing"

	"repro/internal/ml"
)

func TestLakeStructure(t *testing.T) {
	l := NewLake(LakeConfig{Name: "x", Rows: 100, InfoAttrs: 4, NoiseAttrs: 2, NoisyRowFrac: 0.2, AdomK: 3, Seed: 1})
	if len(l.Tables) != 3 {
		t.Fatalf("tables = %d, want 3 (base, info, noise)", len(l.Tables))
	}
	if !l.Universal.Schema.Has(TargetAttr) {
		t.Fatal("universal missing target")
	}
	// Universal rows = clean + dirty.
	if l.Universal.NumRows() != 120 {
		t.Errorf("universal rows = %d, want 120", l.Universal.NumRows())
	}
	// Universal schema: id, season, 4 info, 2 noise, target = 9.
	if l.Universal.NumCols() != 9 {
		t.Errorf("universal cols = %d, want 9", l.Universal.NumCols())
	}
}

func TestLakeCompressionBoundsAdom(t *testing.T) {
	l := NewLake(LakeConfig{Rows: 200, InfoAttrs: 4, AdomK: 3, Seed: 2})
	for _, c := range l.Universal.Schema {
		if c.Name == "id" || c.Name == TargetAttr || c.Kind == 3 /* string */ {
			continue
		}
		if got := len(l.Universal.ActiveDomain(c.Name)); got > 3 {
			t.Errorf("adom(%s) = %d, want <= 3", c.Name, got)
		}
	}
}

func TestLakeDeterministic(t *testing.T) {
	a := NewLake(LakeConfig{Rows: 50, InfoAttrs: 3, Seed: 7})
	b := NewLake(LakeConfig{Rows: 50, InfoAttrs: 3, Seed: 7})
	if a.Universal.NumRows() != b.Universal.NumRows() {
		t.Fatal("same seed must give identical lakes")
	}
	for i, r := range a.Universal.Rows {
		for j, v := range r {
			got := b.Universal.Rows[i][j]
			if v.IsNull() != got.IsNull() || (!v.IsNull() && !v.Equal(got)) {
				t.Fatalf("cell (%d,%d) differs", i, j)
			}
		}
	}
}

func TestClassTargetsBalanced(t *testing.T) {
	l := NewLake(LakeConfig{Rows: 300, InfoAttrs: 3, Classes: 3, Seed: 3})
	counts := map[int64]int{}
	idx := l.Universal.Schema.Index(TargetAttr)
	for _, r := range l.Universal.Rows {
		counts[r[idx].AsInt()]++
	}
	if len(counts) != 3 {
		t.Fatalf("classes = %d, want 3", len(counts))
	}
	for c, n := range counts {
		if n < 60 {
			t.Errorf("class %d count = %d, heavily imbalanced", c, n)
		}
	}
}

func workloadSmoke(t *testing.T, w *Workload, nMeasures int) {
	t.Helper()
	if len(w.Measures) != nMeasures {
		t.Fatalf("%s measures = %d, want %d", w.Name, len(w.Measures), nMeasures)
	}
	raw, err := w.Model.Evaluate(w.Lake.Universal)
	if err != nil {
		t.Fatalf("%s evaluate: %v", w.Name, err)
	}
	if len(raw) != nMeasures {
		t.Fatalf("%s raw metrics = %d, want %d", w.Name, len(raw), nMeasures)
	}
	for i, m := range w.Measures {
		v := m.Normalize(raw[i])
		if v <= 0 || v > 1 {
			t.Errorf("%s measure %s normalized to %v, want (0,1]", w.Name, m.Name, v)
		}
	}
	if w.Space.Size() == 0 {
		t.Fatalf("%s space is empty", w.Name)
	}
}

func TestT1Workload(t *testing.T) { workloadSmoke(t, T1Movie(TaskConfig{Rows: 120}), 4) }
func TestT2Workload(t *testing.T) { workloadSmoke(t, T2House(TaskConfig{Rows: 120}), 5) }
func TestT3Workload(t *testing.T) { workloadSmoke(t, T3Avocado(TaskConfig{Rows: 120}), 3) }
func TestT4Workload(t *testing.T) { workloadSmoke(t, T4Mental(TaskConfig{Rows: 120}), 6) }

func TestT5Workload(t *testing.T) {
	w := T5Link(T5Config{Users: 20, Items: 20, EdgesPerUser: 5})
	workloadSmoke(t, w, 6)
}

// Removing the dirty rows (the planted noise cluster) must improve the
// model — this is the signal MODis discovers.
func TestDirtyRowsHurtModel(t *testing.T) {
	w := T2House(TaskConfig{Rows: 200, Seed: 31})
	rawAll, err := w.Model.Evaluate(w.Lake.Universal)
	if err != nil {
		t.Fatal(err)
	}
	// Clean = universal without the dirty rows (id >= Rows).
	cleanTbl := w.Lake.Universal.Clone()
	idIdx := cleanTbl.Schema.Index("id")
	var kept int
	for _, r := range cleanTbl.Rows {
		if r[idIdx].AsInt() < 200 {
			cleanTbl.Rows[kept] = r
			kept++
		}
	}
	cleanTbl.Rows = cleanTbl.Rows[:kept]
	rawClean, err := w.Model.Evaluate(cleanTbl)
	if err != nil {
		t.Fatal(err)
	}
	// Measure 1 = accuracy (raw, higher better).
	if rawClean[1] <= rawAll[1] {
		t.Errorf("clean accuracy %v should beat dirty %v", rawClean[1], rawAll[1])
	}
}

func TestModelEvaluationDeterministic(t *testing.T) {
	w := T1Movie(TaskConfig{Rows: 100})
	a, err := w.Model.Evaluate(w.Lake.Universal)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Model.Evaluate(w.Lake.Universal)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("metric %d nondeterministic: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNewConfigSurrogateToggle(t *testing.T) {
	w := T3Avocado(TaskConfig{Rows: 80})
	with := w.NewConfig(true)
	if with.Est == nil || with.WarmupExact == 0 {
		t.Error("surrogate config incomplete")
	}
	without := w.NewConfig(false)
	if without.Est != nil {
		t.Error("exact config should have no estimator")
	}
}

func TestFeatureScoresSeparateSignalFromNoise(t *testing.T) {
	w := T2House(TaskConfig{Rows: 200})
	ds := ml.FromTable(w.Lake.Universal, w.Lake.Target)
	fsc, mi := featureScores(ds, 3)
	if fsc <= 0 || mi <= 0 {
		t.Errorf("feature scores should be positive: fsc=%v mi=%v", fsc, mi)
	}
}

func TestSquash(t *testing.T) {
	if squash(-1) != 0 {
		t.Error("negative squash")
	}
	if squash(0) != 0 {
		t.Error("zero squash")
	}
	if v := squash(1); v != 0.5 {
		t.Errorf("squash(1) = %v", v)
	}
	if squash(1e12) >= 1 {
		t.Error("squash must stay below 1")
	}
}
