// Package datagen builds the deterministic synthetic data lakes and
// workloads T1–T5 of the experimental study. The paper evaluates on
// Kaggle / data.gov / HuggingFace lakes (Table 2); those are replaced by
// seeded generators that plant the same structure the algorithms exploit:
// informative features split across joinable tables, distractor features,
// and noisy row clusters whose removal (Reduct) improves the model — see
// the substitution table in DESIGN.md.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/table"
)

// LakeConfig parameterizes a synthetic tabular data lake.
type LakeConfig struct {
	Name string
	// Rows is the number of clean base entities.
	Rows int
	// InfoAttrs is the number of informative features the target depends on.
	InfoAttrs int
	// NoiseAttrs is the number of distractor features (pure noise).
	NoiseAttrs int
	// NoisyRowFrac adds this fraction of Rows as corrupted tuples whose
	// targets are random; they arrive via a separate "dirty" source table.
	NoisyRowFrac float64
	// Classes > 0 makes the target a class label with that many classes;
	// 0 keeps a continuous regression target.
	Classes int
	// AdomK is the per-attribute cluster count of the compressed
	// universal table (the paper's k-means literal derivation, max 30).
	AdomK int
	Seed  int64
}

func (c LakeConfig) withDefaults() LakeConfig {
	if c.Rows <= 0 {
		c.Rows = 400
	}
	if c.InfoAttrs <= 0 {
		c.InfoAttrs = 4
	}
	if c.AdomK <= 0 {
		// Four clusters cover the three clean feature levels plus the
		// corrupted-value region.
		c.AdomK = 4
	}
	if c.NoisyRowFrac < 0 {
		c.NoisyRowFrac = 0
	}
	return c
}

// Lake is a generated data lake: the source tables D, the compressed
// universal table D_U, and the target attribute name.
type Lake struct {
	Config    LakeConfig
	Tables    []*table.Table
	Universal *table.Table
	Target    string
}

// TargetAttr is the planted target column name.
const TargetAttr = "target"

// NewLake generates a lake. The base table carries the id, a seasonal
// categorical attribute, half of the informative features and the
// target — plus a fraction of corrupted tuples whose targets are random
// and whose feature values concentrate in a separate value region
// (cluster literals can isolate and remove them, but no join or column
// selection can). Companion tables carry the remaining informative
// features and the distractors, covering all ids so augmentation
// baselines keep the corrupted rows.
func NewLake(cfg LakeConfig) *Lake {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Planted linear weights over informative features.
	w := make([]float64, cfg.InfoAttrs)
	for i := range w {
		w[i] = 0.5 + rng.Float64() // all positive, in [0.5, 1.5)
	}

	infoNames := make([]string, cfg.InfoAttrs)
	for i := range infoNames {
		infoNames[i] = fmt.Sprintf("info%d", i)
	}
	noiseNames := make([]string, cfg.NoiseAttrs)
	for i := range noiseNames {
		noiseNames[i] = fmt.Sprintf("noise%d", i)
	}
	seasons := []string{"spring", "summer", "fall", "winter"}

	// Per-entity features and targets. Informative features take three
	// discrete levels {0, 0.5, 1}: the k-means compression of D_U is then
	// lossless on clean data, so the planted signal survives literal
	// derivation (the paper's lakes are likewise pre-clustered).
	X := make([][]float64, cfg.Rows)
	y := make([]float64, cfg.Rows)
	for r := 0; r < cfg.Rows; r++ {
		X[r] = make([]float64, cfg.InfoAttrs)
		s := 0.0
		for j := range X[r] {
			X[r][j] = float64(rng.Intn(3)) / 2
			s += w[j] * X[r][j]
		}
		y[r] = s + 0.05*rng.NormFloat64()
	}
	if cfg.Classes > 0 {
		y = toClasses(y, cfg.Classes)
	}

	nHalf := (cfg.InfoAttrs + 1) / 2
	nDirty := int(float64(cfg.Rows) * cfg.NoisyRowFrac)
	total := cfg.Rows + nDirty

	// Base table: id, season, first half of informative features,
	// target. Clean rows first, then the corrupted tuples: feature
	// values shifted into [2, 3) (a separable cluster) and random
	// targets.
	baseSchema := table.Schema{{Name: "id", Kind: table.KindInt}, {Name: "season", Kind: table.KindString}}
	for j := 0; j < nHalf; j++ {
		baseSchema = append(baseSchema, table.Column{Name: infoNames[j], Kind: table.KindFloat})
	}
	baseSchema = append(baseSchema, table.Column{Name: TargetAttr, Kind: targetKind(cfg)})
	base := table.New(cfg.Name+"_base", baseSchema)
	for r := 0; r < cfg.Rows; r++ {
		row := table.Row{table.Int(int64(r)), table.Str(seasons[rng.Intn(len(seasons))])}
		for j := 0; j < nHalf; j++ {
			row = append(row, table.Float(X[r][j]))
		}
		row = append(row, targetValue(cfg, y[r]))
		base.MustAppend(row)
	}
	for r := cfg.Rows; r < total; r++ {
		row := table.Row{table.Int(int64(r)), table.Str(seasons[rng.Intn(len(seasons))])}
		for j := 0; j < nHalf; j++ {
			row = append(row, table.Float(2+rng.Float64()))
		}
		var ty float64
		if cfg.Classes > 0 {
			ty = float64(rng.Intn(cfg.Classes))
		} else {
			ty = 3 * rng.Float64()
		}
		row = append(row, targetValue(cfg, ty))
		base.MustAppend(row)
	}

	tables := []*table.Table{base}

	// Companion table with the remaining informative features, covering
	// every id (the corruption lives in the labels, not here).
	if cfg.InfoAttrs > nHalf {
		sch := table.Schema{{Name: "id", Kind: table.KindInt}}
		for j := nHalf; j < cfg.InfoAttrs; j++ {
			sch = append(sch, table.Column{Name: infoNames[j], Kind: table.KindFloat})
		}
		t := table.New(cfg.Name+"_info", sch)
		for r := 0; r < total; r++ {
			row := table.Row{table.Int(int64(r))}
			for j := nHalf; j < cfg.InfoAttrs; j++ {
				if r < cfg.Rows {
					row = append(row, table.Float(X[r][j]))
				} else {
					row = append(row, table.Float(rng.Float64()))
				}
			}
			t.MustAppend(row)
		}
		tables = append(tables, t)
	}

	// Distractor table: pure-noise features joined by id, all ids.
	if cfg.NoiseAttrs > 0 {
		sch := table.Schema{{Name: "id", Kind: table.KindInt}}
		for _, n := range noiseNames {
			sch = append(sch, table.Column{Name: n, Kind: table.KindFloat})
		}
		t := table.New(cfg.Name+"_noise", sch)
		for r := 0; r < total; r++ {
			row := table.Row{table.Int(int64(r))}
			for range noiseNames {
				row = append(row, table.Float(rng.Float64()))
			}
			t.MustAppend(row)
		}
		tables = append(tables, t)
	}

	// Universal table via multi-way outer join, then per-attribute
	// k-means compression (the paper's D_U construction).
	u := table.Universal(tables...)
	for _, c := range u.Schema {
		if c.Name == TargetAttr || c.Name == "id" || c.Kind == table.KindString {
			continue
		}
		u = table.Compress(u, c.Name, cfg.AdomK)
	}

	return &Lake{Config: cfg, Tables: tables, Universal: u, Target: TargetAttr}
}

func targetKind(cfg LakeConfig) table.Kind {
	if cfg.Classes > 0 {
		return table.KindInt
	}
	return table.KindFloat
}

func targetValue(cfg LakeConfig, y float64) table.Value {
	if cfg.Classes > 0 {
		return table.Int(int64(y))
	}
	return table.Float(y)
}

// toClasses buckets a continuous series into equal-frequency class
// labels 0..k-1.
func toClasses(y []float64, k int) []float64 {
	sorted := append([]float64(nil), y...)
	sort.Float64s(sorted)
	edges := make([]float64, 0, k-1)
	for b := 1; b < k; b++ {
		edges = append(edges, sorted[b*len(sorted)/k])
	}
	out := make([]float64, len(y))
	for i, v := range y {
		c := 0
		for _, e := range edges {
			if v >= e {
				c++
			}
		}
		out[i] = float64(c)
	}
	return out
}
