package datagen

import (
	"math"

	"repro/internal/estimator"
	"repro/internal/fst"
	"repro/internal/ml"
	"repro/internal/table"
)

// TableModel adapts a learner family to the fst.Model interface: a
// fixed, deterministic model whose Evaluate trains on the dataset's
// train split and reports raw metrics on the test split.
type TableModel struct {
	ModelName string
	Eval      func(d *table.Table) ([]float64, error)
}

// Name implements fst.Model.
func (m *TableModel) Name() string { return m.ModelName }

// Evaluate implements fst.Model.
func (m *TableModel) Evaluate(d *table.Table) ([]float64, error) { return m.Eval(d) }

// Workload bundles everything a discovery run needs: the lake, the FST
// space over its universal table, the task model and its measures.
type Workload struct {
	Name     string
	Lake     *Lake
	Space    *fst.Space
	Model    fst.Model
	Measures []fst.Measure
}

// NewConfig builds a discovery configuration; useSurrogate enables the
// MO-GBM estimator after a short exact warm-up, matching the paper's
// setting; without it every state runs real model inference.
func (w *Workload) NewConfig(useSurrogate bool) *fst.Config {
	cfg := &fst.Config{
		Space:    w.Space,
		Model:    w.Model,
		Measures: w.Measures,
		Tests:    fst.NewTestSet(),
	}
	if useSurrogate {
		cfg.Est = estimator.NewMOGBM()
		// Warm up on at least the whole first BFS level so the surrogate
		// has seen the effect of every single-entry flip before it is
		// trusted, then keep refreshing with periodic exact calls.
		cfg.WarmupExact = w.Space.Size() + 1
		cfg.ExactEvery = 4
	}
	return cfg
}

// minEvalRows is the smallest dataset a model will train on; below it
// the evaluation reports worst-case metrics. The floor keeps discovery
// from converging to unusable micro-datasets whose test split is so
// small that metrics saturate (a handful of rows classify perfectly).
const minEvalRows = 40

// trainCost is the deterministic training-cost proxy: examples ×
// features × a per-family constant. The paper measures wall-clock
// training time; a deterministic proxy with the same monotone shape
// keeps runs reproducible (see DESIGN.md).
func trainCost(n, f int, k float64) float64 { return float64(n) * float64(max(f, 1)) * k }

// squash maps an unbounded non-negative score into [0, 1).
func squash(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	return x / (1 + x)
}

// featureScores returns the mean Fisher score and mean mutual
// information of the dataset's features against the (discretized) target.
func featureScores(d *ml.Dataset, classes int) (fsc, mi float64) {
	if d.NumRows() == 0 || d.NumFeatures() == 0 {
		return 0, 0
	}
	y := d.Y
	if classes <= 0 {
		// Regression target: discretize into quintiles for scoring.
		y = discretizeTarget(d.Y, 5)
	}
	fs := ml.FisherScore(d.X, y)
	ms := ml.MutualInformation(d.X, y, 8)
	var sf, sm float64
	for i := range fs {
		sf += fs[i]
	}
	for i := range ms {
		sm += ms[i]
	}
	n := float64(len(fs))
	if n == 0 {
		return 0, 0
	}
	return sf / n, sm / n
}

func discretizeTarget(y []float64, k int) []float64 {
	return toClasses(y, k)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// worst returns the all-worst raw metric vector for a metric layout
// where higherBetter[i] marks metrics that are maximized.
func worst(higherBetter []bool) []float64 {
	out := make([]float64, len(higherBetter))
	for i, hb := range higherBetter {
		if hb {
			out[i] = 0
		} else {
			out[i] = math.Inf(1)
		}
	}
	return out
}
