package datagen

import (
	"math"

	"repro/internal/estimator"
	"repro/internal/fst"
	"repro/internal/ml"
	"repro/internal/table"
)

// TableModel adapts a learner family to the fst.Model interface: a
// fixed, deterministic model whose Evaluate trains on the dataset's
// train split and reports raw metrics on the test split. Models built
// by this package supply both routes to the same evaluation body:
// Eval receives the materialized child table (the reference path) and
// EvalRows receives the state's selected-row view over the universal
// table (the zero-materialization columnar fast path). The two must
// return bit-identical metrics — a property the tests enforce.
type TableModel struct {
	ModelName string
	Eval      func(d *table.Table) ([]float64, error)
	// EvalRows, when set, valuates a state straight from the space's
	// row view; returning ok=false falls back to Eval.
	EvalRows func(v fst.RowsView) (raw []float64, ok bool, err error)
	// Body, when set, is the Data-generic evaluation body both routes
	// share. It exists so the model can be rebound to a different
	// encoder: the cold reference of the streaming determinism contract
	// (a space Rebuild over the concatenated table) needs the same
	// metrics computed through a fresh encoder's matrix, not the one
	// the streamed space extended in place.
	Body func(ds ml.Data) ([]float64, error)
}

// WithEncoder rebinds the model's evaluation body to another encoder,
// leaving the receiver untouched. Models without a rebindable body
// (T5's graph model reads universal tuples directly) are returned
// as-is.
func (m *TableModel) WithEncoder(enc *ml.TableEncoder) *TableModel {
	if m.Body == nil {
		return m
	}
	body := m.Body
	return &TableModel{
		ModelName: m.ModelName,
		Eval:      func(d *table.Table) ([]float64, error) { return body(enc.Encode(d)) },
		EvalRows:  rowsEval(enc, body),
		Body:      body,
	}
}

// Name implements fst.Model.
func (m *TableModel) Name() string { return m.ModelName }

// Evaluate implements fst.Model.
func (m *TableModel) Evaluate(d *table.Table) ([]float64, error) { return m.Eval(d) }

// EvaluateRows implements fst.RowsModel.
func (m *TableModel) EvaluateRows(v fst.RowsView) ([]float64, bool, error) {
	if m.EvalRows == nil {
		return nil, false, nil
	}
	return m.EvalRows(v)
}

// rowsEval adapts a Data-generic evaluation body into a TableModel
// EvalRows hook over the encoder's frozen matrix encoding, which is
// built on first valuation (enc.Matrix is once-guarded), not at
// workload construction.
func rowsEval(enc *ml.TableEncoder, eval func(ml.Data) ([]float64, error)) func(fst.RowsView) ([]float64, bool, error) {
	return func(v fst.RowsView) ([]float64, bool, error) {
		view := enc.Matrix().View(v.Rows, v.Masked)
		raw, err := eval(view)
		// The evaluation body is done with the view (and any splits
		// derived from it) once it returns its metrics, so the view's
		// encoding buffers go back to the matrix's pool here.
		view.Release()
		return raw, true, err
	}
}

// predictAll runs a fitted point predictor over every test example,
// returning predictions and labels in row order.
func predictAll(predict func([]float64) float64, test ml.Data) (pred, y []float64) {
	n := test.NumRows()
	pred = make([]float64, n)
	y = make([]float64, n)
	buf := make([]float64, test.NumFeatures())
	for i := 0; i < n; i++ {
		pred[i] = predict(test.Row(i, buf))
		y[i] = test.Label(i)
	}
	return pred, y
}

// Workload bundles everything a discovery run needs: the lake, the FST
// space over its universal table, the task model and its measures.
type Workload struct {
	Name     string
	Lake     *Lake
	Space    *fst.Space
	Model    fst.Model
	Measures []fst.Measure
}

// NewConfig builds a discovery configuration; useSurrogate enables the
// MO-GBM estimator after a short exact warm-up, matching the paper's
// setting; without it every state runs real model inference.
func (w *Workload) NewConfig(useSurrogate bool) *fst.Config {
	cfg := &fst.Config{
		Space:    w.Space,
		Model:    w.Model,
		Measures: w.Measures,
		Tests:    fst.NewTestSet(),
	}
	if useSurrogate {
		cfg.Est = estimator.NewMOGBM()
		// Warm up on at least the whole first BFS level so the surrogate
		// has seen the effect of every single-entry flip before it is
		// trusted, then keep refreshing with periodic exact calls.
		cfg.WarmupExact = w.Space.Size() + 1
		cfg.ExactEvery = 4
	}
	return cfg
}

// minEvalRows is the smallest dataset a model will train on; below it
// the evaluation reports worst-case metrics. The floor keeps discovery
// from converging to unusable micro-datasets whose test split is so
// small that metrics saturate (a handful of rows classify perfectly).
const minEvalRows = 40

// trainCost is the deterministic training-cost proxy: examples ×
// features × a per-family constant. The paper measures wall-clock
// training time; a deterministic proxy with the same monotone shape
// keeps runs reproducible (see DESIGN.md).
func trainCost(n, f int, k float64) float64 { return float64(n) * float64(max(f, 1)) * k }

// squash maps an unbounded non-negative score into [0, 1).
func squash(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	return x / (1 + x)
}

// featureScores returns the mean Fisher score and mean mutual
// information of the dataset's features against the (discretized)
// target, reading the data columnar-wise so both the encoded-dataset
// route and the matrix-view route score identically.
func featureScores(d ml.Data, classes int) (fsc, mi float64) {
	if d.NumRows() == 0 || d.NumFeatures() == 0 {
		return 0, 0
	}
	y := ml.Labels(d)
	if classes <= 0 {
		// Regression target: discretize into quintiles for scoring.
		y = discretizeTarget(y, 5)
	}
	fs := ml.FisherScoreData(d, y)
	ms := ml.MutualInformationData(d, y, 8)
	var sf, sm float64
	for i := range fs {
		sf += fs[i]
	}
	for i := range ms {
		sm += ms[i]
	}
	n := float64(len(fs))
	if n == 0 {
		return 0, 0
	}
	return sf / n, sm / n
}

func discretizeTarget(y []float64, k int) []float64 {
	return toClasses(y, k)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// worst returns the all-worst raw metric vector for a metric layout
// where higherBetter[i] marks metrics that are maximized.
func worst(higherBetter []bool) []float64 {
	out := make([]float64, len(higherBetter))
	for i, hb := range higherBetter {
		if hb {
			out[i] = 0
		} else {
			out[i] = math.Inf(1)
		}
	}
	return out
}
