package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/fst"
	"repro/internal/graph"
	"repro/internal/skyline"
	"repro/internal/table"
)

// T5Config parameterizes the bipartite link-regression workload.
type T5Config struct {
	Users       int // default 40
	Items       int // default 40
	Communities int // default 4
	// EdgesPerUser is the count of genuine within-community interactions.
	EdgesPerUser int // default 8
	// NoiseFrac adds this fraction of random cross-community edges.
	NoiseFrac float64 // default 0.5
	// AdomK controls edge-cluster literal granularity.
	AdomK int // default 4
	Seed  int64
}

func (c T5Config) withDefaults() T5Config {
	if c.Users <= 0 {
		c.Users = 40
	}
	if c.Items <= 0 {
		c.Items = 40
	}
	if c.Communities <= 0 {
		c.Communities = 4
	}
	if c.EdgesPerUser <= 0 {
		c.EdgesPerUser = 8
	}
	if c.NoiseFrac <= 0 {
		c.NoiseFrac = 0.5
	}
	if c.AdomK <= 0 {
		c.AdomK = 4
	}
	if c.Seed == 0 {
		c.Seed = 113
	}
	return c
}

// T5Link builds task T5: link regression for recommendation over a
// bipartite graph, evaluated by a LightGCN-style scorer. The graph is
// represented as an edge table so the generic FST operators apply —
// Augment/Reduct become edge insertions/deletions, exactly the paper's
// graph counterpart of the operators (Section 6). Genuine edges follow a
// planted community structure; noisy cross-community edges form
// separable clusters the Reduct literals can remove.
func T5Link(tc T5Config) *Workload {
	tc = tc.withDefaults()
	rng := rand.New(rand.NewSource(tc.Seed))

	schema := table.Schema{
		{Name: "user", Kind: table.KindInt},
		{Name: "item", Kind: table.KindInt},
		{Name: "ucomm", Kind: table.KindInt},
		{Name: "icomm", Kind: table.KindInt},
		{Name: "match", Kind: table.KindInt},
		{Name: "strength", Kind: table.KindFloat},
		{Name: "weight", Kind: table.KindFloat},
	}
	edges := table.New("edges", schema)

	ucomm := make([]int, tc.Users)
	icomm := make([]int, tc.Items)
	for u := range ucomm {
		ucomm[u] = u % tc.Communities
	}
	for i := range icomm {
		icomm[i] = i % tc.Communities
	}

	addEdge := func(u, i int, genuine bool) {
		m := int64(0)
		strength := 0.2 + 0.3*rng.Float64()
		if genuine {
			m = 1
			strength = 0.7 + 0.3*rng.Float64()
		}
		edges.MustAppend(table.Row{
			table.Int(int64(u)), table.Int(int64(i)),
			table.Int(int64(ucomm[u])), table.Int(int64(icomm[i])),
			table.Int(m), table.Float(strength), table.Float(strength),
		})
	}

	for u := 0; u < tc.Users; u++ {
		for e := 0; e < tc.EdgesPerUser; e++ {
			// Pick an item in the user's community.
			i := ucomm[u] + tc.Communities*rng.Intn(tc.Items/tc.Communities)
			addEdge(u, i, true)
		}
	}
	nNoise := int(float64(tc.Users*tc.EdgesPerUser) * tc.NoiseFrac)
	for e := 0; e < nNoise; e++ {
		u := rng.Intn(tc.Users)
		// Cross-community item.
		i := rng.Intn(tc.Items)
		for icomm[i] == ucomm[u] {
			i = rng.Intn(tc.Items)
		}
		addEdge(u, i, false)
	}

	// Compress the strength attribute to derive cluster literals.
	universal := table.Compress(edges, "strength", tc.AdomK)
	universal.Name = "D_U"

	space := fst.NewSpace(universal, "weight", fst.SpaceConfig{
		MaxLiteralsPerAttr: tc.AdomK,
		SkipLiteralAttrs:   []string{"user", "item"},
		ProtectedAttrs:     []string{"user", "item", "match", "ucomm", "icomm", "strength"},
	})

	evalGraph := func(b *graph.Bipartite) ([]float64, error) {
		if len(b.Edges) < minEvalRows {
			return []float64{0, 0, 0, 0, 0, 0}, nil
		}
		r := graph.Evaluate(b, graph.EvalConfig{
			HoldoutFrac:  0.3,
			NumNegatives: 15,
			Seed:         42,
			Scorer:       graph.ScorerConfig{Dim: 12, Layers: 2, Seed: 7},
		})
		return []float64{r.P5, r.P10, r.R5, r.R10, r.N5, r.N10}, nil
	}
	model := &TableModel{
		ModelName: "LGRmodel",
		Eval: func(d *table.Table) ([]float64, error) {
			b, err := bipartiteFromTable(d, tc.Users, tc.Items)
			if err != nil {
				return nil, err
			}
			return evalGraph(b)
		},
		// The graph model reads the edge tuples directly, so its rows
		// path skips even the encoding: build the bipartite graph from
		// the surviving universal rows. Masking can never hit the
		// user/item/weight columns here (all protected or target), but
		// decline defensively if it ever does.
		EvalRows: func(v fst.RowsView) ([]float64, bool, error) {
			for _, a := range v.Masked {
				if a == "user" || a == "item" || a == "weight" {
					return nil, false, nil
				}
			}
			b, err := bipartiteFromRows(universal, v.Rows, tc.Users, tc.Items)
			if err != nil {
				return nil, false, nil
			}
			raw, err := evalGraph(b)
			return raw, true, err
		},
	}
	inv := fst.Inverted(measureFloor)
	measures := []fst.Measure{
		{Name: "pPc5", Bounds: skyline.DefaultBounds(), Normalize: inv},
		{Name: "pPc10", Bounds: skyline.DefaultBounds(), Normalize: inv},
		{Name: "pRc5", Bounds: skyline.DefaultBounds(), Normalize: inv},
		{Name: "pRc10", Bounds: skyline.DefaultBounds(), Normalize: inv},
		{Name: "pNc5", Bounds: skyline.DefaultBounds(), Normalize: inv},
		{Name: "pNc10", Bounds: skyline.DefaultBounds(), Normalize: inv},
	}

	lake := &Lake{
		Config:    LakeConfig{Name: "links", AdomK: tc.AdomK, Seed: tc.Seed},
		Tables:    []*table.Table{edges},
		Universal: universal,
		Target:    "weight",
	}
	return &Workload{Name: "T5", Lake: lake, Space: space, Model: model, Measures: measures}
}

func bipartiteFromTable(d *table.Table, users, items int) (*graph.Bipartite, error) {
	ui := d.Schema.Index("user")
	ii := d.Schema.Index("item")
	wi := d.Schema.Index("weight")
	if ui < 0 || ii < 0 {
		return nil, fmt.Errorf("datagen: edge table missing user/item columns")
	}
	b := graph.NewBipartite(users, items)
	for _, r := range d.Rows {
		addBipartiteEdge(b, r, ui, ii, wi)
	}
	return b, nil
}

// bipartiteFromRows is bipartiteFromTable over a selected-row view of
// the universal edge table: same edges, same insertion order, no child
// table.
func bipartiteFromRows(u *table.Table, rows []int, users, items int) (*graph.Bipartite, error) {
	ui := u.Schema.Index("user")
	ii := u.Schema.Index("item")
	wi := u.Schema.Index("weight")
	if ui < 0 || ii < 0 {
		return nil, fmt.Errorf("datagen: edge table missing user/item columns")
	}
	b := graph.NewBipartite(users, items)
	for _, ri := range rows {
		addBipartiteEdge(b, u.Rows[ri], ui, ii, wi)
	}
	return b, nil
}

func addBipartiteEdge(b *graph.Bipartite, r table.Row, ui, ii, wi int) {
	if r[ui].IsNull() || r[ii].IsNull() {
		return
	}
	w := 1.0
	if wi >= 0 && !r[wi].IsNull() {
		w = r[wi].AsFloat()
	}
	b.AddEdge(int(r[ui].AsInt()), int(r[ii].AsInt()), w)
}
