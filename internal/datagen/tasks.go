package datagen

import (
	"math"

	"repro/internal/fst"
	"repro/internal/ml"
	"repro/internal/skyline"
	"repro/internal/table"
)

// TaskConfig scales a workload; zero values take task defaults.
type TaskConfig struct {
	Rows       int
	InfoAttrs  int
	NoiseAttrs int
	AdomK      int
	Seed       int64
}

func (c TaskConfig) merge(rows, info, noise, adomK int, seed int64) LakeConfig {
	out := LakeConfig{Rows: rows, InfoAttrs: info, NoiseAttrs: noise, AdomK: adomK, Seed: seed}
	if c.Rows > 0 {
		out.Rows = c.Rows
	}
	if c.InfoAttrs > 0 {
		out.InfoAttrs = c.InfoAttrs
	}
	if c.NoiseAttrs > 0 {
		out.NoiseAttrs = c.NoiseAttrs
	}
	if c.AdomK > 0 {
		out.AdomK = c.AdomK
	}
	if c.Seed != 0 {
		out.Seed = c.Seed
	}
	return out
}

const measureFloor = 1e-3

// newSpace builds the FST space over a lake's universal table. The
// encoder is created first and doubles as the space's column source:
// both the per-attribute literal clustering and the per-literal row
// index derive from the matrix's frozen floats rather than a second
// walk of the universal cells.
func newSpace(l *Lake, enc *ml.TableEncoder) *fst.Space {
	return fst.NewSpace(l.Universal, l.Target, fst.SpaceConfig{
		MaxLiteralsPerAttr: l.Config.AdomK,
		SkipLiteralAttrs:   []string{"id"},
		ProtectedAttrs:     []string{"id"},
		Columns:            enc,
	})
}

// taskEncoder is the shared encoder of a task's universal table; the
// id column is skipped in place, so models never clone children
// through DropColumn.
func taskEncoder(l *Lake) *ml.TableEncoder {
	return ml.NewTableEncoderSkip(l.Universal, l.Target, "id")
}

// taskModel wires one Data-generic evaluation body into both valuation
// routes of a TableModel: the reference path encodes the materialized
// child through the shared encoder, the fast path views the frozen
// matrix at the state's selected rows. Each task's metrics are
// computed once, in one body, so the routes cannot drift.
func taskModel(name string, enc *ml.TableEncoder, eval func(ml.Data) ([]float64, error)) *TableModel {
	return &TableModel{
		ModelName: name,
		Eval:      func(d *table.Table) ([]float64, error) { return eval(enc.Encode(d)) },
		EvalRows:  rowsEval(enc, eval),
		Body:      eval,
	}
}

// T1Movie is task T1: a gradient boosting regressor predicting movie
// gross, with measures P1 = {p_Acc, p_Train, p_Fsc, p_MI}.
func T1Movie(tc TaskConfig) *Workload {
	lc := tc.merge(360, 5, 4, 4, 101)
	lc.Name = "movie"
	lc.Classes = 0
	lc.NoisyRowFrac = 0.3
	lake := NewLake(lc)
	maxCost := trainCost(lake.Universal.NumRows(), lake.Universal.NumCols(), 1)

	eval := func(ds ml.Data) ([]float64, error) {
		if ds.NumRows() < minEvalRows || ds.NumFeatures() == 0 {
			return worst([]bool{true, false, true, true}), nil
		}
		train, test := ds.SplitData(0.3, 42)
		g := &ml.GBMRegressor{Config: ml.GBMConfig{NumTrees: 30, MaxDepth: 3, Seed: 1}}
		g.FitData(train)
		pred, testY := predictAll(g.Predict, test)
		acc := math.Max(0, ml.R2(testY, pred))
		fsc, mi := featureScores(ds, 0)
		cost := trainCost(train.NumRows(), train.NumFeatures(), 1)
		return []float64{acc, cost, fsc, mi}, nil
	}
	measures := []fst.Measure{
		{Name: "pAcc", Bounds: skyline.DefaultBounds(), Normalize: fst.Inverted(measureFloor)},
		{Name: "pTrain", Bounds: skyline.DefaultBounds(), Normalize: fst.Scaled(maxCost, measureFloor)},
		{Name: "pFsc", Bounds: skyline.DefaultBounds(), Normalize: invSquash()},
		{Name: "pMI", Bounds: skyline.DefaultBounds(), Normalize: invSquash()},
	}
	enc := taskEncoder(lake)
	sp := newSpace(lake, enc)
	return &Workload{Name: "T1", Lake: lake, Space: sp, Model: taskModel("GBmovie", enc, eval), Measures: measures}
}

// T2House is task T2: a random forest classifying house price levels,
// with measures P2 = {p_F1, p_Acc, p_Train, p_Fsc, p_MI}.
func T2House(tc TaskConfig) *Workload {
	lc := tc.merge(300, 4, 4, 4, 103)
	lc.Name = "house"
	lc.Classes = 3
	lc.NoisyRowFrac = 0.35
	lake := NewLake(lc)
	maxCost := trainCost(lake.Universal.NumRows(), lake.Universal.NumCols(), 2)

	eval := func(ds ml.Data) ([]float64, error) {
		if ds.NumRows() < minEvalRows || ds.NumFeatures() == 0 {
			return worst([]bool{true, true, false, true, true}), nil
		}
		train, test := ds.SplitData(0.3, 42)
		f := &ml.ForestClassifier{Config: ml.ForestConfig{NumTrees: 12, MaxDepth: 6, Seed: 1}, NumClass: 3}
		f.FitData(train)
		pred, testY := predictAll(f.Predict, test)
		acc := ml.Accuracy(testY, pred)
		_, _, f1 := ml.PrecisionRecallF1(testY, pred)
		fsc, mi := featureScores(ds, 3)
		cost := trainCost(train.NumRows(), train.NumFeatures(), 2)
		return []float64{f1, acc, cost, fsc, mi}, nil
	}
	measures := []fst.Measure{
		{Name: "pF1", Bounds: skyline.DefaultBounds(), Normalize: fst.Inverted(measureFloor)},
		{Name: "pAcc", Bounds: skyline.DefaultBounds(), Normalize: fst.Inverted(measureFloor)},
		{Name: "pTrain", Bounds: skyline.DefaultBounds(), Normalize: fst.Scaled(maxCost, measureFloor)},
		{Name: "pFsc", Bounds: skyline.DefaultBounds(), Normalize: invSquash()},
		{Name: "pMI", Bounds: skyline.DefaultBounds(), Normalize: invSquash()},
	}
	enc := taskEncoder(lake)
	sp := newSpace(lake, enc)
	return &Workload{Name: "T2", Lake: lake, Space: sp, Model: taskModel("RFhouse", enc, eval), Measures: measures}
}

// T3Avocado is task T3: a linear model predicting avocado prices, with
// measures P3 = {p_MSE, p_MAE, p_Train}.
func T3Avocado(tc TaskConfig) *Workload {
	lc := tc.merge(420, 4, 3, 4, 107)
	lc.Name = "avocado"
	lc.Classes = 0
	lc.NoisyRowFrac = 0.3
	lake := NewLake(lc)
	maxCost := trainCost(lake.Universal.NumRows(), lake.Universal.NumCols(), 0.5)

	eval := func(ds ml.Data) ([]float64, error) {
		if ds.NumRows() < minEvalRows || ds.NumFeatures() == 0 {
			return []float64{1, 1, maxCost}, nil
		}
		train, test := ds.SplitData(0.3, 42)
		lr := &ml.LinearRegression{}
		lr.FitData(train)
		pred, testY := predictAll(lr.Predict, test)
		// Relative errors: MSE over target variance, MAE over target
		// spread, keeping the raw metrics in (0,1] regardless of scale.
		vy := variance(testY)
		if vy == 0 {
			vy = 1
		}
		mse := math.Min(1, ml.MSE(testY, pred)/vy)
		mae := math.Min(1, ml.MAE(testY, pred)/math.Sqrt(vy))
		cost := trainCost(train.NumRows(), train.NumFeatures(), 0.5)
		return []float64{mse, mae, cost}, nil
	}
	measures := []fst.Measure{
		{Name: "pMSE", Bounds: skyline.DefaultBounds(), Normalize: fst.Identity(measureFloor)},
		{Name: "pMAE", Bounds: skyline.DefaultBounds(), Normalize: fst.Identity(measureFloor)},
		{Name: "pTrain", Bounds: skyline.DefaultBounds(), Normalize: fst.Scaled(maxCost, measureFloor)},
	}
	enc := taskEncoder(lake)
	sp := newSpace(lake, enc)
	return &Workload{Name: "T3", Lake: lake, Space: sp, Model: taskModel("LRavocado", enc, eval), Measures: measures}
}

// T4Mental is task T4: a histogram-GBDT (LightGBM stand-in) classifying
// mental health status, with measures P4 = {p_Acc, p_Pc, p_Rc, p_F1,
// p_AUC, p_Train}.
func T4Mental(tc TaskConfig) *Workload {
	lc := tc.merge(320, 5, 4, 4, 109)
	lc.Name = "mental"
	lc.Classes = 2
	lc.NoisyRowFrac = 0.35
	lake := NewLake(lc)
	maxCost := trainCost(lake.Universal.NumRows(), lake.Universal.NumCols(), 1.5)

	eval := func(ds ml.Data) ([]float64, error) {
		if ds.NumRows() < minEvalRows || ds.NumFeatures() == 0 {
			return worst([]bool{true, true, true, true, true, false}), nil
		}
		train, test := ds.SplitData(0.3, 42)
		h := &ml.HistGBMClassifier{Config: ml.HistGBMConfig{
			GBM:     ml.GBMConfig{NumTrees: 25, MaxDepth: 3, Seed: 1},
			NumBins: 16,
		}}
		h.FitData(train)
		n := test.NumRows()
		pred := make([]float64, n)
		scores := make([]float64, n)
		testY := make([]float64, n)
		buf := make([]float64, test.NumFeatures())
		for i := 0; i < n; i++ {
			scores[i] = h.PredictProba(test.Row(i, buf))
			pred[i] = math.Round(scores[i])
			testY[i] = test.Label(i)
		}
		acc := ml.Accuracy(testY, pred)
		pc, rc, f1 := ml.PrecisionRecallF1(testY, pred)
		auc := ml.AUC(testY, scores)
		cost := trainCost(train.NumRows(), train.NumFeatures(), 1.5)
		return []float64{acc, pc, rc, f1, auc, cost}, nil
	}
	measures := []fst.Measure{
		{Name: "pAcc", Bounds: skyline.DefaultBounds(), Normalize: fst.Inverted(measureFloor)},
		{Name: "pPc", Bounds: skyline.DefaultBounds(), Normalize: fst.Inverted(measureFloor)},
		{Name: "pRc", Bounds: skyline.DefaultBounds(), Normalize: fst.Inverted(measureFloor)},
		{Name: "pF1", Bounds: skyline.DefaultBounds(), Normalize: fst.Inverted(measureFloor)},
		{Name: "pAUC", Bounds: skyline.DefaultBounds(), Normalize: fst.Inverted(measureFloor)},
		{Name: "pTrain", Bounds: skyline.DefaultBounds(), Normalize: fst.Scaled(maxCost, measureFloor)},
	}
	enc := taskEncoder(lake)
	sp := newSpace(lake, enc)
	return &Workload{Name: "T4", Lake: lake, Space: sp, Model: taskModel("LGCmental", enc, eval), Measures: measures}
}

func invSquash() func(float64) float64 {
	inv := fst.Inverted(measureFloor)
	return func(raw float64) float64 { return inv(squash(raw)) }
}

func variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var v float64
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return v / float64(len(xs))
}
