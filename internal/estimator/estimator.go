// Package estimator provides the model-performance estimators E of the
// MODis framework. The default is MO-GBM: a multi-output gradient
// boosting surrogate that predicts the full performance vector of a
// state from its bitmap features in one call (Section 2, "Estimators"),
// trained online from the historical test set T.
package estimator

import (
	"repro/internal/ml"
	"repro/internal/skyline"
)

// MOGBM is the multi-output gradient boosting surrogate.
type MOGBM struct {
	// MinObs is the minimum number of observations before estimates are
	// trusted (default 12).
	MinObs int
	// RefitEvery retrains the surrogate after this many new observations
	// (default 8).
	RefitEvery int
	// Config tunes the underlying boosted trees.
	Config ml.GBMConfig

	// The training history is stored column-major — featCols[f] and
	// tgtCols[j] each list one dimension over all n observations — which
	// is exactly the layout MultiOutputGBM.FitCols trains on: a refit
	// reuses the accumulated columns as-is, with no per-fit transpose or
	// per-observation row copies. The feature width is fixed by the
	// space's bitmap, so every Observe appends one value per column.
	featCols [][]float64
	tgtCols  [][]float64
	n        int
	model    *ml.MultiOutputGBM
	sinceFit int
}

// NewMOGBM returns a surrogate with the defaults used in the paper's
// experiments (small, fast boosted trees).
func NewMOGBM() *MOGBM {
	return &MOGBM{
		MinObs:     12,
		RefitEvery: 8,
		Config: ml.GBMConfig{
			NumTrees:     40,
			MaxDepth:     3,
			LearningRate: 0.15,
			Seed:         7,
		},
	}
}

// Observe records an exactly valuated test for training.
func (e *MOGBM) Observe(features []float64, v skyline.Vector) {
	if e.featCols == nil {
		e.featCols = make([][]float64, len(features))
		e.tgtCols = make([][]float64, len(v))
	}
	if len(features) != len(e.featCols) || len(v) != len(e.tgtCols) {
		// A shape change would misalign the columns; one discovery
		// space never produces it, so drop the stray observation.
		return
	}
	for f, x := range features {
		e.featCols[f] = append(e.featCols[f], x)
	}
	for j, t := range v {
		e.tgtCols[j] = append(e.tgtCols[j], t)
	}
	e.n++
	e.sinceFit++
}

// NumObservations reports the training-set size.
func (e *MOGBM) NumObservations() int { return e.n }

// Estimate predicts the performance vector; ok=false until enough
// observations have accumulated. Refitting is lazy and incremental by
// observation count.
func (e *MOGBM) Estimate(features []float64) (skyline.Vector, bool) {
	minObs := e.MinObs
	if minObs <= 0 {
		minObs = 12
	}
	if e.n < minObs {
		return nil, false
	}
	refit := e.RefitEvery
	if refit <= 0 {
		refit = 8
	}
	if e.model == nil || e.sinceFit >= refit {
		m := &ml.MultiOutputGBM{Config: e.Config}
		m.FitCols(e.n, e.featCols, e.tgtCols)
		e.model = m
		e.sinceFit = 0
	}
	pred := e.model.Predict(features)
	return skyline.Vector(pred), true
}

// Exact is a no-op estimator: it never answers, forcing every valuation
// through real model inference. Used for ablations comparing surrogate
// versus exact discovery.
type Exact struct{}

// Estimate always reports not-ready.
func (Exact) Estimate([]float64) (skyline.Vector, bool) { return nil, false }

// Observe discards the observation.
func (Exact) Observe([]float64, skyline.Vector) {}
