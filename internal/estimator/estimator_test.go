package estimator

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/skyline"
)

func TestMOGBMNotReadyUntilMinObs(t *testing.T) {
	e := NewMOGBM()
	e.MinObs = 5
	for i := 0; i < 4; i++ {
		e.Observe([]float64{float64(i)}, skyline.Vector{0.5})
	}
	if _, ok := e.Estimate([]float64{1}); ok {
		t.Error("estimator should not answer before MinObs")
	}
	e.Observe([]float64{4}, skyline.Vector{0.5})
	if _, ok := e.Estimate([]float64{1}); !ok {
		t.Error("estimator should answer at MinObs")
	}
}

func TestMOGBMLearnsBitmapSignal(t *testing.T) {
	// Target vector is a simple function of the bitmap: p0 = mean(bits),
	// p1 = 1 - mean(bits). The surrogate should recover it.
	e := NewMOGBM()
	e.MinObs = 20
	rng := rand.New(rand.NewSource(1))
	dim := 10
	for i := 0; i < 120; i++ {
		feats := make([]float64, dim)
		s := 0.0
		for j := range feats {
			feats[j] = float64(rng.Intn(2))
			s += feats[j]
		}
		m := s / float64(dim)
		e.Observe(feats, skyline.Vector{m, 1 - m})
	}
	var errSum float64
	n := 40
	for i := 0; i < n; i++ {
		feats := make([]float64, dim)
		s := 0.0
		for j := range feats {
			feats[j] = float64(rng.Intn(2))
			s += feats[j]
		}
		m := s / float64(dim)
		pred, ok := e.Estimate(feats)
		if !ok {
			t.Fatal("estimator should be ready")
		}
		errSum += math.Abs(pred[0]-m) + math.Abs(pred[1]-(1-m))
	}
	avg := errSum / float64(2*n)
	if avg > 0.08 {
		t.Errorf("surrogate avg error = %v, want <= 0.08", avg)
	}
}

func TestMOGBMOutputDimension(t *testing.T) {
	e := NewMOGBM()
	e.MinObs = 2
	e.Observe([]float64{0}, skyline.Vector{0.1, 0.2, 0.3})
	e.Observe([]float64{1}, skyline.Vector{0.4, 0.5, 0.6})
	v, ok := e.Estimate([]float64{0.5})
	if !ok {
		t.Fatal("should be ready")
	}
	if len(v) != 3 {
		t.Errorf("output dim = %d, want 3", len(v))
	}
}

func TestMOGBMRefitPicksUpNewData(t *testing.T) {
	e := NewMOGBM()
	e.MinObs = 4
	e.RefitEvery = 4
	// First regime: constant 0.2.
	for i := 0; i < 4; i++ {
		e.Observe([]float64{float64(i)}, skyline.Vector{0.2})
	}
	v1, _ := e.Estimate([]float64{1})
	// Second regime: constant 0.8; after RefitEvery observations the
	// model must shift upward.
	for i := 0; i < 12; i++ {
		e.Observe([]float64{float64(i)}, skyline.Vector{0.8})
	}
	v2, _ := e.Estimate([]float64{1})
	if v2[0] <= v1[0] {
		t.Errorf("refit did not move estimate: %v -> %v", v1[0], v2[0])
	}
}

func TestExactNeverAnswers(t *testing.T) {
	var e Exact
	e.Observe([]float64{1}, skyline.Vector{0.5})
	if _, ok := e.Estimate([]float64{1}); ok {
		t.Error("Exact must never answer")
	}
}

// The column-major history must reproduce the estimates of the former
// row-major path exactly: a reference MultiOutputGBM fit on row-major
// copies of the same observations predicts identically.
func TestMOGBMColumnarMatchesRowMajorFit(t *testing.T) {
	e := NewMOGBM()
	e.MinObs = 16
	e.RefitEvery = 1000 // single fit below
	rng := rand.New(rand.NewSource(9))
	dim := 8
	var feats, targets [][]float64
	for i := 0; i < 40; i++ {
		f := make([]float64, dim)
		for j := range f {
			f[j] = float64(rng.Intn(2))
		}
		v := skyline.Vector{f[0] + f[1], f[2] * 0.5, 1 - f[3]}
		e.Observe(f, v)
		feats = append(feats, append([]float64(nil), f...))
		targets = append(targets, append([]float64(nil), v...))
	}
	ref := &ml.MultiOutputGBM{Config: e.Config}
	ref.Fit(feats, targets)
	for i := 0; i < 20; i++ {
		f := make([]float64, dim)
		for j := range f {
			f[j] = float64(rng.Intn(2))
		}
		got, ok := e.Estimate(f)
		if !ok {
			t.Fatal("estimator should be ready")
		}
		want := ref.Predict(f)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("estimate[%d] = %v, want %v", j, got[j], want[j])
			}
		}
	}
}

// A shape-changing observation is dropped rather than misaligning the
// column history.
func TestMOGBMObserveShapeGuard(t *testing.T) {
	e := NewMOGBM()
	e.Observe([]float64{1, 2}, skyline.Vector{0.5})
	e.Observe([]float64{1, 2, 3}, skyline.Vector{0.5})
	e.Observe([]float64{1, 2}, skyline.Vector{0.5, 0.7})
	if n := e.NumObservations(); n != 1 {
		t.Fatalf("observations = %d, want 1 (strays dropped)", n)
	}
}
