package exp

import (
	"context"
	"fmt"

	"repro/internal/baselines"
	"repro/internal/datagen"
	"repro/internal/skyline"
	"repro/modis"
)

// Case1 reproduces the first case study of Exp-4: "find data with
// models". A random-forest peak classifier (stand-in for the 2D X-ray
// material-science task) seeks datasets improving accuracy, training
// cost and F1 simultaneously; BiMODis' skyline is compared with METAM
// optimizing F1 alone.
func Case1(ctx context.Context) (*Report, error) {
	w := datagen.T2House(datagen.TaskConfig{Rows: 240, Seed: 77})
	rep := &Report{
		Title:  "Case study 1: discover datasets for peak classification (BiMODis skyline vs METAM)",
		Header: []string{"dataset", "pF1", "pAcc", "pTrain", "size(r,c)"},
	}

	orig, err := baselines.EvalTable(w, w.Lake.Universal)
	if err != nil {
		return nil, err
	}
	rep.RowsOut = append(rep.RowsOut, []string{"Original",
		fmt.Sprintf("%.4f", orig[0]), fmt.Sprintf("%.4f", orig[1]), fmt.Sprintf("%.4f", orig[2]),
		fmt.Sprintf("(%d,%d)", w.Lake.Universal.NumRows(), w.Lake.Universal.NumCols())})

	res, err := modis.NewEngine(w.NewConfig(true)).Run(ctx, "bi", modisOptions(MODisOptions())...)
	if err != nil {
		return nil, err
	}
	shown := 0
	for _, c := range res.Skyline {
		if shown >= 3 {
			break
		}
		out := w.Space.Materialize(c.Bits)
		perf, err := baselines.EvalTable(w, out)
		if err != nil {
			return nil, err
		}
		if perf[0] >= 1 {
			// Too small to train on: the surrogate admitted it, the
			// actual inference disqualifies it.
			continue
		}
		shown++
		rep.RowsOut = append(rep.RowsOut, []string{fmt.Sprintf("BiMODis D%d", shown),
			fmt.Sprintf("%.4f", perf[0]), fmt.Sprintf("%.4f", perf[1]), fmt.Sprintf("%.4f", perf[2]),
			fmt.Sprintf("(%d,%d)", out.NumRows(), out.NumCols())})
	}

	mo, err := baselines.METAM(w, 0) // optimize F1 alone
	if err != nil {
		return nil, err
	}
	rep.RowsOut = append(rep.RowsOut, []string{"METAM(F1)",
		fmt.Sprintf("%.4f", mo.Perf[0]), fmt.Sprintf("%.4f", mo.Perf[1]), fmt.Sprintf("%.4f", mo.Perf[2]),
		fmt.Sprintf("(%d,%d)", mo.Table.NumRows(), mo.Table.NumCols())})
	return rep, nil
}

// Case2 reproduces the second case study: generating test data for model
// benchmarking under explicit performance bounds ("accuracy > 0.85 and
// training cost < budget"). BiMODis is configured with the bounds as
// measure ranges; the report lists the generated candidate datasets.
func Case2(ctx context.Context) (*Report, error) {
	w := datagen.T4Mental(datagen.TaskConfig{Rows: 240, Seed: 88})
	// Bounds: normalized p_Acc = 1-acc must be <= 0.15 (acc > 0.85);
	// normalized training cost <= 0.5 of the universal-table cost.
	w.Measures[0].Bounds = skyline.Bounds{Lower: 1e-3, Upper: 0.15}
	w.Measures[5].Bounds = skyline.Bounds{Lower: 1e-3, Upper: 0.5}

	res, err := modis.NewEngine(w.NewConfig(true)).Run(ctx, "bi", modisOptions(MODisOptions())...)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Title:  "Case study 2: generate test data meeting acc>0.85, train<0.5×budget",
		Header: []string{"dataset", "pAcc", "pTrain", "withinBounds", "size(r,c)"},
	}
	count := 0
	for i, c := range res.Skyline {
		if count >= 3 {
			break
		}
		out := w.Space.Materialize(c.Bits)
		perf, err := baselines.EvalTable(w, out)
		if err != nil {
			return nil, err
		}
		within := perf[0] <= 0.15 && perf[5] <= 0.5
		rep.RowsOut = append(rep.RowsOut, []string{fmt.Sprintf("D%d", i+1),
			fmt.Sprintf("%.4f", perf[0]), fmt.Sprintf("%.4f", perf[5]),
			fmt.Sprintf("%v", within),
			fmt.Sprintf("(%d,%d)", out.NumRows(), out.NumCols())})
		count++
	}
	if len(rep.RowsOut) == 0 {
		rep.RowsOut = append(rep.RowsOut, []string{"(none)", "-", "-", "-", "-"})
	}
	return rep, nil
}
