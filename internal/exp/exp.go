// Package exp drives the reproduction of every table and figure of the
// MODis paper's evaluation (Section 6 and Appendix B). Each experiment
// returns printable rows so the same code backs the modisbench binary
// and the testing.B benchmarks in the repository root.
package exp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fst"
	"repro/internal/skyline"
	"repro/internal/table"
	"repro/modis"
)

// MethodResult is one method's outcome on a workload: the actual
// (inference-tested) normalized performance vector of its output table,
// the output size, and discovery wall time.
type MethodResult struct {
	Method  string
	Perf    skyline.Vector
	Rows    int
	Cols    int
	Elapsed time.Duration
	// SkylineSize is the ε-skyline cardinality (MODis methods only).
	SkylineSize int
	Valuated    int
}

// Report is a printable experiment result.
type Report struct {
	Title   string
	Header  []string
	RowsOut [][]string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.RowsOut {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.RowsOut {
		writeRow(row)
	}
	return b.String()
}

// DefaultParallelism is the valuation worker count every experiment
// run uses unless its options say otherwise: 1 (sequential) by
// default, settable by harness front-ends (cmd/modisbench -parallel; 0
// = all CPUs). Parallelism never changes results — only wall time.
var DefaultParallelism = 1

// MODisOptions are the default discovery knobs of the comparison
// experiments (ε = 0.1, maxl = 6, surrogate on, modest budget).
func MODisOptions() core.Options {
	return core.Options{N: 300, Eps: 0.1, MaxLevel: 6, Seed: 1}
}

// modisOptions bridges the experiment sweeps' core.Options literals
// (zero value = default, sentinel-encoded extremes) onto the public
// engine's functional options.
func modisOptions(o core.Options) []modis.Option {
	opts := []modis.Option{modis.WithSeed(o.Seed)}
	if o.N > 0 {
		opts = append(opts, modis.WithBudget(o.N))
	}
	if o.Eps > 0 {
		opts = append(opts, modis.WithEpsilon(o.Eps))
	}
	if o.MaxLevel > 0 {
		opts = append(opts, modis.WithMaxLevel(o.MaxLevel))
	}
	if o.K > 0 {
		opts = append(opts, modis.WithK(o.K))
	}
	switch {
	case o.Alpha == core.AlphaZero:
		opts = append(opts, modis.WithAlpha(0))
	case o.Alpha > 0:
		opts = append(opts, modis.WithAlpha(o.Alpha))
	}
	if o.Theta > 0 {
		opts = append(opts, modis.WithTheta(o.Theta))
	}
	if o.DisablePrune {
		opts = append(opts, modis.WithoutPruning())
	}
	switch {
	case o.Decisive == core.DecisiveFirst:
		opts = append(opts, modis.WithDecisive(0))
	case o.Decisive > 0:
		opts = append(opts, modis.WithDecisive(o.Decisive))
	}
	if o.RecordGraph {
		opts = append(opts, modis.WithRecordGraph())
	}
	par := o.Parallelism
	if par == 0 {
		par = DefaultParallelism
	}
	opts = append(opts, modis.WithParallelism(par))
	return opts
}

// runMODis executes one MODis algorithm through the public engine,
// materializes the skyline table with the best value on selectIdx (the
// paper selects by the task's first measure for cross-method
// comparison), and re-tests it with real model inference.
func runMODis(ctx context.Context, w *datagen.Workload, name, key string,
	opts core.Options, selectIdx int) (*MethodResult, error) {

	rep, err := modis.NewEngine(w.NewConfig(true)).Run(ctx, key, modisOptions(opts)...)
	if err != nil {
		return nil, fmt.Errorf("exp: %s on %s: %w", name, w.Name, err)
	}
	if len(rep.Skyline) == 0 {
		return nil, fmt.Errorf("exp: %s on %s: empty skyline", name, w.Name)
	}
	// The skyline is small; verify every member with real model
	// inference and report the one best on the selection measure, as the
	// paper does ("we apply model inference to all the output tables to
	// report actual performance values").
	var bestPerf skyline.Vector
	var bestRows, bestCols int
	for _, c := range rep.Skyline {
		out := w.Space.Materialize(c.Bits)
		perf, err := baselines.EvalTable(w, out)
		if err != nil {
			return nil, err
		}
		if bestPerf == nil || perf[selectIdx] < bestPerf[selectIdx] {
			bestPerf = perf
			bestRows, bestCols = out.NumRows(), out.NumCols()
		}
	}
	return &MethodResult{
		Method:      name,
		Perf:        bestPerf,
		Rows:        bestRows,
		Cols:        bestCols,
		Elapsed:     rep.Wall,
		SkylineSize: len(rep.Skyline),
		Valuated:    rep.Valuated,
	}, nil
}

// RunAllMethods evaluates Original, the baselines, and the four MODis
// algorithms on a workload, the setting of Tables 4-6.
func RunAllMethods(ctx context.Context, w *datagen.Workload, opts core.Options, selectIdx int) ([]*MethodResult, error) {
	var out []*MethodResult

	orig, err := baselines.EvalTable(w, w.Lake.Universal)
	if err != nil {
		return nil, err
	}
	out = append(out, &MethodResult{
		Method: "Original",
		Perf:   orig,
		Rows:   w.Lake.Universal.NumRows(),
		Cols:   w.Lake.Universal.NumCols(),
	})

	type bl struct {
		name string
		run  func() (*baselines.Output, error)
	}
	for _, b := range []bl{
		{"METAM", func() (*baselines.Output, error) { return baselines.METAM(w, selectIdx) }},
		{"METAM-MO", func() (*baselines.Output, error) { return baselines.METAMMO(w) }},
		{"Starmie", func() (*baselines.Output, error) { return baselines.Starmie(w, 0.25) }},
		{"SkSFM", func() (*baselines.Output, error) { return baselines.SkSFM(w) }},
		{"H2O", func() (*baselines.Output, error) { return baselines.H2O(w) }},
	} {
		start := time.Now()
		o, err := b.run()
		if err != nil {
			return nil, fmt.Errorf("exp: baseline %s: %w", b.name, err)
		}
		out = append(out, &MethodResult{
			Method:  b.name,
			Perf:    o.Perf,
			Rows:    o.Table.NumRows(),
			Cols:    o.Table.NumCols(),
			Elapsed: time.Since(start),
		})
	}

	for _, m := range modisMethods() {
		r, err := runMODis(ctx, w, m.name, m.key, opts, selectIdx)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// modisMethod pairs a display name with the engine registry key that
// runs it — the registry replaces the per-consumer function-pointer
// tables the binaries used to carry.
type modisMethod struct {
	name string
	key  string
}

func modisMethods() []modisMethod {
	return []modisMethod{
		{"ApxMODis", "apx"},
		{"NOBiMODis", "nobi"},
		{"BiMODis", "bi"},
		{"DivMODis", "div"},
	}
}

// RunMODisOnly evaluates just the four MODis algorithms (Table 5's
// setting for T5).
func RunMODisOnly(ctx context.Context, w *datagen.Workload, opts core.Options, selectIdx int) ([]*MethodResult, error) {
	orig, err := baselines.EvalTable(w, w.Lake.Universal)
	if err != nil {
		return nil, err
	}
	out := []*MethodResult{{
		Method: "Original",
		Perf:   orig,
		Rows:   w.Lake.Universal.NumRows(),
		Cols:   w.Lake.Universal.NumCols(),
	}}
	for _, m := range modisMethods() {
		r, err := runMODis(ctx, w, m.name, m.key, opts, selectIdx)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ComparisonReport lays out method results as the paper's comparison
// tables: one row per measure, one column per method, plus output size.
// Measures are reported in raw "higher is better" orientation where the
// paper does (accuracy-like), i.e. we print the normalized minimize
// values — smaller is better — to stay unambiguous.
func ComparisonReport(title string, w *datagen.Workload, results []*MethodResult) *Report {
	header := []string{"measure"}
	for _, r := range results {
		header = append(header, r.Method)
	}
	rep := &Report{Title: title, Header: header}
	for mi, m := range w.Measures {
		row := []string{m.Name}
		for _, r := range results {
			row = append(row, fmt.Sprintf("%.4f", r.Perf[mi]))
		}
		rep.RowsOut = append(rep.RowsOut, row)
	}
	sizeRow := []string{"size(r,c)"}
	timeRow := []string{"disc.time"}
	for _, r := range results {
		sizeRow = append(sizeRow, fmt.Sprintf("(%d,%d)", r.Rows, r.Cols))
		timeRow = append(timeRow, r.Elapsed.Round(time.Millisecond).String())
	}
	rep.RowsOut = append(rep.RowsOut, sizeRow, timeRow)
	return rep
}

// RImp computes the paper's relative improvement M(D_M).p / M(D_o).p for
// a measure index (both normalized to minimize, so larger is better).
func RImp(orig, out skyline.Vector, idx int) float64 {
	if idx >= len(orig) || idx >= len(out) {
		return 0
	}
	// Floor the denominator: saturated measures (normalization floor)
	// would otherwise explode the ratio into meaninglessness.
	den := out[idx]
	if den < 0.01 {
		den = 0.01
	}
	return orig[idx] / den
}

// BestOf returns the result with the smallest value on the measure.
func BestOf(results []*MethodResult, idx int) *MethodResult {
	var best *MethodResult
	for _, r := range results {
		if best == nil || r.Perf[idx] < best.Perf[idx] {
			best = r
		}
	}
	return best
}

// adomContribution computes, for a diversified skyline set, the share of
// surviving literal entries per attribute — the content-diversity
// heatmap of Fig. 9(b). It returns the per-attribute percentages sorted
// by attribute name and their standard deviation.
func adomContribution(w *datagen.Workload, cands []*modis.Candidate) (attrs []string, pct []float64, std float64) {
	perAttr := map[string]float64{}
	var total float64
	for _, c := range cands {
		c.Bits.ForEachSet(func(i int) {
			e := w.Space.Entries[i]
			if e.Kind != fst.EntryLiteral {
				return
			}
			perAttr[e.Attr]++
			total++
		})
	}
	for a := range perAttr {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	pct = make([]float64, len(attrs))
	var mean float64
	for i, a := range attrs {
		if total > 0 {
			pct[i] = perAttr[a] / total
		}
		mean += pct[i]
	}
	if len(pct) == 0 {
		return attrs, pct, 0
	}
	mean /= float64(len(pct))
	for _, p := range pct {
		std += (p - mean) * (p - mean)
	}
	std = math.Sqrt(std / float64(len(pct)))
	return attrs, pct, std
}

// outputSizeOf formats (rows, cols).
func outputSizeOf(t *table.Table) string {
	return fmt.Sprintf("(%d,%d)", t.NumRows(), t.NumCols())
}
