package exp

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fst"
	"repro/internal/skyline"
	"repro/modis"
)

func TestReportString(t *testing.T) {
	r := &Report{
		Title:  "demo",
		Header: []string{"a", "bb"},
		RowsOut: [][]string{
			{"x", "1"},
			{"longer", "2"},
		},
	}
	s := r.String()
	if !strings.Contains(s, "== demo ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	// Columns aligned: header 'a' padded to width of 'longer'.
	if !strings.HasPrefix(lines[1], "a     ") {
		t.Errorf("misaligned header: %q", lines[1])
	}
}

func TestRImp(t *testing.T) {
	orig := skyline.Vector{0.8, 0.4}
	out := skyline.Vector{0.4, 0.4}
	if got := RImp(orig, out, 0); got != 2 {
		t.Errorf("RImp = %v, want 2", got)
	}
	if got := RImp(orig, out, 5); got != 0 {
		t.Error("out-of-range index should yield 0")
	}
}

func TestBestOf(t *testing.T) {
	rs := []*MethodResult{
		{Method: "a", Perf: skyline.Vector{0.5}},
		{Method: "b", Perf: skyline.Vector{0.2}},
	}
	if BestOf(rs, 0).Method != "b" {
		t.Error("BestOf wrong")
	}
}

func TestAdomContribution(t *testing.T) {
	w := datagen.T1Movie(datagen.TaskConfig{Rows: 100})
	full := w.Space.FullBitmap()
	cands := []*modis.Candidate{{Bits: full, Perf: []float64{0.5, 0.5, 0.5, 0.5}}}
	attrs, pct, std := adomContribution(w, cands)
	if len(attrs) == 0 || len(pct) != len(attrs) {
		t.Fatal("no contributions computed")
	}
	var sum float64
	for _, p := range pct {
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("contributions sum to %v, want 1", sum)
	}
	if std < 0 {
		t.Error("negative std")
	}
}

func TestRunMODisOnlySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	w := datagen.T3Avocado(datagen.TaskConfig{Rows: 120})
	opts := core.Options{N: 60, Eps: 0.2, MaxLevel: 3, Seed: 1}
	rs, err := RunMODisOnly(context.Background(), w, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 { // Original + 4 MODis algorithms
		t.Fatalf("results = %d, want 5", len(rs))
	}
	rep := ComparisonReport("t", w, rs)
	// One row per measure + size + time.
	if len(rep.RowsOut) != len(w.Measures)+2 {
		t.Errorf("report rows = %d", len(rep.RowsOut))
	}
}

func TestRunAllMethodsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	w := datagen.T3Avocado(datagen.TaskConfig{Rows: 120})
	opts := core.Options{N: 60, Eps: 0.2, MaxLevel: 3, Seed: 1}
	rs, err := RunAllMethods(context.Background(), w, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 10 { // Original + 5 baselines + 4 MODis
		t.Fatalf("results = %d, want 10", len(rs))
	}
	for _, r := range rs {
		if len(r.Perf) != len(w.Measures) {
			t.Errorf("%s vector len %d", r.Method, len(r.Perf))
		}
	}
}

var _ = fst.Forward // keep the import for future expansions
