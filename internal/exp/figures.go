package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/modis"
)

// sweepOptions is the sweep budget: tighter than the comparison runs so
// the swept knob (ε, maxl) actually binds the search.
func sweepOptions() core.Options {
	o := MODisOptions()
	o.N = 150
	return o
}

// sweepMODis runs every MODis algorithm over a parameter sweep and
// reports rImp on the selected measure (quality sweeps) and wall time
// (efficiency sweeps).
func sweepMODis(ctx context.Context, w func() *datagen.Workload, optsFor func(i int) core.Options,
	labels []string, selectIdx int) (quality, timing [][]string, err error) {

	methods := modisMethods()
	quality = make([][]string, len(methods))
	timing = make([][]string, len(methods))
	for mi, m := range methods {
		quality[mi] = []string{m.name}
		timing[mi] = []string{m.name}
		for i := range labels {
			wl := w()
			orig, err := baselines.EvalTable(wl, wl.Lake.Universal)
			if err != nil {
				return nil, nil, err
			}
			rep, err := modis.NewEngine(wl.NewConfig(true)).Run(ctx, m.key, modisOptions(optsFor(i))...)
			if err != nil {
				return nil, nil, err
			}
			best := rep.Best(selectIdx)
			r := 0.0
			if best != nil {
				out := wl.Space.Materialize(best.Bits)
				perf, err := baselines.EvalTable(wl, out)
				if err != nil {
					return nil, nil, err
				}
				r = RImp(orig, perf, selectIdx)
			}
			quality[mi] = append(quality[mi], fmt.Sprintf("%.3f", r))
			timing[mi] = append(timing[mi], rep.Wall.Round(time.Millisecond).String())
		}
	}
	return quality, timing, nil
}

// Fig8Epsilon reproduces Fig 8(a, c): rImp of the selected accuracy
// measure as ε varies, maxl fixed at 6, for T1 and T2.
func Fig8Epsilon(ctx context.Context) ([]*Report, error) {
	var out []*Report
	type spec struct {
		name   string
		w      func() *datagen.Workload
		epsSet []float64
	}
	for _, s := range []spec{
		{"Figure 8(a): T1, rImp(pAcc) vs ε", func() *datagen.Workload { return datagen.T1Movie(defaultScale) }, []float64{0.5, 0.4, 0.3, 0.2, 0.1}},
		{"Figure 8(c): T2, rImp(pF1) vs ε", func() *datagen.Workload { return datagen.T2House(defaultScale) }, []float64{0.1, 0.08, 0.05, 0.02}},
	} {
		labels := make([]string, len(s.epsSet))
		for i, e := range s.epsSet {
			labels[i] = fmt.Sprintf("eps=%.2f", e)
		}
		q, _, err := sweepMODis(ctx, s.w, func(i int) core.Options {
			o := sweepOptions()
			o.Eps = s.epsSet[i]
			return o
		}, labels, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, &Report{Title: s.name, Header: append([]string{"method"}, labels...), RowsOut: q})
	}
	return out, nil
}

// Fig8MaxL reproduces Fig 8(b, d): rImp as maxl varies 2..6, ε = 0.1.
func Fig8MaxL(ctx context.Context) ([]*Report, error) {
	var out []*Report
	type spec struct {
		name string
		w    func() *datagen.Workload
	}
	maxls := []int{2, 3, 4, 5, 6}
	labels := make([]string, len(maxls))
	for i, l := range maxls {
		labels[i] = fmt.Sprintf("maxl=%d", l)
	}
	for _, s := range []spec{
		{"Figure 8(b): T1, rImp(pAcc) vs maxl", func() *datagen.Workload { return datagen.T1Movie(defaultScale) }},
		{"Figure 8(d): T2, rImp(pF1) vs maxl", func() *datagen.Workload { return datagen.T2House(defaultScale) }},
	} {
		q, _, err := sweepMODis(ctx, s.w, func(i int) core.Options {
			o := sweepOptions()
			o.Eps = 0.1
			o.MaxLevel = maxls[i]
			return o
		}, labels, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, &Report{Title: s.name, Header: append([]string{"method"}, labels...), RowsOut: q})
	}
	return out, nil
}

// Fig9Alpha reproduces Fig 9: DivMODis under varying α — performance
// diversity (accuracy spread over the skyline) and content diversity
// (per-attribute adom contribution std; smaller means more even).
func Fig9Alpha(ctx context.Context) (*Report, error) {
	alphas := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	rep := &Report{
		Title:  "Figure 9: DivMODis vs α — accuracy spread and adom-contribution std",
		Header: []string{"alpha", "accMin", "accMax", "accSpread", "adomStd", "k"},
	}
	for _, a := range alphas {
		w := datagen.T1Movie(defaultScale)
		opts := MODisOptions()
		opts.K = 3
		opts.Eps = 0.05 // finer grid: more cells, so diversification binds
		opts.Alpha = a
		rep9, err := modis.NewEngine(w.NewConfig(true)).Run(ctx, "div", modisOptions(opts)...)
		if err != nil {
			return nil, err
		}
		lo, hi := 1.0, 0.0
		for _, c := range rep9.Skyline {
			v := c.Perf[0]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		_, _, std := adomContribution(w, rep9.Skyline)
		rep.RowsOut = append(rep.RowsOut, []string{
			fmt.Sprintf("%.1f", a),
			fmt.Sprintf("%.4f", lo),
			fmt.Sprintf("%.4f", hi),
			fmt.Sprintf("%.4f", hi-lo),
			fmt.Sprintf("%.4f", std),
			fmt.Sprintf("%d", len(rep9.Skyline)),
		})
	}
	return rep, nil
}

// Fig10Efficiency reproduces Fig 10(a, b): wall time of the MODis
// algorithms as ε (T1, maxl=6) and maxl (T1 ε=0.2, T3 ε=0.1) vary.
func Fig10Efficiency(ctx context.Context) ([]*Report, error) {
	var out []*Report

	epsSet := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	labels := make([]string, len(epsSet))
	for i, e := range epsSet {
		labels[i] = fmt.Sprintf("eps=%.1f", e)
	}
	_, tim, err := sweepMODis(ctx, func() *datagen.Workload { return datagen.T1Movie(defaultScale) },
		func(i int) core.Options {
			o := sweepOptions()
			o.Eps = epsSet[i]
			return o
		}, labels, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, &Report{Title: "Figure 10(a): T1 discovery time vs ε", Header: append([]string{"method"}, labels...), RowsOut: tim})

	maxls := []int{2, 3, 4, 5, 6}
	mlabels := make([]string, len(maxls))
	for i, l := range maxls {
		mlabels[i] = fmt.Sprintf("maxl=%d", l)
	}
	type spec struct {
		name string
		w    func() *datagen.Workload
		eps  float64
	}
	for _, s := range []spec{
		{"Figure 10(b): T1 discovery time vs maxl (ε=0.2)", func() *datagen.Workload { return datagen.T1Movie(defaultScale) }, 0.2},
		{"Figure 13(d): T3 discovery time vs maxl (ε=0.1)", func() *datagen.Workload { return datagen.T3Avocado(defaultScale) }, 0.1},
	} {
		_, tim, err := sweepMODis(ctx, s.w, func(i int) core.Options {
			o := sweepOptions()
			o.Eps = s.eps
			o.MaxLevel = maxls[i]
			return o
		}, mlabels, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, &Report{Title: s.name, Header: append([]string{"method"}, mlabels...), RowsOut: tim})
	}
	return out, nil
}

// Fig10Scalability reproduces Fig 10(c, d): wall time as the number of
// attributes |A| and the largest active domain |adom| grow (T1).
func Fig10Scalability(ctx context.Context) ([]*Report, error) {
	var out []*Report

	attrCounts := []int{4, 6, 8, 10}
	labels := make([]string, len(attrCounts))
	for i, a := range attrCounts {
		labels[i] = fmt.Sprintf("|A|=%d", a+5) // info attrs + fixed columns
	}
	_, tim, err := sweepMODisVariants(ctx, func(i int) *datagen.Workload {
		return datagen.T1Movie(datagen.TaskConfig{Rows: 200, InfoAttrs: attrCounts[i], NoiseAttrs: 3})
	}, func(int) core.Options { return MODisOptions() }, labels, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, &Report{Title: "Figure 10(c): T1 discovery time vs |A|", Header: append([]string{"method"}, labels...), RowsOut: tim})

	adomKs := []int{2, 3, 4, 5}
	klabels := make([]string, len(adomKs))
	for i, k := range adomKs {
		klabels[i] = fmt.Sprintf("|adom|=%d", k)
	}
	_, tim, err = sweepMODisVariants(ctx, func(i int) *datagen.Workload {
		return datagen.T1Movie(datagen.TaskConfig{Rows: 200, AdomK: adomKs[i]})
	}, func(int) core.Options { return MODisOptions() }, klabels, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, &Report{Title: "Figure 10(d): T1 discovery time vs |adom|", Header: append([]string{"method"}, klabels...), RowsOut: tim})
	return out, nil
}

// sweepMODisVariants is sweepMODis where the workload itself varies per
// sweep point (scalability experiments).
func sweepMODisVariants(ctx context.Context, wFor func(i int) *datagen.Workload, optsFor func(i int) core.Options,
	labels []string, selectIdx int) (quality, timing [][]string, err error) {

	methods := modisMethods()
	quality = make([][]string, len(methods))
	timing = make([][]string, len(methods))
	for mi, m := range methods {
		quality[mi] = []string{m.name}
		timing[mi] = []string{m.name}
		for i := range labels {
			wl := wFor(i)
			rep, err := modis.NewEngine(wl.NewConfig(true)).Run(ctx, m.key, modisOptions(optsFor(i))...)
			if err != nil {
				return nil, nil, err
			}
			quality[mi] = append(quality[mi], fmt.Sprintf("%d", len(rep.Skyline)))
			timing[mi] = append(timing[mi], rep.Wall.Round(time.Millisecond).String())
		}
	}
	return quality, timing, nil
}

// Fig13T5 reproduces Fig 13(a, b): efficiency of the MODis algorithms on
// the graph workload T5, varying ε and maxl.
func Fig13T5(ctx context.Context) ([]*Report, error) {
	var out []*Report
	epsSet := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	labels := make([]string, len(epsSet))
	for i, e := range epsSet {
		labels[i] = fmt.Sprintf("eps=%.1f", e)
	}
	_, tim, err := sweepMODisVariants(ctx, func(int) *datagen.Workload { return datagen.T5Link(datagen.T5Config{}) },
		func(i int) core.Options {
			o := sweepOptions()
			o.Eps = epsSet[i]
			return o
		}, labels, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, &Report{Title: "Figure 13(a): T5 discovery time vs ε", Header: append([]string{"method"}, labels...), RowsOut: tim})

	maxls := []int{2, 3, 4, 5, 6}
	mlabels := make([]string, len(maxls))
	for i, l := range maxls {
		mlabels[i] = fmt.Sprintf("maxl=%d", l)
	}
	_, tim, err = sweepMODisVariants(ctx, func(int) *datagen.Workload { return datagen.T5Link(datagen.T5Config{}) },
		func(i int) core.Options {
			o := sweepOptions()
			o.MaxLevel = maxls[i]
			return o
		}, mlabels, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, &Report{Title: "Figure 13(b): T5 discovery time vs maxl", Header: append([]string{"method"}, mlabels...), RowsOut: tim})
	return out, nil
}

// Fig14T5 reproduces Fig 14: scalability of the MODis algorithms on T5,
// varying the node-feature dimensionality (via user/item counts) and the
// edge-cluster count |adom|.
func Fig14T5(ctx context.Context) ([]*Report, error) {
	var out []*Report

	sizes := []int{24, 32, 40, 48}
	labels := make([]string, len(sizes))
	for i, s := range sizes {
		labels[i] = fmt.Sprintf("|V|=%d", 2*s)
	}
	_, tim, err := sweepMODisVariants(ctx, func(i int) *datagen.Workload {
		return datagen.T5Link(datagen.T5Config{Users: sizes[i], Items: sizes[i]})
	}, func(int) core.Options { return MODisOptions() }, labels, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, &Report{Title: "Figure 14(a): T5 discovery time vs graph size", Header: append([]string{"method"}, labels...), RowsOut: tim})

	ks := []int{3, 5, 7, 9}
	klabels := make([]string, len(ks))
	for i, k := range ks {
		klabels[i] = fmt.Sprintf("|adom|=%d", k)
	}
	_, tim, err = sweepMODisVariants(ctx, func(i int) *datagen.Workload {
		return datagen.T5Link(datagen.T5Config{AdomK: ks[i]})
	}, func(int) core.Options { return MODisOptions() }, klabels, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, &Report{Title: "Figure 14(b): T5 discovery time vs |adom|", Header: append([]string{"method"}, klabels...), RowsOut: tim})
	return out, nil
}

// Fig15T5 reproduces Fig 15: sensitivity of T5 accuracy improvement (%
// change of p_Pc5 against the original) to maxl and ε.
func Fig15T5(ctx context.Context) ([]*Report, error) {
	var out []*Report

	maxls := []int{2, 3, 4, 5, 6}
	labels := make([]string, len(maxls))
	for i, l := range maxls {
		labels[i] = fmt.Sprintf("maxl=%d", l)
	}
	q, _, err := sweepMODis(ctx, func() *datagen.Workload { return datagen.T5Link(datagen.T5Config{}) },
		func(i int) core.Options {
			o := sweepOptions()
			o.MaxLevel = maxls[i]
			return o
		}, labels, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, &Report{Title: "Figure 15(a): T5 rImp(pPc5) vs maxl", Header: append([]string{"method"}, labels...), RowsOut: q})

	epsSet := []float64{0.5, 0.4, 0.3, 0.2, 0.1}
	elabels := make([]string, len(epsSet))
	for i, e := range epsSet {
		elabels[i] = fmt.Sprintf("eps=%.1f", e)
	}
	q, _, err = sweepMODis(ctx, func() *datagen.Workload { return datagen.T5Link(datagen.T5Config{}) },
		func(i int) core.Options {
			o := sweepOptions()
			o.Eps = epsSet[i]
			return o
		}, elabels, 0)
	if err != nil {
		return nil, err
	}
	out = append(out, &Report{Title: "Figure 15(b): T5 rImp(pPc5) vs ε", Header: append([]string{"method"}, elabels...), RowsOut: q})
	return out, nil
}
