package exp

import (
	"context"

	"repro/internal/datagen"
)

// defaultScale is the row scale of the comparison experiments; benches
// may pass larger TaskConfigs for scalability runs.
var defaultScale = datagen.TaskConfig{Rows: 220}

// Table4T2 reproduces Table 4 (upper half): all methods on task T2
// (house price classification, RF), measures P2.
func Table4T2(ctx context.Context) (*Report, error) {
	w := datagen.T2House(defaultScale)
	rs, err := RunAllMethods(ctx, w, MODisOptions(), 0) // select by p_F1
	if err != nil {
		return nil, err
	}
	return ComparisonReport("Table 4 (T2: House) — normalized measures, smaller is better", w, rs), nil
}

// Table4T4 reproduces Table 4 (lower half): all methods on task T4
// (mental health classification, histogram GBDT), measures P4.
func Table4T4(ctx context.Context) (*Report, error) {
	w := datagen.T4Mental(defaultScale)
	rs, err := RunAllMethods(ctx, w, MODisOptions(), 0) // select by p_Acc
	if err != nil {
		return nil, err
	}
	return ComparisonReport("Table 4 (T4: Mental) — normalized measures, smaller is better", w, rs), nil
}

// Table5T5 reproduces Table 5: the MODis methods on task T5 (link
// regression for recommendation, LightGCN-style scorer), measures P5.
func Table5T5(ctx context.Context) (*Report, error) {
	w := datagen.T5Link(datagen.T5Config{})
	rs, err := RunMODisOnly(ctx, w, MODisOptions(), 0) // select by p_Pc5
	if err != nil {
		return nil, err
	}
	return ComparisonReport("Table 5 (T5: Link Regression) — normalized measures, smaller is better", w, rs), nil
}

// Table6T1 reproduces Table 6 (upper half): all methods on task T1
// (movie gross regression, GBM), measures P1.
func Table6T1(ctx context.Context) (*Report, error) {
	w := datagen.T1Movie(defaultScale)
	rs, err := RunAllMethods(ctx, w, MODisOptions(), 0) // select by p_Acc
	if err != nil {
		return nil, err
	}
	return ComparisonReport("Table 6 (T1: Movie) — normalized measures, smaller is better", w, rs), nil
}

// Table6T3 reproduces Table 6 (lower half): all methods on task T3
// (avocado price regression, linear model), measures P3.
func Table6T3(ctx context.Context) (*Report, error) {
	w := datagen.T3Avocado(defaultScale)
	rs, err := RunAllMethods(ctx, w, MODisOptions(), 0) // select by p_MSE
	if err != nil {
		return nil, err
	}
	return ComparisonReport("Table 6 (T3: Avocado) — normalized measures, smaller is better", w, rs), nil
}

// Fig7 reproduces Figure 7: the per-measure effectiveness radar for T1
// and T3 — emitted as the same comparison series (one axis per row).
func Fig7(ctx context.Context) ([]*Report, error) {
	t1, err := Table6T1(ctx)
	if err != nil {
		return nil, err
	}
	t1.Title = "Figure 7 (left, T1: Movie) — radar series, smaller is better"
	t3, err := Table6T3(ctx)
	if err != nil {
		return nil, err
	}
	t3.Title = "Figure 7 (right, T3: Avocado) — radar series, smaller is better"
	return []*Report{t1, t3}, nil
}
