package fst

import (
	"fmt"

	"repro/internal/table"
)

// This file is the streaming side of the space lifecycle: rows arrive
// after construction, every frozen structure — the universal table,
// the column source's matrix, the per-literal row bitmaps — is
// extended in place, and the version counter advances so the memo
// (TestSet) can invalidate exactly the states whose selected row set
// the new tuples changed. The entry layout (Entries, attrEntry,
// litEntries) is frozen forever: appended rows never add literal
// clusters, so every StateKey keeps meaning the same state and the
// Zobrist keys never need rehashing. The determinism contract: a run
// after Append is byte-identical to a cold run over the concatenated
// table through a space sharing the same entry layout (Rebuild).
//
// Append must not race runs. The serving layer enforces that with a
// per-shard drain gate (modis/serve); library users sequence Append
// between Engine runs themselves.

// AppendableColumns is the optional delta interface of a ColumnSource:
// sources that can extend their decoded columns in place (the ML
// encoder's matrix) implement it, and Space.Append calls it before
// touching any space structure — a source that rejects the rows (e.g.
// a string value outside its frozen domain) aborts the append with
// nothing mutated.
type AppendableColumns interface {
	ColumnSource
	AppendRows(rows []table.Row) error
}

// Version returns the space's current table version: the number of
// committed Append batches since construction.
func (sp *Space) Version() uint64 { return sp.version }

// RowsAtVersion returns the universal row count as of version v
// (clamped to the current row count for future versions).
func (sp *Space) RowsAtVersion(v uint64) int {
	if int(v) < len(sp.verRows) {
		return sp.verRows[v]
	}
	return len(sp.Universal.Rows)
}

// Append commits a batch of rows to the universal table and advances
// the table version, extending every already-built structure in place:
// the column source's decoded columns (when it implements
// AppendableColumns), the per-literal removed-row bitmaps of the row
// index, and the version→row-count history. The entry layout is
// untouched — new rows match the existing literals or none. It
// returns the new version.
//
// Append is not safe against concurrent runs: callers must quiesce
// Materialize/RowsFor/valuation traffic first (the serving layer's
// drain gate does). An error leaves the space unmutated.
func (sp *Space) Append(rows []table.Row) (uint64, error) {
	if len(rows) == 0 {
		return sp.version, fmt.Errorf("fst: append requires at least one row")
	}
	width := len(sp.Universal.Schema)
	for ri, r := range rows {
		if len(r) != width {
			return sp.version, fmt.Errorf("fst: append row %d has %d cells, schema has %d", ri, len(r), width)
		}
	}
	// The column source validates and extends first: its frozen string
	// domains are the one thing an append can violate, and rejecting
	// here leaves the universal table and row index untouched.
	if ac, ok := sp.colSrc.(AppendableColumns); ok {
		if err := ac.AppendRows(rows); err != nil {
			return sp.version, err
		}
	}
	old := len(sp.Universal.Rows)
	if len(sp.verRows) == 0 {
		sp.verRows = append(sp.verRows, old)
	}
	for _, r := range rows {
		sp.Universal.MustAppend(r)
	}
	if sp.idx != nil {
		sp.extendRowIndex(old)
	}
	sp.version++
	sp.verRows = append(sp.verRows, len(sp.Universal.Rows))
	return sp.version, nil
}

// extendRowIndex grows the built row index to the universal table's
// new row count and matches only the appended rows [oldRows, len)
// against each attribute's literals — the delta pass of buildRowIndex,
// sharing its column fast path and cell-compare fallback.
func (sp *Space) extendRowIndex(oldRows int) {
	ix := sp.idx
	newRows := len(sp.Universal.Rows)
	words := (newRows + wordBits - 1) / wordBits
	for i := range ix.litRows {
		if ix.litRows[i] == nil || len(ix.litRows[i]) >= words {
			continue
		}
		grown := make([]uint64, words)
		copy(grown, ix.litRows[i])
		ix.litRows[i] = grown
	}
	ix.words = words
	ix.rows = newRows
	for _, entries := range sp.litEntries {
		if len(entries) == 0 {
			continue
		}
		if sp.indexAttrColumns(ix, entries, oldRows) {
			continue
		}
		sp.indexAttrScan(ix, entries, oldRows)
	}
}

// SelectionUnchanged reports whether a state's selected row set is
// unaffected by every row appended at or after universal row index
// fromRow: true iff each such row is removed by at least one of the
// state's cleared literals. The state is given as its feature vector
// (Bitmap.Floats — 1.0 set, 0.0 cleared, aligned with Entries), which
// is exactly what the memo records per test, so replayed WAL entries
// can be validated without reconstructing bitmaps. Cleared attribute
// entries don't matter here: masking a column never removes a row, so
// a surviving appended row changes the state's dataset regardless of
// masks. A feature vector of the wrong width is reported changed.
func (sp *Space) SelectionUnchanged(feats []float64, fromRow int) bool {
	if len(feats) != len(sp.Entries) {
		return false
	}
	sp.idxOnce.Do(sp.buildRowIndex)
	ix := sp.idx
	if fromRow >= ix.rows {
		return true
	}
	var cleared []int
	for i, f := range feats {
		if f < 0.5 && sp.Entries[i].Kind == EntryLiteral {
			cleared = append(cleared, i)
		}
	}
	fw, lw := fromRow/wordBits, (ix.rows-1)/wordBits
	for wi := fw; wi <= lw; wi++ {
		need := ix.liveMask(wi)
		if wi == fw {
			need &^= 1<<(uint(fromRow)%wordBits) - 1
		}
		if need == 0 {
			continue
		}
		var removed uint64
		for _, i := range cleared {
			removed |= ix.litRows[i][wi]
		}
		if need&^removed != 0 {
			return false
		}
	}
	return true
}

// Rebuild returns a cold space over u with this space's exact entry
// layout — the reference constructor of the streaming determinism
// contract: a space that Append-ed its way to the concatenated table
// must behave byte-identically to Rebuild over that table built from
// scratch (fresh row index, fresh column decode). NewSpace is not
// that reference: it re-derives literal clusters, which appended rows
// would shift. The immutable layout (Entries, entry maps, UDFs) is
// shared; all lazily-built state starts empty. The caller wires a
// fresh column source (SetColumnSource) if it wants the column fast
// path.
func (sp *Space) Rebuild(u *table.Table) *Space {
	return &Space{
		Universal:  u,
		Target:     sp.Target,
		Entries:    sp.Entries,
		attrEntry:  sp.attrEntry,
		litEntries: sp.litEntries,
		udfs:       sp.udfs,
	}
}

// Append commits rows through the configuration: the space extends
// its structures and bumps the table version, then the memo advances
// to that version, dropping exactly the tests whose selected row set
// the new tuples changed (SelectionUnchanged) and carrying every
// other valuation forward. It returns the new version and the number
// of memoized valuations invalidated. Like Space.Append, it must not
// race in-flight runs.
func (c *Config) Append(rows []table.Row) (version uint64, invalidated int, err error) {
	from := len(c.Space.Universal.Rows)
	version, err = c.Space.Append(rows)
	if err != nil {
		return version, 0, err
	}
	if c.Tests == nil {
		return version, 0, nil
	}
	invalidated = c.Tests.AdvanceTo(version, func(t *Test) bool {
		return c.Space.SelectionUnchanged(t.Features, from)
	})
	return version, invalidated, nil
}
