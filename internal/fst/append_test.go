package fst

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/skyline"
	"repro/internal/table"
)

// appendUniversal builds a small universal table with enough value
// structure for literal clusters on both attributes.
func appendUniversal(rows int) *table.Table {
	u := table.New("D_U", table.Schema{
		{Name: "a", Kind: table.KindFloat},
		{Name: "b", Kind: table.KindFloat},
		{Name: "target", Kind: table.KindInt},
	})
	for i := 0; i < rows; i++ {
		u.MustAppend(appendRow(i))
	}
	return u
}

// appendRow synthesizes row i of the appendUniversal value pattern —
// used both to seed tables and to generate streamed batches, so
// appended rows always land inside the frozen literal clusters' value
// range (the interesting case: they survive or die per literal, not
// uniformly).
func appendRow(i int) table.Row {
	return table.Row{
		table.Float(float64(i % 5)),
		table.Float(float64(i % 7)),
		table.Int(int64(i % 2)),
	}
}

func newAppendSpace(rows int) *Space {
	return NewSpace(appendUniversal(rows), "target", SpaceConfig{MaxLiteralsPerAttr: 3})
}

func TestAppendVersionHistory(t *testing.T) {
	sp := newAppendSpace(20)
	if sp.Version() != 0 {
		t.Fatalf("cold version = %d, want 0", sp.Version())
	}
	if got := sp.RowsAtVersion(0); got != 20 {
		t.Fatalf("RowsAtVersion(0) = %d, want 20", got)
	}
	sizes := []int{1, 3, 2}
	next := 20
	for bi, n := range sizes {
		var batch []table.Row
		for i := 0; i < n; i++ {
			batch = append(batch, appendRow(next+i))
		}
		next += n
		v, err := sp.Append(batch)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(bi+1) {
			t.Fatalf("batch %d: version = %d, want %d", bi, v, bi+1)
		}
	}
	// The version→row-count history replays exactly.
	wantRows := []int{20, 21, 24, 26}
	for v, want := range wantRows {
		if got := sp.RowsAtVersion(uint64(v)); got != want {
			t.Errorf("RowsAtVersion(%d) = %d, want %d", v, got, want)
		}
	}
	// Future versions clamp to the current row count.
	if got := sp.RowsAtVersion(99); got != 26 {
		t.Errorf("RowsAtVersion(future) = %d, want 26", got)
	}
}

func TestAppendRejectsBadBatches(t *testing.T) {
	sp := newAppendSpace(12)
	if _, err := sp.Append(nil); err == nil {
		t.Error("empty batch must be rejected")
	}
	short := table.Row{table.Float(1)}
	if _, err := sp.Append([]table.Row{short}); err == nil {
		t.Error("arity mismatch must be rejected")
	}
	if sp.Version() != 0 || len(sp.Universal.Rows) != 12 {
		t.Error("rejected append mutated the space")
	}
}

// The incremental row index after Append answers row selection
// bit-identically to a cold index built over the concatenated table
// through Rebuild — for every state, across random batch sequences,
// whether the index existed before the append or not.
func TestAppendRowIndexMatchesRebuild(t *testing.T) {
	for _, preBuild := range []bool{true, false} {
		name := "index-built-before-append"
		if !preBuild {
			name = "index-built-after-append"
		}
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				rng := rand.New(rand.NewSource(seed))
				sp := newAppendSpace(20)
				if preBuild {
					// Force the index (and its word layout) to exist before
					// any row arrives, so Append exercises the extend path.
					v, _ := sp.RowsFor(sp.FullBitmap())
					sp.ReleaseRows(v)
				}
				next := 20
				var all []table.Row
				for b := 0; b < 1+rng.Intn(4); b++ {
					var batch []table.Row
					for i := 0; i < 1+rng.Intn(70); i++ {
						batch = append(batch, appendRow(next))
						next++
					}
					all = append(all, batch...)
					if _, err := sp.Append(batch); err != nil {
						t.Fatal(err)
					}
				}
				u2, err := table.Concat("D_U", appendUniversal(20), all)
				if err != nil {
					t.Fatal(err)
				}
				cold := sp.Rebuild(u2)
				for trial := 0; trial < 40; trial++ {
					bits := sp.FullBitmap()
					for i := range sp.Entries {
						if rng.Intn(3) == 0 {
							bits.Clear(i)
						}
					}
					got, ok1 := sp.RowsFor(bits)
					want, ok2 := cold.RowsFor(bits)
					if !ok1 || !ok2 {
						t.Fatal("RowsFor declined a UDF-free space")
					}
					if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) ||
						fmt.Sprint(got.Masked) != fmt.Sprint(want.Masked) {
						t.Fatalf("seed %d state %s: incremental rows %v vs cold %v",
							seed, bits, got.Rows, want.Rows)
					}
					sp.ReleaseRows(got)
					cold.ReleaseRows(want)
				}
			}
		})
	}
}

// SelectionUnchanged agrees with the ground truth computed from the
// row sets themselves: a state's selection is unchanged exactly when
// no appended row survives its cleared literals.
func TestSelectionUnchangedMatchesRowSets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sp := newAppendSpace(30)
	from := 30
	var batch []table.Row
	for i := 0; i < 9; i++ {
		batch = append(batch, appendRow(from+i))
	}
	if _, err := sp.Append(batch); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 120; trial++ {
		bits := sp.FullBitmap()
		for i := range sp.Entries {
			if rng.Intn(3) == 0 {
				bits.Clear(i)
			}
		}
		v, ok := sp.RowsFor(bits)
		if !ok {
			t.Fatal("RowsFor declined")
		}
		truth := true
		for _, r := range v.Rows {
			if r >= from {
				truth = false
				break
			}
		}
		sp.ReleaseRows(v)
		if got := sp.SelectionUnchanged(bits.Floats(), from); got != truth {
			t.Fatalf("state %s: SelectionUnchanged = %v, row sets say %v", bits, got, truth)
		}
	}
	// A feature vector of the wrong width is conservatively "changed".
	if sp.SelectionUnchanged([]float64{1, 0}, from) {
		t.Error("wrong-width feature vector must report changed")
	}
	// fromRow at or past the row count means no appended rows at all.
	if !sp.SelectionUnchanged(sp.FullBitmap().Floats(), len(sp.Universal.Rows)) {
		t.Error("append of nothing must leave every selection unchanged")
	}
}

func putTest(ts *TestSet, key StateKey, feats []float64) *Test {
	return ts.Put(&Test{Key: key, Perf: skyline.Vector{1}, Features: feats})
}

func TestTestSetAdvanceTo(t *testing.T) {
	ts := NewTestSet()
	kept := putTest(ts, StateKey(1), []float64{1, 1})
	dropped := putTest(ts, StateKey(2), []float64{1, 0})
	if kept.Version != 0 || dropped.Version != 0 {
		t.Fatalf("cold puts stamped versions %d/%d, want 0", kept.Version, dropped.Version)
	}
	inv := ts.AdvanceTo(1, func(tt *Test) bool { return tt.Features[1] == 1 })
	if inv != 1 {
		t.Fatalf("invalidated = %d, want 1", inv)
	}
	if ts.Version() != 1 {
		t.Fatalf("version = %d, want 1", ts.Version())
	}
	if _, ok := ts.Get(StateKey(2)); ok {
		t.Error("invalidated test still answers Get")
	}
	got, ok := ts.Get(StateKey(1))
	if !ok || got.Version != 1 {
		t.Fatalf("surviving test = %+v ok=%v, want version re-stamped to 1", got, ok)
	}
	// The valuation order drops invalidated tests too.
	for _, tt := range ts.All() {
		if tt.Key == StateKey(2) {
			t.Error("invalidated test still in the valuation order")
		}
	}
	// New valuations are stamped with the advanced version.
	fresh, computed, err := ts.GetOrCompute(context.Background(), StateKey(3), func() (*Test, error) {
		return &Test{Key: StateKey(3), Perf: skyline.Vector{2}}, nil
	})
	if err != nil || !computed || fresh.Version != 1 {
		t.Fatalf("fresh valuation = %+v computed=%v err=%v, want version 1", fresh, computed, err)
	}
}

func TestAdvanceToRejectsRegress(t *testing.T) {
	ts := NewTestSet()
	ts.AdvanceTo(3, func(*Test) bool { return true })
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo to an older version must panic")
		}
	}()
	ts.AdvanceTo(2, func(*Test) bool { return true })
}

// Config.Append wires the pieces: the space advances, and the memo
// drops exactly the tests whose selected row set changed.
func TestConfigAppendInvalidatesPrecisely(t *testing.T) {
	sp := newAppendSpace(25)
	cfg := &Config{Space: sp, Tests: NewTestSet()}
	rng := rand.New(rand.NewSource(3))

	// Memoize a population of states with their true feature vectors.
	type rec struct {
		key  StateKey
		bits Bitmap
	}
	var states []rec
	for trial := 0; trial < 60; trial++ {
		bits := sp.FullBitmap()
		for i := range sp.Entries {
			if rng.Intn(3) == 0 {
				bits.Clear(i)
			}
		}
		if _, ok := cfg.Tests.Get(bits.Key()); ok {
			continue
		}
		putTest(cfg.Tests, bits.Key(), bits.Floats())
		states = append(states, rec{key: bits.Key(), bits: bits})
	}

	before := map[StateKey][]int{}
	for _, st := range states {
		v, _ := sp.RowsFor(st.bits)
		before[st.key] = append([]int(nil), v.Rows...)
		sp.ReleaseRows(v)
	}

	// All batch rows share the value point a=4, which is one of the
	// derived literal values: states clearing that literal remove every
	// batch row — their valuations must survive — while every other
	// state gains rows and must be dropped.
	var batch []table.Row
	for i := 0; i < 6; i++ {
		batch = append(batch, appendRow(4))
	}
	version, invalidated, err := cfg.Append(batch)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 || cfg.Tests.Version() != 1 {
		t.Fatalf("version = %d / memo %d, want 1", version, cfg.Tests.Version())
	}

	wantInvalid := 0
	for _, st := range states {
		v, _ := sp.RowsFor(st.bits)
		changed := fmt.Sprint(v.Rows) != fmt.Sprint(before[st.key])
		sp.ReleaseRows(v)
		_, alive := cfg.Tests.Get(st.key)
		if changed {
			wantInvalid++
			if alive {
				t.Errorf("state %s: rows changed but valuation survived", st.bits)
			}
		} else if !alive {
			t.Errorf("state %s: rows unchanged but valuation dropped", st.bits)
		}
	}
	if invalidated != wantInvalid {
		t.Errorf("invalidated = %d, want %d", invalidated, wantInvalid)
	}
	if wantInvalid == 0 || wantInvalid == len(states) {
		t.Fatalf("degenerate batch: %d of %d states invalidated — the test needs both outcomes",
			wantInvalid, len(states))
	}
}
