package fst

import (
	"math/bits"
	"strings"
)

// StateKey is the 64-bit identity of a state bitmap, used for dedup,
// memoization, and running-graph node identity. It is a Zobrist hash of
// the set entries: each entry index contributes a fixed pseudo-random
// word, XORed together, so single-bit flips update the key in O(1) and
// any two bitmaps differing in one entry always have distinct keys.
//
// Identity is probabilistic for bitmaps differing in two or more
// entries: unlike the seed's lossless packed-string key, two distinct
// states can in principle collide and be treated as one (memoization
// returns the other's vector, visited maps skip the state). By the
// birthday bound the probability is ~n²/2⁶⁵ — about 5e-8 for a run
// valuating a million states — which we accept in exchange for
// allocation-free O(1) keys on the search hot path; even ExactMODis
// is exact only up to this hash identity.
type StateKey uint64

const wordBits = 64

// Bitmap encodes a state as packed uint64 words: bit i of the state is
// bit i%64 of words[i/64]. Bits at positions >= Len() are always zero.
// The Zobrist key is maintained incrementally by Set/Clear/Flip, so
// Key() is O(1) and allocation-free. Construct with NewBitmap or
// BitmapOf; the zero value is an empty (width-0) bitmap.
//
// Bitmap values copied by assignment share their backing words while
// each carries its own cached key, so mutating one copy desynchronizes
// the others' Key() from the shared bits. Treat each Bitmap as owned
// by a single holder: Clone before mutating anything received or
// handed out by value.
type Bitmap struct {
	words []uint64
	n     int
	key   uint64
}

// zval is the Zobrist word of entry index i: a splitmix64-style mix of
// the index, deterministic across runs so keys are stable.
func zval(i int) uint64 {
	x := uint64(i)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// lenSeed folds the bitmap width into the key so that all-clear bitmaps
// of different widths stay distinct. The offset keeps the seed domain
// disjoint from entry indexes.
func lenSeed(n int) uint64 { return zval(n + 1<<30) }

// NewBitmap returns an all-clear bitmap of width n.
func NewBitmap(n int) Bitmap {
	return Bitmap{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
		key:   lenSeed(n),
	}
}

// BitmapOf builds a bitmap from literal bools (test and example helper).
func BitmapOf(vals ...bool) Bitmap {
	b := NewBitmap(len(vals))
	for i, v := range vals {
		if v {
			b.Set(i)
		}
	}
	return b
}

// Len returns the bitmap width (the number of entries).
func (b Bitmap) Len() int { return b.n }

// Words returns a copy of the packed words (a read-only snapshot for
// serialization; bit i of the state is bit i%64 of word i/64).
func (b Bitmap) Words() []uint64 {
	return append([]uint64(nil), b.words...)
}

// check panics on out-of-width indexes, including those landing in the
// final word's zero padding, which raw word indexing would accept.
func (b Bitmap) check(i int) {
	if uint(i) >= uint(b.n) {
		panic("fst: bitmap index out of range")
	}
}

// Get reports whether entry i is present.
func (b Bitmap) Get(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set marks entry i present (no-op if already set).
func (b *Bitmap) Set(i int) {
	b.check(i)
	w, m := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.key ^= zval(i)
	}
}

// Clear marks entry i absent (no-op if already cleared).
func (b *Bitmap) Clear(i int) {
	b.check(i)
	w, m := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	if b.words[w]&m != 0 {
		b.words[w] &^= m
		b.key ^= zval(i)
	}
}

// Flip toggles entry i.
func (b *Bitmap) Flip(i int) {
	b.check(i)
	b.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
	b.key ^= zval(i)
}

// Clone deep-copies the bitmap in one word-wise copy.
func (b Bitmap) Clone() Bitmap {
	nw := make([]uint64, len(b.words))
	copy(nw, b.words)
	return Bitmap{words: nw, n: b.n, key: b.key}
}

// Key returns the state's 64-bit identity. O(1): the Zobrist hash is
// carried through Clone and updated incrementally on every flip.
func (b Bitmap) Key() StateKey { return StateKey(b.key) }

// Ones counts the set entries by per-word popcount.
func (b Bitmap) Ones() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndOnes counts the entries set in both bitmaps (the dot product of
// the corresponding 0/1 vectors), without materializing floats.
func (b Bitmap) AndOnes(o Bitmap) int {
	n := 0
	for i, w := range b.words {
		if i >= len(o.words) {
			break
		}
		n += bits.OnesCount64(w & o.words[i])
	}
	return n
}

// lastMask returns the valid-bit mask of word wi (all ones except for a
// partial trailing word).
func (b Bitmap) lastMask(wi int) uint64 {
	if valid := b.n - wi*wordBits; valid < wordBits {
		return 1<<uint(valid) - 1
	}
	return ^uint64(0)
}

// ForEachSet calls f with every set entry index in ascending order,
// iterating word-wise with trailing-zero scans.
func (b Bitmap) ForEachSet(f func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			f(wi*wordBits + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// ForEachClear calls f with every cleared entry index in ascending
// order, masking the partial trailing word.
func (b Bitmap) ForEachClear(f func(i int)) {
	for wi, w := range b.words {
		w = ^w & b.lastMask(wi)
		for w != 0 {
			f(wi*wordBits + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Floats renders the bitmap as a feature vector for surrogate
// estimators.
func (b Bitmap) Floats() []float64 {
	out := make([]float64, b.n)
	b.ForEachSet(func(i int) { out[i] = 1 })
	return out
}

// String renders the bitmap as a 0/1 string for debugging and figures;
// state identity comparisons should use Key instead.
func (b Bitmap) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
