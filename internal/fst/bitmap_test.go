package fst

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// boolBitmap is the reference implementation the packed bitset must
// agree with: the seed's plain []bool semantics.
type boolBitmap []bool

func (b boolBitmap) ones() int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

func (b boolBitmap) packed() Bitmap {
	p := NewBitmap(len(b))
	for i, v := range b {
		if v {
			p.Set(i)
		}
	}
	return p
}

func randomBools(rng *rand.Rand, n int) boolBitmap {
	b := make(boolBitmap, n)
	for i := range b {
		b[i] = rng.Intn(2) == 0
	}
	return b
}

// Property: Ones, Get, and Floats of the packed bitmap agree with the
// []bool reference for widths around the word boundary (trailing-word
// masking included).
func TestBitmapAgreesWithBoolReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		ref := randomBools(rng, n)
		p := ref.packed()
		if p.Len() != n || p.Ones() != ref.ones() {
			return false
		}
		fs := p.Floats()
		for i, v := range ref {
			if p.Get(i) != v {
				return false
			}
			if (fs[i] == 1) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Clone is deep — mutating the clone never leaks into the
// original, and an unmutated clone keeps the same key.
func TestBitmapCloneIsDeep(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		p := randomBools(rng, n).packed()
		c := p.Clone()
		if c.Key() != p.Key() || c.Ones() != p.Ones() {
			return false
		}
		i := rng.Intn(n)
		before := p.Get(i)
		c.Flip(i)
		return p.Get(i) == before && c.Key() != p.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: any single-bit flip changes the key, and flipping the same
// bit back restores it (the Zobrist involution the dedup maps rely on).
func TestBitmapKeyFlipUniqueness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		p := randomBools(rng, n).packed()
		k0 := p.Key()
		i := rng.Intn(n)
		p.Flip(i)
		if p.Key() == k0 {
			return false
		}
		p.Flip(i)
		return p.Key() == k0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Exhaustive key uniqueness over all 16-bit states, mirroring the
// seed's TestBitmapKeyUnique at full coverage: equal bit patterns give
// equal keys, distinct patterns give distinct keys.
func TestBitmapKeyUnique(t *testing.T) {
	seen := make(map[StateKey]uint16, 1<<16)
	for v := 0; v < 1<<16; v++ {
		b := NewBitmap(16)
		for i := 0; i < 16; i++ {
			if v&(1<<i) != 0 {
				b.Set(i)
			}
		}
		k := b.Key()
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision: patterns %016b and %016b", prev, v)
		}
		seen[k] = uint16(v)
		// Rebuilding the same pattern must reproduce the key.
		c := NewBitmap(16)
		for i := 0; i < 16; i++ {
			if v&(1<<i) != 0 {
				c.Set(i)
			}
		}
		if c.Key() != k {
			t.Fatalf("key not deterministic for pattern %016b", v)
		}
	}
}

// Trailing-word masking: ForEachClear and Ones must never see ghost
// bits beyond Len, for widths straddling the 64-bit word boundary.
func TestBitmapTrailingWordMasking(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 127, 128, 129} {
		b := NewBitmap(n)
		cleared := 0
		b.ForEachClear(func(i int) {
			if i < 0 || i >= n {
				t.Fatalf("n=%d: ForEachClear yielded out-of-range index %d", n, i)
			}
			cleared++
		})
		if cleared != n {
			t.Errorf("n=%d: ForEachClear visited %d entries, want %d", n, cleared, n)
		}
		for i := 0; i < n; i++ {
			b.Set(i)
		}
		if b.Ones() != n {
			t.Errorf("n=%d: Ones = %d after setting all", n, b.Ones())
		}
		b.ForEachClear(func(i int) {
			t.Errorf("n=%d: full bitmap yielded cleared index %d", n, i)
		})
	}
}

// Mutators and Get must reject indexes beyond the width — including
// ones that land inside the final word's zero padding, where raw word
// indexing alone would silently corrupt the invariant.
func TestBitmapIndexOutOfRangePanics(t *testing.T) {
	for _, i := range []int{70, 100, 127, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Flip(%d) on width 70 should panic", i)
				}
			}()
			b := NewBitmap(70)
			b.Flip(i)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Get(70) on width 70 should panic")
			}
		}()
		NewBitmap(70).Get(70)
	}()
}

// All-clear bitmaps of different widths are different states and must
// have different keys.
func TestBitmapKeyIncludesWidth(t *testing.T) {
	if NewBitmap(3).Key() == NewBitmap(4).Key() {
		t.Error("empty bitmaps of different widths share a key")
	}
}

// Set and Clear are idempotent and keep the key in sync with a
// recomputed-from-scratch bitmap.
func TestBitmapSetClearIdempotent(t *testing.T) {
	b := NewBitmap(70)
	b.Set(69)
	k := b.Key()
	b.Set(69) // no-op
	if b.Key() != k {
		t.Error("idempotent Set changed the key")
	}
	b.Clear(69)
	b.Clear(69) // no-op
	if b.Key() != NewBitmap(70).Key() {
		t.Error("Clear did not restore the empty key")
	}
}

// Property: AndOnes equals the dot product of the reference 0/1
// vectors.
func TestBitmapAndOnes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(140)
		ra, rb := randomBools(rng, n), randomBools(rng, n)
		want := 0
		for i := range ra {
			if ra[i] && rb[i] {
				want++
			}
		}
		return ra.packed().AndOnes(rb.packed()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitmapString(t *testing.T) {
	if got := BitmapOf(true, false, true).String(); got != "101" {
		t.Errorf("String = %q, want 101", got)
	}
}

// OpGen fan-out stays correct across the word boundary: every child
// differs from the parent in exactly the flipped entry and carries a
// distinct key.
func TestOpGenAcrossWordBoundary(t *testing.T) {
	b := NewBitmap(130)
	for i := 0; i < 130; i += 2 {
		b.Set(i)
	}
	s := &State{Bits: b, Level: 1}
	keys := map[StateKey]bool{s.Key(): true}
	kids := OpGen(s, Forward)
	if len(kids) != 65 {
		t.Fatalf("forward fan-out = %d, want 65", len(kids))
	}
	for _, k := range kids {
		if k.Bits.Ones() != 64 || k.Bits.Get(k.Via) {
			t.Fatal("forward child must clear exactly its Via entry")
		}
		if keys[k.Key()] {
			t.Fatal("duplicate child key")
		}
		keys[k.Key()] = true
	}
	back := OpGen(s, Backward)
	if len(back) != 65 {
		t.Fatalf("backward fan-out = %d, want 65", len(back))
	}
	for _, k := range back {
		if k.Bits.Ones() != 66 || !k.Bits.Get(k.Via) {
			t.Fatal("backward child must set exactly its Via entry")
		}
	}
}
