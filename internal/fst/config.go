package fst

import (
	"fmt"
	"math"

	"repro/internal/skyline"
	"repro/internal/table"
)

// Measure is one user-defined performance measure p ∈ P: a name, a
// desired range [p_l, p_u] ⊆ (0,1], and a normalizer mapping the model's
// raw metric value into the unified minimize-space.
type Measure struct {
	Name      string
	Bounds    skyline.Bounds
	Normalize func(raw float64) float64
}

// Inverted returns a measure normalizer for metrics to be maximized
// (accuracy, F1, ...): raw x in [0,1] maps to 1-x, floored at lo.
func Inverted(lo float64) func(float64) float64 {
	return func(raw float64) float64 {
		v := 1 - raw
		if v < lo {
			v = lo
		}
		if v > 1 {
			v = 1
		}
		return v
	}
}

// Scaled returns a normalizer for cost-like metrics: raw/max clipped to
// (lo, 1].
func Scaled(max, lo float64) func(float64) float64 {
	return func(raw float64) float64 {
		if max <= 0 {
			return 1
		}
		v := raw / max
		if v < lo {
			v = lo
		}
		if v > 1 {
			v = 1
		}
		return v
	}
}

// Identity returns a normalizer that clips raw to [lo, 1].
func Identity(lo float64) func(float64) float64 {
	return func(raw float64) float64 {
		if math.IsNaN(raw) {
			return 1
		}
		if raw < lo {
			return lo
		}
		if raw > 1 {
			return 1
		}
		return raw
	}
}

// Model is a fixed deterministic data science model M: D → R^d whose
// performance over a dataset is what MODis optimizes. Evaluate returns
// the raw metric vector aligned with the configured measures (e.g.
// accuracy, training cost), before normalization.
type Model interface {
	Name() string
	Evaluate(d *table.Table) ([]float64, error)
}

// Estimator predicts the normalized performance vector of a state from
// its features without running the model — the role of MO-GBM in the
// paper. Implementations live in internal/estimator.
type Estimator interface {
	// Estimate returns the predicted vector; ok=false when the estimator
	// is not yet trained well enough to be trusted.
	Estimate(features []float64) (v skyline.Vector, ok bool)
	// Observe records an exactly valuated test for future fitting.
	Observe(features []float64, v skyline.Vector)
}

// Test is one valuated test tuple t = (M, D, P) with its performance
// vector.
type Test struct {
	Key  StateKey
	Perf skyline.Vector
	// Features is the state feature vector used to train estimators.
	Features []float64
}

// TestSet is the historical record T of valuated tests, memoizing by
// state key so repeated states load their vector instead of re-valuating.
type TestSet struct {
	byKey map[StateKey]*Test
	order []*Test
}

// NewTestSet returns an empty record.
func NewTestSet() *TestSet { return &TestSet{byKey: map[StateKey]*Test{}} }

// Get loads a memoized test.
func (ts *TestSet) Get(key StateKey) (*Test, bool) {
	t, ok := ts.byKey[key]
	return t, ok
}

// Put records a valuated test (idempotent per key).
func (ts *TestSet) Put(t *Test) {
	if _, ok := ts.byKey[t.Key]; ok {
		return
	}
	ts.byKey[t.Key] = t
	ts.order = append(ts.order, t)
}

// Len returns the number of recorded tests.
func (ts *TestSet) Len() int { return len(ts.order) }

// All returns the tests in valuation order.
func (ts *TestSet) All() []*Test { return ts.order }

// Columns returns, for measure index j, the series of recorded values —
// the distribution the correlation graph G_C is computed from.
func (ts *TestSet) Columns(numMeasures int) [][]float64 {
	cols := make([][]float64, numMeasures)
	for _, t := range ts.order {
		for j := 0; j < numMeasures && j < len(t.Perf); j++ {
			cols[j] = append(cols[j], t.Perf[j])
		}
	}
	return cols
}

// Config is the configuration C = (s_M, O, M, T, E) of a data discovery
// system run.
type Config struct {
	Space    *Space
	Model    Model
	Measures []Measure
	Tests    *TestSet
	Est      Estimator
	// WarmupExact is the number of exact model valuations performed
	// before the surrogate estimator is trusted; 0 disables the
	// surrogate entirely (every state is valuated by model inference).
	WarmupExact int
	// ExactEvery forces an exact valuation every k-th state even after
	// warmup, feeding the estimator fresh observations. 0 = never.
	ExactEvery int

	valuations int
	exactCalls int
	bounds     []skyline.Bounds
}

// Validate checks internal consistency.
func (c *Config) Validate() error {
	if c.Space == nil {
		return fmt.Errorf("fst: config requires a Space")
	}
	if c.Model == nil {
		return fmt.Errorf("fst: config requires a Model")
	}
	if len(c.Measures) == 0 {
		return fmt.Errorf("fst: config requires at least one measure")
	}
	if c.Tests == nil {
		c.Tests = NewTestSet()
	}
	return nil
}

// Bounds returns the measure bounds slice aligned with the vector,
// built once and cached: Measures must not change after the first call.
func (c *Config) Bounds() []skyline.Bounds {
	if c.bounds == nil {
		c.bounds = make([]skyline.Bounds, len(c.Measures))
		for i, m := range c.Measures {
			b := m.Bounds
			if b.Lower <= 0 {
				b.Lower = skyline.DefaultBounds().Lower
			}
			if b.Upper <= 0 {
				b.Upper = skyline.DefaultBounds().Upper
			}
			c.bounds[i] = b
		}
	}
	return c.bounds
}

// WithinBounds reports whether the vector satisfies every measure's
// user-specified range.
func (c *Config) WithinBounds(v skyline.Vector) bool {
	for i, b := range c.Bounds() {
		if i >= len(v) || v[i] > b.Upper {
			return false
		}
	}
	return true
}

// Valuations reports the number of states valuated so far (the N budget).
func (c *Config) Valuations() int { return c.valuations }

// ExactCalls reports how many valuations ran real model inference.
func (c *Config) ExactCalls() int { return c.exactCalls }

// ResetCounters clears the valuation counters (for reuse across runs).
func (c *Config) ResetCounters() { c.valuations, c.exactCalls = 0, 0 }

// Valuate produces the normalized performance vector of a state bitmap,
// memoizing through the test set T. It prefers the surrogate estimator
// after warmup and falls back to exact model inference.
func (c *Config) Valuate(bits Bitmap) (skyline.Vector, error) {
	key := bits.Key()
	if t, ok := c.Tests.Get(key); ok {
		return t.Perf, nil
	}
	c.valuations++
	feats := bits.Floats()

	useSurrogate := c.Est != nil && c.exactCalls >= c.WarmupExact
	if useSurrogate && c.ExactEvery > 0 && c.valuations%c.ExactEvery == 0 {
		useSurrogate = false
	}
	if useSurrogate {
		if v, ok := c.Est.Estimate(feats); ok {
			v = clampVec(v)
			c.Tests.Put(&Test{Key: key, Perf: v, Features: feats})
			return v, nil
		}
	}

	d := c.Space.Materialize(bits)
	raw, err := c.Model.Evaluate(d)
	if err != nil {
		return nil, fmt.Errorf("fst: valuate state: %w", err)
	}
	if len(raw) != len(c.Measures) {
		return nil, fmt.Errorf("fst: model returned %d metrics, want %d", len(raw), len(c.Measures))
	}
	v := make(skyline.Vector, len(raw))
	for i, m := range c.Measures {
		if m.Normalize != nil {
			v[i] = m.Normalize(raw[i])
		} else {
			v[i] = Identity(1e-3)(raw[i])
		}
	}
	c.exactCalls++
	if c.Est != nil {
		c.Est.Observe(feats, v)
	}
	c.Tests.Put(&Test{Key: key, Perf: v, Features: feats})
	return v, nil
}

func clampVec(v skyline.Vector) skyline.Vector {
	for i := range v {
		if math.IsNaN(v[i]) || v[i] > 1 {
			v[i] = 1
		}
		if v[i] < 1e-3 {
			v[i] = 1e-3
		}
	}
	return v
}
