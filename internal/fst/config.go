package fst

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/skyline"
	"repro/internal/table"
)

// Measure is one user-defined performance measure p ∈ P: a name, a
// desired range [p_l, p_u] ⊆ (0,1], and a normalizer mapping the model's
// raw metric value into the unified minimize-space.
type Measure struct {
	Name      string
	Bounds    skyline.Bounds
	Normalize func(raw float64) float64
}

// Inverted returns a measure normalizer for metrics to be maximized
// (accuracy, F1, ...): raw x in [0,1] maps to 1-x, floored at lo.
func Inverted(lo float64) func(float64) float64 {
	return func(raw float64) float64 {
		v := 1 - raw
		if v < lo {
			v = lo
		}
		if v > 1 {
			v = 1
		}
		return v
	}
}

// Scaled returns a normalizer for cost-like metrics: raw/max clipped to
// (lo, 1].
func Scaled(max, lo float64) func(float64) float64 {
	return func(raw float64) float64 {
		if max <= 0 {
			return 1
		}
		v := raw / max
		if v < lo {
			v = lo
		}
		if v > 1 {
			v = 1
		}
		return v
	}
}

// Identity returns a normalizer that clips raw to [lo, 1].
func Identity(lo float64) func(float64) float64 {
	return func(raw float64) float64 {
		if math.IsNaN(raw) {
			return 1
		}
		if raw < lo {
			return lo
		}
		if raw > 1 {
			return 1
		}
		return raw
	}
}

// defaultNormalize is the fallback normalizer of measures with no
// Normalize func, hoisted to package level so the valuation hot path
// does not rebuild the closure per measure per state.
var defaultNormalize = Identity(1e-3)

// Model is a fixed deterministic data science model M: D → R^d whose
// performance over a dataset is what MODis optimizes. Evaluate returns
// the raw metric vector aligned with the configured measures (e.g.
// accuracy, training cost), before normalization.
type Model interface {
	Name() string
	Evaluate(d *table.Table) ([]float64, error)
}

// Estimator predicts the normalized performance vector of a state from
// its features without running the model — the role of MO-GBM in the
// paper. Implementations live in internal/estimator.
type Estimator interface {
	// Estimate returns the predicted vector; ok=false when the estimator
	// is not yet trained well enough to be trusted.
	Estimate(features []float64) (v skyline.Vector, ok bool)
	// Observe records an exactly valuated test for future fitting.
	Observe(features []float64, v skyline.Vector)
}

// Config is the configuration C = (s_M, O, M, T, E) of a data discovery
// system run. One Config can serve concurrent runs: the test set is
// sharded and single-flighted, estimator access is serialized behind an
// internal mutex, and the per-run valuation counters live in each run's
// [ValuationStats] rather than here. Model.Evaluate must be safe for
// concurrent calls when runs valuate with parallelism > 1, and Measure
// normalizers must be pure functions.
type Config struct {
	Space    *Space
	Model    Model
	Measures []Measure
	Tests    *TestSet
	Est      Estimator
	// WarmupExact is the number of exact model valuations performed
	// before the surrogate estimator is trusted; 0 disables the
	// surrogate entirely (every state is valuated by model inference).
	WarmupExact int
	// ExactEvery forces an exact valuation every k-th state even after
	// warmup, feeding the estimator fresh observations. 0 = never.
	ExactEvery int

	// estMu serializes Est.Estimate/Observe: estimators are stateful
	// (online training, lazy refits) and not required to be thread-safe.
	estMu sync.Mutex

	boundsOnce sync.Once
	bounds     []skyline.Bounds

	// selfStats backs the convenience Config.Valuate path so one-off
	// valuations (reference states in examples, tests) still accumulate
	// surrogate warmup; search runs carry their own ValuationStats.
	selfStats ValuationStats
}

// Validate checks internal consistency.
func (c *Config) Validate() error {
	if c.Space == nil {
		return fmt.Errorf("fst: config requires a Space")
	}
	if c.Model == nil {
		return fmt.Errorf("fst: config requires a Model")
	}
	if len(c.Measures) == 0 {
		return fmt.Errorf("fst: config requires at least one measure")
	}
	if c.Tests == nil {
		c.Tests = NewTestSet()
	}
	return nil
}

// Bounds returns the measure bounds slice aligned with the vector,
// built once (concurrency-safe) and cached: Measures must not change
// after the first call.
func (c *Config) Bounds() []skyline.Bounds {
	c.boundsOnce.Do(func() {
		c.bounds = make([]skyline.Bounds, len(c.Measures))
		for i, m := range c.Measures {
			b := m.Bounds
			if b.Lower <= 0 {
				b.Lower = skyline.DefaultBounds().Lower
			}
			if b.Upper <= 0 {
				b.Upper = skyline.DefaultBounds().Upper
			}
			c.bounds[i] = b
		}
	})
	return c.bounds
}

// WithinBounds reports whether the vector satisfies every measure's
// user-specified range.
func (c *Config) WithinBounds(v skyline.Vector) bool {
	for i, b := range c.Bounds() {
		if i >= len(v) || v[i] > b.Upper {
			return false
		}
	}
	return true
}

// Valuate produces the normalized performance vector of a state bitmap,
// memoizing through the test set T. It prefers the surrogate estimator
// after warmup and falls back to exact model inference. This is the
// one-off convenience path (counters accumulate in a config-internal
// ValuationStats); search runs valuate through a per-run [Valuator] so
// their budgets and reports stay independent. Both paths share one
// policy implementation: a transient valuator's single-state window.
func (c *Config) Valuate(bits Bitmap) (skyline.Vector, error) {
	v := &Valuator{cfg: c, par: 1, Stats: &c.selfStats}
	return v.Valuate(context.Background(), bits)
}

// evaluateExact runs real model inference for the state, returning the
// normalized performance vector. Models implementing [RowsModel] are
// valuated straight off the state's selected-row view — the
// zero-materialization columnar fast path, available whenever the
// space has no UDFs — and every other model takes the reference path:
// materialize the child table, run Evaluate. Safe for concurrent calls
// (the worker-pool body): both paths share only the space's immutable
// row index and the model's frozen encoder state, and normalizers must
// be pure.
func (c *Config) evaluateExact(bits Bitmap) (skyline.Vector, error) {
	raw, err := c.rawMetrics(bits)
	if err != nil {
		return nil, fmt.Errorf("fst: valuate state: %w", err)
	}
	if len(raw) != len(c.Measures) {
		return nil, fmt.Errorf("fst: model returned %d metrics, want %d", len(raw), len(c.Measures))
	}
	v := make(skyline.Vector, len(raw))
	for i, m := range c.Measures {
		if m.Normalize != nil {
			v[i] = m.Normalize(raw[i])
		} else {
			v[i] = defaultNormalize(raw[i])
		}
	}
	return v, nil
}

// rawMetrics produces the model's raw metric vector for a state,
// preferring the columnar rows path when the model and the space
// support it. A per-call decline (handled=false) falls through to
// Materialize, which re-derives the removed-row union — acceptable
// because declines are cold: the built-in models decline only for
// states their space can never produce.
func (c *Config) rawMetrics(bits Bitmap) ([]float64, error) {
	if rm, isRows := c.Model.(RowsModel); isRows {
		if view, viewOK := c.Space.RowsFor(bits); viewOK {
			raw, handled, err := rm.EvaluateRows(view)
			// The view's scratch is pooled; models must not retain it
			// past EvaluateRows (see RowsModel).
			c.Space.ReleaseRows(view)
			if handled {
				return raw, err
			}
		}
	}
	return c.Model.Evaluate(c.Space.Materialize(bits))
}

// estimate consults the surrogate under the estimator mutex.
func (c *Config) estimate(feats []float64) (skyline.Vector, bool) {
	c.estMu.Lock()
	defer c.estMu.Unlock()
	return c.Est.Estimate(feats)
}

// observe feeds an exact result to the surrogate under the estimator
// mutex (no-op without an estimator).
func (c *Config) observe(feats []float64, v skyline.Vector) {
	if c.Est == nil {
		return
	}
	c.estMu.Lock()
	defer c.estMu.Unlock()
	c.Est.Observe(feats, v)
}

func clampVec(v skyline.Vector) skyline.Vector {
	for i := range v {
		if math.IsNaN(v[i]) || v[i] > 1 {
			v[i] = 1
		}
		if v[i] < 1e-3 {
			v[i] = 1e-3
		}
	}
	return v
}
