package fst

import (
	"context"
	"errors"
	"testing"

	"repro/internal/skyline"
	"repro/internal/table"
)

// countingModel reports the dataset size as its two raw metrics and
// counts evaluations, for memoization tests.
type countingModel struct{ calls int }

func (m *countingModel) Name() string { return "counting" }

func (m *countingModel) Evaluate(d *table.Table) ([]float64, error) {
	m.calls++
	rows := float64(d.NumRows()) / 100
	cols := float64(d.NumCols()) / 100
	return []float64{rows, cols}, nil
}

func testConfig(m Model) *Config {
	return &Config{
		Space: testSpace(),
		Model: m,
		Measures: []Measure{
			{Name: "rows", Normalize: Identity(1e-3)},
			{Name: "cols", Normalize: Identity(1e-3)},
		},
	}
}

func TestValidateRequirements(t *testing.T) {
	var c Config
	if err := c.Validate(); err == nil {
		t.Error("empty config must fail validation")
	}
	c.Space = testSpace()
	if err := c.Validate(); err == nil {
		t.Error("config without model must fail")
	}
	c.Model = &countingModel{}
	if err := c.Validate(); err == nil {
		t.Error("config without measures must fail")
	}
	c.Measures = []Measure{{Name: "m"}}
	if err := c.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if c.Tests == nil {
		t.Error("Validate should initialize the test set")
	}
}

func TestValuateMemoizes(t *testing.T) {
	m := &countingModel{}
	cfg := testConfig(m)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	val := cfg.NewValuator(1)
	bits := cfg.Space.FullBitmap()
	v1, err := val.Valuate(context.Background(), bits)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := val.Valuate(context.Background(), bits)
	if err != nil {
		t.Fatal(err)
	}
	if m.calls != 1 {
		t.Errorf("model calls = %d, want 1 (memoized)", m.calls)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Error("memoized vector mismatch")
		}
	}
	if val.Stats.Valuations() != 1 {
		t.Errorf("valuations = %d, want 1 (repeat loads from T)", val.Stats.Valuations())
	}
}

func TestValuateNormalizes(t *testing.T) {
	m := &countingModel{}
	cfg := testConfig(m)
	cfg.Validate()
	v, err := cfg.Valuate(cfg.Space.FullBitmap())
	if err != nil {
		t.Fatal(err)
	}
	// 20 rows -> 0.2, 4 cols -> 0.04.
	if v[0] != 0.2 || v[1] != 0.04 {
		t.Errorf("normalized vector = %v", v)
	}
}

type failingModel struct{}

func (failingModel) Name() string                             { return "fail" }
func (failingModel) Evaluate(*table.Table) ([]float64, error) { return nil, errors.New("boom") }

func TestValuatePropagatesModelError(t *testing.T) {
	cfg := testConfig(failingModel{})
	cfg.Validate()
	if _, err := cfg.Valuate(cfg.Space.FullBitmap()); err == nil {
		t.Error("model error must propagate")
	}
}

type wrongArityModel struct{}

func (wrongArityModel) Name() string { return "arity" }
func (wrongArityModel) Evaluate(*table.Table) ([]float64, error) {
	return []float64{1}, nil
}

func TestValuateArityCheck(t *testing.T) {
	cfg := testConfig(wrongArityModel{})
	cfg.Validate()
	if _, err := cfg.Valuate(cfg.Space.FullBitmap()); err == nil {
		t.Error("metric arity mismatch must error")
	}
}

// stubEstimator always returns a fixed vector once trusted.
type stubEstimator struct {
	observed int
	answer   skyline.Vector
}

func (s *stubEstimator) Estimate([]float64) (skyline.Vector, bool) {
	if s.observed < 1 {
		return nil, false
	}
	return s.answer.Clone(), true
}
func (s *stubEstimator) Observe([]float64, skyline.Vector) { s.observed++ }

func TestValuateUsesSurrogateAfterWarmup(t *testing.T) {
	m := &countingModel{}
	cfg := testConfig(m)
	cfg.Est = &stubEstimator{answer: skyline.Vector{0.5, 0.5}}
	cfg.WarmupExact = 1
	cfg.Validate()

	// First valuation: warmup, exact.
	val := cfg.NewValuator(1)
	b1 := cfg.Space.FullBitmap()
	if _, err := val.Valuate(context.Background(), b1); err != nil {
		t.Fatal(err)
	}
	if val.Stats.ExactCalls() != 1 {
		t.Fatalf("exact calls = %d, want 1", val.Stats.ExactCalls())
	}
	// Second distinct state: surrogate should answer.
	b2 := b1.Clone()
	b2.Clear(0)
	v, err := val.Valuate(context.Background(), b2)
	if err != nil {
		t.Fatal(err)
	}
	if m.calls != 1 {
		t.Errorf("model calls = %d, want 1 (surrogate served the 2nd)", m.calls)
	}
	if v[0] != 0.5 {
		t.Errorf("surrogate answer not used: %v", v)
	}
}

func TestBoundsAndWithinBounds(t *testing.T) {
	cfg := testConfig(&countingModel{})
	cfg.Measures[0].Bounds = skyline.Bounds{Lower: 0.1, Upper: 0.5}
	cfg.Validate()
	bs := cfg.Bounds()
	if bs[0].Upper != 0.5 {
		t.Error("explicit bounds should pass through")
	}
	if bs[1].Upper != 1 {
		t.Error("unset bounds should default")
	}
	if !cfg.WithinBounds(skyline.Vector{0.3, 0.9}) {
		t.Error("vector within bounds rejected")
	}
	if cfg.WithinBounds(skyline.Vector{0.6, 0.9}) {
		t.Error("vector above upper bound accepted")
	}
}

func TestMeasureNormalizers(t *testing.T) {
	inv := Inverted(0.01)
	if inv(1) != 0.01 {
		t.Error("Inverted(1) should floor")
	}
	if inv(0) != 1 {
		t.Error("Inverted(0) = 1")
	}
	sc := Scaled(10, 0.01)
	if sc(5) != 0.5 {
		t.Error("Scaled mid")
	}
	if sc(100) != 1 {
		t.Error("Scaled clips at 1")
	}
	id := Identity(0.01)
	if id(0.5) != 0.5 || id(-1) != 0.01 || id(2) != 1 {
		t.Error("Identity clipping")
	}
}

func TestTestSetColumns(t *testing.T) {
	ts := NewTestSet()
	ts.Put(&Test{Key: 1, Perf: skyline.Vector{0.1, 0.2}})
	ts.Put(&Test{Key: 2, Perf: skyline.Vector{0.3, 0.4}})
	ts.Put(&Test{Key: 1, Perf: skyline.Vector{9, 9}}) // dup ignored
	if ts.Len() != 2 {
		t.Fatalf("len = %d, want 2", ts.Len())
	}
	cols := ts.Columns(2)
	if cols[0][0] != 0.1 || cols[1][1] != 0.4 {
		t.Errorf("columns = %v", cols)
	}
}
