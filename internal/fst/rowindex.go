package fst

import (
	"math/bits"

	"repro/internal/table"
)

// ColumnSource supplies pre-decoded numeric columns of the universal
// table — vals[ri] is row ri's cell as a float, null marks missing
// cells (nil when the column has none), ok is false for columns the
// source does not cover (strings, skipped or unknown names). The ML
// encoder's frozen Matrix is the canonical implementation: a space
// wired to it builds its row index from the statistics already decoded
// for the estimator instead of re-deriving them cell by cell.
type ColumnSource interface {
	Column(name string) (vals []float64, null []bool, ok bool)
}

// rowIndex is the precomputed materialization index of a space: for
// every EntryLiteral, a packed bitmap over the universal table's rows
// marking the tuples that literal's Reduct would remove (non-null cells
// equal to the literal value). Built once per Space on first
// Materialize and immutable afterwards, so any number of concurrent
// materializations — worker pools, parallel engine runs — share it
// without coordination.
type rowIndex struct {
	// litRows[i] is the removed-row bitmap of entry i (nil for
	// EntryAttr entries).
	litRows [][]uint64
	// colOf[i] is the universal column index of entry i's attribute.
	colOf []int
	// words is the packed width of a row bitmap.
	words int
	// rows is the universal row count (for the trailing-word mask).
	rows int
}

// liveMask returns the valid-row mask of word wi.
func (ix *rowIndex) liveMask(wi int) uint64 {
	if valid := ix.rows - wi*wordBits; valid < wordBits {
		return 1<<uint(valid) - 1
	}
	return ^uint64(0)
}

func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

// buildRowIndex fills the per-literal row bitmaps with one walk of the
// universal rows per attribute that carries literals: each row's cell
// is matched against that attribute's literal values, so the table is
// traversed len(litEntries) times rather than once per literal entry.
// Attributes covered by the space's ColumnSource match against the
// pre-decoded float column (indexAttrColumns); the rest fall back to
// the cell-comparison scan (indexAttrScan).
func (sp *Space) buildRowIndex() {
	u := sp.Universal
	ix := &rowIndex{
		litRows: make([][]uint64, len(sp.Entries)),
		colOf:   make([]int, len(sp.Entries)),
		words:   (len(u.Rows) + wordBits - 1) / wordBits,
		rows:    len(u.Rows),
	}
	colIdx := make(map[string]int, len(u.Schema))
	for i, c := range u.Schema {
		colIdx[c.Name] = i
	}
	for i, e := range sp.Entries {
		ix.colOf[i] = colIdx[e.Attr]
		if e.Kind == EntryLiteral {
			ix.litRows[i] = make([]uint64, ix.words)
		}
	}
	for _, entries := range sp.litEntries {
		if len(entries) == 0 {
			continue
		}
		if sp.indexAttrColumns(ix, entries, 0) {
			continue
		}
		sp.indexAttrScan(ix, entries, 0)
	}
	sp.idx = ix
}

// indexAttrColumns fills one attribute's literal bitmaps for rows
// [from, len) from the column source's frozen floats, returning false
// (nothing written) when the attribute or its literals are not
// float-comparable. Float equality against the decoded column is
// exactly Value.Equal for numeric cells — Equal compares int/float
// pairs via AsFloat, and Value.Key collapses numerically equal ints
// and floats the same way — so the fast path and the scan agree bit
// for bit. A nonzero from is the delta pass of Space.Append: only the
// freshly appended rows are matched.
func (sp *Space) indexAttrColumns(ix *rowIndex, entries []int, from int) bool {
	if sp.colSrc == nil {
		return false
	}
	vals, null, ok := sp.colSrc.Column(sp.Entries[entries[0]].Attr)
	if !ok || len(vals) != len(sp.Universal.Rows) {
		return false
	}
	lits := make([]float64, len(entries))
	for k, i := range entries {
		v := sp.Entries[i].Literal.Value
		if kind := v.Kind(); kind != table.KindFloat && kind != table.KindInt {
			return false
		}
		lits[k] = v.AsFloat()
	}
	for ri := from; ri < len(vals); ri++ {
		if null != nil && null[ri] {
			continue
		}
		f := vals[ri]
		for k, i := range entries {
			if f == lits[k] {
				ix.litRows[i][ri/wordBits] |= 1 << (uint(ri) % wordBits)
			}
		}
	}
	return true
}

// indexAttrScan fills one attribute's literal bitmaps for rows
// [from, len) by comparing universal cells — the reference path, and
// the only one for string attributes and spaces without a column
// source.
func (sp *Space) indexAttrScan(ix *rowIndex, entries []int, from int) {
	ci := ix.colOf[entries[0]]
	for ri := from; ri < len(sp.Universal.Rows); ri++ {
		cell := sp.Universal.Rows[ri][ci]
		if cell.IsNull() {
			continue
		}
		for _, i := range entries {
			if cell.Equal(sp.Entries[i].Literal.Value) {
				ix.litRows[i][ri/wordBits] |= 1 << (uint(ri) % wordBits)
			}
		}
	}
}
