package fst

import "math/bits"

// rowIndex is the precomputed materialization index of a space: for
// every EntryLiteral, a packed bitmap over the universal table's rows
// marking the tuples that literal's Reduct would remove (non-null cells
// equal to the literal value). Built once per Space on first
// Materialize and immutable afterwards, so any number of concurrent
// materializations — worker pools, parallel engine runs — share it
// without coordination.
type rowIndex struct {
	// litRows[i] is the removed-row bitmap of entry i (nil for
	// EntryAttr entries).
	litRows [][]uint64
	// colOf[i] is the universal column index of entry i's attribute.
	colOf []int
	// words is the packed width of a row bitmap.
	words int
	// rows is the universal row count (for the trailing-word mask).
	rows int
}

// liveMask returns the valid-row mask of word wi.
func (ix *rowIndex) liveMask(wi int) uint64 {
	if valid := ix.rows - wi*wordBits; valid < wordBits {
		return 1<<uint(valid) - 1
	}
	return ^uint64(0)
}

func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

// buildRowIndex fills the per-literal row bitmaps with one walk of the
// universal rows per attribute that carries literals: each row's cell
// is matched against that attribute's literal values, so the table is
// traversed len(litEntries) times rather than once per literal entry.
func (sp *Space) buildRowIndex() {
	u := sp.Universal
	ix := &rowIndex{
		litRows: make([][]uint64, len(sp.Entries)),
		colOf:   make([]int, len(sp.Entries)),
		words:   (len(u.Rows) + wordBits - 1) / wordBits,
		rows:    len(u.Rows),
	}
	colIdx := make(map[string]int, len(u.Schema))
	for i, c := range u.Schema {
		colIdx[c.Name] = i
	}
	for i, e := range sp.Entries {
		ix.colOf[i] = colIdx[e.Attr]
		if e.Kind == EntryLiteral {
			ix.litRows[i] = make([]uint64, ix.words)
		}
	}
	for _, entries := range sp.litEntries {
		if len(entries) == 0 {
			continue
		}
		ci := ix.colOf[entries[0]]
		for ri, r := range u.Rows {
			cell := r[ci]
			if cell.IsNull() {
				continue
			}
			for _, i := range entries {
				if cell.Equal(sp.Entries[i].Literal.Value) {
					ix.litRows[i][ri/wordBits] |= 1 << (uint(ri) % wordBits)
				}
			}
		}
	}
	sp.idx = ix
}
