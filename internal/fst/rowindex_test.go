package fst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/table"
)

// nullableUniversal is testUniversal with nulls sprinkled into the
// numeric columns and an int-typed literal attribute, covering every
// branch of the column fast path.
func nullableUniversal() *table.Table {
	u := table.New("D_U", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "x", Kind: table.KindFloat},
		{Name: "n", Kind: table.KindInt},
		{Name: "season", Kind: table.KindString},
		{Name: "target", Kind: table.KindInt},
	})
	seasons := []string{"spring", "summer"}
	for i := 0; i < 24; i++ {
		x := table.Float(float64(i % 4))
		n := table.Int(int64(i % 3))
		if i%7 == 0 {
			x = table.Null
		}
		if i%5 == 0 {
			n = table.Null
		}
		u.MustAppend(table.Row{
			table.Int(int64(i)), x, n,
			table.Str(seasons[i%2]),
			table.Int(int64(i % 2)),
		})
	}
	return u
}

func nullableSpace() *Space {
	return NewSpace(nullableUniversal(), "target", SpaceConfig{
		MaxLiteralsPerAttr: 4,
		SkipLiteralAttrs:   []string{"id"},
		ProtectedAttrs:     []string{"id"},
	})
}

// tableColumns is a ColumnSource decoding numeric columns of a table —
// the test stand-in for the ML encoder's frozen matrix. It records the
// attributes asked for, so tests can see which ones took the fast path.
type tableColumns struct {
	u     *table.Table
	asked map[string]bool
	// short truncates every column, simulating a source frozen over a
	// different table revision; the index build must reject it.
	short bool
}

func (s *tableColumns) Column(name string) ([]float64, []bool, bool) {
	if s.asked == nil {
		s.asked = map[string]bool{}
	}
	s.asked[name] = true
	ci := s.u.Schema.Index(name)
	if ci < 0 || s.u.Schema[ci].Kind == table.KindString {
		return nil, nil, false
	}
	n := len(s.u.Rows)
	if s.short && n > 0 {
		n--
	}
	vals := make([]float64, n)
	var null []bool
	for ri := 0; ri < n; ri++ {
		cell := s.u.Rows[ri][ci]
		if cell.IsNull() {
			if null == nil {
				null = make([]bool, n)
			}
			null[ri] = true
			continue
		}
		vals[ri] = cell.AsFloat()
	}
	return vals, null, true
}

// forceIndex builds the row index now.
func forceIndex(sp *Space) *rowIndex {
	sp.idxOnce.Do(sp.buildRowIndex)
	return sp.idx
}

// TestRowIndexColumnSourceParity: the index built from a column source
// is bit-identical to the scan-built one — per literal entry, word by
// word — and the numeric attributes actually took the fast path.
func TestRowIndexColumnSourceParity(t *testing.T) {
	scan := forceIndex(nullableSpace())
	spFast := nullableSpace()
	src := &tableColumns{u: spFast.Universal}
	spFast.SetColumnSource(src)
	fast := forceIndex(spFast)

	for i := range scan.litRows {
		a, b := scan.litRows[i], fast.litRows[i]
		if (a == nil) != (b == nil) {
			t.Fatalf("entry %d: bitmap presence differs", i)
		}
		for wi := range a {
			if a[wi] != b[wi] {
				t.Errorf("entry %d (%s) word %d: scan %064b != source %064b",
					i, spFast.Entries[i], wi, a[wi], b[wi])
			}
		}
	}
	if !src.asked["x"] || !src.asked["n"] {
		t.Errorf("numeric attributes never consulted the source (asked %v)", src.asked)
	}
	if src.asked["id"] {
		t.Error("skip-literal attribute should not reach the source")
	}
}

// TestRowIndexShortColumnFallsBack: a source whose columns do not
// match the universal row count is ignored, and materialization stays
// correct through the scan path.
func TestRowIndexShortColumnFallsBack(t *testing.T) {
	scan := forceIndex(nullableSpace())
	sp := nullableSpace()
	sp.SetColumnSource(&tableColumns{u: sp.Universal, short: true})
	fast := forceIndex(sp)
	for i := range scan.litRows {
		for wi := range scan.litRows[i] {
			if scan.litRows[i][wi] != fast.litRows[i][wi] {
				t.Fatalf("entry %d word %d: short source corrupted the index", i, wi)
			}
		}
	}
}

// Property: with a column source wired, incremental materialization
// still equals the scratch row-scan reference on randomized bitmaps —
// the source changes the cost of building the index, never a result.
func TestMaterializeWithColumnSourceMatchesScan(t *testing.T) {
	sp := nullableSpace()
	sp.SetColumnSource(&tableColumns{u: sp.Universal})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := sp.FullBitmap()
		for i := 0; i < bits.Len(); i++ {
			if rng.Intn(3) == 0 {
				bits.Clear(i)
			}
		}
		return sameTable(sp.Materialize(bits), sp.materializeScan(bits))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
