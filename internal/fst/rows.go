package fst

import "fmt"

// RowsView describes a state's dataset without materializing it: the
// universal-table rows that survive the state's cleared literals
// (ascending) and the attributes its cleared attribute entries mask.
// Together with a columnar encoding of the universal table built once
// per space (ml.Matrix), this is everything a model needs to valuate
// the state — no child *table.Table, no re-encoded dataset.
//
// Views produced by RowsFor borrow pooled per-space scratch: their
// slices are valid until the space's ReleaseRows reclaims them, so a
// model must not retain Rows or Masked past its EvaluateRows call.
type RowsView struct {
	// Rows are the surviving universal row indexes, ascending — the
	// same rows, in the same order, that Materialize would emit.
	Rows []int
	// Masked lists the attributes whose columns Materialize would drop
	// (cleared EntryAttr entries).
	Masked []string

	// scratch is the pool receipt of views built by RowsFor; nil for
	// caller-assembled views.
	scratch *rowsScratch
}

// RowsModel is the optional columnar fast path of a Model: a model that
// can valuate a state directly from the space's selected-row view skips
// Materialize and dataset re-encoding entirely. EvaluateRows may
// decline a particular view (ok=false) — e.g. a graph model whose
// required columns are masked — in which case the caller falls back to
// Evaluate on the materialized table; err is only meaningful when ok.
// The view's slices are borrowed from a per-space pool and must not be
// retained after EvaluateRows returns. The Evaluate path remains the
// reference implementation: the columnar path must return bit-identical
// metrics, a property the tests enforce.
type RowsModel interface {
	Model
	EvaluateRows(v RowsView) (raw []float64, ok bool, err error)
}

// rowsScratch is the per-valuation scratch of one state's row
// derivation: the removed-row union words and the slices a RowsView
// lends to the model. Pooled on the Space — the workload's row count
// fixes every capacity, so steady-state valuations allocate nothing
// here.
type rowsScratch struct {
	removed       []uint64
	maskedEntries []int
	rows          []int
	masked        []string
}

func (sp *Space) getRowsScratch() *rowsScratch {
	if sc, ok := sp.rowsPool.Get().(*rowsScratch); ok {
		return sc
	}
	return &rowsScratch{}
}

// RowsFor returns the selected-row view of a state bitmap, or ok=false
// when the space cannot express the state as a row selection — i.e.
// when post-materialization UDFs are registered, since those transform
// the child table arbitrarily. The row enumeration reuses the same
// incrementally-built per-literal row index as Materialize, so the
// returned rows are exactly the materialized rows. The view's slices
// are pooled: hand the view back with ReleaseRows once the model call
// it fed has returned.
func (sp *Space) RowsFor(bits Bitmap) (RowsView, bool) {
	if sp.HasUDFs() {
		return RowsView{}, false
	}
	sc := sp.getRowsScratch()
	removed, masked := sp.removedRows(bits, sc)
	idx := sp.idx
	rows := sc.rows[:0]
	for wi, w := range removed {
		live := ^w & idx.liveMask(wi)
		for live != 0 {
			rows = append(rows, wi*wordBits+trailingZeros(live))
			live &= live - 1
		}
	}
	maskedNames := sc.masked[:0]
	for _, i := range masked {
		maskedNames = append(maskedNames, sp.Entries[i].Attr)
	}
	sc.rows, sc.masked = rows, maskedNames
	return RowsView{Rows: rows, Masked: maskedNames, scratch: sc}, true
}

// ReleaseRows returns a RowsFor view's scratch to the space's pool.
// Call it after the model consuming the view has returned; the view's
// slices are invalid afterwards. Views without pooled scratch (zero
// values, caller-assembled) are ignored.
func (sp *Space) ReleaseRows(v RowsView) {
	if v.scratch != nil {
		sp.rowsPool.Put(v.scratch)
	}
}

// removedRows unions the removed-row bitmaps of the state's cleared
// literals and collects its cleared attribute entries into the given
// scratch, building the space's row index on first use.
func (sp *Space) removedRows(bits Bitmap, sc *rowsScratch) (removed []uint64, maskedEntries []int) {
	if bits.Len() != len(sp.Entries) {
		panic(fmt.Sprintf("fst: bitmap width %d != space size %d", bits.Len(), len(sp.Entries)))
	}
	sp.idxOnce.Do(sp.buildRowIndex)
	idx := sp.idx
	if cap(sc.removed) < idx.words {
		sc.removed = make([]uint64, idx.words)
	}
	removed = sc.removed[:idx.words]
	for i := range removed {
		removed[i] = 0
	}
	maskedEntries = sc.maskedEntries[:0]
	bits.ForEachClear(func(i int) {
		e := sp.Entries[i]
		switch e.Kind {
		case EntryAttr:
			maskedEntries = append(maskedEntries, i)
		case EntryLiteral:
			for w, word := range idx.litRows[i] {
				removed[w] |= word
			}
		}
	})
	sc.removed, sc.maskedEntries = removed, maskedEntries
	return removed, maskedEntries
}

// litRowsOf exposes entry i's removed-row bitmap to package siblings
// (BackSt's coverage scan), building the index on first use.
func (sp *Space) litRowsOf(i int) []uint64 {
	sp.idxOnce.Do(sp.buildRowIndex)
	return sp.idx.litRows[i]
}

// forEachLitRow calls f with every universal row index entry i's
// literal matches, ascending.
func (sp *Space) forEachLitRow(i int, f func(row int)) {
	for wi, w := range sp.litRowsOf(i) {
		for w != 0 {
			f(wi*wordBits + trailingZeros(w))
			w &= w - 1
		}
	}
}

// HasUDFs reports whether post-materialization UDFs are registered,
// disabling the RowsModel fast path.
func (sp *Space) HasUDFs() bool { return len(sp.udfs) > 0 }
