package fst

import (
	"math/rand"
	"testing"

	"repro/internal/table"
)

// randomState clears a random subset of entries.
func randomState(sp *Space, rng *rand.Rand) Bitmap {
	bits := sp.FullBitmap()
	for i := 0; i < bits.Len(); i++ {
		if rng.Float64() < 0.4 {
			bits.Clear(i)
		}
	}
	return bits
}

// TestRowsForMatchesMaterialize: reconstructing the child from the
// selected-row view must equal the materialized table cell for cell.
func TestRowsForMatchesMaterialize(t *testing.T) {
	sp := testSpace()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		bits := randomState(sp, rng)
		view, ok := sp.RowsFor(bits)
		if !ok {
			t.Fatal("UDF-free space must support RowsFor")
		}
		want := sp.Materialize(bits)

		// Rebuild the child from the view: select rows, drop masked.
		got := table.New("D_s", sp.Universal.Schema)
		for _, r := range view.Rows {
			got.Rows = append(got.Rows, sp.Universal.Rows[r].Clone())
		}
		for _, m := range view.Masked {
			got = got.DropColumn(m)
		}

		if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
			t.Fatalf("trial %d: shape (%d,%d) vs (%d,%d)",
				trial, got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
		}
		for ci, c := range want.Schema {
			if got.Schema[ci].Name != c.Name {
				t.Fatalf("trial %d: schema %v vs %v", trial, got.Schema.Names(), want.Schema.Names())
			}
		}
		for ri := range want.Rows {
			for ci := range want.Schema {
				a, b := got.Rows[ri][ci], want.Rows[ri][ci]
				if a.IsNull() != b.IsNull() || (!a.IsNull() && !a.Equal(b)) {
					t.Fatalf("trial %d: cell (%d,%d) differs", trial, ri, ci)
				}
			}
		}
	}
}

// TestRowsForDeclinesWithUDFs: post-materialization UDFs make row views
// unsound; the fast path must refuse.
func TestRowsForDeclinesWithUDFs(t *testing.T) {
	sp := testSpace()
	if sp.HasUDFs() {
		t.Fatal("fresh space should have no UDFs")
	}
	sp.RegisterUDF(DropSparseRowsUDF(0.5))
	if !sp.HasUDFs() {
		t.Fatal("HasUDFs must report registered UDFs")
	}
	if _, ok := sp.RowsFor(sp.FullBitmap()); ok {
		t.Fatal("RowsFor must decline when UDFs are registered")
	}
}

// TestBackStMatchesScan: the row-index coverage scan must pick exactly
// the literals the original per-literal table rescan picked.
func TestBackStMatchesScan(t *testing.T) {
	spaces := []*Space{testSpace()}
	// A space with nulls in literal columns and a string target.
	u := table.New("D_U", table.Schema{
		{Name: "a", Kind: table.KindInt},
		{Name: "b", Kind: table.KindFloat},
		{Name: "label", Kind: table.KindString},
	})
	labels := []string{"x", "y", "z"}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		bv := table.Value(table.Float(float64(i % 5)))
		if i%9 == 0 {
			bv = table.Null
		}
		u.MustAppend(table.Row{
			table.Int(int64(i % 7)),
			bv,
			table.Str(labels[rng.Intn(3)]),
		})
	}
	spaces = append(spaces, NewSpace(u, "label", SpaceConfig{MaxLiteralsPerAttr: 5}))

	for si, sp := range spaces {
		got := BackSt(sp)
		want := backStScan(sp)
		if got.Len() != want.Len() {
			t.Fatalf("space %d: width mismatch", si)
		}
		for i := 0; i < got.Len(); i++ {
			if got.Get(i) != want.Get(i) {
				t.Fatalf("space %d: entry %d differs (%v vs %v)", si, i, got.Get(i), want.Get(i))
			}
		}
	}
}

// rowsParityModel evaluates via both Model and RowsModel, recording
// which path was taken, to test the evaluateExact dispatch.
type rowsParityModel struct {
	rowsCalls  int
	tableCalls int
	decline    bool
}

func (m *rowsParityModel) Name() string { return "rows-parity" }

func (m *rowsParityModel) Evaluate(d *table.Table) ([]float64, error) {
	m.tableCalls++
	return []float64{float64(d.NumRows()) / 100, float64(d.NumCols()) / 10}, nil
}

func (m *rowsParityModel) EvaluateRows(v RowsView) ([]float64, bool, error) {
	if m.decline {
		return nil, false, nil
	}
	m.rowsCalls++
	cols := 4 - len(v.Masked) // testUniversal has 4 columns
	return []float64{float64(len(v.Rows)) / 100, float64(cols) / 10}, true, nil
}

// TestEvaluateExactPrefersRowsPath: a RowsModel must be valuated from
// the row view (no materialization), produce the same vector, and fall
// back to Evaluate when it declines or when UDFs disable the view.
func TestEvaluateExactPrefersRowsPath(t *testing.T) {
	newCfg := func(sp *Space, m Model) *Config {
		cfg := &Config{Space: sp, Model: m, Measures: []Measure{{Name: "a"}, {Name: "b"}}}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		return cfg
	}
	sp := testSpace()
	bits := sp.FullBitmap()
	bits.Clear(0)

	m := &rowsParityModel{}
	viaRows, err := newCfg(sp, m).Valuate(bits)
	if err != nil {
		t.Fatal(err)
	}
	if m.rowsCalls != 1 || m.tableCalls != 0 {
		t.Fatalf("rows path not taken: rows=%d table=%d", m.rowsCalls, m.tableCalls)
	}

	md := &rowsParityModel{decline: true}
	viaTable, err := newCfg(sp, md).Valuate(bits)
	if err != nil {
		t.Fatal(err)
	}
	if md.tableCalls != 1 {
		t.Fatal("declined rows path must fall back to Evaluate")
	}
	for i := range viaRows {
		if viaRows[i] != viaTable[i] {
			t.Fatalf("vector %d differs across paths: %v vs %v", i, viaRows, viaTable)
		}
	}

	spU := testSpace()
	spU.RegisterUDF(ImputeMeansUDF("target"))
	mu := &rowsParityModel{}
	if _, err := newCfg(spU, mu).Valuate(bits); err != nil {
		t.Fatal(err)
	}
	if mu.rowsCalls != 0 || mu.tableCalls != 1 {
		t.Fatal("UDF space must force the Evaluate path")
	}
}
