// Package fst formalizes the skyline data generator of the MODis paper
// as a finite state transducer T = (s_M, S, O, S_F, δ) (Section 3): a
// state is a bitmap over the universal table that encodes which
// attributes and which active-domain clusters are present; Reduct flips
// entries 1→0 and Augment flips 0→1; materializing a bitmap yields the
// state's dataset D_s via SPJ queries.
package fst

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/table"
)

// EntryKind distinguishes the two bitmap entry classes.
type EntryKind uint8

const (
	// EntryAttr toggles participation of a whole attribute (adom_s(A) = ∅
	// versus wildcard).
	EntryAttr EntryKind = iota
	// EntryLiteral toggles the tuples of one active-domain cluster,
	// identified by an equality literal A = a.
	EntryLiteral
)

// Entry is one position of the state bitmap L.
type Entry struct {
	Kind    EntryKind
	Attr    string
	Literal table.Literal // valid when Kind == EntryLiteral
}

// String renders the entry for debugging.
func (e Entry) String() string {
	if e.Kind == EntryAttr {
		return "attr:" + e.Attr
	}
	return "lit:" + e.Literal.String()
}

// Space is the dataset exploration space induced by a universal table: it
// fixes the entry ordering so every Bitmap identifies one dataset.
type Space struct {
	Universal *table.Table
	Target    string
	Entries   []Entry
	// attrEntry maps attribute name to its EntryAttr index.
	attrEntry map[string]int
	// litEntries maps attribute name to its EntryLiteral indexes.
	litEntries map[string][]int
	// udfs are post-materialization task-specific operators (see udf.go).
	udfs []UDF

	// idx is the lazily-built row index backing incremental
	// materialization (see rowindex.go); immutable once built, so
	// concurrent Materialize calls share it freely.
	idxOnce sync.Once
	idx     *rowIndex
	// colSrc, when set, supplies pre-decoded numeric columns the row
	// index is built from instead of re-scanning universal cells.
	colSrc ColumnSource

	// rowsPool recycles per-valuation row-derivation scratch (see
	// rowsScratch): one workload's valuations all need the same slice
	// capacities, so the pool makes the RowsFor/Materialize row walk
	// allocation-free at steady state.
	rowsPool sync.Pool

	// version counts committed Append batches (0 = the table the space
	// was built from); verRows[v] is the universal row count at version
	// v, filled lazily on the first Append. Both belong to the space's
	// streaming lifecycle (see append.go) and are only written by
	// Append, which must not race runs.
	version uint64
	verRows []int
}

// SpaceConfig controls space construction.
type SpaceConfig struct {
	// MaxLiteralsPerAttr caps the cluster literals per attribute (the
	// paper uses k-means with max k = 30; the experiments use far fewer).
	MaxLiteralsPerAttr int
	// SkipLiteralAttrs lists attributes that contribute no literal
	// entries (e.g. identifier columns).
	SkipLiteralAttrs []string
	// ProtectedAttrs lists attributes that contribute no attribute entry
	// either: they can never be masked (e.g. the endpoints of a graph's
	// edge table, without which the model cannot run).
	ProtectedAttrs []string
	// Columns, when set, supplies pre-decoded numeric columns (typically
	// the ML encoder's frozen matrix): literal derivation clusters the
	// already-decoded floats instead of re-scanning universal cells, and
	// the same source feeds row-index construction (SetColumnSource).
	// Attributes the source does not cover — strings, skipped names —
	// fall back to the row scan. Literals are identical either way; a
	// property test asserts it.
	Columns ColumnSource
}

// NewSpace derives the bitmap layout from a (pre-compressed) universal
// table: one EntryAttr per non-target attribute and one EntryLiteral per
// derived cluster literal. The target attribute is never droppable.
func NewSpace(universal *table.Table, target string, cfg SpaceConfig) *Space {
	if cfg.MaxLiteralsPerAttr <= 0 {
		cfg.MaxLiteralsPerAttr = 30
	}
	skip := map[string]bool{}
	for _, a := range cfg.SkipLiteralAttrs {
		skip[a] = true
	}
	protected := map[string]bool{}
	for _, a := range cfg.ProtectedAttrs {
		protected[a] = true
	}
	sp := &Space{
		Universal:  universal,
		Target:     target,
		attrEntry:  map[string]int{},
		litEntries: map[string][]int{},
		colSrc:     cfg.Columns,
	}
	for _, c := range universal.Schema {
		if c.Name == target || protected[c.Name] {
			continue
		}
		sp.attrEntry[c.Name] = len(sp.Entries)
		sp.Entries = append(sp.Entries, Entry{Kind: EntryAttr, Attr: c.Name})
	}
	for _, c := range universal.Schema {
		if c.Name == target || skip[c.Name] {
			continue
		}
		for _, lit := range deriveLiterals(universal, c.Name, cfg) {
			sp.litEntries[c.Name] = append(sp.litEntries[c.Name], len(sp.Entries))
			sp.Entries = append(sp.Entries, Entry{Kind: EntryLiteral, Attr: c.Name, Literal: lit})
		}
	}
	return sp
}

// deriveLiterals clusters one attribute's active domain, from the
// config's pre-decoded columns when they cover the attribute and from
// a universal row scan otherwise.
func deriveLiterals(u *table.Table, attr string, cfg SpaceConfig) []table.Literal {
	if cfg.Columns != nil {
		if vals, null, ok := cfg.Columns.Column(attr); ok && len(vals) == len(u.Rows) {
			return table.DeriveLiteralsFromColumn(attr, vals, null, cfg.MaxLiteralsPerAttr)
		}
	}
	return table.DeriveLiterals(u, attr, cfg.MaxLiteralsPerAttr)
}

// Size returns the number of bitmap entries.
func (sp *Space) Size() int { return len(sp.Entries) }

// FullBitmap returns the start state s_U of the forward search: every
// entry present, i.e. the universal dataset itself.
func (sp *Space) FullBitmap() Bitmap {
	b := NewBitmap(len(sp.Entries))
	for i := range sp.Entries {
		b.Set(i)
	}
	return b
}

// AttrEntry returns the EntryAttr index for the attribute, or -1.
func (sp *Space) AttrEntry(attr string) int {
	if i, ok := sp.attrEntry[attr]; ok {
		return i
	}
	return -1
}

// LiteralEntries returns the EntryLiteral indexes of the attribute.
func (sp *Space) LiteralEntries(attr string) []int { return sp.litEntries[attr] }

// SetColumnSource wires a pre-decoded column provider (typically the
// ML encoder's frozen matrix) into row-index construction, so the
// per-literal statistics are derived from the floats already decoded
// for the estimator instead of a second cell-by-cell walk of the
// universal table. Call it before the first Materialize/RowsFor — the
// index is built once and a later source is ignored. The produced
// index is bit-identical to the scan-built one (see rowindex.go), so
// the source never changes results, only the cost of building them.
// Prefer SpaceConfig.Columns, which additionally feeds literal
// derivation; SetColumnSource remains for spaces whose source only
// exists after construction.
func (sp *Space) SetColumnSource(src ColumnSource) { sp.colSrc = src }

// Materialize produces the dataset D_s of a state by applying the
// sequence of Reduct operators implied by the cleared bitmap entries to
// the universal table: cleared literal entries remove their cluster's
// tuples (⊖), cleared attribute entries mask their column (adom_s = ∅).
//
// Materialization is incremental: the space lazily builds one row-index
// bitmap per literal entry over the universal table (rowindex.go), so a
// state's surviving rows are the union of its cleared literals' bitmaps,
// complemented — word-wise set arithmetic instead of the former nested
// row-by-literal scan. Safe for concurrent calls; the scan-based
// reference implementation survives as materializeScan for tests.
func (sp *Space) Materialize(bits Bitmap) *table.Table {
	if bits.Len() != len(sp.Entries) {
		panic(fmt.Sprintf("fst: bitmap width %d != space size %d", bits.Len(), len(sp.Entries)))
	}
	// Union the removed-row bitmaps of cleared literals; collect masked
	// attribute columns. Shared with RowsFor, the zero-materialization
	// twin of this method. The scratch goes back to the pool on return:
	// everything derived from it is copied into the output table.
	sc := sp.getRowsScratch()
	defer sp.rowsPool.Put(sc)
	removed, maskedEntries := sp.removedRows(bits, sc)
	idx := sp.idx
	var masked []int
	for _, i := range maskedEntries {
		masked = append(masked, idx.colOf[i])
	}

	u := sp.Universal
	out := table.New("D_s", u.Schema)
	// Walk the surviving rows (complement of removed) word-wise.
	for wi, w := range removed {
		live := ^w & idx.liveMask(wi)
		for live != 0 {
			r := u.Rows[wi*wordBits+trailingZeros(live)]
			live &= live - 1
			nr := r.Clone()
			for _, ci := range masked {
				nr[ci] = table.Null
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	// Drop fully masked attributes from the schema view (output size
	// excludes attributes with all cells masked, per Section 6).
	if len(masked) > 0 {
		keep := make([]string, 0, len(u.Schema)-len(masked))
		for ci, c := range u.Schema {
			if !slices.Contains(masked, ci) {
				keep = append(keep, c.Name)
			}
		}
		out = out.Project(keep...)
		out.Name = "D_s"
	}
	return sp.applyUDFs(out)
}

// materializeScan is the original scratch row-scan materialization,
// kept as the reference implementation the incremental path is
// property-tested against.
func (sp *Space) materializeScan(bits Bitmap) *table.Table {
	if bits.Len() != len(sp.Entries) {
		panic(fmt.Sprintf("fst: bitmap width %d != space size %d", bits.Len(), len(sp.Entries)))
	}
	// Collect cleared literals per attribute index for one row scan.
	cleared := map[string][]table.Value{}
	maskedAttrs := map[string]bool{}
	bits.ForEachClear(func(i int) {
		e := sp.Entries[i]
		switch e.Kind {
		case EntryAttr:
			maskedAttrs[e.Attr] = true
		case EntryLiteral:
			cleared[e.Attr] = append(cleared[e.Attr], e.Literal.Value)
		}
	})
	u := sp.Universal
	out := table.New("D_s", u.Schema)
	colIdx := make(map[string]int, len(u.Schema))
	for i, c := range u.Schema {
		colIdx[c.Name] = i
	}
rows:
	for _, r := range u.Rows {
		for attr, vals := range cleared {
			ci := colIdx[attr]
			cell := r[ci]
			if cell.IsNull() {
				continue
			}
			for _, v := range vals {
				if cell.Equal(v) {
					continue rows
				}
			}
		}
		nr := r.Clone()
		for attr := range maskedAttrs {
			nr[colIdx[attr]] = table.Null
		}
		out.Rows = append(out.Rows, nr)
	}
	if len(maskedAttrs) > 0 {
		keep := make([]string, 0, len(u.Schema))
		for _, c := range u.Schema {
			if !maskedAttrs[c.Name] {
				keep = append(keep, c.Name)
			}
		}
		out = out.Project(keep...)
		out.Name = "D_s"
	}
	return sp.applyUDFs(out)
}
