package fst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/table"
)

func testUniversal() *table.Table {
	u := table.New("D_U", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "x", Kind: table.KindFloat},
		{Name: "season", Kind: table.KindString},
		{Name: "target", Kind: table.KindInt},
	})
	seasons := []string{"spring", "summer"}
	for i := 0; i < 20; i++ {
		u.MustAppend(table.Row{
			table.Int(int64(i)),
			table.Float(float64(i % 4)),
			table.Str(seasons[i%2]),
			table.Int(int64(i % 2)),
		})
	}
	return u
}

func testSpace() *Space {
	return NewSpace(testUniversal(), "target", SpaceConfig{
		MaxLiteralsPerAttr: 4,
		SkipLiteralAttrs:   []string{"id"},
		ProtectedAttrs:     []string{"id"},
	})
}

func TestSpaceLayout(t *testing.T) {
	sp := testSpace()
	// Attribute entries: x, season (target and protected id excluded).
	if sp.AttrEntry("x") < 0 || sp.AttrEntry("season") < 0 {
		t.Error("missing attribute entries")
	}
	if sp.AttrEntry("target") >= 0 {
		t.Error("target must not have an attribute entry")
	}
	if sp.AttrEntry("id") >= 0 {
		t.Error("protected attr must not have an attribute entry")
	}
	// Literal entries: x has 4 distinct values, season 2; id skipped.
	if got := len(sp.LiteralEntries("x")); got != 4 {
		t.Errorf("x literals = %d, want 4", got)
	}
	if got := len(sp.LiteralEntries("season")); got != 2 {
		t.Errorf("season literals = %d, want 2", got)
	}
	if len(sp.LiteralEntries("id")) != 0 {
		t.Error("id literals should be skipped")
	}
}

func TestFullBitmapMaterializesUniversal(t *testing.T) {
	sp := testSpace()
	d := sp.Materialize(sp.FullBitmap())
	if d.NumRows() != sp.Universal.NumRows() {
		t.Errorf("full bitmap rows = %d, want %d", d.NumRows(), sp.Universal.NumRows())
	}
	if d.NumCols() != sp.Universal.NumCols() {
		t.Errorf("full bitmap cols = %d, want %d", d.NumCols(), sp.Universal.NumCols())
	}
}

func TestMaterializeClearedLiteralRemovesCluster(t *testing.T) {
	sp := testSpace()
	bits := sp.FullBitmap()
	// Clear the first x literal.
	li := sp.LiteralEntries("x")[0]
	bits.Clear(li)
	d := sp.Materialize(bits)
	removedVal := sp.Entries[li].Literal.Value
	for _, r := range d.Rows {
		if r[d.Schema.Index("x")].Equal(removedVal) {
			t.Fatalf("rows with x=%v should be gone", removedVal)
		}
	}
	if d.NumRows() != 15 {
		t.Errorf("rows after reduct = %d, want 15 (20 - 5 in cluster)", d.NumRows())
	}
}

func TestMaterializeClearedAttrDropsColumn(t *testing.T) {
	sp := testSpace()
	bits := sp.FullBitmap()
	bits.Clear(sp.AttrEntry("x"))
	d := sp.Materialize(bits)
	if d.Schema.Has("x") {
		t.Error("masked attribute should be dropped from the schema view")
	}
	if d.NumRows() != 20 {
		t.Error("masking a column must not remove rows")
	}
}

func TestMaterializeWidthPanic(t *testing.T) {
	sp := testSpace()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bitmap width mismatch")
		}
	}()
	sp.Materialize(NewBitmap(1))
}

func sameTable(a, b *table.Table) bool {
	if len(a.Schema) != len(b.Schema) || len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Schema {
		if a.Schema[i] != b.Schema[i] {
			return false
		}
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			av, bv := a.Rows[i][j], b.Rows[i][j]
			if av.IsNull() != bv.IsNull() {
				return false
			}
			if !av.IsNull() && !av.Equal(bv) {
				return false
			}
		}
	}
	return true
}

// Property: the incremental (row-index) materialization produces the
// identical dataset to the scratch row-scan on randomized bitmaps,
// including attribute masking and UDF chains.
func TestMaterializeIncrementalMatchesScan(t *testing.T) {
	for _, withUDF := range []bool{false, true} {
		sp := testSpace()
		if withUDF {
			sp.RegisterUDF(DropSparseRowsUDF(0.5))
		}
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			bits := sp.FullBitmap()
			for i := 0; i < bits.Len(); i++ {
				if rng.Intn(3) == 0 {
					bits.Clear(i)
				}
			}
			return sameTable(sp.Materialize(bits), sp.materializeScan(bits))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("withUDF=%v: %v", withUDF, err)
		}
	}
}

// Property: materialized datasets shrink monotonically as bits clear.
func TestMaterializeMonotone(t *testing.T) {
	sp := testSpace()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := sp.FullBitmap()
		prev := sp.Materialize(bits).NumRows()
		// Clear literal entries one by one; row count must not grow.
		for _, li := range sp.LiteralEntries("x") {
			if rng.Intn(2) == 0 {
				continue
			}
			bits.Clear(li)
			cur := sp.Materialize(bits).NumRows()
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestNewSpaceColumnsParity: a space built with SpaceConfig.Columns
// derives exactly the entries of the scan-built space — the column-fed
// k-means clusters the same floats — and the source also feeds the row
// index, so materialization agrees too.
func TestNewSpaceColumnsParity(t *testing.T) {
	u := nullableUniversal()
	cfg := SpaceConfig{
		MaxLiteralsPerAttr: 4,
		SkipLiteralAttrs:   []string{"id"},
		ProtectedAttrs:     []string{"id"},
	}
	want := NewSpace(u, "target", cfg)
	src := &tableColumns{u: u}
	cfg.Columns = src
	got := NewSpace(u, "target", cfg)
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("entry count %d != %d", len(got.Entries), len(want.Entries))
	}
	for i := range want.Entries {
		if got.Entries[i] != want.Entries[i] {
			t.Fatalf("entry %d = %v, want %v", i, got.Entries[i], want.Entries[i])
		}
	}
	if !src.asked["x"] || !src.asked["n"] {
		t.Error("numeric attributes should have been derived from the column source")
	}
	// The same source must be wired into row-index construction.
	if got.colSrc == nil {
		t.Fatal("SpaceConfig.Columns should set the space's column source")
	}
	b := want.FullBitmap()
	b.Clear(want.LiteralEntries("x")[0])
	if !sameTable(got.Materialize(b), want.Materialize(b)) {
		t.Fatal("materialization diverged between column-fed and scan-built spaces")
	}
}

// A column source that does not cover an attribute (or covers it at
// the wrong width) must leave that attribute on the scan path, not
// change its literals.
func TestNewSpaceColumnsFallback(t *testing.T) {
	u := nullableUniversal()
	cfg := SpaceConfig{
		MaxLiteralsPerAttr: 4,
		SkipLiteralAttrs:   []string{"id"},
		ProtectedAttrs:     []string{"id"},
	}
	want := NewSpace(u, "target", cfg)
	cfg.Columns = &tableColumns{u: u, short: true}
	got := NewSpace(u, "target", cfg)
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("entry count %d != %d", len(got.Entries), len(want.Entries))
	}
	for i := range want.Entries {
		if got.Entries[i] != want.Entries[i] {
			t.Fatalf("entry %d = %v, want %v", i, got.Entries[i], want.Entries[i])
		}
	}
}
