package fst

import (
	"repro/internal/skyline"
)

// State is a node of the running graph G_T: a bitmap identifying a
// dataset, the level it was spawned at, and (once valuated) its
// performance vector s.P.
type State struct {
	Bits  Bitmap
	Level int
	Perf  skyline.Vector
	// Via is the bitmap entry whose flip produced this state from its
	// parent (-1 for start states), recording the transition operator.
	Via int
	// EstLo and EstHi are the parameterized ranges [p̂_l, p̂_u] used by
	// BiMODis' correlation-based pruning for unvaluated measures; nil
	// when no parameterization has been performed.
	EstLo skyline.Vector
	EstHi skyline.Vector
}

// Key returns the state's identity.
func (s *State) Key() StateKey { return s.Bits.Key() }

// Direction selects how OpGen spawns children.
type Direction uint8

const (
	// Forward applies Reduct operators (flip 1 → 0), the
	// reduce-from-universal strategy.
	Forward Direction = iota
	// Backward applies Augment operators (flip 0 → 1), the backward
	// frontier of BiMODis.
	Backward
)

// Transition records one edge (s, op, s') of the running graph.
type Transition struct {
	From  StateKey
	To    StateKey
	Entry int
	Dir   Direction
}

// RunningGraph is the DAG G_T = (V, δ) spawned by a running of T.
type RunningGraph struct {
	Nodes map[StateKey]*State
	Edges []Transition
}

// NewRunningGraph returns an empty graph.
func NewRunningGraph() *RunningGraph {
	return &RunningGraph{Nodes: map[StateKey]*State{}}
}

// AddNode registers a state if new, returning the canonical instance.
func (g *RunningGraph) AddNode(s *State) *State {
	k := s.Key()
	if ex, ok := g.Nodes[k]; ok {
		return ex
	}
	g.Nodes[k] = s
	return s
}

// AddEdge records a transition.
func (g *RunningGraph) AddEdge(from, to *State, entry int, dir Direction) {
	g.Edges = append(g.Edges, Transition{From: from.Key(), To: to.Key(), Entry: entry, Dir: dir})
}

// NumNodes returns |V|.
func (g *RunningGraph) NumNodes() int { return len(g.Nodes) }

// Valuated reports whether s.P has been filled.
func (s *State) Valuated() bool { return len(s.Perf) > 0 }

// spawn fills out with one child per flipped entry index delivered by
// iterate. The State headers come from one slab allocation; each child
// owns its bitmap words (a shared words arena would pin every sibling's
// memory for as long as any one child stays on the frontier).
func spawn(s *State, count int, iterate func(f func(i int))) []*State {
	if count == 0 {
		return nil
	}
	out := make([]*State, 0, count)
	states := make([]State, count)
	idx := 0
	iterate(func(i int) {
		child := &states[idx]
		*child = State{Bits: s.Bits.Clone(), Level: s.Level + 1, Via: i}
		child.Bits.Flip(i)
		out = append(out, child)
		idx++
	})
	return out
}

// OpGen spawns all one-flip children of s in the given direction,
// mirroring procedure OpGen of Algorithm 1: every set (resp. cleared)
// bitmap entry yields one applicable Reduct (resp. Augment) operator.
func OpGen(s *State, dir Direction) []*State {
	if dir == Forward {
		return spawn(s, s.Bits.Ones(), s.Bits.ForEachSet)
	}
	return spawn(s, s.Bits.Len()-s.Bits.Ones(), s.Bits.ForEachClear)
}

// OpGenEntries is OpGen restricted to a subset of entry indexes; used by
// the backward search to only re-augment entries absent from the back
// state.
func OpGenEntries(s *State, dir Direction, entries []int) []*State {
	count := 0
	for _, i := range entries {
		if (dir == Forward) == s.Bits.Get(i) {
			count++
		}
	}
	return spawn(s, count, func(f func(i int)) {
		for _, i := range entries {
			if (dir == Forward) == s.Bits.Get(i) {
				f(i)
			}
		}
	})
}

// BackSt initializes the backward start state s_b of BiMODis: all
// attribute entries stay present, and literal entries are greedily
// cleared while every value of the target's active domain remains
// covered by at least one surviving tuple — the paper's "minimal set of
// tuples that covers all values of adom of the target". The coverage
// scan walks the space's per-literal removed-row bitmaps (the same
// index Materialize and RowsFor share) instead of rescanning the
// universal table once per literal.
func BackSt(sp *Space) Bitmap {
	bits := sp.FullBitmap()
	tgtIdx := sp.Universal.Schema.Index(sp.Target)

	// coverage counts, per target value, how many present tuples carry it.
	coverage := map[string]int{}
	if tgtIdx >= 0 {
		for _, r := range sp.Universal.Rows {
			if !r[tgtIdx].IsNull() {
				coverage[r[tgtIdx].Key()]++
			}
		}
	}

	lost := map[string]int{}
	for i, e := range sp.Entries {
		if e.Kind != EntryLiteral {
			continue
		}
		// Tally target coverage lost if this literal's rows go away.
		clear(lost)
		if tgtIdx >= 0 {
			sp.forEachLitRow(i, func(row int) {
				if tv := sp.Universal.Rows[row][tgtIdx]; !tv.IsNull() {
					lost[tv.Key()]++
				}
			})
		}
		ok := true
		for k, n := range lost {
			if coverage[k]-n <= 0 {
				ok = false
				break
			}
		}
		if ok {
			bits.Clear(i)
			for k, n := range lost {
				coverage[k] -= n
			}
		}
	}
	return bits
}

// backStScan is the original per-literal table rescan, kept as the
// reference implementation BackSt is property-tested against.
func backStScan(sp *Space) Bitmap {
	bits := sp.FullBitmap()
	tgtIdx := sp.Universal.Schema.Index(sp.Target)
	coverage := map[string]int{}
	if tgtIdx >= 0 {
		for _, r := range sp.Universal.Rows {
			if !r[tgtIdx].IsNull() {
				coverage[r[tgtIdx].Key()]++
			}
		}
	}
	colIdx := map[string]int{}
	for i, c := range sp.Universal.Schema {
		colIdx[c.Name] = i
	}
	for i, e := range sp.Entries {
		if e.Kind != EntryLiteral {
			continue
		}
		ci := colIdx[e.Attr]
		lost := map[string]int{}
		for _, r := range sp.Universal.Rows {
			if r[ci].Equal(e.Literal.Value) {
				if tgtIdx >= 0 && !r[tgtIdx].IsNull() {
					lost[r[tgtIdx].Key()]++
				}
			}
		}
		ok := true
		for k, n := range lost {
			if coverage[k]-n <= 0 {
				ok = false
				break
			}
		}
		if ok {
			bits.Clear(i)
			for k, n := range lost {
				coverage[k] -= n
			}
		}
	}
	return bits
}
