package fst

import (
	"testing"
)

func TestOpGenForward(t *testing.T) {
	s := &State{Bits: BitmapOf(true, true, false), Level: 2}
	kids := OpGen(s, Forward)
	if len(kids) != 2 {
		t.Fatalf("forward children = %d, want 2 (one per set bit)", len(kids))
	}
	for _, k := range kids {
		if k.Level != 3 {
			t.Error("child level should be parent+1")
		}
		if k.Bits.Ones() != 1 {
			t.Error("forward child should clear exactly one bit")
		}
	}
}

func TestOpGenBackward(t *testing.T) {
	s := &State{Bits: BitmapOf(true, false, false)}
	kids := OpGen(s, Backward)
	if len(kids) != 2 {
		t.Fatalf("backward children = %d, want 2 (one per cleared bit)", len(kids))
	}
	for _, k := range kids {
		if k.Bits.Ones() != 2 {
			t.Error("backward child should set exactly one bit")
		}
	}
}

func TestOpGenEntries(t *testing.T) {
	s := &State{Bits: BitmapOf(true, true, true)}
	kids := OpGenEntries(s, Forward, []int{1})
	if len(kids) != 1 {
		t.Fatalf("restricted children = %d, want 1", len(kids))
	}
	if kids[0].Bits.Get(1) {
		t.Error("entry 1 should be cleared")
	}
}

func TestOpGenDoesNotMutateParent(t *testing.T) {
	s := &State{Bits: BitmapOf(true, true)}
	_ = OpGen(s, Forward)
	if s.Bits.Ones() != 2 {
		t.Error("OpGen must not mutate the parent bitmap")
	}
}

func TestRunningGraphDedup(t *testing.T) {
	g := NewRunningGraph()
	a := &State{Bits: BitmapOf(true)}
	b := &State{Bits: BitmapOf(true)}
	ra := g.AddNode(a)
	rb := g.AddNode(b)
	if ra != rb {
		t.Error("identical bitmaps should resolve to one node")
	}
	if g.NumNodes() != 1 {
		t.Errorf("nodes = %d, want 1", g.NumNodes())
	}
	c := g.AddNode(&State{Bits: BitmapOf(false)})
	g.AddEdge(ra, c, 0, Forward)
	if len(g.Edges) != 1 {
		t.Error("edge not recorded")
	}
}

func TestBackStCoversTargetClasses(t *testing.T) {
	sp := testSpace()
	bits := BackSt(sp)
	d := sp.Materialize(bits)
	// Every target class present in the universal table must survive.
	want := sp.Universal.ActiveDomain("target")
	got := d.ActiveDomain("target")
	if len(got) != len(want) {
		t.Fatalf("back state covers %d target classes, want %d", len(got), len(want))
	}
	// And the back state should be genuinely smaller than universal.
	if d.NumRows() >= sp.Universal.NumRows() {
		t.Errorf("back state rows = %d, not smaller than universal %d", d.NumRows(), sp.Universal.NumRows())
	}
}

func TestBackStKeepsAttrEntries(t *testing.T) {
	sp := testSpace()
	bits := BackSt(sp)
	if !bits.Get(sp.AttrEntry("x")) || !bits.Get(sp.AttrEntry("season")) {
		t.Error("BackSt should keep attribute entries set")
	}
}

func TestStateValuated(t *testing.T) {
	s := &State{}
	if s.Valuated() {
		t.Error("fresh state is not valuated")
	}
	s.Perf = []float64{0.1}
	if !s.Valuated() {
		t.Error("state with perf should be valuated")
	}
}
