package fst

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/skyline"
)

// Test is one valuated test tuple t = (M, D, P) with its performance
// vector.
type Test struct {
	Key  StateKey
	Perf skyline.Vector
	// Features is the state feature vector used to train estimators.
	Features []float64
	// Version is the table version the valuation is current for: the
	// record semantically keys tests by (Key, Version), retaining only
	// the current version (see AdvanceTo). Put and GetOrCompute stamp
	// it; persisted records carry it so warm restarts can re-validate
	// old valuations against rows appended since.
	Version uint64
}

// TestSet is the historical record T of valuated tests, memoizing by
// state key so repeated states load their vector instead of
// re-valuating. It is safe for concurrent use: the key map is sharded
// behind per-shard mutexes, and GetOrCompute single-flights concurrent
// valuations of the same state, so parallel workers (and parallel
// engine runs sharing one record) never duplicate a model inference.
//
// Registration into the valuation order (All/Columns, which feed the
// correlation graph and the diversification normalizer) is decoupled
// from computation: GetOrCompute memoizes the vector immediately, but a
// test only enters the order when Put is called. Search runs commit
// their batches in deterministic child order, so the order — and
// everything derived from it — is identical however many workers
// computed the vectors.
type TestSet struct {
	shards [testShards]testShard

	hits   atomic.Int64
	misses atomic.Int64
	shared atomic.Int64

	// version is the table version every live entry is current for;
	// AdvanceTo moves it forward when rows are appended, dropping the
	// entries the new rows invalidate. Entries are thus semantically
	// keyed by (StateKey, version) with exactly one version retained.
	version atomic.Uint64

	ordMu sync.RWMutex
	order []*Test
	sink  func(*Test)
}

// MemoStats are a TestSet's lifetime memoization counters — the memo
// hit rate the serving layer exports on /metrics.
type MemoStats struct {
	// Hits counts Get probes answered from the memo.
	Hits int64
	// Misses counts Get probes that found nothing (including states
	// whose valuation was still in flight).
	Misses int64
	// Shared counts GetOrCompute calls resolved by another caller's
	// flight — model inferences saved by single-flighting, on top of
	// the plan-time hits.
	Shared int64
}

// MemoStats snapshots the memoization counters.
func (ts *TestSet) MemoStats() MemoStats {
	return MemoStats{Hits: ts.hits.Load(), Misses: ts.misses.Load(), Shared: ts.shared.Load()}
}

// testShards is the shard count of the key map; a power of two so the
// well-mixed Zobrist key selects a shard by masking.
const testShards = 16

type testShard struct {
	mu sync.Mutex
	m  map[StateKey]*testSlot
}

// testSlot is the single-flight cell of one state key: done closes when
// the test (or the computation's error) is available.
type testSlot struct {
	done    chan struct{}
	t       *Test
	err     error
	ordered bool
}

// closedCh is the pre-closed channel of slots born completed (Put).
var closedCh = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// NewTestSet returns an empty record.
func NewTestSet() *TestSet {
	ts := &TestSet{}
	for i := range ts.shards {
		ts.shards[i].m = map[StateKey]*testSlot{}
	}
	return ts
}

func (ts *TestSet) shardFor(key StateKey) *testShard {
	return &ts.shards[uint64(key)&(testShards-1)]
}

// Get loads a memoized test. In-flight computations do not block it: a
// state still being valuated reports absent.
func (ts *TestSet) Get(key StateKey) (*Test, bool) {
	sh := ts.shardFor(key)
	sh.mu.Lock()
	s, ok := sh.m[key]
	sh.mu.Unlock()
	if !ok {
		ts.misses.Add(1)
		return nil, false
	}
	select {
	case <-s.done:
	default:
		ts.misses.Add(1)
		return nil, false
	}
	if s.err != nil {
		ts.misses.Add(1)
		return nil, false
	}
	ts.hits.Add(1)
	return s.t, true
}

// GetOrCompute returns the test for key, running compute at most once
// across concurrent callers: the first caller computes while the rest
// block until the result lands — or until their ctx fires, which
// surfaces ctx.Err() immediately while the owning flight carries on.
// computed reports whether this call ran compute — its caller owns the
// follow-up bookkeeping (exact-call counting, estimator observation,
// and Put for order registration). A failed computation is forgotten,
// so a later caller retries; waiters of the failed flight receive its
// error.
func (ts *TestSet) GetOrCompute(ctx context.Context, key StateKey, compute func() (*Test, error)) (t *Test, computed bool, err error) {
	sh := ts.shardFor(key)
	sh.mu.Lock()
	if s, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		select {
		case <-s.done:
			if s.err == nil {
				ts.shared.Add(1)
			}
			return s.t, false, s.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	s := &testSlot{done: make(chan struct{})}
	sh.m[key] = s
	sh.mu.Unlock()

	// Finish the flight no matter how compute exits: a panic unwinding
	// through it must vacate the slot and release waiters, or the key
	// would be poisoned forever for any caller that recovers above.
	settled := false
	defer func() {
		if settled {
			return
		}
		sh.mu.Lock()
		delete(sh.m, key)
		sh.mu.Unlock()
		s.err = errFlightPanicked
		close(s.done)
	}()

	t, err = compute()
	if err != nil {
		sh.mu.Lock()
		delete(sh.m, key)
		sh.mu.Unlock()
		s.err = err
		settled = true
		close(s.done)
		return nil, false, err
	}
	t.Version = ts.version.Load()
	s.t = t
	settled = true
	close(s.done)
	return t, true, nil
}

// errFlightPanicked is what waiters of a flight receive when its
// compute panicked; the panic itself propagates to the owning caller.
var errFlightPanicked = errors.New("fst: valuation flight panicked")

// Put records a valuated test (idempotent per key, first writer wins)
// and registers it in the valuation order exactly once. It returns the
// canonical test stored under the key — or, when a concurrent run's
// exact flight for the key is still in the air, the caller's own test
// unrecorded: commits never block on a peer's model inference, and the
// flight's owner registers the canonical result itself.
func (ts *TestSet) Put(t *Test) *Test {
	sh := ts.shardFor(t.Key)
	for {
		sh.mu.Lock()
		s, ok := sh.m[t.Key]
		if !ok {
			// Stamp on install, under the shard lock: concurrent runs Put
			// the same canonical *Test (handed out by one GetOrCompute
			// flight), so a stamp outside the lock would be a write race.
			// Tests already recorded carry their install-time stamp.
			t.Version = ts.version.Load()
			s = &testSlot{done: closedCh, t: t}
			sh.m[t.Key] = s
		}
		select {
		case <-s.done:
		default:
			// A concurrent run has an exact flight for this key in the
			// air. Don't block a commit on a peer's model inference: the
			// flight's owner registers the canonical result at its own
			// commit, and this run's value stands for this run alone.
			sh.mu.Unlock()
			return t
		}
		if s.err != nil {
			// Completed-with-error slots are being vacated; retry.
			sh.mu.Unlock()
			continue
		}
		canonical := s.t
		enter := !s.ordered
		s.ordered = true
		sh.mu.Unlock()
		if enter {
			ts.ordMu.Lock()
			ts.order = append(ts.order, canonical)
			if ts.sink != nil {
				// Under ordMu on purpose: the sink sees tests in exactly
				// the order All() reports, so a persisted log replayed
				// through Put reconstructs the valuation order verbatim.
				ts.sink(canonical)
			}
			ts.ordMu.Unlock()
		}
		return canonical
	}
}

// SetSink installs fn to observe every test the moment it enters the
// valuation order — the persistence hook. fn runs with the order lock
// held (Len/All/Columns block while it runs), sees tests in exactly
// valuation order, and must therefore be fast and non-blocking; a
// write-behind enqueue qualifies. A nil fn detaches. Tests already in
// the order are not replayed to fn — install the sink before the
// first Put (recovery does: replay feeds Put first, then the sink is
// attached).
func (ts *TestSet) SetSink(fn func(*Test)) {
	ts.ordMu.Lock()
	ts.sink = fn
	ts.ordMu.Unlock()
}

// Len returns the number of recorded tests.
func (ts *TestSet) Len() int {
	ts.ordMu.RLock()
	defer ts.ordMu.RUnlock()
	return len(ts.order)
}

// All returns a snapshot of the tests in valuation order.
func (ts *TestSet) All() []*Test {
	ts.ordMu.RLock()
	defer ts.ordMu.RUnlock()
	return append([]*Test(nil), ts.order...)
}

// AppendAll snapshots the valuation order into dst (reusing its
// capacity) — the allocation-free variant of All for hot loops that
// re-snapshot as the record grows, e.g. BiMODis' per-window prune
// history.
func (ts *TestSet) AppendAll(dst []*Test) []*Test {
	ts.ordMu.RLock()
	defer ts.ordMu.RUnlock()
	return append(dst[:0], ts.order...)
}

// Version returns the table version the record is current for.
func (ts *TestSet) Version() uint64 { return ts.version.Load() }

// AdvanceTo moves the record to table version v — the memo side of a
// row append. Every completed entry is screened through valid (the
// caller's row-selection predicate, typically Space.SelectionUnchanged
// over the appended rows): surviving tests are re-stamped with v and
// stay memoized, the rest are dropped, and in-flight computations are
// forgotten (their owners finish, but the result is never recorded —
// under the no-runs-during-append contract there are none). The
// valuation order keeps only surviving tests, in their original
// order, so the correlation graph and diversification normalizer see
// a record consistent with the new table. A nil valid drops
// everything. It returns the number of completed valuations dropped.
//
// v must be at least the current version; AdvanceTo(current, ...) is
// permitted (a re-validation pass) and re-screens the record without
// moving the version.
func (ts *TestSet) AdvanceTo(v uint64, valid func(*Test) bool) (invalidated int) {
	for i := range ts.shards {
		ts.shards[i].mu.Lock()
	}
	ts.ordMu.Lock()
	defer func() {
		ts.ordMu.Unlock()
		for i := testShards - 1; i >= 0; i-- {
			ts.shards[i].mu.Unlock()
		}
	}()
	if cur := ts.version.Load(); v < cur {
		panic(fmt.Sprintf("fst: AdvanceTo(%d) below current version %d", v, cur))
	}
	ts.version.Store(v)
	for i := range ts.shards {
		m := ts.shards[i].m
		for key, s := range m {
			select {
			case <-s.done:
			default:
				// In-flight: the eventual result valuates the old table.
				delete(m, key)
				continue
			}
			if s.err != nil {
				delete(m, key)
				continue
			}
			if valid != nil && valid(s.t) {
				s.t.Version = v
				continue
			}
			delete(m, key)
			invalidated++
		}
	}
	keep := ts.order[:0]
	for _, t := range ts.order {
		if t.Version == v {
			keep = append(keep, t)
		}
	}
	for i := len(keep); i < len(ts.order); i++ {
		ts.order[i] = nil
	}
	ts.order = keep
	return invalidated
}

// Columns returns, for measure index j, the series of recorded values —
// the distribution the correlation graph G_C is computed from.
func (ts *TestSet) Columns(numMeasures int) [][]float64 {
	ts.ordMu.RLock()
	defer ts.ordMu.RUnlock()
	cols := make([][]float64, numMeasures)
	for _, t := range ts.order {
		for j := 0; j < numMeasures && j < len(t.Perf); j++ {
			cols[j] = append(cols[j], t.Perf[j])
		}
	}
	return cols
}
