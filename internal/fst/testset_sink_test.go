package fst

import (
	"sync"
	"testing"

	"repro/internal/skyline"
)

// TestSinkSeesValuationOrder: under concurrent Puts, the sink's
// sequence is exactly the valuation order All() reports — the
// invariant the persisted memo log relies on.
func TestSinkSeesValuationOrder(t *testing.T) {
	ts := NewTestSet()
	var mu sync.Mutex
	var sunk []StateKey
	ts.SetSink(func(tt *Test) {
		mu.Lock()
		sunk = append(sunk, tt.Key)
		mu.Unlock()
	})

	const n = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				// Overlapping keys across workers: each key must reach
				// the sink exactly once.
				k := StateKey(uint64(i)*2654435761 + uint64(w%2))
				ts.Put(&Test{Key: k, Perf: skyline.Vector{float64(i)}})
			}
		}(w)
	}
	wg.Wait()

	order := ts.All()
	mu.Lock()
	defer mu.Unlock()
	if len(sunk) != len(order) {
		t.Fatalf("sink saw %d tests, order has %d", len(sunk), len(order))
	}
	for i, tt := range order {
		if sunk[i] != tt.Key {
			t.Fatalf("sink order diverges from valuation order at %d: %x vs %x", i, sunk[i], tt.Key)
		}
	}
}

// TestSinkIdempotentPut: re-Putting an existing key neither re-sinks
// nor re-orders it — replayed logs with duplicate records (a retried
// batch after a failed fsync) recover to the same state.
func TestSinkIdempotentPut(t *testing.T) {
	ts := NewTestSet()
	var sunk int
	ts.SetSink(func(*Test) { sunk++ })
	first := &Test{Key: 7, Perf: skyline.Vector{1, 2}}
	ts.Put(first)
	got := ts.Put(&Test{Key: 7, Perf: skyline.Vector{9, 9}})
	if got != first {
		t.Fatal("second Put did not return the canonical test")
	}
	if sunk != 1 || ts.Len() != 1 {
		t.Fatalf("sunk=%d len=%d, want 1/1", sunk, ts.Len())
	}
}
