package fst

import "repro/internal/table"

// UDF is a task-specific user-defined function applied to every
// materialized dataset, the extension point of Section 3: "the operators
// can be enriched by task-specific UDFs that perform additional data
// imputation, or pruning operations". UDFs run after the bitmap's
// Reduct/mask operators, in registration order.
type UDF func(*table.Table) *table.Table

// RegisterUDF appends a post-materialization UDF to the space. UDFs must
// be deterministic, or the fixed-model guarantee breaks.
func (sp *Space) RegisterUDF(f UDF) { sp.udfs = append(sp.udfs, f) }

// UDFCount reports how many UDFs are registered — the workload
// descriptor's registry fingerprint reads it, since UDF funcs carry no
// names of their own.
func (sp *Space) UDFCount() int { return len(sp.udfs) }

// applyUDFs runs the registered UDF chain.
func (sp *Space) applyUDFs(d *table.Table) *table.Table {
	for _, f := range sp.udfs {
		d = f(d)
	}
	return d
}

// ImputeMeansUDF fills null numeric cells with the column mean — the
// imputation example of Section 3. String and target columns pass
// through untouched.
func ImputeMeansUDF(target string) UDF {
	return func(d *table.Table) *table.Table {
		out := d.Clone()
		for ci, col := range out.Schema {
			if col.Name == target || col.Kind == table.KindString {
				continue
			}
			var sum float64
			var n int
			for _, r := range out.Rows {
				if !r[ci].IsNull() {
					sum += r[ci].AsFloat()
					n++
				}
			}
			if n == 0 {
				continue
			}
			mean := sum / float64(n)
			for _, r := range out.Rows {
				if r[ci].IsNull() {
					if col.Kind == table.KindInt {
						r[ci] = table.Int(int64(mean))
					} else {
						r[ci] = table.Float(mean)
					}
				}
			}
		}
		return out
	}
}

// DropSparseRowsUDF removes tuples with more than maxNullFrac of their
// cells null — the pruning example of Section 3.
func DropSparseRowsUDF(maxNullFrac float64) UDF {
	return func(d *table.Table) *table.Table {
		out := table.New(d.Name, d.Schema)
		width := float64(len(d.Schema))
		for _, r := range d.Rows {
			nulls := 0
			for _, v := range r {
				if v.IsNull() {
					nulls++
				}
			}
			if width > 0 && float64(nulls)/width > maxNullFrac {
				continue
			}
			out.Rows = append(out.Rows, r.Clone())
		}
		return out
	}
}
