package fst

import (
	"testing"

	"repro/internal/table"
)

func TestImputeMeansUDF(t *testing.T) {
	sp := testSpace()
	sp.RegisterUDF(ImputeMeansUDF("target"))
	bits := sp.FullBitmap()
	// Mask x, then verify... masking drops the column, so instead build
	// a table with a null directly through the UDF.
	udf := ImputeMeansUDF("target")
	tb := table.New("t", table.Schema{
		{Name: "x", Kind: table.KindFloat},
		{Name: "target", Kind: table.KindInt},
	})
	tb.MustAppend(table.Row{table.Float(2), table.Int(0)})
	tb.MustAppend(table.Row{table.Null, table.Int(1)})
	tb.MustAppend(table.Row{table.Float(4), table.Int(0)})
	out := udf(tb)
	if got := out.Rows[1][0].AsFloat(); got != 3 {
		t.Errorf("imputed value = %v, want 3 (mean of 2,4)", got)
	}
	// Target column untouched even when null-free requirement not met.
	if out.Rows[1][1].AsInt() != 1 {
		t.Error("target column must pass through")
	}
	// Materialize applies the registered chain without error.
	d := sp.Materialize(bits)
	if d.NumRows() != sp.Universal.NumRows() {
		t.Error("UDF chain changed the full-bitmap row count unexpectedly")
	}
}

func TestDropSparseRowsUDF(t *testing.T) {
	udf := DropSparseRowsUDF(0.5)
	tb := table.New("t", table.Schema{
		{Name: "a", Kind: table.KindFloat},
		{Name: "b", Kind: table.KindFloat},
	})
	tb.MustAppend(table.Row{table.Float(1), table.Float(2)}) // 0% null: keep
	tb.MustAppend(table.Row{table.Null, table.Float(2)})     // 50% null: keep (not >)
	tb.MustAppend(table.Row{table.Null, table.Null})         // 100% null: drop
	out := udf(tb)
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", out.NumRows())
	}
}

func TestUDFChainOrder(t *testing.T) {
	sp := testSpace()
	var order []int
	sp.RegisterUDF(func(d *table.Table) *table.Table {
		order = append(order, 1)
		return d
	})
	sp.RegisterUDF(func(d *table.Table) *table.Table {
		order = append(order, 2)
		return d
	})
	sp.Materialize(sp.FullBitmap())
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("UDF order = %v, want [1 2]", order)
	}
}
