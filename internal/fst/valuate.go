package fst

import (
	"context"
	"sync/atomic"

	"repro/internal/skyline"
	"repro/internal/workpool"
)

// ValuationStats are the per-run valuation counters (the paper's N
// budget accounting). They live with the run rather than the Config so
// one configuration can serve concurrent runs; the counters are atomic
// so progress hooks may read them while workers are in flight.
type ValuationStats struct {
	valuations atomic.Int64
	exactCalls atomic.Int64
}

// Valuations reports the number of states valuated so far (memo hits
// are free and do not count).
func (s *ValuationStats) Valuations() int { return int(s.valuations.Load()) }

// ExactCalls reports how many valuations ran real model inference.
func (s *ValuationStats) ExactCalls() int { return int(s.exactCalls.Load()) }

// Valuator drives the valuations of one search run: it owns the run's
// ValuationStats and fans exact model inferences of independent
// sibling states across up to parallelism workers of the
// process-global inference pool.
//
// Results are deterministic in the parallelism degree: each window is
// planned sequentially in child order (memo lookups, budget slots,
// surrogate decisions against the estimator as trained before the
// window), only the exact model inferences — the expensive part — run
// on the pool, and every side effect (test-set order, estimator
// observations, exact-call counts, the children's Perf vectors) is
// committed sequentially in child order afterwards. The progressive
// window schedule (see MaxWindow) is a constant, so a run with
// parallelism n produces byte-identical skylines and reports to the
// same run with parallelism 1.
type Valuator struct {
	cfg    *Config
	par    int
	runner ExactRunner
	queue  *workpool.Queue // lane into the process-global pool (par > 1, no runner)

	// Stats are this run's counters; read them for budgets and reports.
	Stats *ValuationStats

	jobs  []valJob
	exact []int
	tasks []func()
}

// ExactRunner executes the exact-inference tasks of one valuation
// window on behalf of a Valuator — the window-alignment hook of the
// serving layer. A scheduler installs one runner handle per run
// (SetExactRunner) and may hold a submitted window briefly so the
// windows of concurrent runs over the same configuration execute as
// one pooled pass; overlapping states then share a single model
// inference through the test set's single-flight instead of merely
// meeting in the memo later.
//
// The contract is simple: RunExact must call every task exactly once,
// in any order and on any goroutines, return only when all calls have
// completed, and not retain the task slice afterwards (the valuator
// reuses it across windows). Each task is self-contained (it carries its run's
// context and writes only its own job slot), so any compliant runner —
// sequential, pooled, or merged across runs — leaves the run's
// results byte-identical: planning and committing stay in child order
// on the run's own goroutine.
type ExactRunner interface {
	RunExact(ctx context.Context, tasks []func())
}

// SetExactRunner installs the run's exact-inference runner, replacing
// the built-in execution path for every subsequent window. A nil
// runner restores the built-in path (inline for parallelism <= 1, the
// process-global pool otherwise).
func (v *Valuator) SetExactRunner(r ExactRunner) { v.runner = r }

// NewValuator returns a valuator for one run of this configuration.
// parallelism is the exact-inference worker count; values below 2 mean
// sequential. The model must support concurrent Evaluate calls when
// parallelism > 1.
func (c *Config) NewValuator(parallelism int) *Valuator {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Valuator{cfg: c, par: parallelism, Stats: &ValuationStats{}}
}

// Parallelism returns the configured worker count.
func (v *Valuator) Parallelism() int { return v.par }

// Valuate valuates a single state bitmap against this run's counters —
// the start-state path; frontiers of children go through ValuateStates.
// It is the single-state window, so the policy (memo adoption, warmup
// gate, ExactEvery, canonical-memo commit) and the cancellation
// behavior are exactly the batch ones — root valuations are often the
// largest inferences of a run, so they too honor ctx.
func (v *Valuator) Valuate(ctx context.Context, bits Bitmap) (skyline.Vector, error) {
	s := &State{Bits: bits}
	if _, err := v.ValuateWindow(ctx, []*State{s}, 0); err != nil {
		return nil, err
	}
	return s.Perf, nil
}

// valJob is one planned valuation of a batch.
type valJob struct {
	state    *State
	key      StateKey
	feats    []float64
	perf     skyline.Vector // surrogate answer (exact == false)
	exact    bool
	test     *Test // exact result (owned or single-flighted from a peer)
	computed bool
	err      error
}

// MaxWindow caps the progressive valuation window: batches are
// planned, executed, and committed in windows that start at one state
// and double up to this cap, so early results feed the next window's
// surrogate (and, in BiMODis, pruning) decisions with near-sequential
// freshness while wide expansions still saturate the worker pool. The
// schedule is a constant — never a function of the parallelism degree
// or the machine — which is what keeps results identical for every
// pool size; it also caps how many workers one window can keep busy.
const MaxWindow = 16

// GrowWindow advances the progressive window schedule: 1, 2, 4, 8,
// MaxWindow, MaxWindow, ... Shared by ValuateStates and search loops
// (BiMODis' prune chunking) so both refresh at the same boundaries.
func GrowWindow(size int) int {
	size *= 2
	if size > MaxWindow {
		size = MaxWindow
	}
	return size
}

// ValuateStates fills Perf for a deterministic prefix of states — the
// independent children of one frontier expansion — processing them in
// progressive windows (see MaxWindow). Memo hits cost nothing;
// budget > 0 caps this run's total valuations, cutting the batch short
// exactly where the sequential search would stop. It returns how many
// leading states were processed; states[n:] are left untouched (and
// unvaluated). Cancellation drains the pool and surfaces ctx.Err();
// the side effects of children preceding the first error commit first
// — exactly those a sequential run would have committed before
// stopping at that child.
func (v *Valuator) ValuateStates(ctx context.Context, states []*State, budget int) (int, error) {
	done := 0
	size := 1
	for done < len(states) {
		end := done + size
		if end > len(states) {
			end = len(states)
		}
		window := states[done:end]
		n, err := v.ValuateWindow(ctx, window, budget)
		done += n
		if err != nil {
			return done, err
		}
		if n < len(window) { // window cut short: budget exhausted
			break
		}
		size = GrowWindow(size)
	}
	return done, nil
}

// ValuateWindow plans, executes, and commits one window as a unit: the
// surrogate consults the estimator as trained before the window, all
// exact inferences of the window fan out across the pool together, and
// side effects commit in child order. Search loops that interleave
// their own bookkeeping between windows (BiMODis' pruning) drive this
// directly with GrowWindow-sized slices; everything else goes through
// ValuateStates.
func (v *Valuator) ValuateWindow(ctx context.Context, states []*State, budget int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	c := v.cfg
	jobs := v.jobs[:0]
	exact := v.exact[:0]
	exactStart := v.Stats.ExactCalls()

	// Plan sequentially in child order: assign budget slots and decide
	// memo/surrogate/exact per child. The warmup gate is evaluated
	// against the exact-call count at window start, so the decision does
	// not depend on which worker finishes first.
	n := 0
	for _, s := range states {
		if budget > 0 && v.Stats.Valuations() >= budget {
			break
		}
		n++
		key := s.Bits.Key()
		if t, ok := c.Tests.Get(key); ok {
			// Re-Put the canonical test: idempotent for anything already
			// in the valuation order, and it adopts orphans — tests
			// memoized by a run that was cancelled between computation
			// and commit — into the order at a deterministic point.
			s.Perf = c.Tests.Put(t).Perf
			continue
		}
		cnt := v.Stats.valuations.Add(1)
		feats := s.Bits.Floats()
		j := valJob{state: s, key: key, feats: feats}
		useSurrogate := c.Est != nil && exactStart >= c.WarmupExact
		if useSurrogate && c.ExactEvery > 0 && int(cnt)%c.ExactEvery == 0 {
			useSurrogate = false
		}
		if useSurrogate {
			if p, ok := c.estimate(feats); ok {
				j.perf = clampVec(p)
			} else {
				j.exact = true
			}
		} else {
			j.exact = true
		}
		if j.exact {
			exact = append(exact, len(jobs))
		}
		jobs = append(jobs, j)
	}
	v.jobs, v.exact = jobs, exact

	// Fan the exact inferences out across the pool.
	v.runExact(ctx, jobs, exact)

	// Commit in child order: Perf vectors, test-set order, exact-call
	// counts and estimator observations — identical for any pool size.
	for i := range jobs {
		j := &jobs[i]
		if !j.exact {
			// Adopt the canonical memo entry as the state's vector: if a
			// concurrent run exact-computed this state first, its result
			// wins everywhere — the run's report then matches what the
			// shared memo will serve forever after. With no contention
			// the canonical test is ours and nothing changes.
			j.state.Perf = c.Tests.Put(&Test{Key: j.key, Perf: j.perf, Features: j.feats}).Perf
			continue
		}
		if j.err != nil {
			return n, j.err
		}
		j.state.Perf = j.test.Perf
		if j.computed {
			v.Stats.exactCalls.Add(1)
			c.observe(j.feats, j.test.Perf)
		}
		// Put regardless of who computed it: registers our own result in
		// the valuation order, and adopts single-flighted results whose
		// owning run was cancelled before its commit.
		c.Tests.Put(j.test)
	}
	return n, nil
}

// runExact executes the exact jobs: inline on the calling goroutine
// when par <= 1, otherwise through the process-global worker pool
// (workpool.Global) on a per-run queue whose share limit is par — so
// the total inference concurrency of the process stays bounded by one
// fixed worker set however many runs are in flight. An installed
// ExactRunner replaces both paths: the window's tasks are handed over
// as one batch so a scheduler can align them with the windows of
// concurrent runs (and route them into its own pool). Tasks observe
// ctx: once cancelled, remaining jobs are marked with ctx.Err() and
// the window drains quickly.
func (v *Valuator) runExact(ctx context.Context, jobs []valJob, exact []int) {
	if len(exact) == 0 {
		return
	}
	run := func(j *valJob) {
		if err := ctx.Err(); err != nil {
			j.err = err
			return
		}
		t, computed, err := v.cfg.Tests.GetOrCompute(ctx, j.key, func() (*Test, error) {
			p, err := v.cfg.evaluateExact(j.state.Bits)
			if err != nil {
				return nil, err
			}
			return &Test{Key: j.key, Perf: p, Features: j.feats}, nil
		})
		if err != nil {
			j.err = err
			return
		}
		j.test, j.computed = t, computed
	}
	if v.runner != nil {
		tasks := v.tasks[:0]
		for _, i := range exact {
			j := &jobs[i]
			tasks = append(tasks, func() { run(j) })
		}
		v.tasks = tasks
		v.runner.RunExact(ctx, tasks)
		return
	}
	if v.par <= 1 || len(exact) == 1 {
		for _, i := range exact {
			run(&jobs[i])
		}
		return
	}
	if v.queue == nil {
		v.queue = workpool.Global().NewQueue("fst", v.par)
	}
	tasks := v.tasks[:0]
	for _, i := range exact {
		j := &jobs[i]
		tasks = append(tasks, func() { run(j) })
	}
	v.tasks = tasks
	v.queue.Run(tasks)
}
