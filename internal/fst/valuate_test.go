package fst

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/skyline"
	"repro/internal/table"
)

// TestGetOrComputeSingleFlight: concurrent callers racing on one key
// share a single computation.
func TestGetOrComputeSingleFlight(t *testing.T) {
	ts := NewTestSet()
	var computes atomic.Int64
	release := make(chan struct{})
	const callers = 8

	var wg sync.WaitGroup
	results := make([]*Test, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _, err := ts.GetOrCompute(context.Background(), 42, func() (*Test, error) {
				computes.Add(1)
				<-release
				return &Test{Key: 42, Perf: skyline.Vector{0.5}}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = got
		}(i)
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1 (single flight)", n)
	}
	for _, r := range results {
		if r != results[0] {
			t.Error("callers received different test instances")
		}
	}
}

// TestGetOrComputeWaiterHonorsContext: a caller waiting on another
// flight returns ctx.Err() as soon as its context fires instead of
// blocking for the full inference; the owning flight is undisturbed.
func TestGetOrComputeWaiterHonorsContext(t *testing.T) {
	ts := NewTestSet()
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		ts.GetOrCompute(context.Background(), 5, func() (*Test, error) {
			close(started)
			<-release
			return &Test{Key: 5, Perf: skyline.Vector{0.2}}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ts.GetOrCompute(ctx, 5, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
	// The owning flight still lands its result.
	tst, computed, err := ts.GetOrCompute(context.Background(), 5, nil)
	if err != nil || computed || tst == nil || tst.Perf[0] != 0.2 {
		t.Fatalf("flight result lost: %v computed=%v err=%v", tst, computed, err)
	}
}

// TestGetOrComputeErrorVacatesSlot: a failed flight is forgotten so a
// later caller retries, and only Put registers the valuation order.
func TestGetOrComputeErrorVacatesSlot(t *testing.T) {
	ts := NewTestSet()
	boom := errors.New("boom")
	if _, _, err := ts.GetOrCompute(context.Background(), 7, func() (*Test, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := ts.Get(7); ok {
		t.Fatal("failed computation must not be memoized")
	}
	tst, computed, err := ts.GetOrCompute(context.Background(), 7, func() (*Test, error) {
		return &Test{Key: 7, Perf: skyline.Vector{0.1}}, nil
	})
	if err != nil || !computed {
		t.Fatalf("retry: computed=%v err=%v", computed, err)
	}
	if ts.Len() != 0 {
		t.Fatal("GetOrCompute must not register the order; that is Put's job")
	}
	if canonical := ts.Put(tst); canonical != tst {
		t.Error("Put of a computed test must return it as canonical")
	}
	if ts.Len() != 1 {
		t.Fatalf("order length = %d, want 1", ts.Len())
	}
	// Re-putting is idempotent: same canonical, no duplicate order entry.
	ts.Put(&Test{Key: 7, Perf: skyline.Vector{9}})
	if ts.Len() != 1 {
		t.Fatal("duplicate Put grew the order")
	}
}

// safeCountModel is countingModel with a mutex: concurrent valuation
// requires models to tolerate concurrent Evaluate calls.
type safeCountModel struct {
	mu    sync.Mutex
	calls int
}

func (m *safeCountModel) Name() string { return "safe-counting" }

func (m *safeCountModel) Evaluate(d *table.Table) ([]float64, error) {
	m.mu.Lock()
	m.calls++
	m.mu.Unlock()
	return []float64{float64(d.NumRows()) / 100, float64(d.NumCols()) / 100}, nil
}

func (m *safeCountModel) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls
}

// TestValuateStatesBudgetCut: the batch stops exactly at the budget and
// leaves the remaining states untouched, like the sequential loop.
func TestValuateStatesBudgetCut(t *testing.T) {
	cfg := testConfig(&countingModel{})
	cfg.Validate()
	val := cfg.NewValuator(4)

	full := cfg.Space.FullBitmap()
	var states []*State
	for i := 0; i < 6; i++ {
		b := full.Clone()
		b.Clear(i)
		states = append(states, &State{Bits: b, Level: 1, Via: i})
	}
	n, err := val.ValuateStates(context.Background(), states, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("processed %d states, want 4 (budget)", n)
	}
	if val.Stats.Valuations() != 4 {
		t.Fatalf("valuations = %d, want 4", val.Stats.Valuations())
	}
	for _, s := range states[:4] {
		if !s.Valuated() {
			t.Error("processed state missing its vector")
		}
	}
	for _, s := range states[4:] {
		if s.Valuated() {
			t.Error("beyond-budget state must stay unvaluated")
		}
	}
}

// TestValuateStatesMemoHitsAreFree: memoized states fill from T without
// consuming budget or model calls.
func TestValuateStatesMemoHitsAreFree(t *testing.T) {
	m := &countingModel{}
	cfg := testConfig(m)
	cfg.Validate()
	val := cfg.NewValuator(1)

	full := cfg.Space.FullBitmap()
	b := full.Clone()
	b.Clear(0)
	if _, err := val.Valuate(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	states := []*State{{Bits: b.Clone(), Level: 1}}
	n, err := val.ValuateStates(context.Background(), states, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !states[0].Valuated() {
		t.Fatal("memo hit must still fill the state")
	}
	if val.Stats.Valuations() != 1 {
		t.Errorf("valuations = %d, want 1 (hit is free)", val.Stats.Valuations())
	}
	if m.calls != 1 {
		t.Errorf("model calls = %d, want 1", m.calls)
	}
}

// TestValuateStatesCancelledContext: cancellation surfaces as ctx.Err()
// from the batch.
func TestValuateStatesCancelledContext(t *testing.T) {
	cfg := testConfig(&countingModel{})
	cfg.Validate()
	val := cfg.NewValuator(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := cfg.Space.FullBitmap()
	_, err := val.ValuateStates(ctx, []*State{{Bits: b}}, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestConcurrentValuatorsShareMemo: two runs' valuators against one
// config race over the same states; the memo single-flights so the
// model never evaluates one state twice, and both runs see vectors.
func TestConcurrentValuatorsShareMemo(t *testing.T) {
	m := &safeCountModel{}
	cfg := testConfig(m)
	cfg.Validate()

	full := cfg.Space.FullBitmap()
	mkStates := func() []*State {
		var out []*State
		for i := 0; i < cfg.Space.Size(); i++ {
			b := full.Clone()
			b.Clear(i)
			out = append(out, &State{Bits: b, Level: 1, Via: i})
		}
		return out
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val := cfg.NewValuator(2)
			states := mkStates()
			if _, err := val.ValuateStates(context.Background(), states, 0); err != nil {
				t.Error(err)
			}
			for _, s := range states {
				if !s.Valuated() {
					t.Error("state left unvaluated")
				}
			}
		}()
	}
	wg.Wait()
	if m.count() != cfg.Space.Size() {
		t.Errorf("model calls = %d, want %d (cross-run single flight)", m.count(), cfg.Space.Size())
	}
}

// recordingRunner is a minimal compliant ExactRunner: it runs every
// task inline (in reverse order, to prove order-independence) and
// counts the windows it received.
type recordingRunner struct {
	mu      sync.Mutex
	windows int
	tasks   int
}

func (r *recordingRunner) RunExact(ctx context.Context, tasks []func()) {
	r.mu.Lock()
	r.windows++
	r.tasks += len(tasks)
	r.mu.Unlock()
	for i := len(tasks) - 1; i >= 0; i-- {
		tasks[i]()
	}
}

// TestExactRunnerMatchesBuiltinPool: any compliant runner — here one
// that executes windows in reverse on the caller's goroutine — yields
// byte-identical valuations, order, and stats to the built-in pool,
// and receives exactly the exact-inference tasks.
func TestExactRunnerMatchesBuiltinPool(t *testing.T) {
	run := func(install bool) ([]*State, *Valuator, *recordingRunner, *TestSet) {
		cfg := testConfig(&countingModel{})
		cfg.Validate()
		val := cfg.NewValuator(1)
		rr := &recordingRunner{}
		if install {
			val.SetExactRunner(rr)
		}
		full := cfg.Space.FullBitmap()
		var states []*State
		for i := 0; i < cfg.Space.Size(); i++ {
			b := full.Clone()
			b.Clear(i)
			states = append(states, &State{Bits: b, Level: 1, Via: i})
		}
		if _, err := val.ValuateStates(context.Background(), states, 0); err != nil {
			t.Fatal(err)
		}
		return states, val, rr, cfg.Tests
	}

	base, bval, _, border := run(false)
	got, gval, rr, gorder := run(true)
	if rr.windows == 0 || rr.tasks != len(got) {
		t.Fatalf("runner saw %d windows / %d tasks, want all %d exact inferences", rr.windows, rr.tasks, len(got))
	}
	if bval.Stats.Valuations() != gval.Stats.Valuations() || bval.Stats.ExactCalls() != gval.Stats.ExactCalls() {
		t.Errorf("stats diverge: pool (%d, %d) runner (%d, %d)",
			bval.Stats.Valuations(), bval.Stats.ExactCalls(), gval.Stats.Valuations(), gval.Stats.ExactCalls())
	}
	for i := range base {
		if len(base[i].Perf) != len(got[i].Perf) {
			t.Fatalf("state %d vector length diverges", i)
		}
		for j := range base[i].Perf {
			if base[i].Perf[j] != got[i].Perf[j] {
				t.Fatalf("state %d perf diverges: %v vs %v", i, base[i].Perf, got[i].Perf)
			}
		}
	}
	ba, ga := border.All(), gorder.All()
	if len(ba) != len(ga) {
		t.Fatalf("valuation order lengths diverge: %d vs %d", len(ba), len(ga))
	}
	for i := range ba {
		if ba[i].Key != ga[i].Key {
			t.Fatalf("valuation order diverges at %d", i)
		}
	}
}
