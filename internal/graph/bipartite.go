// Package graph provides the bipartite-graph substrate of task T5: a
// user–item interaction graph and a LightGCN-style link scorer. The
// scorer is a fixed deterministic model (no SGD): one-hot initial
// embeddings propagated through the symmetric normalized adjacency and
// layer-averaged — the exact closed-form expectation of LightGCN's
// untrained forward pass [He et al. 2020].
package graph

import (
	"math"
	"sort"
)

// Edge is one user–item interaction.
type Edge struct {
	User, Item int
	Weight     float64
}

// Bipartite is a user–item interaction graph.
type Bipartite struct {
	NumUsers, NumItems int
	Edges              []Edge
}

// NewBipartite returns an empty graph with the given node counts.
func NewBipartite(users, items int) *Bipartite {
	return &Bipartite{NumUsers: users, NumItems: items}
}

// AddEdge appends an interaction; out-of-range endpoints are ignored.
func (b *Bipartite) AddEdge(u, i int, w float64) {
	if u < 0 || u >= b.NumUsers || i < 0 || i >= b.NumItems {
		return
	}
	b.Edges = append(b.Edges, Edge{User: u, Item: i, Weight: w})
}

// Clone deep-copies the graph.
func (b *Bipartite) Clone() *Bipartite {
	out := NewBipartite(b.NumUsers, b.NumItems)
	out.Edges = append([]Edge(nil), b.Edges...)
	return out
}

// Degrees returns user and item degrees.
func (b *Bipartite) Degrees() (du, di []float64) {
	du = make([]float64, b.NumUsers)
	di = make([]float64, b.NumItems)
	for _, e := range b.Edges {
		du[e.User]++
		di[e.Item]++
	}
	return du, di
}

// ScorerConfig controls the LightGCN-style propagation. Dim and Seed are
// retained for the training-cost proxy and API stability; the scorer
// itself is the closed-form dim→∞ limit (one-hot initial embeddings), so
// no seed enters the scores.
type ScorerConfig struct {
	Dim    int // nominal embedding dimension (cost proxy), default 16
	Layers int // propagation layers, default 2
	Seed   int64
}

// Scorer predicts link scores by layer-averaged embedding propagation
// with one-hot initial embeddings: score(u,i) is the symmetric
// degree-normalized 2-hop path count between u and i, the exact
// expectation of LightGCN's untrained forward pass.
type Scorer struct {
	cfg ScorerConfig
	// userItems[u] and itemUsers[i] hold (neighbor, normalized weight).
	userItems [][]arc
	itemUsers [][]arc
	// userProf caches the user→user affinity vector c_u (lazy).
	userProf []map[int]float64
}

type arc struct {
	to int
	w  float64
}

// FitScorer builds the scorer over the training graph: it indexes the
// symmetric normalized adjacency Â (weights n_ui = w_ui/√(d_u d_i)).
func FitScorer(b *Bipartite, cfg ScorerConfig) *Scorer {
	if cfg.Dim <= 0 {
		cfg.Dim = 16
	}
	if cfg.Layers <= 0 {
		cfg.Layers = 2
	}
	s := &Scorer{
		cfg:       cfg,
		userItems: make([][]arc, b.NumUsers),
		itemUsers: make([][]arc, b.NumItems),
		userProf:  make([]map[int]float64, b.NumUsers),
	}
	du, di := b.Degrees()
	for _, e := range b.Edges {
		w := e.Weight
		if w == 0 {
			w = 1
		}
		norm := w / math.Sqrt(math.Max(du[e.User], 1)*math.Max(di[e.Item], 1))
		s.userItems[e.User] = append(s.userItems[e.User], arc{e.Item, norm})
		s.itemUsers[e.Item] = append(s.itemUsers[e.Item], arc{e.User, norm})
	}
	return s
}

// profile returns c_u[v] = Σ_{j∈N(u)} n_uj · n_vj: u's affinity to every
// user v sharing an item with u (the layer-2 one-hot embedding of u
// restricted to the user basis).
func (s *Scorer) profile(u int) map[int]float64 {
	if s.userProf[u] != nil {
		return s.userProf[u]
	}
	c := map[int]float64{}
	for _, ji := range s.userItems[u] {
		for _, vi := range s.itemUsers[ji.to] {
			c[vi.to] += ji.w * vi.w
		}
	}
	s.userProf[u] = c
	return c
}

// Score returns the predicted affinity of a user–item pair: the
// layer-averaged dot product <e_u^{1..L}, e_i^{1..L}> with one-hot
// initial embeddings, which reduces to normalized common-neighbor path
// counts ⟨u→*→v→i⟩ plus ⟨u→j→*→i⟩.
func (s *Scorer) Score(u, i int) float64 {
	if u < 0 || u >= len(s.userItems) || i < 0 || i >= len(s.itemUsers) {
		return 0
	}
	cu := s.profile(u)
	var sc float64
	// User-basis term: Σ_{v∈N(i)} n_vi · c_u[v].
	for _, vi := range s.itemUsers[i] {
		sc += vi.w * cu[vi.to]
	}
	// Item-basis term: Σ_{j∈N(u)} n_uj · (Σ_{v∈N(i)} n_vi·n_vj),
	// computed through i's user neighborhood to stay O(deg²).
	inU := map[int]float64{}
	for _, ji := range s.userItems[u] {
		inU[ji.to] += ji.w
	}
	for _, vi := range s.itemUsers[i] {
		for _, jv := range s.userItems[vi.to] {
			if wu, ok := inU[jv.to]; ok {
				sc += wu * vi.w * jv.w
			}
		}
	}
	return sc
}

// RankItems returns the item ids of the candidate set ordered by
// descending score for the user.
func (s *Scorer) RankItems(u int, candidates []int) []int {
	out := append([]int(nil), candidates...)
	sort.SliceStable(out, func(x, y int) bool { return s.Score(u, out[x]) > s.Score(u, out[y]) })
	return out
}
