package graph

import (
	"math/rand"
	"sort"

	"repro/internal/ml"
)

// EvalConfig controls link-prediction evaluation.
type EvalConfig struct {
	// HoldoutFrac is the per-user fraction of edges held out for testing.
	HoldoutFrac float64
	// NumNegatives is the number of sampled non-edges ranked against
	// each user's held-out items.
	NumNegatives int
	Seed         int64
	Scorer       ScorerConfig
}

// EvalResult holds the ranking metrics of one evaluation: the measures
// P5 of the paper (Table 3).
type EvalResult struct {
	P5, P10 float64 // precision@5, @10
	R5, R10 float64 // recall@5, @10
	N5, N10 float64 // NDCG@5, @10
	// TrainCost is a deterministic training-cost proxy: propagation work
	// in edge·layer·dim units.
	TrainCost float64
}

// Evaluate splits the graph per user into train/test edges, fits the
// scorer on the training part, and ranks held-out items against sampled
// negatives, averaging P@n / R@n / NDCG@n over users with test edges.
func Evaluate(b *Bipartite, cfg EvalConfig) EvalResult {
	if cfg.HoldoutFrac <= 0 || cfg.HoldoutFrac >= 1 {
		cfg.HoldoutFrac = 0.3
	}
	if cfg.NumNegatives <= 0 {
		cfg.NumNegatives = 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	byUser := map[int][]Edge{}
	for _, e := range b.Edges {
		byUser[e.User] = append(byUser[e.User], e)
	}
	train := NewBipartite(b.NumUsers, b.NumItems)
	test := map[int]map[int]bool{}
	for u := 0; u < b.NumUsers; u++ {
		edges := byUser[u]
		if len(edges) == 0 {
			continue
		}
		perm := rng.Perm(len(edges))
		nTest := int(float64(len(edges)) * cfg.HoldoutFrac)
		if nTest < 1 && len(edges) > 1 {
			nTest = 1
		}
		for i, p := range perm {
			e := edges[p]
			if i < nTest {
				if test[u] == nil {
					test[u] = map[int]bool{}
				}
				test[u][e.Item] = true
			} else {
				train.Edges = append(train.Edges, e)
			}
		}
	}

	scorer := FitScorer(train, cfg.Scorer)
	hasEdge := map[[2]int]bool{}
	for _, e := range b.Edges {
		hasEdge[[2]int{e.User, e.Item}] = true
	}

	// Iterate users in ascending order: map iteration would make the
	// negative sampling — and thus the whole evaluation — nondeterministic.
	users := make([]int, 0, len(test))
	for u := range test {
		users = append(users, u)
	}
	sort.Ints(users)

	var lists []ml.RankedList
	for _, u := range users {
		items := test[u]
		if len(items) == 0 {
			continue
		}
		candidates := make([]int, 0, len(items)+cfg.NumNegatives)
		for i := range items {
			candidates = append(candidates, i)
		}
		sort.Ints(candidates)
		for tries := 0; len(candidates) < len(items)+cfg.NumNegatives && tries < 10*cfg.NumNegatives; tries++ {
			i := rng.Intn(b.NumItems)
			if !hasEdge[[2]int{u, i}] {
				candidates = append(candidates, i)
			}
		}
		ranked := scorer.RankItems(u, candidates)
		rl := make(ml.RankedList, len(ranked))
		for pos, item := range ranked {
			if items[item] {
				rl[pos] = 1
			}
		}
		lists = append(lists, rl)
	}

	dim := cfg.Scorer.Dim
	if dim <= 0 {
		dim = 16
	}
	layers := cfg.Scorer.Layers
	if layers <= 0 {
		layers = 2
	}
	return EvalResult{
		P5:        ml.MeanRanked(lists, func(r ml.RankedList) float64 { return r.PrecisionAt(5) }),
		P10:       ml.MeanRanked(lists, func(r ml.RankedList) float64 { return r.PrecisionAt(10) }),
		R5:        ml.MeanRanked(lists, func(r ml.RankedList) float64 { return r.RecallAt(5) }),
		R10:       ml.MeanRanked(lists, func(r ml.RankedList) float64 { return r.RecallAt(10) }),
		N5:        ml.MeanRanked(lists, func(r ml.RankedList) float64 { return r.NDCGAt(5) }),
		N10:       ml.MeanRanked(lists, func(r ml.RankedList) float64 { return r.NDCGAt(10) }),
		TrainCost: float64(len(train.Edges)) * float64(layers) * float64(dim),
	}
}
