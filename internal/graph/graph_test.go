package graph

import (
	"math/rand"
	"testing"
)

// communityGraph builds a planted 2-community bipartite graph plus
// optional noise edges.
func communityGraph(users, items, perUser int, noise int, seed int64) *Bipartite {
	rng := rand.New(rand.NewSource(seed))
	b := NewBipartite(users, items)
	for u := 0; u < users; u++ {
		comm := u % 2
		for e := 0; e < perUser; e++ {
			i := comm + 2*rng.Intn(items/2)
			b.AddEdge(u, i, 1)
		}
	}
	for e := 0; e < noise; e++ {
		u := rng.Intn(users)
		i := rng.Intn(items)
		for i%2 == u%2 {
			i = rng.Intn(items)
		}
		b.AddEdge(u, i, 0.3)
	}
	return b
}

func TestAddEdgeBounds(t *testing.T) {
	b := NewBipartite(2, 2)
	b.AddEdge(5, 0, 1)
	b.AddEdge(0, -1, 1)
	if len(b.Edges) != 0 {
		t.Error("out-of-range edges must be ignored")
	}
	b.AddEdge(1, 1, 1)
	if len(b.Edges) != 1 {
		t.Error("valid edge dropped")
	}
}

func TestDegrees(t *testing.T) {
	b := NewBipartite(2, 2)
	b.AddEdge(0, 0, 1)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 1, 1)
	du, di := b.Degrees()
	if du[0] != 2 || du[1] != 1 || di[0] != 1 || di[1] != 2 {
		t.Errorf("degrees = %v %v", du, di)
	}
}

func TestScorerDeterministic(t *testing.T) {
	b := communityGraph(20, 20, 5, 10, 1)
	s1 := FitScorer(b, ScorerConfig{Dim: 8, Layers: 2, Seed: 3})
	s2 := FitScorer(b, ScorerConfig{Dim: 8, Layers: 2, Seed: 3})
	for u := 0; u < 5; u++ {
		for i := 0; i < 5; i++ {
			if s1.Score(u, i) != s2.Score(u, i) {
				t.Fatal("same seed must give identical scores")
			}
		}
	}
}

func TestScorerPrefersCommunityItems(t *testing.T) {
	b := communityGraph(30, 30, 8, 0, 2)
	s := FitScorer(b, ScorerConfig{Dim: 16, Layers: 2, Seed: 1})
	// For user 0 (community 0), mean score over even (same community)
	// items should exceed mean over odd items.
	var same, cross float64
	for i := 0; i < 30; i += 2 {
		same += s.Score(0, i)
	}
	for i := 1; i < 30; i += 2 {
		cross += s.Score(0, i)
	}
	if same <= cross {
		t.Errorf("community structure not captured: same=%v cross=%v", same, cross)
	}
}

func TestScorerOutOfRange(t *testing.T) {
	b := communityGraph(4, 4, 2, 0, 3)
	s := FitScorer(b, ScorerConfig{})
	if s.Score(99, 0) != 0 || s.Score(0, 99) != 0 {
		t.Error("out-of-range score should be 0")
	}
}

func TestRankItemsOrdering(t *testing.T) {
	b := communityGraph(20, 20, 6, 0, 4)
	s := FitScorer(b, ScorerConfig{Dim: 8, Layers: 2, Seed: 1})
	cands := []int{0, 1, 2, 3, 4, 5}
	ranked := s.RankItems(0, cands)
	if len(ranked) != len(cands) {
		t.Fatal("rank must preserve candidate count")
	}
	for i := 1; i < len(ranked); i++ {
		if s.Score(0, ranked[i-1]) < s.Score(0, ranked[i]) {
			t.Fatal("ranking not descending")
		}
	}
}

func TestEvaluateMetricsInRange(t *testing.T) {
	b := communityGraph(30, 30, 8, 20, 5)
	r := Evaluate(b, EvalConfig{Seed: 7})
	for _, v := range []float64{r.P5, r.P10, r.R5, r.R10, r.N5, r.N10} {
		if v < 0 || v > 1 {
			t.Fatalf("metric out of range: %+v", r)
		}
	}
	if r.TrainCost <= 0 {
		t.Error("train cost must be positive")
	}
}

func TestEvaluateCleanBeatsNoisy(t *testing.T) {
	clean := communityGraph(30, 30, 8, 0, 6)
	noisy := communityGraph(30, 30, 8, 120, 6)
	rc := Evaluate(clean, EvalConfig{Seed: 7})
	rn := Evaluate(noisy, EvalConfig{Seed: 7})
	if rc.P10 <= rn.P10 {
		t.Errorf("clean graph P@10 %v should beat noisy %v", rc.P10, rn.P10)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	b := communityGraph(20, 20, 6, 10, 8)
	r1 := Evaluate(b, EvalConfig{Seed: 7})
	r2 := Evaluate(b, EvalConfig{Seed: 7})
	if r1 != r2 {
		t.Error("evaluation must be deterministic under a fixed seed")
	}
}

func TestCloneIndependence(t *testing.T) {
	b := communityGraph(5, 5, 2, 0, 9)
	cp := b.Clone()
	cp.Edges[0].Weight = 99
	if b.Edges[0].Weight == 99 {
		t.Error("Clone must deep-copy edges")
	}
}
