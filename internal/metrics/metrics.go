// Package metrics is the observability substrate of the serving
// layer: a dependency-free writer for the Prometheus text exposition
// format and a sliding-window reservoir for latency quantiles. The
// daemon's GET /metrics and the proxy's node aggregation are built on
// it; cmd/modisload scrapes the output to attribute merge rate and
// memo hits to a load run.
package metrics

import (
	"bytes"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Label is one name="value" pair of a sample. Emit labels in a fixed
// order so successive scrapes of the same series are byte-comparable.
type Label struct {
	Name  string
	Value string
}

// Writer accumulates one exposition in the Prometheus text format
// (version 0.0.4): # HELP and # TYPE headers followed by samples. Not
// safe for concurrent use; build one per scrape.
type Writer struct {
	buf  bytes.Buffer
	seen map[string]bool
}

// NewWriter returns an empty exposition.
func NewWriter() *Writer {
	return &Writer{seen: map[string]bool{}}
}

// Header emits the # HELP and # TYPE lines for a metric family. typ
// is one of counter, gauge, summary, untyped. Repeated headers for
// the same name are dropped, so callers looping over shards may
// Header unconditionally before each Sample.
func (w *Writer) Header(name, help, typ string) {
	if w.seen[name] {
		return
	}
	w.seen[name] = true
	w.buf.WriteString("# HELP ")
	w.buf.WriteString(name)
	w.buf.WriteByte(' ')
	w.buf.WriteString(strings.NewReplacer("\\", `\\`, "\n", `\n`).Replace(help))
	w.buf.WriteByte('\n')
	w.buf.WriteString("# TYPE ")
	w.buf.WriteString(name)
	w.buf.WriteByte(' ')
	w.buf.WriteString(typ)
	w.buf.WriteByte('\n')
}

// Sample emits one sample line: name{labels} value.
func (w *Writer) Sample(name string, labels []Label, value float64) {
	w.buf.WriteString(name)
	if len(labels) > 0 {
		w.buf.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			w.buf.WriteString(l.Name)
			w.buf.WriteString(`="`)
			w.buf.WriteString(escapeLabel(l.Value))
			w.buf.WriteByte('"')
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(formatValue(value))
	w.buf.WriteByte('\n')
}

// Bytes returns the exposition built so far.
func (w *Writer) Bytes() []byte { return w.buf.Bytes() }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	return strings.NewReplacer("\\", `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}

// formatValue renders a sample value: shortest round-trip float, with
// the spec spellings of the specials.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// reservoirSize is the sliding window: big enough that p99 over a
// load run is meaningful, small enough that a sorted snapshot per
// scrape is trivial.
const reservoirSize = 1024

// Reservoir is a concurrency-safe sliding window of the most recent
// observations (in seconds) plus lifetime count and sum — the state
// behind a Prometheus summary: quantiles over the window, _count and
// _sum over the lifetime.
type Reservoir struct {
	mu    sync.Mutex
	buf   [reservoirSize]float64
	n     int // filled length
	next  int // ring cursor
	count int64
	sum   float64
}

// Observe records one duration.
func (r *Reservoir) Observe(d time.Duration) {
	s := d.Seconds()
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % reservoirSize
	if r.n < reservoirSize {
		r.n++
	}
	r.count++
	r.sum += s
	r.mu.Unlock()
}

// Count returns the lifetime observation count.
func (r *Reservoir) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Sum returns the lifetime sum of observations, in seconds.
func (r *Reservoir) Sum() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sum
}

// Quantiles returns the requested quantiles (each in [0,1]) over the
// window, in seconds, using nearest-rank on a sorted snapshot. With
// no observations every quantile is NaN, the summary convention.
func (r *Reservoir) Quantiles(qs ...float64) []float64 {
	r.mu.Lock()
	snap := make([]float64, r.n)
	copy(snap, r.buf[:r.n])
	r.mu.Unlock()
	out := make([]float64, len(qs))
	if len(snap) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sort.Float64s(snap)
	for i, q := range qs {
		rank := int(math.Ceil(q * float64(len(snap))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(snap) {
			rank = len(snap)
		}
		out[i] = snap[rank-1]
	}
	return out
}
