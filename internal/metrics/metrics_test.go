package metrics_test

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestWriterFormat(t *testing.T) {
	w := metrics.NewWriter()
	w.Header("modis_jobs_total", "Jobs accepted.", "counter")
	w.Sample("modis_jobs_total", []metrics.Label{{Name: "shard", Value: "abc"}, {Name: "status", Value: "done"}}, 3)
	w.Header("modis_jobs_total", "duplicate header must be dropped", "counter")
	w.Sample("modis_pool_busy", nil, 0.5)
	got := string(w.Bytes())
	want := "# HELP modis_jobs_total Jobs accepted.\n" +
		"# TYPE modis_jobs_total counter\n" +
		`modis_jobs_total{shard="abc",status="done"} 3` + "\n" +
		"modis_pool_busy 0.5\n"
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriterEscaping(t *testing.T) {
	w := metrics.NewWriter()
	w.Sample("m", []metrics.Label{{Name: "l", Value: "a\"b\\c\nd"}}, math.NaN())
	got := string(w.Bytes())
	want := `m{l="a\"b\\c\nd"} NaN` + "\n"
	if got != want {
		t.Fatalf("escaping mismatch:\ngot:  %q\nwant: %q", got, want)
	}
}

func TestReservoirQuantiles(t *testing.T) {
	var r metrics.Reservoir
	for i := 1; i <= 100; i++ {
		r.Observe(time.Duration(i) * time.Millisecond)
	}
	qs := r.Quantiles(0.5, 0.99, 1)
	if got := qs[0]; math.Abs(got-0.050) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.050", got)
	}
	if got := qs[1]; math.Abs(got-0.099) > 1e-9 {
		t.Fatalf("p99 = %v, want 0.099", got)
	}
	if got := qs[2]; math.Abs(got-0.100) > 1e-9 {
		t.Fatalf("max = %v, want 0.100", got)
	}
	if got := r.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if got := r.Sum(); math.Abs(got-5.05) > 1e-9 {
		t.Fatalf("Sum = %v, want 5.05", got)
	}
}

func TestReservoirEmpty(t *testing.T) {
	var r metrics.Reservoir
	qs := r.Quantiles(0.5, 0.99)
	for i, q := range qs {
		if !math.IsNaN(q) {
			t.Fatalf("quantile %d over empty reservoir = %v, want NaN", i, q)
		}
	}
}

// TestReservoirWindow: the quantiles slide with the window while the
// lifetime count keeps growing.
func TestReservoirWindow(t *testing.T) {
	var r metrics.Reservoir
	for i := 0; i < 5000; i++ {
		r.Observe(time.Millisecond)
	}
	for i := 0; i < 2000; i++ {
		r.Observe(time.Second)
	}
	if got := r.Quantiles(0.5)[0]; math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("p50 after window slid = %v, want 1.0", got)
	}
	if got := r.Count(); got != 7000 {
		t.Fatalf("Count = %d, want 7000", got)
	}
}

func TestReservoirConcurrent(t *testing.T) {
	var r metrics.Reservoir
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe(time.Millisecond)
				_ = r.Quantiles(0.5, 0.99)
			}
		}()
	}
	wg.Wait()
	if got := r.Count(); got != 2000 {
		t.Fatalf("Count = %d, want 2000", got)
	}
}

// The exposition must end every sample with a newline so scrapers can
// concatenate node outputs (the proxy does).
func TestWriterLineTermination(t *testing.T) {
	w := metrics.NewWriter()
	w.Sample("a", nil, 1)
	w.Sample("b", nil, 2)
	if got := string(w.Bytes()); !strings.HasSuffix(got, "\n") || strings.Count(got, "\n") != 2 {
		t.Fatalf("bad line termination: %q", got)
	}
}
