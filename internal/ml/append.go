package ml

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/table"
)

// AppendRows extends the encoder's frozen columnar state with a batch
// of rows about to be appended to its universal table — the delta
// counterpart of buildMatrix, and the ml side of the space streaming
// lifecycle (fst.AppendableColumns). The matrix is built (from the
// pre-append table) if it wasn't yet, then every column is extended in
// place: decoded values and lazily-allocated null masks grow by the
// batch, numeric dense ranks merge the new values into the sorted
// distinct set (re-ranking old rows when the merge shifts positions —
// only the relative order matters downstream, and that is preserved),
// and the target vector grows with the same null/NaN handling as the
// cold build. String domains are frozen at construction: a row
// carrying a string value outside a column's universal active domain
// (or a new string target class) is rejected, and rejection is atomic
// — nothing is mutated on error. The result is bit-identical to a
// cold encoder built over the concatenated table, which the parity
// tests assert.
//
// AppendRows must not race valuations reading the matrix; the caller
// (Space.Append behind the serving drain gate) sequences it.
func (e *TableEncoder) AppendRows(rows []table.Row) error {
	m := e.Matrix()
	u := e.u
	tIdx := u.Schema.Index(e.target)
	for ri, r := range rows {
		if len(r) != len(u.Schema) {
			return fmt.Errorf("ml: append row %d has %d cells, schema has %d", ri, len(r), len(u.Schema))
		}
		for ci, c := range u.Schema {
			if c.Kind != table.KindString || e.skip[c.Name] {
				continue
			}
			v := r[ci]
			if v.IsNull() {
				continue
			}
			codec := e.cols[c.Name]
			if ci == tIdx {
				codec = e.tgt
			}
			if codec == nil {
				continue
			}
			if _, ok := codec.index[v.Key()]; !ok {
				return fmt.Errorf("ml: append row %d: value %v of column %q outside its frozen universal domain", ri, v, c.Name)
			}
		}
	}
	oldN := m.nRows
	n := oldN + len(rows)
	k := 0
	for ci, c := range u.Schema {
		if ci == tIdx || e.skip[c.Name] {
			continue
		}
		col := &m.cols[k]
		k++
		if col.name != c.Name {
			return fmt.Errorf("ml: matrix column %d is %q, schema says %q", k-1, col.name, c.Name)
		}
		if col.null != nil {
			col.null = append(col.null, make([]bool, len(rows))...)
		}
		setNull := func(i int) {
			if col.null == nil {
				col.null = make([]bool, n)
			}
			col.null[oldN+i] = true
		}
		if col.isStr {
			codec := e.cols[c.Name]
			for i, r := range rows {
				v := r[ci]
				if v.IsNull() {
					setNull(i)
					col.vals = append(col.vals, 0)
					col.rank = append(col.rank, -1)
					continue
				}
				pos := codec.index[v.Key()]
				col.vals = append(col.vals, float64(pos))
				col.rank = append(col.rank, int32(pos))
			}
			continue
		}
		var fresh []float64
		for i, r := range rows {
			v := r[ci]
			if v.IsNull() {
				setNull(i)
				col.vals = append(col.vals, 0)
				col.rank = append(col.rank, -1)
				continue
			}
			f := v.AsFloat()
			col.vals = append(col.vals, f)
			col.rank = append(col.rank, 0) // ranked below
			fresh = append(fresh, f)
		}
		if len(fresh) > 0 {
			sort.Float64s(fresh)
			merged := mergeDistinct(col.distinct, fresh)
			if len(merged) != len(col.distinct) {
				// New distinct values shift positions: remap the old rows'
				// ranks. The remap is strictly increasing, so the relative
				// rank order — all countingOrder consumes — is unchanged.
				remap := make([]int32, len(col.distinct))
				for i, v := range col.distinct {
					remap[i] = int32(sort.SearchFloat64s(merged, v))
				}
				for ri := 0; ri < oldN; ri++ {
					if col.rank[ri] >= 0 {
						col.rank[ri] = remap[col.rank[ri]]
					}
				}
				// The cold build's distinct aliases its sort scratch;
				// merged is fresh storage either way.
				col.distinct = merged
				col.nRank = int32(len(merged))
			}
			for ri := oldN; ri < n; ri++ {
				if col.null != nil && col.null[ri] {
					continue
				}
				col.rank[ri] = int32(sort.SearchFloat64s(col.distinct, col.vals[ri]))
			}
		}
	}
	for _, r := range rows {
		if tIdx < 0 {
			m.yvals = append(m.yvals, 0)
			m.ynull = append(m.ynull, true)
			continue
		}
		v := r[tIdx]
		if v.IsNull() {
			m.yvals = append(m.yvals, 0)
			m.ynull = append(m.ynull, true)
			continue
		}
		if m.ystr {
			m.yvals = append(m.yvals, float64(e.tgt.index[v.Key()]))
			m.ynull = append(m.ynull, false)
			continue
		}
		f := v.AsFloat()
		m.yvals = append(m.yvals, f)
		m.ynull = append(m.ynull, math.IsNaN(f))
	}
	m.nRows = n
	return nil
}

// mergeDistinct merges a sorted distinct slice with a sorted
// (possibly duplicated) batch into fresh sorted-distinct storage.
func mergeDistinct(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v float64
		if j >= len(b) || (i < len(a) && a[i] <= b[j]) {
			v = a[i]
			i++
		} else {
			v = b[j]
			j++
		}
		if len(out) == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
