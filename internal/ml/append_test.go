package ml

import (
	"math/rand"
	"testing"

	"repro/internal/table"
)

// streamRow synthesizes row i over encoderUniversal's schema, cycling
// the frozen string domains and mixing fresh float values (some new
// distinct, some repeats, occasional nulls) so appends exercise the
// dense-rank merge and the null-mask growth.
func streamRow(i int) table.Row {
	seasons := []string{"spring", "summer", "fall", "winter"}
	grades := []string{"a", "b", "c"}
	r := table.Row{
		table.Str(seasons[i%4]),
		table.Str(grades[i%3]),
		table.Float(float64(i%11) + float64(i%3)/4),
		table.Float(float64(i) / 9),
	}
	if i%7 == 0 {
		r[2] = table.Null
	}
	if i%9 == 0 {
		r[3] = table.Null
	}
	return r
}

// sameMatrix asserts two matrices are bit-identical, column by column.
func sameMatrix(t *testing.T, got, want *Matrix) {
	t.Helper()
	if got.nRows != want.nRows || len(got.cols) != len(want.cols) {
		t.Fatalf("shape %dx%d vs %dx%d", got.nRows, len(got.cols), want.nRows, len(want.cols))
	}
	for ci := range want.cols {
		g, w := &got.cols[ci], &want.cols[ci]
		if g.name != w.name || g.isStr != w.isStr || g.nRank != w.nRank {
			t.Fatalf("column %d: header %q/%v/%d vs %q/%v/%d",
				ci, g.name, g.isStr, g.nRank, w.name, w.isStr, w.nRank)
		}
		for ri := 0; ri < want.nRows; ri++ {
			gn := g.null != nil && g.null[ri]
			wn := w.null != nil && w.null[ri]
			if gn != wn {
				t.Fatalf("column %q row %d: null %v vs %v", w.name, ri, gn, wn)
			}
			if wn {
				continue
			}
			if g.vals[ri] != w.vals[ri] || g.rank[ri] != w.rank[ri] {
				t.Fatalf("column %q row %d: val/rank %v/%d vs %v/%d",
					w.name, ri, g.vals[ri], g.rank[ri], w.vals[ri], w.rank[ri])
			}
		}
		if len(g.distinct) != len(w.distinct) {
			t.Fatalf("column %q: %d distinct vs %d", w.name, len(g.distinct), len(w.distinct))
		}
		for i := range w.distinct {
			if g.distinct[i] != w.distinct[i] {
				t.Fatalf("column %q distinct[%d]: %v vs %v", w.name, i, g.distinct[i], w.distinct[i])
			}
		}
	}
	if got.ystr != want.ystr || got.ynRank != want.ynRank {
		t.Fatalf("target header diverges")
	}
	for ri := 0; ri < want.nRows; ri++ {
		if got.ynull[ri] != want.ynull[ri] {
			t.Fatalf("target row %d: null %v vs %v", ri, got.ynull[ri], want.ynull[ri])
		}
		if !want.ynull[ri] && got.yvals[ri] != want.yvals[ri] {
			t.Fatalf("target row %d: %v vs %v", ri, got.yvals[ri], want.yvals[ri])
		}
	}
}

// The streaming contract of the encoder: AppendRows over any sequence
// of batches leaves the matrix bit-identical to a cold encoder built
// over the concatenated table.
func TestAppendRowsMatchesColdBuild(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		u := encoderUniversal()
		enc := NewTableEncoder(u, "target")
		enc.Matrix() // freeze the cold matrix before rows arrive

		next := 1000
		var all []table.Row
		for b := 0; b < 1+rng.Intn(4); b++ {
			var batch []table.Row
			for i := 0; i < 1+rng.Intn(9); i++ {
				batch = append(batch, streamRow(next))
				next++
			}
			if err := enc.AppendRows(batch); err != nil {
				t.Fatal(err)
			}
			// The universal table advances with the matrix, as
			// Space.Append sequences it.
			for _, r := range batch {
				u.MustAppend(r)
			}
			all = append(all, batch...)
		}

		u2, err := table.Concat("D_U", encoderUniversal(), all)
		if err != nil {
			t.Fatal(err)
		}
		cold := NewTableEncoder(u2, "target")
		sameMatrix(t, enc.Matrix(), cold.Matrix())

		// The Column view (what spaces read for the row index) agrees too.
		for _, name := range []string{"season", "grade", "x"} {
			gv, gn, ok1 := enc.Column(name)
			wv, wn, ok2 := cold.Column(name)
			if ok1 != ok2 || len(gv) != len(wv) {
				t.Fatalf("seed %d: Column(%q) shape diverges", seed, name)
			}
			for i := range wv {
				gnull := gn != nil && gn[i]
				wnull := wn != nil && wn[i]
				if gnull != wnull || (!wnull && gv[i] != wv[i]) {
					t.Fatalf("seed %d: Column(%q)[%d] diverges", seed, name, i)
				}
			}
		}
	}
}

// Rejection is atomic: a row with a string outside the frozen
// universal domain (or a new target class) fails the whole batch and
// mutates nothing.
func TestAppendRowsRejectsForeignStringsAtomically(t *testing.T) {
	u := table.New("D_U", table.Schema{
		{Name: "season", Kind: table.KindString},
		{Name: "x", Kind: table.KindFloat},
		{Name: "label", Kind: table.KindString},
	})
	for i := 0; i < 12; i++ {
		u.MustAppend(table.Row{
			table.Str([]string{"spring", "summer"}[i%2]),
			table.Float(float64(i % 5)),
			table.Str([]string{"low", "high"}[i%2]),
		})
	}
	enc := NewTableEncoder(u, "label")
	before := enc.Matrix().nRows

	bad := [][]table.Row{
		{ // foreign feature string
			{table.Str("spring"), table.Float(1), table.Str("low")},
			{table.Str("monsoon"), table.Float(2), table.Str("high")},
		},
		{ // foreign target class
			{table.Str("summer"), table.Float(3), table.Str("mid")},
		},
		{ // arity mismatch
			{table.Str("spring"), table.Float(1)},
		},
	}
	for i, batch := range bad {
		if err := enc.AppendRows(batch); err == nil {
			t.Errorf("bad batch %d accepted", i)
		}
	}
	m := enc.Matrix()
	if m.nRows != before {
		t.Fatalf("rejected batches grew the matrix: %d rows, want %d", m.nRows, before)
	}
	for _, c := range m.cols {
		if len(c.vals) != before || len(c.rank) != before {
			t.Fatalf("column %q mutated by a rejected batch", c.name)
		}
	}

	// Null strings are fine — they assert no domain membership.
	if err := enc.AppendRows([]table.Row{{table.Null, table.Float(1), table.Null}}); err != nil {
		t.Fatalf("null cells rejected: %v", err)
	}
	if enc.Matrix().nRows != before+1 {
		t.Fatal("accepted batch did not land")
	}
}

// Encode keeps reproducing FromTable on children drawn from the grown
// table — the estimator-facing guarantee that appended rows behave
// exactly like rows present at construction.
func TestEncodeAfterAppendMatchesFromTable(t *testing.T) {
	u := encoderUniversal()
	enc := NewTableEncoder(u, "target")
	var batch []table.Row
	for i := 0; i < 15; i++ {
		batch = append(batch, streamRow(i))
	}
	if err := enc.AppendRows(batch); err != nil {
		t.Fatal(err)
	}
	for _, r := range batch {
		u.MustAppend(r)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		child := randomChild(u, rng)
		want := FromTable(child, "target")
		got := enc.Encode(child)
		if len(got.X) != len(want.X) {
			t.Fatalf("trial %d: row count %d != %d", trial, len(got.X), len(want.X))
		}
		for i := range got.X {
			if got.Y[i] != want.Y[i] {
				t.Fatalf("trial %d: y[%d] diverges", trial, i)
			}
			for j := range got.X[i] {
				if got.X[i][j] != want.X[i][j] {
					t.Fatalf("trial %d: x[%d][%d] diverges", trial, i, j)
				}
			}
		}
	}
}
