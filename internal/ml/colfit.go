package ml

import "sort"

// frame is the columnar fitting substrate every learner trains on: the
// feature matrix in column-major form, the target vector, and one
// presorted position order per feature. Both data routes converge here —
// the row-major Fit(X, y) API transposes and sorts once per fit, the
// Matrix/View fast path gathers encoded columns and derives the orders
// from the space-level presorted ranks by counting — so a view fit and a
// dataset fit of the same numbers grow bit-identical trees by
// construction: (value, position) is a total order, hence every correct
// construction yields the same permutation, and all downstream growth is
// shared code.
type frame struct {
	cols [][]float64 // [feature][position]
	y    []float64   // [position]
	n    int
	nf   int
	// base[f] holds positions 0..n-1 sorted ascending by
	// (cols[f][p], p); growth works on copies it partitions in place.
	base [][]int32

	// Backing slabs, retained across the pool so a recycled frame of
	// the same shape reslices instead of reallocating. ybuf backs y
	// only for frames that own their target (ownY); frames built over
	// a caller's y alias it and putFrame drops the alias.
	colBuf []float64
	ordBuf []int32
	ybuf   []float64
}

// getFrame hands out a frame with cols/base carved from pooled slabs,
// recycling the scratch's free list — the successor of the former
// newFrame allocation, which was the largest remaining per-valuation
// allocation of a discovery run.
func (ws *treeScratch) getFrame(nf, n int) *frame {
	var fr *frame
	if k := len(ws.frameFree); k > 0 {
		fr = ws.frameFree[k-1]
		ws.frameFree = ws.frameFree[:k-1]
	} else {
		fr = &frame{}
	}
	fr.n, fr.nf = n, nf
	if need := nf * n; cap(fr.colBuf) < need {
		fr.colBuf = make([]float64, need)
		fr.ordBuf = make([]int32, need)
	}
	if cap(fr.cols) < nf {
		fr.cols = make([][]float64, nf)
		fr.base = make([][]int32, nf)
	}
	fr.cols = fr.cols[:nf]
	fr.base = fr.base[:nf]
	for f := 0; f < nf; f++ {
		fr.cols[f] = fr.colBuf[f*n : (f+1)*n]
		fr.base[f] = fr.ordBuf[f*n : (f+1)*n]
	}
	fr.y = nil
	return fr
}

// putFrame returns a frame to the scratch's free list once its fit is
// done. The target alias is dropped first: frames built by
// frameFromRows alias the caller's y, and the pool must not retain
// another fit's labels.
func (ws *treeScratch) putFrame(fr *frame) {
	if fr == nil {
		return
	}
	fr.y = nil
	ws.frameFree = append(ws.frameFree, fr)
}

// ownY points the frame's target at its own pooled slab (resized to
// n) for constructions that fill y rather than alias a caller's
// slice.
func (fr *frame) ownY(n int) []float64 {
	if cap(fr.ybuf) < n {
		fr.ybuf = make([]float64, n)
	}
	fr.y = fr.ybuf[:n]
	return fr.y
}

// frameFromRows builds the fitting frame of a row-major dataset:
// transpose once, presort every feature once. The per-node sorts of the
// former CART implementation collapse into this single pass.
func frameFromRows(X [][]float64, y []float64, ws *treeScratch) *frame {
	fr := frameFromRowsRaw(X, y, ws)
	for f := 0; f < fr.nf; f++ {
		sortOrder(fr.cols[f], fr.base[f])
	}
	return fr
}

// frameFromRowsRaw transposes without deriving the presorted orders,
// for consumers that re-quantize the columns first (HistGBM) and would
// throw the orders away.
func frameFromRowsRaw(X [][]float64, y []float64, ws *treeScratch) *frame {
	n := len(X)
	nf := 0
	if n > 0 {
		nf = len(X[0])
	}
	fr := ws.getFrame(nf, n)
	fr.y = y
	for i, r := range X {
		for f := 0; f < nf; f++ {
			fr.cols[f][i] = r[f]
		}
	}
	return fr
}

// frameFromCols builds the fitting frame of column-major features:
// cols[f][p] is feature f of example p. The transpose of frameFromRows
// disappears — columns copy straight into the pooled slabs — and the
// presorted orders are derived the same way, so a column fit and a row
// fit of the same numbers grow bit-identical trees.
func frameFromCols(cols [][]float64, y []float64, ws *treeScratch) *frame {
	nf := len(cols)
	n := len(y)
	fr := ws.getFrame(nf, n)
	fr.y = y
	for f, c := range cols {
		copy(fr.cols[f], c)
		sortOrder(fr.cols[f], fr.base[f])
	}
	return fr
}

// sortOrder fills order with positions 0..n-1 sorted by
// (vals[p], p) — the unique total order every frame construction must
// agree on.
func sortOrder(vals []float64, order []int32) {
	for i := range order {
		order[i] = int32(i)
	}
	s := posSorter{vals: vals, pos: order}
	sort.Sort(&s)
}

// posSorter sorts positions by (value, position) through a concrete
// sort.Interface, avoiding sort.Slice's reflection allocations.
type posSorter struct {
	vals []float64
	pos  []int32
}

func (s *posSorter) Len() int { return len(s.pos) }
func (s *posSorter) Less(i, j int) bool {
	vi, vj := s.vals[s.pos[i]], s.vals[s.pos[j]]
	if vi != vj {
		return vi < vj
	}
	return s.pos[i] < s.pos[j]
}
func (s *posSorter) Swap(i, j int) { s.pos[i], s.pos[j] = s.pos[j], s.pos[i] }

// subFrame gathers the positions ps of a parent frame into a pooled
// frame (used by row-subsampling ensembles); orders are re-derived on
// the gathered columns. The caller releases it with putFrame.
func subFrame(fr *frame, ps []int, ws *treeScratch) *frame {
	out := ws.getFrame(fr.nf, len(ps))
	out.ownY(len(ps))
	for i, p := range ps {
		out.y[i] = fr.y[p]
		for f := 0; f < fr.nf; f++ {
			out.cols[f][i] = fr.cols[f][p]
		}
	}
	for f := 0; f < fr.nf; f++ {
		sortOrder(out.cols[f], out.base[f])
	}
	return out
}

// Data is the fitting-facing view of a dataset: the row/column
// accessors metrics need plus the columnar frame learners train on.
// Both *Dataset (the materialize-and-encode route) and *View (the
// zero-materialization Matrix route) implement it, so a task's
// evaluation body is written once and the two routes stay equal by
// sharing it. The interface is sealed to this package by the unexported
// frame constructor.
type Data interface {
	// NumRows returns the number of examples.
	NumRows() int
	// NumFeatures returns the feature count.
	NumFeatures() int
	// SplitData partitions into train and test with the same
	// deterministic shuffle as Dataset.Split.
	SplitData(testFrac float64, seed int64) (train, test Data)
	// Label returns the target of example i.
	Label(i int) float64
	// Row writes the feature vector of example i into dst (resliced to
	// the feature count) and returns it.
	Row(i int, dst []float64) []float64
	// Col writes the values of feature f into dst (resliced to the row
	// count) and returns it.
	Col(f int, dst []float64) []float64

	// buildFrame produces the columnar fitting frame; buildRawFrame
	// skips the per-feature presort for consumers that re-quantize the
	// columns before fitting.
	buildFrame(ws *treeScratch) *frame
	buildRawFrame(ws *treeScratch) *frame
}

// Labels gathers the full target vector of a data view.
func Labels(d Data) []float64 {
	out := make([]float64, d.NumRows())
	for i := range out {
		out[i] = d.Label(i)
	}
	return out
}

// gatherRows materializes the rows of a data view with a single backing
// slab, for learners that train on row-major input (linear models).
func gatherRows(d Data) [][]float64 {
	n, nf := d.NumRows(), d.NumFeatures()
	buf := make([]float64, n*nf)
	out := make([][]float64, n)
	for i := range out {
		out[i] = d.Row(i, buf[i*nf:(i+1)*nf])
	}
	return out
}

// Data implementation for the row-major Dataset.

// SplitData implements Data by delegating to Split.
func (d *Dataset) SplitData(testFrac float64, seed int64) (train, test Data) {
	a, b := d.Split(testFrac, seed)
	return a, b
}

// Label implements Data.
func (d *Dataset) Label(i int) float64 { return d.Y[i] }

// Row implements Data.
func (d *Dataset) Row(i int, dst []float64) []float64 {
	dst = dst[:len(d.X[i])]
	copy(dst, d.X[i])
	return dst
}

// Col implements Data.
func (d *Dataset) Col(f int, dst []float64) []float64 {
	dst = dst[:len(d.X)]
	for i, r := range d.X {
		dst[i] = r[f]
	}
	return dst
}

func (d *Dataset) buildFrame(ws *treeScratch) *frame {
	return frameFromRows(d.X, d.Y, ws)
}

func (d *Dataset) buildRawFrame(ws *treeScratch) *frame {
	return frameFromRowsRaw(d.X, d.Y, ws)
}
