package ml

import "math/rand"

// Fold is one train/validation split of a k-fold partition.
type Fold struct {
	Train *Dataset
	Valid *Dataset
}

// KFold deterministically partitions the dataset into k folds and
// returns the k train/validation pairs. k is clamped to [2, n].
func (d *Dataset) KFold(k int, seed int64) []Fold {
	n := len(d.X)
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		train := &Dataset{Features: d.Features}
		valid := &Dataset{Features: d.Features}
		for i, p := range perm {
			if i >= lo && i < hi {
				valid.X = append(valid.X, d.X[p])
				valid.Y = append(valid.Y, d.Y[p])
			} else {
				train.X = append(train.X, d.X[p])
				train.Y = append(train.Y, d.Y[p])
			}
		}
		folds[f] = Fold{Train: train, Valid: valid}
	}
	return folds
}

// CrossValidate runs k-fold cross-validation: fit trains a model on a
// fold and returns a predictor; score compares predictions against the
// validation labels. It returns the per-fold scores.
func CrossValidate(d *Dataset, k int, seed int64,
	fit func(train *Dataset) func(x []float64) float64,
	score func(yTrue, yPred []float64) float64) []float64 {

	folds := d.KFold(k, seed)
	out := make([]float64, len(folds))
	for i, f := range folds {
		predict := fit(f.Train)
		pred := make([]float64, len(f.Valid.Y))
		for j, x := range f.Valid.X {
			pred[j] = predict(x)
		}
		out[i] = score(f.Valid.Y, pred)
	}
	return out
}
