package ml

import (
	"testing"
)

func cvDataset(n int) *Dataset {
	d := &Dataset{Features: []string{"x"}}
	for i := 0; i < n; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, 2*float64(i))
	}
	return d
}

func TestKFoldPartition(t *testing.T) {
	d := cvDataset(50)
	folds := d.KFold(5, 1)
	if len(folds) != 5 {
		t.Fatalf("folds = %d, want 5", len(folds))
	}
	seen := map[float64]int{}
	for _, f := range folds {
		if f.Train.NumRows()+f.Valid.NumRows() != 50 {
			t.Fatal("fold does not partition the data")
		}
		for _, y := range f.Valid.Y {
			seen[y]++
		}
	}
	// Every example validates exactly once across folds.
	if len(seen) != 50 {
		t.Fatalf("validation coverage = %d, want 50", len(seen))
	}
	for y, c := range seen {
		if c != 1 {
			t.Fatalf("example %v validated %d times", y, c)
		}
	}
}

func TestKFoldClamps(t *testing.T) {
	d := cvDataset(3)
	if got := len(d.KFold(10, 1)); got != 3 {
		t.Errorf("k clamped to n: folds = %d, want 3", got)
	}
	if got := len(d.KFold(0, 1)); got != 2 {
		t.Errorf("k clamped up to 2: folds = %d, want 2", got)
	}
}

func TestKFoldDeterministic(t *testing.T) {
	d := cvDataset(30)
	a := d.KFold(3, 7)
	b := d.KFold(3, 7)
	for i := range a {
		if a[i].Valid.Y[0] != b[i].Valid.Y[0] {
			t.Fatal("same seed must give identical folds")
		}
	}
}

func TestCrossValidateLinear(t *testing.T) {
	d := cvDataset(60)
	scores := CrossValidate(d, 4, 1,
		func(train *Dataset) func([]float64) float64 {
			lr := &LinearRegression{}
			lr.Fit(train.X, train.Y)
			return lr.Predict
		},
		R2)
	if len(scores) != 4 {
		t.Fatalf("scores = %d, want 4", len(scores))
	}
	for _, s := range scores {
		if s < 0.99 {
			t.Errorf("linear CV R2 = %v, want ~1 on a perfectly linear set", s)
		}
	}
}
