// Package ml is a from-scratch machine-learning stack (stdlib only) that
// stands in for the scikit-learn / LightGBM / LightGCN models of the
// MODis paper. It provides fixed, deterministic models — every learner is
// seeded and uses no global randomness — as required by the paper's
// model assumption (Section 2).
package ml

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/table"
)

// Dataset is a numeric feature matrix with a target vector: the input
// form D → R^d that a data science model consumes.
type Dataset struct {
	X        [][]float64
	Y        []float64
	Features []string
}

// NumRows returns the number of examples.
func (d *Dataset) NumRows() int { return len(d.X) }

// NumFeatures returns the number of columns in X.
func (d *Dataset) NumFeatures() int { return len(d.Features) }

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		X:        make([][]float64, len(d.X)),
		Y:        append([]float64(nil), d.Y...),
		Features: append([]string(nil), d.Features...),
	}
	for i, r := range d.X {
		out.X[i] = append([]float64(nil), r...)
	}
	return out
}

// FromTable converts a table into a dataset predicting the target
// attribute. String columns are ordinal-encoded by active-domain order;
// null numeric cells are imputed with the column mean; rows with a null
// target are dropped. The encoding is deterministic.
func FromTable(t *table.Table, target string) *Dataset {
	tIdx := t.Schema.Index(target)
	d := &Dataset{}
	type colEnc struct {
		idx    int
		isStr  bool
		lookup map[string]float64
		mean   float64
	}
	var encs []colEnc
	for i, c := range t.Schema {
		if i == tIdx {
			continue
		}
		e := colEnc{idx: i, isStr: c.Kind == table.KindString}
		if e.isStr {
			e.lookup = map[string]float64{}
			for j, v := range t.ActiveDomain(c.Name) {
				e.lookup[v.Key()] = float64(j)
			}
		} else {
			var sum float64
			var n int
			for _, r := range t.Rows {
				if !r[i].IsNull() {
					sum += r[i].AsFloat()
					n++
				}
			}
			if n > 0 {
				e.mean = sum / float64(n)
			}
		}
		encs = append(encs, e)
		d.Features = append(d.Features, c.Name)
	}
	var tEnc map[string]float64
	if tIdx >= 0 && t.Schema[tIdx].Kind == table.KindString {
		tEnc = map[string]float64{}
		for j, v := range t.ActiveDomain(target) {
			tEnc[v.Key()] = float64(j)
		}
	}
	for _, r := range t.Rows {
		if tIdx < 0 || r[tIdx].IsNull() {
			continue
		}
		x := make([]float64, len(encs))
		for j, e := range encs {
			v := r[e.idx]
			switch {
			case v.IsNull():
				x[j] = e.mean
			case e.isStr:
				x[j] = e.lookup[v.Key()]
			default:
				x[j] = v.AsFloat()
			}
		}
		var y float64
		if tEnc != nil {
			y = tEnc[r[tIdx].Key()]
		} else {
			y = r[tIdx].AsFloat()
		}
		if math.IsNaN(y) {
			continue
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	return d
}

// Split partitions the dataset into train and test subsets using a
// deterministic shuffle under the given seed.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset) {
	perm, nTest := splitPerm(len(d.X), testFrac, seed)
	train = &Dataset{Features: d.Features}
	test = &Dataset{Features: d.Features}
	for i, p := range perm {
		if i < nTest {
			test.X = append(test.X, d.X[p])
			test.Y = append(test.Y, d.Y[p])
		} else {
			train.X = append(train.X, d.X[p])
			train.Y = append(train.Y, d.Y[p])
		}
	}
	return train, test
}

// splitPerm is the one train/test shuffle of the package: every Data
// implementation partitions rows through it, so a dataset and the
// matrix view of the same state split identically by construction —
// a load-bearing invariant of the columnar fast path.
func splitPerm(n int, testFrac float64, seed int64) (perm []int, nTest int) {
	perm = rand.New(rand.NewSource(seed)).Perm(n)
	nTest = int(float64(n) * testFrac)
	if nTest < 1 && n > 1 {
		nTest = 1
	}
	return perm, nTest
}

// Classes returns the sorted distinct labels of Y interpreted as class ids.
func (d *Dataset) Classes() []int {
	seen := map[int]bool{}
	for _, y := range d.Y {
		seen[int(y)] = true
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
