package ml

import (
	"testing"

	"repro/internal/table"
)

func toyTable() *table.Table {
	tb := table.New("toy", table.Schema{
		{Name: "num", Kind: table.KindFloat},
		{Name: "cat", Kind: table.KindString},
		{Name: "y", Kind: table.KindFloat},
	})
	tb.MustAppend(table.Row{table.Float(1), table.Str("a"), table.Float(10)})
	tb.MustAppend(table.Row{table.Float(3), table.Str("b"), table.Float(20)})
	tb.MustAppend(table.Row{table.Null, table.Str("a"), table.Float(30)})
	tb.MustAppend(table.Row{table.Float(5), table.Str("c"), table.Null})
	return tb
}

func TestFromTableShape(t *testing.T) {
	ds := FromTable(toyTable(), "y")
	if ds.NumFeatures() != 2 {
		t.Fatalf("features = %d, want 2", ds.NumFeatures())
	}
	// Row with null target dropped.
	if ds.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", ds.NumRows())
	}
}

func TestFromTableImputesNulls(t *testing.T) {
	ds := FromTable(toyTable(), "y")
	// Null num cell imputed with column mean (1+3+5)/3 = 3.
	if ds.X[2][0] != 3 {
		t.Errorf("imputed value = %v, want 3", ds.X[2][0])
	}
}

func TestFromTableOrdinalEncoding(t *testing.T) {
	ds := FromTable(toyTable(), "y")
	// adom(cat) = [a b c]: a->0, b->1.
	if ds.X[0][1] != 0 || ds.X[1][1] != 1 {
		t.Errorf("categorical encoding = %v %v", ds.X[0][1], ds.X[1][1])
	}
}

func TestFromTableStringTarget(t *testing.T) {
	tb := table.New("t", table.Schema{
		{Name: "x", Kind: table.KindFloat},
		{Name: "label", Kind: table.KindString},
	})
	tb.MustAppend(table.Row{table.Float(1), table.Str("no")})
	tb.MustAppend(table.Row{table.Float(2), table.Str("yes")})
	ds := FromTable(tb, "label")
	// adom order: no=0, yes=1... sorted lexicographically: no < yes.
	if ds.Y[0] != 0 || ds.Y[1] != 1 {
		t.Errorf("string target encoding = %v", ds.Y)
	}
}

func TestSplitDeterministicAndDisjoint(t *testing.T) {
	ds := &Dataset{Features: []string{"x"}}
	for i := 0; i < 100; i++ {
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, float64(i))
	}
	tr1, te1 := ds.Split(0.3, 42)
	tr2, te2 := ds.Split(0.3, 42)
	if tr1.NumRows() != tr2.NumRows() || te1.NumRows() != te2.NumRows() {
		t.Fatal("split must be deterministic")
	}
	if tr1.NumRows()+te1.NumRows() != 100 {
		t.Fatal("split must partition")
	}
	if te1.NumRows() != 30 {
		t.Errorf("test rows = %d, want 30", te1.NumRows())
	}
	seen := map[float64]bool{}
	for _, y := range tr1.Y {
		seen[y] = true
	}
	for _, y := range te1.Y {
		if seen[y] {
			t.Fatal("train/test overlap")
		}
	}
}

func TestSplitTinyDataset(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1}, {2}}, Y: []float64{1, 2}}
	_, te := ds.Split(0.1, 1)
	if te.NumRows() != 1 {
		t.Errorf("tiny split should hold out at least one row, got %d", te.NumRows())
	}
}

func TestClasses(t *testing.T) {
	ds := &Dataset{Y: []float64{2, 0, 2, 1}}
	cs := ds.Classes()
	want := []int{0, 1, 2}
	if len(cs) != 3 {
		t.Fatalf("classes = %v", cs)
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Errorf("classes = %v, want %v", cs, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1}}, Y: []float64{1}, Features: []string{"x"}}
	cp := ds.Clone()
	cp.X[0][0] = 99
	cp.Y[0] = 99
	if ds.X[0][0] == 99 || ds.Y[0] == 99 {
		t.Error("Clone must deep-copy")
	}
}
