package ml

import (
	"math"
	"sync"

	"repro/internal/table"
)

// TableEncoder precomputes the expensive parts of FromTable against a
// space's universal table so every valuation of the same space encodes
// its materialized dataset without rebuilding per-column active
// domains: string columns get one key→domain-position map up front, and
// a child's ordinal codes are recovered by ranking the positions
// present in the child. Because any materialized child's column values
// are a subset of the universal table's (and subsets preserve sorted
// order), Encode produces byte-identical datasets to FromTable — a
// property the tests assert — while skipping the per-call map builds
// and domain sorts.
//
// Skipped columns (NewTableEncoderSkip) are excluded from the encoding
// as if the caller had dropped them first: task models hand Encode the
// materialized child directly instead of cloning it through
// DropColumn("id").
//
// The encoder is immutable after construction, so concurrent
// valuations (worker pools, parallel engine runs) share one instance.
type TableEncoder struct {
	target string
	cols   map[string]*stringCodec
	tgt    *stringCodec
	u      *table.Table
	skip   map[string]bool

	mxOnce sync.Once
	mx     *Matrix
}

// stringCodec maps a string column's universal active-domain values to
// their sorted positions.
type stringCodec struct {
	index map[string]int
}

func newStringCodec(u *table.Table, name string) *stringCodec {
	c := &stringCodec{index: map[string]int{}}
	for i, v := range u.ActiveDomain(name) {
		c.index[v.Key()] = i
	}
	return c
}

// NewTableEncoder builds the shared encoder of a universal table. Pass
// the same table that materialized children derive from.
func NewTableEncoder(u *table.Table, target string) *TableEncoder {
	return NewTableEncoderSkip(u, target)
}

// NewTableEncoderSkip is NewTableEncoder with columns the models never
// consume (identifier columns, e.g. "id"): Encode ignores them in
// place, so callers stop cloning every child table through DropColumn
// before encoding.
func NewTableEncoderSkip(u *table.Table, target string, skip ...string) *TableEncoder {
	e := &TableEncoder{target: target, cols: map[string]*stringCodec{}, u: u, skip: map[string]bool{}}
	for _, s := range skip {
		e.skip[s] = true
	}
	for _, c := range u.Schema {
		if c.Kind != table.KindString || e.skip[c.Name] {
			continue
		}
		codec := newStringCodec(u, c.Name)
		if c.Name == target {
			e.tgt = codec
		} else {
			e.cols[c.Name] = codec
		}
	}
	return e
}

// Matrix returns the frozen columnar encoding of the universal table,
// built once on first use and shared by all concurrent valuations.
func (e *TableEncoder) Matrix() *Matrix {
	e.mxOnce.Do(func() { e.mx = e.buildMatrix() })
	return e.mx
}

// Column exposes a numeric column of the frozen matrix (see
// Matrix.Column), building the matrix on first use. It makes the
// encoder a column source for the FST space's row-index construction:
// the space reuses the statistics already decoded for the estimator
// instead of re-deriving them cell by cell from the universal table.
func (e *TableEncoder) Column(name string) (vals []float64, null []bool, ok bool) {
	return e.Matrix().Column(name)
}

// fallback re-encodes the child from scratch when a value falls outside
// the universal domain, honoring the skip set.
func (e *TableEncoder) fallback(t *table.Table) *Dataset {
	for name := range e.skip {
		t = t.DropColumn(name)
	}
	return FromTable(t, e.target)
}

// childRanks recovers the child table's ordinal encoding of one string
// column: rank[i] is the child-local ordinal of the universal domain
// position i, computed from which positions actually occur in the
// child. ok reports whether every child value was found in the
// universal domain (UDFs may in principle synthesize new values; the
// caller then falls back to FromTable).
func (e *TableEncoder) childRanks(codec *stringCodec, t *table.Table, ci int) (rank []float64, ok bool) {
	present := make([]bool, len(codec.index))
	for _, r := range t.Rows {
		v := r[ci]
		if v.IsNull() {
			continue
		}
		i, found := codec.index[v.Key()]
		if !found {
			return nil, false
		}
		present[i] = true
	}
	rank = make([]float64, len(present))
	next := 0.0
	for i, p := range present {
		if p {
			rank[i] = next
			next++
		}
	}
	return rank, true
}

// Encode converts a materialized child table into a Dataset exactly as
// FromTable(t, target) would — same ordinal codes, same mean
// imputation, same row filtering — reusing the precomputed universal
// domains. Columns with values outside the universal domain fall back
// to FromTable transparently.
func (e *TableEncoder) Encode(t *table.Table) *Dataset {
	tIdx := t.Schema.Index(e.target)
	d := &Dataset{}
	type colEnc struct {
		idx   int
		codec *stringCodec
		rank  []float64
		mean  float64
	}
	var encs []colEnc
	for i, c := range t.Schema {
		if i == tIdx || e.skip[c.Name] {
			continue
		}
		enc := colEnc{idx: i}
		if c.Kind == table.KindString {
			enc.codec = e.cols[c.Name]
			if enc.codec == nil {
				return e.fallback(t)
			}
			rank, ok := e.childRanks(enc.codec, t, i)
			if !ok {
				return e.fallback(t)
			}
			enc.rank = rank
		} else {
			var sum float64
			var n int
			for _, r := range t.Rows {
				if !r[i].IsNull() {
					sum += r[i].AsFloat()
					n++
				}
			}
			if n > 0 {
				enc.mean = sum / float64(n)
			}
		}
		encs = append(encs, enc)
		d.Features = append(d.Features, c.Name)
	}
	var tgtRank []float64
	var tgtCodec *stringCodec
	if tIdx >= 0 && t.Schema[tIdx].Kind == table.KindString {
		tgtCodec = e.tgt
		if tgtCodec == nil {
			return e.fallback(t)
		}
		rank, ok := e.childRanks(tgtCodec, t, tIdx)
		if !ok {
			return e.fallback(t)
		}
		tgtRank = rank
	}
	for _, r := range t.Rows {
		if tIdx < 0 || r[tIdx].IsNull() {
			continue
		}
		x := make([]float64, len(encs))
		for j, enc := range encs {
			v := r[enc.idx]
			switch {
			case v.IsNull():
				x[j] = enc.mean
			case enc.codec != nil:
				x[j] = enc.rank[enc.codec.index[v.Key()]]
			default:
				x[j] = v.AsFloat()
			}
		}
		var y float64
		if tgtCodec != nil {
			y = tgtRank[tgtCodec.index[r[tIdx].Key()]]
		} else {
			y = r[tIdx].AsFloat()
		}
		if math.IsNaN(y) {
			continue
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	return d
}
