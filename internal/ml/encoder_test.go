package ml

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/table"
)

func encoderUniversal() *table.Table {
	u := table.New("D_U", table.Schema{
		{Name: "season", Kind: table.KindString},
		{Name: "grade", Kind: table.KindString},
		{Name: "x", Kind: table.KindFloat},
		{Name: "target", Kind: table.KindFloat},
	})
	seasons := []string{"spring", "summer", "fall", "winter"}
	grades := []string{"a", "b", "c"}
	for i := 0; i < 40; i++ {
		u.MustAppend(table.Row{
			table.Str(seasons[i%4]),
			table.Str(grades[i%3]),
			table.Float(float64(i % 7)),
			table.Float(float64(i) / 10),
		})
	}
	return u
}

// randomChild derives a materialized-child-like table: a row subset
// (shrinking string domains), optional column mask, and injected nulls.
func randomChild(u *table.Table, rng *rand.Rand) *table.Table {
	out := table.New("D_s", u.Schema)
	for _, r := range u.Rows {
		if rng.Intn(4) == 0 {
			continue
		}
		nr := r.Clone()
		if rng.Intn(10) == 0 {
			nr[rng.Intn(len(nr)-1)] = table.Null
		}
		out.Rows = append(out.Rows, nr)
	}
	if rng.Intn(3) == 0 {
		out = out.Project("grade", "x", "target")
	}
	return out
}

// The encoder's contract: Encode reproduces FromTable byte for byte on
// any child of the universal table it was built from — same ordinal
// codes from the shrunken domains, same mean imputation, same row
// filtering — while reusing the precomputed universal domains.
func TestEncoderMatchesFromTable(t *testing.T) {
	u := encoderUniversal()
	enc := NewTableEncoder(u, "target")
	f := func(seed int64) bool {
		child := randomChild(u, rand.New(rand.NewSource(seed)))
		want := FromTable(child, "target")
		got := enc.Encode(child)
		if len(got.X) != len(want.X) || len(got.Features) != len(want.Features) {
			return false
		}
		for i := range got.Features {
			if got.Features[i] != want.Features[i] {
				return false
			}
		}
		for i := range got.X {
			if got.Y[i] != want.Y[i] {
				return false
			}
			for j := range got.X[i] {
				if got.X[i][j] != want.X[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// A string target encodes through the shared target codec identically.
func TestEncoderStringTarget(t *testing.T) {
	u := table.New("D_U", table.Schema{
		{Name: "x", Kind: table.KindFloat},
		{Name: "label", Kind: table.KindString},
	})
	labels := []string{"low", "mid", "high"}
	for i := 0; i < 30; i++ {
		u.MustAppend(table.Row{table.Float(float64(i % 5)), table.Str(labels[i%3])})
	}
	enc := NewTableEncoder(u, "label")
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		child := randomChild(u, rng)
		if !child.Schema.Has("label") {
			continue
		}
		want := FromTable(child, "label")
		got := enc.Encode(child)
		if len(got.Y) != len(want.Y) {
			t.Fatalf("row count %d != %d", len(got.Y), len(want.Y))
		}
		for i := range got.Y {
			if got.Y[i] != want.Y[i] {
				t.Fatalf("trial %d: y[%d] = %v, want %v", trial, i, got.Y[i], want.Y[i])
			}
		}
	}
}

// Values outside the universal domain (e.g. UDF-synthesized) trip the
// transparent FromTable fallback rather than mis-encoding.
func TestEncoderFallsBackOnForeignValues(t *testing.T) {
	u := encoderUniversal()
	enc := NewTableEncoder(u, "target")
	child := u.Clone()
	child.Rows[0][0] = table.Str("monsoon") // not in the universal domain
	want := FromTable(child, "target")
	got := enc.Encode(child)
	if len(got.X) != len(want.X) {
		t.Fatalf("fallback row count %d != %d", len(got.X), len(want.X))
	}
	for i := range got.X {
		for j := range got.X[i] {
			if got.X[i][j] != want.X[i][j] {
				t.Fatalf("fallback x[%d][%d] = %v, want %v", i, j, got.X[i][j], want.X[i][j])
			}
		}
	}
}
