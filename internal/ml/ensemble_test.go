package ml

import (
	"math"
	"testing"
)

func TestForestClassifierBeatsChance(t *testing.T) {
	X, y := xorData(400, 7)
	f := &ForestClassifier{Config: ForestConfig{NumTrees: 10, MaxDepth: 5, Seed: 1}}
	f.Fit(X, y)
	Xt, yt := xorData(200, 8)
	pred := make([]float64, len(yt))
	for i, x := range Xt {
		pred[i] = f.Predict(x)
	}
	if acc := Accuracy(yt, pred); acc < 0.8 {
		t.Errorf("forest test accuracy = %v, want >= 0.8", acc)
	}
}

func TestForestRegressor(t *testing.T) {
	X, y := linearData(300, 9)
	f := &ForestRegressor{Config: ForestConfig{NumTrees: 10, MaxDepth: 7, Seed: 1}}
	f.Fit(X, y)
	Xt, yt := linearData(150, 10)
	pred := make([]float64, len(yt))
	for i, x := range Xt {
		pred[i] = f.Predict(x)
	}
	if r2 := R2(yt, pred); r2 < 0.6 {
		t.Errorf("forest test R2 = %v, want >= 0.6", r2)
	}
}

func TestForestDeterministic(t *testing.T) {
	X, y := xorData(150, 11)
	f1 := &ForestClassifier{Config: ForestConfig{NumTrees: 5, Seed: 3}}
	f2 := &ForestClassifier{Config: ForestConfig{NumTrees: 5, Seed: 3}}
	f1.Fit(X, y)
	f2.Fit(X, y)
	for _, x := range X[:20] {
		if f1.Predict(x) != f2.Predict(x) {
			t.Fatal("same-seed forests must agree")
		}
	}
}

func TestGBMRegressorBeatsSingleTree(t *testing.T) {
	X, y := linearData(300, 12)
	Xt, yt := linearData(150, 13)

	tree := &TreeRegressor{Config: TreeConfig{MaxDepth: 2}}
	tree.Fit(X, y)
	gbm := &GBMRegressor{Config: GBMConfig{NumTrees: 60, MaxDepth: 2, Seed: 1}}
	gbm.Fit(X, y)

	msTree, msGBM := 0.0, 0.0
	predT := make([]float64, len(yt))
	predG := make([]float64, len(yt))
	for i, x := range Xt {
		predT[i] = tree.Predict(x)
		predG[i] = gbm.Predict(x)
	}
	msTree = MSE(yt, predT)
	msGBM = MSE(yt, predG)
	if msGBM >= msTree {
		t.Errorf("boosting MSE %v should beat single shallow tree %v", msGBM, msTree)
	}
}

func TestGBMClassifier(t *testing.T) {
	X, y := xorData(400, 14)
	g := &GBMClassifier{Config: GBMConfig{NumTrees: 50, MaxDepth: 3, Seed: 1}}
	g.Fit(X, y)
	Xt, yt := xorData(200, 15)
	pred := make([]float64, len(yt))
	for i, x := range Xt {
		p := g.PredictProba(x)
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		pred[i] = g.Predict(x)
	}
	if acc := Accuracy(yt, pred); acc < 0.85 {
		t.Errorf("GBM classifier accuracy = %v, want >= 0.85", acc)
	}
}

func TestMultiOutputGBM(t *testing.T) {
	X, _ := linearData(200, 16)
	Y := make([][]float64, len(X))
	for i, x := range X {
		Y[i] = []float64{x[0] + x[1], x[0] - x[1], 2 * x[0]}
	}
	m := &MultiOutputGBM{Config: GBMConfig{NumTrees: 40, MaxDepth: 3, Seed: 1}}
	m.Fit(X, Y)
	if m.NumOutputs() != 3 {
		t.Fatalf("outputs = %d, want 3", m.NumOutputs())
	}
	var errSum float64
	for i, x := range X {
		p := m.Predict(x)
		for j := range p {
			errSum += math.Abs(p[j] - Y[i][j])
		}
	}
	avgErr := errSum / float64(len(X)*3)
	if avgErr > 0.15 {
		t.Errorf("MO-GBM avg abs error = %v, want <= 0.15", avgErr)
	}
}

func TestMultiOutputGBMEmpty(t *testing.T) {
	m := &MultiOutputGBM{}
	m.Fit(nil, nil)
	if m.NumOutputs() != 0 {
		t.Error("empty fit should produce no outputs")
	}
}

func TestHistGBMClassifier(t *testing.T) {
	X, y := xorData(400, 17)
	h := &HistGBMClassifier{Config: HistGBMConfig{
		GBM:     GBMConfig{NumTrees: 40, MaxDepth: 3, Seed: 1},
		NumBins: 16,
	}}
	h.Fit(X, y)
	Xt, yt := xorData(200, 18)
	pred := make([]float64, len(yt))
	for i, x := range Xt {
		pred[i] = h.Predict(x)
	}
	if acc := Accuracy(yt, pred); acc < 0.8 {
		t.Errorf("hist-GBM accuracy = %v, want >= 0.8", acc)
	}
}

func TestHistGBMRegressor(t *testing.T) {
	X, y := linearData(300, 19)
	h := &HistGBMRegressor{Config: HistGBMConfig{
		GBM:     GBMConfig{NumTrees: 50, MaxDepth: 3, Seed: 1},
		NumBins: 24,
	}}
	h.Fit(X, y)
	pred := make([]float64, len(y))
	for i, x := range X {
		pred[i] = h.Predict(x)
	}
	if r2 := R2(y, pred); r2 < 0.8 {
		t.Errorf("hist-GBM regressor R2 = %v, want >= 0.8", r2)
	}
}

func TestBinRowMonotone(t *testing.T) {
	bins := [][]float64{{1, 2, 3}}
	lo := binRow([]float64{0.5}, bins)[0]
	mid := binRow([]float64{2.5}, bins)[0]
	hi := binRow([]float64{9}, bins)[0]
	if !(lo < mid && mid < hi) {
		t.Errorf("binning not monotone: %v %v %v", lo, mid, hi)
	}
}

// FitCols on column-major data must grow the exact trees Fit grows on
// the row-major equivalent: frameFromCols and frameFromRows construct
// the same frame, and everything downstream is shared code.
func TestMultiOutputGBMFitColsParity(t *testing.T) {
	X, _ := linearData(160, 12)
	Y := make([][]float64, len(X))
	for i, x := range X {
		Y[i] = []float64{x[0] + x[1], x[0] - x[1]}
	}
	ref := &MultiOutputGBM{Config: GBMConfig{NumTrees: 30, MaxDepth: 3, Seed: 5}}
	ref.Fit(X, Y)

	nf := len(X[0])
	cols := make([][]float64, nf)
	for f := 0; f < nf; f++ {
		cols[f] = make([]float64, len(X))
		for i, x := range X {
			cols[f][i] = x[f]
		}
	}
	tgts := make([][]float64, len(Y[0]))
	for j := range tgts {
		tgts[j] = make([]float64, len(Y))
		for i := range Y {
			tgts[j][i] = Y[i][j]
		}
	}
	m := &MultiOutputGBM{Config: GBMConfig{NumTrees: 30, MaxDepth: 3, Seed: 5}}
	m.FitCols(len(X), cols, tgts)

	if m.NumOutputs() != ref.NumOutputs() {
		t.Fatalf("outputs = %d, want %d", m.NumOutputs(), ref.NumOutputs())
	}
	for i, x := range X {
		p, q := m.Predict(x), ref.Predict(x)
		for j := range p {
			if p[j] != q[j] {
				t.Fatalf("prediction %d[%d] = %v, want %v", i, j, p[j], q[j])
			}
		}
	}
}

func TestMultiOutputGBMFitColsEmpty(t *testing.T) {
	m := &MultiOutputGBM{}
	m.FitCols(0, nil, nil)
	if m.NumOutputs() != 0 {
		t.Error("empty columnar fit should produce no outputs")
	}
}
