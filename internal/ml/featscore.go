package ml

import (
	"math"
	"sort"
)

// FisherScore returns the Fisher score of each feature for a labelled
// dataset (classification): the ratio of between-class variance to
// within-class variance [Li et al., Feature Selection: A Data
// Perspective]. Higher is more discriminative. p_Fsc in Table 3.
func FisherScore(X [][]float64, y []float64) []float64 {
	if len(X) == 0 {
		return nil
	}
	nf := len(X[0])
	out := make([]float64, nf)
	classes, byClass := classIndex(y)
	col := make([]float64, len(X))
	for f := 0; f < nf; f++ {
		for i := range X {
			col[i] = X[i][f]
		}
		out[f] = fisherScoreCol(col, classes, byClass)
	}
	return out
}

// FisherScoreData computes the Fisher scores of a columnar data view
// against the given (possibly discretized) labels, summing in the same
// row order as the row-major API.
func FisherScoreData(d Data, y []float64) []float64 {
	n := d.NumRows()
	if n == 0 {
		return nil
	}
	out := make([]float64, d.NumFeatures())
	classes, byClass := classIndex(y)
	col := make([]float64, n)
	for f := range out {
		out[f] = fisherScoreCol(d.Col(f, col), classes, byClass)
	}
	return out
}

// classIndex groups row indexes by integer class, classes sorted so
// float summation order stays deterministic (the fixed-model guarantee).
func classIndex(y []float64) ([]int, map[int][]int) {
	byClass := map[int][]int{}
	for i, yv := range y {
		c := int(yv)
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	return classes, byClass
}

// fisherScoreCol is the per-feature Fisher ratio over one column.
func fisherScoreCol(col []float64, classes []int, byClass map[int][]int) float64 {
	var overall float64
	for _, v := range col {
		overall += v
	}
	overall /= float64(len(col))
	var num, den float64
	for _, c := range classes {
		idx := byClass[c]
		nc := float64(len(idx))
		var mc float64
		for _, i := range idx {
			mc += col[i]
		}
		mc /= nc
		var vc float64
		for _, i := range idx {
			d := col[i] - mc
			vc += d * d
		}
		vc /= nc
		num += nc * (mc - overall) * (mc - overall)
		den += nc * vc
	}
	if den > 0 {
		return num / den
	}
	return 0
}

// MutualInformation estimates I(X_f; Y) per feature by equal-frequency
// discretization into bins (default 10) of both the feature and, when
// continuous, the target. p_MI in Table 3.
func MutualInformation(X [][]float64, y []float64, bins int) []float64 {
	if len(X) == 0 {
		return nil
	}
	if bins <= 0 {
		bins = 10
	}
	nf := len(X[0])
	yd := discretize(y, bins)
	out := make([]float64, nf)
	col := make([]float64, len(X))
	for f := 0; f < nf; f++ {
		for i := range X {
			col[i] = X[i][f]
		}
		xd := discretize(col, bins)
		out[f] = discreteMI(xd, yd)
	}
	return out
}

// MutualInformationData estimates per-feature mutual information of a
// columnar data view against the given labels — same discretization
// and summation order as the row-major API.
func MutualInformationData(d Data, y []float64, bins int) []float64 {
	n := d.NumRows()
	if n == 0 {
		return nil
	}
	if bins <= 0 {
		bins = 10
	}
	yd := discretize(y, bins)
	out := make([]float64, d.NumFeatures())
	col := make([]float64, n)
	for f := range out {
		xd := discretize(d.Col(f, col), bins)
		out[f] = discreteMI(xd, yd)
	}
	return out
}

// discretize maps values to equal-frequency bin ids; values with few
// distinct levels keep their level ids.
func discretize(xs []float64, bins int) []int {
	distinct := map[float64]bool{}
	for _, x := range xs {
		distinct[x] = true
	}
	if len(distinct) <= bins {
		levels := make([]float64, 0, len(distinct))
		for x := range distinct {
			levels = append(levels, x)
		}
		sort.Float64s(levels)
		lvl := map[float64]int{}
		for i, x := range levels {
			lvl[x] = i
		}
		out := make([]int, len(xs))
		for i, x := range xs {
			out[i] = lvl[x]
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	edges := make([]float64, 0, bins-1)
	for b := 1; b < bins; b++ {
		e := sorted[b*len(sorted)/bins]
		if len(edges) == 0 || e != edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = sort.SearchFloat64s(edges, x)
	}
	return out
}

func discreteMI(a, b []int) float64 {
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	joint := map[[2]int]float64{}
	pa := map[int]float64{}
	pb := map[int]float64{}
	for i := range a {
		joint[[2]int{a[i], b[i]}]++
		pa[a[i]]++
		pb[b[i]]++
	}
	// Sorted key iteration keeps the summation order — and thus the
	// returned float — deterministic.
	keys := make([][2]int, 0, len(joint))
	for k := range joint {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var mi float64
	for _, k := range keys {
		pxy := joint[k] / n
		px := pa[k[0]] / n
		py := pb[k[1]] / n
		mi += pxy * math.Log(pxy/(px*py))
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}
