package ml

import (
	"math/rand"
	"testing"
)

// discriminativeData: feature 0 separates classes, feature 1 is noise.
func discriminativeData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		c := float64(rng.Intn(2))
		y[i] = c
		X[i] = []float64{c*5 + rng.NormFloat64()*0.2, rng.Float64()}
	}
	return X, y
}

func TestFisherScoreRanksInformativeFirst(t *testing.T) {
	X, y := discriminativeData(300, 1)
	fs := FisherScore(X, y)
	if len(fs) != 2 {
		t.Fatalf("scores = %v", fs)
	}
	if fs[0] <= fs[1] {
		t.Errorf("informative feature score %v should exceed noise %v", fs[0], fs[1])
	}
	if fs[0] < 10 {
		t.Errorf("well-separated Fisher score = %v, expected large", fs[0])
	}
}

func TestFisherScoreEmpty(t *testing.T) {
	if FisherScore(nil, nil) != nil {
		t.Error("empty input should yield nil")
	}
}

func TestMutualInformationRanksInformativeFirst(t *testing.T) {
	X, y := discriminativeData(300, 2)
	mi := MutualInformation(X, y, 8)
	if mi[0] <= mi[1] {
		t.Errorf("informative MI %v should exceed noise MI %v", mi[0], mi[1])
	}
}

func TestMutualInformationNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = rng.Float64()
	}
	for _, v := range MutualInformation(X, y, 6) {
		if v < 0 {
			t.Fatalf("MI must be non-negative, got %v", v)
		}
	}
}

func TestDiscretizeFewLevels(t *testing.T) {
	xs := []float64{1, 1, 2, 2}
	d := discretize(xs, 10)
	if d[0] != d[1] || d[2] != d[3] || d[0] == d[2] {
		t.Errorf("level discretization = %v", d)
	}
}

func TestDiscretizeEqualFrequency(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	d := discretize(xs, 4)
	counts := map[int]int{}
	for _, b := range d {
		counts[b]++
	}
	if len(counts) != 4 {
		t.Fatalf("bins = %d, want 4", len(counts))
	}
	for b, c := range counts {
		if c < 24 || c > 26 {
			t.Errorf("bin %d count = %d, want 25±1", b, c)
		}
	}
}
