package ml

import (
	"math"
	"math/rand"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	NumTrees    int // default 20
	MaxDepth    int // default 8
	MinLeaf     int
	MaxFeatures int // default sqrt(#features) for classification, #features/3 for regression
	Seed        int64
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 20
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	return c
}

// ForestClassifier is a bootstrap-aggregated ensemble of CART
// classification trees — the paper's RF_house model (T2).
type ForestClassifier struct {
	Config   ForestConfig
	NumClass int
	trees    []*TreeClassifier
}

// Fit trains the forest.
func (f *ForestClassifier) Fit(X [][]float64, y []float64) {
	cfg := f.Config.withDefaults()
	if f.NumClass <= 0 {
		f.NumClass = countClasses(y)
	}
	nf := 0
	if len(X) > 0 {
		nf = len(X[0])
	}
	mf := cfg.MaxFeatures
	if mf <= 0 && nf > 0 {
		mf = int(math.Sqrt(float64(nf)))
		if mf < 1 {
			mf = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f.trees = make([]*TreeClassifier, cfg.NumTrees)
	ws := &treeScratch{}
	bx, by := make([][]float64, len(X)), make([]float64, len(X))
	for t := 0; t < cfg.NumTrees; t++ {
		bootstrapInto(bx, by, X, y, rng)
		tree := &TreeClassifier{
			Config: TreeConfig{
				MaxDepth:    cfg.MaxDepth,
				MinLeaf:     cfg.MinLeaf,
				MaxFeatures: mf,
				Seed:        rng.Int63(),
			},
			NumClass: f.NumClass,
		}
		tree.fit(bx, by, ws)
		f.trees[t] = tree
	}
}

// PredictProba returns averaged class probabilities.
func (f *ForestClassifier) PredictProba(x []float64) []float64 {
	p := make([]float64, f.NumClass)
	for _, t := range f.trees {
		tp := t.PredictProba(x)
		for c := range p {
			if c < len(tp) {
				p[c] += tp[c]
			}
		}
	}
	for c := range p {
		p[c] /= float64(len(f.trees))
	}
	return p
}

// Predict returns the majority class.
func (f *ForestClassifier) Predict(x []float64) float64 {
	return float64(argmax(f.PredictProba(x)))
}

// Importances averages per-tree split importances.
func (f *ForestClassifier) Importances(nf int) []float64 {
	acc := make([]float64, nf)
	for _, t := range f.trees {
		ti := t.Importances(nf)
		for i := range acc {
			acc[i] += ti[i]
		}
	}
	normalizeSum(acc)
	return acc
}

// ForestRegressor is a bagged ensemble of CART regression trees.
type ForestRegressor struct {
	Config ForestConfig
	trees  []*TreeRegressor
}

// Fit trains the forest.
func (f *ForestRegressor) Fit(X [][]float64, y []float64) {
	cfg := f.Config.withDefaults()
	nf := 0
	if len(X) > 0 {
		nf = len(X[0])
	}
	mf := cfg.MaxFeatures
	if mf <= 0 && nf > 0 {
		mf = nf / 3
		if mf < 1 {
			mf = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f.trees = make([]*TreeRegressor, cfg.NumTrees)
	ws := &treeScratch{}
	bx, by := make([][]float64, len(X)), make([]float64, len(X))
	for t := 0; t < cfg.NumTrees; t++ {
		bootstrapInto(bx, by, X, y, rng)
		tree := &TreeRegressor{Config: TreeConfig{
			MaxDepth:    cfg.MaxDepth,
			MinLeaf:     cfg.MinLeaf,
			MaxFeatures: mf,
			Seed:        rng.Int63(),
		}}
		tree.fit(bx, by, ws)
		f.trees[t] = tree
	}
}

// Predict averages tree outputs.
func (f *ForestRegressor) Predict(x []float64) float64 {
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// Importances averages per-tree split importances.
func (f *ForestRegressor) Importances(nf int) []float64 {
	acc := make([]float64, nf)
	for _, t := range f.trees {
		ti := t.Importances(nf)
		for i := range acc {
			acc[i] += ti[i]
		}
	}
	normalizeSum(acc)
	return acc
}

// bootstrapInto fills bx/by with a with-replacement resample of (X, y),
// reusing the caller's buffers across an ensemble's trees.
func bootstrapInto(bx [][]float64, by []float64, X [][]float64, y []float64, rng *rand.Rand) {
	n := len(X)
	for i := 0; i < n; i++ {
		j := rng.Intn(n)
		bx[i] = X[j]
		by[i] = y[j]
	}
}
