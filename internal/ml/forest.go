package ml

import (
	"math"
	"math/rand"
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	NumTrees    int // default 20
	MaxDepth    int // default 8
	MinLeaf     int
	MaxFeatures int // default sqrt(#features) for classification, #features/3 for regression
	Seed        int64
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 20
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	return c
}

// ForestClassifier is a bootstrap-aggregated ensemble of CART
// classification trees — the paper's RF_house model (T2).
type ForestClassifier struct {
	Config   ForestConfig
	NumClass int
	trees    []*TreeClassifier
}

// Fit trains the forest.
func (f *ForestClassifier) Fit(X [][]float64, y []float64) {
	ws := getScratch()
	fr := frameFromRows(X, y, ws)
	f.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

// FitData trains the forest on a columnar data view.
func (f *ForestClassifier) FitData(d Data) {
	ws := getScratch()
	fr := d.buildFrame(ws)
	f.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

func (f *ForestClassifier) fitFrame(fr *frame, ws *treeScratch) {
	cfg := f.Config.withDefaults()
	if f.NumClass <= 0 {
		f.NumClass = countClasses(fr.y)
	}
	mf := cfg.MaxFeatures
	if mf <= 0 && fr.nf > 0 {
		mf = int(math.Sqrt(float64(fr.nf)))
		if mf < 1 {
			mf = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f.trees = make([]*TreeClassifier, cfg.NumTrees)
	bs := newBootstrapper(fr, ws)
	for t := 0; t < cfg.NumTrees; t++ {
		bfr := bs.resample(rng)
		tree := &TreeClassifier{
			Config: TreeConfig{
				MaxDepth:    cfg.MaxDepth,
				MinLeaf:     cfg.MinLeaf,
				MaxFeatures: mf,
				Seed:        rng.Int63(),
			},
			NumClass: f.NumClass,
		}
		tree.fitFrame(bfr, ws)
		f.trees[t] = tree
	}
	ws.putFrame(bs.out)
}

// PredictProba returns averaged class probabilities.
func (f *ForestClassifier) PredictProba(x []float64) []float64 {
	p := make([]float64, f.NumClass)
	for _, t := range f.trees {
		tp := t.PredictProba(x)
		for c := range p {
			if c < len(tp) {
				p[c] += tp[c]
			}
		}
	}
	for c := range p {
		p[c] /= float64(len(f.trees))
	}
	return p
}

// Predict returns the majority class.
func (f *ForestClassifier) Predict(x []float64) float64 {
	return float64(argmax(f.PredictProba(x)))
}

// Importances averages per-tree split importances.
func (f *ForestClassifier) Importances(nf int) []float64 {
	acc := make([]float64, nf)
	for _, t := range f.trees {
		ti := t.Importances(nf)
		for i := range acc {
			acc[i] += ti[i]
		}
	}
	normalizeSum(acc)
	return acc
}

// ForestRegressor is a bagged ensemble of CART regression trees.
type ForestRegressor struct {
	Config ForestConfig
	trees  []*TreeRegressor
}

// Fit trains the forest.
func (f *ForestRegressor) Fit(X [][]float64, y []float64) {
	ws := getScratch()
	fr := frameFromRows(X, y, ws)
	f.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

// FitData trains the forest on a columnar data view.
func (f *ForestRegressor) FitData(d Data) {
	ws := getScratch()
	fr := d.buildFrame(ws)
	f.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

func (f *ForestRegressor) fitFrame(fr *frame, ws *treeScratch) {
	cfg := f.Config.withDefaults()
	mf := cfg.MaxFeatures
	if mf <= 0 && fr.nf > 0 {
		mf = fr.nf / 3
		if mf < 1 {
			mf = 1
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f.trees = make([]*TreeRegressor, cfg.NumTrees)
	bs := newBootstrapper(fr, ws)
	for t := 0; t < cfg.NumTrees; t++ {
		bfr := bs.resample(rng)
		tree := &TreeRegressor{Config: TreeConfig{
			MaxDepth:    cfg.MaxDepth,
			MinLeaf:     cfg.MinLeaf,
			MaxFeatures: mf,
			Seed:        rng.Int63(),
		}}
		tree.fitFrame(bfr, ws)
		f.trees[t] = tree
	}
	ws.putFrame(bs.out)
}

// Predict averages tree outputs.
func (f *ForestRegressor) Predict(x []float64) float64 {
	var s float64
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// Importances averages per-tree split importances.
func (f *ForestRegressor) Importances(nf int) []float64 {
	acc := make([]float64, nf)
	for _, t := range f.trees {
		ti := t.Importances(nf)
		for i := range acc {
			acc[i] += ti[i]
		}
	}
	normalizeSum(acc)
	return acc
}

// bootstrapper draws with-replacement resamples of a base frame,
// deriving each resample's presorted feature orders from the base
// frame's dense value ranks in linear time (counting) instead of
// re-sorting, so the resampled frame satisfies the same unique
// (value, position) order invariant as every other frame constructor.
// All buffers — the resampled frame, the draw vector, the rank tables,
// the counting scratch — are reused across the ensemble's trees.
type bootstrapper struct {
	base *frame
	out  *frame
	boot []int32 // boot[i] = source position of bootstrap position i
	// rankOf[f][src] is the dense rank of source position src among
	// feature f's sorted values, read off the base order once.
	rankOf [][]int32
	nRank  []int32
	cnt    []int32 // counting-sort scratch
}

func newBootstrapper(fr *frame, ws *treeScratch) *bootstrapper {
	b := &bootstrapper{base: fr, out: ws.getFrame(fr.nf, fr.n)}
	b.out.ownY(fr.n)
	b.boot = make([]int32, fr.n)
	b.cnt = make([]int32, fr.n+1)
	b.rankOf = make([][]int32, fr.nf)
	b.nRank = make([]int32, fr.nf)
	for f := 0; f < fr.nf; f++ {
		ranks := make([]int32, fr.n)
		col := fr.cols[f]
		r := int32(-1)
		prev := 0.0
		for j, src := range fr.base[f] {
			if j == 0 || col[src] != prev {
				r++
				prev = col[src]
			}
			ranks[src] = r
		}
		b.rankOf[f] = ranks
		b.nRank[f] = r + 1
	}
	return b
}

// resample fills the reusable output frame with one bootstrap draw.
// The returned frame is only valid until the next call.
func (b *bootstrapper) resample(rng *rand.Rand) *frame {
	fr, out := b.base, b.out
	n := fr.n
	if n == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		b.boot[i] = int32(rng.Intn(n))
	}
	// Gather the resampled target and columns.
	for i, src := range b.boot[:n] {
		out.y[i] = fr.y[src]
	}
	for f := 0; f < fr.nf; f++ {
		bc, sc := out.cols[f], fr.cols[f]
		for i, src := range b.boot[:n] {
			bc[i] = sc[src]
		}
	}
	// Each resampled order is the counting sort of bootstrap positions
	// by (source value rank, position) — exactly the (value, position)
	// total order on the gathered column.
	for f := 0; f < fr.nf; f++ {
		countingOrder(b.rankOf[f], b.boot[:n], out.base[f], &b.cnt, int(b.nRank[f]))
	}
	return out
}
