package ml

import (
	"math"
	"math/rand"
)

// GBMConfig controls gradient boosting.
type GBMConfig struct {
	NumTrees     int     // default 50
	MaxDepth     int     // default 3
	MinLeaf      int     // default 2
	LearningRate float64 // default 0.1
	Subsample    float64 // row subsample fraction per tree, default 1
	Seed         int64
}

func (c GBMConfig) withDefaults() GBMConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 50
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		c.Subsample = 1
	}
	return c
}

// GBMRegressor is gradient boosting with squared loss — the paper's
// GB_movie model (T1) and the base learner of the MO-GBM estimator.
type GBMRegressor struct {
	Config GBMConfig
	bias   float64
	trees  []*TreeRegressor
	lr     float64
}

// Fit trains the boosted ensemble on (X, y).
func (g *GBMRegressor) Fit(X [][]float64, y []float64) {
	ws := getScratch()
	fr := frameFromRows(X, y, ws)
	g.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

// FitData trains the boosted ensemble on a columnar data view.
func (g *GBMRegressor) FitData(d Data) {
	ws := getScratch()
	fr := d.buildFrame(ws)
	g.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

// fitFrame boosts over a columnar frame. Because the feature columns
// never change across stages, the frame's presorted orders are computed
// once and reused by every tree — only the residual target is refreshed
// per stage.
func (g *GBMRegressor) fitFrame(fr *frame, ws *treeScratch) {
	cfg := g.Config.withDefaults()
	g.lr = cfg.LearningRate
	g.bias = mean(fr.y)
	g.trees = g.trees[:0]
	if fr.n == 0 {
		return
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pred := make([]float64, fr.n)
	for i := range pred {
		pred[i] = g.bias
	}
	resid := make([]float64, fr.n)
	target := fr.y
	for t := 0; t < cfg.NumTrees; t++ {
		for i := range resid {
			resid[i] = target[i] - pred[i]
		}
		tree := &TreeRegressor{Config: TreeConfig{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf, Seed: rng.Int63()}}
		fitStage(tree, fr, resid, cfg.Subsample, rng, ws)
		g.trees = append(g.trees, tree)
		for i := range pred {
			pred[i] += g.lr * predictCols(tree.root, fr.cols, i)
		}
	}
	fr.y = target
}

// Predict returns the boosted prediction for one example.
func (g *GBMRegressor) Predict(x []float64) float64 {
	out := g.bias
	for _, t := range g.trees {
		out += g.lr * t.Predict(x)
	}
	return out
}

// Importances averages split importances over all boosting stages.
func (g *GBMRegressor) Importances(nf int) []float64 {
	acc := make([]float64, nf)
	for _, t := range g.trees {
		ti := t.Importances(nf)
		for i := range acc {
			acc[i] += ti[i]
		}
	}
	normalizeSum(acc)
	return acc
}

// fitStage fits one boosting tree on the frame with the stage's
// pseudo-target, subsampling rows first when configured.
func fitStage(tree *TreeRegressor, fr *frame, target []float64, subsampleFrac float64, rng *rand.Rand, ws *treeScratch) {
	if subsampleFrac >= 1 {
		fr.y = target
		tree.fitFrame(fr, ws)
		return
	}
	n := int(float64(fr.n) * subsampleFrac)
	if n < 1 {
		n = 1
	}
	ps := rng.Perm(fr.n)[:n]
	saved := fr.y
	fr.y = target
	sub := subFrame(fr, ps, ws)
	fr.y = saved
	tree.fitFrame(sub, ws)
	ws.putFrame(sub)
}

// GBMClassifier is binary gradient boosting with logistic loss; labels
// must be 0/1. Multi-class inputs are handled one-vs-rest by callers.
type GBMClassifier struct {
	Config GBMConfig
	bias   float64
	trees  []*TreeRegressor
	lr     float64
}

// Fit trains the boosted classifier on (X, y) with y in {0, 1}.
func (g *GBMClassifier) Fit(X [][]float64, y []float64) {
	ws := getScratch()
	fr := frameFromRows(X, y, ws)
	g.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

// FitData trains the boosted classifier on a columnar data view.
func (g *GBMClassifier) FitData(d Data) {
	ws := getScratch()
	fr := d.buildFrame(ws)
	g.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

func (g *GBMClassifier) fitFrame(fr *frame, ws *treeScratch) {
	cfg := g.Config.withDefaults()
	g.lr = cfg.LearningRate
	g.trees = g.trees[:0]
	if fr.n == 0 {
		return
	}
	p := mean(fr.y)
	p = clamp(p, 1e-6, 1-1e-6)
	g.bias = math.Log(p / (1 - p))
	rng := rand.New(rand.NewSource(cfg.Seed))
	raw := make([]float64, fr.n)
	for i := range raw {
		raw[i] = g.bias
	}
	grad := make([]float64, fr.n)
	target := fr.y
	for t := 0; t < cfg.NumTrees; t++ {
		for i := range grad {
			grad[i] = target[i] - sigmoid(raw[i])
		}
		tree := &TreeRegressor{Config: TreeConfig{MaxDepth: cfg.MaxDepth, MinLeaf: cfg.MinLeaf, Seed: rng.Int63()}}
		fitStage(tree, fr, grad, cfg.Subsample, rng, ws)
		g.trees = append(g.trees, tree)
		for i := range raw {
			raw[i] += g.lr * predictCols(tree.root, fr.cols, i)
		}
	}
	fr.y = target
}

// PredictProba returns P(y=1 | x).
func (g *GBMClassifier) PredictProba(x []float64) float64 {
	raw := g.bias
	for _, t := range g.trees {
		raw += g.lr * t.Predict(x)
	}
	return sigmoid(raw)
}

// Predict returns the hard 0/1 label at threshold 0.5.
func (g *GBMClassifier) Predict(x []float64) float64 {
	if g.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// Importances averages split importances over all boosting stages.
func (g *GBMClassifier) Importances(nf int) []float64 {
	acc := make([]float64, nf)
	for _, t := range g.trees {
		ti := t.Importances(nf)
		for i := range acc {
			acc[i] += ti[i]
		}
	}
	normalizeSum(acc)
	return acc
}

// MultiOutputGBM fits one GBMRegressor per output dimension: the MO-GBM
// surrogate (Section 2, "Estimators") that valuates a whole performance
// vector with a single call.
type MultiOutputGBM struct {
	Config GBMConfig
	models []*GBMRegressor
}

// Fit trains on targets Y where Y[i] is the output vector of example i.
func (m *MultiOutputGBM) Fit(X [][]float64, Y [][]float64) {
	if len(Y) == 0 {
		m.models = nil
		return
	}
	d := len(Y[0])
	m.models = make([]*GBMRegressor, d)
	col := make([]float64, len(Y))
	for j := 0; j < d; j++ {
		for i := range Y {
			col[i] = Y[i][j]
		}
		g := &GBMRegressor{Config: m.Config}
		g.Config.Seed = m.Config.Seed + int64(j)*7919
		g.Fit(X, append([]float64(nil), col...))
		m.models[j] = g
	}
}

// FitCols trains on column-major data: cols[f] lists feature f over
// all n examples, targets[j] lists output j. The transpose Fit pays
// per refit disappears, and per-output target columns are used as-is
// instead of being gathered from row vectors; the grown trees are
// bit-identical to Fit on the same numbers (see frameFromCols).
// Callers that accumulate observations incrementally — the MO-GBM
// estimator — keep their history in this layout and refit without any
// per-fit reshaping.
func (m *MultiOutputGBM) FitCols(n int, cols [][]float64, targets [][]float64) {
	if len(targets) == 0 || n == 0 {
		m.models = nil
		return
	}
	m.models = make([]*GBMRegressor, len(targets))
	ws := getScratch()
	for j, tgt := range targets {
		g := &GBMRegressor{Config: m.Config}
		g.Config.Seed = m.Config.Seed + int64(j)*7919
		fr := frameFromCols(cols, tgt[:n], ws)
		g.fitFrame(fr, ws)
		ws.putFrame(fr)
		m.models[j] = g
	}
	putScratch(ws)
}

// Predict returns the full output vector for one example.
func (m *MultiOutputGBM) Predict(x []float64) []float64 {
	out := make([]float64, len(m.models))
	for j, g := range m.models {
		out[j] = g.Predict(x)
	}
	return out
}

// NumOutputs reports the output dimensionality.
func (m *MultiOutputGBM) NumOutputs() int { return len(m.models) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
