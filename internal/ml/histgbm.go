package ml

import (
	"sort"
)

// HistGBMConfig controls histogram-based gradient boosting — the stand-in
// for LightGBM (LGC_mental, T4). Features are quantized into at most
// NumBins bins before boosting; split search then scans bin boundaries
// only, the core LightGBM trick.
type HistGBMConfig struct {
	GBM     GBMConfig
	NumBins int // default 32
}

// HistGBMClassifier is a binned binary gradient-boosted classifier.
type HistGBMClassifier struct {
	Config HistGBMConfig
	inner  GBMClassifier
	bins   [][]float64 // per-feature bin upper edges
}

// Fit quantizes X then trains the boosted classifier.
func (h *HistGBMClassifier) Fit(X [][]float64, y []float64) {
	nb := h.Config.NumBins
	if nb <= 0 {
		nb = 32
	}
	h.bins = computeBins(X, nb)
	bx := binAll(X, h.bins)
	h.inner = GBMClassifier{Config: h.Config.GBM}
	h.inner.Fit(bx, y)
}

// FitData quantizes a columnar data view then trains the boosted
// classifier, never materializing row-major input: bin edges come from
// the raw gathered columns (no presort — binning would discard it),
// and the binned frame's presorted orders are the unique (value,
// position) sort of the bin ids — identical to what Fit produces on
// the same numbers.
func (h *HistGBMClassifier) FitData(d Data) {
	nb := h.Config.NumBins
	if nb <= 0 {
		nb = 32
	}
	ws := getScratch()
	fr := d.buildRawFrame(ws)
	h.bins = computeBinsCols(fr.cols, nb)
	binFrame(fr, h.bins, &ws.cnt)
	h.inner = GBMClassifier{Config: h.Config.GBM}
	h.inner.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

// binFrame replaces the frame's columns with their bin ids in place
// and derives each presorted order with one counting pass over the bin
// ids (positions ascending within a bin = the unique (value, position)
// order; a sort would cost O(n log n) for ≤NumBins distinct values).
func binFrame(fr *frame, bins [][]float64, cntBuf *[]int32) {
	for f := 0; f < fr.nf; f++ {
		col := fr.cols[f]
		if f >= len(bins) {
			// Unbinned column (caller supplied a short bins slice, as
			// binRow tolerates): its order must still be derived, or
			// growth would scan an all-zero order.
			sortOrder(col, fr.base[f])
			continue
		}
		nBins := len(bins[f]) + 1
		if cap(*cntBuf) < nBins+1 {
			*cntBuf = make([]int32, nBins+1)
		}
		cnt := (*cntBuf)[:nBins+1]
		for i := range cnt {
			cnt[i] = 0
		}
		for i, v := range col {
			col[i] = float64(searchBins(bins[f], v))
			cnt[int(col[i])]++
		}
		sum := int32(0)
		for b := range cnt {
			c := cnt[b]
			cnt[b] = sum
			sum += c
		}
		for i, v := range col {
			b := int(v)
			fr.base[f][cnt[b]] = int32(i)
			cnt[b]++
		}
	}
}

// PredictProba returns P(y=1 | x).
func (h *HistGBMClassifier) PredictProba(x []float64) float64 {
	return h.inner.PredictProba(binRow(x, h.bins))
}

// Predict returns the hard 0/1 label.
func (h *HistGBMClassifier) Predict(x []float64) float64 {
	return h.inner.Predict(binRow(x, h.bins))
}

// Importances proxies the inner model's importances.
func (h *HistGBMClassifier) Importances(nf int) []float64 { return h.inner.Importances(nf) }

// HistGBMRegressor is a binned gradient-boosted regressor.
type HistGBMRegressor struct {
	Config HistGBMConfig
	inner  GBMRegressor
	bins   [][]float64
}

// Fit quantizes X then trains the boosted regressor.
func (h *HistGBMRegressor) Fit(X [][]float64, y []float64) {
	nb := h.Config.NumBins
	if nb <= 0 {
		nb = 32
	}
	h.bins = computeBins(X, nb)
	bx := binAll(X, h.bins)
	h.inner = GBMRegressor{Config: h.Config.GBM}
	h.inner.Fit(bx, y)
}

// Predict returns the boosted prediction for one example.
func (h *HistGBMRegressor) Predict(x []float64) float64 {
	return h.inner.Predict(binRow(x, h.bins))
}

// computeBins derives per-feature quantile bin edges.
func computeBins(X [][]float64, nb int) [][]float64 {
	if len(X) == 0 {
		return nil
	}
	nf := len(X[0])
	bins := make([][]float64, nf)
	col := make([]float64, len(X))
	for f := 0; f < nf; f++ {
		for i := range X {
			col[i] = X[i][f]
		}
		bins[f] = quantileEdges(col, nb)
	}
	return bins
}

// computeBinsCols is computeBins over column-major input; identical
// edges since each column holds the same values in the same row order.
func computeBinsCols(cols [][]float64, nb int) [][]float64 {
	bins := make([][]float64, len(cols))
	for f, col := range cols {
		if len(col) == 0 {
			continue
		}
		bins[f] = quantileEdges(col, nb)
	}
	return bins
}

// quantileEdges returns the deduplicated equal-frequency bin edges of
// one column.
func quantileEdges(col []float64, nb int) []float64 {
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	var edges []float64
	for b := 1; b < nb; b++ {
		q := sorted[b*len(sorted)/nb]
		if len(edges) == 0 || q != edges[len(edges)-1] {
			edges = append(edges, q)
		}
	}
	return edges
}

// searchBins maps a raw value to its bin id.
func searchBins(edges []float64, v float64) int { return sort.SearchFloat64s(edges, v) }

func binAll(X [][]float64, bins [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, r := range X {
		out[i] = binRow(r, bins)
	}
	return out
}

// binRow maps a raw row to bin indexes (as floats, so trees split on them).
func binRow(x []float64, bins [][]float64) []float64 {
	out := make([]float64, len(x))
	for f, v := range x {
		if f >= len(bins) {
			out[f] = v
			continue
		}
		out[f] = float64(searchBins(bins[f], v))
	}
	return out
}
