package ml

import (
	"sort"
)

// HistGBMConfig controls histogram-based gradient boosting — the stand-in
// for LightGBM (LGC_mental, T4). Features are quantized into at most
// NumBins bins before boosting; split search then scans bin boundaries
// only, the core LightGBM trick.
type HistGBMConfig struct {
	GBM     GBMConfig
	NumBins int // default 32
}

// HistGBMClassifier is a binned binary gradient-boosted classifier.
type HistGBMClassifier struct {
	Config HistGBMConfig
	inner  GBMClassifier
	bins   [][]float64 // per-feature bin upper edges
}

// Fit quantizes X then trains the boosted classifier.
func (h *HistGBMClassifier) Fit(X [][]float64, y []float64) {
	nb := h.Config.NumBins
	if nb <= 0 {
		nb = 32
	}
	h.bins = computeBins(X, nb)
	bx := binAll(X, h.bins)
	h.inner = GBMClassifier{Config: h.Config.GBM}
	h.inner.Fit(bx, y)
}

// PredictProba returns P(y=1 | x).
func (h *HistGBMClassifier) PredictProba(x []float64) float64 {
	return h.inner.PredictProba(binRow(x, h.bins))
}

// Predict returns the hard 0/1 label.
func (h *HistGBMClassifier) Predict(x []float64) float64 {
	return h.inner.Predict(binRow(x, h.bins))
}

// Importances proxies the inner model's importances.
func (h *HistGBMClassifier) Importances(nf int) []float64 { return h.inner.Importances(nf) }

// HistGBMRegressor is a binned gradient-boosted regressor.
type HistGBMRegressor struct {
	Config HistGBMConfig
	inner  GBMRegressor
	bins   [][]float64
}

// Fit quantizes X then trains the boosted regressor.
func (h *HistGBMRegressor) Fit(X [][]float64, y []float64) {
	nb := h.Config.NumBins
	if nb <= 0 {
		nb = 32
	}
	h.bins = computeBins(X, nb)
	bx := binAll(X, h.bins)
	h.inner = GBMRegressor{Config: h.Config.GBM}
	h.inner.Fit(bx, y)
}

// Predict returns the boosted prediction for one example.
func (h *HistGBMRegressor) Predict(x []float64) float64 {
	return h.inner.Predict(binRow(x, h.bins))
}

// computeBins derives per-feature quantile bin edges.
func computeBins(X [][]float64, nb int) [][]float64 {
	if len(X) == 0 {
		return nil
	}
	nf := len(X[0])
	bins := make([][]float64, nf)
	col := make([]float64, len(X))
	for f := 0; f < nf; f++ {
		for i := range X {
			col[i] = X[i][f]
		}
		sorted := append([]float64(nil), col...)
		sort.Float64s(sorted)
		var edges []float64
		for b := 1; b < nb; b++ {
			q := sorted[b*len(sorted)/nb]
			if len(edges) == 0 || q != edges[len(edges)-1] {
				edges = append(edges, q)
			}
		}
		bins[f] = edges
	}
	return bins
}

func binAll(X [][]float64, bins [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, r := range X {
		out[i] = binRow(r, bins)
	}
	return out
}

// binRow maps a raw row to bin indexes (as floats, so trees split on them).
func binRow(x []float64, bins [][]float64) []float64 {
	out := make([]float64, len(x))
	for f, v := range x {
		if f >= len(bins) {
			out[f] = v
			continue
		}
		// Binary search for the bin index.
		b := sort.SearchFloat64s(bins[f], v)
		out[f] = float64(b)
	}
	return out
}
