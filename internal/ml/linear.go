package ml

import "math"

// LinearRegression fits ordinary least squares with L2 ridge damping via
// the normal equations, solved by Gaussian elimination with partial
// pivoting. Deterministic and training-free of randomness.
type LinearRegression struct {
	Ridge   float64 // L2 regularization strength; default 1e-6 for stability
	Weights []float64
	Bias    float64
}

// Fit solves (X'X + λI) w = X'y.
func (l *LinearRegression) Fit(X [][]float64, y []float64) {
	nf := 0
	if len(X) > 0 {
		nf = len(X[0])
	}
	l.fitNormalEqs(len(X), nf, func(i int, dst []float64) []float64 {
		copy(dst, X[i])
		return dst
	}, func(i int) float64 { return y[i] })
}

// FitData trains on a columnar data view through one reused gather
// buffer — same accumulation per normal-equation cell, and so the same
// solution, as Fit on the equivalent row-major input.
func (l *LinearRegression) FitData(d Data) {
	l.fitNormalEqs(d.NumRows(), d.NumFeatures(), d.Row, d.Label)
}

// fitNormalEqs is the shared solver core: accumulate X'X and X'y row
// by row (every cell sums in row order, so both entry points agree
// bit for bit), damp the diagonal, eliminate.
func (l *LinearRegression) fitNormalEqs(n, nf int, rowAt func(i int, dst []float64) []float64, label func(i int) float64) {
	if n == 0 {
		l.Weights = nil
		l.Bias = 0
		return
	}
	lam := l.Ridge
	if lam <= 0 {
		lam = 1e-6
	}
	// Augment with a bias column.
	d := nf + 1
	A := make([][]float64, d)
	for i := range A {
		A[i] = make([]float64, d+1)
	}
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		rowAt(i, row[:nf])
		row[nf] = 1
		yi := label(i)
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				A[a][b] += row[a] * row[b]
			}
			A[a][d] += row[a] * yi
		}
	}
	for i := 0; i < d; i++ {
		A[i][i] += lam
	}
	w := solveGauss(A, d)
	l.Weights = w[:nf]
	l.Bias = w[nf]
}

// Predict returns w·x + b.
func (l *LinearRegression) Predict(x []float64) float64 {
	out := l.Bias
	for i, wi := range l.Weights {
		if i < len(x) {
			out += wi * x[i]
		}
	}
	return out
}

// solveGauss solves the augmented d x (d+1) system in-place.
func solveGauss(A [][]float64, d int) []float64 {
	for col := 0; col < d; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		A[col], A[piv] = A[piv], A[col]
		if A[col][col] == 0 {
			continue
		}
		for r := col + 1; r < d; r++ {
			f := A[r][col] / A[col][col]
			for c := col; c <= d; c++ {
				A[r][c] -= f * A[col][c]
			}
		}
	}
	w := make([]float64, d)
	for r := d - 1; r >= 0; r-- {
		if A[r][r] == 0 {
			continue
		}
		s := A[r][d]
		for c := r + 1; c < d; c++ {
			s -= A[r][c] * w[c]
		}
		w[r] = s / A[r][r]
	}
	return w
}

// LogisticRegression is a binary classifier trained by full-batch
// gradient descent with a fixed iteration budget — the paper's
// LR_avocado model (T3). Features are standardized internally so the
// fixed learning rate behaves across scales.
type LogisticRegression struct {
	LearningRate float64 // default 0.1
	Iterations   int     // default 200
	L2           float64 // default 1e-4
	Weights      []float64
	Bias         float64
	mu, sigma    []float64
}

// Fit trains on y in {0, 1}.
func (l *LogisticRegression) Fit(X [][]float64, y []float64) {
	if len(X) == 0 {
		l.Weights = nil
		return
	}
	lr := l.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	iters := l.Iterations
	if iters <= 0 {
		iters = 200
	}
	nf := len(X[0])
	l.mu, l.sigma = standardStats(X, nf)
	Z := standardize(X, l.mu, l.sigma)

	l.Weights = make([]float64, nf)
	l.Bias = 0
	n := float64(len(Z))
	gw := make([]float64, nf)
	for it := 0; it < iters; it++ {
		for i := range gw {
			gw[i] = 0
		}
		gb := 0.0
		for i, zi := range Z {
			p := sigmoid(dot(l.Weights, zi) + l.Bias)
			e := p - y[i]
			for j := range gw {
				gw[j] += e * zi[j]
			}
			gb += e
		}
		for j := range l.Weights {
			l.Weights[j] -= lr * (gw[j]/n + l.L2*l.Weights[j])
		}
		l.Bias -= lr * gb / n
	}
}

// FitData trains on a columnar data view: rows are gathered once into a
// single slab and fed to Fit, whose math only reads the values.
func (l *LogisticRegression) FitData(d Data) {
	l.Fit(gatherRows(d), Labels(d))
}

// PredictProba returns P(y=1 | x).
func (l *LogisticRegression) PredictProba(x []float64) float64 {
	z := standardizeRow(x, l.mu, l.sigma)
	return sigmoid(dot(l.Weights, z) + l.Bias)
}

// Predict returns the hard 0/1 label.
func (l *LogisticRegression) Predict(x []float64) float64 {
	if l.PredictProba(x) >= 0.5 {
		return 1
	}
	return 0
}

// AbsWeights returns |w| per feature in the standardized space, a
// coefficient-magnitude importance used by the H2O-like baseline.
func (l *LogisticRegression) AbsWeights() []float64 {
	out := make([]float64, len(l.Weights))
	for i, w := range l.Weights {
		out[i] = math.Abs(w)
	}
	return out
}

func standardStats(X [][]float64, nf int) (mu, sigma []float64) {
	mu = make([]float64, nf)
	sigma = make([]float64, nf)
	n := float64(len(X))
	for _, r := range X {
		for j := 0; j < nf && j < len(r); j++ {
			mu[j] += r[j]
		}
	}
	for j := range mu {
		mu[j] /= n
	}
	for _, r := range X {
		for j := 0; j < nf && j < len(r); j++ {
			d := r[j] - mu[j]
			sigma[j] += d * d
		}
	}
	for j := range sigma {
		sigma[j] = math.Sqrt(sigma[j] / n)
		if sigma[j] == 0 {
			sigma[j] = 1
		}
	}
	return mu, sigma
}

func standardize(X [][]float64, mu, sigma []float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, r := range X {
		out[i] = standardizeRow(r, mu, sigma)
	}
	return out
}

func standardizeRow(x []float64, mu, sigma []float64) []float64 {
	out := make([]float64, len(mu))
	for j := range mu {
		if j < len(x) {
			out[j] = (x[j] - mu[j]) / sigma[j]
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
