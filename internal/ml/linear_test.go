package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearRegressionRecoversWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X := make([][]float64, 500)
	y := make([]float64, 500)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		y[i] = 2*a - 3*b + 1
	}
	lr := &LinearRegression{}
	lr.Fit(X, y)
	if math.Abs(lr.Weights[0]-2) > 0.01 || math.Abs(lr.Weights[1]+3) > 0.01 {
		t.Errorf("weights = %v, want [2 -3]", lr.Weights)
	}
	if math.Abs(lr.Bias-1) > 0.01 {
		t.Errorf("bias = %v, want 1", lr.Bias)
	}
}

func TestLinearRegressionEmpty(t *testing.T) {
	lr := &LinearRegression{}
	lr.Fit(nil, nil)
	if lr.Predict([]float64{1, 2}) != 0 {
		t.Error("empty-fit model should predict 0")
	}
}

func TestLinearRegressionCollinear(t *testing.T) {
	// Duplicate features: ridge damping must keep the solve stable.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	lr := &LinearRegression{Ridge: 1e-3}
	lr.Fit(X, y)
	for i, x := range X {
		if math.Abs(lr.Predict(x)-y[i]) > 0.1 {
			t.Errorf("collinear fit: pred %v want %v", lr.Predict(x), y[i])
		}
	}
}

func TestLogisticRegressionSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X := make([][]float64, 400)
	y := make([]float64, 400)
	for i := range X {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		X[i] = []float64{a, b}
		if a+b > 0 {
			y[i] = 1
		}
	}
	lr := &LogisticRegression{Iterations: 300}
	lr.Fit(X, y)
	pred := make([]float64, len(y))
	for i, x := range X {
		pred[i] = lr.Predict(x)
	}
	if acc := Accuracy(y, pred); acc < 0.95 {
		t.Errorf("separable logistic accuracy = %v, want >= 0.95", acc)
	}
}

func TestLogisticRegressionProbaRange(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 0, 1, 1}
	lr := &LogisticRegression{}
	lr.Fit(X, y)
	for _, x := range X {
		p := lr.PredictProba(x)
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
	}
	// Monotone in x for this 1-D problem.
	if lr.PredictProba([]float64{0}) >= lr.PredictProba([]float64{3}) {
		t.Error("logistic should be increasing on this data")
	}
}

func TestAbsWeights(t *testing.T) {
	lr := &LogisticRegression{}
	lr.Weights = []float64{-2, 3}
	w := lr.AbsWeights()
	if w[0] != 2 || w[1] != 3 {
		t.Errorf("AbsWeights = %v", w)
	}
}

func TestSolveGaussIdentity(t *testing.T) {
	// x = 5, y = -2 via identity system.
	A := [][]float64{{1, 0, 5}, {0, 1, -2}}
	w := solveGauss(A, 2)
	if w[0] != 5 || w[1] != -2 {
		t.Errorf("solveGauss = %v", w)
	}
}

func TestSolveGaussPivoting(t *testing.T) {
	// Requires a row swap: first pivot is 0.
	A := [][]float64{{0, 1, 3}, {2, 0, 4}}
	w := solveGauss(A, 2)
	if math.Abs(w[0]-2) > 1e-12 || math.Abs(w[1]-3) > 1e-12 {
		t.Errorf("solveGauss with pivoting = %v, want [2 3]", w)
	}
}
