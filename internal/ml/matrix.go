package ml

import (
	"math"
	"sort"
	"sync"

	"repro/internal/table"
)

// Matrix is the frozen columnar encoding of a universal table: every
// feature column decoded once into floats (string columns as their
// universal active-domain position), null masks, the target vector, and
// one presorted ordering per feature in dense-rank form — rank[row] is
// the row's position among the column's sorted distinct values, so any
// row subset can be enumerated value-ascending by counting instead of
// sorting. Built once per space by TableEncoder.Matrix and immutable
// afterwards, it lets every valuation fit models on bitmap row views
// without rebuilding a child table or re-encoding a Dataset.
type Matrix struct {
	names []string
	cols  []matCol
	// Target vector: numeric value, or universal domain position for
	// string targets. ynull marks rows a Dataset would drop (null or
	// NaN target).
	yvals  []float64
	ynull  []bool
	ystr   bool
	ynRank int32 // |target domain| for string targets
	nRows  int

	// viewPool recycles View encoding state across valuations: one
	// matrix serves every state of its workload, and each state's view
	// needs the same buffer shapes, so steady-state view construction
	// reuses released buffers instead of allocating (see View.Release).
	viewPool sync.Pool
}

// matCol is one frozen feature column.
type matCol struct {
	name  string
	isStr bool
	vals  []float64 // numeric value, or universal domain position
	null  []bool    // nil when the column has no nulls
	rank  []int32   // dense rank among sorted distinct non-null values; -1 for nulls
	nRank int32
	// distinct holds the sorted distinct non-null values (rank → value).
	distinct []float64
}

// NumRows returns the universal row count.
func (m *Matrix) NumRows() int { return m.nRows }

// Column exposes the frozen decoding of a numeric feature column: the
// per-row cell values as floats and the null mask (nil when the column
// has no nulls). ok is false for unknown names and for string columns,
// whose vals hold universal domain positions rather than cell values.
// The returned slices are the matrix's own — callers must not mutate
// them.
func (m *Matrix) Column(name string) (vals []float64, null []bool, ok bool) {
	for ci := range m.cols {
		if c := &m.cols[ci]; c.name == name {
			if c.isStr {
				return nil, nil, false
			}
			return c.vals, c.null, true
		}
	}
	return nil, nil, false
}

// FeatureNames returns the encoded feature columns in schema order.
func (m *Matrix) FeatureNames() []string { return m.names }

// buildMatrix encodes the encoder's universal table column by column.
func (e *TableEncoder) buildMatrix() *Matrix {
	u := e.u
	n := len(u.Rows)
	m := &Matrix{nRows: n}
	tIdx := u.Schema.Index(e.target)
	for ci, c := range u.Schema {
		if ci == tIdx || e.skip[c.Name] {
			continue
		}
		col := matCol{name: c.Name, isStr: c.Kind == table.KindString}
		col.vals = make([]float64, n)
		col.rank = make([]int32, n)
		if col.isStr {
			codec := e.cols[c.Name]
			col.nRank = int32(len(codec.index))
			col.distinct = make([]float64, col.nRank)
			for i := range col.distinct {
				col.distinct[i] = float64(i)
			}
			for i, r := range u.Rows {
				v := r[ci]
				if v.IsNull() {
					if col.null == nil {
						col.null = make([]bool, n)
					}
					col.null[i] = true
					col.rank[i] = -1
					continue
				}
				pos := codec.index[v.Key()]
				col.vals[i] = float64(pos)
				col.rank[i] = int32(pos)
			}
		} else {
			var nonNull []float64
			for i, r := range u.Rows {
				v := r[ci]
				if v.IsNull() {
					if col.null == nil {
						col.null = make([]bool, n)
					}
					col.null[i] = true
					col.rank[i] = -1
					continue
				}
				col.vals[i] = v.AsFloat()
				nonNull = append(nonNull, col.vals[i])
			}
			sort.Float64s(nonNull)
			col.distinct = nonNull[:0]
			for _, v := range nonNull {
				if len(col.distinct) == 0 || v != col.distinct[len(col.distinct)-1] {
					col.distinct = append(col.distinct, v)
				}
			}
			col.nRank = int32(len(col.distinct))
			for i := range u.Rows {
				if col.null != nil && col.null[i] {
					continue
				}
				col.rank[i] = int32(sort.SearchFloat64s(col.distinct, col.vals[i]))
			}
		}
		m.cols = append(m.cols, col)
		m.names = append(m.names, c.Name)
	}
	m.yvals = make([]float64, n)
	m.ynull = make([]bool, n)
	if tIdx < 0 {
		for i := range m.ynull {
			m.ynull[i] = true
		}
		return m
	}
	m.ystr = u.Schema[tIdx].Kind == table.KindString
	if m.ystr {
		m.ynRank = int32(len(e.tgt.index))
	}
	for i, r := range u.Rows {
		v := r[tIdx]
		if v.IsNull() {
			m.ynull[i] = true
			continue
		}
		if m.ystr {
			m.yvals[i] = float64(e.tgt.index[v.Key()])
		} else {
			m.yvals[i] = v.AsFloat()
			if math.IsNaN(m.yvals[i]) {
				m.ynull[i] = true
			}
		}
	}
	return m
}

// View is a state's dataset as a row selection over the frozen Matrix —
// the zero-materialization equivalent of Materialize + Encode. It
// reproduces the child-local Dataset encoding exactly: string columns
// re-rank the universal domain positions present among the selected
// rows, numeric nulls impute the mean over the selected rows, masked
// attributes drop their feature, and null-target rows are excluded from
// the example set (but still contribute to the encoding statistics,
// as Encode's child-table scans do).
type View struct {
	m    *Matrix
	rows []int32 // example rows (target non-null), in dataset order
	// Encoding state, shared by Split children (fixed by the full
	// child, exactly like Encode before Dataset.Split):
	feats   []int32     // active matrix columns
	remap   [][]float64 // per active feature: rank → child ordinal (string cols)
	mean    []float64   // per active feature: imputation value (numeric cols)
	hasNull []bool      // per active feature: nulls among the child rows
	yremap  []float64   // string target: rank → child ordinal

	// present is construction scratch (domain-presence marks); root
	// marks views born from Matrix.View, the only ones Release pools.
	present []bool
	root    bool
}

// View builds the dataset view of the child selecting the given
// universal rows (ascending, including rows whose target is null) with
// the named attributes masked. Views are pooled per matrix: hand the
// view back with [View.Release] once fitting and scoring on it (and
// any SplitData children) are finished, and its buffers serve the next
// valuation instead of being reallocated.
func (m *Matrix) View(rows []int, masked []string) *View {
	v, _ := m.viewPool.Get().(*View)
	if v == nil {
		v = &View{}
	}
	v.m = m
	v.root = true
	var maskSet map[string]bool
	if len(masked) > 0 {
		maskSet = make(map[string]bool, len(masked))
		for _, a := range masked {
			maskSet[a] = true
		}
	}
	v.feats = v.feats[:0]
	for ci := range m.cols {
		if maskSet[m.cols[ci].name] {
			continue
		}
		v.feats = append(v.feats, int32(ci))
	}
	nf := len(v.feats)
	v.remap = resizeSlices(v.remap, nf)
	v.mean = resizeFloats(v.mean, nf)
	v.hasNull = resizeBools(v.hasNull, nf)
	for k, ci := range v.feats {
		c := &m.cols[ci]
		if c.isStr {
			present := resizeBools(v.present, int(c.nRank))
			for _, r := range rows {
				if c.null != nil && c.null[r] {
					v.hasNull[k] = true
					continue
				}
				present[c.rank[r]] = true
			}
			remap := resizeFloats(v.remap[k], int(c.nRank))
			next := 0.0
			for i, p := range present {
				if p {
					remap[i] = next
					next++
				}
			}
			v.remap[k] = remap
			v.present = present
		} else if c.null != nil {
			// Mean over the child's non-null cells, summed in row order
			// like Encode.
			var sum float64
			var cnt int
			for _, r := range rows {
				if c.null[r] {
					v.hasNull[k] = true
					continue
				}
				sum += c.vals[r]
				cnt++
			}
			if cnt > 0 {
				v.mean[k] = sum / float64(cnt)
			}
		}
	}
	if m.ystr {
		present := resizeBools(v.present, int(m.ynRank))
		for _, r := range rows {
			if !m.ynull[r] {
				present[int(m.yvals[r])] = true
			}
		}
		v.present = present
		v.yremap = resizeFloats(v.yremap, len(present))
		next := 0.0
		for i, p := range present {
			if p {
				v.yremap[i] = next
				next++
			}
		}
	} else {
		v.yremap = nil
	}
	if cap(v.rows) < len(rows) {
		v.rows = make([]int32, 0, len(rows))
	} else {
		v.rows = v.rows[:0]
	}
	for _, r := range rows {
		if !m.ynull[r] {
			v.rows = append(v.rows, int32(r))
		}
	}
	return v
}

// Release returns a view's encoding buffers to its matrix's pool. Call
// it only on views obtained directly from Matrix.View, after every use
// of the view — including SplitData children, which borrow the
// parent's encoding state — is finished; the view is invalid
// afterwards. Views derived by SplitData ignore Release.
func (v *View) Release() {
	if !v.root {
		return
	}
	m := v.m
	v.root = false
	v.m = nil
	m.viewPool.Put(v)
}

// resizeFloats returns a zeroed float slice of length n, reusing buf's
// storage when it is large enough.
func resizeFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// resizeBools returns a cleared bool slice of length n, reusing buf.
func resizeBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// resizeSlices returns a length-n outer slice, reusing buf and its
// inner slices (the per-feature remap buffers) when possible.
func resizeSlices(buf [][]float64, n int) [][]float64 {
	if cap(buf) < n {
		next := make([][]float64, n)
		copy(next, buf)
		return next
	}
	return buf[:n]
}

// valueAt returns the child-encoded value of active feature k at
// universal row r — exactly what Encode would have written into X.
func (v *View) valueAt(k int, r int32) float64 {
	c := &v.m.cols[v.feats[k]]
	if c.null != nil && c.null[r] {
		if c.isStr {
			// FromTable's string columns never compute a mean; null
			// string cells encode as the zero value.
			return 0
		}
		return v.mean[k]
	}
	if c.isStr {
		return v.remap[k][c.rank[r]]
	}
	return c.vals[r]
}

// labelOf returns the child-encoded target of universal row r.
func (v *View) labelOf(r int32) float64 {
	if v.yremap != nil {
		return v.yremap[int32(v.m.yvals[r])]
	}
	return v.m.yvals[r]
}

// NumRows implements Data.
func (v *View) NumRows() int { return len(v.rows) }

// NumFeatures implements Data.
func (v *View) NumFeatures() int { return len(v.feats) }

// FeatureNames returns the active feature names in dataset order.
func (v *View) FeatureNames() []string {
	out := make([]string, len(v.feats))
	for k, ci := range v.feats {
		out[k] = v.m.cols[ci].name
	}
	return out
}

// Label implements Data.
func (v *View) Label(i int) float64 { return v.labelOf(v.rows[i]) }

// Row implements Data.
func (v *View) Row(i int, dst []float64) []float64 {
	dst = dst[:len(v.feats)]
	r := v.rows[i]
	for k := range v.feats {
		dst[k] = v.valueAt(k, r)
	}
	return dst
}

// Col implements Data.
func (v *View) Col(f int, dst []float64) []float64 {
	dst = dst[:len(v.rows)]
	for i, r := range v.rows {
		dst[i] = v.valueAt(f, r)
	}
	return dst
}

// SplitData implements Data with the same deterministic shuffle as
// Dataset.Split, so a view and the equivalent encoded dataset partition
// their rows identically. Children share the parent's encoding state:
// the split selects examples, it does not re-encode.
func (v *View) SplitData(testFrac float64, seed int64) (train, test Data) {
	n := len(v.rows)
	perm, nTest := splitPerm(n, testFrac, seed)
	tr := v.withRows(make([]int32, 0, n-nTest))
	te := v.withRows(make([]int32, 0, nTest))
	for i, p := range perm {
		if i < nTest {
			te.rows = append(te.rows, v.rows[p])
		} else {
			tr.rows = append(tr.rows, v.rows[p])
		}
	}
	return tr, te
}

func (v *View) withRows(rows []int32) *View {
	nv := *v
	nv.rows = rows
	// Children borrow the parent's encoding state and are never pooled
	// themselves: only the view Matrix.View handed out may Release.
	nv.root = false
	return &nv
}

// buildFrame implements Data: gather the encoded columns and derive
// each presorted order from the matrix's dense ranks by counting —
// O(rows + distinct) per feature instead of a sort. The re-ranking of
// string columns and the identity encoding of numeric columns are both
// strictly monotone in the universal rank, so bucketing positions by
// rank (ascending within a bucket) yields the unique (value, position)
// order. Features with imputed nulls fall back to an explicit sort:
// the imputed mean lands between ranks.
func (v *View) buildFrame(ws *treeScratch) *frame {
	fr := v.buildRawFrame(ws)
	for k := range v.feats {
		c := &v.m.cols[v.feats[k]]
		if v.hasNull[k] {
			sortOrder(fr.cols[k], fr.base[k])
		} else {
			countingOrder(c.rank, v.rows, fr.base[k], &ws.cnt, int(c.nRank))
		}
	}
	return fr
}

// buildRawFrame gathers the encoded columns and target without
// deriving the presorted orders (see Data.buildRawFrame).
func (v *View) buildRawFrame(ws *treeScratch) *frame {
	n := len(v.rows)
	nf := len(v.feats)
	fr := ws.getFrame(nf, n)
	fr.ownY(n)
	for i, r := range v.rows {
		fr.y[i] = v.labelOf(r)
	}
	for k := range v.feats {
		col := fr.cols[k]
		for i, r := range v.rows {
			col[i] = v.valueAt(k, r)
		}
	}
	return fr
}

// countingOrder fills out with positions 0..len(rows)-1 sorted by
// (rank[rows[pos]], pos) via one counting pass over the caller's
// grow-on-demand scratch. Because equal rank means equal value and
// positions are placed ascending within a bucket, this is the unique
// (value, position) total order sortOrder computes.
func countingOrder(rank []int32, rows []int32, out []int32, cntBuf *[]int32, nRank int) {
	if cap(*cntBuf) < nRank+1 {
		*cntBuf = make([]int32, nRank+1)
	}
	cnt := (*cntBuf)[:nRank+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, r := range rows {
		cnt[rank[r]]++
	}
	sum := int32(0)
	for b := range cnt {
		c := cnt[b]
		cnt[b] = sum
		sum += c
	}
	for i, r := range rows {
		b := rank[r]
		out[cnt[b]] = int32(i)
		cnt[b]++
	}
}
