package ml

import (
	"math/rand"
	"testing"

	"repro/internal/table"
)

// matrixUniversal builds a universal-style table exercising every
// encoding path: a skip column, a string column, int and float columns,
// a float column with nulls, and null targets.
func matrixUniversal(nullTarget bool) *table.Table {
	u := table.New("D_U", table.Schema{
		{Name: "id", Kind: table.KindInt},
		{Name: "season", Kind: table.KindString},
		{Name: "x", Kind: table.KindFloat},
		{Name: "k", Kind: table.KindInt},
		{Name: "sparse", Kind: table.KindFloat},
		{Name: "target", Kind: table.KindFloat},
	})
	seasons := []string{"spring", "summer", "fall", "winter"}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		sparse := table.Value(table.Float(rng.Float64() * 10))
		if i%7 == 0 {
			sparse = table.Null
		}
		tgt := table.Value(table.Float(float64(i%5) + rng.Float64()))
		if nullTarget && i%11 == 0 {
			tgt = table.Null
		}
		u.MustAppend(table.Row{
			table.Int(int64(i)),
			table.Str(seasons[i%4]),
			table.Float(rng.Float64() * 3),
			table.Int(int64(i % 6)),
			sparse,
			tgt,
		})
	}
	return u
}

// childOf simulates Materialize's output for a row subset with masked
// columns dropped.
func childOf(u *table.Table, rows []int, masked []string) *table.Table {
	t := table.New("D_s", u.Schema)
	for _, r := range rows {
		t.Rows = append(t.Rows, u.Rows[r].Clone())
	}
	for _, m := range masked {
		t = t.DropColumn(m)
	}
	return t
}

// sampleStates yields deterministic row subsets and mask combinations.
func sampleStates(nRows int) []struct {
	rows   []int
	masked []string
} {
	rng := rand.New(rand.NewSource(11))
	var out []struct {
		rows   []int
		masked []string
	}
	maskChoices := [][]string{nil, {"sparse"}, {"season"}, {"season", "k"}}
	for trial := 0; trial < 12; trial++ {
		var rows []int
		keep := 0.3 + 0.7*rng.Float64()
		for r := 0; r < nRows; r++ {
			if rng.Float64() < keep {
				rows = append(rows, r)
			}
		}
		out = append(out, struct {
			rows   []int
			masked []string
		}{rows, maskChoices[trial%len(maskChoices)]})
	}
	// Full state and tiny state.
	full := make([]int, nRows)
	for i := range full {
		full[i] = i
	}
	out = append(out, struct {
		rows   []int
		masked []string
	}{full, nil})
	out = append(out, struct {
		rows   []int
		masked []string
	}{[]int{3, 4, 9}, []string{"x"}})
	return out
}

// TestViewMatchesEncode is the core zero-materialization property: a
// matrix view of (rows, masked) must reproduce the encoded child
// dataset cell for cell.
func TestViewMatchesEncode(t *testing.T) {
	for _, nullTarget := range []bool{false, true} {
		u := matrixUniversal(nullTarget)
		enc := NewTableEncoderSkip(u, "target", "id")
		mx := enc.Matrix()
		for si, st := range sampleStates(u.NumRows()) {
			ds := enc.Encode(childOf(u, st.rows, st.masked))
			v := mx.View(st.rows, st.masked)
			if ds.NumRows() != v.NumRows() || ds.NumFeatures() != v.NumFeatures() {
				t.Fatalf("state %d (nullTarget=%v): shape (%d,%d) vs view (%d,%d)",
					si, nullTarget, ds.NumRows(), ds.NumFeatures(), v.NumRows(), v.NumFeatures())
			}
			buf := make([]float64, v.NumFeatures())
			for i := 0; i < ds.NumRows(); i++ {
				if ds.Y[i] != v.Label(i) {
					t.Fatalf("state %d row %d: y %v vs %v", si, i, ds.Y[i], v.Label(i))
				}
				row := v.Row(i, buf)
				for f := range row {
					if ds.X[i][f] != row[f] {
						t.Fatalf("state %d row %d feat %d (%s): %v vs %v",
							si, i, f, ds.Features[f], ds.X[i][f], row[f])
					}
				}
			}
			for f := 0; f < ds.NumFeatures(); f++ {
				if ds.Features[f] != v.FeatureNames()[f] {
					t.Fatalf("state %d: feature order %v vs %v", si, ds.Features, v.FeatureNames())
				}
			}
		}
	}
}

// TestViewSplitMatchesDatasetSplit: the deterministic shuffle must
// partition view rows exactly like the encoded dataset's rows.
func TestViewSplitMatchesDatasetSplit(t *testing.T) {
	u := matrixUniversal(true)
	enc := NewTableEncoderSkip(u, "target", "id")
	mx := enc.Matrix()
	for si, st := range sampleStates(u.NumRows()) {
		ds := enc.Encode(childOf(u, st.rows, st.masked))
		v := mx.View(st.rows, st.masked)
		dtr, dte := ds.Split(0.3, 42)
		vtr, vte := v.SplitData(0.3, 42)
		assertSameData(t, si, "train", dtr, vtr)
		assertSameData(t, si, "test", dte, vte)
	}
}

func assertSameData(t *testing.T, si int, part string, d *Dataset, v Data) {
	t.Helper()
	if len(d.X) != v.NumRows() {
		t.Fatalf("state %d %s: %d vs %d rows", si, part, len(d.X), v.NumRows())
	}
	buf := make([]float64, v.NumFeatures())
	for i := range d.X {
		if d.Y[i] != v.Label(i) {
			t.Fatalf("state %d %s row %d: y %v vs %v", si, part, i, d.Y[i], v.Label(i))
		}
		row := v.Row(i, buf)
		for f := range row {
			if d.X[i][f] != row[f] {
				t.Fatalf("state %d %s row %d feat %d: %v vs %v", si, part, i, f, d.X[i][f], row[f])
			}
		}
	}
}

// TestFitParityAcrossRoutes: every learner family must produce
// bit-identical predictions whether fitted on the encoded dataset or on
// the matrix view of the same state — the frame inputs are equal and
// the (value, position) presort is unique, so the grown models must be
// too.
func TestFitParityAcrossRoutes(t *testing.T) {
	u := matrixUniversal(true)
	enc := NewTableEncoderSkip(u, "target", "id")
	mx := enc.Matrix()
	states := sampleStates(u.NumRows())

	type fitter struct {
		name string
		run  func(train Data) func([]float64) float64
	}
	fitters := []fitter{
		{"tree", func(tr Data) func([]float64) float64 {
			m := &TreeRegressor{Config: TreeConfig{MaxDepth: 5, Seed: 3}}
			m.FitData(tr)
			return m.Predict
		}},
		{"treeclf", func(tr Data) func([]float64) float64 {
			m := &TreeClassifier{Config: TreeConfig{MaxDepth: 5, Seed: 3}, NumClass: 5}
			m.FitData(tr)
			return m.Predict
		}},
		{"gbm", func(tr Data) func([]float64) float64 {
			m := &GBMRegressor{Config: GBMConfig{NumTrees: 12, MaxDepth: 3, Seed: 1}}
			m.FitData(tr)
			return m.Predict
		}},
		{"forest", func(tr Data) func([]float64) float64 {
			m := &ForestClassifier{Config: ForestConfig{NumTrees: 8, MaxDepth: 5, Seed: 2}, NumClass: 5}
			m.FitData(tr)
			return func(x []float64) float64 {
				p := m.PredictProba(x)
				out := 0.0
				for c, pc := range p {
					out += float64(c+1) * pc
				}
				return out
			}
		}},
		{"histgbm", func(tr Data) func([]float64) float64 {
			m := &HistGBMClassifier{Config: HistGBMConfig{GBM: GBMConfig{NumTrees: 10, MaxDepth: 3, Seed: 1}, NumBins: 8}}
			m.FitData(tr)
			return m.PredictProba
		}},
		{"linear", func(tr Data) func([]float64) float64 {
			m := &LinearRegression{}
			m.FitData(tr)
			return m.Predict
		}},
		{"logistic", func(tr Data) func([]float64) float64 {
			m := &LogisticRegression{Iterations: 40}
			m.FitData(tr)
			return m.PredictProba
		}},
	}

	for _, ft := range fitters {
		t.Run(ft.name, func(t *testing.T) {
			for si, st := range states[:6] {
				ds := enc.Encode(childOf(u, st.rows, st.masked))
				v := mx.View(st.rows, st.masked)
				if ds.NumRows() == 0 {
					continue
				}
				dtr, dte := ds.SplitData(0.3, 42)
				vtr, vte := v.SplitData(0.3, 42)
				pd := ft.run(dtr)
				pv := ft.run(vtr)
				buf := make([]float64, v.NumFeatures())
				buf2 := make([]float64, v.NumFeatures())
				for i := 0; i < dte.NumRows(); i++ {
					a := pd(dte.Row(i, buf))
					b := pv(vte.Row(i, buf2))
					if a != b {
						t.Fatalf("state %d test row %d: dataset-fit %v != view-fit %v", si, i, a, b)
					}
				}
			}
		})
	}
}

// TestEncoderSkipMatchesDropColumn: Encode with a skip set must equal
// FromTable on the child with the column dropped — the clone the skip
// option eliminates.
func TestEncoderSkipMatchesDropColumn(t *testing.T) {
	u := matrixUniversal(true)
	enc := NewTableEncoderSkip(u, "target", "id")
	for si, st := range sampleStates(u.NumRows()) {
		child := childOf(u, st.rows, st.masked)
		got := enc.Encode(child)
		want := FromTable(child.DropColumn("id"), "target")
		if len(got.X) != len(want.X) || len(got.Features) != len(want.Features) {
			t.Fatalf("state %d: shape mismatch", si)
		}
		for i := range want.X {
			if got.Y[i] != want.Y[i] {
				t.Fatalf("state %d row %d: y mismatch", si, i)
			}
			for f := range want.X[i] {
				if got.X[i][f] != want.X[i][f] {
					t.Fatalf("state %d row %d feat %d: %v != %v", si, i, f, got.X[i][f], want.X[i][f])
				}
			}
		}
	}
}

// TestCountingOrderMatchesSort: the counting derivation from matrix
// ranks must equal the generic (value, position) sort on every
// no-null feature of every sampled view.
func TestCountingOrderMatchesSort(t *testing.T) {
	u := matrixUniversal(false)
	enc := NewTableEncoderSkip(u, "target", "id")
	mx := enc.Matrix()
	ws := &treeScratch{}
	for si, st := range sampleStates(u.NumRows()) {
		v := mx.View(st.rows, st.masked)
		if v.NumRows() == 0 {
			continue
		}
		fr := v.buildFrame(ws)
		for f := 0; f < fr.nf; f++ {
			want := make([]int32, fr.n)
			sortOrder(fr.cols[f], want)
			for i := range want {
				if fr.base[f][i] != want[i] {
					t.Fatalf("state %d feature %d pos %d: counting order %d != sorted %d",
						si, f, i, fr.base[f][i], want[i])
				}
			}
		}
	}
}

// TestBootstrapOrdersMatchSort: resampled frames must satisfy the same
// unique (value, position) order invariant as every other frame
// constructor, including across tied values drawn from different
// source rows.
func TestBootstrapOrdersMatchSort(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 80
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		// Heavy ties: small categorical-like domains.
		X[i] = []float64{float64(i % 3), float64(rng.Intn(5)), rng.Float64()}
		y[i] = rng.Float64()
	}
	ws := &treeScratch{}
	fr := frameFromRows(X, y, ws)
	bs := newBootstrapper(fr, ws)
	for trial := 0; trial < 6; trial++ {
		bfr := bs.resample(rng)
		for f := 0; f < bfr.nf; f++ {
			want := make([]int32, bfr.n)
			sortOrder(bfr.cols[f], want)
			for i := range want {
				if bfr.base[f][i] != want[i] {
					t.Fatalf("trial %d feature %d pos %d: bootstrap order %d != sorted %d",
						trial, f, i, bfr.base[f][i], want[i])
				}
			}
		}
	}
}

// TestStringTargetViewParity covers the string-target remap path.
func TestStringTargetViewParity(t *testing.T) {
	u := table.New("D_U", table.Schema{
		{Name: "a", Kind: table.KindFloat},
		{Name: "label", Kind: table.KindString},
	})
	labels := []string{"lo", "mid", "hi", "top"}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		u.MustAppend(table.Row{table.Float(rng.Float64()), table.Str(labels[i%4])})
	}
	enc := NewTableEncoder(u, "label")
	mx := enc.Matrix()
	rows := []int{0, 1, 2, 5, 6, 9, 13, 17, 21, 22, 30, 33, 38}
	ds := enc.Encode(childOf(u, rows, nil))
	v := mx.View(rows, nil)
	if ds.NumRows() != v.NumRows() {
		t.Fatalf("rows %d vs %d", ds.NumRows(), v.NumRows())
	}
	for i := range ds.Y {
		if ds.Y[i] != v.Label(i) {
			t.Fatalf("row %d: label %v vs %v", i, ds.Y[i], v.Label(i))
		}
	}
}

// TestMatrixColumn: numeric columns expose their frozen cell floats
// and null masks; string, skipped, target, and unknown names are
// declined — the contract fst row-index construction relies on.
func TestMatrixColumn(t *testing.T) {
	u := matrixUniversal(false)
	enc := NewTableEncoderSkip(u, "target", "id")
	mx := enc.Matrix()

	for _, name := range []string{"x", "k", "sparse"} {
		vals, null, ok := mx.Column(name)
		if !ok {
			t.Fatalf("numeric column %q declined", name)
		}
		if len(vals) != u.NumRows() {
			t.Fatalf("column %q has %d values, want %d", name, len(vals), u.NumRows())
		}
		ci := u.Schema.Index(name)
		for ri, r := range u.Rows {
			cell := r[ci]
			if cell.IsNull() {
				if null == nil || !null[ri] {
					t.Fatalf("column %q row %d: null cell not masked", name, ri)
				}
				continue
			}
			if null != nil && null[ri] {
				t.Fatalf("column %q row %d: non-null cell masked", name, ri)
			}
			if vals[ri] != cell.AsFloat() {
				t.Fatalf("column %q row %d: %v != cell %v", name, ri, vals[ri], cell.AsFloat())
			}
		}
	}
	for _, name := range []string{"season", "id", "target", "missing"} {
		if _, _, ok := mx.Column(name); ok {
			t.Errorf("column %q must be declined", name)
		}
	}
	// The encoder forwards the same contract (lazily building the
	// matrix), making it a drop-in fst.ColumnSource.
	if vals, _, ok := enc.Column("x"); !ok || len(vals) != u.NumRows() {
		t.Error("encoder Column does not forward the matrix contract")
	}
}
