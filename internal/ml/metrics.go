package ml

import (
	"math"
	"sort"
)

// Accuracy returns the fraction of exact label matches.
func Accuracy(yTrue, yPred []float64) float64 {
	if len(yTrue) == 0 {
		return 0
	}
	hit := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(yTrue))
}

// PrecisionRecallF1 returns macro-averaged precision, recall and F1 over
// the classes present in yTrue.
func PrecisionRecallF1(yTrue, yPred []float64) (precision, recall, f1 float64) {
	classSet := map[int]bool{}
	for _, y := range yTrue {
		classSet[int(y)] = true
	}
	if len(classSet) == 0 {
		return 0, 0, 0
	}
	classes := make([]int, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	var sp, sr, sf float64
	for _, c := range classes {
		var tp, fp, fn float64
		for i := range yTrue {
			pt := int(yTrue[i]) == c
			pp := int(yPred[i]) == c
			switch {
			case pt && pp:
				tp++
			case !pt && pp:
				fp++
			case pt && !pp:
				fn++
			}
		}
		var p, r float64
		if tp+fp > 0 {
			p = tp / (tp + fp)
		}
		if tp+fn > 0 {
			r = tp / (tp + fn)
		}
		var f float64
		if p+r > 0 {
			f = 2 * p * r / (p + r)
		}
		sp += p
		sr += r
		sf += f
	}
	n := float64(len(classes))
	return sp / n, sr / n, sf / n
}

// AUC returns the area under the ROC curve for binary labels (0/1) and
// real-valued scores, computed via the rank statistic. Degenerate inputs
// (single class) return 0.5.
func AUC(yTrue, scores []float64) float64 {
	type sc struct {
		s float64
		y float64
	}
	pairs := make([]sc, len(yTrue))
	var nPos, nNeg float64
	for i := range yTrue {
		pairs[i] = sc{scores[i], yTrue[i]}
		if yTrue[i] > 0.5 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].s < pairs[b].s })
	// Sum ranks of positives with tie-averaged ranks.
	var sumRankPos float64
	for i := 0; i < len(pairs); {
		j := i
		for j+1 < len(pairs) && pairs[j+1].s == pairs[i].s {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			if pairs[k].y > 0.5 {
				sumRankPos += avg
			}
		}
		i = j + 1
	}
	return (sumRankPos - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// MSE returns the mean squared error.
func MSE(yTrue, yPred []float64) float64 {
	if len(yTrue) == 0 {
		return 0
	}
	var s float64
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		s += d * d
	}
	return s / float64(len(yTrue))
}

// RMSE returns the root mean squared error.
func RMSE(yTrue, yPred []float64) float64 { return math.Sqrt(MSE(yTrue, yPred)) }

// MAE returns the mean absolute error.
func MAE(yTrue, yPred []float64) float64 {
	if len(yTrue) == 0 {
		return 0
	}
	var s float64
	for i := range yTrue {
		s += math.Abs(yTrue[i] - yPred[i])
	}
	return s / float64(len(yTrue))
}

// R2 returns the coefficient of determination; a constant yTrue yields 0.
func R2(yTrue, yPred []float64) float64 {
	if len(yTrue) == 0 {
		return 0
	}
	m := mean(yTrue)
	var ssRes, ssTot float64
	for i := range yTrue {
		d := yTrue[i] - yPred[i]
		ssRes += d * d
		t := yTrue[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// RankedList is one query's ranking: item relevance labels ordered by
// descending predicted score.
type RankedList []float64

// PrecisionAt returns P@n: the fraction of the top-n that is relevant.
func (r RankedList) PrecisionAt(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n > len(r) {
		n = len(r)
	}
	if n == 0 {
		return 0
	}
	var hit float64
	for _, rel := range r[:n] {
		if rel > 0 {
			hit++
		}
	}
	return hit / float64(n)
}

// RecallAt returns R@n: the fraction of all relevant items in the top-n.
func (r RankedList) RecallAt(n int) float64 {
	var total float64
	for _, rel := range r {
		if rel > 0 {
			total++
		}
	}
	if total == 0 {
		return 0
	}
	if n > len(r) {
		n = len(r)
	}
	var hit float64
	for _, rel := range r[:n] {
		if rel > 0 {
			hit++
		}
	}
	return hit / total
}

// NDCGAt returns NDCG@n with binary or graded relevance labels.
func (r RankedList) NDCGAt(n int) float64 {
	if n > len(r) {
		n = len(r)
	}
	var dcg float64
	for i := 0; i < n; i++ {
		dcg += (math.Pow(2, r[i]) - 1) / math.Log2(float64(i)+2)
	}
	ideal := append(RankedList(nil), r...)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	var idcg float64
	for i := 0; i < n; i++ {
		idcg += (math.Pow(2, ideal[i]) - 1) / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// MeanRanked averages a metric over a set of ranked lists.
func MeanRanked(lists []RankedList, metric func(RankedList) float64) float64 {
	if len(lists) == 0 {
		return 0
	}
	var s float64
	for _, l := range lists {
		s += metric(l)
	}
	return s / float64(len(lists))
}
