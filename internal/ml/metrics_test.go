package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]float64{1, 0, 1, 1}, []float64{1, 0, 0, 1}); got != 0.75 {
		t.Errorf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestPrecisionRecallF1Perfect(t *testing.T) {
	y := []float64{0, 1, 0, 1}
	p, r, f := PrecisionRecallF1(y, y)
	if p != 1 || r != 1 || f != 1 {
		t.Errorf("perfect P/R/F1 = %v %v %v", p, r, f)
	}
}

func TestPrecisionRecallF1Known(t *testing.T) {
	// Class 1: tp=1 fp=1 fn=1 -> p=r=0.5, f=0.5
	// Class 0: tp=1 fp=1 fn=1 -> p=r=0.5, f=0.5; macro = 0.5
	yTrue := []float64{1, 1, 0, 0}
	yPred := []float64{1, 0, 1, 0}
	p, r, f := PrecisionRecallF1(yTrue, yPred)
	if p != 0.5 || r != 0.5 || f != 0.5 {
		t.Errorf("macro P/R/F1 = %v %v %v, want 0.5", p, r, f)
	}
}

func TestAUCPerfectAndReversed(t *testing.T) {
	y := []float64{0, 0, 1, 1}
	if got := AUC(y, []float64{0.1, 0.2, 0.8, 0.9}); got != 1 {
		t.Errorf("perfect AUC = %v", got)
	}
	if got := AUC(y, []float64{0.9, 0.8, 0.2, 0.1}); got != 0 {
		t.Errorf("reversed AUC = %v", got)
	}
	if got := AUC([]float64{1, 1}, []float64{0.5, 0.6}); got != 0.5 {
		t.Errorf("degenerate AUC = %v, want 0.5", got)
	}
}

func TestAUCWithTies(t *testing.T) {
	y := []float64{0, 1, 0, 1}
	s := []float64{0.5, 0.5, 0.5, 0.5}
	if got := AUC(y, s); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("all-tied AUC = %v, want 0.5", got)
	}
}

func TestRegressionMetrics(t *testing.T) {
	yt := []float64{1, 2, 3}
	yp := []float64{1, 2, 5}
	if got := MSE(yt, yp); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("MSE = %v", got)
	}
	if got := MAE(yt, yp); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MAE = %v", got)
	}
	if got := RMSE(yt, yp); math.Abs(got-math.Sqrt(4.0/3)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if got := R2(yt, yt); got != 1 {
		t.Errorf("perfect R2 = %v", got)
	}
	if got := R2([]float64{5, 5}, []float64{4, 6}); got != 0 {
		t.Errorf("constant-target R2 = %v, want 0", got)
	}
}

func TestRankedListMetrics(t *testing.T) {
	// Relevance by rank position: relevant at 1 and 3.
	r := RankedList{1, 0, 1, 0, 0}
	if got := r.PrecisionAt(3); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("P@3 = %v", got)
	}
	if got := r.RecallAt(3); got != 1 {
		t.Errorf("R@3 = %v, want 1 (all 2 relevant in top 3)", got)
	}
	if got := r.RecallAt(1); got != 0.5 {
		t.Errorf("R@1 = %v", got)
	}
	// Perfect ranking NDCG = 1.
	perfect := RankedList{1, 1, 0, 0}
	if got := perfect.NDCGAt(4); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect NDCG = %v", got)
	}
	// Worst ranking strictly below 1.
	worst := RankedList{0, 0, 1, 1}
	if got := worst.NDCGAt(4); got >= 1 {
		t.Errorf("worst NDCG = %v, want < 1", got)
	}
	if got := (RankedList{0, 0}).NDCGAt(2); got != 0 {
		t.Errorf("no-relevant NDCG = %v, want 0", got)
	}
}

func TestMeanRanked(t *testing.T) {
	lists := []RankedList{{1, 0}, {0, 1}}
	got := MeanRanked(lists, func(r RankedList) float64 { return r.PrecisionAt(1) })
	if got != 0.5 {
		t.Errorf("MeanRanked = %v", got)
	}
	if MeanRanked(nil, nil) != 0 {
		t.Error("empty MeanRanked should be 0")
	}
}

func TestAUCInvariantToScoreScaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		y := make([]float64, n)
		s := make([]float64, n)
		for i := range y {
			y[i] = float64(rng.Intn(2))
			s[i] = rng.Float64()
		}
		scaled := make([]float64, n)
		for i := range s {
			scaled[i] = 3*s[i] + 7 // monotone transform
		}
		return math.Abs(AUC(y, s)-AUC(y, scaled)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNDCGBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		r := make(RankedList, n)
		for i := range r {
			r[i] = float64(rng.Intn(2))
		}
		v := r.NDCGAt(n)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
