package ml

import (
	"math"
	"math/rand"
	"sort"
)

// treeNode is a binary CART node. Leaves hold a value (regression) or a
// class-probability vector (classification).
type treeNode struct {
	feature  int
	thresh   float64
	left     *treeNode
	right    *treeNode
	value    float64
	proba    []float64
	leaf     bool
	nSamples int
}

// TreeConfig controls CART growth.
type TreeConfig struct {
	MaxDepth    int // default 6
	MinLeaf     int // minimum samples per leaf, default 2
	MaxFeatures int // features sampled per split; 0 = all
	Seed        int64
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 6
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	return c
}

// treeScratch holds the buffers reused across every node of a fit —
// split pairs, feature order, class counts — so growing a tree
// allocates only its leaf probability vectors and, in slab-sized
// chunks, its persistent nodes. Ensemble fits share one scratch across
// all their trees.
type treeScratch struct {
	pairs    pairSorter
	feats    []int
	leftCnt  []float64
	rightCnt []float64
	counts   []float64

	// nodes is the current treeNode slab: newNode hands out slots until
	// the chunk is spent, then starts a fresh one. Chunks are never
	// recycled — handed-out nodes live as long as their tree — so one
	// scratch can serve every tree of an ensemble while trimming node
	// allocations by the chunk factor.
	nodes    []treeNode
	nodeUsed int
}

// nodeChunk is the slab size; a depth-6 CART tree tops out at 127
// nodes, so a chunk covers a couple of trees.
const nodeChunk = 256

func (ws *treeScratch) newNode(nSamples int) *treeNode {
	if ws.nodeUsed == len(ws.nodes) {
		ws.nodes = make([]treeNode, nodeChunk)
		ws.nodeUsed = 0
	}
	n := &ws.nodes[ws.nodeUsed]
	ws.nodeUsed++
	n.nSamples = nSamples
	return n
}

// TreeRegressor is a CART regression tree using variance reduction.
type TreeRegressor struct {
	Config TreeConfig
	root   *treeNode
}

// Fit grows the tree on (X, y).
func (t *TreeRegressor) Fit(X [][]float64, y []float64) {
	t.fit(X, y, &treeScratch{})
}

func (t *TreeRegressor) fit(X [][]float64, y []float64, ws *treeScratch) {
	cfg := t.Config.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := allIndexes(len(X))
	t.root = growTree(X, y, nil, idx, cfg, 0, rng, false, 0, ws)
}

// Predict returns the tree's output for a single example.
func (t *TreeRegressor) Predict(x []float64) float64 {
	return descend(t.root, x).value
}

// TreeClassifier is a CART classification tree using Gini impurity.
type TreeClassifier struct {
	Config   TreeConfig
	NumClass int
	root     *treeNode
}

// Fit grows the tree on (X, y) where y holds class ids 0..NumClass-1.
func (t *TreeClassifier) Fit(X [][]float64, y []float64) {
	t.fit(X, y, &treeScratch{})
}

func (t *TreeClassifier) fit(X [][]float64, y []float64, ws *treeScratch) {
	if t.NumClass <= 0 {
		t.NumClass = countClasses(y)
	}
	cfg := t.Config.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := allIndexes(len(X))
	t.root = growTree(X, y, nil, idx, cfg, 0, rng, true, t.NumClass, ws)
}

// PredictProba returns class probabilities for a single example.
func (t *TreeClassifier) PredictProba(x []float64) []float64 {
	return descend(t.root, x).proba
}

// Predict returns the arg-max class for a single example.
func (t *TreeClassifier) Predict(x []float64) float64 {
	return float64(argmax(t.PredictProba(x)))
}

func countClasses(y []float64) int {
	m := 0
	for _, v := range y {
		if int(v) > m {
			m = int(v)
		}
	}
	return m + 1
}

func allIndexes(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func descend(n *treeNode, x []float64) *treeNode {
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// asLeaf finalizes a node as a leaf: the prediction payload (mean value
// or class probabilities) is only materialized here, since descend never
// reads it off internal nodes.
func asLeaf(node *treeNode, y, sampleW []float64, idx []int, clf bool, nClass int) *treeNode {
	node.leaf = true
	if clf {
		node.proba = classProba(y, sampleW, idx, nClass)
	} else {
		node.value = weightedMean(y, sampleW, idx)
	}
	return node
}

// growTree recursively grows a CART tree over the row subset idx, which
// it is free to reorder (children recurse on in-place partitions of it).
// sampleW, when non-nil, holds per-row weights (used by boosting).
func growTree(X [][]float64, y, sampleW []float64, idx []int, cfg TreeConfig, depth int, rng *rand.Rand, clf bool, nClass int, ws *treeScratch) *treeNode {
	node := ws.newNode(len(idx))
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || pure(y, idx) {
		return asLeaf(node, y, sampleW, idx, clf, nClass)
	}

	nf := len(X[0])
	if cap(ws.feats) < nf {
		ws.feats = make([]int, nf)
	}
	feats := ws.feats[:nf]
	for i := range feats {
		feats[i] = i
	}
	if cfg.MaxFeatures > 0 && cfg.MaxFeatures < nf {
		rng.Shuffle(nf, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:cfg.MaxFeatures]
		sort.Ints(feats)
	}

	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	parentImp := impurity(y, sampleW, idx, clf, nClass, ws)
	for _, f := range feats {
		gain, thresh, ok := bestSplit(X, y, sampleW, idx, f, cfg.MinLeaf, parentImp, clf, nClass, ws)
		if ok && gain > bestGain+1e-12 {
			bestGain, bestFeat, bestThresh = gain, f, thresh
		}
	}
	if bestFeat < 0 {
		return asLeaf(node, y, sampleW, idx, clf, nClass)
	}

	// Partition idx in place: left rows first, right rows after.
	k := 0
	for j := 0; j < len(idx); j++ {
		if X[idx[j]][bestFeat] <= bestThresh {
			idx[k], idx[j] = idx[j], idx[k]
			k++
		}
	}
	if k < cfg.MinLeaf || len(idx)-k < cfg.MinLeaf {
		return asLeaf(node, y, sampleW, idx, clf, nClass)
	}
	node.feature = bestFeat
	node.thresh = bestThresh
	node.left = growTree(X, y, sampleW, idx[:k], cfg, depth+1, rng, clf, nClass, ws)
	node.right = growTree(X, y, sampleW, idx[k:], cfg, depth+1, rng, clf, nClass, ws)
	return node
}

func pure(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

func weightedMean(y, w []float64, idx []int) float64 {
	var s, tw float64
	for _, i := range idx {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		s += wi * y[i]
		tw += wi
	}
	if tw == 0 {
		return 0
	}
	return s / tw
}

func classProba(y, w []float64, idx []int, nClass int) []float64 {
	return classProbaInto(make([]float64, nClass), y, w, idx)
}

// classProbaInto tallies normalized class weights into p (len(p) is the
// class count), for callers reusing a scratch buffer.
func classProbaInto(p []float64, y, w []float64, idx []int) []float64 {
	nClass := len(p)
	var tw float64
	for _, i := range idx {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		c := int(y[i])
		if c >= 0 && c < nClass {
			p[c] += wi
			tw += wi
		}
	}
	if tw > 0 {
		for c := range p {
			p[c] /= tw
		}
	}
	return p
}

func impurity(y, w []float64, idx []int, clf bool, nClass int, ws *treeScratch) float64 {
	if clf {
		if cap(ws.counts) < nClass {
			ws.counts = make([]float64, nClass)
		}
		p := classProbaInto(zeroed(ws.counts[:nClass]), y, w, idx)
		g := 1.0
		for _, pc := range p {
			g -= pc * pc
		}
		return g
	}
	m := weightedMean(y, w, idx)
	var s, tw float64
	for _, i := range idx {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		d := y[i] - m
		s += wi * d * d
		tw += wi
	}
	if tw == 0 {
		return 0
	}
	return s / tw
}

// splitPair is one (feature value, target, weight) row of a split scan.
type splitPair struct {
	x, y, w float64
}

// pairSorter orders split pairs by feature value through a concrete
// sort.Interface, avoiding sort.Slice's per-call reflection allocations.
type pairSorter struct {
	p []splitPair
}

func (s *pairSorter) Len() int           { return len(s.p) }
func (s *pairSorter) Less(i, j int) bool { return s.p[i].x < s.p[j].x }
func (s *pairSorter) Swap(i, j int)      { s.p[i], s.p[j] = s.p[j], s.p[i] }

func zeroed(xs []float64) []float64 {
	for i := range xs {
		xs[i] = 0
	}
	return xs
}

// bestSplit scans sorted thresholds of feature f for the impurity-gain
// maximizing split, in a single pass with running statistics over the
// scratch buffers (no allocation per call).
func bestSplit(X [][]float64, y, w []float64, idx []int, f, minLeaf int, parentImp float64, clf bool, nClass int, ws *treeScratch) (gain, thresh float64, ok bool) {
	if cap(ws.pairs.p) < len(idx) {
		ws.pairs.p = make([]splitPair, len(idx))
	}
	ws.pairs.p = ws.pairs.p[:len(idx)]
	pairs := ws.pairs.p
	for j, i := range idx {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		pairs[j] = splitPair{X[i][f], y[i], wi}
	}
	sort.Sort(&ws.pairs)

	n := len(pairs)
	if clf {
		if cap(ws.leftCnt) < nClass {
			ws.leftCnt = make([]float64, nClass)
			ws.rightCnt = make([]float64, nClass)
		}
		leftCnt := zeroed(ws.leftCnt[:nClass])
		rightCnt := zeroed(ws.rightCnt[:nClass])
		var lw, rw float64
		for _, p := range pairs {
			rightCnt[clampClass(int(p.y), nClass)] += p.w
			rw += p.w
		}
		best := -1.0
		for j := 0; j < n-1; j++ {
			c := clampClass(int(pairs[j].y), nClass)
			leftCnt[c] += pairs[j].w
			rightCnt[c] -= pairs[j].w
			lw += pairs[j].w
			rw -= pairs[j].w
			if pairs[j].x == pairs[j+1].x || j+1 < minLeaf || n-j-1 < minLeaf {
				continue
			}
			g := parentImp - (lw*gini(leftCnt, lw)+rw*gini(rightCnt, rw))/(lw+rw)
			if g > best {
				best = g
				thresh = (pairs[j].x + pairs[j+1].x) / 2
			}
		}
		if best <= 0 {
			return 0, 0, false
		}
		return best, thresh, true
	}

	// Regression: incremental weighted variance via sums.
	var ls, ls2, lw float64
	var rs, rs2, rw float64
	for _, p := range pairs {
		rs += p.w * p.y
		rs2 += p.w * p.y * p.y
		rw += p.w
	}
	best := -1.0
	for j := 0; j < n-1; j++ {
		ls += pairs[j].w * pairs[j].y
		ls2 += pairs[j].w * pairs[j].y * pairs[j].y
		lw += pairs[j].w
		rs -= pairs[j].w * pairs[j].y
		rs2 -= pairs[j].w * pairs[j].y * pairs[j].y
		rw -= pairs[j].w
		if pairs[j].x == pairs[j+1].x || j+1 < minLeaf || n-j-1 < minLeaf {
			continue
		}
		lv := varFromSums(ls, ls2, lw)
		rv := varFromSums(rs, rs2, rw)
		g := parentImp - (lw*lv+rw*rv)/(lw+rw)
		if g > best {
			best = g
			thresh = (pairs[j].x + pairs[j+1].x) / 2
		}
	}
	if best <= 0 {
		return 0, 0, false
	}
	return best, thresh, true
}

// clampClass maps out-of-range labels into [0, nClass): a fixed model
// must tolerate noisy inputs (e.g. synthetic rows with labels outside the
// training classes) without panicking.
func clampClass(c, nClass int) int {
	if c < 0 {
		return 0
	}
	if c >= nClass {
		return nClass - 1
	}
	return c
}

func gini(cnt []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range cnt {
		p := c / total
		g -= p * p
	}
	return g
}

func varFromSums(s, s2, w float64) float64 {
	if w == 0 {
		return 0
	}
	m := s / w
	v := s2/w - m*m
	if v < 0 {
		return 0
	}
	return v
}

func argmax(xs []float64) int {
	best, bv := 0, math.Inf(-1)
	for i, x := range xs {
		if x > bv {
			bv, best = x, i
		}
	}
	return best
}

// FeatureImportances accumulates impurity-weighted split counts per
// feature, normalized to sum to 1 (scikit-learn style). Used by the
// SkSFM baseline.
func treeImportances(n *treeNode, nf int, acc []float64) {
	if n == nil || n.leaf {
		return
	}
	acc[n.feature] += float64(n.nSamples)
	treeImportances(n.left, nf, acc)
	treeImportances(n.right, nf, acc)
}

// Importances returns normalized split importances of the regressor.
func (t *TreeRegressor) Importances(nf int) []float64 {
	acc := make([]float64, nf)
	treeImportances(t.root, nf, acc)
	normalizeSum(acc)
	return acc
}

// Importances returns normalized split importances of the classifier.
func (t *TreeClassifier) Importances(nf int) []float64 {
	acc := make([]float64, nf)
	treeImportances(t.root, nf, acc)
	normalizeSum(acc)
	return acc
}

func normalizeSum(xs []float64) {
	var s float64
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		return
	}
	for i := range xs {
		xs[i] /= s
	}
}
