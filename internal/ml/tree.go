package ml

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// treeNode is a binary CART node. Leaves hold a value (regression) or a
// class-probability vector (classification).
type treeNode struct {
	feature  int
	thresh   float64
	left     *treeNode
	right    *treeNode
	value    float64
	proba    []float64
	leaf     bool
	nSamples int
}

// TreeConfig controls CART growth.
type TreeConfig struct {
	MaxDepth    int // default 6
	MinLeaf     int // minimum samples per leaf, default 2
	MaxFeatures int // features sampled per split; 0 = all
	Seed        int64
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 6
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	return c
}

// treeScratch holds the buffers reused across every node of a fit —
// node position slices, per-feature working orders, partition and
// class-count scratch — so growing a tree allocates only its leaf
// probability vectors and, in slab-sized chunks, its persistent nodes.
// Ensemble fits share one scratch across all their trees.
type treeScratch struct {
	feats    []int
	leftCnt  []float64
	rightCnt []float64
	counts   []float64

	// Per-fit growth state: idx is the node row-position slice (the
	// successor of the old allIndexes allocation), work holds the
	// per-feature sorted position orders growFrame partitions in place,
	// left marks the split side per position, and part is the stable
	// partition scratch. All are slab-reused across the trees of a fit.
	idx     []int32
	work    [][]int32
	workBuf []int32
	left    []bool
	part    []int32
	// cnt backs counting sorts over presorted value ranks.
	cnt []int32

	// frameFree recycles fitting frames (column/order slabs) across the
	// fits sharing this scratch — see getFrame/putFrame in colfit.go.
	frameFree []*frame

	// nodes is the current treeNode slab: newNode hands out slots until
	// the chunk is spent, then starts a fresh one. Chunks are never
	// recycled — handed-out nodes live as long as their tree — so one
	// scratch can serve every tree of an ensemble while trimming node
	// allocations by the chunk factor.
	nodes    []treeNode
	nodeUsed int
}

// nodeChunk is the slab size; a depth-6 CART tree tops out at 127
// nodes, so a chunk covers a couple of trees.
const nodeChunk = 256

// scratchPool recycles treeScratch across fits. A discovery run fits
// thousands of models over one workload, all with the same row and
// feature counts, so the pooled buffers converge to the workload's
// sizes and steady-state fits stop allocating growth scratch. Safe
// because handed-out nodes are never revisited by newNode: a recycled
// scratch simply keeps carving its current slab where the previous fit
// stopped.
var scratchPool = sync.Pool{New: func() any { return new(treeScratch) }}

func getScratch() *treeScratch   { return scratchPool.Get().(*treeScratch) }
func putScratch(ws *treeScratch) { scratchPool.Put(ws) }

func (ws *treeScratch) newNode(nSamples int) *treeNode {
	if ws.nodeUsed == len(ws.nodes) {
		ws.nodes = make([]treeNode, nodeChunk)
		ws.nodeUsed = 0
	}
	n := &ws.nodes[ws.nodeUsed]
	ws.nodeUsed++
	n.nSamples = nSamples
	return n
}

// ensureGrow sizes the growth buffers for a fit over nf features and n
// positions and rebuilds the per-feature working order slices.
func (ws *treeScratch) ensureGrow(nf, n int) {
	if cap(ws.idx) < n {
		ws.idx = make([]int32, n)
		ws.left = make([]bool, n)
		ws.part = make([]int32, n)
	}
	if cap(ws.workBuf) < nf*n {
		ws.workBuf = make([]int32, nf*n)
	}
	ws.work = ws.work[:0]
	for f := 0; f < nf; f++ {
		ws.work = append(ws.work, ws.workBuf[f*n:(f+1)*n])
	}
}

// TreeRegressor is a CART regression tree using variance reduction.
type TreeRegressor struct {
	Config TreeConfig
	root   *treeNode
}

// Fit grows the tree on (X, y).
func (t *TreeRegressor) Fit(X [][]float64, y []float64) {
	ws := getScratch()
	fr := frameFromRows(X, y, ws)
	t.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

// FitData grows the tree on a columnar data view.
func (t *TreeRegressor) FitData(d Data) {
	ws := getScratch()
	fr := d.buildFrame(ws)
	t.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

// fitFrame grows the tree over the frame's presorted feature orders.
func (t *TreeRegressor) fitFrame(fr *frame, ws *treeScratch) {
	cfg := t.Config.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t.root = growFit(fr, cfg, rng, false, 0, ws)
}

// Predict returns the tree's output for a single example.
func (t *TreeRegressor) Predict(x []float64) float64 {
	return descend(t.root, x).value
}

// TreeClassifier is a CART classification tree using Gini impurity.
type TreeClassifier struct {
	Config   TreeConfig
	NumClass int
	root     *treeNode
}

// Fit grows the tree on (X, y) where y holds class ids 0..NumClass-1.
func (t *TreeClassifier) Fit(X [][]float64, y []float64) {
	ws := getScratch()
	fr := frameFromRows(X, y, ws)
	t.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

// FitData grows the tree on a columnar data view.
func (t *TreeClassifier) FitData(d Data) {
	ws := getScratch()
	fr := d.buildFrame(ws)
	t.fitFrame(fr, ws)
	ws.putFrame(fr)
	putScratch(ws)
}

func (t *TreeClassifier) fitFrame(fr *frame, ws *treeScratch) {
	if t.NumClass <= 0 {
		t.NumClass = countClasses(fr.y)
	}
	cfg := t.Config.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t.root = growFit(fr, cfg, rng, true, t.NumClass, ws)
}

// PredictProba returns class probabilities for a single example.
func (t *TreeClassifier) PredictProba(x []float64) []float64 {
	return descend(t.root, x).proba
}

// Predict returns the arg-max class for a single example.
func (t *TreeClassifier) Predict(x []float64) float64 {
	return float64(argmax(t.PredictProba(x)))
}

func countClasses(y []float64) int {
	m := 0
	for _, v := range y {
		if int(v) > m {
			m = int(v)
		}
	}
	return m + 1
}

func descend(n *treeNode, x []float64) *treeNode {
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// descendCols walks the tree for example i of a column-major matrix,
// the boosting-loop twin of descend that needs no row vector.
func descendCols(n *treeNode, cols [][]float64, i int) *treeNode {
	for !n.leaf {
		if cols[n.feature][i] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// predictCols returns the regression output for example i of a
// column-major matrix.
func predictCols(root *treeNode, cols [][]float64, i int) float64 {
	return descendCols(root, cols, i).value
}

// asLeaf finalizes a node as a leaf: the prediction payload (mean value
// or class probabilities) is only materialized here, since descend never
// reads it off internal nodes.
func asLeaf(node *treeNode, y []float64, idx []int32, clf bool, nClass int) *treeNode {
	node.leaf = true
	if clf {
		node.proba = classProba(y, idx, nClass)
	} else {
		node.value = meanAt(y, idx)
	}
	return node
}

// growFit prepares the per-fit growth state (position slice, working
// copies of the frame's presorted feature orders) and grows the tree.
func growFit(fr *frame, cfg TreeConfig, rng *rand.Rand, clf bool, nClass int, ws *treeScratch) *treeNode {
	n := fr.n
	ws.ensureGrow(fr.nf, n)
	idx := ws.idx[:n]
	for i := range idx {
		idx[i] = int32(i)
	}
	for f := 0; f < fr.nf; f++ {
		copy(ws.work[f], fr.base[f])
	}
	return growFrame(fr, ws.work, idx, 0, n, 0, cfg, rng, clf, nClass, ws)
}

// growFrame recursively grows a CART tree over the position segment
// [lo, hi) of idx and of every per-feature sorted order in orders: idx
// holds the node's rows in insertion order, orders[f][lo:hi] holds the
// same rows sorted by feature f. Splits stably partition every array
// into left|right segments, so no node ever sorts — the frame's one-time
// presort (or the space-level presorted orderings it was filtered from)
// carries the whole tree.
func growFrame(fr *frame, orders [][]int32, idx []int32, lo, hi, depth int, cfg TreeConfig, rng *rand.Rand, clf bool, nClass int, ws *treeScratch) *treeNode {
	node := ws.newNode(hi - lo)
	seg := idx[lo:hi]
	if depth >= cfg.MaxDepth || hi-lo < 2*cfg.MinLeaf || pure(fr.y, seg) {
		return asLeaf(node, fr.y, seg, clf, nClass)
	}

	nf := fr.nf
	if cap(ws.feats) < nf {
		ws.feats = make([]int, nf)
	}
	feats := ws.feats[:nf]
	for i := range feats {
		feats[i] = i
	}
	if cfg.MaxFeatures > 0 && cfg.MaxFeatures < nf {
		rng.Shuffle(nf, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:cfg.MaxFeatures]
		sort.Ints(feats)
	}

	bestGain := 0.0
	bestFeat, bestThresh := -1, 0.0
	parentImp := impurity(fr.y, seg, clf, nClass, ws)
	for _, f := range feats {
		gain, thresh, ok := bestSplitOrdered(fr, orders[f][lo:hi], f, cfg.MinLeaf, parentImp, clf, nClass, ws)
		if ok && gain > bestGain+1e-12 {
			bestGain, bestFeat, bestThresh = gain, f, thresh
		}
	}
	if bestFeat < 0 {
		return asLeaf(node, fr.y, seg, clf, nClass)
	}

	// Mark each position's side and count the left partition.
	col := fr.cols[bestFeat]
	k := 0
	for _, p := range seg {
		goesLeft := col[p] <= bestThresh
		ws.left[p] = goesLeft
		if goesLeft {
			k++
		}
	}
	if k < cfg.MinLeaf || (hi-lo)-k < cfg.MinLeaf {
		return asLeaf(node, fr.y, seg, clf, nClass)
	}
	node.feature = bestFeat
	node.thresh = bestThresh
	// Stable-partition the insertion order and every feature order:
	// left rows first, right rows after, relative order preserved — the
	// children's segments stay sorted without re-sorting.
	stablePartition(idx, lo, hi, k, ws.left, ws.part)
	for f := 0; f < nf; f++ {
		stablePartition(orders[f], lo, hi, k, ws.left, ws.part)
	}
	node.left = growFrame(fr, orders, idx, lo, lo+k, depth+1, cfg, rng, clf, nClass, ws)
	node.right = growFrame(fr, orders, idx, lo+k, hi, depth+1, cfg, rng, clf, nClass, ws)
	return node
}

// stablePartition reorders a[lo:hi] so positions marked left come
// first (k of them), both sides keeping their relative order.
func stablePartition(a []int32, lo, hi, k int, left []bool, tmp []int32) {
	n := hi - lo
	li, ri := 0, k
	for _, p := range a[lo:hi] {
		if left[p] {
			tmp[li] = p
			li++
		} else {
			tmp[ri] = p
			ri++
		}
	}
	copy(a[lo:hi], tmp[:n])
}

func pure(y []float64, idx []int32) bool {
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			return false
		}
	}
	return true
}

// meanAt averages y over the positions in idx.
func meanAt(y []float64, idx []int32) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func classProba(y []float64, idx []int32, nClass int) []float64 {
	return classProbaInto(make([]float64, nClass), y, idx)
}

// classProbaInto tallies normalized class counts into p (len(p) is the
// class count), for callers reusing a scratch buffer.
func classProbaInto(p []float64, y []float64, idx []int32) []float64 {
	nClass := len(p)
	var tw float64
	for _, i := range idx {
		c := int(y[i])
		if c >= 0 && c < nClass {
			p[c]++
			tw++
		}
	}
	if tw > 0 {
		for c := range p {
			p[c] /= tw
		}
	}
	return p
}

func impurity(y []float64, idx []int32, clf bool, nClass int, ws *treeScratch) float64 {
	if clf {
		if cap(ws.counts) < nClass {
			ws.counts = make([]float64, nClass)
		}
		p := classProbaInto(zeroed(ws.counts[:nClass]), y, idx)
		g := 1.0
		for _, pc := range p {
			g -= pc * pc
		}
		return g
	}
	m := meanAt(y, idx)
	var s float64
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	if len(idx) == 0 {
		return 0
	}
	return s / float64(len(idx))
}

func zeroed(xs []float64) []float64 {
	for i := range xs {
		xs[i] = 0
	}
	return xs
}

// bestSplitOrdered scans the node's presorted order of feature f for
// the impurity-gain maximizing threshold, in a single pass with running
// statistics — no sort, no pair materialization.
func bestSplitOrdered(fr *frame, order []int32, f, minLeaf int, parentImp float64, clf bool, nClass int, ws *treeScratch) (gain, thresh float64, ok bool) {
	col := fr.cols[f]
	y := fr.y
	n := len(order)
	if clf {
		if cap(ws.leftCnt) < nClass {
			ws.leftCnt = make([]float64, nClass)
			ws.rightCnt = make([]float64, nClass)
		}
		leftCnt := zeroed(ws.leftCnt[:nClass])
		rightCnt := zeroed(ws.rightCnt[:nClass])
		var lw, rw float64
		for _, p := range order {
			rightCnt[clampClass(int(y[p]), nClass)]++
			rw++
		}
		best := -1.0
		for j := 0; j < n-1; j++ {
			p := order[j]
			c := clampClass(int(y[p]), nClass)
			leftCnt[c]++
			rightCnt[c]--
			lw++
			rw--
			if col[p] == col[order[j+1]] || j+1 < minLeaf || n-j-1 < minLeaf {
				continue
			}
			g := parentImp - (lw*gini(leftCnt, lw)+rw*gini(rightCnt, rw))/(lw+rw)
			if g > best {
				best = g
				thresh = (col[p] + col[order[j+1]]) / 2
			}
		}
		if best <= 0 {
			return 0, 0, false
		}
		return best, thresh, true
	}

	// Regression: incremental variance via running sums.
	var ls, ls2, lw float64
	var rs, rs2, rw float64
	for _, p := range order {
		rs += y[p]
		rs2 += y[p] * y[p]
		rw++
	}
	best := -1.0
	for j := 0; j < n-1; j++ {
		p := order[j]
		ls += y[p]
		ls2 += y[p] * y[p]
		lw++
		rs -= y[p]
		rs2 -= y[p] * y[p]
		rw--
		if col[p] == col[order[j+1]] || j+1 < minLeaf || n-j-1 < minLeaf {
			continue
		}
		lv := varFromSums(ls, ls2, lw)
		rv := varFromSums(rs, rs2, rw)
		g := parentImp - (lw*lv+rw*rv)/(lw+rw)
		if g > best {
			best = g
			thresh = (col[p] + col[order[j+1]]) / 2
		}
	}
	if best <= 0 {
		return 0, 0, false
	}
	return best, thresh, true
}

// clampClass maps out-of-range labels into [0, nClass): a fixed model
// must tolerate noisy inputs (e.g. synthetic rows with labels outside the
// training classes) without panicking.
func clampClass(c, nClass int) int {
	if c < 0 {
		return 0
	}
	if c >= nClass {
		return nClass - 1
	}
	return c
}

func gini(cnt []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range cnt {
		p := c / total
		g -= p * p
	}
	return g
}

func varFromSums(s, s2, w float64) float64 {
	if w == 0 {
		return 0
	}
	m := s / w
	v := s2/w - m*m
	if v < 0 {
		return 0
	}
	return v
}

func argmax(xs []float64) int {
	best, bv := 0, math.Inf(-1)
	for i, x := range xs {
		if x > bv {
			bv, best = x, i
		}
	}
	return best
}

// FeatureImportances accumulates impurity-weighted split counts per
// feature, normalized to sum to 1 (scikit-learn style). Used by the
// SkSFM baseline.
func treeImportances(n *treeNode, nf int, acc []float64) {
	if n == nil || n.leaf {
		return
	}
	acc[n.feature] += float64(n.nSamples)
	treeImportances(n.left, nf, acc)
	treeImportances(n.right, nf, acc)
}

// Importances returns normalized split importances of the regressor.
func (t *TreeRegressor) Importances(nf int) []float64 {
	acc := make([]float64, nf)
	treeImportances(t.root, nf, acc)
	normalizeSum(acc)
	return acc
}

// Importances returns normalized split importances of the classifier.
func (t *TreeClassifier) Importances(nf int) []float64 {
	acc := make([]float64, nf)
	treeImportances(t.root, nf, acc)
	normalizeSum(acc)
	return acc
}

func normalizeSum(xs []float64) {
	var s float64
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		return
	}
	for i := range xs {
		xs[i] /= s
	}
}
