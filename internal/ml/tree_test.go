package ml

import (
	"math"
	"math/rand"
	"testing"
)

// xorData builds a dataset where y = x0 XOR x1 (thresholded at 0.5):
// unlearnable by a linear model, learnable by a depth-2+ tree.
func xorData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return X, y
}

func linearData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		y[i] = 3*a - 2*b + 0.01*rng.NormFloat64()
	}
	return X, y
}

func TestTreeRegressorFitsLinear(t *testing.T) {
	X, y := linearData(300, 1)
	tr := &TreeRegressor{Config: TreeConfig{MaxDepth: 8}}
	tr.Fit(X, y)
	pred := make([]float64, len(y))
	for i, x := range X {
		pred[i] = tr.Predict(x)
	}
	if r2 := R2(y, pred); r2 < 0.8 {
		t.Errorf("train R2 = %v, want >= 0.8", r2)
	}
}

func TestTreeClassifierLearnsXOR(t *testing.T) {
	X, y := xorData(400, 2)
	tc := &TreeClassifier{Config: TreeConfig{MaxDepth: 4}}
	tc.Fit(X, y)
	pred := make([]float64, len(y))
	for i, x := range X {
		pred[i] = tc.Predict(x)
	}
	if acc := Accuracy(y, pred); acc < 0.9 {
		t.Errorf("XOR accuracy = %v, want >= 0.9", acc)
	}
}

func TestTreeClassifierProbaSumsToOne(t *testing.T) {
	X, y := xorData(100, 3)
	tc := &TreeClassifier{Config: TreeConfig{MaxDepth: 3}}
	tc.Fit(X, y)
	for _, x := range X[:10] {
		p := tc.PredictProba(x)
		var s float64
		for _, v := range p {
			if v < 0 {
				t.Fatal("negative probability")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("proba sums to %v", s)
		}
	}
}

func TestTreePureLeafStopsEarly(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	tr := &TreeRegressor{Config: TreeConfig{MaxDepth: 5}}
	tr.Fit(X, y)
	if !tr.root.leaf {
		t.Error("constant target should produce a single leaf")
	}
	if tr.Predict([]float64{10}) != 5 {
		t.Error("constant prediction expected")
	}
}

func TestTreeMinLeafRespected(t *testing.T) {
	X, y := linearData(50, 4)
	tr := &TreeRegressor{Config: TreeConfig{MaxDepth: 20, MinLeaf: 10}}
	tr.Fit(X, y)
	var check func(n *treeNode) bool
	check = func(n *treeNode) bool {
		if n == nil {
			return true
		}
		if n.leaf {
			return n.nSamples >= 10
		}
		return check(n.left) && check(n.right)
	}
	if !check(tr.root) {
		t.Error("leaf smaller than MinLeaf found")
	}
}

func TestTreeDeterministic(t *testing.T) {
	X, y := linearData(200, 5)
	t1 := &TreeRegressor{Config: TreeConfig{MaxDepth: 6, Seed: 9}}
	t2 := &TreeRegressor{Config: TreeConfig{MaxDepth: 6, Seed: 9}}
	t1.Fit(X, y)
	t2.Fit(X, y)
	for _, x := range X[:20] {
		if t1.Predict(x) != t2.Predict(x) {
			t.Fatal("same seed must give identical trees")
		}
	}
}

func TestTreeImportancesNormalized(t *testing.T) {
	X, y := linearData(200, 6)
	tr := &TreeRegressor{Config: TreeConfig{MaxDepth: 6}}
	tr.Fit(X, y)
	imp := tr.Importances(2)
	var s float64
	for _, v := range imp {
		if v < 0 {
			t.Fatal("negative importance")
		}
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("importances sum to %v, want 1", s)
	}
}
