// Package mosp implements the multi-objective shortest path problem,
// the combinatorial core of the MODis hardness and approximation results
// (Theorem 1, Lemmas 2-3): an exact Pareto label-correcting algorithm
// and an ε-grid FPTAS variant in the style of Tsaggouris & Zaroliagis.
// MODis' ApxMODis is an optimized run of the latter over the running
// graph; the tests of this package validate the reduction both ways.
package mosp

import (
	"repro/internal/skyline"
)

// Edge is a directed edge with a d-dimensional cost vector.
type Edge struct {
	From, To int
	Cost     skyline.Vector
}

// Graph is an edge-weighted directed graph for MOSP instances.
type Graph struct {
	NumNodes int
	Adj      [][]Edge
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{NumNodes: n, Adj: make([][]Edge, n)}
}

// AddEdge inserts a directed edge.
func (g *Graph) AddEdge(from, to int, cost skyline.Vector) {
	g.Adj[from] = append(g.Adj[from], Edge{From: from, To: to, Cost: cost.Clone()})
}

// Label is one Pareto-optimal path to a node: its cumulative cost and
// the predecessor chain for path recovery.
type Label struct {
	Node int
	Cost skyline.Vector
	Prev *Label
	Via  *Edge
}

// Path reconstructs the edge sequence of the label.
func (l *Label) Path() []Edge {
	var rev []Edge
	for cur := l; cur.Prev != nil; cur = cur.Prev {
		rev = append(rev, *cur.Via)
	}
	out := make([]Edge, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Exact computes the full Pareto label sets from the source node via
// label-correcting search with dominance filtering. It returns, per
// node, the non-dominated labels.
func Exact(g *Graph, source int) [][]*Label {
	labels := make([][]*Label, g.NumNodes)
	start := &Label{Node: source, Cost: make(skyline.Vector, costDim(g))}
	labels[source] = []*Label{start}
	queue := []*Label{start}
	for len(queue) > 0 {
		l := queue[0]
		queue = queue[1:]
		if !contains(labels[l.Node], l) {
			continue // superseded since enqueue
		}
		for i := range g.Adj[l.Node] {
			e := &g.Adj[l.Node][i]
			nc := addVec(l.Cost, e.Cost)
			nl := &Label{Node: e.To, Cost: nc, Prev: l, Via: e}
			if merged, added := mergeLabel(labels[e.To], nl); added {
				labels[e.To] = merged
				queue = append(queue, nl)
			}
		}
	}
	return labels
}

// FPTAS computes ε-Pareto label sets: labels are bucketed by the ε-grid
// position of their cost (all but the last dimension) and each cell
// keeps the label minimizing the last (decisive) dimension — the same
// replacement strategy ApxMODis inherits.
func FPTAS(g *Graph, source int, eps float64, bounds []skyline.Bounds) [][]*Label {
	if len(bounds) == 0 {
		bounds = defaultBounds(costDim(g))
	}
	cells := make([]map[string]*Label, g.NumNodes)
	for i := range cells {
		cells[i] = map[string]*Label{}
	}
	start := &Label{Node: source, Cost: make(skyline.Vector, costDim(g))}
	cells[source][gridKey(start.Cost, bounds, eps)] = start
	queue := []*Label{start}
	d := costDim(g)
	for len(queue) > 0 {
		l := queue[0]
		queue = queue[1:]
		for i := range g.Adj[l.Node] {
			e := &g.Adj[l.Node][i]
			nc := addVec(l.Cost, e.Cost)
			nl := &Label{Node: e.To, Cost: nc, Prev: l, Via: e}
			key := gridKey(nc, bounds, eps)
			cur, ok := cells[e.To][key]
			if !ok || nc[d-1] < cur.Cost[d-1] {
				cells[e.To][key] = nl
				queue = append(queue, nl)
			}
		}
	}
	out := make([][]*Label, g.NumNodes)
	for i, m := range cells {
		for _, l := range m {
			out[i] = append(out[i], l)
		}
	}
	return out
}

func costDim(g *Graph) int {
	for _, adj := range g.Adj {
		for _, e := range adj {
			return len(e.Cost)
		}
	}
	return 1
}

func defaultBounds(d int) []skyline.Bounds {
	out := make([]skyline.Bounds, d)
	for i := range out {
		out[i] = skyline.Bounds{Lower: 1e-3, Upper: 1e9}
	}
	return out
}

func gridKey(v skyline.Vector, bounds []skyline.Bounds, eps float64) string {
	// Shift costs by the lower bound so zero-cost prefixes are valid.
	shifted := make(skyline.Vector, len(v))
	for i, x := range v {
		lo := bounds[i].Lower
		if x < lo {
			x = lo
		}
		shifted[i] = x
	}
	return skyline.PosKey(skyline.GridPos(shifted, bounds, eps))
}

func addVec(a, b skyline.Vector) skyline.Vector {
	out := a.Clone()
	for i := range out {
		if i < len(b) {
			out[i] += b[i]
		}
	}
	return out
}

// mergeLabel inserts nl into the node's Pareto set, dropping dominated
// labels; added=false if nl is itself dominated (or duplicated).
func mergeLabel(set []*Label, nl *Label) ([]*Label, bool) {
	for _, l := range set {
		if l.Cost.Dominates(nl.Cost) || equalVec(l.Cost, nl.Cost) {
			return set, false
		}
	}
	out := set[:0]
	for _, l := range set {
		if !nl.Cost.Dominates(l.Cost) {
			out = append(out, l)
		}
	}
	return append(out, nl), true
}

func contains(set []*Label, l *Label) bool {
	for _, x := range set {
		if x == l {
			return true
		}
	}
	return false
}

func equalVec(a, b skyline.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
