package mosp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/skyline"
)

// diamondGraph: two incomparable paths 0→1→3 (cost {1,3}) and 0→2→3
// (cost {3,1}), plus a dominated path 0→3 (cost {5,5}).
func diamondGraph() *Graph {
	g := NewGraph(4)
	g.AddEdge(0, 1, skyline.Vector{0.5, 1.5})
	g.AddEdge(1, 3, skyline.Vector{0.5, 1.5})
	g.AddEdge(0, 2, skyline.Vector{1.5, 0.5})
	g.AddEdge(2, 3, skyline.Vector{1.5, 0.5})
	g.AddEdge(0, 3, skyline.Vector{5, 5})
	return g
}

func TestExactParetoPaths(t *testing.T) {
	labels := Exact(diamondGraph(), 0)
	at3 := labels[3]
	if len(at3) != 2 {
		t.Fatalf("Pareto labels at t = %d, want 2", len(at3))
	}
	// The dominated direct edge must be filtered.
	for _, l := range at3 {
		if l.Cost[0] == 5 {
			t.Error("dominated path survived")
		}
	}
}

func TestLabelPathReconstruction(t *testing.T) {
	labels := Exact(diamondGraph(), 0)
	for _, l := range labels[3] {
		p := l.Path()
		if len(p) != 2 {
			t.Fatalf("path length = %d, want 2", len(p))
		}
		if p[0].From != 0 || p[1].To != 3 {
			t.Error("path endpoints wrong")
		}
	}
}

func TestFPTASCoversExact(t *testing.T) {
	g := diamondGraph()
	exact := Exact(g, 0)
	approx := FPTAS(g, 0, 0.2, nil)
	// Every exact Pareto cost must be eps-dominated by some approx label.
	for node := range exact {
		for _, el := range exact[node] {
			covered := false
			for _, al := range approx[node] {
				if al.Cost.EpsDominates(el.Cost, 0.2) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("exact label %v at node %d not eps-covered", el.Cost, node)
			}
		}
	}
}

func TestFPTASNeverLargerThanExactOnSmall(t *testing.T) {
	g := diamondGraph()
	exact := Exact(g, 0)
	approx := FPTAS(g, 0, 0.5, nil)
	if len(approx[3]) > len(exact[3])+1 {
		t.Errorf("FPTAS label count %d unexpectedly large vs exact %d", len(approx[3]), len(exact[3]))
	}
}

func randomDAG(seed int64, nodes int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(nodes)
	for u := 0; u < nodes; u++ {
		for v := u + 1; v < nodes; v++ {
			if rng.Float64() < 0.4 {
				g.AddEdge(u, v, skyline.Vector{
					0.1 + rng.Float64(),
					0.1 + rng.Float64(),
				})
			}
		}
	}
	return g
}

// Property: exact label sets are mutually non-dominated.
func TestExactLabelsNonDominated(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 8)
		labels := Exact(g, 0)
		for _, ls := range labels {
			for i := range ls {
				for j := range ls {
					if i != j && ls[i].Cost.Dominates(ls[j].Cost) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property (Lemma 2 direction): FPTAS labels eps-cover exact labels on
// random DAGs.
func TestFPTASEpsCoverage(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 7)
		exact := Exact(g, 0)
		approx := FPTAS(g, 0, 0.3, nil)
		for node := range exact {
			for _, el := range exact[node] {
				covered := false
				for _, al := range approx[node] {
					if al.Cost.EpsDominates(el.Cost, 0.3) {
						covered = true
						break
					}
				}
				if !covered {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMergeLabelDropsDominated(t *testing.T) {
	a := &Label{Cost: skyline.Vector{1, 1}}
	b := &Label{Cost: skyline.Vector{2, 2}}
	set, added := mergeLabel([]*Label{b}, a)
	if !added || len(set) != 1 || set[0] != a {
		t.Error("dominating label should replace dominated one")
	}
	_, added = mergeLabel(set, b)
	if added {
		t.Error("dominated label must not be added")
	}
	_, added = mergeLabel(set, &Label{Cost: skyline.Vector{1, 1}})
	if added {
		t.Error("duplicate cost must not be added")
	}
}
