// Package skyline implements the Pareto-optimality machinery of MODis:
// dominance and ε-dominance over performance vectors (Section 4), the
// ε-grid position function of Equation (1), and skyline computation via
// Kung's algorithm and sort-filter-scan.
package skyline

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Vector is a performance vector t.P: one value per measure, all
// normalized to (0,1] and to be minimized.
type Vector []float64

// Clone deep-copies the vector.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// String renders the vector compactly.
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.4f", x)
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Dominates reports a ≺-dominance: v is no worse than o on every measure
// and strictly better on at least one (all measures minimized).
func (v Vector) Dominates(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	strict := false
	for i := range v {
		if v[i] > o[i] {
			return false
		}
		if v[i] < o[i] {
			strict = true
		}
	}
	return strict
}

// EpsDominates reports ε-dominance (Section 5.1): v.p ≤ (1+ε)·o.p for
// every p, and v.p* ≤ o.p* for at least one decisive measure p*.
func (v Vector) EpsDominates(o Vector, eps float64) bool {
	if len(v) != len(o) {
		return false
	}
	decisive := false
	for i := range v {
		if v[i] > (1+eps)*o[i] {
			return false
		}
		if v[i] <= o[i] {
			decisive = true
		}
	}
	return decisive
}

// Bounds is a user-specified measure range [Lower, Upper] ⊆ (0,1].
type Bounds struct {
	Lower float64
	Upper float64
}

// DefaultBounds is the full admissible range with the paper's strictly
// positive lower bound.
func DefaultBounds() Bounds { return Bounds{Lower: 1e-3, Upper: 1} }

// Within reports whether x satisfies the bounds.
func (b Bounds) Within(x float64) bool { return x >= b.Lower && x <= b.Upper }

// GridPos computes the discretized position of Equation (1): for the
// first |P|-1 measures, pos_i = floor(log_{1+eps}(v_i / lower_i)). The
// last measure is the decisive measure and is excluded, per the paper.
func GridPos(v Vector, bounds []Bounds, eps float64) []int {
	return GridPosInto(nil, v, bounds, eps)
}

// GridPosInto is GridPos writing into dst (grown as needed), so hot
// callers can reuse one scratch slice across insertions.
func GridPosInto(dst []int, v Vector, bounds []Bounds, eps float64) []int {
	n := len(v) - 1
	if n < 0 {
		n = 0
	}
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	base := math.Log1p(eps)
	for i := 0; i < n; i++ {
		lo := 1e-3
		if i < len(bounds) && bounds[i].Lower > 0 {
			lo = bounds[i].Lower
		}
		x := v[i]
		if x < lo {
			x = lo
		}
		dst[i] = int(math.Floor(math.Log(x/lo) / base))
	}
	return dst
}

// PosKey renders a grid position as a human-readable key, for debugging
// and figures; grid maps should key on PackedPosKey instead.
func PosKey(pos []int) string {
	parts := make([]string, len(pos))
	for i, p := range pos {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return strings.Join(parts, ",")
}

// packedLaneBits is the exact-encoding lane width per dimensionality:
// the bit 63 tag is reserved for the hashed fallback, so up to four
// coordinates share the low 63 bits.
var packedLaneBits = [5]uint{0, 63, 31, 21, 15}

// PackedPosKey encodes a grid position as an allocation-free uint64 map
// key. Up to four coordinates pack exactly into fixed-width lanes
// (collision free; ε-grid positions are non-negative and stay far
// inside the lane range for any practical ε — e.g. three dimensions
// give 21-bit lanes, covering ε down to ~3e-6 over the default (1e-3,
// 1] value range). Higher dimensionalities or out-of-lane coordinates
// fall back to an FNV-1a mix tagged with bit 63, so hashed keys can
// never collide with exactly-packed ones.
func PackedPosKey(pos []int) uint64 {
	if n := len(pos); n >= 1 && n <= 4 {
		lane := packedLaneBits[n]
		max := uint64(1)<<lane - 1
		var k uint64
		exact := true
		for _, p := range pos {
			if p < 0 || uint64(p) > max {
				exact = false
				break
			}
			k = k<<lane | uint64(p)
		}
		if exact {
			return k
		}
	}
	h := uint64(14695981039346656037)
	for _, p := range pos {
		h ^= uint64(p)
		h *= 1099511628211
	}
	return h | 1<<63
}

// Skyline computes the exact Pareto front of the vectors by
// sort-filter-scan: sort lexicographically, keep non-dominated. It
// returns the indexes of skyline members in input order.
func Skyline(vs []Vector) []int {
	idx := make([]int, len(vs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return lexLess(vs[idx[a]], vs[idx[b]]) })
	keep := make([]int, 0, len(vs))
	for _, i := range idx {
		dominated := false
		for _, k := range keep {
			if vs[k].Dominates(vs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, i)
		}
	}
	sort.Ints(keep)
	return keep
}

// KungSkyline computes the Pareto front with Kung's divide-and-conquer
// algorithm [Kung, Luccio & Preparata 1975], as cited by the paper's
// exact algorithm (Theorem 1). It returns indexes in input order.
func KungSkyline(vs []Vector) []int {
	idx := make([]int, len(vs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return lexLess(vs[idx[a]], vs[idx[b]]) })
	res := idx[:kungRec(vs, idx)]
	sort.Ints(res)
	return res
}

// kungRec compacts the skyline members of idx into its prefix and
// returns their count, merging in place so the whole recursion performs
// no allocations beyond KungSkyline's single index slice.
func kungRec(vs []Vector, idx []int) int {
	if len(idx) <= 1 {
		return len(idx)
	}
	mid := len(idx) / 2
	out := kungRec(vs, idx[:mid])
	nBot := kungRec(vs, idx[mid:])
	top := idx[:out]
	// Keep members of bot not dominated by any member of top. Writes
	// trail reads: out <= mid+kept always, so the compaction is safe.
	for _, b := range idx[mid : mid+nBot] {
		dominated := false
		for _, t := range top {
			if vs[t].Dominates(vs[b]) {
				dominated = true
				break
			}
		}
		if !dominated {
			idx[out] = b
			out++
		}
	}
	return out
}

func lexLess(a, b Vector) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// IsEpsSkylineOf verifies the ε-skyline property (Section 5.1): every
// vector in all is ε-dominated by some member of set.
func IsEpsSkylineOf(set, all []Vector, eps float64) bool {
	for _, v := range all {
		covered := false
		for _, s := range set {
			if s.EpsDominates(v, eps) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}
