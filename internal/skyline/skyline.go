// Package skyline implements the Pareto-optimality machinery of MODis:
// dominance and ε-dominance over performance vectors (Section 4), the
// ε-grid position function of Equation (1), and skyline computation via
// Kung's algorithm and sort-filter-scan.
package skyline

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Vector is a performance vector t.P: one value per measure, all
// normalized to (0,1] and to be minimized.
type Vector []float64

// Clone deep-copies the vector.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// String renders the vector compactly.
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.4f", x)
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Dominates reports a ≺-dominance: v is no worse than o on every measure
// and strictly better on at least one (all measures minimized).
func (v Vector) Dominates(o Vector) bool {
	if len(v) != len(o) {
		return false
	}
	strict := false
	for i := range v {
		if v[i] > o[i] {
			return false
		}
		if v[i] < o[i] {
			strict = true
		}
	}
	return strict
}

// EpsDominates reports ε-dominance (Section 5.1): v.p ≤ (1+ε)·o.p for
// every p, and v.p* ≤ o.p* for at least one decisive measure p*.
func (v Vector) EpsDominates(o Vector, eps float64) bool {
	if len(v) != len(o) {
		return false
	}
	decisive := false
	for i := range v {
		if v[i] > (1+eps)*o[i] {
			return false
		}
		if v[i] <= o[i] {
			decisive = true
		}
	}
	return decisive
}

// Bounds is a user-specified measure range [Lower, Upper] ⊆ (0,1].
type Bounds struct {
	Lower float64
	Upper float64
}

// DefaultBounds is the full admissible range with the paper's strictly
// positive lower bound.
func DefaultBounds() Bounds { return Bounds{Lower: 1e-3, Upper: 1} }

// Within reports whether x satisfies the bounds.
func (b Bounds) Within(x float64) bool { return x >= b.Lower && x <= b.Upper }

// GridPos computes the discretized position of Equation (1): for the
// first |P|-1 measures, pos_i = floor(log_{1+eps}(v_i / lower_i)). The
// last measure is the decisive measure and is excluded, per the paper.
func GridPos(v Vector, bounds []Bounds, eps float64) []int {
	n := len(v) - 1
	if n < 0 {
		n = 0
	}
	pos := make([]int, n)
	base := math.Log1p(eps)
	for i := 0; i < n; i++ {
		lo := 1e-3
		if i < len(bounds) && bounds[i].Lower > 0 {
			lo = bounds[i].Lower
		}
		x := v[i]
		if x < lo {
			x = lo
		}
		pos[i] = int(math.Floor(math.Log(x/lo) / base))
	}
	return pos
}

// PosKey renders a grid position as a map key.
func PosKey(pos []int) string {
	parts := make([]string, len(pos))
	for i, p := range pos {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return strings.Join(parts, ",")
}

// Skyline computes the exact Pareto front of the vectors by
// sort-filter-scan: sort lexicographically, keep non-dominated. It
// returns the indexes of skyline members in input order.
func Skyline(vs []Vector) []int {
	idx := make([]int, len(vs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return lexLess(vs[idx[a]], vs[idx[b]]) })
	var keep []int
	for _, i := range idx {
		dominated := false
		for _, k := range keep {
			if vs[k].Dominates(vs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, i)
		}
	}
	sort.Ints(keep)
	return keep
}

// KungSkyline computes the Pareto front with Kung's divide-and-conquer
// algorithm [Kung, Luccio & Preparata 1975], as cited by the paper's
// exact algorithm (Theorem 1). It returns indexes in input order.
func KungSkyline(vs []Vector) []int {
	idx := make([]int, len(vs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return lexLess(vs[idx[a]], vs[idx[b]]) })
	res := kungRec(vs, idx)
	sort.Ints(res)
	return res
}

func kungRec(vs []Vector, idx []int) []int {
	if len(idx) <= 1 {
		return append([]int(nil), idx...)
	}
	mid := len(idx) / 2
	top := kungRec(vs, idx[:mid])
	bot := kungRec(vs, idx[mid:])
	// Keep members of bot not dominated by any member of top.
	out := append([]int(nil), top...)
	for _, b := range bot {
		dominated := false
		for _, t := range top {
			if vs[t].Dominates(vs[b]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, b)
		}
	}
	return out
}

func lexLess(a, b Vector) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// IsEpsSkylineOf verifies the ε-skyline property (Section 5.1): every
// vector in all is ε-dominated by some member of set.
func IsEpsSkylineOf(set, all []Vector, eps float64) bool {
	for _, v := range all {
		covered := false
		for _, s := range set {
			if s.EpsDominates(v, eps) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}
