package skyline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Vector
		want bool
	}{
		{Vector{1, 1}, Vector{2, 2}, true},
		{Vector{1, 2}, Vector{2, 1}, false}, // incomparable
		{Vector{1, 1}, Vector{1, 1}, false}, // no strict improvement
		{Vector{1, 1}, Vector{1, 2}, true},
		{Vector{2, 2}, Vector{1, 1}, false},
		{Vector{1}, Vector{1, 2}, false}, // length mismatch
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("%v Dominates %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEpsDominates(t *testing.T) {
	// Paper Example 5 style: within (1+eps) on all, <= on one.
	a := Vector{0.40, 0.17}
	b := Vector{0.45, 0.22}
	if !a.EpsDominates(b, 0.3) {
		t.Error("a should 0.3-dominate b")
	}
	// b also eps-dominates a at eps=0.3: 0.45 <= 1.3*0.40 and 0.22 <= 1.3*0.17=0.221,
	// decisive needs b.p <= a.p for some p — none holds, so no.
	if b.EpsDominates(a, 0.3) {
		t.Error("b must not 0.3-dominate a (no decisive measure)")
	}
	// eps-dominance is weaker than dominance.
	if !(Vector{1, 1}).EpsDominates(Vector{1.05, 1.05}, 0.1) {
		t.Error("near-equal should eps-dominate")
	}
}

func TestGridPosExcludesDecisive(t *testing.T) {
	v := Vector{0.5, 0.25, 0.9}
	bounds := []Bounds{{Lower: 0.01}, {Lower: 0.01}, {Lower: 0.01}}
	pos := GridPos(v, bounds, 0.1)
	if len(pos) != 2 {
		t.Fatalf("pos dims = %d, want |P|-1 = 2", len(pos))
	}
}

func TestGridPosMonotone(t *testing.T) {
	bounds := []Bounds{{Lower: 0.001}, {Lower: 0.001}}
	lo := GridPos(Vector{0.01, 1}, bounds, 0.2)
	hi := GridPos(Vector{0.5, 1}, bounds, 0.2)
	if lo[0] >= hi[0] {
		t.Errorf("grid position should grow with the measure: %v vs %v", lo, hi)
	}
}

func TestGridPosFloorsBelowLower(t *testing.T) {
	bounds := []Bounds{{Lower: 0.1}, {Lower: 0.1}}
	pos := GridPos(Vector{0.0001, 1}, bounds, 0.2)
	if pos[0] != 0 {
		t.Errorf("values below the lower bound should land in cell 0, got %d", pos[0])
	}
}

func TestSkylineKnown(t *testing.T) {
	// Example 4 of the paper: D3 and D5 are the skyline.
	vs := []Vector{
		{0.48, 0.33, 0.37}, // D1
		{0.41, 0.24, 0.37}, // D2
		{0.26, 0.15, 0.37}, // D3
		{0.37, 0.22, 0.39}, // D4
		{0.25, 0.18, 0.35}, // D5
	}
	got := Skyline(vs)
	want := map[int]bool{2: true, 4: true}
	if len(got) != 2 {
		t.Fatalf("skyline = %v, want indices {2,4}", got)
	}
	for _, i := range got {
		if !want[i] {
			t.Fatalf("skyline = %v, want indices {2,4}", got)
		}
	}
}

func TestKungMatchesSortFilter(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		d := 2 + rng.Intn(3)
		vs := make([]Vector, n)
		for i := range vs {
			vs[i] = make(Vector, d)
			for j := range vs[i] {
				vs[i][j] = float64(rng.Intn(8)) / 8
			}
		}
		a := Skyline(vs)
		b := KungSkyline(vs)
		// Both must be valid skylines of the same size covering all points.
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSkylineProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		vs := make([]Vector, n)
		for i := range vs {
			vs[i] = Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		}
		sk := Skyline(vs)
		inSk := map[int]bool{}
		for _, i := range sk {
			inSk[i] = true
		}
		// (1) No skyline member dominates another.
		for _, i := range sk {
			for _, j := range sk {
				if i != j && vs[i].Dominates(vs[j]) {
					return false
				}
			}
		}
		// (2) Every non-member is dominated by some member.
		for i := range vs {
			if inSk[i] {
				continue
			}
			dominated := false
			for _, j := range sk {
				if vs[j].Dominates(vs[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestIsEpsSkylineOf(t *testing.T) {
	all := []Vector{{0.5, 0.5}, {0.52, 0.52}, {1, 1}}
	set := []Vector{{0.5, 0.5}}
	if !IsEpsSkylineOf(set, all, 0.1) {
		t.Error("{0.5,0.5} should 0.1-cover all")
	}
	if IsEpsSkylineOf([]Vector{{1, 1}}, all, 0.1) {
		t.Error("{1,1} should not 0.1-cover {0.5,0.5}")
	}
}

func TestEpsDominanceSubsumesDominance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Vector{rng.Float64() + 0.01, rng.Float64() + 0.01}
		b := Vector{rng.Float64() + 0.01, rng.Float64() + 0.01}
		if a.Dominates(b) && !a.EpsDominates(b, 0.1) {
			return false
		}
		// Reflexive eps-dominance always holds.
		return a.EpsDominates(a, 0.1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVectorString(t *testing.T) {
	if got := (Vector{0.5}).String(); got != "<0.5000>" {
		t.Errorf("String = %q", got)
	}
}

func TestPosKey(t *testing.T) {
	if PosKey([]int{1, -2, 3}) != "1,-2,3" {
		t.Error("PosKey format")
	}
}

// PackedPosKey must be injective wherever PosKey is, over realistic
// ε-grid coordinate ranges, at both the exact (≤4 dims) and hashed
// (>4 dims) encodings.
func TestPackedPosKeyMatchesPosKey(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := 1 + rng.Intn(6)
		mk := func() []int {
			pos := make([]int, dims)
			for i := range pos {
				pos[i] = rng.Intn(200) - 10
			}
			return pos
		}
		a, b := mk(), mk()
		if PosKey(a) == PosKey(b) {
			return PackedPosKey(a) == PackedPosKey(b)
		}
		return PackedPosKey(a) != PackedPosKey(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Regression: tiny ε produces grid coordinates in the tens of
// thousands; distinct cells must keep distinct packed keys instead of
// being truncated together.
func TestPackedPosKeyTinyEps(t *testing.T) {
	bounds := []Bounds{{Lower: 1e-3}, {Lower: 1e-3}, {Lower: 1e-3}}
	lo := GridPos(Vector{0.0014, 0.5, 0.5}, bounds, 1e-4)
	hi := GridPos(Vector{0.999, 0.5, 0.5}, bounds, 1e-4)
	if lo[0] == hi[0] {
		t.Fatal("test expects distinct grid coordinates")
	}
	if PackedPosKey(lo) == PackedPosKey(hi) {
		t.Errorf("distinct cells %v and %v share a packed key", lo, hi)
	}
	// Out-of-lane coordinates take the tagged hashed fallback, which can
	// never equal an exactly-packed key.
	huge := []int{1 << 40, 1, 2, 3}
	if PackedPosKey(huge)&(1<<63) == 0 {
		t.Error("overflowing position should use the tagged fallback")
	}
	if PackedPosKey([]int{0, 1, 2, 3})&(1<<63) != 0 {
		t.Error("in-lane position should pack exactly")
	}
}

func TestGridPosIntoReusesScratch(t *testing.T) {
	bounds := []Bounds{{Lower: 0.01}, {Lower: 0.01}, {Lower: 0.01}}
	scratch := make([]int, 0, 8)
	p1 := GridPosInto(scratch, Vector{0.5, 0.25, 0.9}, bounds, 0.1)
	p2 := GridPosInto(p1, Vector{0.5, 0.25, 0.9}, bounds, 0.1)
	if &p1[0] != &p2[0] {
		t.Error("GridPosInto should reuse the scratch backing array")
	}
	want := GridPos(Vector{0.5, 0.25, 0.9}, bounds, 0.1)
	for i := range want {
		if p2[i] != want[i] {
			t.Errorf("GridPosInto disagrees with GridPos at %d", i)
		}
	}
}
