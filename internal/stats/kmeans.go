package stats

import (
	"math"
	"sort"
)

// KMeans1D clusters scalar values into at most k clusters by Lloyd's
// algorithm with deterministic quantile seeding. It returns the sorted
// centroids and the assignment of each input to a centroid index.
// Fewer than k distinct values yield one cluster per distinct value.
//
// MODis uses this to compress attribute active domains: one equality
// literal is derived per cluster (Section 6, "Construction of D_U").
func KMeans1D(xs []float64, k int, maxIter int) (centroids []float64, assign []int) {
	assign = make([]int, len(xs))
	if len(xs) == 0 || k <= 0 {
		return nil, assign
	}

	distinct := distinctSorted(xs)
	if len(distinct) <= k {
		centroids = distinct
		for i, x := range xs {
			assign[i] = nearestIdx(centroids, x)
		}
		return centroids, assign
	}

	// Mass-weighted quantile seeding keeps the run deterministic and
	// places seeds where the data actually concentrates: seeding over
	// distinct values alone would let a long tail of rare values steal
	// every centroid from a few high-mass levels.
	sortedAll := append([]float64(nil), xs...)
	sort.Float64s(sortedAll)
	seen := map[float64]bool{}
	centroids = centroids[:0]
	for i := 0; i < k; i++ {
		var pos int
		if k == 1 {
			pos = len(sortedAll) / 2
		} else {
			pos = i * (len(sortedAll) - 1) / (k - 1)
		}
		v := sortedAll[pos]
		if !seen[v] {
			seen[v] = true
			centroids = append(centroids, v)
		}
	}
	// Supplement duplicated quantiles with the distinct values farthest
	// from the current seeds (farthest-point heuristic), so k clusters
	// are used whenever k distinct values exist.
	for len(centroids) < k {
		bestV, bestD := 0.0, -1.0
		for _, v := range distinct {
			if seen[v] {
				continue
			}
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := math.Abs(v - c); dd < d {
					d = dd
				}
			}
			if d > bestD {
				bestD, bestV = d, v
			}
		}
		if bestD < 0 {
			break
		}
		seen[bestV] = true
		centroids = append(centroids, bestV)
	}
	sort.Float64s(centroids)

	if maxIter <= 0 {
		maxIter = 50
	}
	for iter := 0; iter < maxIter; iter++ {
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, x := range xs {
			c := nearestIdx(centroids, x)
			assign[i] = c
			sums[c] += x
			counts[c]++
		}
		moved := false
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			nc := sums[c] / float64(counts[c])
			if nc != centroids[c] {
				centroids[c] = nc
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	sort.Float64s(centroids)
	centroids = dedupFloats(centroids)
	for i, x := range xs {
		assign[i] = nearestIdx(centroids, x)
	}
	return centroids, assign
}

func distinctSorted(xs []float64) []float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return dedupFloats(cp)
}

func dedupFloats(sorted []float64) []float64 {
	out := sorted[:0]
	for i, x := range sorted {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func nearestIdx(centroids []float64, x float64) int {
	best, bd := 0, math.Inf(1)
	for i, c := range centroids {
		d := math.Abs(x - c)
		if d < bd {
			bd, best = d, i
		}
	}
	return best
}
