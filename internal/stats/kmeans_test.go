package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKMeansSeparatedClusters(t *testing.T) {
	var xs []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		xs = append(xs, rng.Float64())     // cluster around [0,1]
		xs = append(xs, 10+rng.Float64())  // cluster around [10,11]
		xs = append(xs, 100+rng.Float64()) // cluster around [100,101]
	}
	centroids, assign := KMeans1D(xs, 3, 50)
	if len(centroids) != 3 {
		t.Fatalf("centroids = %d, want 3", len(centroids))
	}
	// Centroids should land near 0.5, 10.5, 100.5.
	wants := []float64{0.5, 10.5, 100.5}
	for i, w := range wants {
		if math.Abs(centroids[i]-w) > 1 {
			t.Errorf("centroid[%d] = %v, want ~%v", i, centroids[i], w)
		}
	}
	// Every assignment points at the nearest centroid.
	for i, x := range xs {
		c := centroids[assign[i]]
		for _, other := range centroids {
			if math.Abs(x-other) < math.Abs(x-c)-1e-9 {
				t.Fatalf("x=%v assigned to %v but %v is closer", x, c, other)
			}
		}
	}
}

func TestKMeansFewDistinct(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 2}
	centroids, assign := KMeans1D(xs, 10, 50)
	if len(centroids) != 2 {
		t.Fatalf("distinct-limited centroids = %d, want 2", len(centroids))
	}
	for i, x := range xs {
		if centroids[assign[i]] != x {
			t.Errorf("x=%v mapped to %v", x, centroids[assign[i]])
		}
	}
}

func TestKMeansEmptyAndZeroK(t *testing.T) {
	if c, _ := KMeans1D(nil, 3, 10); c != nil {
		t.Error("empty input should yield nil centroids")
	}
	if c, _ := KMeans1D([]float64{1, 2}, 0, 10); c != nil {
		t.Error("k=0 should yield nil centroids")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	c1, a1 := KMeans1D(xs, 5, 50)
	c2, a2 := KMeans1D(xs, 5, 50)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("k-means must be deterministic")
		}
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("assignments must be deterministic")
		}
	}
}

func TestKMeansProperties(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		k := 1 + int(kRaw%8)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		centroids, assign := KMeans1D(xs, k, 30)
		if len(centroids) == 0 || len(centroids) > k {
			return false
		}
		// Centroids are sorted and assignments in range.
		for i := 1; i < len(centroids); i++ {
			if centroids[i] < centroids[i-1] {
				return false
			}
		}
		for _, a := range assign {
			if a < 0 || a >= len(centroids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
