// Package stats provides the numeric substrate shared across MODis:
// k-means clustering (used to derive equality literals from active
// domains), rank correlation (used by BiMODis' correlation-based
// pruning), and the distance functions of the diversification score.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance, or NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs; NaNs for empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Normalize maps xs into (0,1] by min-max scaling with a floor eps>0,
// matching the paper's convention that measures live in (0,1] with a
// strictly positive lower bound. A constant series maps to all-1.
func Normalize(xs []float64, eps float64) []float64 {
	out := make([]float64, len(xs))
	lo, hi := MinMax(xs)
	span := hi - lo
	for i, x := range xs {
		if span == 0 {
			out[i] = 1
			continue
		}
		v := (x - lo) / span
		if v < eps {
			v = eps
		}
		out[i] = v
	}
	return out
}

// Ranks returns average ranks (1-based) of xs, with ties receiving the
// mean of their covered rank positions, as required by Spearman's rho.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson correlation coefficient of x and y, or 0
// when either series is constant or the lengths mismatch.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns Spearman's rank correlation coefficient, the
// correlation measure used by BiMODis' correlation graph G_C.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Cosine returns the cosine similarity of two vectors, or 0 if either is
// a zero vector or the lengths mismatch.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Euclidean returns the Euclidean distance of two vectors.
func Euclidean(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Hamming returns the number of positions at which two bit vectors differ.
func Hamming(a, b []bool) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d++
		}
	}
	d += len(a) - n + len(b) - n
	return d
}
