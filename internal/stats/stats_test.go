package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 1.25 {
		t.Errorf("Variance = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 5, 0})
	if lo != -1 || hi != 5 {
		t.Errorf("MinMax = %v %v", lo, hi)
	}
}

func TestNormalizeRangeAndFloor(t *testing.T) {
	out := Normalize([]float64{0, 5, 10}, 0.01)
	if out[2] != 1 {
		t.Errorf("max should map to 1, got %v", out[2])
	}
	if out[0] != 0.01 {
		t.Errorf("min should floor to eps, got %v", out[0])
	}
	// Constant series maps to all-1.
	c := Normalize([]float64{7, 7, 7}, 0.01)
	for _, v := range c {
		if v != 1 {
			t.Errorf("constant series should map to 1, got %v", v)
		}
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("rank[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", got)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yneg); math.Abs(got+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", got)
	}
	if got := Pearson(x, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("constant series correlation = %v, want 0", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman is 1 for any strictly monotone relation, even non-linear.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	if got := Spearman(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman = %v, want 1", got)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine same = %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Errorf("Cosine orthogonal = %v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Error("zero vector cosine should be 0")
	}
}

func TestEuclidean(t *testing.T) {
	if got := Euclidean([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Errorf("Euclidean = %v, want 5", got)
	}
}

func TestHamming(t *testing.T) {
	if got := Hamming([]bool{true, false, true}, []bool{true, true, false}); got != 2 {
		t.Errorf("Hamming = %d, want 2", got)
	}
	// Length mismatch counts the tail.
	if got := Hamming([]bool{true}, []bool{true, false, false}); got != 2 {
		t.Errorf("Hamming tail = %d, want 2", got)
	}
}

func TestSpearmanBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.Float64(), rng.Float64()
		}
		r := Spearman(x, y)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRanksArePermutationOfPositions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		r := Ranks(xs)
		// Sum of ranks must equal n(n+1)/2 even with ties.
		var s float64
		for _, v := range r {
			s += v
		}
		return math.Abs(s-float64(n*(n+1))/2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
