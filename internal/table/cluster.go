package table

import (
	"repro/internal/stats"
)

// DeriveLiterals produces the equality literals for one attribute,
// following the paper's D_U construction: k-means clustering over the
// active domain (max k = 30 by default), one literal per cluster.
// Numeric attributes are clustered; categorical attributes contribute one
// literal per distinct value, capped at maxK most frequent values.
func DeriveLiterals(t *Table, attr string, maxK int) []Literal {
	if maxK <= 0 {
		maxK = 30
	}
	idx := t.Schema.Index(attr)
	if idx < 0 {
		return nil
	}
	if t.Schema[idx].Kind == KindString {
		return categoricalLiterals(t, attr, idx, maxK)
	}
	var xs []float64
	for _, r := range t.Rows {
		if !r[idx].IsNull() {
			xs = append(xs, r[idx].AsFloat())
		}
	}
	return literalsFromFloats(attr, xs, maxK)
}

// DeriveLiteralsFromColumn is the numeric path of DeriveLiterals fed
// from a pre-decoded column instead of a row scan: vals[ri] is row
// ri's cell as a float, null marks missing cells (nil when the column
// has none). Because a decoded column lists exactly the AsFloat values
// of the non-null cells in row order, the k-means input — and hence
// the derived literals — is identical to DeriveLiterals on the same
// attribute; a property test asserts this.
func DeriveLiteralsFromColumn(attr string, vals []float64, null []bool, maxK int) []Literal {
	if maxK <= 0 {
		maxK = 30
	}
	xs := make([]float64, 0, len(vals))
	for i, v := range vals {
		if null != nil && null[i] {
			continue
		}
		xs = append(xs, v)
	}
	return literalsFromFloats(attr, xs, maxK)
}

func literalsFromFloats(attr string, xs []float64, maxK int) []Literal {
	if len(xs) == 0 {
		return nil
	}
	centroids, _ := stats.KMeans1D(xs, maxK, 50)
	out := make([]Literal, len(centroids))
	for i, c := range centroids {
		out[i] = Literal{Attr: attr, Value: Float(c)}
	}
	return out
}

func categoricalLiterals(t *Table, attr string, idx, maxK int) []Literal {
	counts := make(map[string]int)
	vals := make(map[string]Value)
	for _, r := range t.Rows {
		v := r[idx]
		if v.IsNull() {
			continue
		}
		counts[v.Key()]++
		vals[v.Key()] = v
	}
	adom := t.ActiveDomain(attr)
	if len(adom) <= maxK {
		out := make([]Literal, len(adom))
		for i, v := range adom {
			out[i] = Literal{Attr: attr, Value: v}
		}
		return out
	}
	// Keep the maxK most frequent values, in deterministic adom order.
	type kv struct {
		v Value
		n int
	}
	ordered := make([]kv, 0, len(adom))
	for _, v := range adom {
		ordered = append(ordered, kv{v, counts[v.Key()]})
	}
	// Stable selection of top-maxK by count.
	for i := 0; i < maxK && i < len(ordered); i++ {
		best := i
		for j := i + 1; j < len(ordered); j++ {
			if ordered[j].n > ordered[best].n {
				best = j
			}
		}
		ordered[i], ordered[best] = ordered[best], ordered[i]
	}
	out := make([]Literal, 0, maxK)
	for i := 0; i < maxK; i++ {
		out = append(out, Literal{Attr: attr, Value: ordered[i].v})
	}
	return out
}

// Compress replaces each numeric cell of attr with its cluster centroid,
// shrinking the active domain to at most maxK values ("replacing rows into
// tuple clusters" in Section 6). Categorical and null cells pass through.
func Compress(t *Table, attr string, maxK int) *Table {
	idx := t.Schema.Index(attr)
	out := t.Clone()
	if idx < 0 || t.Schema[idx].Kind == KindString {
		return out
	}
	var xs []float64
	var rowIdx []int
	for i, r := range t.Rows {
		if !r[idx].IsNull() {
			xs = append(xs, r[idx].AsFloat())
			rowIdx = append(rowIdx, i)
		}
	}
	if len(xs) == 0 {
		return out
	}
	centroids, assign := stats.KMeans1D(xs, maxK, 50)
	for j, ri := range rowIdx {
		out.Rows[ri][idx] = Float(centroids[assign[j]])
	}
	return out
}

// CompressAll applies Compress to every numeric attribute.
func CompressAll(t *Table, maxK int) *Table {
	out := t
	for _, c := range t.Schema {
		if c.Kind != KindString {
			out = Compress(out, c.Name, maxK)
		}
	}
	return out
}
