package table

import (
	"math/rand"
	"testing"
)

func numericTable(n int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	tb := New("t", Schema{{Name: "x", Kind: KindFloat}, {Name: "c", Kind: KindString}})
	cats := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < n; i++ {
		tb.MustAppend(Row{Float(rng.Float64() * 100), Str(cats[rng.Intn(len(cats))])})
	}
	return tb
}

func TestDeriveLiteralsNumeric(t *testing.T) {
	tb := numericTable(200, 1)
	lits := DeriveLiterals(tb, "x", 4)
	if len(lits) == 0 || len(lits) > 4 {
		t.Fatalf("literal count = %d, want 1..4", len(lits))
	}
	for _, l := range lits {
		if l.Attr != "x" {
			t.Errorf("literal attr = %q, want x", l.Attr)
		}
	}
}

func TestDeriveLiteralsCategorical(t *testing.T) {
	tb := numericTable(100, 2)
	lits := DeriveLiterals(tb, "c", 30)
	if len(lits) != 5 {
		t.Fatalf("categorical literals = %d, want 5 (one per distinct)", len(lits))
	}
	capped := DeriveLiterals(tb, "c", 3)
	if len(capped) != 3 {
		t.Fatalf("capped categorical literals = %d, want 3", len(capped))
	}
}

// The column-fed numeric path must derive exactly the literals of the
// row scan: same k-means input in the same order, nulls excluded.
func TestDeriveLiteralsFromColumnParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb := New("t", Schema{{Name: "x", Kind: KindFloat}, {Name: "n", Kind: KindInt}})
	for i := 0; i < 180; i++ {
		x := Value(Float(rng.Float64() * 50))
		n := Value(Int(int64(rng.Intn(9))))
		if i%11 == 0 {
			x = Null
		}
		if i%7 == 0 {
			n = Null
		}
		tb.MustAppend(Row{x, n})
	}
	for _, attr := range []string{"x", "n"} {
		idx := tb.Schema.Index(attr)
		vals := make([]float64, tb.NumRows())
		null := make([]bool, tb.NumRows())
		for i, r := range tb.Rows {
			if r[idx].IsNull() {
				null[i] = true
				continue
			}
			vals[i] = r[idx].AsFloat()
		}
		want := DeriveLiterals(tb, attr, 4)
		got := DeriveLiteralsFromColumn(attr, vals, null, 4)
		if len(got) != len(want) {
			t.Fatalf("%s: literal count %d != %d", attr, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: literal %d = %v, want %v", attr, i, got[i], want[i])
			}
		}
	}
}

// A fully-null column derives nothing, with or without a mask.
func TestDeriveLiteralsFromColumnEmpty(t *testing.T) {
	if got := DeriveLiteralsFromColumn("x", nil, nil, 4); got != nil {
		t.Errorf("empty column should yield no literals, got %v", got)
	}
	if got := DeriveLiteralsFromColumn("x", []float64{0, 0}, []bool{true, true}, 4); got != nil {
		t.Errorf("all-null column should yield no literals, got %v", got)
	}
}

func TestDeriveLiteralsMissingAttr(t *testing.T) {
	tb := numericTable(10, 3)
	if lits := DeriveLiterals(tb, "ghost", 5); lits != nil {
		t.Error("missing attr should yield no literals")
	}
}

func TestCompressShrinksAdom(t *testing.T) {
	tb := numericTable(300, 4)
	before := len(tb.ActiveDomain("x"))
	c := Compress(tb, "x", 5)
	after := len(c.ActiveDomain("x"))
	if after > 5 {
		t.Fatalf("compressed adom = %d, want <= 5", after)
	}
	if after >= before {
		t.Fatalf("compression should shrink adom (%d -> %d)", before, after)
	}
	if c.NumRows() != tb.NumRows() {
		t.Error("compression must keep row count")
	}
}

func TestCompressLeavesStringsAndNulls(t *testing.T) {
	tb := New("t", Schema{{Name: "x", Kind: KindFloat}, {Name: "s", Kind: KindString}})
	tb.MustAppend(Row{Null, Str("q")})
	tb.MustAppend(Row{Float(1), Str("r")})
	c := Compress(tb, "s", 2)
	if c.Rows[0][1].AsString() != "q" {
		t.Error("string column must pass through")
	}
	c = Compress(tb, "x", 2)
	if !c.Rows[0][0].IsNull() {
		t.Error("null cells must remain null")
	}
}

func TestCompressAll(t *testing.T) {
	tb := numericTable(200, 5)
	c := CompressAll(tb, 4)
	if got := len(c.ActiveDomain("x")); got > 4 {
		t.Errorf("CompressAll adom(x) = %d, want <= 4", got)
	}
	// Categorical untouched.
	if got := len(c.ActiveDomain("c")); got != len(tb.ActiveDomain("c")) {
		t.Error("CompressAll must not change categoricals")
	}
}

// Every compressed cell must equal one of the derived literal values, so
// Reduct by cluster literal removes complete clusters.
func TestCompressAlignsWithLiterals(t *testing.T) {
	tb := numericTable(150, 6)
	c := Compress(tb, "x", 3)
	lits := DeriveLiterals(c, "x", 3)
	allowed := map[string]bool{}
	for _, l := range lits {
		allowed[l.Value.Key()] = true
	}
	for _, v := range c.Column("x") {
		if v.IsNull() {
			continue
		}
		if !allowed[v.Key()] {
			t.Fatalf("cell %v not covered by any literal", v)
		}
	}
}
