package table

import "fmt"

// Concat returns a fresh table holding t's rows followed by extra,
// all deep-cloned — the cold-side reference of the streaming
// determinism contract: an engine that Append-ed extra onto t must
// behave byte-identically to a cold build over Concat(t, extra). The
// input table is never aliased, so mutating the copy (or appending to
// the original) cannot skew the comparison.
func Concat(name string, t *Table, extra []Row) (*Table, error) {
	out := New(name, t.Schema)
	out.Rows = make([]Row, 0, len(t.Rows)+len(extra))
	for _, r := range t.Rows {
		out.Rows = append(out.Rows, r.Clone())
	}
	for i, r := range extra {
		if err := out.Append(r.Clone()); err != nil {
			return nil, fmt.Errorf("table: concat extra row %d: %w", i, err)
		}
	}
	return out, nil
}
