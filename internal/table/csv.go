package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV encodes the table as CSV with a header row. Nulls encode as
// empty cells.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.Names()); err != nil {
		return err
	}
	rec := make([]string, len(t.Schema))
	for _, r := range t.Rows {
		for i, v := range r {
			rec[i] = v.AsString()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a CSV stream with a header row into a table, inferring
// column kinds from the data: a column is int if every non-empty cell
// parses as an integer, else float if every non-empty cell parses as a
// number, else string. Empty cells decode as null.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read csv %s: %w", name, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("read csv %s: empty input", name)
	}
	header := recs[0]
	body := recs[1:]

	kinds := make([]Kind, len(header))
	for c := range header {
		kinds[c] = inferKind(body, c)
	}
	schema := make(Schema, len(header))
	for c, h := range header {
		schema[c] = Column{Name: h, Kind: kinds[c]}
	}
	t := New(name, schema)
	for _, rec := range body {
		row := make(Row, len(header))
		for c := range header {
			if c >= len(rec) || rec[c] == "" {
				row[c] = Null
				continue
			}
			row[c] = parseAs(rec[c], kinds[c])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func inferKind(body [][]string, col int) Kind {
	allInt, allNum, any := true, true, false
	for _, rec := range body {
		if col >= len(rec) || rec[col] == "" {
			continue
		}
		any = true
		s := rec[col]
		if _, err := strconv.ParseInt(s, 10, 64); err != nil {
			allInt = false
		}
		if _, err := strconv.ParseFloat(s, 64); err != nil {
			allNum = false
		}
	}
	switch {
	case !any:
		return KindString
	case allInt:
		return KindInt
	case allNum:
		return KindFloat
	default:
		return KindString
	}
}

func parseAs(s string, k Kind) Value {
	switch k {
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Str(s)
		}
		return Int(i)
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Str(s)
		}
		return Float(f)
	default:
		return Str(s)
	}
}
