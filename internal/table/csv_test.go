package table

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	tb := New("t", Schema{
		{Name: "id", Kind: KindInt},
		{Name: "x", Kind: KindFloat},
		{Name: "s", Kind: KindString},
	})
	tb.MustAppend(Row{Int(1), Float(1.5), Str("hello")})
	tb.MustAppend(Row{Int(2), Null, Str("world")})
	tb.MustAppend(Row{Null, Float(-2.25), Null})

	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tb.NumRows() || back.NumCols() != tb.NumCols() {
		t.Fatalf("roundtrip shape %dx%d, want %dx%d", back.NumRows(), back.NumCols(), tb.NumRows(), tb.NumCols())
	}
	for i, r := range tb.Rows {
		for j, v := range r {
			got := back.Rows[i][j]
			if v.IsNull() != got.IsNull() {
				t.Fatalf("row %d col %d null mismatch", i, j)
			}
			if !v.IsNull() && !v.Equal(got) {
				t.Fatalf("row %d col %d: got %v want %v", i, j, got, v)
			}
		}
	}
}

func TestReadCSVKindInference(t *testing.T) {
	src := "a,b,c\n1,1.5,x\n2,2,y\n,,\n"
	tb, err := ReadCSV("t", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []Kind{KindInt, KindFloat, KindString}
	for i, k := range wantKinds {
		if tb.Schema[i].Kind != k {
			t.Errorf("col %d kind = %v, want %v", i, tb.Schema[i].Kind, k)
		}
	}
	// Third row is all nulls.
	for j := range tb.Schema {
		if !tb.Rows[2][j].IsNull() {
			t.Errorf("empty cell should decode null (col %d)", j)
		}
	}
}

func TestReadCSVEmptyInput(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Fatal("expected error on empty input")
	}
}

func TestReadCSVHeaderOnly(t *testing.T) {
	tb, err := ReadCSV("t", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 0 || tb.NumCols() != 2 {
		t.Fatalf("header-only shape %dx%d", tb.NumRows(), tb.NumCols())
	}
	// Columns with no data default to string.
	if tb.Schema[0].Kind != KindString {
		t.Error("empty column should default to string kind")
	}
}
