package table

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ColumnStats summarizes one attribute of a table.
type ColumnStats struct {
	Name     string
	Kind     Kind
	Count    int // non-null cells
	Nulls    int
	Distinct int
	// Mean, Std, Min, Max are NaN for string columns.
	Mean, Std, Min, Max float64
}

// Describe profiles every column: counts, null counts, distinct values,
// and moments for numeric columns. Used by data inspection tooling and
// the Starmie-style column sketches.
func (t *Table) Describe() []ColumnStats {
	out := make([]ColumnStats, len(t.Schema))
	for ci, col := range t.Schema {
		st := ColumnStats{
			Name: col.Name,
			Kind: col.Kind,
			Mean: math.NaN(), Std: math.NaN(), Min: math.NaN(), Max: math.NaN(),
		}
		var sum, sum2 float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range t.Rows {
			v := r[ci]
			if v.IsNull() {
				st.Nulls++
				continue
			}
			st.Count++
			if col.Kind != KindString {
				x := v.AsFloat()
				sum += x
				sum2 += x * x
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
			}
		}
		st.Distinct = len(t.ActiveDomain(col.Name))
		if col.Kind != KindString && st.Count > 0 {
			n := float64(st.Count)
			st.Mean = sum / n
			variance := sum2/n - st.Mean*st.Mean
			if variance < 0 {
				variance = 0
			}
			st.Std = math.Sqrt(variance)
			st.Min, st.Max = lo, hi
		}
		out[ci] = st
	}
	return out
}

// WriteDescription renders Describe as an aligned text table.
func (t *Table) WriteDescription(w io.Writer) error {
	stats := t.Describe()
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-7s %6s %6s %8s %10s %10s %10s %10s\n",
		"column", "kind", "count", "nulls", "distinct", "mean", "std", "min", "max")
	for _, s := range stats {
		num := func(x float64) string {
			if math.IsNaN(x) {
				return "-"
			}
			return fmt.Sprintf("%.4g", x)
		}
		fmt.Fprintf(&b, "%-16s %-7s %6d %6d %8d %10s %10s %10s %10s\n",
			s.Name, s.Kind, s.Count, s.Nulls, s.Distinct,
			num(s.Mean), num(s.Std), num(s.Min), num(s.Max))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
