package table

import (
	"math"
	"strings"
	"testing"
)

func TestDescribe(t *testing.T) {
	tb := New("t", Schema{
		{Name: "x", Kind: KindFloat},
		{Name: "s", Kind: KindString},
	})
	tb.MustAppend(Row{Float(1), Str("a")})
	tb.MustAppend(Row{Float(3), Str("b")})
	tb.MustAppend(Row{Null, Str("a")})

	stats := tb.Describe()
	if len(stats) != 2 {
		t.Fatalf("stats = %d, want 2", len(stats))
	}
	x := stats[0]
	if x.Count != 2 || x.Nulls != 1 || x.Distinct != 2 {
		t.Errorf("x stats: %+v", x)
	}
	if x.Mean != 2 || x.Min != 1 || x.Max != 3 {
		t.Errorf("x moments: mean=%v min=%v max=%v", x.Mean, x.Min, x.Max)
	}
	if x.Std != 1 {
		t.Errorf("x std = %v, want 1", x.Std)
	}
	s := stats[1]
	if !math.IsNaN(s.Mean) {
		t.Error("string column mean should be NaN")
	}
	if s.Count != 3 || s.Distinct != 2 {
		t.Errorf("s stats: %+v", s)
	}
}

func TestWriteDescription(t *testing.T) {
	tb := New("t", Schema{{Name: "col", Kind: KindInt}})
	tb.MustAppend(Row{Int(5)})
	var b strings.Builder
	if err := tb.WriteDescription(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "col") || !strings.Contains(out, "distinct") {
		t.Errorf("description output missing fields:\n%s", out)
	}
	// String columns render moments as dashes.
	tb2 := New("t2", Schema{{Name: "s", Kind: KindString}})
	tb2.MustAppend(Row{Str("x")})
	b.Reset()
	if err := tb2.WriteDescription(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "-") {
		t.Error("NaN moments should render as dashes")
	}
}
