package table

import "fmt"

// sharedAttrs returns the attribute names common to both schemas, in
// left-schema order.
func sharedAttrs(a, b Schema) []string {
	var out []string
	for _, c := range a {
		if b.Has(c.Name) {
			out = append(out, c.Name)
		}
	}
	return out
}

// joinKey builds a composite hash key over the given column indexes.
// It returns ok=false if any key cell is null (nulls never join).
func joinKey(r Row, idxs []int) (string, bool) {
	key := ""
	for _, i := range idxs {
		v := r[i]
		if v.IsNull() {
			return "", false
		}
		key += v.Key() + "\x00"
	}
	return key, true
}

// EquiJoin computes the natural equi-join of a and b over their shared
// attributes using a hash join. Shared attributes appear once, taking
// a's values.
func EquiJoin(a, b *Table) *Table {
	return joinImpl(a, b, false)
}

// OuterJoin computes the full outer natural join of a and b over their
// shared attributes: unmatched tuples on either side are preserved with
// null-filled cells. This is the default universal-table constructor in
// the paper ("outer join to preserve all the values").
func OuterJoin(a, b *Table) *Table {
	return joinImpl(a, b, true)
}

func joinImpl(a, b *Table, outer bool) *Table {
	shared := sharedAttrs(a.Schema, b.Schema)
	// Result schema: all of a, then b's non-shared attributes.
	schema := a.Schema.Clone()
	var bExtra []int
	for i, c := range b.Schema {
		if !a.Schema.Has(c.Name) {
			schema = append(schema, c)
			bExtra = append(bExtra, i)
		}
	}
	out := New(fmt.Sprintf("(%s⋈%s)", a.Name, b.Name), schema)

	if len(shared) == 0 {
		// Degenerate case: no shared attributes. A cross product would
		// explode; the paper's data lakes are pre-processed into joinable
		// tables, so we align by row index (zip join) and null-pad, which
		// preserves all values of both sides.
		n := max(len(a.Rows), len(b.Rows))
		for i := 0; i < n; i++ {
			nr := make(Row, len(schema))
			if i < len(a.Rows) {
				copy(nr, a.Rows[i])
			}
			if i < len(b.Rows) {
				for j, bi := range bExtra {
					nr[len(a.Schema)+j] = b.Rows[i][bi]
				}
			}
			out.Rows = append(out.Rows, nr)
		}
		return out
	}

	aIdx := make([]int, len(shared))
	bIdx := make([]int, len(shared))
	for i, n := range shared {
		aIdx[i] = a.Schema.Index(n)
		bIdx[i] = b.Schema.Index(n)
	}

	// Build hash on b.
	build := make(map[string][]int, len(b.Rows))
	for i, r := range b.Rows {
		if k, ok := joinKey(r, bIdx); ok {
			build[k] = append(build[k], i)
		}
	}

	matchedB := make([]bool, len(b.Rows))
	for _, ra := range a.Rows {
		k, ok := joinKey(ra, aIdx)
		var matches []int
		if ok {
			matches = build[k]
		}
		if len(matches) == 0 {
			if outer {
				nr := make(Row, len(schema))
				copy(nr, ra)
				out.Rows = append(out.Rows, nr)
			}
			continue
		}
		for _, bi := range matches {
			matchedB[bi] = true
			nr := make(Row, len(schema))
			copy(nr, ra)
			for j, be := range bExtra {
				nr[len(a.Schema)+j] = b.Rows[bi][be]
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	if outer {
		for bi, rb := range b.Rows {
			if matchedB[bi] {
				continue
			}
			nr := make(Row, len(schema))
			for i, n := range shared {
				nr[a.Schema.Index(n)] = rb[bIdx[i]]
			}
			for j, be := range bExtra {
				nr[len(a.Schema)+j] = rb[be]
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// Universal constructs the universal table D_U over the dataset set D by a
// multi-way outer join, preserving all attribute values. The universal
// schema R_U is the union of local schemas.
func Universal(tables ...*Table) *Table {
	if len(tables) == 0 {
		return New("D_U", nil)
	}
	acc := tables[0].Clone()
	for _, t := range tables[1:] {
		acc = OuterJoin(acc, t)
	}
	acc.Name = "D_U"
	return acc
}

// Augment implements the paper's ⊕_c(D_M, D) operator as SPJ queries:
// (a) augment R_M with attributes of R_D that are missing, (b) append the
// tuples of D satisfying literal c, (c) null-fill unknown cells. If c has
// a zero-value Literal (empty Attr), all tuples of D are appended.
func Augment(base, src *Table, c Literal) *Table {
	schema := base.Schema.Clone()
	for _, col := range src.Schema {
		if !schema.Has(col.Name) {
			schema = append(schema, col)
		}
	}
	out := New(base.Name+"⊕", schema)
	// Existing tuples, null-padded to the new width.
	for _, r := range base.Rows {
		nr := make(Row, len(schema))
		copy(nr, r)
		out.Rows = append(out.Rows, nr)
	}
	// Source tuples satisfying c, remapped into the united schema.
	srcPos := make([]int, len(src.Schema))
	for i, col := range src.Schema {
		srcPos[i] = schema.Index(col.Name)
	}
	for _, r := range src.Rows {
		if c.Attr != "" && !c.Matches(src.Schema, r) {
			continue
		}
		nr := make(Row, len(schema))
		for i, v := range r {
			nr[srcPos[i]] = v
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// Reduct implements the paper's ⊖_c(D_M) operator: select the tuples
// satisfying the literal c on R_M.A and remove them from D_M.
func Reduct(base *Table, c Literal) *Table {
	out := New(base.Name+"⊖", base.Schema)
	for _, r := range base.Rows {
		if c.Matches(base.Schema, r) {
			continue
		}
		out.Rows = append(out.Rows, r.Clone())
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
