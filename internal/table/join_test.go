package table

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func leftTable() *Table {
	a := New("A", Schema{{Name: "id", Kind: KindInt}, {Name: "x", Kind: KindFloat}})
	a.MustAppend(Row{Int(1), Float(10)})
	a.MustAppend(Row{Int(2), Float(20)})
	a.MustAppend(Row{Int(3), Float(30)})
	return a
}

func rightTable() *Table {
	b := New("B", Schema{{Name: "id", Kind: KindInt}, {Name: "y", Kind: KindFloat}})
	b.MustAppend(Row{Int(2), Float(200)})
	b.MustAppend(Row{Int(3), Float(300)})
	b.MustAppend(Row{Int(4), Float(400)})
	return b
}

func TestEquiJoin(t *testing.T) {
	j := EquiJoin(leftTable(), rightTable())
	if j.NumRows() != 2 {
		t.Fatalf("equi join rows = %d, want 2", j.NumRows())
	}
	if j.NumCols() != 3 {
		t.Fatalf("equi join cols = %d, want 3 (shared id appears once)", j.NumCols())
	}
	// id=2 row joined correctly.
	found := false
	for _, r := range j.Rows {
		if r[j.Schema.Index("id")].AsInt() == 2 {
			found = true
			if r[j.Schema.Index("y")].AsFloat() != 200 {
				t.Error("join mismatched y for id=2")
			}
		}
	}
	if !found {
		t.Error("missing id=2 in equi join")
	}
}

func TestOuterJoinPreservesAll(t *testing.T) {
	j := OuterJoin(leftTable(), rightTable())
	if j.NumRows() != 4 {
		t.Fatalf("outer join rows = %d, want 4 (ids 1..4)", j.NumRows())
	}
	ids := map[int64]bool{}
	for _, r := range j.Rows {
		ids[r[j.Schema.Index("id")].AsInt()] = true
	}
	for want := int64(1); want <= 4; want++ {
		if !ids[want] {
			t.Errorf("outer join lost id=%d", want)
		}
	}
	// Unmatched left row (id=1) has null y; unmatched right (id=4) null x.
	for _, r := range j.Rows {
		id := r[j.Schema.Index("id")].AsInt()
		if id == 1 && !r[j.Schema.Index("y")].IsNull() {
			t.Error("id=1 should have null y")
		}
		if id == 4 && !r[j.Schema.Index("x")].IsNull() {
			t.Error("id=4 should have null x")
		}
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	a := New("A", Schema{{Name: "k", Kind: KindInt}, {Name: "x", Kind: KindFloat}})
	a.MustAppend(Row{Null, Float(1)})
	b := New("B", Schema{{Name: "k", Kind: KindInt}, {Name: "y", Kind: KindFloat}})
	b.MustAppend(Row{Null, Float(2)})
	if j := EquiJoin(a, b); j.NumRows() != 0 {
		t.Error("null join keys must not match")
	}
	// Outer join still preserves both unmatched sides.
	if j := OuterJoin(a, b); j.NumRows() != 2 {
		t.Errorf("outer join with null keys rows = %d, want 2", j.NumRows())
	}
}

func TestZipJoinNoSharedAttrs(t *testing.T) {
	a := New("A", Schema{{Name: "x", Kind: KindFloat}})
	a.MustAppend(Row{Float(1)})
	a.MustAppend(Row{Float(2)})
	b := New("B", Schema{{Name: "y", Kind: KindFloat}})
	b.MustAppend(Row{Float(9)})
	j := OuterJoin(a, b)
	if j.NumRows() != 2 || j.NumCols() != 2 {
		t.Fatalf("zip join shape = %dx%d, want 2x2", j.NumRows(), j.NumCols())
	}
	if j.Rows[1][1].IsNull() != true {
		t.Error("short side should null-pad")
	}
}

func TestUniversalSchemaIsUnion(t *testing.T) {
	u := Universal(leftTable(), rightTable())
	for _, name := range []string{"id", "x", "y"} {
		if !u.Schema.Has(name) {
			t.Errorf("universal schema missing %s", name)
		}
	}
	if u.Name != "D_U" {
		t.Errorf("universal name = %q", u.Name)
	}
	if empty := Universal(); empty.NumRows() != 0 {
		t.Error("empty universal should be empty")
	}
}

func TestAugmentOperator(t *testing.T) {
	base := leftTable()
	src := rightTable()
	aug := Augment(base, src, Literal{Attr: "id", Value: Int(4)})
	// Schema united.
	if !aug.Schema.Has("y") {
		t.Fatal("augment must extend the schema")
	}
	// Base rows preserved + one matching source row appended.
	if aug.NumRows() != base.NumRows()+1 {
		t.Fatalf("augment rows = %d, want %d", aug.NumRows(), base.NumRows()+1)
	}
	last := aug.Rows[aug.NumRows()-1]
	if last[aug.Schema.Index("y")].AsFloat() != 400 {
		t.Error("appended row should carry y=400")
	}
	if !last[aug.Schema.Index("x")].IsNull() {
		t.Error("unknown cells must null-fill")
	}
}

func TestAugmentEmptyLiteralTakesAll(t *testing.T) {
	aug := Augment(leftTable(), rightTable(), Literal{})
	if aug.NumRows() != 6 {
		t.Fatalf("augment-all rows = %d, want 6", aug.NumRows())
	}
}

func TestReductOperator(t *testing.T) {
	base := leftTable()
	red := Reduct(base, Literal{Attr: "id", Value: Int(2)})
	if red.NumRows() != 2 {
		t.Fatalf("reduct rows = %d, want 2", red.NumRows())
	}
	for _, r := range red.Rows {
		if r[0].AsInt() == 2 {
			t.Fatal("reduct failed to remove id=2")
		}
	}
	// Reducting a non-matching literal is identity on rows.
	same := Reduct(base, Literal{Attr: "id", Value: Int(99)})
	if same.NumRows() != base.NumRows() {
		t.Error("non-matching reduct must keep all rows")
	}
}

// Property: Reduct output is always a subset of rows, and Augment output
// a superset of the base, for arbitrary literal values.
func TestReductAugmentMonotone(t *testing.T) {
	f := func(seed int64, key uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New("A", Schema{{Name: "k", Kind: KindInt}, {Name: "v", Kind: KindFloat}})
		for i := 0; i < 20; i++ {
			a.MustAppend(Row{Int(int64(rng.Intn(5))), Float(rng.Float64())})
		}
		lit := Literal{Attr: "k", Value: Int(int64(key % 5))}
		red := Reduct(a, lit)
		if red.NumRows() > a.NumRows() {
			return false
		}
		aug := Augment(a, a, lit)
		return aug.NumRows() >= a.NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: outer join row count is at least max of the inputs and at
// most the product, and the schema is the union.
func TestOuterJoinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New("A", Schema{{Name: "k", Kind: KindInt}, {Name: "x", Kind: KindFloat}})
		b := New("B", Schema{{Name: "k", Kind: KindInt}, {Name: "y", Kind: KindFloat}})
		na, nb := 1+rng.Intn(8), 1+rng.Intn(8)
		for i := 0; i < na; i++ {
			a.MustAppend(Row{Int(int64(rng.Intn(4))), Float(rng.Float64())})
		}
		for i := 0; i < nb; i++ {
			b.MustAppend(Row{Int(int64(rng.Intn(4))), Float(rng.Float64())})
		}
		j := OuterJoin(a, b)
		if j.NumRows() < na && j.NumRows() < nb {
			return false
		}
		return j.NumRows() <= na*nb+na+nb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
