package table

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered attribute list (R_D in the paper).
type Schema []Column

// Index returns the position of the named attribute, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains the attribute.
func (s Schema) Has(name string) bool { return s.Index(name) >= 0 }

// Names returns the attribute names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Row is one tuple.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is a dataset D(A1..Am): a named tuple bag conforming to a schema.
type Table struct {
	Name   string
	Schema Schema
	Rows   []Row
}

// New returns an empty table with the given name and schema.
func New(name string, schema Schema) *Table {
	return &Table{Name: name, Schema: schema.Clone()}
}

// NumRows returns |D|.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols returns |R_D|.
func (t *Table) NumCols() int { return len(t.Schema) }

// Append adds a row; it must match the schema width.
func (t *Table) Append(r Row) error {
	if len(r) != len(t.Schema) {
		return fmt.Errorf("table %s: row width %d != schema width %d", t.Name, len(r), len(t.Schema))
	}
	t.Rows = append(t.Rows, r)
	return nil
}

// MustAppend adds a row and panics on width mismatch; for generators and tests.
func (t *Table) MustAppend(r Row) {
	if err := t.Append(r); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := New(t.Name, t.Schema)
	out.Rows = make([]Row, len(t.Rows))
	for i, r := range t.Rows {
		out.Rows[i] = r.Clone()
	}
	return out
}

// Column returns the values of one attribute, or nil if absent.
func (t *Table) Column(name string) []Value {
	idx := t.Schema.Index(name)
	if idx < 0 {
		return nil
	}
	out := make([]Value, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[idx]
	}
	return out
}

// ActiveDomain returns adom(A): the sorted distinct non-null values of
// attribute A occurring in the table.
func (t *Table) ActiveDomain(name string) []Value {
	idx := t.Schema.Index(name)
	if idx < 0 {
		return nil
	}
	seen := make(map[string]Value)
	for _, r := range t.Rows {
		v := r[idx]
		if v.IsNull() {
			continue
		}
		seen[v.Key()] = v
	}
	out := make([]Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// NullFraction returns the fraction of null cells in the table, 0 if empty.
func (t *Table) NullFraction() float64 {
	if len(t.Rows) == 0 || len(t.Schema) == 0 {
		return 0
	}
	nulls := 0
	for _, r := range t.Rows {
		for _, v := range r {
			if v.IsNull() {
				nulls++
			}
		}
	}
	return float64(nulls) / float64(len(t.Rows)*len(t.Schema))
}

// String renders a short human-readable summary.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) [%d rows]", t.Name, strings.Join(t.Schema.Names(), ","), len(t.Rows))
	return b.String()
}

// Literal is an equality condition A = a (the literal c in the paper's
// Augment/Reduct operators).
type Literal struct {
	Attr  string
	Value Value
}

// String implements fmt.Stringer.
func (l Literal) String() string { return l.Attr + "=" + l.Value.String() }

// Matches reports whether the row satisfies the literal under the schema.
func (l Literal) Matches(s Schema, r Row) bool {
	idx := s.Index(l.Attr)
	if idx < 0 {
		return false
	}
	return r[idx].Equal(l.Value)
}

// Select returns the tuples of t satisfying pred.
func (t *Table) Select(pred func(Schema, Row) bool) *Table {
	out := New(t.Name+"_sel", t.Schema)
	for _, r := range t.Rows {
		if pred(t.Schema, r) {
			out.Rows = append(out.Rows, r.Clone())
		}
	}
	return out
}

// SelectLiteral returns the tuples satisfying the literal A = a.
func (t *Table) SelectLiteral(l Literal) *Table {
	return t.Select(l.Matches)
}

// Project returns the table restricted to the named attributes, in the
// given order; absent attributes are skipped.
func (t *Table) Project(names ...string) *Table {
	var schema Schema
	var idxs []int
	for _, n := range names {
		if i := t.Schema.Index(n); i >= 0 {
			schema = append(schema, t.Schema[i])
			idxs = append(idxs, i)
		}
	}
	out := New(t.Name+"_proj", schema)
	for _, r := range t.Rows {
		nr := make(Row, len(idxs))
		for j, i := range idxs {
			nr[j] = r[i]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// DropColumn returns the table without the named attribute. If the
// attribute is absent the table is cloned unchanged.
func (t *Table) DropColumn(name string) *Table {
	if !t.Schema.Has(name) {
		return t.Clone()
	}
	keep := make([]string, 0, len(t.Schema)-1)
	for _, c := range t.Schema {
		if c.Name != name {
			keep = append(keep, c.Name)
		}
	}
	out := t.Project(keep...)
	out.Name = t.Name
	return out
}

// MaskColumn returns the table with every cell of the named attribute set
// to null. Unlike DropColumn this keeps the schema intact, matching the
// paper's adom_s(A) = ∅ state semantics ("attribute not involved").
func (t *Table) MaskColumn(name string) *Table {
	idx := t.Schema.Index(name)
	out := t.Clone()
	if idx < 0 {
		return out
	}
	for _, r := range out.Rows {
		r[idx] = Null
	}
	return out
}
