package table

import (
	"testing"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tb := New("s", Schema{
		{Name: "id", Kind: KindInt},
		{Name: "x", Kind: KindFloat},
		{Name: "cat", Kind: KindString},
	})
	tb.MustAppend(Row{Int(1), Float(0.5), Str("a")})
	tb.MustAppend(Row{Int(2), Float(1.5), Str("b")})
	tb.MustAppend(Row{Int(3), Null, Str("a")})
	tb.MustAppend(Row{Int(4), Float(1.5), Null})
	return tb
}

func TestAppendWidthMismatch(t *testing.T) {
	tb := New("t", Schema{{Name: "a", Kind: KindInt}})
	if err := tb.Append(Row{Int(1), Int(2)}); err == nil {
		t.Fatal("expected width-mismatch error")
	}
}

func TestSchemaIndexHas(t *testing.T) {
	tb := sampleTable(t)
	if tb.Schema.Index("x") != 1 {
		t.Errorf("Index(x) = %d, want 1", tb.Schema.Index("x"))
	}
	if tb.Schema.Index("missing") != -1 {
		t.Error("Index of missing attr should be -1")
	}
	if !tb.Schema.Has("cat") || tb.Schema.Has("nope") {
		t.Error("Has misbehaves")
	}
}

func TestActiveDomain(t *testing.T) {
	tb := sampleTable(t)
	ad := tb.ActiveDomain("x")
	if len(ad) != 2 {
		t.Fatalf("adom(x) size = %d, want 2 (nulls excluded, dup collapsed)", len(ad))
	}
	if !ad[0].Equal(Float(0.5)) || !ad[1].Equal(Float(1.5)) {
		t.Errorf("adom(x) = %v, want sorted [0.5 1.5]", ad)
	}
	if got := len(tb.ActiveDomain("cat")); got != 2 {
		t.Errorf("adom(cat) size = %d, want 2", got)
	}
	if tb.ActiveDomain("missing") != nil {
		t.Error("adom of missing attr should be nil")
	}
}

func TestSelectLiteral(t *testing.T) {
	tb := sampleTable(t)
	sel := tb.SelectLiteral(Literal{Attr: "cat", Value: Str("a")})
	if sel.NumRows() != 2 {
		t.Fatalf("select cat=a: %d rows, want 2", sel.NumRows())
	}
	// Null never matches.
	sel = tb.SelectLiteral(Literal{Attr: "x", Value: Float(1.5)})
	if sel.NumRows() != 2 {
		t.Fatalf("select x=1.5: %d rows, want 2", sel.NumRows())
	}
}

func TestProjectOrderAndSkip(t *testing.T) {
	tb := sampleTable(t)
	p := tb.Project("cat", "id", "ghost")
	if p.NumCols() != 2 {
		t.Fatalf("projected cols = %d, want 2", p.NumCols())
	}
	if p.Schema[0].Name != "cat" || p.Schema[1].Name != "id" {
		t.Errorf("projection order broken: %v", p.Schema.Names())
	}
	if p.NumRows() != tb.NumRows() {
		t.Error("projection must preserve row count")
	}
}

func TestDropColumn(t *testing.T) {
	tb := sampleTable(t)
	d := tb.DropColumn("x")
	if d.Schema.Has("x") {
		t.Error("x should be gone")
	}
	if d.NumCols() != 2 || d.NumRows() != 4 {
		t.Errorf("drop produced %dx%d, want 2x4", d.NumCols(), d.NumRows())
	}
	same := tb.DropColumn("ghost")
	if same.NumCols() != tb.NumCols() {
		t.Error("dropping a missing column must be a no-op clone")
	}
}

func TestMaskColumn(t *testing.T) {
	tb := sampleTable(t)
	m := tb.MaskColumn("x")
	if !m.Schema.Has("x") {
		t.Fatal("mask must keep the schema")
	}
	for _, v := range m.Column("x") {
		if !v.IsNull() {
			t.Fatal("masked column should be all null")
		}
	}
	// Original untouched.
	if tb.Rows[0][1].IsNull() {
		t.Error("MaskColumn must not mutate the receiver")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tb := sampleTable(t)
	cp := tb.Clone()
	cp.Rows[0][0] = Int(99)
	if tb.Rows[0][0].AsInt() == 99 {
		t.Error("Clone must deep-copy rows")
	}
}

func TestNullFraction(t *testing.T) {
	tb := sampleTable(t)
	got := tb.NullFraction()
	want := 2.0 / 12.0
	if got != want {
		t.Errorf("NullFraction = %v, want %v", got, want)
	}
	empty := New("e", nil)
	if empty.NullFraction() != 0 {
		t.Error("empty table null fraction should be 0")
	}
}

func TestLiteralString(t *testing.T) {
	l := Literal{Attr: "year", Value: Int(2013)}
	if l.String() != "year=2013" {
		t.Errorf("Literal.String() = %q", l.String())
	}
}
