// Package table implements the relational substrate of MODis: typed,
// null-aware tables with the select/project/join operators that the
// paper's Augment (⊕) and Reduct (⊖) primitives are expressed in.
package table

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the value types a cell may hold.
type Kind uint8

const (
	// KindNull marks a missing value (t.A = ∅ in the paper).
	KindNull Kind = iota
	// KindFloat is a 64-bit floating point value.
	KindFloat
	// KindInt is a 64-bit integer value.
	KindInt
	// KindString is a string value.
	KindString
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single cell. The zero Value is null, so tables can be
// null-filled without further initialization.
type Value struct {
	kind Kind
	f    float64
	i    int64
	s    string
}

// Null is the missing-value cell.
var Null = Value{}

// Float returns a float-typed cell.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Int returns an int-typed cell.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// String returns a string-typed cell.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the type of the cell.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the cell is missing.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsFloat converts the cell to float64. Nulls map to NaN, strings that
// fail to parse map to NaN.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	case KindString:
		if f, err := strconv.ParseFloat(v.s, 64); err == nil {
			return f
		}
		return math.NaN()
	default:
		return math.NaN()
	}
}

// AsInt converts the cell to int64 (truncating floats). Nulls map to 0.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindString:
		if i, err := strconv.ParseInt(v.s, 10, 64); err == nil {
			return i
		}
		return 0
	default:
		return 0
	}
}

// AsString renders the cell for display or CSV output. Nulls render as "".
func (v Value) AsString() string {
	switch v.kind {
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.s
	default:
		return ""
	}
}

// Equal reports value equality. Nulls are never equal to anything,
// matching SQL three-valued comparison semantics for joins.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	if v.kind == o.kind {
		switch v.kind {
		case KindFloat:
			return v.f == o.f
		case KindInt:
			return v.i == o.i
		case KindString:
			return v.s == o.s
		}
	}
	// Cross numeric comparison (int vs float).
	if v.isNumeric() && o.isNumeric() {
		return v.AsFloat() == o.AsFloat()
	}
	return false
}

// Less orders values: nulls first, then numerics by magnitude, then strings.
func (v Value) Less(o Value) bool {
	if v.kind == KindNull {
		return o.kind != KindNull
	}
	if o.kind == KindNull {
		return false
	}
	if v.isNumeric() && o.isNumeric() {
		return v.AsFloat() < o.AsFloat()
	}
	if v.kind == KindString && o.kind == KindString {
		return v.s < o.s
	}
	// Numerics sort before strings.
	return v.isNumeric() && o.kind == KindString
}

func (v Value) isNumeric() bool { return v.kind == KindFloat || v.kind == KindInt }

// Key returns a canonical map key for grouping and hashing. Distinct
// values yield distinct keys; numerically equal int/float collapse.
func (v Value) Key() string {
	switch v.kind {
	case KindFloat:
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindInt:
		return "f" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case KindString:
		return "s" + v.s
	default:
		return ""
	}
}

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.IsNull() {
		return "∅"
	}
	return v.AsString()
}
