package table

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Float(1.5), KindFloat},
		{Int(3), KindInt},
		{Str("x"), KindString},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind(%v) = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Error("zero Value should be null")
	}
	if !math.IsNaN(v.AsFloat()) {
		t.Error("null.AsFloat() should be NaN")
	}
	if v.AsString() != "" {
		t.Errorf("null.AsString() = %q, want empty", v.AsString())
	}
}

func TestValueConversions(t *testing.T) {
	if got := Float(2.5).AsInt(); got != 2 {
		t.Errorf("Float(2.5).AsInt() = %d, want 2", got)
	}
	if got := Int(7).AsFloat(); got != 7 {
		t.Errorf("Int(7).AsFloat() = %v, want 7", got)
	}
	if got := Str("3.25").AsFloat(); got != 3.25 {
		t.Errorf("Str(3.25).AsFloat() = %v, want 3.25", got)
	}
	if got := Str("12").AsInt(); got != 12 {
		t.Errorf("Str(12).AsInt() = %d, want 12", got)
	}
	if !math.IsNaN(Str("abc").AsFloat()) {
		t.Error("non-numeric string should convert to NaN")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Float(1), Float(1), true},
		{Float(1), Int(1), true}, // cross numeric
		{Int(2), Int(2), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Null, Null, false}, // SQL semantics: null != null
		{Null, Float(0), false},
		{Float(0), Null, false},
		{Str("1"), Int(1), false}, // no string coercion in equality
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueLessOrdering(t *testing.T) {
	// nulls < numerics < strings
	if !Null.Less(Float(0)) {
		t.Error("null should sort before numerics")
	}
	if !Float(1).Less(Float(2)) {
		t.Error("1 < 2")
	}
	if !Int(1).Less(Float(1.5)) {
		t.Error("cross-numeric ordering")
	}
	if !Float(9).Less(Str("a")) {
		t.Error("numerics should sort before strings")
	}
	if Str("b").Less(Str("a")) {
		t.Error("string ordering")
	}
}

func TestValueKeyCollapsesNumerics(t *testing.T) {
	if Int(3).Key() != Float(3).Key() {
		t.Error("Int(3) and Float(3) should share a key")
	}
	if Int(3).Key() == Str("3").Key() {
		t.Error("Str(3) must not collide with numeric 3")
	}
	if Null.Key() != "" {
		t.Error("null key should be empty")
	}
}

func TestValueEqualSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		va, vb := Float(a), Float(b)
		return va.Equal(vb) == vb.Equal(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueLessIrreflexive(t *testing.T) {
	f := func(a float64) bool {
		return !Float(a).Less(Float(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueKeyInjectiveOnFloats(t *testing.T) {
	f := func(a, b float64) bool {
		if a == b {
			return true
		}
		return Float(a).Key() != Float(b).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
