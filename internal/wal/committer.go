package wal

import (
	"sync"
	"time"
)

// CommitterOptions tune the write-behind committer: flush when the
// batch reaches Threshold records or when the oldest pending record
// has waited Interval, whichever comes first — the commit-interval ×
// batch-threshold trade-off pair.
type CommitterOptions struct {
	// Interval is the maximum time a record waits before a flush is
	// forced. <= 0 means the default (100ms).
	Interval time.Duration
	// Threshold is the batch size that forces an immediate flush.
	// <= 0 means the default (64).
	Threshold int
	// MaxPending bounds the in-memory backlog while the disk is
	// failing. When the backlog is full, newly enqueued records are
	// dropped (newest-first), so the durable log stays a prefix of the
	// enqueue order. <= 0 means the default (65536).
	MaxPending int
	// RetryBase is the first backoff after a failed flush; backoff
	// doubles per consecutive failure up to RetryCap. Defaults:
	// 50ms base, 5s cap.
	RetryBase time.Duration
	RetryCap  time.Duration
}

func (o *CommitterOptions) withDefaults() CommitterOptions {
	out := *o
	if out.Interval <= 0 {
		out.Interval = 100 * time.Millisecond
	}
	if out.Threshold <= 0 {
		out.Threshold = 64
	}
	if out.MaxPending <= 0 {
		out.MaxPending = 65536
	}
	if out.RetryBase <= 0 {
		out.RetryBase = 50 * time.Millisecond
	}
	if out.RetryCap <= 0 {
		out.RetryCap = 5 * time.Second
	}
	return out
}

// Health is a point-in-time snapshot of a committer's condition —
// what healthz reports per store.
type Health struct {
	// Healthy is false while flushes are failing.
	Healthy bool `json:"healthy"`
	// Err is the most recent flush error, empty when healthy.
	Err string `json:"error,omitempty"`
	// Failures counts consecutive failed flushes (resets on success).
	Failures int `json:"consecutive_failures,omitempty"`
	// Pending is the in-memory backlog not yet durable.
	Pending int `json:"pending"`
	// Dropped counts records discarded because the backlog was full.
	Dropped uint64 `json:"dropped,omitempty"`
	// Flushed counts records made durable since the committer started.
	Flushed uint64 `json:"flushed"`
}

// pendingRec is one queued record and its durability callback.
type pendingRec struct {
	payload   []byte
	enqueued  time.Time
	onDurable func(RecordRef)
}

// Committer is the write-behind half of graceful degradation: the
// producer enqueues and immediately moves on; a background goroutine
// batches records to a flush function. A failing disk never surfaces
// to the producer — the committer keeps the batch, retries with
// capped exponential backoff, sheds the newest records if the backlog
// overflows, and reports it all through Health.
type Committer struct {
	opts  CommitterOptions
	flush func(batch []pendingRec) (int, error)

	mu      sync.Mutex
	cond    *sync.Cond
	pending []pendingRec
	closed  bool

	healthy  bool
	lastErr  error
	failures int
	dropped  uint64
	flushed  uint64

	done chan struct{}
}

// NewCommitter starts a committer draining into flush. flush receives
// a batch in enqueue order and returns how many records of the prefix
// it made durable (it may be short on partial failure); those records'
// onDurable callbacks fire after flush returns, in order. flush is
// called from the committer goroutine only.
func NewCommitter(opts CommitterOptions, flush func(batch []pendingRec) (int, error)) *Committer {
	c := &Committer{
		opts:    opts.withDefaults(),
		flush:   flush,
		healthy: true,
		done:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.loop()
	return c
}

// NewStoreCommitter is the common wiring: a committer that appends
// each record to store and syncs once per batch. Records whose
// Append fails after a successful prefix report that prefix as
// durable; a failed Sync fails the whole batch, and the retried
// batch may re-append records that did land — consumers' replay must
// be idempotent (both wal consumers are: TestSet.Put is first-writer-
// wins per key, ledger entries overwrite by job id).
func NewStoreCommitter(opts CommitterOptions, store *Store) *Committer {
	return NewCommitter(opts, func(batch []pendingRec) (int, error) {
		refs := make([]RecordRef, 0, len(batch))
		for _, rec := range batch {
			ref, err := store.Append(rec.payload)
			if err != nil {
				// Sync what did land so the prefix survives a crash.
				if len(refs) > 0 {
					if serr := store.Sync(); serr != nil {
						return 0, serr
					}
					for i, r := range refs {
						if batch[i].onDurable != nil {
							batch[i].onDurable(r)
						}
					}
				}
				return len(refs), err
			}
			refs = append(refs, ref)
		}
		if err := store.Sync(); err != nil {
			return 0, err
		}
		for i, r := range refs {
			if batch[i].onDurable != nil {
				batch[i].onDurable(r)
			}
		}
		return len(refs), nil
	})
}

// Enqueue hands one record to the committer. It never blocks and
// never fails: if the backlog is at MaxPending the record is counted
// dropped instead (newest-first shedding keeps the durable log a
// prefix of enqueue order). onDurable, if non-nil, runs on the
// committer goroutine once the record is flushed and synced.
func (c *Committer) Enqueue(payload []byte, onDurable func(RecordRef)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.pending) >= c.opts.MaxPending {
		c.dropped++
		return
	}
	c.pending = append(c.pending, pendingRec{
		payload:   payload,
		enqueued:  time.Now(),
		onDurable: onDurable,
	})
	// Always wake the loop: even below threshold it must start the
	// interval clock for an age-based flush.
	c.cond.Signal()
}

// Health snapshots the committer's condition.
func (c *Committer) Health() Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := Health{
		Healthy:  c.healthy,
		Failures: c.failures,
		Pending:  len(c.pending),
		Dropped:  c.dropped,
		Flushed:  c.flushed,
	}
	if c.lastErr != nil {
		h.Err = c.lastErr.Error()
	}
	return h
}

// Flush forces everything pending out now (bypassing backoff) and
// reports whether the backlog fully drained.
func (c *Committer) Flush() bool {
	c.mu.Lock()
	for len(c.pending) > 0 {
		batch := c.pending
		c.pending = nil
		c.mu.Unlock()
		n, err := c.flush(batch)
		c.mu.Lock()
		c.noteFlush(batch, n, err)
		if err != nil {
			break
		}
	}
	drained := len(c.pending) == 0
	c.mu.Unlock()
	return drained
}

// Close makes a final flush attempt (one try, no retry loop — the
// process is exiting) and stops the goroutine. Returns whether the
// backlog fully drained.
func (c *Committer) Close() bool {
	c.mu.Lock()
	if c.closed {
		drained := len(c.pending) == 0
		c.mu.Unlock()
		return drained
	}
	c.closed = true
	c.cond.Signal()
	c.mu.Unlock()
	<-c.done
	return c.Flush()
}

// noteFlush folds one flush attempt's outcome into the health state
// and re-queues the unflushed suffix ahead of anything enqueued since.
// Caller holds c.mu.
func (c *Committer) noteFlush(batch []pendingRec, n int, err error) {
	if n > len(batch) {
		n = len(batch)
	}
	c.flushed += uint64(n)
	rest := batch[n:]
	if len(rest) > 0 {
		c.pending = append(rest[:len(rest):len(rest)], c.pending...)
		// Re-queueing may push the backlog past MaxPending; shed the
		// newest overflow so the durable prefix property holds.
		if over := len(c.pending) - c.opts.MaxPending; over > 0 {
			c.pending = c.pending[:c.opts.MaxPending]
			c.dropped += uint64(over)
		}
	}
	if err != nil {
		c.healthy = false
		c.lastErr = err
		c.failures++
	} else {
		c.healthy = true
		c.lastErr = nil
		c.failures = 0
	}
}

// backoffLocked computes the current retry delay. Caller holds c.mu.
func (c *Committer) backoffLocked() time.Duration {
	if c.failures == 0 {
		return 0
	}
	d := c.opts.RetryBase
	for i := 1; i < c.failures && d < c.opts.RetryCap; i++ {
		d *= 2
	}
	if d > c.opts.RetryCap {
		d = c.opts.RetryCap
	}
	return d
}

func (c *Committer) loop() {
	defer close(c.done)
	c.mu.Lock()
	for {
		// Wait for work, a deadline, or close. The interval timer only
		// matters while something is pending.
		for len(c.pending) == 0 && !c.closed {
			c.mu.Unlock()
			// No pending work: sleep until signaled via a short poll —
			// cond.Wait with a timeout isn't in the stdlib, so wake on
			// Signal (threshold) or poll at the interval for age-based
			// flushes.
			woke := make(chan struct{})
			go func() {
				c.mu.Lock()
				for len(c.pending) == 0 && !c.closed {
					c.cond.Wait()
				}
				c.mu.Unlock()
				close(woke)
			}()
			<-woke
			c.mu.Lock()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}

		// Something is pending. Decide whether to flush now or wait
		// out the remaining interval / backoff.
		wait := time.Duration(0)
		if len(c.pending) < c.opts.Threshold {
			oldest := c.pending[0].enqueued
			if age := time.Since(oldest); age < c.opts.Interval {
				wait = c.opts.Interval - age
			}
		}
		if b := c.backoffLocked(); b > wait {
			wait = b
		}
		if wait > 0 {
			c.mu.Unlock()
			time.Sleep(wait)
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				return
			}
			if len(c.pending) == 0 {
				continue
			}
			// Re-check: unless the threshold tripped while sleeping,
			// only flush if the oldest record has now aged out or we
			// were backing off anyway.
			if len(c.pending) < c.opts.Threshold &&
				time.Since(c.pending[0].enqueued) < c.opts.Interval &&
				c.failures == 0 {
				continue
			}
		}

		batch := c.pending
		c.pending = nil
		c.mu.Unlock()
		n, err := c.flush(batch)
		c.mu.Lock()
		c.noteFlush(batch, n, err)
	}
}
