package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCommitterThresholdFlush(t *testing.T) {
	var mu sync.Mutex
	var flushedBatches [][]int
	c := NewCommitter(CommitterOptions{Interval: time.Hour, Threshold: 4}, func(batch []pendingRec) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		var sizes []int
		for _, r := range batch {
			sizes = append(sizes, len(r.payload))
		}
		flushedBatches = append(flushedBatches, sizes)
		return len(batch), nil
	})
	defer c.Close()

	for i := 0; i < 4; i++ {
		c.Enqueue(make([]byte, i+1), nil)
	}
	waitFor(t, "threshold flush", func() bool {
		return c.Health().Flushed == 4
	})
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, b := range flushedBatches {
		total += len(b)
	}
	if total != 4 {
		t.Fatalf("flushed %d records total, want 4 (batches %v)", total, flushedBatches)
	}
}

func TestCommitterIntervalFlush(t *testing.T) {
	c := NewCommitter(CommitterOptions{Interval: 20 * time.Millisecond, Threshold: 1000}, func(batch []pendingRec) (int, error) {
		return len(batch), nil
	})
	defer c.Close()
	c.Enqueue([]byte("one"), nil)
	waitFor(t, "interval flush", func() bool { return c.Health().Flushed == 1 })
}

func TestCommitterDegradesAndRecovers(t *testing.T) {
	var mu sync.Mutex
	failing := true
	var flushed []string
	c := NewCommitter(CommitterOptions{
		Interval: 5 * time.Millisecond, Threshold: 2,
		RetryBase: time.Millisecond, RetryCap: 10 * time.Millisecond,
	}, func(batch []pendingRec) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		if failing {
			return 0, errors.New("disk on fire")
		}
		for _, r := range batch {
			flushed = append(flushed, string(r.payload))
		}
		return len(batch), nil
	})
	defer c.Close()

	for i := 0; i < 5; i++ {
		c.Enqueue([]byte(fmt.Sprintf("r%d", i)), nil) // never blocks, never errors
	}
	waitFor(t, "degraded health", func() bool {
		h := c.Health()
		return !h.Healthy && h.Failures >= 2 && h.Pending == 5
	})
	h := c.Health()
	if h.Err == "" {
		t.Fatal("degraded health has no error")
	}

	// Heal the disk: everything pending drains, in order, health
	// recovers.
	mu.Lock()
	failing = false
	mu.Unlock()
	waitFor(t, "recovery", func() bool {
		h := c.Health()
		return h.Healthy && h.Flushed == 5 && h.Pending == 0
	})
	mu.Lock()
	defer mu.Unlock()
	for i, s := range flushed {
		if s != fmt.Sprintf("r%d", i) {
			t.Fatalf("flush order %v not enqueue order", flushed)
		}
	}
}

func TestCommitterPartialFlushKeepsOrder(t *testing.T) {
	var mu sync.Mutex
	var flushed []string
	limit := 2 // flush at most 2 records per call, simulating mid-batch failure
	c := NewCommitter(CommitterOptions{
		Interval: time.Millisecond, Threshold: 100,
		RetryBase: time.Millisecond, RetryCap: time.Millisecond,
	}, func(batch []pendingRec) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		n := len(batch)
		if n > limit {
			n = limit
		}
		for _, r := range batch[:n] {
			flushed = append(flushed, string(r.payload))
		}
		if n < len(batch) {
			return n, errors.New("partial")
		}
		return n, nil
	})
	defer c.Close()
	for i := 0; i < 7; i++ {
		c.Enqueue([]byte(fmt.Sprintf("p%d", i)), nil)
	}
	waitFor(t, "all records flushed", func() bool { return c.Health().Flushed == 7 })
	mu.Lock()
	defer mu.Unlock()
	for i, s := range flushed {
		if s != fmt.Sprintf("p%d", i) {
			t.Fatalf("partial flushes broke order: %v", flushed)
		}
	}
}

// TestCommitterOverflowDropsNewest: when the backlog cap is hit the
// committer sheds the NEWEST records, so what eventually lands on
// disk is a strict prefix of the enqueue order (the property the
// memo's valuation-order reconstruction relies on).
func TestCommitterOverflowDropsNewest(t *testing.T) {
	var mu sync.Mutex
	failing := true
	var flushed []string
	c := NewCommitter(CommitterOptions{
		Interval: time.Millisecond, Threshold: 1000, MaxPending: 3,
		RetryBase: time.Millisecond, RetryCap: time.Millisecond,
	}, func(batch []pendingRec) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		if failing {
			return 0, errors.New("still failing")
		}
		for _, r := range batch {
			flushed = append(flushed, string(r.payload))
		}
		return len(batch), nil
	})
	defer c.Close()

	for i := 0; i < 6; i++ {
		c.Enqueue([]byte(fmt.Sprintf("n%d", i)), nil)
		// Give the loop a moment so at most one batch is ever in
		// flight; the exact drop count varies, prefix-ness must not.
		time.Sleep(time.Millisecond)
	}
	waitFor(t, "drops recorded", func() bool { return c.Health().Dropped > 0 })
	mu.Lock()
	failing = false
	mu.Unlock()
	waitFor(t, "drain", func() bool { return c.Health().Pending == 0 })

	mu.Lock()
	defer mu.Unlock()
	for i, s := range flushed {
		if s != fmt.Sprintf("n%d", i) {
			t.Fatalf("flushed %v is not a prefix of enqueue order", flushed)
		}
	}
}

func TestCommitterOnDurable(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(OsFS{}, filepath.Join(dir, "s"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c := NewStoreCommitter(CommitterOptions{Interval: time.Millisecond, Threshold: 100}, store)
	defer c.Close()

	var mu sync.Mutex
	refs := map[string]RecordRef{}
	for i := 0; i < 5; i++ {
		payload := fmt.Sprintf("d%d", i)
		p := payload
		c.Enqueue([]byte(payload), func(ref RecordRef) {
			mu.Lock()
			refs[p] = ref
			mu.Unlock()
		})
	}
	waitFor(t, "durability callbacks", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(refs) == 5
	})
	mu.Lock()
	defer mu.Unlock()
	for p, ref := range refs {
		got, err := store.ReadRecord(ref)
		if err != nil || string(got) != p {
			t.Fatalf("ReadRecord(%v) = %q, %v; want %q", ref, got, err, p)
		}
	}
}

func TestCommitterCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(OsFS{}, filepath.Join(dir, "s"), nil)
	if err != nil {
		t.Fatal(err)
	}
	c := NewStoreCommitter(CommitterOptions{Interval: time.Hour, Threshold: 1000}, store)
	for i := 0; i < 9; i++ {
		c.Enqueue([]byte(fmt.Sprintf("c%d", i)), nil)
	}
	if !c.Close() {
		t.Fatal("Close did not drain a healthy backlog")
	}
	store.Close()

	got := storeState(t, filepath.Join(dir, "s"))
	if len(got) != 9 {
		t.Fatalf("recovered %d records after Close, want 9", len(got))
	}
}

// TestCommitterFaultySyncDegrades drives a real Store through a
// FaultFS with failing fsync: enqueues keep succeeding, health goes
// degraded, and healing the disk drains the backlog.
func TestCommitterFaultySyncDegrades(t *testing.T) {
	ffs := NewFaultFS(OsFS{})
	dir := filepath.Join(t.TempDir(), "s")
	store, err := OpenStore(ffs, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c := NewCommitter(CommitterOptions{
		Interval: time.Millisecond, Threshold: 4,
		RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond,
	}, func(batch []pendingRec) (int, error) {
		for _, r := range batch {
			if _, err := store.Append(r.payload); err != nil {
				return 0, err
			}
		}
		if err := store.Sync(); err != nil {
			return 0, err
		}
		return len(batch), nil
	})
	defer c.Close()

	ffs.SetSyncErr(errors.New("injected fsync failure"))
	for i := 0; i < 3; i++ {
		c.Enqueue([]byte(fmt.Sprintf("f%d", i)), nil)
	}
	waitFor(t, "degraded on fsync failure", func() bool { return !c.Health().Healthy })

	ffs.SetSyncErr(nil)
	waitFor(t, "heal", func() bool {
		h := c.Health()
		return h.Healthy && h.Pending == 0 && h.Flushed >= 3
	})
}
