package wal

import (
	"errors"
	"os"
	"sync"
	"syscall"
)

// FaultFS wraps an FS and injects the failure shapes crash-safety
// cares about: a finite write budget whose exhaustion produces a
// genuine torn tail (the partial write lands on disk before ENOSPC is
// reported, exactly like a full disk under SIGKILL), plain write
// errors, and fsync errors. Faults toggle at runtime so tests can
// break the disk mid-run and heal it later.
type FaultFS struct {
	Under FS

	mu sync.Mutex
	// writeBudget, when >= 0, is the number of bytes remaining before
	// writes start failing with ENOSPC. A write that crosses the
	// boundary is written partially — the torn-tail shape.
	writeBudget int64
	// writeErr, when non-nil, fails every write outright (no bytes
	// land).
	writeErr error
	// syncErr, when non-nil, fails every Sync and SyncDir.
	syncErr error
}

// NewFaultFS wraps under with no faults armed.
func NewFaultFS(under FS) *FaultFS {
	return &FaultFS{Under: under, writeBudget: -1}
}

// SetWriteBudget arms ENOSPC after n more payload bytes (a crossing
// write lands partially). n < 0 disarms.
func (ffs *FaultFS) SetWriteBudget(n int64) {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	ffs.writeBudget = n
}

// SetWriteErr makes every write fail with err (nil disarms). Unlike
// the budget, no bytes land.
func (ffs *FaultFS) SetWriteErr(err error) {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	ffs.writeErr = err
}

// SetSyncErr makes every Sync/SyncDir fail with err (nil disarms).
func (ffs *FaultFS) SetSyncErr(err error) {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	ffs.syncErr = err
}

// OpenFile implements FS.
func (ffs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := ffs.Under.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: ffs, f: f}, nil
}

// MkdirAll implements FS.
func (ffs *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return ffs.Under.MkdirAll(path, perm)
}

// Rename implements FS.
func (ffs *FaultFS) Rename(oldpath, newpath string) error {
	return ffs.Under.Rename(oldpath, newpath)
}

// Remove implements FS.
func (ffs *FaultFS) Remove(name string) error { return ffs.Under.Remove(name) }

// ReadDir implements FS.
func (ffs *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return ffs.Under.ReadDir(name) }

// Stat implements FS.
func (ffs *FaultFS) Stat(name string) (os.FileInfo, error) { return ffs.Under.Stat(name) }

// SyncDir implements FS.
func (ffs *FaultFS) SyncDir(path string) error {
	ffs.mu.Lock()
	err := ffs.syncErr
	ffs.mu.Unlock()
	if err != nil {
		return err
	}
	return ffs.Under.SyncDir(path)
}

type faultFile struct {
	fs *FaultFS
	f  File
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	if err := f.fs.writeErr; err != nil {
		f.fs.mu.Unlock()
		return 0, err
	}
	allow := len(p)
	torn := false
	if f.fs.writeBudget >= 0 {
		if int64(allow) > f.fs.writeBudget {
			allow = int(f.fs.writeBudget)
			torn = true
		}
		f.fs.writeBudget -= int64(allow)
	}
	f.fs.mu.Unlock()

	if !torn {
		return f.f.Write(p)
	}
	n := 0
	if allow > 0 {
		var err error
		n, err = f.f.Write(p[:allow])
		if err != nil {
			return n, err
		}
	}
	return n, errors.New("wal: injected: " + syscall.ENOSPC.Error())
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	err := f.fs.syncErr
	f.fs.mu.Unlock()
	if err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *faultFile) Truncate(size int64) error { return f.f.Truncate(size) }

func (f *faultFile) Close() error { return f.f.Close() }
