// Package wal is the crash-safe persistence substrate of the serving
// layer: an append-only, length-prefixed, CRC-checksummed record log
// ([Log]) with snapshot+log compaction ([Store]), and a write-behind
// [Committer] tunable by commit interval × batch threshold that
// degrades gracefully — a full disk or a failing fsync never surfaces
// as an error to the producer, only as [Health].
//
// Everything goes through the [FS] seam so tests can inject short
// writes, ENOSPC, fsync failures, and SIGKILL-shaped torn tails
// ([FaultFS]); recovery's standing contract is that it never panics,
// never loads a checksum-invalid record, and never refuses to start —
// a torn tail is truncated at the first bad record and appends resume
// from there.
package wal

import (
	"io"
	"os"
)

// File is the subset of *os.File the log needs. Writes append (logs
// are opened O_APPEND), reads are positional.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes — recovery's torn-tail
	// repair and a failed append's rollback.
	Truncate(size int64) error
}

// FS is the filesystem seam every wal structure goes through; OsFS is
// the real one, FaultFS the injectable one.
type FS interface {
	// OpenFile opens name with os.OpenFile flags.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// MkdirAll creates the directory path.
	MkdirAll(path string, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat describes a file.
	Stat(name string) (os.FileInfo, error)
	// SyncDir flushes directory metadata (entry renames/creates) to
	// stable storage, best effort.
	SyncDir(path string) error
}

// OsFS is the real filesystem.
type OsFS struct{}

// OpenFile implements FS.
func (OsFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// MkdirAll implements FS.
func (OsFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Rename implements FS.
func (OsFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OsFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// Stat implements FS.
func (OsFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// SyncDir implements FS: fsync the directory so renames and creates
// within it are durable.
func (OsFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
