package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Record framing: every record is an 8-byte header — payload length
// and CRC-32C of the payload, both little-endian uint32 — followed by
// the payload. Recovery walks the frames from the start and stops at
// the first frame that does not check out (short header, absurd
// length, short payload, or checksum mismatch); everything before it
// is the valid prefix, everything from it on is a torn tail and is
// truncated.
const recordHeader = 8

// maxRecordLen bounds a single record; a length field beyond it is
// treated as corruption, not an allocation request.
const maxRecordLen = 64 << 20

// castagnoli is the CRC-32C table (the checksum used by most modern
// WALs; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord reports a record that failed its checksum or
// framing on a positional read.
var ErrCorruptRecord = errors.New("wal: corrupt record")

// Log is one append-only record file. It is not safe for concurrent
// use; Store serializes access to its logs.
type Log struct {
	fsys FS
	path string
	f    File
	size int64 // bytes of valid, framed records
	// broken is set when a failed append could not be rolled back;
	// the next append re-tries the truncate before writing so a torn
	// region never has valid frames appended after it.
	broken bool
}

// OpenLog opens (creating if absent) the record log at path, replays
// every valid record into replay (which may be nil) in append order,
// truncates any torn tail, and returns the log positioned for
// appends. Each replayed record's byte offset is passed along so
// callers can index records for positional reads later.
//
// Recovery never refuses a readable file: a torn or corrupt tail —
// short write, bad checksum, garbage length — is cut at the first bad
// frame. Only opening or truncating the file itself can fail.
func OpenLog(fsys FS, path string, replay func(off int64, payload []byte) error) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{fsys: fsys, path: path, f: f}
	info, err := fsys.Stat(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	fileSize := info.Size()

	var off int64
	var hdr [recordHeader]byte
	var buf []byte
	for off+recordHeader <= fileSize {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			break
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecordLen || off+recordHeader+n > fileSize {
			break
		}
		if int64(cap(buf)) < n {
			buf = make([]byte, n)
		}
		payload := buf[:n]
		if _, err := f.ReadAt(payload, off+recordHeader); err != nil {
			break
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			break
		}
		if replay != nil {
			if err := replay(off, payload); err != nil {
				f.Close()
				return nil, err
			}
		}
		off += recordHeader + n
	}
	if off < fileSize {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail of %s at %d: %w", path, off, err)
		}
	}
	l.size = off
	return l, nil
}

// Size returns the valid byte length of the log.
func (l *Log) Size() int64 { return l.size }

// Append frames and writes one record, returning its byte offset. A
// failed or short write is rolled back by truncating to the last
// valid size, so the on-disk prefix stays a clean sequence of frames;
// if even the rollback fails, the log remembers and re-tries it
// before the next append.
func (l *Log) Append(payload []byte) (off int64, err error) {
	if l.broken {
		if err := l.f.Truncate(l.size); err != nil {
			return 0, fmt.Errorf("wal: log tail still torn: %w", err)
		}
		l.broken = false
	}
	frame := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[recordHeader:], payload)
	n, err := l.f.Write(frame)
	if err != nil || n != len(frame) {
		if err == nil {
			err = io.ErrShortWrite
		}
		if terr := l.f.Truncate(l.size); terr != nil {
			l.broken = true
		}
		return 0, fmt.Errorf("wal: append to %s: %w", l.path, err)
	}
	off = l.size
	l.size += int64(len(frame))
	return off, nil
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error { return l.f.Sync() }

// ReadRecord positionally reads and verifies the record at off —
// report fetches from the spilled ledger. A frame that does not check
// out returns ErrCorruptRecord.
func (l *Log) ReadRecord(off int64) ([]byte, error) {
	if off < 0 || off+recordHeader > l.size {
		return nil, fmt.Errorf("%w: offset %d outside log", ErrCorruptRecord, off)
	}
	var hdr [recordHeader]byte
	if _, err := l.f.ReadAt(hdr[:], off); err != nil {
		return nil, err
	}
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxRecordLen || off+recordHeader+n > l.size {
		return nil, fmt.Errorf("%w: bad frame at %d", ErrCorruptRecord, off)
	}
	payload := make([]byte, n)
	if _, err := l.f.ReadAt(payload, off+recordHeader); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch at %d", ErrCorruptRecord, off)
	}
	return payload, nil
}

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }
