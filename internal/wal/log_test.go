package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func writeRecords(t *testing.T, fsys FS, path string, payloads [][]byte) {
	t.Helper()
	l, err := OpenLog(fsys, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, fsys FS, path string) ([][]byte, []int64) {
	t.Helper()
	var got [][]byte
	var offs []int64
	l, err := OpenLog(fsys, path, func(off int64, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		offs = append(offs, off)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return got, offs
}

func samplePayloads(n int, rng *rand.Rand) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, rng.Intn(200))
		rng.Read(p)
		out[i] = p
	}
	return out
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	rng := rand.New(rand.NewSource(1))
	payloads := samplePayloads(50, rng)
	writeRecords(t, OsFS{}, path, payloads)

	got, offs := replayAll(t, OsFS{}, path)
	if len(got) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}

	// Positional reads see the same payloads.
	l, err := OpenLog(OsFS{}, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i, off := range offs {
		p, err := l.ReadRecord(off)
		if err != nil {
			t.Fatalf("ReadRecord(%d): %v", off, err)
		}
		if !bytes.Equal(p, payloads[i]) {
			t.Fatalf("positional record %d mismatch", i)
		}
	}
}

// TestLogTornTailEveryOffset is the kill-recover property: truncate
// the file at EVERY byte length and verify recovery loads exactly the
// records wholly contained in the prefix, never errors, never loads a
// torn record, and the log accepts appends afterwards.
func TestLogTornTailEveryOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	payloads := samplePayloads(8, rng)

	// Record the clean frame boundaries.
	boundaries := []int64{0}
	for _, p := range payloads {
		boundaries = append(boundaries, boundaries[len(boundaries)-1]+recordHeader+int64(len(p)))
	}
	total := boundaries[len(boundaries)-1]

	master := filepath.Join(t.TempDir(), "master.wal")
	writeRecords(t, OsFS{}, master, payloads)
	blob, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) != total {
		t.Fatalf("file is %d bytes, want %d", len(blob), total)
	}

	dir := t.TempDir()
	for cut := int64(0); cut <= total; cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.wal", cut))
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, _ := replayAll(t, OsFS{}, path)

		// Complete records in the prefix:
		want := 0
		for want < len(payloads) && boundaries[want+1] <= cut {
			want++
		}
		if len(got) != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), want)
		}
		for i := 0; i < want; i++ {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut=%d: record %d corrupted by recovery", cut, i)
			}
		}

		// The log must accept appends after truncation.
		l, err := OpenLog(OsFS{}, path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		l.Close()
		got2, _ := replayAll(t, OsFS{}, path)
		if len(got2) != want+1 || !bytes.Equal(got2[want], []byte("post-recovery")) {
			t.Fatalf("cut=%d: post-recovery append not replayed", cut)
		}
	}
}

// TestLogBitFlip corrupts single bytes in the middle of the file:
// recovery must keep the intact prefix and drop the rest, never
// returning a record whose checksum does not match.
func TestLogBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	payloads := samplePayloads(6, rng)
	master := filepath.Join(t.TempDir(), "master.wal")
	writeRecords(t, OsFS{}, master, payloads)
	blob, err := os.ReadFile(master)
	if err != nil {
		t.Fatal(err)
	}

	boundaries := []int64{0}
	for _, p := range payloads {
		boundaries = append(boundaries, boundaries[len(boundaries)-1]+recordHeader+int64(len(p)))
	}

	dir := t.TempDir()
	for trial := 0; trial < 64; trial++ {
		pos := rng.Intn(len(blob))
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 1 << uint(rng.Intn(8))
		path := filepath.Join(dir, fmt.Sprintf("flip-%d.wal", trial))
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, _ := replayAll(t, OsFS{}, path)

		// The record containing the flipped byte (or any later one)
		// must not survive; everything strictly before it must.
		hit := 0
		for hit < len(payloads) && boundaries[hit+1] <= int64(pos) {
			hit++
		}
		if len(got) > len(payloads) {
			t.Fatalf("trial %d: more records out than in", trial)
		}
		if len(got) > hit {
			t.Fatalf("trial %d: flipped byte %d inside record %d, but %d records recovered", trial, pos, hit, len(got))
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("trial %d: corrupt record %d returned by recovery", trial, i)
			}
		}
	}
}

func TestLogEnospcTornTail(t *testing.T) {
	ffs := NewFaultFS(OsFS{})
	path := filepath.Join(t.TempDir(), "t.wal")
	l, err := OpenLog(ffs, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}

	// Arm a budget that tears the next append mid-frame. Append must
	// fail AND roll the file back so the log stays clean.
	ffs.SetWriteBudget(5)
	if _, err := l.Append([]byte("this record is torn")); err == nil {
		t.Fatal("append with exhausted budget succeeded")
	}
	ffs.SetWriteBudget(-1)
	if _, err := l.Append([]byte("second")); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	l.Sync()
	l.Close()

	got, _ := replayAll(t, OsFS{}, path)
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Fatalf("recovered %q, want [first second]", got)
	}
}

// TestLogEnospcNoRollback simulates the worst case: the partial frame
// cannot be rolled back (truncate unavailable mid-fault) because the
// process dies right there. Recovery must cut the torn frame.
func TestLogEnospcNoRollback(t *testing.T) {
	ffs := NewFaultFS(OsFS{})
	path := filepath.Join(t.TempDir(), "t.wal")
	l, err := OpenLog(ffs, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	ffs.SetWriteBudget(3)
	l.Append([]byte("torn away")) // partial bytes land, then the "crash":
	// do NOT close/rollback; reopen from the on-disk state.

	got, _ := replayAll(t, OsFS{}, path)
	if len(got) != 1 || string(got[0]) != "kept" {
		t.Fatalf("recovered %q, want [kept]", got)
	}
}

func TestLogReadRecordCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	writeRecords(t, OsFS{}, path, [][]byte{[]byte("abc")})
	l, err := OpenLog(OsFS{}, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.ReadRecord(1); err == nil {
		t.Fatal("misaligned read succeeded")
	}
	if _, err := l.ReadRecord(l.Size() + 100); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
}
