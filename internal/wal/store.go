package wal

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// RecordRef locates one record inside a Store: which generation,
// which file of the pair, and the byte offset. Refs are invalidated
// by Compact — callers that index records rebuild their refs from
// Compact's emit results.
type RecordRef struct {
	Gen  uint64
	Snap bool
	Off  int64
}

// Store is a snapshot+log pair in one directory: `snap-<gen>.wal`
// holds a full state image written by Compact, `log-<gen>.wal` the
// appends since. Snapshots are written to a temp file, synced, and
// renamed, so a snapshot that exists is complete; a crash mid-compact
// leaves the old generation intact and at most a stray .tmp that the
// next open removes. Recovery replays the highest generation's
// snapshot then its log, tolerating a torn log tail (and, after an
// incomplete rename fsync, a torn snapshot tail) by truncation.
//
// A Store is safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	fsys FS
	dir  string
	gen  uint64
	snap *Log // nil when the generation has no snapshot
	log  *Log
}

func snapName(gen uint64) string { return fmt.Sprintf("snap-%016d.wal", gen) }
func logName(gen uint64) string  { return fmt.Sprintf("log-%016d.wal", gen) }

func parseGen(name, prefix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".wal")
	var g uint64
	if _, err := fmt.Sscanf(mid, "%d", &g); err != nil {
		return 0, false
	}
	return g, true
}

// OpenStore opens (creating if needed) the store at dir and replays
// its current state — snapshot records first, then log records, in
// append order — into replay (may be nil). Stale generations and temp
// files are cleaned up best-effort.
func OpenStore(fsys FS, dir string, replay func(ref RecordRef, payload []byte) error) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gen uint64
	var stale []string
	gens := map[uint64]bool{}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			stale = append(stale, name)
			continue
		}
		if g, ok := parseGen(name, "snap-"); ok {
			gens[g] = true
			if g > gen {
				gen = g
			}
		}
		if g, ok := parseGen(name, "log-"); ok {
			gens[g] = true
			if g > gen {
				gen = g
			}
		}
	}
	s := &Store{fsys: fsys, dir: dir, gen: gen}

	snapPath := dir + "/" + snapName(gen)
	if _, err := fsys.Stat(snapPath); err == nil {
		snap, err := OpenLog(fsys, snapPath, func(off int64, payload []byte) error {
			if replay == nil {
				return nil
			}
			return replay(RecordRef{Gen: gen, Snap: true, Off: off}, payload)
		})
		if err != nil {
			return nil, err
		}
		s.snap = snap
	}
	log, err := OpenLog(fsys, dir+"/"+logName(gen), func(off int64, payload []byte) error {
		if replay == nil {
			return nil
		}
		return replay(RecordRef{Gen: gen, Snap: false, Off: off}, payload)
	})
	if err != nil {
		if s.snap != nil {
			s.snap.Close()
		}
		return nil, err
	}
	s.log = log

	// Best-effort cleanup: older generations are superseded, temp
	// files are failed compactions.
	for g := range gens {
		if g == gen {
			continue
		}
		stale = append(stale, snapName(g), logName(g))
	}
	sort.Strings(stale)
	for _, name := range stale {
		s.fsys.Remove(dir + "/" + name)
	}
	return s, nil
}

// Append writes one record to the current log (unsynced; call Sync to
// make a batch durable) and returns its ref.
func (s *Store) Append(payload []byte) (RecordRef, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	off, err := s.log.Append(payload)
	if err != nil {
		return RecordRef{}, err
	}
	return RecordRef{Gen: s.gen, Snap: false, Off: off}, nil
}

// Sync flushes the current log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Sync()
}

// LogSize returns the current log's valid byte length — the
// compaction trigger input.
func (s *Store) LogSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Size()
}

// ReadRecord fetches and verifies the record at ref. Refs from
// generations already compacted away report corruption rather than
// resurrecting stale files.
func (s *Store) ReadRecord(ref RecordRef) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readRecordLocked(ref)
}

func (s *Store) readRecordLocked(ref RecordRef) ([]byte, error) {
	if ref.Gen != s.gen {
		return nil, fmt.Errorf("%w: ref from compacted generation %d (current %d)", ErrCorruptRecord, ref.Gen, s.gen)
	}
	if ref.Snap {
		if s.snap == nil {
			return nil, fmt.Errorf("%w: generation %d has no snapshot", ErrCorruptRecord, ref.Gen)
		}
		return s.snap.ReadRecord(ref.Off)
	}
	return s.log.ReadRecord(ref.Off)
}

// Compact rewrites the store as a fresh generation: emit is called
// once with a read (fetch an existing record by ref) and a write
// (append a record to the new snapshot, returning its new ref); when
// emit returns nil the snapshot is synced, renamed into place, a
// fresh empty log is started, and the old generation is deleted. On
// any error the current generation is left untouched.
func (s *Store) Compact(emit func(read func(RecordRef) ([]byte, error), write func([]byte) (RecordRef, error)) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	newGen := s.gen + 1
	tmpPath := s.dir + "/" + snapName(newGen) + ".tmp"
	s.fsys.Remove(tmpPath)
	tmpFile, err := s.fsys.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	tmp := &Log{fsys: s.fsys, path: tmpPath, f: tmpFile}
	fail := func(err error) error {
		tmp.Close()
		s.fsys.Remove(tmpPath)
		return err
	}

	write := func(payload []byte) (RecordRef, error) {
		off, err := tmp.Append(payload)
		if err != nil {
			return RecordRef{}, err
		}
		return RecordRef{Gen: newGen, Snap: true, Off: off}, nil
	}
	if err := emit(s.readRecordLocked, write); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	snapPath := s.dir + "/" + snapName(newGen)
	if err := s.fsys.Rename(tmpPath, snapPath); err != nil {
		return fail(err)
	}
	s.fsys.SyncDir(s.dir)
	newLog, err := OpenLog(s.fsys, s.dir+"/"+logName(newGen), nil)
	if err != nil {
		// The new snapshot exists and is complete; without its log the
		// generation is unusable, so drop it and stay on the old one.
		tmp.Close()
		s.fsys.Remove(snapPath)
		return err
	}

	oldGen := s.gen
	oldSnap, oldLog := s.snap, s.log
	s.gen, s.snap, s.log = newGen, tmp, newLog
	if oldSnap != nil {
		oldSnap.Close()
	}
	oldLog.Close()
	s.fsys.Remove(s.dir + "/" + snapName(oldGen))
	s.fsys.Remove(s.dir + "/" + logName(oldGen))
	s.fsys.SyncDir(s.dir)
	return nil
}

// Close closes the store's files.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.snap != nil {
		err = s.snap.Close()
	}
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	return err
}
