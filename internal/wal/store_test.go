package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func storeState(t *testing.T, dir string) [][]byte {
	t.Helper()
	var got [][]byte
	s, err := OpenStore(OsFS{}, dir, func(ref RecordRef, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	return got
}

func TestStoreAppendRecover(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(OsFS{}, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var refs []RecordRef
	for i := 0; i < 10; i++ {
		ref, err := s.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, ref := range refs {
		p, err := s.ReadRecord(ref)
		if err != nil || string(p) != fmt.Sprintf("rec-%d", i) {
			t.Fatalf("ReadRecord(%v) = %q, %v", ref, p, err)
		}
	}
	s.Close()

	got := storeState(t, dir)
	if len(got) != 10 {
		t.Fatalf("recovered %d records, want 10", len(got))
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(OsFS{}, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var refs []RecordRef
	for i := 0; i < 20; i++ {
		ref, err := s.Append([]byte(fmt.Sprintf("v-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	s.Sync()

	// Compact, keeping only even records — the state-rewrite shape.
	newRefs := map[int]RecordRef{}
	err = s.Compact(func(read func(RecordRef) ([]byte, error), write func([]byte) (RecordRef, error)) error {
		for i, ref := range refs {
			if i%2 != 0 {
				continue
			}
			p, err := read(ref)
			if err != nil {
				return err
			}
			nref, err := write(p)
			if err != nil {
				return err
			}
			newRefs[i] = nref
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Old refs are dead, new refs resolve, post-compact appends work.
	if _, err := s.ReadRecord(refs[0]); err == nil {
		t.Fatal("stale ref resolved after compaction")
	}
	for i, ref := range newRefs {
		p, err := s.ReadRecord(ref)
		if err != nil || string(p) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("post-compact ReadRecord(%v) = %q, %v", ref, p, err)
		}
	}
	if _, err := s.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	s.Sync()
	s.Close()

	got := storeState(t, dir)
	if len(got) != len(newRefs)+1 {
		t.Fatalf("recovered %d records, want %d", len(got), len(newRefs)+1)
	}
	if string(got[len(got)-1]) != "after" {
		t.Fatalf("log record lost across compaction: %q", got[len(got)-1])
	}

	// Exactly one generation remains on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("want snap+log only, got %v", names)
	}
}

// TestStoreCrashMidCompact simulates dying between writing the
// snapshot temp file and the rename: the next open must ignore the
// .tmp and serve the old generation intact.
func TestStoreCrashMidCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(OsFS{}, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		s.Append([]byte(fmt.Sprintf("keep-%d", i)))
	}
	s.Sync()
	s.Close()

	// Fake a half-finished compaction: a .tmp with garbage.
	tmp := filepath.Join(dir, snapName(1)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial snapshot garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	got := storeState(t, dir)
	if len(got) != 5 {
		t.Fatalf("recovered %d records, want 5", len(got))
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale .tmp not cleaned up")
	}
}

// TestStoreCompactFailureKeepsOldGen breaks the disk mid-compaction:
// the old generation must stay authoritative and later reads/appends
// must keep working once healed.
func TestStoreCompactFailureKeepsOldGen(t *testing.T) {
	ffs := NewFaultFS(OsFS{})
	dir := t.TempDir()
	s, err := OpenStore(ffs, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var refs []RecordRef
	for i := 0; i < 5; i++ {
		ref, _ := s.Append([]byte(fmt.Sprintf("r-%d", i)))
		refs = append(refs, ref)
	}
	s.Sync()

	ffs.SetWriteBudget(10) // tear the snapshot write
	err = s.Compact(func(read func(RecordRef) ([]byte, error), write func([]byte) (RecordRef, error)) error {
		for _, ref := range refs {
			p, err := read(ref)
			if err != nil {
				return err
			}
			if _, err := write(p); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("compaction with torn writes succeeded")
	}
	ffs.SetWriteBudget(-1)

	// Old generation still serves.
	for i, ref := range refs {
		p, err := s.ReadRecord(ref)
		if err != nil || string(p) != fmt.Sprintf("r-%d", i) {
			t.Fatalf("ReadRecord(%v) after failed compact = %q, %v", ref, p, err)
		}
	}
	if _, err := s.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
	s.Sync()
	s.Close()

	got := storeState(t, dir)
	if len(got) != 6 {
		t.Fatalf("recovered %d records, want 6", len(got))
	}
}

func TestStoreTornLogTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(OsFS{}, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Append([]byte("whole"))
	s.Sync()
	s.Close()

	// Tear the log tail by appending garbage bytes.
	logPath := filepath.Join(dir, logName(0))
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 9, 9})
	f.Close()

	got := storeState(t, dir)
	if len(got) != 1 || string(got[0]) != "whole" {
		t.Fatalf("recovered %q, want [whole]", got)
	}
}

func TestStoreReplayOrderSnapshotThenLog(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(OsFS{}, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	refs := []RecordRef{}
	for i := 0; i < 3; i++ {
		ref, _ := s.Append([]byte(fmt.Sprintf("snap-%d", i)))
		refs = append(refs, ref)
	}
	s.Sync()
	if err := s.Compact(func(read func(RecordRef) ([]byte, error), write func([]byte) (RecordRef, error)) error {
		for _, ref := range refs {
			p, err := read(ref)
			if err != nil {
				return err
			}
			if _, err := write(p); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s.Append([]byte("log-0"))
	s.Sync()
	s.Close()

	got := storeState(t, dir)
	var names []string
	for _, p := range got {
		names = append(names, string(p))
	}
	want := "snap-0,snap-1,snap-2,log-0"
	if strings.Join(names, ",") != want {
		t.Fatalf("replay order %v, want %s", names, want)
	}
}

func TestStoreRefsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	var ref RecordRef
	{
		s, err := OpenStore(OsFS{}, dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref, err = s.Append([]byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		s.Sync()
		s.Close()
	}
	var refs []RecordRef
	s, err := OpenStore(OsFS{}, dir, func(r RecordRef, payload []byte) error {
		refs = append(refs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if len(refs) != 1 || refs[0] != ref {
		t.Fatalf("replayed ref %v, want %v", refs, ref)
	}
	p, err := s.ReadRecord(ref)
	if err != nil || !bytes.Equal(p, []byte("payload")) {
		t.Fatalf("ReadRecord across reopen = %q, %v", p, err)
	}
}
