// Package workpool is the daemon-global exact-inference worker pool:
// a fixed set of worker goroutines servicing any number of task
// queues with deficit round-robin (DRR) fairness. The pool bounds the
// process's total inference concurrency — total CPU spent on model
// evaluation never exceeds the worker count, however many workload
// shards are active — and the scheduler guarantees that a queue
// saturating the node cannot starve another queue's tasks beyond a
// bounded wait.
//
// Costs are unknown before a task runs (a model inference's duration
// depends on the state it evaluates), so the scheduler charges each
// queue's deficit counter *after* service with the measured duration
// — the deferred-charge variant of DRR. A queue is eligible while its
// deficit is positive; when every backlogged queue has exhausted its
// deficit, all of them are replenished together, preserving their
// relative debt, so a queue that just received a long service waits
// out proportionally more rounds before running again.
package workpool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options tune a Pool. The zero value is ready to use.
type Options struct {
	// Workers is the fixed number of worker goroutines (default
	// GOMAXPROCS). This is the hard bound on concurrently executing
	// tasks across every queue of the pool.
	Workers int
	// Quantum is the service time credited to each backlogged queue
	// per replenish round (default 5ms). Smaller quanta interleave
	// queues more finely; larger ones favor throughput.
	Quantum time.Duration
}

// defaultQuantum is small relative to a typical exact inference, so
// two backlogged queues interleave at single-task granularity.
const defaultQuantum = 5 * time.Millisecond

// Pool is a fixed-size worker set fed by per-queue DRR scheduling.
// Create queues with NewQueue and submit work with Queue.Run; Close
// drains everything already submitted and stops the workers.
type Pool struct {
	workers int
	quantum int64 // nanoseconds

	mu      sync.Mutex
	cond    *sync.Cond
	ring    []*Queue // backlogged queues, round-robin order
	cursor  int
	pending int // queued tasks across all queues
	closed  bool
	wg      sync.WaitGroup

	busy atomic.Int64
}

// New starts a pool with opts.Workers worker goroutines.
func New(opts Options) *Pool {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Quantum <= 0 {
		opts.Quantum = defaultQuantum
	}
	p := &Pool{workers: opts.Workers, quantum: int64(opts.Quantum)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the fixed worker count.
func (p *Pool) Workers() int { return p.workers }

// Close drains every task already submitted, then stops the workers
// and waits for them to exit. Run calls racing or following Close
// execute their tasks inline on the calling goroutine, so the
// ExactRunner contract (every task runs exactly once) holds across
// shutdown.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// PoolStats is a point-in-time view of the pool.
type PoolStats struct {
	// Workers is the fixed worker count.
	Workers int
	// Busy is how many workers are executing a task right now.
	Busy int
	// Pending is how many tasks are queued across all queues.
	Pending int
}

// Stats snapshots the pool's gauges.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	pending := p.pending
	p.mu.Unlock()
	return PoolStats{Workers: p.workers, Busy: int(p.busy.Load()), Pending: pending}
}

// task is one queued unit of work.
type task struct {
	fn    func()
	batch *batch
	enq   time.Time
}

// batch tracks one Run call's tasks; done closes when the last
// finishes.
type batch struct {
	remaining atomic.Int64
	done      chan struct{}
}

// Queue is one flow's submission lane into the pool — the serving
// layer gives each workload shard its own queue, so DRR fairness is
// fairness between shards. Queues are cheap: an idle queue holds no
// resources and needs no teardown.
type Queue struct {
	pool  *Pool
	label string
	limit int

	// Guarded by pool.mu.
	tasks    []task
	head     int
	inflight int
	deficit  int64
	inRing   bool

	doneCount atomic.Int64
	serviceNS atomic.Int64
	waitNS    atomic.Int64
}

// NewQueue returns a new submission queue. label names the queue in
// stats; limit caps how many of the queue's tasks may execute at
// once — its share of the pool — with limit <= 0 meaning no cap
// beyond the pool's worker count.
func (p *Pool) NewQueue(label string, limit int) *Queue {
	return &Queue{pool: p, label: label, limit: limit}
}

// Label returns the queue's stats label.
func (q *Queue) Label() string { return q.label }

// QueueStats is a point-in-time view of one queue.
type QueueStats struct {
	Label string
	// Pending is how many of the queue's tasks are waiting.
	Pending int
	// Inflight is how many are executing right now.
	Inflight int
	// Done counts tasks completed over the queue's lifetime.
	Done int64
	// Service is total execution time across completed tasks.
	Service time.Duration
	// Wait is total queue time (submit to start) across started tasks.
	Wait time.Duration
}

// Stats snapshots the queue's counters.
func (q *Queue) Stats() QueueStats {
	p := q.pool
	p.mu.Lock()
	pending := len(q.tasks) - q.head
	inflight := q.inflight
	p.mu.Unlock()
	return QueueStats{
		Label:    q.label,
		Pending:  pending,
		Inflight: inflight,
		Done:     q.doneCount.Load(),
		Service:  time.Duration(q.serviceNS.Load()),
		Wait:     time.Duration(q.waitNS.Load()),
	}
}

// Run submits the tasks to the pool on this queue and blocks until
// every one has executed — the shape fst.ExactRunner requires. Tasks
// must be self-contained: the pool runs them in scheduler order on
// worker goroutines, bounded by the pool's worker count and the
// queue's share limit. On a closed pool the tasks run inline on the
// calling goroutine instead, so no submission is ever lost.
func (q *Queue) Run(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	b := &batch{done: make(chan struct{})}
	b.remaining.Store(int64(len(tasks)))
	now := time.Now()
	p := q.pool
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		for _, fn := range tasks {
			fn()
		}
		return
	}
	for _, fn := range tasks {
		q.tasks = append(q.tasks, task{fn: fn, batch: b, enq: now})
	}
	p.pending += len(tasks)
	if !q.inRing {
		p.ring = append(p.ring, q)
		q.inRing = true
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	<-b.done
}

// worker is one pool goroutine: pick the next task under the DRR
// policy, execute it, charge its queue the measured duration.
func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		t, q, ok := p.next()
		if !ok {
			return
		}
		start := time.Now()
		q.waitNS.Add(int64(start.Sub(t.enq)))
		p.busy.Add(1)
		t.fn()
		p.busy.Add(-1)
		dur := time.Since(start)
		q.doneCount.Add(1)
		q.serviceNS.Add(int64(dur))
		p.mu.Lock()
		q.inflight--
		q.deficit -= int64(dur)
		p.mu.Unlock()
		// The finished task may have freed a share-limit slot its own
		// queue was blocked on; the pick loop below services anything
		// newly eligible, but a waiting peer worker must also be woken.
		p.cond.Signal()
		if t.batch.remaining.Add(-1) == 0 {
			close(t.batch.done)
		}
	}
}

// next blocks until a task is schedulable (or the pool is closed and
// drained) and dequeues it.
func (p *Pool) next() (task, *Queue, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if q := p.pickLocked(); q != nil {
			t := q.tasks[q.head]
			q.tasks[q.head] = task{} // release the closure
			q.head++
			q.inflight++
			p.pending--
			if q.head == len(q.tasks) {
				// Drained: leave the ring and reset the buffer. Leftover
				// credit is forfeited (standard DRR), debt is kept — a
				// queue that just consumed a long service re-enters the
				// ring owing for it.
				q.tasks = q.tasks[:0]
				q.head = 0
				if q.deficit > 0 {
					q.deficit = 0
				}
				p.dropFromRingLocked(q)
			}
			return t, q, true
		}
		if p.closed && p.pending == 0 {
			return task{}, nil, false
		}
		p.cond.Wait()
	}
}

// pickLocked chooses the next queue to service: scanning the ring
// from the cursor, the first backlogged queue under its share limit
// with positive deficit. When every candidate has exhausted its
// deficit, all candidates are replenished together — topped up so the
// least indebted reaches exactly one quantum, preserving relative
// debt — and the scan repeats. Returns nil when no queue has a
// schedulable task. Callers hold p.mu.
func (p *Pool) pickLocked() *Queue {
	for pass := 0; pass < 2; pass++ {
		candidates := false
		var maxDef int64
		n := len(p.ring)
		for i := 0; i < n; i++ {
			idx := (p.cursor + i) % n
			q := p.ring[idx]
			if q.head == len(q.tasks) {
				continue // all queued tasks already picked up
			}
			if q.limit > 0 && q.inflight >= q.limit {
				continue // at its share cap
			}
			if q.deficit > 0 {
				p.cursor = (idx + 1) % n
				return q
			}
			if !candidates || q.deficit > maxDef {
				maxDef = q.deficit
			}
			candidates = true
		}
		if !candidates {
			return nil
		}
		// Replenish round: every candidate gains the same credit, so
		// the richest lands exactly on one quantum and relative debt
		// carries over.
		boost := p.quantum - maxDef
		for _, q := range p.ring {
			if q.head == len(q.tasks) {
				continue
			}
			if q.limit > 0 && q.inflight >= q.limit {
				continue
			}
			q.deficit += boost
			if q.deficit > p.quantum {
				q.deficit = p.quantum
			}
		}
	}
	return nil
}

// dropFromRingLocked removes a drained queue from the ring, keeping
// the cursor pointing at the same next queue. Callers hold p.mu.
func (p *Pool) dropFromRingLocked(q *Queue) {
	for i, r := range p.ring {
		if r != q {
			continue
		}
		p.ring = append(p.ring[:i], p.ring[i+1:]...)
		if i < p.cursor {
			p.cursor--
		}
		if len(p.ring) == 0 {
			p.cursor = 0
		} else {
			p.cursor %= len(p.ring)
		}
		q.inRing = false
		return
	}
}

// Global is the process-wide pool library users share: created on
// first use with GOMAXPROCS workers and never closed. The serving
// daemon does not use it — a Scheduler owns an explicit pool sized by
// -workers — but a bare engine run with WithParallelism(n > 1) routes
// its exact inferences here, so even unmanaged runs are bounded by
// one process-global worker set.
func Global() *Pool {
	globalOnce.Do(func() {
		globalPool = New(Options{})
	})
	return globalPool
}

var (
	globalOnce sync.Once
	globalPool *Pool
)
