package workpool_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workpool"
)

// TestRunExecutesAll: every submitted task runs exactly once and Run
// returns only after all have completed.
func TestRunExecutesAll(t *testing.T) {
	p := workpool.New(workpool.Options{Workers: 4})
	defer p.Close()
	q := p.NewQueue("t", 0)
	var ran [64]atomic.Int32
	tasks := make([]func(), len(ran))
	for i := range tasks {
		i := i
		tasks[i] = func() { ran[i].Add(1) }
	}
	q.Run(tasks)
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times, want 1", i, got)
		}
	}
	if st := q.Stats(); st.Done != int64(len(tasks)) || st.Pending != 0 || st.Inflight != 0 {
		t.Fatalf("queue stats after drain: %+v", st)
	}
}

// TestConcurrencyBound: the pool never executes more tasks at once
// than its worker count, no matter how many queues feed it — the
// bounded-CPU property the daemon-global pool exists for.
func TestConcurrencyBound(t *testing.T) {
	const workers = 2
	p := workpool.New(workpool.Options{Workers: workers})
	defer p.Close()

	var cur, high atomic.Int32
	work := func() {
		c := cur.Add(1)
		for {
			h := high.Load()
			if c <= h || high.CompareAndSwap(h, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
	}

	var wg sync.WaitGroup
	for shard := 0; shard < 4; shard++ {
		q := p.NewQueue("shard", 0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tasks := make([]func(), 25)
			for i := range tasks {
				tasks[i] = work
			}
			q.Run(tasks)
		}()
	}
	wg.Wait()
	if h := high.Load(); h > workers {
		t.Fatalf("observed %d concurrent tasks, worker bound is %d", h, workers)
	}
}

// TestShareLimit: a queue's limit caps its own in-flight tasks while
// the rest of the pool stays available to other queues.
func TestShareLimit(t *testing.T) {
	p := workpool.New(workpool.Options{Workers: 4})
	defer p.Close()

	var cur, high atomic.Int32
	limited := p.NewQueue("limited", 1)
	free := p.NewQueue("free", 0)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		tasks := make([]func(), 12)
		for i := range tasks {
			tasks[i] = func() {
				c := cur.Add(1)
				for {
					h := high.Load()
					if c <= h || high.CompareAndSwap(h, c) {
						break
					}
				}
				time.Sleep(200 * time.Microsecond)
				cur.Add(-1)
			}
		}
		limited.Run(tasks)
	}()
	go func() {
		defer wg.Done()
		tasks := make([]func(), 12)
		for i := range tasks {
			tasks[i] = func() { time.Sleep(100 * time.Microsecond) }
		}
		free.Run(tasks)
	}()
	wg.Wait()
	if h := high.Load(); h > 1 {
		t.Fatalf("limited queue reached %d concurrent tasks, limit is 1", h)
	}
}

// TestFairness: a queue saturating the pool cannot stall another
// queue's submission beyond a bounded wait — the newcomer is serviced
// after at most a few of the saturator's tasks, not after its whole
// backlog.
func TestFairness(t *testing.T) {
	p := workpool.New(workpool.Options{Workers: 1, Quantum: time.Millisecond})
	defer p.Close()

	hog := p.NewQueue("hog", 0)
	guest := p.NewQueue("guest", 0)

	// Saturate: a long stream of 1ms tasks, resubmitted continuously.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tasks := make([]func(), 32)
			for i := range tasks {
				tasks[i] = func() { time.Sleep(time.Millisecond) }
			}
			hog.Run(tasks)
		}
	}()

	// Let the hog build a backlog, then time the guest's single task.
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	guest.Run([]func(){func() {}})
	wait := time.Since(start)
	close(stop)
	wg.Wait()

	// DRR bounds the guest's wait to the in-flight task's tail plus a
	// handful of scheduling rounds — far under the hog's full backlog
	// (32 × 1ms per Run, resubmitted forever). The generous bound keeps
	// the test robust on slow CI machines while still distinguishing
	// "bounded wait" from "drain the hog first".
	if wait > 200*time.Millisecond {
		t.Fatalf("guest task waited %v behind a saturating queue", wait)
	}
}

// TestCloseDrains: tasks already submitted when Close is called still
// run; Run calls after Close execute inline.
func TestCloseDrains(t *testing.T) {
	p := workpool.New(workpool.Options{Workers: 2})
	q := p.NewQueue("t", 0)
	var n atomic.Int32
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tasks := make([]func(), 16)
		for i := range tasks {
			tasks[i] = func() { time.Sleep(time.Millisecond); n.Add(1) }
		}
		q.Run(tasks)
	}()
	time.Sleep(2 * time.Millisecond)
	p.Close()
	wg.Wait()
	if got := n.Load(); got != 16 {
		t.Fatalf("drained %d tasks, want 16", got)
	}
	// After close: inline execution on the caller.
	q.Run([]func(){func() { n.Add(1) }})
	if got := n.Load(); got != 17 {
		t.Fatalf("post-close Run executed %d tasks, want 17 total", got)
	}
}

// TestStats: gauges and counters reflect the work done.
func TestStats(t *testing.T) {
	p := workpool.New(workpool.Options{Workers: 2})
	defer p.Close()
	if got := p.Workers(); got != 2 {
		t.Fatalf("Workers() = %d, want 2", got)
	}
	q := p.NewQueue("stats", 0)
	tasks := make([]func(), 8)
	for i := range tasks {
		tasks[i] = func() { time.Sleep(500 * time.Microsecond) }
	}
	q.Run(tasks)
	st := q.Stats()
	if st.Done != 8 {
		t.Fatalf("Done = %d, want 8", st.Done)
	}
	if st.Service <= 0 {
		t.Fatalf("Service = %v, want > 0", st.Service)
	}
	ps := p.Stats()
	if ps.Workers != 2 || ps.Pending != 0 {
		t.Fatalf("pool stats after drain: %+v", ps)
	}
}
