package modis

import (
	"fmt"

	"repro/internal/table"
)

// AppendResult summarizes one committed row append: the table version
// the engine advanced to and what the versioned memo did with the
// valuations recorded so far.
type AppendResult struct {
	// Version is the table version after the append (a cold engine
	// starts at 0; each Append adds 1).
	Version uint64
	// Rows is the size of this batch; TotalRows the universal row
	// count after it.
	Rows      int
	TotalRows int
	// Invalidated counts memoized valuations dropped because the new
	// rows changed their state's selected row set; Retained counts the
	// valuations that survived (their states' cleared literals remove
	// every appended row, so their datasets are untouched).
	Invalidated int
	Retained    int
}

// Append commits rows to the engine's universal table, extending the
// frozen discovery structures in place — decoded matrix columns,
// per-literal row bitmaps, dense rank orders — and advancing the
// versioned memo so exactly the valuations the new rows touched are
// dropped. The entry layout is frozen: appended rows join existing
// literal clusters or none, and a run after Append is byte-identical
// to a cold run over the concatenated table (the standing determinism
// contract, extended to streams).
//
// Append must not overlap Run/Submit executions on this engine: the
// serving layer drains in-flight runs first (see modis/serve), and
// library callers sequence Append between runs themselves. An error
// leaves the engine unchanged.
func (e *Engine) Append(rows []table.Row) (AppendResult, error) {
	if e.err != nil {
		return AppendResult{}, e.err
	}
	version, invalidated, err := e.cfg.Append(rows)
	if err != nil {
		return AppendResult{}, fmt.Errorf("modis: append: %w", err)
	}
	return AppendResult{
		Version:     version,
		Rows:        len(rows),
		TotalRows:   len(e.cfg.Space.Universal.Rows),
		Invalidated: invalidated,
		Retained:    e.cfg.Tests.Len(),
	}, nil
}

// TableVersion returns the engine's current table version: the number
// of Append batches committed since construction (0 = cold).
func (e *Engine) TableVersion() uint64 { return e.cfg.Space.Version() }

// RowCount returns the current universal row count.
func (e *Engine) RowCount() int { return len(e.cfg.Space.Universal.Rows) }
