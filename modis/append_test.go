package modis_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/fst"
	"repro/internal/ml"
	"repro/internal/table"
	"repro/modis"
)

// streamUniversal builds the base table of the streaming tests, with
// streamTestRow as the shared row generator so appended batches carry
// the same value structure as the rows present at construction.
func streamUniversal(rows int) *table.Table {
	u := table.New("D_U", table.Schema{
		{Name: "a", Kind: table.KindFloat},
		{Name: "b", Kind: table.KindFloat},
		{Name: "target", Kind: table.KindInt},
	})
	for i := 0; i < rows; i++ {
		u.MustAppend(streamTestRow(i))
	}
	return u
}

func streamTestRow(i int) table.Row {
	return table.Row{
		table.Float(float64(i % 3)),
		table.Float(float64(i % 4)),
		table.Int(int64(i % 2)),
	}
}

// streamShapeModel derives two opposing measures from the dataset
// shape alone. Unlike the other test models it does NOT normalize by
// the universal table's size: the memo survives an append exactly for
// states whose dataset is unchanged, so a memoized valuation is only
// reusable when it is a pure function of that dataset — a model
// peeking at the (grown) universal table would make retained entries
// stale by construction. That purity is the valuation side of the
// streaming contract.
type streamShapeModel struct{}

func (streamShapeModel) Name() string { return "stream-shape" }

func (streamShapeModel) Evaluate(d *table.Table) ([]float64, error) {
	rows := float64(d.NumRows())
	cols := float64(d.NumCols())
	return []float64{
		0.1 + rows*cols/1000,
		0.1 + 1/(1+rows),
	}, nil
}

// newStreamConfig wires the full streaming stack: an ML encoder as the
// space's column source (so Space.Append exercises the matrix delta
// path), optionally a post-materialization UDF. No estimator — every
// valuation is exact, so results are a pure function of the state.
func newStreamConfig(tb testing.TB, u *table.Table, udf bool) *fst.Config {
	tb.Helper()
	enc := ml.NewTableEncoder(u, "target")
	sp := fst.NewSpace(u, "target", fst.SpaceConfig{MaxLiteralsPerAttr: 4, Columns: enc})
	if udf {
		sp.RegisterUDF(fst.ImputeMeansUDF("target"))
	}
	return &fst.Config{
		Space: sp,
		Model: streamShapeModel{},
		Measures: []fst.Measure{
			{Name: "p0", Normalize: fst.Identity(1e-3)},
			{Name: "p1", Normalize: fst.Identity(1e-3)},
		},
	}
}

// coldTwin builds the reference engine of the determinism contract: a
// cold space over the concatenated table sharing the streamed space's
// frozen entry layout (Rebuild), with its own fresh encoder.
func coldTwin(tb testing.TB, streamed *fst.Config, base *table.Table, appended []table.Row) *modis.Engine {
	tb.Helper()
	u2, err := table.Concat("D_U", base, appended)
	if err != nil {
		tb.Fatal(err)
	}
	sp := streamed.Space.Rebuild(u2)
	sp.SetColumnSource(ml.NewTableEncoder(u2, "target"))
	return modis.NewEngine(&fst.Config{
		Space:    sp,
		Model:    streamShapeModel{},
		Measures: streamed.Measures,
	})
}

func streamSkylineJSON(tb testing.TB, rep *modis.Report) string {
	tb.Helper()
	blob, err := json.Marshal(rep.Skyline)
	if err != nil {
		tb.Fatal(err)
	}
	return string(blob)
}

// The tentpole contract, end to end: after k Append batches — solo
// rows or multi-row, UDFs registered or not, memo warm or cold — every
// algorithm's skyline is byte-identical to a cold engine built over
// the concatenated table, at parallelism 1 and above it.
func TestAppendMatchesColdEngine(t *testing.T) {
	cases := []struct {
		name    string
		udf     bool
		warm    bool // run (and memoize) before the first append
		batches []int
	}{
		{"solo-rows", false, false, []int{1, 1, 1}},
		{"batched", false, false, []int{4, 1, 7}},
		{"batched-udf", true, false, []int{3, 5}},
		{"warm-memo", false, true, []int{2, 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const baseRows = 24
			base := streamUniversal(baseRows)
			cfg := newStreamConfig(t, streamUniversal(baseRows), tc.udf)
			eng := modis.NewEngine(cfg)
			ctx := context.Background()
			opts := func(par int) []modis.Option {
				return []modis.Option{
					modis.WithEpsilon(0.15), modis.WithMaxLevel(3),
					modis.WithSeed(2), modis.WithK(3), modis.WithParallelism(par),
				}
			}
			if tc.warm {
				if _, err := eng.Run(ctx, "bi", opts(1)...); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(11))
			next := baseRows
			var all []table.Row
			for bi, n := range tc.batches {
				var batch []table.Row
				for i := 0; i < n; i++ {
					batch = append(batch, streamTestRow(next+rng.Intn(12)))
					next++
				}
				all = append(all, batch...)
				res, err := eng.Append(batch)
				if err != nil {
					t.Fatal(err)
				}
				if res.Version != uint64(bi+1) || res.Rows != n {
					t.Fatalf("batch %d: result %+v", bi, res)
				}
			}
			if eng.TableVersion() != uint64(len(tc.batches)) || eng.RowCount() != baseRows+len(all) {
				t.Fatalf("engine reports version %d rows %d, want %d/%d",
					eng.TableVersion(), eng.RowCount(), len(tc.batches), baseRows+len(all))
			}

			cold := coldTwin(t, cfg, base, all)
			for _, algo := range allAlgorithms() {
				if tc.udf && algo == "exact" {
					// exact over UDF spaces is the slowest pairing; the
					// other cases cover it.
					continue
				}
				for _, par := range []int{1, 4} {
					got, err := eng.Run(ctx, algo, opts(par)...)
					if err != nil {
						t.Fatalf("%s/p%d streamed: %v", algo, par, err)
					}
					want, err := cold.Run(ctx, algo, opts(par)...)
					if err != nil {
						t.Fatalf("%s/p%d cold: %v", algo, par, err)
					}
					if g, w := streamSkylineJSON(t, got), streamSkylineJSON(t, want); g != w {
						t.Errorf("%s at parallelism %d: streamed skyline diverges from cold\nstreamed: %s\ncold:     %s",
							algo, par, g, w)
					}
				}
			}
		})
	}
}

// Append keeps the memo it can prove untouched: batch rows whose value
// point an existing literal removes leave every valuation of states
// clearing that literal in place, and the next run re-valuates only
// what was dropped.
func TestAppendPreservesUnaffectedMemo(t *testing.T) {
	cfg := newStreamConfig(t, streamUniversal(24), false)
	eng := modis.NewEngine(cfg)
	ctx := context.Background()
	opts := []modis.Option{
		modis.WithEpsilon(0.15), modis.WithMaxLevel(3), modis.WithSeed(2), modis.WithK(3),
	}
	first, err := eng.Run(ctx, "bi", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if first.Valuated == 0 {
		t.Fatal("cold run valuated nothing")
	}
	memoBefore := cfg.Tests.Len()

	// One row at a single existing value point: states clearing the
	// literal covering it are untouched, everything else invalidates.
	res, err := eng.Append([]table.Row{streamTestRow(0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Invalidated == 0 || res.Retained == 0 {
		t.Fatalf("append invalidated %d retained %d — want both nonzero (precise invalidation)",
			res.Invalidated, res.Retained)
	}
	if res.Invalidated+res.Retained != memoBefore {
		t.Errorf("invalidated %d + retained %d != memo size %d",
			res.Invalidated, res.Retained, memoBefore)
	}

	// The rerun re-valuates at most what was dropped — retained entries
	// answer from the memo — and still matches the cold reference.
	second, err := eng.Run(ctx, "bi", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if second.Valuated == 0 || second.Valuated >= first.Valuated {
		t.Errorf("post-append run valuated %d of originally %d — want partial recomputation",
			second.Valuated, first.Valuated)
	}
	cold := coldTwin(t, cfg, streamUniversal(24), []table.Row{streamTestRow(0)})
	want, err := cold.Run(ctx, "bi", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if streamSkylineJSON(t, second) != streamSkylineJSON(t, want) {
		t.Error("post-append skyline diverges from the cold reference")
	}
}

// Append failures leave the engine fully usable at its old version.
func TestAppendErrorLeavesEngineIntact(t *testing.T) {
	cfg := newStreamConfig(t, streamUniversal(24), false)
	eng := modis.NewEngine(cfg)
	if _, err := eng.Append([]table.Row{{table.Float(1)}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if eng.TableVersion() != 0 || eng.RowCount() != 24 {
		t.Fatalf("failed append moved the engine: version %d rows %d", eng.TableVersion(), eng.RowCount())
	}
	if _, err := eng.Run(context.Background(), "bi", modis.WithMaxLevel(2)); err != nil {
		t.Fatalf("engine unusable after failed append: %v", err)
	}
}
