package modis_test

import (
	"context"
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/modis"
)

// Example runs the bi-directional search over a small synthetic movie
// workload through the public engine: one engine per configuration,
// algorithms picked by registry key, knobs set by functional options.
func Example() {
	w := datagen.T1Movie(datagen.TaskConfig{Rows: 120})
	eng := modis.NewEngine(w.NewConfig(true))

	rep, err := eng.Run(context.Background(), "bi",
		modis.WithBudget(120),
		modis.WithEpsilon(0.1),
		modis.WithMaxLevel(4),
		modis.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	best := rep.Best(0)
	fmt.Println("algorithm:", rep.Algorithm)
	fmt.Println("skyline non-empty:", len(rep.Skyline) > 0)
	fmt.Println("best candidate found:", best != nil)
	// Output:
	// algorithm: bi
	// skyline non-empty: true
	// best candidate found: true
}
