package modis

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one asynchronously running discovery: the handle [Engine.Submit]
// returns. A job runs on its own goroutine; the handle observes and
// controls it from any number of goroutines:
//
//	job, err := eng.Submit(ctx, "bi", modis.WithBudget(300))
//	...
//	for ev := range job.Events() {
//		log.Printf("level %d, skyline %d", ev.Level, ev.SkylineSize)
//	}
//	rep, err := job.Result()
//
// [Job.Done] closes when the run terminates, [Job.Result] blocks until
// then, [Job.Cancel] aborts the search (the job then finishes with
// context.Canceled), and [Job.Events] streams the run's progress
// events. [Engine.Run] is this API's synchronous wrapper: Submit
// followed by Result.
type Job struct {
	id        string
	algorithm string
	submitted time.Time
	cancel    context.CancelFunc
	done      chan struct{}
	started   atomic.Bool

	mu       sync.Mutex
	events   []Event
	wake     chan struct{} // closed and replaced on every record; stays closed after finish
	finished bool
	report   *Report
	err      error
}

func newJob(algorithm string) *Job {
	return &Job{
		id:        newJobID(),
		algorithm: algorithm,
		submitted: time.Now(),
		done:      make(chan struct{}),
		wake:      make(chan struct{}),
	}
}

// jobSeq disambiguates job ids if the system's entropy source fails.
var jobSeq atomic.Int64

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("job-%d", jobSeq.Add(1))
	}
	return "job-" + hex.EncodeToString(b[:])
}

// ID returns the job's unique identifier, also stamped into the
// report's JobID.
func (j *Job) ID() string { return j.id }

// Algorithm returns the canonical registry key the job runs.
func (j *Job) Algorithm() string { return j.algorithm }

// Done returns a channel that closes when the run terminates —
// completed, failed, or cancelled. After Done, Result returns
// immediately.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result blocks until the run terminates and returns its report. A
// cancelled or expired run returns (nil, ctx.Err()); a failed run
// returns the search error. Result may be called any number of times.
func (j *Job) Result() (*Report, error) {
	<-j.done
	return j.report, j.err
}

// Cancel aborts the run: the search observes cancellation at
// frontier-pop and valuation granularity and the job finishes with
// context.Canceled. Cancel is idempotent and a no-op once the job is
// done.
func (j *Job) Cancel() { j.cancel() }

// Started reports whether the search has begun executing — false while
// the job waits in a scheduler's admission queue.
func (j *Job) Started() bool { return j.started.Load() }

// LastEvent returns the most recent progress event, for cheap polling
// (status endpoints); ok is false before the first event.
func (j *Job) LastEvent() (ev Event, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.events) == 0 {
		return Event{}, false
	}
	return j.events[len(j.events)-1], true
}

// Events streams the run's progress events — the same events, in the
// same order, a [WithProgress] callback observes — ending with the
// final Done event, after which the channel closes. Each call returns
// an independent stream that replays from the run's first event, so
// late subscribers miss nothing. The caller must drain the channel (it
// closes soon after the job finishes); to stop consuming early, use
// [Job.EventsContext] and cancel its context.
func (j *Job) Events() <-chan Event { return j.EventsContext(context.Background()) }

// EventsContext is Events with a subscription lifetime: the stream
// ends — the channel closes without necessarily delivering the run's
// remaining events — when ctx is cancelled. Wire layers use it to drop
// a stream when its client disconnects without touching the job.
func (j *Job) EventsContext(ctx context.Context) <-chan Event {
	return j.EventsFrom(ctx, 0)
}

// EventsFrom is EventsContext resuming mid-stream: the returned
// channel replays recorded events starting at index from (0-based)
// instead of the run's first event. Event indices are stable across
// subscriptions — event i is the same event on every stream — which is
// what lets a dropped wire stream reconnect and pick up exactly after
// the last event it delivered (SSE Last-Event-ID). A from beyond the
// recorded history waits for that event to happen.
func (j *Job) EventsFrom(ctx context.Context, from int) <-chan Event {
	if from < 0 {
		from = 0
	}
	ch := make(chan Event)
	go j.streamFrom(ctx, ch, from)
	return ch
}

// streamFrom replays recorded events from the given index, waiting for
// more until the job finishes.
func (j *Job) streamFrom(ctx context.Context, ch chan Event, from int) {
	defer close(ch)
	i := from
	for {
		j.mu.Lock()
		for i >= len(j.events) {
			if j.finished {
				j.mu.Unlock()
				return
			}
			w := j.wake
			j.mu.Unlock()
			select {
			case <-w:
			case <-ctx.Done():
				return
			}
			j.mu.Lock()
		}
		ev := j.events[i]
		i++
		j.mu.Unlock()
		select {
		case ch <- ev:
		case <-ctx.Done():
			return
		}
	}
}

// record appends a progress event and wakes the streams. It runs on
// the search goroutine (the progress hook's contract), so it stays
// O(1): delivery happens on the subscribers' goroutines.
func (j *Job) record(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	close(j.wake)
	j.wake = make(chan struct{})
	j.mu.Unlock()
}

// finish publishes the terminal state and releases Done, Result, and
// the event streams.
func (j *Job) finish(rep *Report, err error) {
	j.mu.Lock()
	j.report, j.err = rep, err
	j.finished = true
	close(j.wake)
	j.mu.Unlock()
	close(j.done)
}
