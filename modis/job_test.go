package modis_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/modis"
)

func TestSubmitJobLifecycle(t *testing.T) {
	eng := modis.NewEngine(newTestConfig(t, nil))
	job, err := eng.Submit(context.Background(), "bi",
		modis.WithBudget(80), modis.WithMaxLevel(3))
	if err != nil {
		t.Fatal(err)
	}
	if job.ID() == "" || job.Algorithm() != "bi" {
		t.Fatalf("job handle malformed: id=%q algo=%q", job.ID(), job.Algorithm())
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job never finished")
	}
	rep, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if rep.JobID != job.ID() {
		t.Errorf("report JobID = %q, want %q", rep.JobID, job.ID())
	}
	if rep.Queued < 0 {
		t.Errorf("negative queue time %v", rep.Queued)
	}
	if len(rep.Skyline) == 0 {
		t.Error("empty skyline")
	}
	// Result is repeatable.
	rep2, err := job.Result()
	if err != nil || rep2 != rep {
		t.Errorf("second Result = (%p, %v), want same report", rep2, err)
	}
}

func TestSubmitReportsErrorsSynchronously(t *testing.T) {
	eng := modis.NewEngine(newTestConfig(t, nil))
	if _, err := eng.Submit(context.Background(), "no-such-algo"); err == nil {
		t.Error("unknown algorithm must fail at Submit")
	}
	if _, err := eng.Submit(context.Background(), "bi", modis.WithEpsilon(-1)); err == nil {
		t.Error("invalid option must fail at Submit")
	}
}

func TestJobEventsReplayAndOrdering(t *testing.T) {
	// The in-process WithProgress hook is the ordering reference: a
	// job's event stream must deliver the same events in the same order,
	// and every late subscription must replay the full sequence.
	var direct []modis.Event
	eng := modis.NewEngine(newTestConfig(t, nil))
	job, err := eng.Submit(context.Background(), "bi",
		modis.WithBudget(80), modis.WithMaxLevel(3),
		modis.WithProgress(func(ev modis.Event) { direct = append(direct, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	var streamed []modis.Event
	for ev := range job.Events() {
		streamed = append(streamed, ev)
	}
	if _, err := job.Result(); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(direct) {
		t.Fatalf("streamed %d events, progress hook saw %d", len(streamed), len(direct))
	}
	for i := range direct {
		if direct[i] != streamed[i] {
			t.Fatalf("event %d diverges: hook %+v stream %+v", i, direct[i], streamed[i])
		}
	}
	if !streamed[len(streamed)-1].Done {
		t.Error("stream must end with the Done event")
	}
	// A subscriber arriving after completion still gets the whole run.
	var replay []modis.Event
	for ev := range job.Events() {
		replay = append(replay, ev)
	}
	if len(replay) != len(direct) {
		t.Errorf("post-completion replay got %d events, want %d", len(replay), len(direct))
	}
	if last, ok := job.LastEvent(); !ok || !last.Done {
		t.Errorf("LastEvent = (%+v, %v), want the Done event", last, ok)
	}
}

func TestJobEventsContextStopsStream(t *testing.T) {
	eng := modis.NewEngine(newTestConfig(t, nil))
	job, err := eng.Submit(context.Background(), "bi",
		modis.WithBudget(80), modis.WithMaxLevel(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := job.EventsContext(ctx)
	cancel()
	for range ch { // must terminate even though nothing drains the run
	}
	if _, err := job.Result(); err != nil {
		t.Fatal(err)
	}
}

func TestJobCancelReturnsPromptly(t *testing.T) {
	started := make(chan struct{})
	cfg := newTestConfig(t, func(calls int) {
		if calls == 2 {
			close(started)
		}
		time.Sleep(time.Millisecond)
	})
	job, err := modis.NewEngine(cfg).Submit(context.Background(), "exact")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	job.Cancel()
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job did not finish promptly")
	}
	rep, err := job.Result()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("cancelled job must not carry a report")
	}
	job.Cancel() // idempotent
}

func TestJobDeadlineSurfacesAsTerminalError(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	cfg := newTestConfig(t, func(int) { time.Sleep(2 * time.Millisecond) })
	job, err := modis.NewEngine(cfg).Submit(ctx, "bi")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Result(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestJobAdmissionGateAndQueueTime(t *testing.T) {
	gate := make(chan struct{})
	eng := modis.NewEngine(newTestConfig(t, nil))
	job, err := eng.Submit(context.Background(), "bi",
		modis.WithBudget(40), modis.WithMaxLevel(2),
		modis.WithAdmission(func(ctx context.Context) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if job.Started() {
		t.Error("job must not start before admission")
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	rep, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !job.Started() {
		t.Error("finished job must report started")
	}
	if rep.Queued < 15*time.Millisecond {
		t.Errorf("queue time %v does not cover the admission wait", rep.Queued)
	}
}

func TestJobAdmissionHonorsCancel(t *testing.T) {
	eng := modis.NewEngine(newTestConfig(t, nil))
	job, err := eng.Submit(context.Background(), "bi",
		modis.WithAdmission(func(ctx context.Context) error {
			<-ctx.Done()
			return ctx.Err()
		}))
	if err != nil {
		t.Fatal(err)
	}
	job.Cancel()
	if _, err := job.Result(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestUnknownAlgorithmErrorIsTyped(t *testing.T) {
	_, err := modis.NewEngine(newTestConfig(t, nil)).Run(context.Background(), "genetic")
	var ua *modis.UnknownAlgorithmError
	if !errors.As(err, &ua) {
		t.Fatalf("err = %T %v, want *UnknownAlgorithmError", err, err)
	}
	if ua.Name != "genetic" || len(ua.Known) == 0 {
		t.Errorf("typed error incomplete: %+v", ua)
	}
	for _, known := range allAlgorithms() {
		found := false
		for _, k := range ua.Known {
			if k == known {
				found = true
			}
		}
		if !found {
			t.Errorf("Known %v misses %q", ua.Known, known)
		}
	}
}
