// Package modis is the public API of the MODis reproduction: skyline
// dataset discovery over a configured search space (Wang et al., EDBT
// 2025). It is the one stable surface over the search substrate in
// internal/core — binaries, examples, and tests run algorithms through
// it rather than picking internal function pointers.
//
// An [Engine] is constructed once per configuration and reused across
// runs; the memoized valuation record (the paper's test set T) carries
// over, so repeated or overlapping runs get cheaper. Algorithms are
// selected by registry key — "apx", "bi", "nobi", "div", "exact" —
// and tuned with functional options that validate eagerly instead of
// silently defaulting:
//
//	eng := modis.NewEngine(w.NewConfig(true))
//	rep, err := eng.Run(ctx, "bi",
//		modis.WithBudget(300),
//		modis.WithEpsilon(0.1),
//		modis.WithMaxLevel(6),
//	)
//
// Every run honors its context: cancellation or deadline expiry is
// checked at frontier-pop granularity inside the search loops and
// surfaces as ctx.Err() with no partial result. [WithProgress] streams
// per-level snapshots (frontier size, valuations used, incumbent
// skyline size) while a search runs, and the result is a
// JSON-serializable [Report].
//
// # The job API
//
// Run is the synchronous face of an asynchronous job model.
// [Engine.Submit] starts the same run and returns a [Job] handle
// immediately: [Job.Done] closes on termination, [Job.Result] blocks
// for the report, [Job.Cancel] aborts, and [Job.Events] streams the
// run's progress events — replayed from the first event for every
// subscriber, in exactly the order a WithProgress callback sees them.
// Reports carry the job linkage and timing ([Report].JobID, Queued,
// Wall). The serving layer (package modis/serve and the modisd
// daemon) builds on Submit: a scheduler pools engines per workload,
// queues admissions ([WithAdmission]), and aligns the valuation
// windows of concurrent runs into shared exact-inference passes
// ([WithExactRunner]) — batching that never changes results, only who
// pays for them.
//
// Valuation — the search bottleneck — parallelizes two ways. Within a
// run, [WithParallelism] fans the exact model inferences of each
// frontier expansion across a worker pool; batches are planned and
// committed in deterministic child order, so every parallelism degree
// produces the same skyline and report as the sequential run. Across
// runs, one engine serves concurrent Run calls against the shared
// memoized test set, which single-flights duplicate valuations even
// between runs in flight. Both require the configuration's Model to
// support concurrent Evaluate calls.
//
// # The columnar fast path
//
// Exact model inference normally receives a materialized child table
// (fst.Model's Evaluate). A model that additionally implements
// fst.RowsModel is valuated straight from the state's bitmap row view
// instead: the engine hands it the surviving universal-row indexes and
// the masked attributes, the universal table having been encoded into
// a columnar ml.Matrix once per space, so no child table is rebuilt
// and no dataset re-encoded per state. All built-in workload models
// (datagen tasks T1–T5 and custom workloads) implement it; results are
// bit-identical to the Evaluate path by construction and by property
// test.
//
// A custom model should implement RowsModel when its evaluation is
// derivable from (universal table, selected rows, masked attributes) —
// i.e. it trains and scores on the state's tuples, the dominant shape.
// Build an ml.TableEncoder over the space's universal table, obtain
// its Matrix once, and fit on Matrix.View(rows, masked) via the
// ml.Data fitting interfaces; return ok=false to fall back to Evaluate
// for states it cannot express. Models that depend on post-
// materialization UDF transforms need no change: spaces with UDFs
// disable the fast path automatically and every state takes the
// materialized reference path.
package modis

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/fst"
	"repro/internal/skyline"
)

// Engine runs discovery over one configuration. Construct with
// [NewEngine]; the zero value is unusable. An Engine is safe for
// concurrent use and runs execute concurrently: the memoized valuation
// record is sharded and single-flighted (two runs racing to valuate
// the same state share one model inference), estimator access is
// serialized internally, and every run carries its own valuation
// counters. Concurrent runs — and runs tuned with [WithParallelism] —
// require the configuration's Model to support concurrent Evaluate
// calls.
type Engine struct {
	cfg *fst.Config
	err error
}

// NewEngine wraps a validated configuration. A nil or inconsistent
// configuration is reported by the first Run call, keeping the
// constructor chainable: modis.NewEngine(cfg).Run(ctx, "bi").
func NewEngine(cfg *fst.Config) *Engine {
	e := &Engine{cfg: cfg}
	if cfg == nil {
		e.err = errors.New("modis: NewEngine: nil configuration")
		return e
	}
	if err := cfg.Validate(); err != nil {
		e.err = err
	}
	return e
}

// Run executes one discovery run synchronously: the named algorithm
// (see [Algorithms]) over the engine's configuration, tuned by the
// given options. Option and algorithm errors are reported before the
// search starts. The context is honored at frontier-pop granularity;
// on cancellation or deadline expiry Run returns (nil, ctx.Err()).
//
// Run is a thin wrapper over the asynchronous job API — [Engine.Submit]
// followed by [Job.Result] — so a Run and a submitted job execute
// identically. Runs may execute concurrently on one engine: each run
// carries its own valuation counters (the Report always describes this
// run alone) while the memoized valuation record is shared — across
// sequential runs and in flight between concurrent ones.
func (e *Engine) Run(ctx context.Context, algorithm string, opts ...Option) (*Report, error) {
	j, err := e.Submit(ctx, algorithm, opts...)
	if err != nil {
		return nil, err
	}
	return j.Result()
}

// prepared is a validated run: everything Submit resolves before the
// job goroutine starts, so every option and algorithm error surfaces
// synchronously.
type prepared struct {
	fn        AlgorithmFunc
	canonical string
	resolved  RunOptions
	copts     core.Options
	admit     func(context.Context) error
	runner    any // the installed ExactRunner, for the Batched probe
}

// prepare resolves the algorithm and options of one run request.
func (e *Engine) prepare(algorithm string, opts []Option) (prepared, error) {
	fn, canonical, err := lookup(algorithm)
	if err != nil {
		return prepared{}, err
	}
	s := defaultSettings()
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(&s); err != nil {
			return prepared{}, err
		}
	}
	resolved, copts, err := s.resolve(len(e.cfg.Measures))
	if err != nil {
		return prepared{}, err
	}
	return prepared{
		fn:        fn,
		canonical: canonical,
		resolved:  resolved,
		copts:     copts,
		admit:     s.admit,
		runner:    s.runner,
	}, nil
}

// Submit starts one discovery run asynchronously and returns its [Job]
// handle immediately. Algorithm and option errors surface here, before
// any goroutine starts; everything after — admission (see
// [WithAdmission]), the search itself, progress events — happens on
// the job's goroutine and is observed through the handle. The given
// context governs the whole job: cancelling it (or [Job.Cancel], or a
// deadline) aborts the search, and the job finishes with ctx.Err().
func (e *Engine) Submit(ctx context.Context, algorithm string, opts ...Option) (*Job, error) {
	if e.err != nil {
		return nil, e.err
	}
	pr, err := e.prepare(algorithm, opts)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	jctx, cancel := context.WithCancel(ctx)
	j := newJob(pr.canonical)
	j.cancel = cancel
	// Progress events tee into the job's replayable stream; a caller's
	// WithProgress hook keeps firing synchronously on the search
	// goroutine exactly as before.
	user := pr.copts.Progress
	pr.copts.Progress = func(ev core.ProgressEvent) {
		if user != nil {
			user(ev)
		}
		j.record(Event(ev))
	}
	go func() {
		defer cancel()
		rep, err := e.execute(jctx, j, pr)
		j.finish(rep, err)
	}()
	return j, nil
}

// execute runs a prepared job: admission, the search, and report
// assembly.
func (e *Engine) execute(ctx context.Context, j *Job, pr prepared) (*Report, error) {
	if pr.admit != nil {
		if err := pr.admit(ctx); err != nil {
			return nil, err
		}
	}
	j.started.Store(true)
	queued := time.Since(j.submitted)

	start := time.Now()
	res, err := pr.fn(ctx, e.cfg, pr.copts)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		JobID:      j.id,
		Algorithm:  pr.canonical,
		Options:    pr.resolved,
		Queued:     queued,
		Wall:       time.Since(start),
		Valuated:   res.Stats.Valuated,
		ExactCalls: res.Stats.ExactCalls,
		Levels:     res.Stats.Levels,
		Pruned:     res.Stats.Pruned,
		Skyline:    make([]*Candidate, 0, len(res.Skyline)),
		Graph:      res.Graph,
	}
	// A scheduler-installed exact runner knows whether this run's
	// windows actually shared a pass with a concurrent run.
	if bp, ok := pr.runner.(interface{ Batched() bool }); ok {
		rep.Batched = bp.Batched()
	}
	for _, c := range res.Skyline {
		rep.Skyline = append(rep.Skyline, &Candidate{
			Bits:   c.Bits,
			Bitmap: c.Bits.Words(),
			Ones:   c.Bits.Ones(),
			Perf:   c.Perf,
		})
	}
	return rep, nil
}

// Config exposes the engine's underlying configuration (e.g. for
// valuating a reference state or materializing candidates through its
// space).
func (e *Engine) Config() *fst.Config { return e.cfg }

// Candidate is one member of a discovered ε-skyline set.
type Candidate struct {
	// Bits is the state bitmap; materialize the dataset with
	// Space.Materialize(Bits).
	Bits fst.Bitmap `json:"-"`
	// Bitmap is the packed-word snapshot of Bits (bit i of the state is
	// bit i%64 of word i/64), the serializable view.
	Bitmap []uint64 `json:"bitmap"`
	// Ones is the number of set entries (the state's |D| proxy).
	Ones int `json:"ones"`
	// Perf is the normalized performance vector (smaller is better).
	Perf []float64 `json:"perf"`
}

// Report is the JSON-serializable result of one discovery run.
type Report struct {
	// JobID identifies the run's job (see [Engine.Submit]); reports
	// fetched from a daemon carry the same id the submit returned.
	JobID string `json:"job_id,omitempty"`
	// Algorithm is the canonical registry key that ran.
	Algorithm string `json:"algorithm"`
	// Options are the fully resolved knobs of the run (defaults applied,
	// sentinels eliminated).
	Options RunOptions `json:"options"`
	// Batched reports whether any of the run's valuation windows
	// executed in an exact-inference pass shared with a concurrent run
	// (modis/serve's frontier alignment). Results are identical either
	// way; the flag records that the wall time was co-paid by peers.
	Batched bool `json:"batched,omitempty"`
	// Queued is how long the job waited between submission and the
	// search starting — admission-queue time under a scheduler,
	// scheduling noise otherwise (marshals as nanoseconds).
	Queued time.Duration `json:"queue_ns"`
	// Wall is the end-to-end search time (marshals as nanoseconds).
	Wall time.Duration `json:"wall_ns"`
	// Valuated counts the states valuated by this run.
	Valuated int `json:"valuated"`
	// ExactCalls counts valuations that ran real model inference.
	ExactCalls int `json:"exact_calls"`
	// Levels is the deepest operator-path length reached.
	Levels int `json:"levels"`
	// Pruned counts states skipped by correlation-based pruning.
	Pruned int `json:"pruned"`
	// Skyline is the discovered ε-skyline set.
	Skyline []*Candidate `json:"skyline"`
	// Graph is the recorded running graph G_T (nil unless
	// [WithRecordGraph] was given).
	Graph *fst.RunningGraph `json:"-"`
}

// RunOptions are the resolved tuning knobs a run executed with.
type RunOptions struct {
	Budget   int     `json:"budget"`
	Epsilon  float64 `json:"epsilon"`
	MaxLevel int     `json:"max_level"`
	Decisive int     `json:"decisive"`
	Theta    float64 `json:"theta"`
	Prune    bool    `json:"prune"`
	K        int     `json:"k"`
	Alpha    float64 `json:"alpha"`
	Seed     int64   `json:"seed"`
	// Parallelism is the resolved valuation worker count ([WithParallelism];
	// 0 resolves to the CPU count). It affects wall time only, never results.
	Parallelism int `json:"parallelism"`
}

// Best returns the candidate minimizing the given measure index, or
// nil for an empty skyline.
func (r *Report) Best(measure int) *Candidate {
	var best *Candidate
	for _, c := range r.Skyline {
		if measure >= len(c.Perf) {
			continue
		}
		if best == nil || c.Perf[measure] < best.Perf[measure] {
			best = c
		}
	}
	return best
}

// Vectors extracts the skyline's performance vectors.
func (r *Report) Vectors() [][]float64 {
	out := make([][]float64, len(r.Skyline))
	for i, c := range r.Skyline {
		out[i] = c.Perf
	}
	return out
}

// Diversity is the paper's Div score (Equation 2) of a candidate set:
// the sum of pairwise dis(·,·) distances under content/performance
// balance alpha, with eucMax normalizing the performance term.
func Diversity(set []*Candidate, alpha, eucMax float64) float64 {
	cs := make([]*core.Candidate, len(set))
	for i, c := range set {
		cs[i] = &core.Candidate{Bits: c.Bits, Perf: skyline.Vector(c.Perf)}
	}
	return core.Div(cs, alpha, eucMax)
}
