package modis_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fst"
	"repro/internal/table"
	"repro/modis"
)

// shapeModel derives two opposing measures from the dataset shape (a
// cost that shrinks with the table and a loss that grows), so searches
// have a genuine trade-off without any ML cost. The per-call hook lets
// tests cancel a context from inside a running search.
type shapeModel struct {
	space *fst.Space
	calls int
	hook  func(calls int)
}

func (m *shapeModel) Name() string { return "shape" }

func (m *shapeModel) Evaluate(d *table.Table) ([]float64, error) {
	m.calls++
	if m.hook != nil {
		m.hook(m.calls)
	}
	rows := float64(d.NumRows())
	cols := float64(d.NumCols())
	uRows := float64(m.space.Universal.NumRows())
	uCols := float64(m.space.Universal.NumCols())
	return []float64{
		0.1 + 0.9*(rows/uRows)*(cols/uCols),
		0.1 + 0.9*(1-rows/uRows),
	}, nil
}

func newTestConfig(tb testing.TB, hook func(calls int)) *fst.Config {
	tb.Helper()
	u := table.New("D_U", table.Schema{
		{Name: "a", Kind: table.KindFloat},
		{Name: "b", Kind: table.KindFloat},
		{Name: "target", Kind: table.KindInt},
	})
	for i := 0; i < 24; i++ {
		u.MustAppend(table.Row{
			table.Float(float64(i % 3)),
			table.Float(float64(i % 4)),
			table.Int(int64(i % 2)),
		})
	}
	sp := fst.NewSpace(u, "target", fst.SpaceConfig{MaxLiteralsPerAttr: 4})
	return &fst.Config{
		Space: sp,
		Model: &shapeModel{space: sp, hook: hook},
		Measures: []fst.Measure{
			{Name: "p0", Normalize: fst.Identity(1e-3)},
			{Name: "p1", Normalize: fst.Identity(1e-3)},
		},
	}
}

func allAlgorithms() []string { return []string{"apx", "bi", "nobi", "div", "exact"} }

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range allAlgorithms() {
		t.Run(algo, func(t *testing.T) {
			eng := modis.NewEngine(newTestConfig(t, nil))
			rep, err := eng.Run(context.Background(), algo,
				modis.WithBudget(100), modis.WithEpsilon(0.2), modis.WithMaxLevel(3))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Algorithm != algo {
				t.Errorf("report algorithm = %q, want %q", rep.Algorithm, algo)
			}
			if len(rep.Skyline) == 0 {
				t.Fatal("empty skyline")
			}
			if rep.Valuated == 0 || rep.Valuated > 100 {
				t.Errorf("valuated = %d, want within (0, 100]", rep.Valuated)
			}
			for _, c := range rep.Skyline {
				if c.Bits.Len() == 0 || len(c.Bitmap) == 0 || len(c.Perf) != 2 {
					t.Errorf("malformed candidate: %+v", c)
				}
			}
		})
	}
}

func TestCancellationStopsEveryAlgorithm(t *testing.T) {
	for _, algo := range allAlgorithms() {
		t.Run(algo, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// Cancel from inside the search, a few valuations in; the
			// exhaustive space (no budget) would run far longer.
			cfg := newTestConfig(t, func(calls int) {
				if calls == 3 {
					cancel()
				}
			})
			rep, err := modis.NewEngine(cfg).Run(ctx, algo)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if rep != nil {
				t.Fatal("cancelled run must not return a partial report")
			}
		})
	}
}

func TestDeadlineStopsSearch(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	cfg := newTestConfig(t, func(int) { time.Sleep(2 * time.Millisecond) })
	rep, err := modis.NewEngine(cfg).Run(ctx, "bi")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if rep != nil {
		t.Fatal("timed-out run must not return a partial report")
	}
}

func TestRegistryRejectsUnknownAlgorithm(t *testing.T) {
	eng := modis.NewEngine(newTestConfig(t, nil))
	_, err := eng.Run(context.Background(), "simulated-annealing")
	if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("err = %v, want unknown-algorithm error", err)
	}
	// The error names the known keys so callers can self-correct.
	for _, known := range allAlgorithms() {
		if !strings.Contains(err.Error(), known) {
			t.Errorf("error %q does not list %q", err, known)
		}
	}
}

func TestRegistryAliasesAndCase(t *testing.T) {
	for alias, canonical := range map[string]string{
		"BiMODis": "bi", "apxmodis": "apx", " exact ": "exact", "NOBIMODIS": "nobi", "DivMODis": "div",
	} {
		rep, err := modis.NewEngine(newTestConfig(t, nil)).Run(context.Background(), alias,
			modis.WithBudget(40), modis.WithMaxLevel(2))
		if err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
		if rep.Algorithm != canonical {
			t.Errorf("alias %q resolved to %q, want %q", alias, rep.Algorithm, canonical)
		}
	}
}

func TestOptionValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		opt  modis.Option
	}{
		{"eps zero", modis.WithEpsilon(0)},
		{"eps negative", modis.WithEpsilon(-0.1)},
		{"budget negative", modis.WithBudget(-1)},
		{"maxlevel negative", modis.WithMaxLevel(-2)},
		{"decisive negative", modis.WithDecisive(-1)},
		{"alpha below", modis.WithAlpha(-0.01)},
		{"alpha above", modis.WithAlpha(1.01)},
		{"k zero", modis.WithK(0)},
		{"theta zero", modis.WithTheta(0)},
		{"theta above", modis.WithTheta(1.2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := modis.NewEngine(newTestConfig(t, nil)).Run(context.Background(), "bi", tc.opt)
			if err == nil {
				t.Fatal("want an eager validation error, got nil")
			}
		})
	}
}

func TestDecisiveRangeCheckedAgainstMeasures(t *testing.T) {
	eng := modis.NewEngine(newTestConfig(t, nil)) // two measures
	if _, err := eng.Run(context.Background(), "bi", modis.WithDecisive(2)); err == nil {
		t.Fatal("decisive index 2 of 2 measures must be rejected")
	}
	rep, err := eng.Run(context.Background(), "bi",
		modis.WithDecisive(0), modis.WithBudget(40), modis.WithMaxLevel(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Options.Decisive != 0 {
		t.Errorf("resolved decisive = %d, want 0", rep.Options.Decisive)
	}
}

func TestNilConfigSurfacesOnRun(t *testing.T) {
	if _, err := modis.NewEngine(nil).Run(context.Background(), "bi"); err == nil {
		t.Fatal("nil configuration must error on Run")
	}
}

func TestEngineReuseAcrossRuns(t *testing.T) {
	eng := modis.NewEngine(newTestConfig(t, nil))
	opts := []modis.Option{modis.WithBudget(60), modis.WithMaxLevel(3)}
	first, err := eng.Run(context.Background(), "apx", opts...)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Run(context.Background(), "apx", opts...)
	if err != nil {
		t.Fatal(err)
	}
	// The valuation record persists across runs of one engine, so the
	// identical second run is answered from memo; counters are per-run.
	if second.Valuated != 0 {
		t.Errorf("second identical run valuated %d states, want 0 (memoized)", second.Valuated)
	}
	if len(second.Skyline) == 0 || first.Valuated == 0 {
		t.Error("reused engine lost results")
	}
}

// syncShapeModel is shapeModel without the call counter: concurrent
// runs and parallel valuation require Evaluate to be re-entrant.
type syncShapeModel struct{ space *fst.Space }

func (m *syncShapeModel) Name() string { return "sync-shape" }

func (m *syncShapeModel) Evaluate(d *table.Table) ([]float64, error) {
	rows := float64(d.NumRows())
	cols := float64(d.NumCols())
	uRows := float64(m.space.Universal.NumRows())
	uCols := float64(m.space.Universal.NumCols())
	return []float64{
		0.1 + 0.9*(rows/uRows)*(cols/uCols),
		0.1 + 0.9*(1-rows/uRows),
	}, nil
}

func newConcurrentConfig(tb testing.TB) *fst.Config {
	tb.Helper()
	cfg := newTestConfig(tb, nil)
	cfg.Model = &syncShapeModel{space: cfg.Space}
	return cfg
}

// TestWithParallelismMatchesSequential: the pool is a wall-clock knob
// only — the report (skyline, member order, stats) is identical at any
// worker count, for every algorithm.
func TestWithParallelismMatchesSequential(t *testing.T) {
	for _, algo := range allAlgorithms() {
		t.Run(algo, func(t *testing.T) {
			run := func(par int) *modis.Report {
				rep, err := modis.NewEngine(newConcurrentConfig(t)).Run(context.Background(), algo,
					modis.WithBudget(90), modis.WithEpsilon(0.15), modis.WithMaxLevel(3),
					modis.WithSeed(2), modis.WithParallelism(par))
				if err != nil {
					t.Fatal(err)
				}
				return rep
			}
			seq, par := run(1), run(4)
			if seq.Valuated != par.Valuated || seq.ExactCalls != par.ExactCalls ||
				seq.Levels != par.Levels || seq.Pruned != par.Pruned {
				t.Errorf("stats diverge: seq %+v par %+v", seq, par)
			}
			if len(seq.Skyline) != len(par.Skyline) {
				t.Fatalf("skyline sizes diverge: %d vs %d", len(seq.Skyline), len(par.Skyline))
			}
			for i := range seq.Skyline {
				a, b := seq.Skyline[i], par.Skyline[i]
				if a.Bits.Key() != b.Bits.Key() || len(a.Perf) != len(b.Perf) {
					t.Fatalf("skyline member %d diverges", i)
				}
				for j := range a.Perf {
					if a.Perf[j] != b.Perf[j] {
						t.Fatalf("member %d perf diverges: %v vs %v", i, a.Perf, b.Perf)
					}
				}
			}
		})
	}
}

// TestConcurrentEngineRuns: one engine serves concurrent Run calls
// against the shared memo (the roadmap's per-engine concurrency item).
// Run under -race in CI.
func TestConcurrentEngineRuns(t *testing.T) {
	eng := modis.NewEngine(newConcurrentConfig(t))
	algos := []string{"apx", "bi", "nobi", "div", "apx", "bi", "nobi", "div"}
	var wg sync.WaitGroup
	reports := make([]*modis.Report, len(algos))
	errs := make([]error, len(algos))
	// Unbudgeted maxLevel-2 runs explore exhaustively, so each run's
	// traversal is independent of what the memo already holds — the
	// repeat-run assertion below is then deterministic.
	for i, algo := range algos {
		wg.Add(1)
		go func(i int, algo string) {
			defer wg.Done()
			reports[i], errs[i] = eng.Run(context.Background(), algo,
				modis.WithMaxLevel(2), modis.WithParallelism(2))
		}(i, algo)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d (%s): %v", i, algos[i], err)
		}
		if len(reports[i].Skyline) == 0 {
			t.Errorf("run %d (%s): empty skyline", i, algos[i])
		}
	}
	// The shared memo means a repeat of an identical run answers without
	// any new valuations.
	rep, err := eng.Run(context.Background(), "apx", modis.WithMaxLevel(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valuated != 0 {
		t.Errorf("post-concurrency repeat valuated %d states, want 0 (memo shared)", rep.Valuated)
	}
}

func TestProgressEventsStream(t *testing.T) {
	var events []modis.Event
	_, err := modis.NewEngine(newTestConfig(t, nil)).Run(context.Background(), "bi",
		modis.WithBudget(80), modis.WithMaxLevel(3),
		modis.WithProgress(func(ev modis.Event) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("got %d events, want level events plus a final one", len(events))
	}
	last := events[len(events)-1]
	if !last.Done {
		t.Error("final event must have Done set")
	}
	prev := -1
	for _, ev := range events {
		if ev.Algorithm != "bi" {
			t.Errorf("event algorithm = %q", ev.Algorithm)
		}
		if ev.Level < prev {
			t.Errorf("levels must be non-decreasing: %d after %d", ev.Level, prev)
		}
		prev = ev.Level
		if ev.Valuated == 0 && !ev.Done {
			t.Error("level event with no valuations")
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := modis.NewEngine(newTestConfig(t, nil)).Run(context.Background(), "div",
		modis.WithBudget(60), modis.WithMaxLevel(3), modis.WithK(3), modis.WithAlpha(0), modis.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded modis.Report
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Algorithm != "div" || decoded.Options.K != 3 || decoded.Options.Alpha != 0 ||
		decoded.Options.Seed != 7 || len(decoded.Skyline) != len(rep.Skyline) {
		t.Errorf("round trip lost fields: %s", blob)
	}
	// The job fields introduced with the async API survive the trip too.
	if decoded.JobID != rep.JobID || decoded.JobID == "" {
		t.Errorf("round trip lost job id: %q vs %q", decoded.JobID, rep.JobID)
	}
	if decoded.Queued != rep.Queued || decoded.Wall != rep.Wall || decoded.Batched != rep.Batched {
		t.Errorf("round trip lost timing/batching fields: %s", blob)
	}
	for i, c := range decoded.Skyline {
		if len(c.Bitmap) != len(rep.Skyline[i].Bitmap) || len(c.Perf) != len(rep.Skyline[i].Perf) {
			t.Errorf("candidate %d lost serialized state", i)
		}
	}
}

func TestDiversityHelper(t *testing.T) {
	a := &modis.Candidate{Bits: fst.BitmapOf(true, false), Perf: []float64{0.1, 0.9}}
	b := &modis.Candidate{Bits: fst.BitmapOf(false, true), Perf: []float64{0.9, 0.1}}
	if d := modis.Diversity([]*modis.Candidate{a, b}, 0.5, 1); d <= 0 {
		t.Errorf("distinct candidates must have positive diversity, got %v", d)
	}
	if d := modis.Diversity([]*modis.Candidate{a, a}, 0.5, 1); d > 1e-12 {
		t.Errorf("self diversity must be 0, got %v", d)
	}
}
