package modis

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"repro/internal/core"
	"repro/internal/fst"
)

// Option tunes one discovery run. Options validate eagerly: an
// out-of-range value is reported by [Engine.Run] before the search
// starts, instead of being silently replaced by a default.
type Option func(*settings) error

// Event is a streaming snapshot of a running search, delivered through
// [WithProgress]: one event whenever the search reaches a deeper
// level, and a final event (Done=true) when the run terminates. The
// callback runs synchronously on the search goroutine — keep it cheap.
type Event struct {
	// Algorithm is the canonical key of the emitting algorithm.
	Algorithm string `json:"algorithm"`
	// Level is the deepest operator-path length reached so far.
	Level int `json:"level"`
	// Frontier is the number of states currently queued.
	Frontier int `json:"frontier"`
	// Valuated is the number of valuations used so far.
	Valuated int `json:"valuated"`
	// SkylineSize is the incumbent ε-skyline set size.
	SkylineSize int `json:"skyline_size"`
	// Done marks the final event of a run.
	Done bool `json:"done"`
}

// settings accumulates applied options; the zero-value ambiguity of
// internal/core's Options struct (and its sentinel constants) stops
// here: every knob has an explicit default and explicit range checks.
type settings struct {
	budget      int
	eps         float64
	maxLevel    int
	decisive    int
	decisiveSet bool
	theta       float64
	prune       bool
	k           int
	alpha       float64
	seed        int64
	parallelism int
	recordGraph bool
	progress    func(Event)
	runner      fst.ExactRunner
	admit       func(context.Context) error
}

func defaultSettings() settings {
	return settings{
		eps:         0.1,
		theta:       0.8,
		prune:       true,
		k:           5,
		alpha:       0.5,
		parallelism: 1,
	}
}

// resolve range-checks the knobs that need the configuration (the
// decisive measure index) and maps the settings onto internal/core's
// sentinel-encoded Options.
func (s settings) resolve(numMeasures int) (RunOptions, core.Options, error) {
	decisive := numMeasures - 1
	if s.decisiveSet {
		if s.decisive >= numMeasures {
			return RunOptions{}, core.Options{}, fmt.Errorf(
				"modis: WithDecisive(%d): index out of range for %d measures", s.decisive, numMeasures)
		}
		decisive = s.decisive
	}
	par := s.parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	ro := RunOptions{
		Budget:      s.budget,
		Epsilon:     s.eps,
		MaxLevel:    s.maxLevel,
		Decisive:    decisive,
		Theta:       s.theta,
		Prune:       s.prune,
		K:           s.k,
		Alpha:       s.alpha,
		Seed:        s.seed,
		Parallelism: par,
	}
	co := core.Options{
		N:            s.budget,
		Eps:          s.eps,
		MaxLevel:     s.maxLevel,
		Theta:        s.theta,
		DisablePrune: !s.prune,
		K:            s.k,
		Seed:         s.seed,
		Parallelism:  par,
		RecordGraph:  s.recordGraph,
	}
	// Resolved values cross into core's sentinel encoding here, so the
	// zero-value collisions never reach callers.
	if decisive == 0 {
		co.Decisive = core.DecisiveFirst
	} else {
		co.Decisive = decisive
	}
	if s.alpha == 0 {
		co.Alpha = core.AlphaZero
	} else {
		co.Alpha = s.alpha
	}
	if p := s.progress; p != nil {
		co.Progress = func(ev core.ProgressEvent) { p(Event(ev)) }
	}
	co.ExactRunner = s.runner
	return ro, co, nil
}

// WithBudget bounds the run at n valuations (the paper's N). 0 means
// unbounded.
func WithBudget(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("modis: WithBudget(%d): budget must be >= 0 (0 = unbounded)", n)
		}
		s.budget = n
		return nil
	}
}

// WithEpsilon sets the ε of ε-dominance (default 0.1). Must be > 0.
func WithEpsilon(eps float64) Option {
	return func(s *settings) error {
		if !(eps > 0) || math.IsInf(eps, 1) {
			return fmt.Errorf("modis: WithEpsilon(%v): epsilon must be a finite value > 0", eps)
		}
		s.eps = eps
		return nil
	}
}

// WithMaxLevel bounds the operator path length (the paper's maxl). 0
// means the full space.
func WithMaxLevel(l int) Option {
	return func(s *settings) error {
		if l < 0 {
			return fmt.Errorf("modis: WithMaxLevel(%d): level must be >= 0 (0 = unbounded)", l)
		}
		s.maxLevel = l
		return nil
	}
}

// WithDecisive selects the decisive measure p_d by index — including
// index 0, which the internal options struct can only express through
// a sentinel. Defaults to the last measure. The index is range-checked
// against the engine's measures when the run starts.
func WithDecisive(i int) Option {
	return func(s *settings) error {
		if i < 0 {
			return fmt.Errorf("modis: WithDecisive(%d): index must be >= 0", i)
		}
		s.decisive = i
		s.decisiveSet = true
		return nil
	}
}

// WithTheta sets the Spearman threshold θ of the correlation graph
// used by "bi" pruning (default 0.8). Must be in (0, 1].
func WithTheta(theta float64) Option {
	return func(s *settings) error {
		if !(theta > 0) || theta > 1 {
			return fmt.Errorf("modis: WithTheta(%v): threshold must be in (0, 1]", theta)
		}
		s.theta = theta
		return nil
	}
}

// WithoutPruning disables correlation-based pruning (the "nobi"
// ablation, applicable to "bi").
func WithoutPruning() Option {
	return func(s *settings) error {
		s.prune = false
		return nil
	}
}

// WithK sets the diversified skyline size for "div" (default 5). Must
// be >= 1.
func WithK(k int) Option {
	return func(s *settings) error {
		if k < 1 {
			return fmt.Errorf("modis: WithK(%d): size must be >= 1", k)
		}
		s.k = k
		return nil
	}
}

// WithAlpha balances content diversity against performance diversity
// in "div" (default 0.5) — including α = 0, pure performance
// diversity, which the internal options struct can only express
// through a sentinel. Must be in [0, 1].
func WithAlpha(alpha float64) Option {
	return func(s *settings) error {
		if math.IsNaN(alpha) || alpha < 0 || alpha > 1 {
			return fmt.Errorf("modis: WithAlpha(%v): balance must be in [0, 1]", alpha)
		}
		s.alpha = alpha
		return nil
	}
}

// WithSeed drives the diversification initialization of "div".
func WithSeed(seed int64) Option {
	return func(s *settings) error {
		s.seed = seed
		return nil
	}
}

// WithParallelism sets the valuation worker count of the run: the
// exact model inferences of each frontier expansion's children fan out
// across n goroutines. n = 0 uses all CPUs (runtime.GOMAXPROCS); n = 1
// (the default) runs sequentially. Any degree produces the identical
// skyline and report — batches are planned and committed in
// deterministic child order — so parallelism is purely a wall-clock
// knob. The configuration's Model must support concurrent Evaluate
// calls when n != 1.
func WithParallelism(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("modis: WithParallelism(%d): worker count must be >= 0 (0 = all CPUs)", n)
		}
		s.parallelism = n
		return nil
	}
}

// WithExactRunner installs the run's exact-inference runner: each
// valuation window's exact model inferences are handed to r as a batch
// of tasks instead of the run's built-in worker pool. This is the
// serving layer's frontier-alignment hook — modis/serve's Scheduler
// installs a per-run handle whose RunExact may merge the window with
// windows of concurrent runs over the same configuration into one
// pooled pass. Results are byte-identical with any compliant runner
// (see fst.ExactRunner for the contract). If the runner additionally
// implements Batched() bool, the report's Batched field records
// whether the run actually shared a pass. Most callers never need
// this option.
func WithExactRunner(r fst.ExactRunner) Option {
	return func(s *settings) error {
		s.runner = r
		return nil
	}
}

// WithAdmission gates the start of a submitted job: the job goroutine
// calls fn before the search begins and aborts the job with fn's error
// if it fails. Schedulers use it to bound concurrent searches — the
// time spent inside fn is the report's Queued field. The context is
// the job's; fn must honor its cancellation. Most callers never need
// this option.
func WithAdmission(fn func(ctx context.Context) error) Option {
	return func(s *settings) error {
		s.admit = fn
		return nil
	}
}

// WithRecordGraph captures the running graph G_T in the report, for
// analysis and the MOSP reduction.
func WithRecordGraph() Option {
	return func(s *settings) error {
		s.recordGraph = true
		return nil
	}
}

// WithProgress streams per-level search snapshots to fn while the run
// executes. A nil fn disables streaming.
func WithProgress(fn func(Event)) Option {
	return func(s *settings) error {
		s.progress = fn
		return nil
	}
}
