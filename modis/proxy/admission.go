package proxy

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// TenantHeader is the HTTP header tenants identify themselves with.
// Requests without it share the DefaultTenant budget.
const TenantHeader = "X-Modis-Tenant"

// DefaultTenant is the bucket anonymous requests draw from.
const DefaultTenant = "default"

// ErrThrottled marks an admission rejection. The proxy maps it to 429
// with a Retry-After header.
var ErrThrottled = errors.New("proxy: admission rejected")

// AdmissionOptions tune per-tenant admission control. Zero values
// disable the corresponding limit.
type AdmissionOptions struct {
	// Rate is the sustained submissions/second each tenant may make
	// (token-bucket refill rate). 0 = unlimited rate.
	Rate float64
	// Burst is the bucket depth — submissions a tenant may fire
	// back-to-back after idling (default max(Rate, 1) when Rate > 0).
	Burst float64
	// MaxTenantJobs caps one tenant's concurrently running jobs.
	MaxTenantJobs int
	// MaxGlobalJobs caps the whole fleet's concurrently running jobs
	// admitted through this proxy.
	MaxGlobalJobs int
	// Now overrides the clock (tests). Nil = time.Now.
	Now func() time.Time
}

// Admission is the proxy's front door: a token bucket per tenant for
// submission rate plus per-tenant and global concurrent-job caps. Safe
// for concurrent use.
type Admission struct {
	opts AdmissionOptions

	mu      sync.Mutex
	buckets map[string]*bucket
	running map[string]int // tenant → jobs admitted and not yet released
	global  int
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewAdmission builds an Admission from options.
func NewAdmission(opts AdmissionOptions) *Admission {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Rate > 0 && opts.Burst <= 0 {
		opts.Burst = opts.Rate
		if opts.Burst < 1 {
			opts.Burst = 1
		}
	}
	return &Admission{
		opts:    opts,
		buckets: map[string]*bucket{},
		running: map[string]int{},
	}
}

// Admit charges one submission to the tenant. On success it returns a
// release function the caller must invoke once the admitted job
// reaches a terminal state (it frees the concurrency slot; the rate
// token is consumed either way). On rejection it returns ErrThrottled
// (wrapped with the reason) and the duration after which retrying can
// succeed — the Retry-After value.
func (a *Admission) Admit(tenant string) (release func(), retryAfter time.Duration, err error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	// Concurrency caps first: a capped tenant shouldn't burn rate
	// tokens on rejections.
	if a.opts.MaxGlobalJobs > 0 && a.global >= a.opts.MaxGlobalJobs {
		return nil, time.Second, fmt.Errorf("%w: fleet at its concurrent-job cap (%d)", ErrThrottled, a.opts.MaxGlobalJobs)
	}
	if a.opts.MaxTenantJobs > 0 && a.running[tenant] >= a.opts.MaxTenantJobs {
		return nil, time.Second, fmt.Errorf("%w: tenant %q at its concurrent-job cap (%d)", ErrThrottled, tenant, a.opts.MaxTenantJobs)
	}

	if a.opts.Rate > 0 {
		now := a.opts.Now()
		b, ok := a.buckets[tenant]
		if !ok {
			b = &bucket{tokens: a.opts.Burst, last: now}
			a.buckets[tenant] = b
		}
		b.tokens += now.Sub(b.last).Seconds() * a.opts.Rate
		b.last = now
		if b.tokens > a.opts.Burst {
			b.tokens = a.opts.Burst
		}
		if b.tokens < 1 {
			wait := time.Duration((1 - b.tokens) / a.opts.Rate * float64(time.Second))
			if wait <= 0 {
				wait = time.Second
			}
			return nil, wait, fmt.Errorf("%w: tenant %q over its submission rate (%.3g/s)", ErrThrottled, tenant, a.opts.Rate)
		}
		b.tokens--
	}

	a.running[tenant]++
	a.global++
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.running[tenant]--
			if a.running[tenant] <= 0 {
				delete(a.running, tenant)
			}
			a.global--
			a.mu.Unlock()
		})
	}, 0, nil
}

// Running reports the tenant's admitted-and-unreleased job count and
// the global one.
func (a *Admission) Running(tenant string) (tenantJobs, globalJobs int) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running[tenant], a.global
}
