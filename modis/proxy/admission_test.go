package proxy

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives the token bucket deterministically.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1700000000, 0)} }

func mustAdmit(t *testing.T, a *Admission, tenant string) func() {
	t.Helper()
	release, _, err := a.Admit(tenant)
	if err != nil {
		t.Fatalf("admit %q: %v", tenant, err)
	}
	return release
}

// TestAdmissionRate: the token bucket throttles a tenant past its
// burst, reports a Retry-After that actually works, and refills with
// the clock. Tenants have independent buckets.
func TestAdmissionRate(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionOptions{Rate: 1, Burst: 2, Now: clk.Now})

	mustAdmit(t, a, "alice")()
	mustAdmit(t, a, "alice")()
	_, retry, err := a.Admit("alice")
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("third burst submit: err = %v, want ErrThrottled", err)
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retryAfter = %v, want (0, 1s] at rate 1/s", retry)
	}
	// A different tenant is unaffected.
	mustAdmit(t, a, "bob")()

	// Waiting the advertised time makes the retry succeed.
	clk.advance(retry)
	mustAdmit(t, a, "alice")()

	// The bucket never refills past its burst: a long idle buys exactly
	// Burst back-to-back submissions.
	clk.advance(time.Hour)
	mustAdmit(t, a, "alice")()
	mustAdmit(t, a, "alice")()
	if _, _, err := a.Admit("alice"); !errors.Is(err, ErrThrottled) {
		t.Errorf("burst cap after idle: err = %v, want ErrThrottled", err)
	}
}

// TestAdmissionCaps: per-tenant and global concurrent-job caps bound
// admitted-but-unreleased jobs; release frees a slot exactly once.
func TestAdmissionCaps(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxTenantJobs: 1, MaxGlobalJobs: 2})

	relA := mustAdmit(t, a, "alice")
	if _, retry, err := a.Admit("alice"); !errors.Is(err, ErrThrottled) {
		t.Fatalf("capped tenant admitted: %v", err)
	} else if retry < time.Second {
		t.Errorf("cap retryAfter = %v, want >= 1s", retry)
	}

	relB := mustAdmit(t, a, "bob")
	// Global cap (2) now binds even for a fresh tenant.
	if _, _, err := a.Admit("carol"); !errors.Is(err, ErrThrottled) {
		t.Fatalf("over-global admit succeeded: %v", err)
	}

	relA()
	relA() // double release must not free a second slot
	if tj, gj := a.Running("alice"); tj != 0 || gj != 1 {
		t.Fatalf("after release Running(alice) = (%d, %d), want (0, 1)", tj, gj)
	}
	relC := mustAdmit(t, a, "carol")
	if _, _, err := a.Admit("dave"); !errors.Is(err, ErrThrottled) {
		t.Error("global cap stopped binding after an extra release")
	}
	relB()
	relC()
	if _, gj := a.Running(""); gj != 0 {
		t.Errorf("global running = %d after all releases, want 0", gj)
	}
}

// TestAdmissionDefaults: no limits configured → everything admits; an
// empty tenant shares the DefaultTenant budget.
func TestAdmissionDefaults(t *testing.T) {
	a := NewAdmission(AdmissionOptions{})
	for i := 0; i < 100; i++ {
		mustAdmit(t, a, "")
	}

	capped := NewAdmission(AdmissionOptions{MaxTenantJobs: 1})
	rel := mustAdmit(t, capped, "")
	defer rel()
	if _, _, err := capped.Admit(DefaultTenant); !errors.Is(err, ErrThrottled) {
		t.Error("anonymous requests must share the DefaultTenant budget")
	}
}
