package proxy_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"repro/modis/proxy"
	"repro/modis/serve"
)

func appendReq(rows ...string) serve.AppendRowsRequest {
	var req serve.AppendRowsRequest
	for _, r := range rows {
		req.Rows = append(req.Rows, json.RawMessage(r))
	}
	return req
}

// workloadInfo reads one workload's catalog entry straight off a node.
func workloadInfo(tb testing.TB, n *node, name string) serve.WorkloadInfo {
	tb.Helper()
	infos, err := serve.NewClient(n.hs.URL).Workloads(context.Background())
	if err != nil {
		tb.Fatal(err)
	}
	for _, info := range infos {
		if info.Name == name {
			return info
		}
	}
	tb.Fatalf("node lacks workload %q", name)
	return serve.WorkloadInfo{}
}

// TestProxyAppendRoutesToOwner: appends land on the workload's ring
// owner and only there — the same node submissions route to — so the
// shard's table version history has a single writer.
func TestProxyAppendRoutesToOwner(t *testing.T) {
	fleet := startFleet(t, 3, 2, 0)
	_, _, cl := startProxy(t, fleet, proxy.AdmissionOptions{})
	ctx := context.Background()

	resp, err := cl.AppendRows(ctx, "wl0", appendReq(`[0, 0, 0]`, `{"a": 1, "b": 2, "target": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.TableVersion != 1 || resp.Rows != 2 {
		t.Fatalf("append through proxy = %+v, want version 1 with 2 rows", resp)
	}

	// Exactly one node moved to version 1; it is the submission owner.
	st, err := cl.Submit(ctx, submitReq("wl0"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cl, st.JobID)
	owner := ownerOf(t, fleet, st.JobID)
	moved := 0
	for _, n := range fleet {
		info := workloadInfo(t, n, "wl0")
		if info.TableVersion == 1 {
			moved++
			if n != owner {
				t.Error("append landed on a node other than the submission owner")
			}
		} else if info.TableVersion != 0 {
			t.Errorf("unexpected table version %d", info.TableVersion)
		}
	}
	if moved != 1 {
		t.Fatalf("%d nodes saw the append, want exactly 1", moved)
	}

	// The other workload's owner is untouched at version 0 everywhere.
	for _, n := range fleet {
		if info := workloadInfo(t, n, "wl1"); info.TableVersion != 0 {
			t.Errorf("append to wl0 moved wl1 to version %d", info.TableVersion)
		}
	}
}

// TestProxyAppendErrors: unknown workloads 404 with the fleet catalog,
// and a dead owner is an explicit 503 — never a silent reroute to a
// replica, which would fork the version history.
func TestProxyAppendErrors(t *testing.T) {
	fleet := startFleet(t, 2, 1, 0)
	p, _, cl := startProxy(t, fleet, proxy.AdmissionOptions{})
	ctx := context.Background()

	_, err := cl.AppendRows(ctx, "nope", appendReq(`[0, 0, 0]`))
	var ae *serve.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("unknown workload: err = %v, want 404", err)
	}

	// Find and kill the owner, then let a sweep open its breaker.
	st, err := cl.Submit(ctx, submitReq("wl0"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cl, st.JobID)
	owner := ownerOf(t, fleet, st.JobID)
	owner.hs.Close()
	p.CheckNow(ctx)

	_, err = cl.AppendRows(ctx, "wl0", appendReq(`[0, 0, 0]`))
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("dead owner: err = %v, want 503 (appends must not fail over)", err)
	}
	for _, n := range fleet {
		if n == owner {
			continue
		}
		if info := workloadInfo(t, n, "wl0"); info.TableVersion != 0 {
			t.Fatalf("append to a dead owner leaked to a replica (version %d)", info.TableVersion)
		}
	}
}
