package proxy

import (
	"sync"
	"time"
)

// BreakerState is one of the circuit's three positions.
type BreakerState string

const (
	// BreakerClosed: the node is trusted; traffic flows.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the node failed past the threshold; traffic is
	// blocked until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request
	// is allowed through to decide between closed and open.
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerOptions tune one node's circuit breaker.
type BreakerOptions struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit (default 1: the first failure opens, matching the old
	// binary dead-node sweep; raise it to ride out blips).
	FailureThreshold int
	// Cooldown is how long an open circuit blocks traffic before
	// half-opening for a probe (default 2s). Out-of-band health sweeps
	// bypass the cooldown: a sweep success closes the circuit
	// immediately.
	Cooldown time.Duration
	// Now overrides the clock (tests). Nil = time.Now.
	Now func() time.Time
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 1
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 2 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Breaker is a per-node circuit breaker: closed while the node
// behaves, open for a cooldown once it fails past the threshold, then
// half-open — admitting exactly one probe whose outcome decides the
// next state. It replaces the binary alive flag: a flapping node is
// retried on the breaker's schedule instead of on every request, and a
// recovered node rejoins after one successful probe rather than
// waiting for the sweep that happens to see it. Safe for concurrent
// use.
type Breaker struct {
	opts BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker returns a closed Breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	return &Breaker{opts: opts.withDefaults(), state: BreakerClosed}
}

// Allow reports whether a request may be sent to the node now. A true
// return from a half-open circuit claims the probe slot: the caller's
// request IS the probe, and its outcome must be reported with Success
// or Failure (every caller reports outcomes anyway, so there is no
// separate probe bookkeeping to leak).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.opts.Now().Sub(b.openedAt) >= b.opts.Cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open
		if !b.probing {
			b.probing = true
			return true
		}
		return false
	}
}

// Success reports a successful exchange with the node: the circuit
// closes from any state (a health-sweep success short-circuits an open
// cooldown — the node answered, there is nothing left to wait for).
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure reports a failed exchange. A half-open probe failure
// re-opens immediately; closed circuits open once consecutive failures
// reach the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.opts.Now()
		b.probing = false
	case BreakerClosed:
		b.failures++
		if b.failures >= b.opts.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = b.opts.Now()
		}
	case BreakerOpen:
		// Already open; refresh nothing — the cooldown runs from the
		// original trip so a stream of rejected probes cannot push
		// recovery out forever.
	}
}

// ReleaseProbe returns an unconsumed half-open probe slot — for
// callers that claimed it through Allow but then routed the request to
// a different node, so no outcome will ever be reported. No-op in any
// other state.
func (b *Breaker) ReleaseProbe() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// State returns the circuit's current position. An open circuit whose
// cooldown has elapsed still reads open until a request half-opens it.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Healthy reports the passive view — circuit closed — used by read
// paths (catalog refresh, fleet-wide listings) that should not burn
// the half-open probe slot on bulk traffic.
func (b *Breaker) Healthy() bool {
	return b.State() == BreakerClosed
}
