package proxy

import (
	"testing"
	"time"
)

// newTestBreaker builds a breaker on the shared fakeClock (see
// admission_test.go).
func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	return NewBreaker(BreakerOptions{
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		Now:              clk.Now,
	}), clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker must be closed and allowing")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %s, want closed", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatalf("state after 3/3 failures = %s (allowing: %v), want open and blocking", b.State(), b.Allow())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(2, time.Second)
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("non-consecutive failures opened the circuit: %s", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("2 consecutive failures left the circuit %s", b.State())
	}
}

func TestBreakerHalfOpenProbeLifecycle(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("open circuit inside the cooldown must block")
	}
	clk.advance(time.Second)
	// The first Allow after the cooldown claims the single probe slot.
	if !b.Allow() {
		t.Fatal("cooldown elapsed: the circuit must half-open and admit a probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second request during the probe must be blocked")
	}
	// Probe fails: back to open, cooldown restarts from now.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe must re-open the circuit")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed: probe again")
	}
	// Probe succeeds: closed, full trust.
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() || !b.Healthy() {
		t.Fatalf("successful probe must close the circuit (state %s)", b.State())
	}
}

func TestBreakerReleaseProbeReturnsSlot(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("expected the probe slot")
	}
	// The caller routed elsewhere; the slot must come back so the next
	// request can probe instead of waiting for an outcome that never
	// arrives.
	b.ReleaseProbe()
	if !b.Allow() {
		t.Fatal("released probe slot must be claimable again")
	}
}

func TestBreakerSweepSuccessBypassesCooldown(t *testing.T) {
	b, _ := newTestBreaker(1, time.Hour)
	b.Failure()
	if b.Allow() {
		t.Fatal("open circuit must block inside its cooldown")
	}
	// An out-of-band health sweep heard from the node: nothing left to
	// wait for, regardless of the cooldown.
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("sweep success must close the circuit immediately")
	}
}

func TestBreakerOpenFailuresDoNotExtendCooldown(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(900 * time.Millisecond)
	// More failures reported while open (e.g. watch goroutines noticing
	// the same dead node) must not push the half-open horizon out.
	b.Failure()
	b.Failure()
	clk.advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown ran from the original trip; the circuit must half-open")
	}
}
