package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/modis/serve"
)

// Options configure a Proxy. Nodes is the only required field.
type Options struct {
	// Nodes are the modisd base addresses ("host:port" or full URLs)
	// forming the routing ring. Order does not matter: two proxies
	// given permuted lists route identically.
	Nodes []string
	// VNodes is the virtual-node count per node (0 =
	// DefaultVirtualNodes).
	VNodes int
	// LoadFactor is the bounded-load ceiling multiplier (values < 1
	// mean the default 1.25): a node takes its keys until its in-flight
	// count exceeds loadFactor × the fleet average, then keys spill to
	// the next ring candidate.
	LoadFactor float64
	// HealthInterval is the background health/catalog sweep period
	// (0 = 2s; negative disables the background loop — tests drive
	// sweeps with CheckNow).
	HealthInterval time.Duration
	// ProbeTimeout bounds each per-node health probe within a sweep
	// (0 = 1s), so one hung node cannot stall the whole sweep.
	ProbeTimeout time.Duration
	// Breaker configures the per-node circuit breakers. The zero value
	// opens on the first failure with a 2s cooldown.
	Breaker BreakerOptions
	// SubmitRetries is how many times a submission is retried on the
	// SAME node after a transport failure before failing over to the
	// next ring candidate (default 1). Same-node retries are the safe
	// first response to a blip: the idempotency key dedupes there even
	// when the lost response had actually been accepted, whereas a
	// different node cannot see the first node's ledger.
	SubmitRetries int
	// Admission configures per-tenant rate limits and job caps.
	Admission AdmissionOptions
	// Client overrides the HTTP client used towards nodes.
	Client *http.Client
}

// nodeState is the proxy's view of one modisd.
type nodeState struct {
	br       *Breaker
	inflight int
	errMsg   string
	identity *serve.NodeIdentity
	// ok/failed count exchanges with the node — the per-node error
	// rate /metrics exports.
	ok     int64
	failed int64
}

// Proxy routes the modis job API across a fleet of modisd nodes by
// consistent-hashing each workload's descriptor hash. Submissions pick
// the shard owner (spilling along the ring under bounded load or node
// death), job reads follow the job to the node that ran it, SSE event
// streams pass through unbuffered, and the workload/algorithm catalogs
// merge the fleet's. Admission control (429 + Retry-After) runs at
// submission, before any node is touched.
type Proxy struct {
	opts       Options
	ring       *Ring
	adm        *Admission
	hc         *http.Client
	mux        *http.ServeMux
	sweepEvery time.Duration // effective sweep period (0 = disabled)

	mu      sync.Mutex
	nodes   map[string]*nodeState
	catalog map[string]serve.WorkloadInfo // workload name → info (merged)
	jobs    map[string]string             // job id → node that runs it

	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup
}

// normalizeNode turns a configured node address into the base URL used
// both as ring identity and as request target.
func normalizeNode(addr string) string {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return ""
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// New builds a Proxy over the node fleet. Nodes start presumed alive —
// the first health sweep (background, or CheckNow) corrects the view;
// a submission hitting a dead node fails over along the ring
// immediately anyway.
func New(opts Options) *Proxy {
	var normalized []string
	for _, n := range opts.Nodes {
		if nn := normalizeNode(n); nn != "" {
			normalized = append(normalized, nn)
		}
	}
	p := &Proxy{
		opts:    opts,
		ring:    NewRing(normalized, opts.VNodes),
		adm:     NewAdmission(opts.Admission),
		hc:      opts.Client,
		mux:     http.NewServeMux(),
		nodes:   map[string]*nodeState{},
		catalog: map[string]serve.WorkloadInfo{},
		jobs:    map[string]string{},
	}
	if p.hc == nil {
		p.hc = &http.Client{}
	}
	for _, n := range p.ring.Nodes() {
		p.nodes[n] = &nodeState{br: NewBreaker(opts.Breaker)}
	}
	p.ctx, p.stop = context.WithCancel(context.Background())

	p.mux.HandleFunc("POST /v1/jobs", p.handleSubmit)
	p.mux.HandleFunc("GET /v1/jobs", p.handleList)
	p.mux.HandleFunc("GET /v1/jobs/{id}", p.handleJobGet)
	p.mux.HandleFunc("DELETE /v1/jobs/{id}", p.handleJobDelete)
	p.mux.HandleFunc("GET /v1/jobs/{id}/events", p.handleEvents)
	p.mux.HandleFunc("GET /v1/workloads", p.handleWorkloads)
	p.mux.HandleFunc("POST /v1/workloads/{name}/rows", p.handleAppendRows)
	p.mux.HandleFunc("GET /v1/algorithms", p.handleAlgorithms)
	p.mux.HandleFunc("GET /healthz", p.handleHealthz)
	p.mux.HandleFunc("GET /metrics", p.handleMetrics)

	interval := opts.HealthInterval
	if interval == 0 {
		interval = 2 * time.Second
	}
	if interval > 0 {
		p.sweepEvery = interval
	}
	if interval > 0 {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			p.CheckNow(p.ctx)
			for {
				select {
				case <-p.ctx.Done():
					return
				case <-t.C:
					p.CheckNow(p.ctx)
				}
			}
		}()
	}
	return p
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) { p.mux.ServeHTTP(w, r) }

// Close stops the background sweeps and job watchers.
func (p *Proxy) Close() {
	p.stop()
	p.wg.Wait()
}

// CheckNow runs one synchronous health + catalog sweep: every node's
// /healthz feeds its circuit breaker (a sweep success closes the
// breaker immediately, cooldown or not, and refreshes the node's
// advertised identity), then the healthy nodes' workload catalogs
// merge into the routing table. The background loop calls this on its
// interval; tests call it directly for determinism.
func (p *Proxy) CheckNow(ctx context.Context) {
	for _, node := range p.ring.Nodes() {
		hr, err := p.nodeHealth(ctx, node)
		p.mu.Lock()
		ns := p.nodes[node]
		if err != nil {
			ns.br.Failure()
			ns.errMsg = err.Error()
		} else {
			ns.br.Success()
			ns.errMsg = ""
			ns.identity = hr.Node
		}
		p.mu.Unlock()
	}
	p.refreshCatalog(ctx)
}

// probeTimeout is the per-node health probe bound.
func (p *Proxy) probeTimeout() time.Duration {
	if p.opts.ProbeTimeout > 0 {
		return p.opts.ProbeTimeout
	}
	return time.Second
}

func (p *Proxy) nodeHealth(ctx context.Context, node string) (*serve.HealthResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, p.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var hr serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return nil, err
	}
	return &hr, nil
}

// refreshCatalog merges the healthy nodes' workload catalogs. Nodes
// are visited in sorted order and the first binding of a name wins, so
// the merged view is deterministic in the fleet state.
func (p *Proxy) refreshCatalog(ctx context.Context) {
	merged := map[string]serve.WorkloadInfo{}
	for _, node := range p.ring.Nodes() {
		p.mu.Lock()
		alive := p.nodes[node].br.Healthy()
		p.mu.Unlock()
		if !alive {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/workloads", nil)
		if err != nil {
			continue
		}
		resp, err := p.hc.Do(req)
		if err != nil {
			p.markFailed(node, err)
			continue
		}
		var infos []serve.WorkloadInfo
		derr := json.NewDecoder(resp.Body).Decode(&infos)
		resp.Body.Close()
		if derr != nil {
			continue
		}
		for _, info := range infos {
			if _, taken := merged[info.Name]; !taken {
				merged[info.Name] = info
			}
		}
	}
	p.mu.Lock()
	p.catalog = merged
	p.mu.Unlock()
}

// markFailed feeds one failed exchange into the node's breaker.
func (p *Proxy) markFailed(node string, err error) {
	p.mu.Lock()
	if ns, ok := p.nodes[node]; ok {
		ns.br.Failure()
		ns.errMsg = err.Error()
		ns.failed++
	}
	p.mu.Unlock()
}

// markOK feeds one successful exchange into the node's breaker — in
// particular, the success that closes a half-open circuit after its
// probe request came back.
func (p *Proxy) markOK(node string) {
	p.mu.Lock()
	if ns, ok := p.nodes[node]; ok {
		ns.br.Success()
		ns.errMsg = ""
		ns.ok++
	}
	p.mu.Unlock()
}

// resolveWorkload maps a catalog name to its descriptor hash,
// refreshing the merged catalog once on a miss (a workload registered
// since the last sweep should not 404 until the next tick).
func (p *Proxy) resolveWorkload(ctx context.Context, name string) (string, bool) {
	p.mu.Lock()
	info, ok := p.catalog[name]
	p.mu.Unlock()
	if ok {
		return info.Hash, true
	}
	p.refreshCatalog(ctx)
	p.mu.Lock()
	info, ok = p.catalog[name]
	p.mu.Unlock()
	return info.Hash, ok
}

// pick chooses the serving node for a shard hash: ring candidates,
// breaker willing, bounded load. Allow claims the half-open probe slot
// when it fires, so the submission routed to a recovering node IS its
// probe — the outcome is reported back through markOK/markFailed like
// any other exchange.
func (p *Proxy) pick(hash string) string {
	p.mu.Lock()
	brs := make(map[string]*Breaker, len(p.nodes))
	load := make(map[string]int, len(p.nodes))
	for n, ns := range p.nodes {
		brs[n] = ns.br
		load[n] = ns.inflight
	}
	p.mu.Unlock()
	// BoundedPick asks the alive predicate more than once per node;
	// memoize Allow so one pick claims at most one probe per breaker,
	// and release the probes of nodes that were allowed but not chosen
	// (bounded load can skip them), since no outcome will be reported.
	decided := map[string]bool{}
	allow := func(n string) bool {
		v, ok := decided[n]
		if !ok {
			v = brs[n].Allow()
			decided[n] = v
		}
		return v
	}
	picked := p.ring.BoundedPick(hash, p.opts.LoadFactor,
		allow, func(n string) int { return load[n] })
	for n, allowed := range decided {
		if allowed && n != picked {
			brs[n].ReleaseProbe()
		}
	}
	return picked
}

func (p *Proxy) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("proxy: reading submit body: %w", err))
		return
	}
	var req serve.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("proxy: malformed submit request: %w", err))
		return
	}

	// TimeoutMS is the request's whole deadline budget; every hop from
	// here on — node retries, failover, the engine run itself — draws
	// from it, and each forward carries only what remains.
	arrival := time.Now()
	budget := time.Duration(req.TimeoutMS) * time.Millisecond
	remaining := func() (time.Duration, bool) {
		if budget <= 0 {
			return 0, true
		}
		left := budget - time.Since(arrival)
		return left, left > 0
	}

	tenant := r.Header.Get(TenantHeader)
	release, retryAfter, err := p.adm.Admit(tenant)
	if err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}

	// Every proxied submit travels under an idempotency key — the
	// client's when it sent one (body or header), a proxy-generated one
	// otherwise — so the retries below can never double-run a job the
	// node had already accepted when the response was lost.
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = r.Header.Get(serve.IdempotencyHeader)
	}
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = serve.NewIdempotencyKey()
	}

	hash, ok := p.resolveWorkload(r.Context(), req.Workload)
	if !ok {
		release()
		writeError(w, http.StatusNotFound,
			fmt.Errorf("proxy: unknown workload %q (fleet serves: %s)", req.Workload, strings.Join(p.workloadNames(), ", ")))
		return
	}

	// Forward to the shard owner. A transport failure is retried on the
	// same node first — the key dedupes there even if the lost response
	// had been an acceptance — and trips the breaker after the retries,
	// sending the submission to the next ring candidate.
	sameNode := p.opts.SubmitRetries
	if sameNode <= 0 {
		sameNode = 1
	}
	tried := map[string]bool{}
	for {
		node := p.pick(hash)
		if node == "" || tried[node] {
			release()
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("proxy: no alive node for workload %q", req.Workload))
			return
		}
		tried[node] = true

		var blob []byte
		var resp *http.Response
		var ferr error
		for attempt := 0; attempt <= sameNode; attempt++ {
			left, inBudget := remaining()
			if !inBudget {
				release()
				writeError(w, http.StatusGatewayTimeout,
					fmt.Errorf("proxy: deadline budget (%s) exhausted before the submission reached a node", budget))
				return
			}
			fctx := r.Context()
			var cancel context.CancelFunc
			if budget > 0 {
				req.TimeoutMS = int64(left / time.Millisecond)
				if req.TimeoutMS < 1 {
					req.TimeoutMS = 1
				}
				fctx, cancel = context.WithTimeout(fctx, left)
			}
			out, merr := json.Marshal(req)
			if merr != nil {
				if cancel != nil {
					cancel()
				}
				release()
				writeError(w, http.StatusInternalServerError, merr)
				return
			}
			resp, ferr = p.forward(fctx, node, http.MethodPost, "/v1/jobs", out, tenant)
			if ferr == nil {
				blob, ferr = io.ReadAll(resp.Body)
				resp.Body.Close()
			}
			if cancel != nil {
				cancel()
			}
			if ferr == nil {
				break
			}
			if r.Context().Err() != nil {
				release()
				return // the client went away; nothing to answer
			}
			if attempt < sameNode {
				select {
				case <-time.After(25 * time.Millisecond):
				case <-r.Context().Done():
					release()
					return
				}
			}
		}
		if ferr != nil {
			p.markFailed(node, ferr)
			continue
		}

		p.markOK(node)
		accepted := resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK
		if accepted {
			var st serve.JobStatus
			if json.Unmarshal(blob, &st) == nil && st.JobID != "" {
				p.mu.Lock()
				p.jobs[st.JobID] = node
				p.nodes[node].inflight++
				p.mu.Unlock()
				p.wg.Add(1)
				go p.watch(st.JobID, node, release)
			} else {
				release()
			}
		} else {
			// The node answered: the rejection (bad algorithm, invalid
			// options, draining, shedding) passes through verbatim —
			// Retry-After and all.
			release()
		}
		if v := resp.Header.Get(serve.ReplayedHeader); v != "" {
			w.Header().Set(serve.ReplayedHeader, v)
		}
		if v := resp.Header.Get("Retry-After"); v != "" {
			w.Header().Set("Retry-After", v)
		}
		passthrough(w, resp.StatusCode, resp.Header.Get("Content-Type"), blob)
		return
	}
}

// watch polls the job on its node until it is terminal, then frees the
// admission slot and the node's in-flight count.
func (p *Proxy) watch(jobID, node string, release func()) {
	defer p.wg.Done()
	defer release()
	defer func() {
		p.mu.Lock()
		if ns, ok := p.nodes[node]; ok && ns.inflight > 0 {
			ns.inflight--
		}
		p.mu.Unlock()
	}()
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-t.C:
		}
		st, err := p.jobStatus(p.ctx, node, jobID)
		if err != nil {
			p.markFailed(node, err)
			return
		}
		switch st.Status {
		case serve.StatusDone, serve.StatusFailed, serve.StatusCancelled:
			return
		}
	}
}

func (p *Proxy) jobStatus(ctx context.Context, node, jobID string) (*serve.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/v1/jobs/"+jobID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("proxy: node %s returned %d for job %s", node, resp.StatusCode, jobID)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// nodeForJob locates the node serving a job id: the submit-time record
// first, then a probe of the alive fleet (jobs submitted around the
// proxy, or before a proxy restart, are still reachable through it).
func (p *Proxy) nodeForJob(ctx context.Context, jobID string) (string, bool) {
	p.mu.Lock()
	node, ok := p.jobs[jobID]
	p.mu.Unlock()
	if ok {
		return node, true
	}
	for _, n := range p.ring.Nodes() {
		p.mu.Lock()
		alive := p.nodes[n].br.Healthy()
		p.mu.Unlock()
		if !alive {
			continue
		}
		if _, err := p.jobStatus(ctx, n, jobID); err == nil {
			p.mu.Lock()
			p.jobs[jobID] = n
			p.mu.Unlock()
			return n, true
		}
	}
	return "", false
}

func (p *Proxy) handleJobGet(w http.ResponseWriter, r *http.Request) {
	p.forwardJob(w, r, http.MethodGet)
}
func (p *Proxy) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	p.forwardJob(w, r, http.MethodDelete)
}

func (p *Proxy) forwardJob(w http.ResponseWriter, r *http.Request, method string) {
	id := r.PathValue("id")
	node, ok := p.nodeForJob(r.Context(), id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("proxy: unknown job %q", id))
		return
	}
	resp, err := p.forward(r.Context(), node, method, "/v1/jobs/"+id, nil, r.Header.Get(TenantHeader))
	if err != nil {
		p.markFailed(node, err)
		writeError(w, http.StatusBadGateway, fmt.Errorf("proxy: node %s unreachable: %w", node, err))
		return
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	passthrough(w, resp.StatusCode, resp.Header.Get("Content-Type"), blob)
}

// handleEvents streams the owning node's SSE stream through
// unbuffered: each chunk read from the node is written and flushed
// immediately, so proxied subscribers observe the same events in the
// same order as direct ones.
func (p *Proxy) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	node, ok := p.nodeForJob(r.Context(), id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("proxy: unknown job %q", id))
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("proxy: response writer cannot stream"))
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, node+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		p.markFailed(node, err)
		writeError(w, http.StatusBadGateway, fmt.Errorf("proxy: node %s unreachable: %w", node, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(resp.StatusCode)
	fl.Flush()
	buf := make([]byte, 8192)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			fl.Flush()
		}
		if err != nil {
			return
		}
	}
}

// handleList aggregates the alive nodes' job listings into one page
// (pagination cursors are node-local, so the proxy serves the merged
// full listing; page against nodes directly for cursor semantics).
func (p *Proxy) handleList(w http.ResponseWriter, r *http.Request) {
	out := serve.JobsPageResponse{Jobs: []*serve.JobStatus{}}
	for _, node := range p.ring.Nodes() {
		p.mu.Lock()
		alive := p.nodes[node].br.Healthy()
		p.mu.Unlock()
		if !alive {
			continue
		}
		resp, err := p.forward(r.Context(), node, http.MethodGet, "/v1/jobs", nil, "")
		if err != nil {
			p.markFailed(node, err)
			continue
		}
		var page serve.JobsPageResponse
		derr := json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if derr != nil {
			continue
		}
		out.Jobs = append(out.Jobs, page.Jobs...)
	}
	writeJSON(w, http.StatusOK, out)
}

func (p *Proxy) workloadNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.catalog))
	for name := range p.catalog {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// handleWorkloads serves the merged fleet catalog in the same shape a
// single node does, so serve.Client works against the proxy unchanged.
func (p *Proxy) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	infos := make([]serve.WorkloadInfo, 0, len(p.catalog))
	for _, info := range p.catalog {
		infos = append(infos, info)
	}
	p.mu.Unlock()
	if len(infos) == 0 {
		p.refreshCatalog(r.Context())
		p.mu.Lock()
		for _, info := range p.catalog {
			infos = append(infos, info)
		}
		p.mu.Unlock()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

// handleAppendRows forwards a row-append batch to the workload's ring
// owner. Appends route strictly to Owner — never spilled under load,
// never failed over — because a batch landing on a different node
// would fork the shard's table version history; and they are forwarded
// exactly once — never retried — because an append is not idempotent:
// a lost response leaves the committed/uncommitted question to the
// caller, who can compare the catalog's table_version. A dead owner is
// an explicit 503, not a silent reroute.
func (p *Proxy) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("proxy: reading append body: %w", err))
		return
	}
	hash, ok := p.resolveWorkload(r.Context(), name)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("proxy: unknown workload %q (fleet serves: %s)", name, strings.Join(p.workloadNames(), ", ")))
		return
	}
	node := p.ring.Owner(hash)
	if node == "" {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("proxy: no node for workload %q", name))
		return
	}
	p.mu.Lock()
	ns := p.nodes[node]
	p.mu.Unlock()
	if ns == nil || !ns.br.Allow() {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("proxy: workload %q owner %s is unavailable; appends do not fail over", name, node))
		return
	}
	resp, ferr := p.forward(r.Context(), node, http.MethodPost,
		"/v1/workloads/"+url.PathEscape(name)+"/rows", body, r.Header.Get(TenantHeader))
	if ferr != nil {
		p.markFailed(node, ferr)
		writeError(w, http.StatusBadGateway, fmt.Errorf("proxy: node %s unreachable (append not retried): %w", node, ferr))
		return
	}
	defer resp.Body.Close()
	blob, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		writeError(w, http.StatusBadGateway, rerr)
		return
	}
	p.markOK(node)
	if v := resp.Header.Get("Retry-After"); v != "" {
		w.Header().Set("Retry-After", v)
	}
	passthrough(w, resp.StatusCode, resp.Header.Get("Content-Type"), blob)
}

func (p *Proxy) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	for _, node := range p.ring.Nodes() {
		p.mu.Lock()
		alive := p.nodes[node].br.Healthy()
		p.mu.Unlock()
		if !alive {
			continue
		}
		resp, err := p.forward(r.Context(), node, http.MethodGet, "/v1/algorithms", nil, "")
		if err != nil {
			p.markFailed(node, err)
			continue
		}
		blob, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			continue
		}
		passthrough(w, resp.StatusCode, resp.Header.Get("Content-Type"), blob)
		return
	}
	writeError(w, http.StatusServiceUnavailable, fmt.Errorf("proxy: no alive node"))
}

// NodeHealth is the proxy's healthz view of one fleet member. Alive
// means the node's circuit is not open (closed, or half-open probing);
// Breaker is the circuit's exact position.
type NodeHealth struct {
	Addr     string              `json:"addr"`
	Alive    bool                `json:"alive"`
	Breaker  BreakerState        `json:"breaker"`
	Inflight int                 `json:"inflight"`
	Error    string              `json:"error,omitempty"`
	Node     *serve.NodeIdentity `json:"node,omitempty"`
}

// HealthResponse is the proxy's healthz body: "ok" with every node
// alive, "degraded" with some dead, "down" with none alive. It also
// surfaces the sweep configuration operators tune — the background
// health-sweep period (0 = disabled) and the per-node probe timeout.
type HealthResponse struct {
	Status          string       `json:"status"`
	SweepIntervalMS int64        `json:"sweep_interval_ms"`
	ProbeTimeoutMS  int64        `json:"probe_timeout_ms"`
	Nodes           []NodeHealth `json:"nodes"`
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	resp := HealthResponse{
		Status:          "ok",
		SweepIntervalMS: p.sweepEvery.Milliseconds(),
		ProbeTimeoutMS:  p.probeTimeout().Milliseconds(),
	}
	aliveCount := 0
	for _, node := range p.ring.Nodes() {
		ns := p.nodes[node]
		state := ns.br.State()
		alive := state != BreakerOpen
		if alive {
			aliveCount++
		}
		resp.Nodes = append(resp.Nodes, NodeHealth{
			Addr: node, Alive: alive, Breaker: state, Inflight: ns.inflight, Error: ns.errMsg, Node: ns.identity,
		})
	}
	p.mu.Unlock()
	switch {
	case aliveCount == 0:
		resp.Status = "down"
	case aliveCount < len(resp.Nodes):
		resp.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the proxy's own Prometheus text exposition:
// the fleet view — per-node liveness, breaker position, in-flight
// jobs, exchange counters — plus how many shards each node advertises.
// Per-shard serving series (latency quantiles, merge rate, memo hits)
// live on the nodes' own /metrics; the proxy's /healthz lists their
// addresses.
func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	mw := metrics.NewWriter()
	p.mu.Lock()
	for _, node := range p.ring.Nodes() {
		ns := p.nodes[node]
		labels := []metrics.Label{{Name: "node", Value: node}}
		state := ns.br.State()
		up := 0.0
		if state != BreakerOpen {
			up = 1
		}
		mw.Header("modisproxy_node_up", "1 while the node's circuit is not open.", "gauge")
		mw.Sample("modisproxy_node_up", labels, up)
		mw.Header("modisproxy_node_breaker_state", "Circuit position: 0 closed, 1 half-open, 2 open.", "gauge")
		mw.Sample("modisproxy_node_breaker_state", labels, float64(breakerStateValue(state)))
		mw.Header("modisproxy_node_inflight", "Jobs this proxy has in flight on the node.", "gauge")
		mw.Sample("modisproxy_node_inflight", labels, float64(ns.inflight))
		mw.Header("modisproxy_node_exchanges_total", "Exchanges with the node by outcome.", "counter")
		okLabels := append(append([]metrics.Label(nil), labels...), metrics.Label{Name: "outcome", Value: "ok"})
		mw.Sample("modisproxy_node_exchanges_total", okLabels, float64(ns.ok))
		failLabels := append(append([]metrics.Label(nil), labels...), metrics.Label{Name: "outcome", Value: "failed"})
		mw.Sample("modisproxy_node_exchanges_total", failLabels, float64(ns.failed))
		if ns.identity != nil {
			mw.Header("modisproxy_node_shards", "Workload shards the node advertises.", "gauge")
			mw.Sample("modisproxy_node_shards", labels, float64(len(ns.identity.Shards)))
		}
	}
	routed := len(p.jobs)
	p.mu.Unlock()
	mw.Header("modisproxy_jobs_routed", "Job ids this proxy can currently route reads for.", "gauge")
	mw.Sample("modisproxy_jobs_routed", nil, float64(routed))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(mw.Bytes())
}

// breakerStateValue maps the circuit position onto the stable gauge
// encoding /metrics exports.
func breakerStateValue(s BreakerState) int {
	switch s {
	case BreakerHalfOpen:
		return 1
	case BreakerOpen:
		return 2
	default:
		return 0
	}
}

func (p *Proxy) forward(ctx context.Context, node, method, path string, body []byte, tenant string) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, node+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	return p.hc.Do(req)
}

// retryAfterSeconds renders a wait as the Retry-After integer: ceiling
// seconds, at least 1 — a client honoring it never retries early.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

func passthrough(w http.ResponseWriter, status int, contentType string, body []byte) {
	if contentType != "" {
		w.Header().Set("Content-Type", contentType)
	}
	w.WriteHeader(status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
