package proxy_test

// Black-box fleet tests: real serve.Server nodes behind httptest, a
// Proxy in front, the stock serve.Client as the caller — the proxy is
// transparent exactly when the client cannot tell it from a node.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/fst"
	"repro/internal/table"
	"repro/modis"
	"repro/modis/proxy"
	"repro/modis/serve"
	"repro/modis/workload"
)

// shapeModel mirrors the serve package's test model: two opposing
// measures derived from the dataset shape, so results are a pure
// function of the state and byte-identical across nodes.
type shapeModel struct {
	space *fst.Space
	sleep time.Duration
}

func (m *shapeModel) Name() string { return "shape" }

func (m *shapeModel) Evaluate(d *table.Table) ([]float64, error) {
	if m.sleep > 0 {
		time.Sleep(m.sleep)
	}
	rows, cols := float64(d.NumRows()), float64(d.NumCols())
	uRows := float64(m.space.Universal.NumRows())
	uCols := float64(m.space.Universal.NumCols())
	return []float64{
		0.1 + 0.9*(rows/uRows)*(cols/uCols),
		0.1 + 0.9*(1-rows/uRows),
	}, nil
}

// newShapeConfig builds an independent deterministic config. variant
// perturbs the universal table, so different variants registered under
// different names hash to different shards.
func newShapeConfig(tb testing.TB, variant int, sleep time.Duration) *fst.Config {
	tb.Helper()
	u := table.New("D_U", table.Schema{
		{Name: "a", Kind: table.KindFloat},
		{Name: "b", Kind: table.KindFloat},
		{Name: "target", Kind: table.KindInt},
	})
	for i := 0; i < 24+variant; i++ {
		u.MustAppend(table.Row{
			table.Float(float64(i % 3)),
			table.Float(float64(i % 4)),
			table.Int(int64(i % 2)),
		})
	}
	sp := fst.NewSpace(u, "target", fst.SpaceConfig{MaxLiteralsPerAttr: 4})
	return &fst.Config{
		Space: sp,
		Model: &shapeModel{space: sp, sleep: sleep},
		Measures: []fst.Measure{
			{Name: "p0", Normalize: fst.Identity(1e-3)},
			{Name: "p1", Normalize: fst.Identity(1e-3)},
		},
	}
}

// submitReq is the canonical test submission: seeded, level-bounded,
// so a run is a pure function of the workload.
func submitReq(name string) serve.SubmitRequest {
	eps, lvl, k, seed := 0.15, 3, 3, int64(2)
	return serve.SubmitRequest{
		Workload:  name,
		Algorithm: "bi",
		Options:   &serve.JobOptions{Epsilon: &eps, MaxLevel: &lvl, K: &k, Seed: &seed},
	}
}

// node is one modisd-equivalent fleet member.
type node struct {
	sched *serve.Scheduler
	hs    *httptest.Server
}

// startFleet launches n nodes, each registering every workload named
// wl0..wl<variants-1> (variant i under name "wl<i>"), so any node can
// serve any workload and reroutes have somewhere to land.
func startFleet(tb testing.TB, n, variants int, sleep time.Duration) []*node {
	tb.Helper()
	fleet := make([]*node, n)
	for i := range fleet {
		sched := serve.NewScheduler(serve.SchedulerOptions{})
		for v := 0; v < variants; v++ {
			name := fmt.Sprintf("wl%d", v)
			cfg := newShapeConfig(tb, v, sleep)
			desc, err := workload.Describe(name, cfg)
			if err != nil {
				tb.Fatal(err)
			}
			if err := sched.Register(desc, cfg); err != nil {
				tb.Fatal(err)
			}
		}
		srv := serve.NewServer(sched, serve.ServerOptions{})
		hs := httptest.NewServer(srv)
		tb.Cleanup(hs.Close)
		fleet[i] = &node{sched: sched, hs: hs}
	}
	return fleet
}

// startProxy fronts the fleet with a Proxy (background sweeps off —
// tests drive CheckNow) and returns the proxy, its front URL, and a
// client speaking to it.
func startProxy(tb testing.TB, fleet []*node, adm proxy.AdmissionOptions) (*proxy.Proxy, string, *serve.Client) {
	tb.Helper()
	var addrs []string
	for _, n := range fleet {
		addrs = append(addrs, n.hs.URL)
	}
	p := proxy.New(proxy.Options{Nodes: addrs, HealthInterval: -1, Admission: adm})
	tb.Cleanup(p.Close)
	p.CheckNow(context.Background())
	hs := httptest.NewServer(p)
	tb.Cleanup(hs.Close)
	return p, hs.URL, serve.NewClient(hs.URL)
}

// jobsOn counts the jobs a node holds.
func jobsOn(tb testing.TB, n *node) int {
	tb.Helper()
	page, err := serve.NewClient(n.hs.URL).List(context.Background(), "", 0)
	if err != nil {
		tb.Fatal(err)
	}
	return len(page.Jobs)
}

// ownerOf finds the fleet node holding a job.
func ownerOf(tb testing.TB, fleet []*node, jobID string) *node {
	tb.Helper()
	for _, n := range fleet {
		if _, err := serve.NewClient(n.hs.URL).Status(context.Background(), jobID); err == nil {
			return n
		}
	}
	tb.Fatalf("no fleet node holds job %s", jobID)
	return nil
}

func waitDone(tb testing.TB, cl *serve.Client, jobID string) *serve.JobStatus {
	tb.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := cl.Wait(ctx, jobID, 5*time.Millisecond)
	if err != nil {
		tb.Fatal(err)
	}
	if st.Status != serve.StatusDone {
		tb.Fatalf("job %s ended %s: %s", jobID, st.Status, st.Error)
	}
	return st
}

func skylineJSON(tb testing.TB, rep *modis.Report) string {
	tb.Helper()
	if rep == nil {
		tb.Fatal("no report on a done job")
	}
	blob, err := json.Marshal(rep.Skyline)
	if err != nil {
		tb.Fatal(err)
	}
	return string(blob)
}

// TestProxyRoutingDeterminism: two proxies over permuted fleet lists
// send the same workload to the same node, and that node's advertised
// shard set (the /healthz identity) contains the workload's hash.
func TestProxyRoutingDeterminism(t *testing.T) {
	fleet := startFleet(t, 3, 2, 0)
	_, _, clA := startProxy(t, fleet, proxy.AdmissionOptions{})
	reversed := []*node{fleet[2], fleet[1], fleet[0]}
	_, _, clB := startProxy(t, reversed, proxy.AdmissionOptions{})
	ctx := context.Background()

	stA, err := clA.Submit(ctx, submitReq("wl0"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, clA, stA.JobID)
	stB, err := clB.Submit(ctx, submitReq("wl0"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, clB, stB.JobID)

	owner := ownerOf(t, fleet, stA.JobID)
	if got := ownerOf(t, fleet, stB.JobID); got != owner {
		t.Fatal("proxies over permuted node lists routed one workload to different nodes")
	}
	if got := jobsOn(t, owner); got != 2 {
		t.Errorf("owner holds %d jobs, want both submissions (2)", got)
	}
	for _, n := range fleet {
		if n != owner {
			if got := jobsOn(t, n); got != 0 {
				t.Errorf("non-owner holds %d jobs, want 0", got)
			}
		}
	}

	// The owner's node identity advertises the shard: wl0's descriptor
	// hash appears in its /healthz shard list.
	infos, err := clA.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hash := ""
	for _, info := range infos {
		if info.Name == "wl0" {
			hash = info.Hash
		}
	}
	if len(hash) != 64 {
		t.Fatalf("merged catalog has no wl0 hash: %+v", infos)
	}
	found := false
	for _, sh := range owner.sched.Shards() {
		if sh.Hash == hash && sh.Jobs >= 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("owner's shard list %+v does not account for wl0 (%s)", owner.sched.Shards(), hash[:12])
	}
}

// TestProxySkylineMatchesDirect is the acceptance criterion: a job
// submitted through the proxy returns a byte-identical skyline to the
// same job submitted directly to the owning node.
func TestProxySkylineMatchesDirect(t *testing.T) {
	fleet := startFleet(t, 2, 1, 0)
	_, _, cl := startProxy(t, fleet, proxy.AdmissionOptions{})
	ctx := context.Background()

	st, err := cl.Submit(ctx, submitReq("wl0"))
	if err != nil {
		t.Fatal(err)
	}
	viaProxy := waitDone(t, cl, st.JobID)

	owner := ownerOf(t, fleet, st.JobID)
	direct := serve.NewClient(owner.hs.URL)
	st2, err := direct.Submit(ctx, submitReq("wl0"))
	if err != nil {
		t.Fatal(err)
	}
	viaDirect := waitDone(t, direct, st2.JobID)

	if p, d := skylineJSON(t, viaProxy.Report), skylineJSON(t, viaDirect.Report); p != d {
		t.Errorf("proxied skyline diverges from direct\n proxy:  %s\n direct: %s", p, d)
	}
}

// TestProxySSEPassThrough: the event stream read through the proxy is
// the same sequence, in the same order, as the stream read directly
// from the owning node (streams replay from the job's start, so a
// finished job still serves its full sequence).
func TestProxySSEPassThrough(t *testing.T) {
	fleet := startFleet(t, 2, 1, 0)
	_, _, cl := startProxy(t, fleet, proxy.AdmissionOptions{})
	ctx := context.Background()

	st, err := cl.Submit(ctx, submitReq("wl0"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cl, st.JobID)
	owner := ownerOf(t, fleet, st.JobID)

	render := func(evs []modis.Event) []string {
		out := make([]string, len(evs))
		for i, ev := range evs {
			blob, err := json.Marshal(ev)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = string(blob)
		}
		return out
	}
	var proxied, directly []modis.Event
	if _, err := cl.Events(ctx, st.JobID, func(ev modis.Event) { proxied = append(proxied, ev) }); err != nil {
		t.Fatal(err)
	}
	if _, err := serve.NewClient(owner.hs.URL).Events(ctx, st.JobID, func(ev modis.Event) { directly = append(directly, ev) }); err != nil {
		t.Fatal(err)
	}
	p, d := render(proxied), render(directly)
	if len(p) == 0 {
		t.Fatal("no events through the proxy")
	}
	if len(p) != len(d) {
		t.Fatalf("proxied stream has %d events, direct has %d", len(p), len(d))
	}
	for i := range p {
		if p[i] != d[i] {
			t.Fatalf("event %d differs through the proxy\n proxy:  %s\n direct: %s", i, p[i], d[i])
		}
	}
}

// TestProxyDeadNodeReroute: killing a workload's owning node and
// sweeping health reroutes the resubmission to a surviving node, where
// it completes.
func TestProxyDeadNodeReroute(t *testing.T) {
	fleet := startFleet(t, 2, 1, 0)
	p, front, cl := startProxy(t, fleet, proxy.AdmissionOptions{})
	ctx := context.Background()

	st, err := cl.Submit(ctx, submitReq("wl0"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cl, st.JobID)
	owner := ownerOf(t, fleet, st.JobID)
	var survivor *node
	for _, n := range fleet {
		if n != owner {
			survivor = n
		}
	}

	owner.hs.Close()
	p.CheckNow(ctx)

	st2, err := cl.Submit(ctx, submitReq("wl0"))
	if err != nil {
		t.Fatalf("resubmission after owner death: %v", err)
	}
	waitDone(t, cl, st2.JobID)
	if got := jobsOn(t, survivor); got != 1 {
		t.Errorf("survivor holds %d jobs, want the rerouted one (1)", got)
	}

	// The proxy's own health view degrades but stays serving.
	resp, err := http.Get(front + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr proxy.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" {
		t.Errorf("proxy health %q with one node dead, want degraded", hr.Status)
	}
}

// TestProxyRateLimit: a tenant past its burst gets 429 with a
// Retry-After of at least one second, and the rejection names the
// throttle in its JSON body.
func TestProxyRateLimit(t *testing.T) {
	fleet := startFleet(t, 1, 1, 0)
	var addrs []string
	for _, n := range fleet {
		addrs = append(addrs, n.hs.URL)
	}
	p := proxy.New(proxy.Options{Nodes: addrs, HealthInterval: -1,
		Admission: proxy.AdmissionOptions{Rate: 0.001, Burst: 1}})
	t.Cleanup(p.Close)
	p.CheckNow(context.Background())
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	cl := serve.NewClient(front.URL)

	st, err := cl.Submit(context.Background(), submitReq("wl0"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cl, st.JobID)

	resp := postSubmit(t, front.URL, "wl0", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit past burst returned %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Errorf("429 body must carry a JSON error, got decode err %v, error %q", err, body.Error)
	}
}

// TestProxyTenantCaps: with one concurrent job per tenant, a tenant
// with a running job is rejected 429 while another tenant is admitted;
// the slot frees once the job finishes.
func TestProxyTenantCaps(t *testing.T) {
	fleet := startFleet(t, 1, 1, 500*time.Microsecond)
	var addrs []string
	for _, n := range fleet {
		addrs = append(addrs, n.hs.URL)
	}
	p := proxy.New(proxy.Options{Nodes: addrs, HealthInterval: -1,
		Admission: proxy.AdmissionOptions{MaxTenantJobs: 1}})
	t.Cleanup(p.Close)
	p.CheckNow(context.Background())
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	cl := serve.NewClient(front.URL)

	first := postSubmit(t, front.URL, "wl0", "alice")
	blob1, st1 := decodeStatus(t, first)
	if first.StatusCode != http.StatusAccepted || st1 == nil {
		t.Fatalf("first submit returned %d: %s", first.StatusCode, blob1)
	}

	second := postSubmit(t, front.URL, "wl0", "alice")
	io2, _ := decodeStatus(t, second)
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("capped tenant's submit returned %d (%s), want 429", second.StatusCode, io2)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}

	other := postSubmit(t, front.URL, "wl0", "bob")
	io3, st3 := decodeStatus(t, other)
	if other.StatusCode != http.StatusAccepted || st3 == nil {
		t.Fatalf("other tenant's submit returned %d (%s), want 202", other.StatusCode, io3)
	}

	// Once the jobs finish and the proxy's watcher releases the slots,
	// the capped tenant admits again.
	waitDone(t, cl, st1.JobID)
	waitDone(t, cl, st3.JobID)
	deadline := time.Now().Add(10 * time.Second)
	for {
		retry := postSubmit(t, front.URL, "wl0", "alice")
		_, stR := decodeStatus(t, retry)
		if retry.StatusCode == http.StatusAccepted {
			waitDone(t, cl, stR.JobID)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tenant slot never released after its job finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// postSubmit fires a raw POST /v1/jobs so status codes and headers
// stay observable.
func postSubmit(tb testing.TB, base, workloadName, tenant string) *http.Response {
	tb.Helper()
	blob, err := json.Marshal(submitReq(workloadName))
	if err != nil {
		tb.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(blob))
	if err != nil {
		tb.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(proxy.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	return resp
}

// decodeStatus drains a submit response, returning the raw body and
// (when parseable) the JobStatus.
func decodeStatus(tb testing.TB, resp *http.Response) (string, *serve.JobStatus) {
	tb.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		tb.Fatal(err)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
		return buf.String(), nil
	}
	return buf.String(), &st
}
