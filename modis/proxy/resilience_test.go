package proxy_test

// Fleet-resilience tests at the proxy layer: breaker states on
// /healthz, keyed submit failover to a ring sibling, shed responses
// passed through verbatim, and the proxy's own deadline-budget
// exhaustion answer.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/modis/proxy"
	"repro/modis/serve"
	"repro/modis/workload"
)

// TestProxyHealthzSurfacesBreakers: /healthz names each node's breaker
// state and the sweep configuration; a dead node reads open/degraded,
// and a recovered sweep closes it again.
func TestProxyHealthzSurfacesBreakers(t *testing.T) {
	fleet := startFleet(t, 2, 1, 0)
	p, front, _ := startProxy(t, fleet, proxy.AdmissionOptions{})

	var hr proxy.HealthResponse
	getHealth := func() proxy.HealthResponse {
		t.Helper()
		resp, err := http.Get(front + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		return hr
	}

	h := getHealth()
	if h.Status != "ok" {
		t.Fatalf("healthz status %q, want ok", h.Status)
	}
	if h.SweepIntervalMS != 0 {
		t.Errorf("sweeps are off (-1); sweep_interval_ms = %d, want 0", h.SweepIntervalMS)
	}
	if h.ProbeTimeoutMS != 1000 {
		t.Errorf("probe_timeout_ms = %d, want the 1000 default", h.ProbeTimeoutMS)
	}
	for _, n := range h.Nodes {
		if n.Breaker != proxy.BreakerClosed || !n.Alive {
			t.Errorf("node %s = breaker %q alive %v, want closed/alive", n.Addr, n.Breaker, n.Alive)
		}
	}

	// One node dies; the sweep opens its breaker and degrades the fleet.
	fleet[0].hs.Close()
	p.CheckNow(context.Background())
	h = getHealth()
	if h.Status != "degraded" {
		t.Fatalf("healthz status %q after a node death, want degraded", h.Status)
	}
	var open, closed int
	for _, n := range h.Nodes {
		switch n.Breaker {
		case proxy.BreakerOpen:
			open++
			if n.Alive {
				t.Errorf("open breaker on %s still reads alive", n.Addr)
			}
			if n.Error == "" {
				t.Errorf("open breaker on %s carries no error detail", n.Addr)
			}
		case proxy.BreakerClosed:
			closed++
		}
	}
	if open != 1 || closed != 1 {
		t.Fatalf("breakers after one death: %d open, %d closed; want 1/1", open, closed)
	}
}

// TestProxyKeyedSubmitFailover: a keyed submission whose shard owner
// is dead fails over to a ring sibling under the same key, and a
// client retry of the same key replays that job instead of double-
// running it.
func TestProxyKeyedSubmitFailover(t *testing.T) {
	fleet := startFleet(t, 2, 1, 0)
	_, _, cl := startProxy(t, fleet, proxy.AdmissionOptions{})
	ctx := context.Background()

	// Locate the shard owner with a scout job, then kill it.
	scout, err := cl.Submit(ctx, submitReq("wl0"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, cl, scout.JobID)
	owner := ownerOf(t, fleet, scout.JobID)
	var survivor *node
	for _, n := range fleet {
		if n != owner {
			survivor = n
		}
	}
	owner.hs.Close()

	// The keyed submit sees the dead owner first (its breaker is still
	// closed), burns the same-node retries, then fails over.
	req := submitReq("wl0")
	req.IdempotencyKey = "key-failover"
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatalf("keyed submit with dead owner: %v", err)
	}
	final := waitDone(t, cl, st.JobID)
	if final.IdemKey != "key-failover" {
		t.Errorf("failover job carries key %q, want key-failover", final.IdemKey)
	}
	if got := ownerOf(t, fleet, st.JobID); got != survivor {
		t.Error("failover job did not land on the surviving node")
	}

	// A retry of the same key — through the proxy, after the failover —
	// replays the accepted job.
	st2, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st2.JobID != st.JobID {
		t.Fatalf("same-key resubmit returned %q, want the failover job %q", st2.JobID, st.JobID)
	}
}

// TestProxyGeneratesIdempotencyKey: a bare submission (no key from the
// client) still travels under a proxy-minted key, so proxy-side
// retries are safe and the node's status reports the key.
func TestProxyGeneratesIdempotencyKey(t *testing.T) {
	fleet := startFleet(t, 1, 1, 0)
	_, _, cl := startProxy(t, fleet, proxy.AdmissionOptions{})
	st, err := cl.Submit(context.Background(), submitReq("wl0"))
	if err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, cl, st.JobID)
	if final.IdemKey == "" {
		t.Fatal("proxied submission carries no idempotency key; proxy retries would be unsafe")
	}
}

// TestProxyShedPassesThrough: a node shedding on its bounded admission
// queue answers 503 + Retry-After, and the proxy forwards that answer
// verbatim instead of swallowing it.
func TestProxyShedPassesThrough(t *testing.T) {
	// One node with one slot and a one-deep queue, serving a slow model.
	sched := serve.NewScheduler(serve.SchedulerOptions{MaxConcurrent: 1, MaxQueue: 1})
	cfg := newShapeConfig(t, 0, 5*time.Millisecond)
	desc, err := workload.Describe("wl0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Register(desc, cfg); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(serve.NewServer(sched, serve.ServerOptions{}))
	t.Cleanup(hs.Close)
	p := proxy.New(proxy.Options{Nodes: []string{hs.URL}, HealthInterval: -1})
	t.Cleanup(p.Close)
	p.CheckNow(context.Background())
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	cl := serve.NewClient(front.URL)
	ctx := context.Background()

	running, err := cl.Submit(ctx, submitReq("wl0"))
	if err != nil {
		t.Fatal(err)
	}
	waitUntilProxy(t, func() bool {
		st, err := cl.Status(ctx, running.JobID)
		return err == nil && st.Status == serve.StatusRunning
	})
	if _, err := cl.Submit(ctx, submitReq("wl0")); err != nil {
		t.Fatalf("queueable submit rejected: %v", err)
	}
	waitUntilProxy(t, func() bool { return sched.QueueDepth() == 1 })

	// Raw POST so the passthrough headers are visible.
	blob, _ := json.Marshal(submitReq("wl0"))
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed through proxy: status %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed through proxy lost the Retry-After header")
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Errorf("shed body %q does not name the overload", body)
	}
}

// TestProxyDeadlineBudgetExhausted: when every attempt fails and the
// budget runs dry mid-retry, the proxy answers 504 — the terminal
// deadline signal — rather than retrying past the deadline.
func TestProxyDeadlineBudgetExhausted(t *testing.T) {
	fleet := startFleet(t, 1, 1, 0)
	var addrs []string
	for _, n := range fleet {
		addrs = append(addrs, n.hs.URL)
	}
	// Plenty of same-node retries (25ms apart): the 60ms budget dies
	// inside the retry loop, well before the candidate list runs out.
	p := proxy.New(proxy.Options{Nodes: addrs, HealthInterval: -1, SubmitRetries: 20})
	t.Cleanup(p.Close)
	p.CheckNow(context.Background())
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)

	fleet[0].hs.Close()

	req := submitReq("wl0")
	req.TimeoutMS = 60
	blob, _ := json.Marshal(req)
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", strings.NewReader(string(blob)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("budget-exhausted submit: status %d (%s), want 504", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline budget") {
		t.Errorf("504 body %q does not name the budget", body)
	}
	if serve.RetryableStatus(resp.StatusCode) {
		t.Error("504 must classify terminal — a retry would have no budget left")
	}
}

// waitUntilProxy polls cond within a deadline (local twin of the serve
// package's waitUntil).
func waitUntilProxy(tb testing.TB, cond func() bool) {
	tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	tb.Fatal("timed out waiting for condition")
}
