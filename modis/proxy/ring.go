// Package proxy is the multi-node routing layer of the serving stack:
// a thin HTTP proxy (command modisproxy) that consistent-hashes
// workload descriptor hashes across a fleet of modisd nodes, forwards
// the job API and SSE event streams transparently, and applies
// per-tenant admission control at the front door.
//
// Routing is deterministic in the fleet configuration: the same node
// list and the same descriptor hash pick the same node on every proxy
// incarnation, so a shard's jobs — and therefore its memoized
// valuations and persisted state-dir/<hash>/ directory — concentrate
// on one owner without any coordination between proxies.
package proxy

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes and bounded-load
// candidate selection. It is immutable after construction; membership
// changes build a new Ring (cheap: a few thousand points).
type Ring struct {
	nodes  []string
	points []ringPoint
}

type ringPoint struct {
	h    uint64
	node string
}

// DefaultVirtualNodes is the per-node point count when NewRing is
// given 0. More points smooth the load split between nodes; 64 keeps
// the max/mean shard imbalance low for small fleets without making
// ring construction noticeable.
const DefaultVirtualNodes = 64

// hashKey positions a routing key (a descriptor hash) on the ring.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the given node addresses with vnodes
// virtual points per node (0 = DefaultVirtualNodes). Node order does
// not matter — the ring sorts — and duplicate addresses collapse, so
// two proxies configured with permuted node lists route identically.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(r.nodes)*vnodes)
	for _, n := range r.nodes {
		for i := 0; i < vnodes; i++ {
			sum := sha256.Sum256([]byte(n + "#" + itoa(i)))
			r.points = append(r.points, ringPoint{h: binary.BigEndian.Uint64(sum[:8]), node: n})
		}
	}
	// Ties (astronomically unlikely) break by node name, so the walk
	// order is a pure function of the membership set.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

// Nodes returns the ring members, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Candidates returns every node in preference order for the key: the
// clockwise walk from the key's ring position, deduplicated. The first
// entry is the key's owner; the rest are the failover order a
// bounded-load or dead-node pass falls through.
func (r *Ring) Candidates(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]string, 0, len(r.nodes))
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Owner returns the key's first-choice node ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	c := r.Candidates(key)
	if len(c) == 0 {
		return ""
	}
	return c[0]
}

// BoundedPick walks the key's candidates and returns the first node
// that is alive and under the bounded-load ceiling
// ceil(loadFactor·(totalInflight+1)/aliveCount) — the classic
// consistent-hashing-with-bounded-loads rule: keys route to their
// owner until the owner is overloaded relative to the fleet average,
// then spill to the next candidate. If every alive candidate is at the
// ceiling the least-loaded alive one is returned (admission control,
// not routing, is where hard rejection lives); "" means no candidate
// is alive.
func (r *Ring) BoundedPick(key string, loadFactor float64, alive func(string) bool, inflight func(string) int) string {
	cands := r.Candidates(key)
	if loadFactor < 1 {
		loadFactor = 1.25
	}
	total, nAlive := 0, 0
	for _, n := range r.nodes {
		if alive(n) {
			nAlive++
			total += inflight(n)
		}
	}
	if nAlive == 0 {
		return ""
	}
	ceiling := int(math.Ceil(loadFactor * float64(total+1) / float64(nAlive)))
	best, bestLoad := "", math.MaxInt
	for _, n := range cands {
		if !alive(n) {
			continue
		}
		load := inflight(n)
		if load < ceiling {
			return n
		}
		if load < bestLoad {
			best, bestLoad = n, load
		}
	}
	return best
}
