package proxy

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: routing is a pure function of the membership
// set — permuted (and duplicated) node lists build identical rings, so
// two proxy incarnations agree on every key's owner and failover
// order. This is the property that keeps a shard's jobs, memo, and
// state-dir/<hash>/ on one node across proxy restarts.
func TestRingDeterminism(t *testing.T) {
	a := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	b := NewRing([]string{"http://n3", "http://n1", "http://n2", "http://n1", ""}, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("hash-%04d", i)
		ca, cb := a.Candidates(key), b.Candidates(key)
		if len(ca) != 3 || len(cb) != 3 {
			t.Fatalf("key %s: candidate walks %v / %v must cover all nodes once", key, ca, cb)
		}
		for j := range ca {
			if ca[j] != cb[j] {
				t.Fatalf("key %s: rings over permuted node lists disagree: %v vs %v", key, ca, cb)
			}
		}
		if a.Owner(key) != ca[0] {
			t.Fatalf("key %s: Owner %q is not the first candidate %q", key, a.Owner(key), ca[0])
		}
	}
}

// TestRingSpread: virtual nodes split keys across the fleet — no node
// ends up owning everything or nothing.
func TestRingSpread(t *testing.T) {
	r := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	owned := map[string]int{}
	for i := 0; i < 600; i++ {
		owned[r.Owner(fmt.Sprintf("hash-%04d", i))]++
	}
	for _, n := range r.Nodes() {
		if owned[n] == 0 {
			t.Errorf("node %s owns no keys out of 600 — virtual nodes not spreading", n)
		}
		if owned[n] == 600 {
			t.Errorf("node %s owns every key — ring degenerated to one node", n)
		}
	}
}

// TestBoundedPick: alive-and-under-ceiling wins in candidate order;
// dead owners are skipped; overload spills to the next candidate; a
// fully saturated fleet falls back to the least-loaded alive node; a
// fully dead fleet yields "".
func TestBoundedPick(t *testing.T) {
	r := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	const key = "some-descriptor-hash"
	cands := r.Candidates(key)
	owner, second := cands[0], cands[1]

	aliveAll := func(string) bool { return true }
	idle := func(string) int { return 0 }

	if got := r.BoundedPick(key, 0, aliveAll, idle); got != owner {
		t.Errorf("idle fleet: picked %q, want owner %q", got, owner)
	}
	if got := r.BoundedPick(key, 0, func(n string) bool { return n != owner }, idle); got != second {
		t.Errorf("dead owner: picked %q, want next candidate %q", got, second)
	}
	if got := r.BoundedPick(key, 0, func(string) bool { return false }, idle); got != "" {
		t.Errorf("dead fleet: picked %q, want \"\"", got)
	}

	// Owner far over the bounded-load ceiling while the rest idle: the
	// key spills to the next candidate.
	loaded := func(n string) int {
		if n == owner {
			return 100
		}
		return 0
	}
	if got := r.BoundedPick(key, 1.25, aliveAll, loaded); got != second {
		t.Errorf("overloaded owner: picked %q, want spill to %q", got, second)
	}

	// Everyone saturated equally: fall back to a least-loaded alive
	// node rather than rejecting (admission control owns rejection).
	flat := func(string) int { return 100 }
	if got := r.BoundedPick(key, 1.0, aliveAll, flat); got == "" {
		t.Error("saturated fleet: want the least-loaded alive node, got \"\"")
	}
}
