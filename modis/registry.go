package modis

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/fst"
)

// AlgorithmFunc is a registrable search algorithm: the context is
// checked at frontier-pop granularity, the options arrive fully
// resolved (no zero-value sentinels left ambiguous), and the result
// carries the ε-skyline set plus run stats.
type AlgorithmFunc func(ctx context.Context, cfg *fst.Config, opts core.Options) (*core.Result, error)

var (
	regMu    sync.RWMutex
	registry = map[string]AlgorithmFunc{}

	// aliases accept the long-form names the binaries historically used.
	aliases = map[string]string{
		"apxmodis":   "apx",
		"bimodis":    "bi",
		"nobimodis":  "nobi",
		"divmodis":   "div",
		"exactmodis": "exact",
	}
)

func init() {
	mustRegister("apx", core.ApxMODis)
	mustRegister("bi", core.BiMODis)
	mustRegister("nobi", core.NOBiMODis)
	mustRegister("div", core.DivMODis)
	mustRegister("exact", core.ExactMODis)
}

// Register adds an algorithm under a new key (case-insensitive). It
// rejects empty keys and keys already taken by an algorithm or alias.
func Register(name string, fn AlgorithmFunc) error {
	key := normalize(name)
	if key == "" {
		return fmt.Errorf("modis: Register: empty algorithm name")
	}
	if fn == nil {
		return fmt.Errorf("modis: Register(%q): nil algorithm", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[key]; ok {
		return fmt.Errorf("modis: Register(%q): already registered", name)
	}
	if _, ok := aliases[key]; ok {
		return fmt.Errorf("modis: Register(%q): name is a reserved alias", name)
	}
	registry[key] = fn
	return nil
}

func mustRegister(name string, fn AlgorithmFunc) {
	if err := Register(name, fn); err != nil {
		panic(err)
	}
}

// Algorithms lists the registered canonical keys, sorted.
func Algorithms() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return algorithmsLocked()
}

// UnknownAlgorithmError reports a run request naming an algorithm the
// registry does not know. It always carries the registered canonical
// keys, so callers — and wire layers like modis/serve, which maps it
// to HTTP 400 with the same message as its body — can tell users what
// would have been accepted instead of a bare "unknown algorithm".
type UnknownAlgorithmError struct {
	// Name is the algorithm the caller asked for, as given.
	Name string
	// Known are the registered canonical keys, sorted.
	Known []string
}

func (e *UnknownAlgorithmError) Error() string {
	return fmt.Sprintf("modis: unknown algorithm %q (known: %s)",
		e.Name, strings.Join(e.Known, ", "))
}

// lookup resolves a (possibly aliased) algorithm name to its function
// and canonical key.
func lookup(name string) (AlgorithmFunc, string, error) {
	key := normalize(name)
	regMu.RLock()
	defer regMu.RUnlock()
	if canon, ok := aliases[key]; ok {
		key = canon
	}
	if fn, ok := registry[key]; ok {
		return fn, key, nil
	}
	return nil, "", &UnknownAlgorithmError{Name: name, Known: algorithmsLocked()}
}

func algorithmsLocked() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func normalize(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}
