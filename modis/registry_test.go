package modis

// White-box registry tests: registering a custom algorithm needs the
// internal/core types that AlgorithmFunc is built from, which only the
// package itself (not external consumers) is meant to reference.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fst"
	"repro/internal/table"
)

// echoAlgorithm is a minimal registrable algorithm: it valuates the
// universal state and returns it as a singleton skyline.
func echoAlgorithm(ctx context.Context, cfg *fst.Config, opts core.Options) (*core.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bits := cfg.Space.FullBitmap()
	val := cfg.NewValuator(opts.Parallelism)
	perf, err := val.Valuate(ctx, bits)
	if err != nil {
		return nil, err
	}
	return &core.Result{
		Skyline: []*core.Candidate{{Bits: bits.Clone(), Perf: perf.Clone()}},
		Stats:   core.RunStats{Valuated: val.Stats.Valuations()},
	}, nil
}

func registryTestConfig(tb testing.TB) *fst.Config {
	tb.Helper()
	u := table.New("D_U", table.Schema{
		{Name: "a", Kind: table.KindFloat},
		{Name: "target", Kind: table.KindInt},
	})
	for i := 0; i < 16; i++ {
		u.MustAppend(table.Row{table.Float(float64(i % 4)), table.Int(int64(i % 2))})
	}
	sp := fst.NewSpace(u, "target", fst.SpaceConfig{MaxLiteralsPerAttr: 4})
	return &fst.Config{
		Space: sp,
		Model: &shapeCountModel{space: sp},
		Measures: []fst.Measure{
			{Name: "p0", Normalize: fst.Identity(1e-3)},
		},
	}
}

type shapeCountModel struct{ space *fst.Space }

func (m *shapeCountModel) Name() string { return "shape-count" }

func (m *shapeCountModel) Evaluate(d *table.Table) ([]float64, error) {
	return []float64{0.1 + 0.9*float64(d.NumRows())/float64(m.space.Universal.NumRows())}, nil
}

func TestRegisterRejectsBadNames(t *testing.T) {
	if err := Register("bi", nil); err == nil {
		t.Error("nil algorithm must be rejected")
	}
	if err := Register("", echoAlgorithm); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := Register("bi", echoAlgorithm); err == nil {
		t.Error("duplicate name must be rejected")
	}
	if err := Register("BIMODIS", echoAlgorithm); err == nil {
		t.Error("reserved alias must be rejected")
	}
}

func TestRegisterExtendsEngine(t *testing.T) {
	// The registry is process-global; tolerate reruns (-count > 1).
	if err := Register("echo-test", echoAlgorithm); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	rep, err := NewEngine(registryTestConfig(t)).Run(context.Background(), "Echo-Test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Algorithm != "echo-test" || len(rep.Skyline) != 1 {
		t.Errorf("custom algorithm report: algo=%q skyline=%d", rep.Algorithm, len(rep.Skyline))
	}
	found := false
	for _, name := range Algorithms() {
		if name == "echo-test" {
			found = true
		}
	}
	if !found {
		t.Error("Algorithms() does not list the custom registration")
	}
}
