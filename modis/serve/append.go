package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/fst"
	"repro/internal/table"
	"repro/modis"
)

// This file is the serving side of streaming discovery: rows arrive
// over the wire (POST /v1/workloads/{name}/rows), the shard's
// in-flight searches drain behind a gate, the engine commits the batch
// (modis.Engine.Append), and the batch spills to the shard's rows log
// so a warm restart replays the table — and re-validates the versioned
// memo — exactly.

// defaultAppendDrainWait bounds how long an append waits for in-flight
// runs when SchedulerOptions.AppendDrainWait is unset.
const defaultAppendDrainWait = 30 * time.Second

// appendGate excludes a shard's row appends from its running searches:
// a search holds the gate in run mode for its whole execution, an
// append blocks new runs from starting and waits for the running ones
// to finish. Runs never exclude each other, and neither do appends
// (the shard's appendMu serializes those) — the gate only enforces
// that a space mutation and a search over that space never overlap.
type appendGate struct {
	mu       sync.Mutex
	running  int           // searches executing
	appends  int           // appends holding or waiting for the gate
	runnable chan struct{} // non-nil while appends > 0; closed when the last finishes
	idle     chan struct{} // non-nil while an append waits; closed when running hits 0
}

// beginRun admits one search, blocking while any append holds or
// awaits the gate.
func (g *appendGate) beginRun(ctx context.Context) error {
	for {
		g.mu.Lock()
		if g.appends == 0 {
			g.running++
			g.mu.Unlock()
			return nil
		}
		if g.runnable == nil {
			g.runnable = make(chan struct{})
		}
		ch := g.runnable
		g.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// endRun retires one admitted search, waking a waiting append when it
// was the last.
func (g *appendGate) endRun() {
	g.mu.Lock()
	g.running--
	if g.running == 0 && g.idle != nil {
		close(g.idle)
		g.idle = nil
	}
	g.mu.Unlock()
}

// beginAppend blocks new searches from starting and waits — up to wait
// (0 = only ctx bounds it) — for the running ones to finish. On
// success the caller owns the gate until endAppend.
func (g *appendGate) beginAppend(ctx context.Context, wait time.Duration) error {
	g.mu.Lock()
	g.appends++
	if g.running == 0 {
		g.mu.Unlock()
		return nil
	}
	if g.idle == nil {
		g.idle = make(chan struct{})
	}
	ch := g.idle
	g.mu.Unlock()
	var timeout <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-ch:
		return nil
	case <-timeout:
		g.mu.Lock()
		n := g.running
		g.mu.Unlock()
		g.endAppend()
		return fmt.Errorf("%w: %d runs still in flight after waiting %s to append", ErrOverloaded, n, wait)
	case <-ctx.Done():
		g.endAppend()
		return ctx.Err()
	}
}

// endAppend releases the gate, readmitting searches when this was the
// last append.
func (g *appendGate) endAppend() {
	g.mu.Lock()
	g.appends--
	if g.appends == 0 && g.runnable != nil {
		close(g.runnable)
		g.runnable = nil
	}
	g.mu.Unlock()
}

// memoAcceptor builds AttachMemo's replay predicate for a shard whose
// persisted rows have already been replayed (ReplayRows): a valuation
// recorded at the current table version is always current; one from an
// older version survives only when every row appended since then is
// outside its state's selected row set; one from a version the replay
// never reached (foreign or truncated state dir) is dropped.
func memoAcceptor(cfg *fst.Config) func(*fst.Test) bool {
	sp := cfg.Space
	if sp == nil {
		return nil
	}
	cur := sp.Version()
	return func(t *fst.Test) bool {
		if t.Version > cur {
			return false
		}
		if t.Version == cur {
			return true
		}
		return sp.SelectionUnchanged(t.Features, sp.RowsAtVersion(t.Version))
	}
}

// AppendRows commits a batch of rows to the named workload's shard:
// new searches hold at the gate, in-flight ones drain (bounded by
// AppendDrainWait — a shard that cannot quiesce in time rejects with
// ErrOverloaded, the explicitly retryable failure), the engine extends
// its frozen structures and advances the versioned memo, and the batch
// spills to the shard's durable rows log. The descriptor hash is
// untouched — appends change a shard's serving state, not its
// identity — so routing and memo keying stay stable across the stream.
func (s *Scheduler) AppendRows(ctx context.Context, workloadName string, rows []table.Row) (modis.AppendResult, error) {
	if len(rows) == 0 {
		return modis.AppendResult{}, errors.New("serve: append requires at least one row")
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return modis.AppendResult{}, ErrDraining
	}
	reg, ok := s.regs[workloadName]
	if !ok {
		s.mu.Unlock()
		return modis.AppendResult{}, fmt.Errorf("%w %q", ErrUnknownWorkload, workloadName)
	}
	sh := reg.sh
	s.mu.Unlock()

	sh.appendMu.Lock()
	defer sh.appendMu.Unlock()
	wait := s.opts.AppendDrainWait
	switch {
	case wait == 0:
		wait = defaultAppendDrainWait
	case wait < 0:
		wait = 0
	}
	if err := sh.gate.beginAppend(ctx, wait); err != nil {
		return modis.AppendResult{}, err
	}
	defer sh.gate.endAppend()
	res, err := sh.engine.Append(rows)
	if err != nil {
		return modis.AppendResult{}, err
	}
	sh.met.appends.Add(1)
	sh.met.rowsAppended.Add(int64(res.Rows))
	sh.met.memoInvalidated.Add(int64(res.Invalidated))
	sh.met.tableVersion.Store(res.Version)
	sh.met.rowCount.Store(int64(res.TotalRows))
	if s.opts.Persist != nil {
		s.opts.Persist.AppendRows(sh.hash, res.Version, rows)
	}
	return res, nil
}

// WorkloadSchema returns the universal schema of the named workload —
// what wire rows are coerced against. The schema is frozen at
// registration (appends never alter it), so the returned slice is safe
// to read concurrently with appends.
func (s *Scheduler) WorkloadSchema(name string) (table.Schema, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, ok := s.regs[name]
	if !ok || reg.sh.cfg.Space == nil {
		return nil, false
	}
	return reg.sh.cfg.Space.Universal.Schema, true
}

// AppendRowsRequest is the wire form of one row-append batch (POST
// /v1/workloads/{name}/rows). Each row is either a JSON array in
// universal-schema order or a JSON object keyed by column name (absent
// columns are null); each cell is null, a number, or a string, matched
// strictly against the column's kind.
type AppendRowsRequest struct {
	Rows []json.RawMessage `json:"rows"`
}

// AppendResponse reports one committed append batch: the table version
// the shard advanced to and what the versioned memo did with the
// valuations recorded so far.
type AppendResponse struct {
	Workload     string `json:"workload"`
	TableVersion uint64 `json:"table_version"`
	Rows         int    `json:"rows"`
	TotalRows    int    `json:"total_rows"`
	// MemoInvalidated counts memoized valuations dropped because the
	// batch changed their state's selected row set; MemoRetained the
	// valuations carried forward untouched.
	MemoInvalidated int `json:"memo_invalidated"`
	MemoRetained    int `json:"memo_retained"`
}

// WireRows encodes in-process rows into an AppendRowsRequest — the
// client-side counterpart of the server's coercion.
func WireRows(rows []table.Row) (AppendRowsRequest, error) {
	wire, err := encodeWireRows(rows)
	if err != nil {
		return AppendRowsRequest{}, err
	}
	return AppendRowsRequest{Rows: wire}, nil
}

// encodeWireRows renders rows as JSON arrays in schema order: null,
// number (int64s exactly — they are marshalled from the integer, not
// through float64), or string.
func encodeWireRows(rows []table.Row) ([]json.RawMessage, error) {
	out := make([]json.RawMessage, len(rows))
	for i, r := range rows {
		cells := make([]any, len(r))
		for j, v := range r {
			switch v.Kind() {
			case table.KindNull:
				cells[j] = nil
			case table.KindInt:
				cells[j] = v.AsInt()
			case table.KindFloat:
				cells[j] = v.AsFloat()
			case table.KindString:
				cells[j] = v.AsString()
			default:
				return nil, fmt.Errorf("serve: row %d cell %d has unencodable kind %v", i, j, v.Kind())
			}
		}
		blob, err := json.Marshal(cells)
		if err != nil {
			return nil, err
		}
		out[i] = blob
	}
	return out, nil
}

// decodeWireRow coerces one wire row against the universal schema. A
// JSON array must carry exactly one cell per schema column, in order;
// a JSON object names its columns and leaves the rest null.
func decodeWireRow(schema table.Schema, raw json.RawMessage) (table.Row, error) {
	t := bytes.TrimSpace(raw)
	if len(t) == 0 {
		return nil, errors.New("empty row")
	}
	switch t[0] {
	case '[':
		var cells []json.RawMessage
		if err := json.Unmarshal(t, &cells); err != nil {
			return nil, fmt.Errorf("malformed row: %w", err)
		}
		if len(cells) != len(schema) {
			return nil, fmt.Errorf("row has %d cells, schema has %d", len(cells), len(schema))
		}
		row := make(table.Row, len(schema))
		for i, c := range cells {
			v, err := decodeWireCell(schema[i], c)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return row, nil
	case '{':
		var cells map[string]json.RawMessage
		if err := json.Unmarshal(t, &cells); err != nil {
			return nil, fmt.Errorf("malformed row: %w", err)
		}
		row := make(table.Row, len(schema))
		for i := range row {
			row[i] = table.Null
		}
		for name, c := range cells {
			i := schema.Index(name)
			if i < 0 {
				return nil, fmt.Errorf("unknown column %q", name)
			}
			v, err := decodeWireCell(schema[i], c)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return row, nil
	}
	return nil, errors.New("row must be a JSON array or object")
}

// decodeWireCell coerces one JSON cell against its column: null always
// passes, strings must meet string columns, numbers must meet numeric
// columns (integer syntax for int columns — fractional values are
// rejected rather than silently truncated).
func decodeWireCell(col table.Column, raw json.RawMessage) (table.Value, error) {
	t := bytes.TrimSpace(raw)
	if len(t) == 0 || string(t) == "null" {
		return table.Null, nil
	}
	if t[0] == '"' {
		if col.Kind != table.KindString {
			return table.Null, fmt.Errorf("column %q wants %v, got a string", col.Name, col.Kind)
		}
		var s string
		if err := json.Unmarshal(t, &s); err != nil {
			return table.Null, fmt.Errorf("column %q: %w", col.Name, err)
		}
		return table.Str(s), nil
	}
	switch col.Kind {
	case table.KindInt:
		i, err := strconv.ParseInt(string(t), 10, 64)
		if err != nil {
			return table.Null, fmt.Errorf("column %q wants an integer, got %s", col.Name, t)
		}
		return table.Int(i), nil
	case table.KindFloat:
		f, err := strconv.ParseFloat(string(t), 64)
		if err != nil {
			return table.Null, fmt.Errorf("column %q wants a number, got %s", col.Name, t)
		}
		return table.Float(f), nil
	}
	return table.Null, fmt.Errorf("column %q wants %v, got %s", col.Name, col.Kind, t)
}
