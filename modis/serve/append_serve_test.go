package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/table"
	"repro/modis/serve"
)

// shapeRow is one streamed row over the shape workload's schema,
// landing on the (a=0, b=0) value point.
func shapeRow() table.Row {
	return table.Row{table.Float(0), table.Float(0), table.Int(0)}
}

// startShapeServer brings up a scheduler+server pair over one shape
// workload and returns the client speaking to it.
func startShapeServer(tb testing.TB, opts serve.SchedulerOptions) (*serve.Scheduler, string, *serve.Client) {
	tb.Helper()
	sched := serve.NewScheduler(opts)
	registerShape(tb, sched, newShapeConfig(tb, 0))
	hs := httptest.NewServer(serve.NewServer(sched, serve.ServerOptions{}))
	tb.Cleanup(hs.Close)
	tb.Cleanup(sched.Close)
	return sched, hs.URL, serve.NewClient(hs.URL)
}

// TestAppendEndToEnd drives the whole wire path: POST rows (object and
// array form), watch the version move through the append response, the
// catalog, healthz, and /metrics, and assert a resubmitted search sees
// the new rows.
func TestAppendEndToEnd(t *testing.T) {
	sched, base, cli := startShapeServer(t, serve.SchedulerOptions{})
	ctx := context.Background()

	job, err := sched.Submit(ctx, "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, job)
	// An identical resubmit before any append answers wholly from memo.
	job, err = sched.Submit(ctx, "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if rep := mustResult(t, job); rep.Valuated != 0 {
		t.Fatalf("pre-append resubmit valuated %d states, want 0", rep.Valuated)
	}

	// Batch 1: array-form rows (schema order).
	resp, err := cli.AppendRows(ctx, "shape", serve.AppendRowsRequest{Rows: []json.RawMessage{
		json.RawMessage(`[0, 0, 0]`),
		json.RawMessage(`[1, 2.5, 1]`),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TableVersion != 1 || resp.Rows != 2 || resp.TotalRows != 26 {
		t.Fatalf("append response = %+v, want version 1, 2 rows, 26 total", resp)
	}
	if resp.MemoInvalidated+resp.MemoRetained == 0 {
		t.Error("append over a warm memo reported no memo movement")
	}

	// Batch 2: object-form rows; absent columns are nulls.
	resp, err = cli.AppendRows(ctx, "shape", serve.AppendRowsRequest{Rows: []json.RawMessage{
		json.RawMessage(`{"a": 2, "target": 1}`),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TableVersion != 2 || resp.TotalRows != 27 {
		t.Fatalf("second append response = %+v, want version 2, 27 total", resp)
	}

	// The catalog reports the moved version and row count.
	infos, err := cli.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].TableVersion != 2 || infos[0].Rows != 27 {
		t.Fatalf("catalog = %+v, want shape at version 2 with 27 rows", infos)
	}

	// healthz mirrors it per shard.
	var hr serve.HealthResponse
	if err := getJSON(base+"/healthz", &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Node == nil || len(hr.Node.Shards) != 1 ||
		hr.Node.Shards[0].TableVersion != 2 || hr.Node.Shards[0].Rows != 27 {
		t.Fatalf("healthz node = %+v, want one shard at version 2 with 27 rows", hr.Node)
	}

	// /metrics exports the append counters and the version gauge.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	body := string(blob)
	for _, want := range []string{
		"modis_appends_total", "modis_rows_appended_total",
		"modis_memo_invalidated_total", "modis_table_version", "modis_table_rows",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics lacks %s", want)
		}
	}

	// A resubmitted identical search runs over the grown table: the
	// appends invalidated memoized valuations, so — unlike the
	// pre-append resubmit — it must recompute, and its report says so.
	job, err = sched.Submit(ctx, "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if rep := mustResult(t, job); rep.Valuated == 0 {
		t.Error("post-append resubmit valuated nothing — the appended rows are invisible")
	}
	// And once recomputed, the memo is warm again at the new version.
	job, err = sched.Submit(ctx, "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if rep := mustResult(t, job); rep.Valuated != 0 {
		t.Errorf("second post-append resubmit valuated %d states, want 0 (memo warm at the new version)", rep.Valuated)
	}
}

func TestAppendWireErrors(t *testing.T) {
	_, _, cli := startShapeServer(t, serve.SchedulerOptions{})
	ctx := context.Background()
	row := json.RawMessage(`[0, 0, 0]`)

	cases := []struct {
		name     string
		workload string
		rows     []json.RawMessage
		wantCode int
	}{
		{"unknown workload", "nope", []json.RawMessage{row}, http.StatusNotFound},
		{"empty batch", "shape", nil, http.StatusBadRequest},
		{"arity mismatch", "shape", []json.RawMessage{json.RawMessage(`[0, 0]`)}, http.StatusBadRequest},
		{"kind mismatch", "shape", []json.RawMessage{json.RawMessage(`["x", 0, 0]`)}, http.StatusBadRequest},
		{"fractional int", "shape", []json.RawMessage{json.RawMessage(`[0, 0, 1.5]`)}, http.StatusBadRequest},
		{"unknown column", "shape", []json.RawMessage{json.RawMessage(`{"zzz": 1}`)}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := cli.AppendRows(ctx, tc.workload, serve.AppendRowsRequest{Rows: tc.rows})
			if err == nil {
				t.Fatal("accepted")
			}
			var ae *serve.APIError
			if !errors.As(err, &ae) || ae.Status != tc.wantCode {
				t.Fatalf("err = %v, want HTTP %d", err, tc.wantCode)
			}
		})
	}
}

// TestAppendDrainGate: an append cannot interleave with a running
// search. Under a tiny drain budget it sheds with 503 + Retry-After
// while a slow job holds the shard; once the job finishes, the same
// append lands.
func TestAppendDrainGate(t *testing.T) {
	sched := serve.NewScheduler(serve.SchedulerOptions{
		AppendDrainWait: 5 * time.Millisecond,
	})
	cfg := newShapeConfig(t, 3*time.Millisecond) // ~slow valuations
	registerShape(t, sched, cfg)
	hs := httptest.NewServer(serve.NewServer(sched, serve.ServerOptions{}))
	defer hs.Close()
	defer sched.Close()
	cli := serve.NewClient(hs.URL)
	ctx := context.Background()

	job, err := sched.Submit(ctx, "shape", "exact", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	req := serve.AppendRowsRequest{Rows: []json.RawMessage{json.RawMessage(`[0, 0, 0]`)}}
	_, err = cli.AppendRows(ctx, "shape", req)
	var ae *serve.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("append against a held shard: err = %v, want 503", err)
	}

	mustResult(t, job)
	resp, err := cli.AppendRows(ctx, "shape", req)
	if err != nil {
		t.Fatalf("append on an idle shard: %v", err)
	}
	if resp.TableVersion != 1 {
		t.Fatalf("version = %d, want 1", resp.TableVersion)
	}
}

// TestAppendDrainWaits: with a real drain budget the append blocks
// until in-flight runs finish, then commits — no shedding, and the
// version is visible to the next submission.
func TestAppendDrainWaits(t *testing.T) {
	sched := serve.NewScheduler(serve.SchedulerOptions{
		AppendDrainWait: 10 * time.Second,
	})
	cfg := newShapeConfig(t, time.Millisecond)
	registerShape(t, sched, cfg)
	defer sched.Close()
	ctx := context.Background()

	job, err := sched.Submit(ctx, "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.AppendRows(ctx, "shape", []table.Row{shapeRow()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 {
		t.Fatalf("drained append version = %d, want 1", res.Version)
	}
	// The job the append drained behind still finished cleanly.
	if rep := mustResult(t, job); len(rep.Skyline) == 0 {
		t.Error("drained job lost its result")
	}
}

// TestWarmRestartReplaysRowsAndVersionedMemo is the streaming restart
// contract: a daemon that appended rows and then valuated over them
// warm-starts into the same table version, row count, and memo — and
// reproduces every post-append skyline byte for byte with zero exact
// inferences.
func TestWarmRestartReplaysRowsAndVersionedMemo(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Incarnation A: memoize cold, append, memoize warm.
	cfgA := newPersistShapeConfig(t)
	pA := openPersist(t, dir, nil)
	schedA := serve.NewScheduler(serve.SchedulerOptions{Persist: pA})
	registerShape(t, schedA, cfgA)
	job, err := schedA.Submit(ctx, "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, job)

	res, err := schedA.AppendRows(ctx, "shape", []table.Row{shapeRow(), shapeRow()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || res.TotalRows != 26 {
		t.Fatalf("append result = %+v", res)
	}
	if res.Retained == 0 {
		t.Fatal("append retained nothing; the restart assertion below would be vacuous")
	}

	postSkyline := map[string]string{}
	for _, algo := range allAlgorithms() {
		job, err := schedA.Submit(ctx, "shape", algo, runOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		postSkyline[algo] = skylineJSON(t, mustResult(t, job))
	}
	memoLen := cfgA.Tests.Len()
	if !pA.Flush() {
		t.Fatal("flush did not drain")
	}
	pA.Close()

	// Incarnation B: fresh config, same state directory. Registration
	// replays the rows log first, then filters the memo against the
	// recovered version history.
	cfgB := newPersistShapeConfig(t)
	pB := openPersist(t, dir, nil)
	defer pB.Close()
	schedB := serve.NewScheduler(serve.SchedulerOptions{Persist: pB})
	registerShape(t, schedB, cfgB)

	if v := cfgB.Space.Version(); v != 1 {
		t.Fatalf("recovered table version = %d, want 1", v)
	}
	if n := len(cfgB.Space.Universal.Rows); n != 26 {
		t.Fatalf("recovered row count = %d, want 26", n)
	}
	if got := cfgB.Space.RowsAtVersion(0); got != 24 {
		t.Fatalf("recovered version history: RowsAtVersion(0) = %d, want 24", got)
	}
	if n := cfgB.Tests.Len(); n != memoLen {
		t.Fatalf("recovered %d memoized valuations, want %d", n, memoLen)
	}
	if v := cfgB.Tests.Version(); v != 1 {
		t.Fatalf("recovered memo version = %d, want 1", v)
	}

	// The recovered shard serves the version through the catalog.
	infos := schedB.WorkloadInfos()
	if len(infos) != 1 || infos[0].TableVersion != 1 || infos[0].Rows != 26 {
		t.Fatalf("recovered catalog = %+v, want version 1 with 26 rows", infos)
	}

	for _, algo := range allAlgorithms() {
		job, err := schedB.Submit(ctx, "shape", algo, runOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		rep := mustResult(t, job)
		if got := skylineJSON(t, rep); got != postSkyline[algo] {
			t.Fatalf("warm %s skyline diverged:\nA %s\nB %s", algo, postSkyline[algo], got)
		}
		if rep.ExactCalls != 0 {
			t.Fatalf("warm %s run made %d exact inferences, want 0", algo, rep.ExactCalls)
		}
	}
}

// TestStaleMemoDroppedOnReplay: records persisted before a crash that
// happened mid-append-history are re-validated against the recovered
// version history — a record whose state gained rows is not loaded.
func TestStaleMemoDroppedOnReplay(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cfgA := newPersistShapeConfig(t)
	pA := openPersist(t, dir, nil)
	schedA := serve.NewScheduler(serve.SchedulerOptions{Persist: pA})
	registerShape(t, schedA, cfgA)
	job, err := schedA.Submit(ctx, "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, job)
	memoCold := cfgA.Tests.Len()
	res, err := schedA.AppendRows(ctx, "shape", []table.Row{shapeRow()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Invalidated == 0 {
		t.Fatal("append invalidated nothing; nothing to assert")
	}
	if !pA.Flush() {
		t.Fatal("flush did not drain")
	}
	pA.Close()

	// The memo log still holds every cold (version 0) record; replay
	// must re-drop exactly the invalidated ones.
	cfgB := newPersistShapeConfig(t)
	pB := openPersist(t, dir, nil)
	defer pB.Close()
	schedB := serve.NewScheduler(serve.SchedulerOptions{Persist: pB})
	registerShape(t, schedB, cfgB)
	if n := cfgB.Tests.Len(); n != memoCold-res.Invalidated {
		t.Fatalf("recovered %d valuations, want %d (%d cold minus %d invalidated)",
			n, memoCold-res.Invalidated, memoCold, res.Invalidated)
	}
}
