package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/workpool"
)

// batcher aligns the frontier valuation windows of one workload's
// concurrent runs. Every run of an engine group holds a runHandle
// (installed as the run's fst.ExactRunner); when a run submits a
// window's exact-inference tasks while peers are active, the batcher
// holds the window briefly — up to the alignment window — so windows
// arriving from the other runs merge into one pooled pass. Overlapping
// states then share a single model inference through the test set's
// single-flight while the pass is in flight, instead of one run paying
// for it and the others finding it in the memo much later; disjoint
// states still win by sharing the pass's worker pool.
//
// Alignment never changes results: each run keeps planning and
// committing its windows in child order on its own goroutine, and the
// batcher's only liberty is who executes the inferences and when. A
// batched run's skyline is byte-identical to the same run executed
// solo — the property the serve tests enforce for every algorithm.
type batcher struct {
	// align is how long a window may wait for peers.
	align time.Duration
	// queue is the shard's lane into the daemon-global inference pool:
	// every pass's tasks execute there, so a pass never spawns workers
	// of its own and the node's total inference concurrency stays
	// bounded by the pool regardless of how many shards are batching.
	// The queue's share limit (SchedulerOptions.Parallelism) caps this
	// shard's slice of the pool.
	queue *workpool.Queue

	// Merge accounting, exported on /metrics: windows counts RunExact
	// submissions, passes counts executed pass units; the merged
	// variants count those that shared a pass across runs.
	windows       atomic.Int64
	mergedWindows atomic.Int64
	passes        atomic.Int64
	mergedPasses  atomic.Int64

	mu      sync.Mutex
	active  int          // admitted run handles (runs that can produce windows)
	pending []*batchPass // windows awaiting the aligned pass
	armed   bool         // alignment timer armed for the current pending set
	gen     int          // bumped on every take; invalidates stale timers
}

// batchStats is the merge-accounting snapshot behind /metrics.
type batchStats struct {
	windows, mergedWindows, passes, mergedPasses int64
}

func (b *batcher) stats() batchStats {
	return batchStats{
		windows:       b.windows.Load(),
		mergedWindows: b.mergedWindows.Load(),
		passes:        b.passes.Load(),
		mergedPasses:  b.mergedPasses.Load(),
	}
}

// batchPass is one run's submitted window.
type batchPass struct {
	tasks []func()
	owner *runHandle
	done  chan struct{}
}

// defaultAlign is the default alignment window. Exact model inference
// dominates discovery wall time by orders of magnitude more than this,
// so holding a window 2ms to co-schedule it is cheap; a solo run never
// waits at all.
const defaultAlign = 2 * time.Millisecond

func newBatcher(align time.Duration, queue *workpool.Queue) *batcher {
	if align <= 0 {
		align = defaultAlign
	}
	return &batcher{align: align, queue: queue}
}

// newRun returns a handle for one run. The handle counts toward the
// alignment quorum only once the run is admitted (join) — a job
// sitting in the admission queue produces no windows and must not
// make running peers wait for it — and must be closed when the run
// finishes so peers stop waiting for its windows.
func (b *batcher) newRun() *runHandle {
	return &runHandle{b: b}
}

// runHandle is the per-run face of the batcher: the fst.ExactRunner
// installed on one run's valuator. It records whether any of the run's
// windows actually merged with a peer's, which the engine surfaces as
// the report's Batched field.
type runHandle struct {
	b       *batcher
	batched atomic.Bool
	joined  atomic.Bool
	closed  atomic.Bool
}

// Batched reports whether any window of this run executed in a pass
// shared with a concurrent run.
func (h *runHandle) Batched() bool { return h.batched.Load() }

// join counts the run into the alignment quorum — called when the run
// passes admission and can start producing windows. Idempotent.
func (h *runHandle) join() {
	if h.joined.Swap(true) {
		return
	}
	b := h.b
	b.mu.Lock()
	b.active++
	b.mu.Unlock()
}

// close deregisters the run. Pending windows of other runs flush
// immediately when the departing run was the last straggler.
func (h *runHandle) close() {
	if h.closed.Swap(true) || !h.joined.Load() {
		return
	}
	b := h.b
	b.mu.Lock()
	b.active--
	flush := b.takeIfQuorumLocked()
	b.mu.Unlock()
	b.execute(flush)
}

// RunExact implements fst.ExactRunner: submit the window and block
// until its tasks have run — immediately when the run has no peers,
// otherwise in a pass aligned with theirs.
func (h *runHandle) RunExact(ctx context.Context, tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	b := h.b
	b.windows.Add(1)
	b.mu.Lock()
	if b.active <= 1 && len(b.pending) == 0 {
		// No peers to align with: execute on the spot.
		b.mu.Unlock()
		b.runTasks(tasks)
		return
	}
	p := &batchPass{tasks: tasks, owner: h, done: make(chan struct{})}
	b.pending = append(b.pending, p)
	flush := b.takeIfQuorumLocked()
	if flush == nil && !b.armed {
		// First straggler of a new pending set: bound its wait. The
		// generation tag keeps a timer from outliving its set — a timer
		// armed for a set that already flushed by quorum must not
		// prematurely flush the next one.
		b.armed = true
		gen := b.gen
		time.AfterFunc(b.align, func() { b.flushTimeout(gen) })
	}
	b.mu.Unlock()
	b.execute(flush)
	<-p.done
}

// takeIfQuorumLocked claims the pending set when every active run has
// a window waiting (or none are left to wait for) — the earliest
// moment alignment cannot improve further. Callers hold b.mu.
func (b *batcher) takeIfQuorumLocked() []*batchPass {
	if len(b.pending) == 0 || len(b.pending) < b.active {
		return nil
	}
	return b.takeLocked()
}

func (b *batcher) takeLocked() []*batchPass {
	ps := b.pending
	b.pending = nil
	b.armed = false
	b.gen++
	return ps
}

// flushTimeout fires when the alignment window of pending-set gen
// elapses: whatever is still pending executes now. A stale timer —
// its set already flushed by quorum or departure — is a no-op.
func (b *batcher) flushTimeout(gen int) {
	b.mu.Lock()
	if gen != b.gen {
		b.mu.Unlock()
		return
	}
	ps := b.takeLocked()
	b.mu.Unlock()
	b.execute(ps)
}

// execute runs the claimed passes as one pooled unit and releases
// their owners. A merged unit (two or more runs' windows) marks every
// participant batched.
func (b *batcher) execute(ps []*batchPass) {
	if len(ps) == 0 {
		return
	}
	if len(ps) > 1 {
		b.mergedPasses.Add(1)
		b.mergedWindows.Add(int64(len(ps)))
		for _, p := range ps {
			p.owner.batched.Store(true)
		}
	}
	n := 0
	for _, p := range ps {
		n += len(p.tasks)
	}
	tasks := make([]func(), 0, n)
	for _, p := range ps {
		tasks = append(tasks, p.tasks...)
	}
	b.runTasks(tasks)
	for _, p := range ps {
		close(p.done)
	}
}

// runTasks submits the pass's tasks to the shard's queue on the
// daemon-global pool and waits them out. Tasks are self-contained
// (fst.ExactRunner's contract): any order and any degree of
// concurrency is correct, so routing them through the shared pool —
// where they interleave fairly with other shards' passes — never
// changes results.
func (b *batcher) runTasks(tasks []func()) {
	b.passes.Add(1)
	b.queue.Run(tasks)
}
