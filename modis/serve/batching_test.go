package serve_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/modis"
	"repro/modis/serve"
)

// TestBatchingDeterminismAllAlgorithms is the tentpole property: a run
// submitted alongside concurrent same-config runs produces a
// byte-identical skyline to the same run executed solo — for every
// algorithm. All five algorithms run concurrently on one scheduler
// workload (maximally overlapping frontiers, every window eligible for
// merging), and each is compared against its solo baseline on a fresh
// configuration.
func TestBatchingDeterminismAllAlgorithms(t *testing.T) {
	solo := map[string]string{}
	soloExact := map[string]int{}
	for _, algo := range allAlgorithms() {
		rep, err := modis.NewEngine(newShapeConfig(t, 0)).Run(context.Background(), algo, runOpts()...)
		if err != nil {
			t.Fatalf("solo %s: %v", algo, err)
		}
		solo[algo] = skylineJSON(t, rep)
		soloExact[algo] = rep.ExactCalls
	}

	sched := serve.NewScheduler(serve.SchedulerOptions{AlignWindow: 25 * time.Millisecond})
	cfg := newShapeConfig(t, 50*time.Microsecond)
	registerShape(t, sched, cfg)
	jobs := map[string]*modis.Job{}
	for _, algo := range allAlgorithms() {
		job, err := sched.Submit(context.Background(), "shape", algo, runOpts()...)
		if err != nil {
			t.Fatalf("submit %s: %v", algo, err)
		}
		jobs[algo] = job
	}
	totalBatchedExact := 0
	totalSoloExact := 0
	for _, algo := range allAlgorithms() {
		rep := mustResult(t, jobs[algo])
		if got := skylineJSON(t, rep); got != solo[algo] {
			t.Errorf("%s: batched skyline diverges from solo\n solo:    %s\n batched: %s", algo, solo[algo], got)
		}
		totalBatchedExact += rep.ExactCalls
		totalSoloExact += soloExact[algo]
	}
	// The shared engine (memo + single-flight + aligned passes) must do
	// strictly less exact inference than the five solo runs summed —
	// the concurrent searches traverse heavily overlapping states.
	if totalBatchedExact >= totalSoloExact {
		t.Errorf("batched runs did %d exact inferences, solo sum is %d — sharing bought nothing",
			totalBatchedExact, totalSoloExact)
	}
}

// TestBatchedRunsShareWindows: two deliberately overlapping runs must
// actually merge at least one exact pass (Batched) and together do
// fewer exact inferences than their solo baselines summed — the
// ValuationStats assertion of the acceptance criteria.
func TestBatchedRunsShareWindows(t *testing.T) {
	soloTotal := 0
	for _, algo := range []string{"bi", "apx"} {
		rep, err := modis.NewEngine(newShapeConfig(t, 0)).Run(context.Background(), algo, runOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		soloTotal += rep.ExactCalls
	}

	// A long alignment window and slow valuations force genuine overlap
	// on any machine.
	sched := serve.NewScheduler(serve.SchedulerOptions{AlignWindow: 250 * time.Millisecond})
	cfg := newShapeConfig(t, 200*time.Microsecond)
	registerShape(t, sched, cfg)
	a, err := sched.Submit(context.Background(), "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sched.Submit(context.Background(), "shape", "apx", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	repA, repB := mustResult(t, a), mustResult(t, b)
	if repA.ExactCalls+repB.ExactCalls >= soloTotal {
		t.Errorf("concurrent runs did %d exact inferences, solo sum is %d",
			repA.ExactCalls+repB.ExactCalls, soloTotal)
	}
	if !repA.Batched && !repB.Batched {
		t.Error("neither concurrent run shared an exact pass; frontier alignment never fired")
	}
}

// TestSchedulerEnginePooling: one workload identity → one engine → a
// repeat run is answered from the shared memo.
func TestSchedulerEnginePooling(t *testing.T) {
	sched := serve.NewScheduler(serve.SchedulerOptions{})
	cfg := newShapeConfig(t, 0)
	registerShape(t, sched, cfg)
	first, err := sched.Submit(context.Background(), "shape", "apx", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	mustResult(t, first)
	second, err := sched.Submit(context.Background(), "shape", "apx", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	rep := mustResult(t, second)
	if rep.Valuated != 0 {
		t.Errorf("repeat run valuated %d states, want 0 (workload engine shared)", rep.Valuated)
	}
	if sched.Engine("shape") == nil || sched.Engine("shape") != sched.Engine("shape") {
		t.Error("Engine must be stable per workload identity")
	}
	if sched.Engine("unregistered") != nil {
		t.Error("Engine must be nil for an unregistered name")
	}
}

// TestSchedulerMaxConcurrentQueues: with one slot, the second job
// waits in admission and its report records the queueing.
func TestSchedulerMaxConcurrentQueues(t *testing.T) {
	sched := serve.NewScheduler(serve.SchedulerOptions{MaxConcurrent: 1})
	cfg := newShapeConfig(t, 500*time.Microsecond)
	registerShape(t, sched, cfg)
	a, err := sched.Submit(context.Background(), "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sched.Submit(context.Background(), "shape", "nobi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	repA, repB := mustResult(t, a), mustResult(t, b)
	if repA == nil || repB == nil {
		t.Fatal("missing reports")
	}
	if repB.Queued <= 0 {
		t.Errorf("second job queued %v, want > 0 behind MaxConcurrent=1", repB.Queued)
	}
}

// TestSchedulerDrain: draining rejects new work, waits for in-flight
// jobs, and leaves their results intact.
func TestSchedulerDrain(t *testing.T) {
	sched := serve.NewScheduler(serve.SchedulerOptions{})
	cfg := newShapeConfig(t, 200*time.Microsecond)
	registerShape(t, sched, cfg)
	job, err := sched.Submit(context.Background(), "shape", "bi", runOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	go func() { drained <- sched.Drain(context.Background()) }()
	// Submissions during/after drain must fail with the sentinel wire
	// layers map to 503 (never a client-error status).
	for {
		_, err := sched.Submit(context.Background(), "shape", "apx")
		if err != nil {
			if !errors.Is(err, serve.ErrDraining) {
				t.Fatalf("draining submit error = %v, want serve.ErrDraining", err)
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if rep := mustResult(t, job); len(rep.Skyline) == 0 {
		t.Error("drained job lost its result")
	}
}

// TestConcurrentSubmitsRaceClean hammers one scheduler from many
// goroutines; run under -race in CI.
func TestConcurrentSubmitsRaceClean(t *testing.T) {
	sched := serve.NewScheduler(serve.SchedulerOptions{AlignWindow: 5 * time.Millisecond})
	cfg := newShapeConfig(t, 0)
	registerShape(t, sched, cfg)
	algos := []string{"apx", "bi", "nobi", "div", "exact", "apx", "bi", "nobi"}
	var wg sync.WaitGroup
	errs := make([]error, len(algos))
	for i, algo := range algos {
		wg.Add(1)
		go func(i int, algo string) {
			defer wg.Done()
			job, err := sched.Submit(context.Background(), "shape", algo, runOpts()...)
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = job.Result()
		}(i, algo)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("submit %d (%s): %v", i, algos[i], err)
		}
	}
}
