package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/modis"
)

// Client drives a modisd daemon over HTTP — the programmatic twin of
// the curl examples in docs/serving.md and the transport behind
// cmd/modis -remote.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080"); a missing scheme defaults to http.
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// apiError is a non-2xx daemon response.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("serve: daemon returned %d: %s", e.Status, e.Msg)
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(blob))
		if json.Unmarshal(blob, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &apiError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(blob, out)
}

// Submit submits a job and returns its accepted status (the job id in
// particular).
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a job's current status (including the report once
// done).
func (c *Client) Status(ctx context.Context, jobID string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+jobID, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, jobID string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+jobID, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches one page of the daemon's job ledger: jobs in
// submission order after cursor (empty starts from the beginning), at
// most limit per page (0 = all). A non-empty NextCursor in the
// response continues the listing.
func (c *Client) List(ctx context.Context, cursor string, limit int) (*JobsPageResponse, error) {
	path := "/v1/jobs"
	q := url.Values{}
	if cursor != "" {
		q.Set("cursor", cursor)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page JobsPageResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &page); err != nil {
		return nil, err
	}
	return &page, nil
}

// Workloads lists the daemon's workload catalog: each entry carries
// the catalog name, the descriptor hash the fleet routes on, and the
// full descriptor.
func (c *Client) Workloads(ctx context.Context) ([]WorkloadInfo, error) {
	var infos []WorkloadInfo
	if err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Algorithms lists the daemon's registered algorithm keys.
func (c *Client) Algorithms(ctx context.Context) ([]string, error) {
	var names []string
	if err := c.do(ctx, http.MethodGet, "/v1/algorithms", nil, &names); err != nil {
		return nil, err
	}
	return names, nil
}

// Events streams a job's progress events, delivering each to fn in
// order, until the stream ends (job terminated or ctx cancelled). It
// returns the terminal status carried by the stream's closing "end"
// event, or nil if the stream ended without one.
func (c *Client) Events(ctx context.Context, jobID string, fn func(modis.Event)) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+jobID+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		return nil, &apiError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(blob))}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	event, data := "", ""
	var final *JobStatus
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch event {
			case "progress":
				var ev modis.Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return final, fmt.Errorf("serve: malformed progress event: %w", err)
				}
				if fn != nil {
					fn(ev)
				}
			case "end":
				st := &JobStatus{}
				if err := json.Unmarshal([]byte(data), st); err != nil {
					return final, fmt.Errorf("serve: malformed end event: %w", err)
				}
				final = st
			}
			event, data = "", ""
		}
	}
	return final, sc.Err()
}

// Wait polls until the job reaches a terminal state and returns it.
func (c *Client) Wait(ctx context.Context, jobID string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, jobID)
		if err != nil {
			return nil, err
		}
		switch st.Status {
		case StatusDone, StatusFailed, StatusCancelled:
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
